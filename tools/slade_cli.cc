// slade_cli: command-line front end for the SLADE decomposer.
//
//   slade_cli profile  --dataset jelly|smic --max-cardinality M --out F
//       Emit a bin profile CSV from the built-in dataset models.
//
//   slade_cli solve    --profile F (--thresholds F | --homogeneous N,T)
//                      --solver greedy|opq|opq-extended|baseline|fixed
//                      --out PLAN.csv [--seed S]
//       Decompose a task and write the plan; prints cost and bin counts.
//
//   slade_cli opq      --profile F --threshold T
//       Print the optimal priority queue (paper Table 3 format).
//
//   slade_cli validate --profile F --plan PLAN.csv
//                      (--thresholds F | --homogeneous N,T)
//       Re-check a plan's feasibility and cost.
//
//   slade_cli batch    --profile F --workload W.csv [--threads K]
//                      [--mode engine|sequential] [--sharing pooled|isolated]
//                      [--cache-max-bytes B] [--cache-max-entries N]
//                      [--cache-shards S] [--node-budget N] [--verbose]
//                      [--out PLAN.csv]
//       Decompose a whole batch of crowdsourcing tasks (CSV rows
//       `task,threshold`) with the sharded parallel engine, or the
//       sequential per-task reference loop for comparison. --node-budget
//       caps each Algorithm 2 enumeration (both modes); --verbose prints
//       the aggregate OPQ build cost (nodes visited/pruned, insertions,
//       build time) in engine mode.
//
//   slade_cli stream   --profile F --workload TIMED.csv [--threads K]
//                      [--max-pending-atomic N] [--max-pending-submissions N]
//                      [--max-delay-ms D] [--sharing isolated|pooled]
//                      [--speed X] [--loop N] [--id-prefix P]
//                      [--cache-max-bytes B] [--cache-max-entries N]
//                      [--cache-shards S] [--queue-max-atomic N]
//                      [--queue-max-bytes B]
//                      [--backpressure block|reject|shed-oldest]
//       Replay a timed workload (CSV rows `arrival_ms,requester,task,
//       threshold`) through the streaming admission engine and print
//       per-requester summaries. The tape is fed through the
//       FileReplaySource ingestion connector (the same one `serve
//       --replay` uses). --speed X replays arrivals X times faster than
//       recorded; 0 (the default) submits without waiting. --loop N
//       plays the tape N times end to end; --id-prefix P stamps
//       deterministic submission ids "P-<k>". The cache-* flags bound
//       the OPQ cache (LRU eviction) and the queue-* flags bound the
//       pending admission queue; --backpressure picks what happens to a
//       submission that does not fit (rejected and shed submissions are
//       reported, not fatal). All limits default to 0 = unbounded.
//
//   slade_cli serve    (--profile F | --dataset jelly|smic
//                       [--max-cardinality M])
//                      [--port P] [--address A] [--workers N]
//                      [--max-connections N] [--retry-after S]
//                      [--max-body-bytes B]
//                      [--fairness] [--fair-quantum N] [--default-weight W]
//                      [--tenant-weights a=2,b=1] [--tenant-max-atomic N]
//                      [--tenant-max-bytes B]
//                      [--wal-dir DIR] [--wal-segment-bytes B]
//                      [--commit-wait-micros U]
//                      [--replay TIMED.csv] [--replay-speed X]
//                      [--replay-loop N] [--replay-id-prefix P]
//                      [+ the stream admission/backpressure flags]
//       Serve the streaming engine over HTTP/1.1 (POST /v1/submit,
//       GET /v1/stats, GET /healthz) until SIGINT/SIGTERM, then shut
//       down gracefully: in-flight requests finish and every admitted
//       submission is answered. --port 0 binds an ephemeral port (the
//       bound port is printed). The fairness flags enable per-tenant
//       pending quotas and weighted-fair micro-batch scheduling;
//       specifying any of them implies --fairness.
//       --wal-dir turns on the durable submission journal: admissions
//       are logged before they are acknowledged, completed outcomes are
//       remembered for idempotent replay (clients may send a
//       `submission_id` with POST /v1/submit), and on startup the WAL
//       is replayed -- unfinished submissions are re-admitted and
//       re-solved, finished ones answer duplicates without re-billing.
//       Shutdown writes a clean checkpoint so the next start skips the
//       replay scan. --replay feeds a timed workload tape through the
//       ingestion connector in the background alongside HTTP traffic
//       (--replay-speed 1 = recorded timing, 0 = unpaced;
//       --replay-loop 0 = loop forever; --replay-id-prefix makes the
//       feed idempotent across restarts on the same WAL).
//       --profiles name=FILE,... registers one crowdsourcing platform
//       per bin-profile CSV in a ProfileRegistry and routes each
//       submission to the cheapest platform that meets its thresholds
//       (--routing sticky pins requesters, explicit requires the HTTP
//       `platform` field; a non-empty `platform` field always wins).
//       /v1/submit echoes the serving (platform, epoch) and /v1/stats
//       grows a per-platform counters section. --recalibrate-every /
//       --drift-tolerance configure the online recalibration loop
//       (profiles promote as new epochs when folded outcomes drift;
//       see serve-loop, which actually feeds outcomes).
//
//   slade_cli serve-loop --dataset jelly|smic --workload TIMED.csv
//                      [--max-cardinality M] [--rounds R]
//                      [--inference majority|ds] [--dispatch-threads K]
//                      [--positive-rate P] [--seed S] [--platform-seed S]
//                      [--population N] [--skill-sigma S] [--spammers F]
//                      [--spammer-burst P,L,F] [--churn-period N]
//                      [--stragglers F,X] [--outage P,L] [--fault-seed S]
//                      [--max-redecompositions N] [--retry-cost-multiple X]
//                      [--threads K] [--max-pending-atomic N]
//                      [--max-pending-submissions N] [--max-delay-ms D]
//                      [--sharing isolated|pooled] [--cache-max-bytes B]
//                      [--cache-max-entries N] [--cache-shards S]
//                      [--queue-max-atomic N] [--queue-max-bytes B]
//                      [--backpressure block|reject|shed-oldest]
//       Run the closed loop end to end: the timed workload (arrival
//       times are ignored; each row is one requester submission) is
//       admitted through the streaming engine, plans execute on the
//       simulated marketplace (ground truth drawn per atomic task with
//       P(positive) = --positive-rate from --seed), answers feed truth
//       inference, and under-confident tasks are re-decomposed for up
//       to --rounds rounds. The dataset model drives both the bin
//       profile (built internally at --max-cardinality) and the
//       simulated workers, so planner and marketplace agree. The fault
//       flags inject spammer bursts (every P posts, L posts long, extra
//       fraction F), worker churn (new population every N posts),
//       stragglers (fraction F at X times the latency) and platform
//       outages (every P posts, L posts down). The registry flags
//       (--profiles/--routing/--recalibrate-every/--drift-tolerance,
//       see serve) run the loop multi-platform: registered profiles are
//       the planner's beliefs about the one simulated marketplace, each
//       round's ground-truth-scored answers fold back into the serving
//       platform, and a drifted profile promotes as a new epoch --
//       in-flight micro-batches keep solving under their admission
//       epoch, and only the promoted platform's OPQ cache entries are
//       evicted. Without --profiles the dataset profile serves as
//       platform "default".

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "binmodel/profile_model.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "durability/ingestion.h"
#include "durability/journal.h"
#include "engine/closed_loop_engine.h"
#include "engine/decomposition_engine.h"
#include "engine/profile_registry.h"
#include "engine/streaming_engine.h"
#include "io/csv_reader.h"
#include "io/model_io.h"
#include "server/slade_server.h"
#include "solver/fixed_cardinality_solver.h"
#include "solver/opq_builder.h"
#include "solver/plan_validator.h"
#include "solver/solver.h"

namespace {

using namespace slade;

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

int Usage() {
  std::cerr <<
      "usage:\n"
      "  slade_cli profile  --dataset jelly|smic --max-cardinality M "
      "--out FILE\n"
      "  slade_cli solve    --profile FILE (--thresholds FILE | "
      "--homogeneous N,T)\n"
      "                     [--solver greedy|opq|opq-extended|baseline|"
      "fixed] [--out FILE] [--seed S]\n"
      "  slade_cli opq      --profile FILE --threshold T\n"
      "  slade_cli validate --profile FILE --plan FILE (--thresholds FILE"
      " | --homogeneous N,T)\n"
      "  slade_cli batch    --profile FILE --workload FILE [--threads K]\n"
      "                     [--mode engine|sequential] "
      "[--sharing pooled|isolated]\n"
      "                     [--cache-max-bytes B] [--cache-max-entries N]"
      " [--cache-shards S]\n"
      "                     [--node-budget N] [--verbose] [--out FILE]\n"
      "  slade_cli stream   --profile FILE --workload FILE [--threads K]\n"
      "                     [--max-pending-atomic N] "
      "[--max-pending-submissions N]\n"
      "                     [--max-delay-ms D] [--sharing isolated|pooled]"
      " [--speed X]\n"
      "                     [--loop N] [--id-prefix P]\n"
      "                     [--cache-max-bytes B] [--cache-max-entries N]"
      " [--cache-shards S]\n"
      "                     [--queue-max-atomic N] [--queue-max-bytes B]\n"
      "                     [--backpressure block|reject|shed-oldest]\n"
      "  slade_cli serve    (--profile FILE | --dataset jelly|smic "
      "[--max-cardinality M])\n"
      "                     [--port P] [--address A] [--workers N] "
      "[--max-connections N]\n"
      "                     [--retry-after S] [--max-body-bytes B] "
      "[--fairness]\n"
      "                     [--fair-quantum N] [--default-weight W] "
      "[--tenant-weights a=2,b=1]\n"
      "                     [--tenant-max-atomic N] [--tenant-max-bytes B]\n"
      "                     [--wal-dir DIR] [--wal-segment-bytes B] "
      "[--commit-wait-micros U]\n"
      "                     [--replay FILE] [--replay-speed X] "
      "[--replay-loop N]\n"
      "                     [--replay-id-prefix P]\n"
      "                     [--profiles name=FILE,...] "
      "[--routing cheapest|sticky|explicit]\n"
      "                     [--recalibrate-every N] [--drift-tolerance D]\n"
      "                     [+ the stream admission/backpressure flags]\n"
      "  slade_cli serve-loop --dataset jelly|smic --workload FILE\n"
      "                     [--max-cardinality M] [--rounds R] "
      "[--inference majority|ds]\n"
      "                     [--dispatch-threads K] [--positive-rate P] "
      "[--seed S]\n"
      "                     [--platform-seed S] [--population N] "
      "[--skill-sigma S]\n"
      "                     [--spammers F] [--spammer-burst P,L,F] "
      "[--churn-period N]\n"
      "                     [--stragglers F,X] [--outage P,L] "
      "[--fault-seed S]\n"
      "                     [--max-redecompositions N] "
      "[--retry-cost-multiple X]\n"
      "                     [--profiles name=FILE,...] "
      "[--routing cheapest|sticky|explicit]\n"
      "                     [--recalibrate-every N] [--drift-tolerance D]\n"
      "                     [+ the stream admission/backpressure flags]\n";
  return 2;
}

// Parses --key value pairs after the subcommand. A handful of boolean
// flags take no value and parse to "1".
std::optional<std::map<std::string, std::string>> ParseFlags(
    int argc, char** argv, int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) return std::nullopt;
    if (std::strcmp(key, "--verbose") == 0 ||
        std::strcmp(key, "--fairness") == 0) {
      flags[key + 2] = "1";
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    flags[key + 2] = argv[++i];
  }
  return flags;
}

Result<CrowdsourcingTask> LoadTask(
    const std::map<std::string, std::string>& flags) {
  auto thresholds = flags.find("thresholds");
  auto homogeneous = flags.find("homogeneous");
  if ((thresholds != flags.end()) == (homogeneous != flags.end())) {
    return Status::InvalidArgument(
        "exactly one of --thresholds / --homogeneous is required");
  }
  if (thresholds != flags.end()) {
    return LoadThresholdsCsv(thresholds->second);
  }
  size_t n = 0;
  double t = 0.0;
  if (std::sscanf(homogeneous->second.c_str(), "%zu,%lf", &n, &t) != 2) {
    return Status::InvalidArgument(
        "--homogeneous expects N,T (e.g. 10000,0.9)");
  }
  return CrowdsourcingTask::Homogeneous(n, t);
}

/// Parses an optional `--sharing isolated|pooled` flag into `*sharing`;
/// prints the error and returns false on an unknown value.
bool ParseSharingFlag(const std::map<std::string, std::string>& flags,
                      BatchSharing* sharing) {
  auto it = flags.find("sharing");
  if (it == flags.end()) return true;
  if (it->second == "isolated") {
    *sharing = BatchSharing::kIsolated;
  } else if (it->second == "pooled") {
    *sharing = BatchSharing::kPooled;
  } else {
    Fail("unknown sharing: " + it->second + " (want isolated|pooled)");
    return false;
  }
  return true;
}

/// Parses one optional non-negative integer flag; prints the error and
/// returns false on a bad value, leaves `*out` untouched when absent.
bool ParseUintFlag(const std::map<std::string, std::string>& flags,
                   const char* key, uint64_t* out) {
  auto it = flags.find(key);
  if (it == flags.end()) return true;
  auto parsed = ParseUint(it->second);
  if (!parsed.ok()) {
    Fail(std::string("--") + key + " expects a non-negative integer, got " +
         it->second);
    return false;
  }
  *out = *parsed;
  return true;
}

/// Parses one optional double flag constrained to [lo, hi]; prints the
/// error and returns false on a bad value, leaves `*out` untouched when
/// absent.
bool ParseDoubleFlag(const std::map<std::string, std::string>& flags,
                     const char* key, double lo, double hi, double* out) {
  auto it = flags.find(key);
  if (it == flags.end()) return true;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok() || *parsed < lo || *parsed > hi) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "--%s expects a number in [%g, %g], got ",
                  key, lo, hi);
    Fail(buf + it->second);
    return false;
  }
  *out = *parsed;
  return true;
}

/// Parses the optional resource-governance flags shared by batch and
/// stream: cache capacity/sharding, admission queue caps, and the
/// backpressure policy. Limits of 0 (the default) mean unbounded.
bool ParseResourceFlags(const std::map<std::string, std::string>& flags,
                        ResourceOptions* resources) {
  if (!ParseUintFlag(flags, "cache-max-bytes", &resources->cache_max_bytes) ||
      !ParseUintFlag(flags, "cache-max-entries",
                     &resources->cache_max_entries) ||
      !ParseUintFlag(flags, "queue-max-atomic",
                     &resources->queue_max_atomic_tasks) ||
      !ParseUintFlag(flags, "queue-max-bytes", &resources->queue_max_bytes)) {
    return false;
  }
  uint64_t shards = resources->cache_shards;
  if (!ParseUintFlag(flags, "cache-shards", &shards)) return false;
  if (shards == 0 || shards > 4096) {
    Fail("--cache-shards expects an integer in [1, 4096]");
    return false;
  }
  resources->cache_shards = static_cast<uint32_t>(shards);
  if (auto it = flags.find("backpressure"); it != flags.end()) {
    if (it->second == "block") {
      resources->backpressure = BackpressurePolicy::kBlock;
    } else if (it->second == "reject") {
      resources->backpressure = BackpressurePolicy::kReject;
    } else if (it->second == "shed-oldest") {
      resources->backpressure = BackpressurePolicy::kShedOldest;
    } else {
      Fail("unknown backpressure: " + it->second +
           " (want block|reject|shed-oldest)");
      return false;
    }
  }
  return true;
}

/// Parses an optional `--threads K` flag (K in [0, 1024]) into `*threads`;
/// prints the error and returns false on a bad value.
bool ParseThreadsFlag(const std::map<std::string, std::string>& flags,
                      uint32_t* threads) {
  auto it = flags.find("threads");
  if (it == flags.end()) return true;
  auto parsed = ParseUint(it->second);
  if (!parsed.ok() || *parsed > 1024) {
    Fail("--threads expects an integer in [0, 1024], got " + it->second);
    return false;
  }
  *threads = static_cast<uint32_t>(*parsed);
  return true;
}

Result<std::unique_ptr<Solver>> MakeNamedSolver(const std::string& name,
                                                const SolverOptions& options) {
  if (name == "greedy") return MakeSolver(SolverKind::kGreedy, options);
  if (name == "opq") return MakeSolver(SolverKind::kOpq, options);
  if (name == "opq-extended") {
    return MakeSolver(SolverKind::kOpqExtended, options);
  }
  if (name == "baseline") return MakeSolver(SolverKind::kBaseline, options);
  if (name == "fixed") {
    return std::unique_ptr<Solver>(new FixedCardinalitySolver());
  }
  return Status::InvalidArgument("unknown solver: " + name);
}

int CmdProfile(const std::map<std::string, std::string>& flags) {
  auto dataset = flags.find("dataset");
  auto m = flags.find("max-cardinality");
  auto out = flags.find("out");
  if (dataset == flags.end() || m == flags.end() || out == flags.end()) {
    return Usage();
  }
  DatasetKind kind;
  if (dataset->second == "jelly") {
    kind = DatasetKind::kJelly;
  } else if (dataset->second == "smic") {
    kind = DatasetKind::kSmic;
  } else {
    return Fail("unknown dataset: " + dataset->second);
  }
  const unsigned long max_l = std::strtoul(m->second.c_str(), nullptr, 10);
  auto profile = BuildProfile(MakeModel(kind),
                              static_cast<uint32_t>(max_l));
  if (!profile.ok()) return Fail(profile.status().ToString());
  Status st = SaveBinProfileCsv(*profile, out->second);
  if (!st.ok()) return Fail(st.ToString());
  std::cout << "wrote " << out->second << "\n" << profile->ToString();
  return 0;
}

int CmdSolve(const std::map<std::string, std::string>& flags) {
  auto profile_flag = flags.find("profile");
  if (profile_flag == flags.end()) return Usage();
  auto profile = LoadBinProfileCsv(profile_flag->second);
  if (!profile.ok()) return Fail(profile.status().ToString());
  auto task = LoadTask(flags);
  if (!task.ok()) return Fail(task.status().ToString());

  SolverOptions options;
  if (auto seed = flags.find("seed"); seed != flags.end()) {
    options.seed = std::strtoull(seed->second.c_str(), nullptr, 10);
  }
  const std::string solver_name =
      flags.count("solver") ? flags.at("solver") : "opq-extended";
  auto solver = MakeNamedSolver(solver_name, options);
  if (!solver.ok()) return Fail(solver.status().ToString());

  Stopwatch watch;
  auto plan = (*solver)->Solve(*task, *profile);
  if (!plan.ok()) return Fail(plan.status().ToString());
  const double seconds = watch.ElapsedSeconds();

  auto report = ValidatePlan(*plan, *task, *profile);
  if (!report.ok()) return Fail(report.status().ToString());

  std::printf("task: %s\n", task->ToString().c_str());
  std::printf("solver: %s (%.3f s)\n", (*solver)->name().c_str(), seconds);
  std::printf("%s\n", plan->Summary(*profile).c_str());
  std::printf("feasible: %s (worst log margin %.6f)\n",
              report->feasible ? "yes" : "NO", report->worst_log_margin);
  if (auto out = flags.find("out"); out != flags.end()) {
    Status st = SavePlanCsv(*plan, out->second);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("plan written to %s\n", out->second.c_str());
  }
  return report->feasible ? 0 : 3;
}

int CmdOpq(const std::map<std::string, std::string>& flags) {
  auto profile_flag = flags.find("profile");
  auto threshold = flags.find("threshold");
  if (profile_flag == flags.end() || threshold == flags.end()) {
    return Usage();
  }
  auto profile = LoadBinProfileCsv(profile_flag->second);
  if (!profile.ok()) return Fail(profile.status().ToString());
  const double t = std::strtod(threshold->second.c_str(), nullptr);
  auto opq = BuildOpq(*profile, t);
  if (!opq.ok()) return Fail(opq.status().ToString());
  std::cout << opq->ToString();
  return 0;
}

int CmdValidate(const std::map<std::string, std::string>& flags) {
  auto profile_flag = flags.find("profile");
  auto plan_flag = flags.find("plan");
  if (profile_flag == flags.end() || plan_flag == flags.end()) {
    return Usage();
  }
  auto profile = LoadBinProfileCsv(profile_flag->second);
  if (!profile.ok()) return Fail(profile.status().ToString());
  auto task = LoadTask(flags);
  if (!task.ok()) return Fail(task.status().ToString());
  auto plan = LoadPlanCsv(plan_flag->second);
  if (!plan.ok()) return Fail(plan.status().ToString());
  auto report = ValidatePlan(*plan, *task, *profile);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("cost: %.6f\nfeasible: %s (worst log margin %.6f, task %u)\n",
              report->total_cost, report->feasible ? "yes" : "NO",
              report->worst_log_margin, report->worst_task);
  return report->feasible ? 0 : 3;
}

int CmdBatch(const std::map<std::string, std::string>& flags) {
  auto profile_flag = flags.find("profile");
  auto workload_flag = flags.find("workload");
  if (profile_flag == flags.end() || workload_flag == flags.end()) {
    return Usage();
  }
  auto profile = LoadBinProfileCsv(profile_flag->second);
  if (!profile.ok()) return Fail(profile.status().ToString());
  auto tasks = LoadBatchWorkloadCsv(workload_flag->second);
  if (!tasks.ok()) return Fail(tasks.status().ToString());

  const std::string mode =
      flags.count("mode") ? flags.at("mode") : "engine";
  uint64_t node_budget = EngineOptions{}.opq_node_budget;
  if (!ParseUintFlag(flags, "node-budget", &node_budget)) return 1;
  if (node_budget == 0) return Fail("--node-budget must be >= 1");
  const bool verbose = flags.count("verbose") != 0;
  Result<BatchReport> report = Status::Internal("unreachable");
  std::string cache_line;
  if (mode == "engine") {
    EngineOptions options;
    options.opq_node_budget = node_budget;
    if (!ParseThreadsFlag(flags, &options.num_threads)) return 1;
    if (!ParseSharingFlag(flags, &options.sharing)) return 1;
    if (!ParseResourceFlags(flags, &options.resources)) return 1;
    DecompositionEngine engine(options);
    std::printf("engine: %zu threads, %s sharing\n", engine.num_threads(),
                BatchSharingName(options.sharing));
    report = engine.SolveBatch(*tasks, *profile);
    const CacheStats cache_stats = engine.cache().stats();
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "opq cache: %.1f%% hit rate, %llu evictions, %llu bytes "
                  "resident\n",
                  cache_stats.hit_rate() * 100.0,
                  static_cast<unsigned long long>(cache_stats.evictions),
                  static_cast<unsigned long long>(cache_stats.bytes));
    cache_line = buf;
    if (verbose) {
      std::snprintf(
          buf, sizeof(buf),
          "opq builds: %llu enumerations, %llu nodes visited, "
          "%llu pruned, %llu insertions, %.4f s build time "
          "(node budget %llu)\n",
          static_cast<unsigned long long>(cache_stats.builds),
          static_cast<unsigned long long>(
              cache_stats.build_stats.nodes_visited),
          static_cast<unsigned long long>(
              cache_stats.build_stats.nodes_pruned_dominated),
          static_cast<unsigned long long>(
              cache_stats.build_stats.insertions),
          cache_stats.build_seconds,
          static_cast<unsigned long long>(node_budget));
      cache_line += buf;
    }
  } else if (mode == "sequential") {
    if (verbose) {
      std::printf("note: --verbose build stats are collected by the engine "
                  "cache; the sequential reference loop reports none\n");
    }
    SolverOptions options;
    options.opq_node_budget = node_budget;
    report = SolveBatchSequential(*tasks, *profile, options);
  } else {
    return Fail("unknown mode: " + mode + " (want engine|sequential)");
  }
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("%s%s", report->ToString().c_str(), cache_line.c_str());

  auto merged_task = ConcatenateTasks(*tasks);
  if (!merged_task.ok()) return Fail(merged_task.status().ToString());
  auto validation = ValidatePlan(report->plan, *merged_task, *profile);
  if (!validation.ok()) return Fail(validation.status().ToString());
  std::printf("feasible: %s (worst log margin %.6f)\n",
              validation->feasible ? "yes" : "NO",
              validation->worst_log_margin);
  if (auto out = flags.find("out"); out != flags.end()) {
    Status st = SavePlanCsv(report->plan.ToPlan(), out->second);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("merged plan written to %s (global atomic-task ids)\n",
                out->second.c_str());
  }
  return validation->feasible ? 0 : 3;
}

int CmdStream(const std::map<std::string, std::string>& flags) {
  auto profile_flag = flags.find("profile");
  auto workload_flag = flags.find("workload");
  if (profile_flag == flags.end() || workload_flag == flags.end()) {
    return Usage();
  }
  auto profile = LoadBinProfileCsv(profile_flag->second);
  if (!profile.ok()) return Fail(profile.status().ToString());

  StreamingOptions options;
  auto parse_size = [&](const char* key, size_t* out) -> bool {
    auto it = flags.find(key);
    if (it == flags.end()) return true;
    auto parsed = ParseUint(it->second);
    if (!parsed.ok()) return false;
    *out = static_cast<size_t>(*parsed);
    return true;
  };
  if (!parse_size("max-pending-atomic", &options.max_pending_atomic_tasks) ||
      !parse_size("max-pending-submissions",
                  &options.max_pending_submissions)) {
    return Fail("size flags expect non-negative integers");
  }
  if (auto it = flags.find("max-delay-ms"); it != flags.end()) {
    auto parsed = ParseDouble(it->second);
    if (!parsed.ok() || *parsed < 0.0) {
      return Fail("--max-delay-ms expects a number >= 0, got " + it->second);
    }
    options.max_delay_seconds = *parsed / 1e3;
  }
  if (!ParseThreadsFlag(flags, &options.num_threads)) return 1;
  if (!ParseSharingFlag(flags, &options.sharing)) return 1;
  if (!ParseResourceFlags(flags, &options.resources)) return 1;
  double speed = 0.0;
  if (auto it = flags.find("speed"); it != flags.end()) {
    auto parsed = ParseDouble(it->second);
    if (!parsed.ok() || *parsed < 0.0) {
      return Fail("--speed expects a number >= 0, got " + it->second);
    }
    speed = *parsed;
  }
  FileReplayOptions replay_options;
  replay_options.path = workload_flag->second;
  replay_options.speedup = speed;
  if (!ParseUintFlag(flags, "loop", &replay_options.loop_count)) return 1;
  if (auto it = flags.find("id-prefix"); it != flags.end()) {
    replay_options.submission_id_prefix = it->second;
  }
  auto source = FileReplaySource::Open(std::move(replay_options));
  if (!source.ok()) return Fail(source.status().ToString());

  std::printf("streaming: sharing %s, flush at %zu atomic / %zu submissions"
              " / %.1f ms, backpressure %s\n",
              BatchSharingName(options.sharing),
              options.max_pending_atomic_tasks,
              options.max_pending_submissions,
              options.max_delay_seconds * 1e3,
              BackpressurePolicyName(options.resources.backpressure));

  // Replay the tape through the ingestion connector and collect one
  // future per submission.
  Stopwatch wall;
  StreamingEngine engine(*profile, options);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  std::vector<TimedSubmission> delivered;
  futures.reserve((*source)->tape_size());
  delivered.reserve((*source)->tape_size());
  TimedSubmission submission;
  for (;;) {
    auto next = (*source)->Next(&submission);
    if (!next.ok()) return Fail(next.status().ToString());
    if (!*next) break;
    delivered.push_back(submission);  // keeps the tasks for validation
    futures.push_back(engine.Submit(submission.requester,
                                    std::move(submission.tasks),
                                    std::move(submission.submission_id)));
  }
  engine.Drain();
  const double replay_seconds = wall.ElapsedSeconds();

  // Per-requester aggregation of the delivered slices.
  struct RequesterTotals {
    uint64_t submissions = 0;
    uint64_t tasks = 0;
    uint64_t atomic = 0;
    double cost = 0.0;
    uint64_t bins = 0;
    double latency_sum = 0.0;
    bool feasible = true;
  };
  std::map<std::string, RequesterTotals> totals;  // sorted output
  bool all_feasible = true;
  uint64_t backpressured = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const TimedSubmission& delivered_submission = delivered[i];
    auto slice = futures[i].get();
    if (!slice.ok()) {
      // Rejected / shed submissions are an expected outcome of a bounded
      // queue, reported in the summary; anything else is a real failure.
      if (slice.status().IsResourceExhausted()) {
        backpressured += 1;
        continue;
      }
      return Fail(slice.status().ToString());
    }
    auto merged = ConcatenateTasks(delivered_submission.tasks);
    if (!merged.ok()) return Fail(merged.status().ToString());
    auto validation = ValidatePlan(slice->plan, *merged, *profile);
    if (!validation.ok()) return Fail(validation.status().ToString());
    RequesterTotals& t = totals[slice->requester_id];
    t.submissions += 1;
    t.tasks += slice->num_tasks();
    t.atomic += slice->num_atomic_tasks();
    t.cost += slice->cost;
    t.bins += slice->bins_posted;
    t.latency_sum += slice->latency_seconds;
    t.feasible = t.feasible && validation->feasible;
    all_feasible = all_feasible && validation->feasible;
  }

  TablePrinter table({"requester", "submissions", "tasks", "atomic", "cost",
                      "bins", "mean latency ms", "feasible"});
  for (const auto& [requester, t] : totals) {
    table.AddRow({requester, std::to_string(t.submissions),
                  std::to_string(t.tasks), std::to_string(t.atomic),
                  TablePrinter::FormatDouble(t.cost, 4),
                  std::to_string(t.bins),
                  TablePrinter::FormatDouble(
                      t.latency_sum / t.submissions * 1e3, 3),
                  t.feasible ? "yes" : "NO"});
  }
  table.Print(std::cout);

  StreamingStats stats = engine.stats();
  const CacheStats cache_stats = engine.cache().stats();
  std::printf(
      "replayed %llu admitted submissions (%llu tasks, %llu atomic) in "
      "%.3f s\n"
      "%llu flushes (%llu size, %llu deadline, %llu drain), "
      "solve %.3f s, cost %.4f\n"
      "opq cache: %llu hits, %llu misses (%.1f%% hit rate), "
      "%llu evictions, %llu bytes resident (peak %llu)\n"
      "backpressure: %llu rejected, %llu shed, %llu blocked "
      "(peak queue %llu atomic / %llu bytes)\n",
      static_cast<unsigned long long>(stats.submissions),
      static_cast<unsigned long long>(stats.tasks),
      static_cast<unsigned long long>(stats.atomic_tasks), replay_seconds,
      static_cast<unsigned long long>(stats.flushes),
      static_cast<unsigned long long>(stats.flushes_by_size),
      static_cast<unsigned long long>(stats.flushes_by_deadline),
      static_cast<unsigned long long>(stats.flushes_by_drain),
      stats.solve_seconds, stats.total_cost,
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      cache_stats.hit_rate() * 100.0,
      static_cast<unsigned long long>(cache_stats.evictions),
      static_cast<unsigned long long>(cache_stats.bytes),
      static_cast<unsigned long long>(cache_stats.peak_bytes),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.blocked),
      static_cast<unsigned long long>(stats.peak_queue_atomic_tasks),
      static_cast<unsigned long long>(stats.peak_queue_bytes));
  if (backpressured > 0) {
    std::printf("%llu of %zu submissions failed with ResourceExhausted "
                "(rejected or shed)\n",
                static_cast<unsigned long long>(backpressured),
                futures.size());
  }
  return all_feasible ? 0 : 3;
}

std::atomic<bool> g_serve_stop{false};

void OnServeSignal(int) { g_serve_stop.store(true); }

/// Parses the fairness flags shared with FairnessOptions; giving any of
/// them implies --fairness.
bool ParseFairnessFlags(const std::map<std::string, std::string>& flags,
                        FairnessOptions* fairness) {
  fairness->enabled =
      flags.count("fairness") || flags.count("fair-quantum") ||
      flags.count("default-weight") || flags.count("tenant-weights") ||
      flags.count("tenant-max-atomic") || flags.count("tenant-max-bytes");
  if (!ParseUintFlag(flags, "fair-quantum", &fairness->quantum_atomic_tasks) ||
      !ParseUintFlag(flags, "default-weight", &fairness->default_weight) ||
      !ParseUintFlag(flags, "tenant-max-atomic",
                     &fairness->tenant_max_pending_atomic_tasks) ||
      !ParseUintFlag(flags, "tenant-max-bytes",
                     &fairness->tenant_max_pending_bytes)) {
    return false;
  }
  if (auto it = flags.find("tenant-weights"); it != flags.end()) {
    // Comma-separated name=weight pairs: --tenant-weights gold=4,free=1
    std::string spec = it->second;
    size_t begin = 0;
    while (begin <= spec.size()) {
      size_t end = spec.find(',', begin);
      if (end == std::string::npos) end = spec.size();
      const std::string pair = spec.substr(begin, end - begin);
      const size_t eq = pair.find('=');
      uint64_t weight = 0;
      if (eq == 0 || eq == std::string::npos ||
          !ParseUint(pair.substr(eq + 1)).ok() ||
          (weight = *ParseUint(pair.substr(eq + 1))) == 0) {
        Fail("--tenant-weights expects name=W pairs with W >= 1, got '" +
             pair + "'");
        return false;
      }
      fairness->weights[pair.substr(0, eq)] = weight;
      begin = end + 1;
      if (end == spec.size()) break;
    }
  }
  return true;
}

/// Parses the multi-platform registry flags shared by serve and
/// serve-loop: `--profiles name=FILE,...` registers one platform per CSV
/// profile, `--routing cheapest|sticky|explicit` picks the policy, and
/// `--recalibrate-every` / `--drift-tolerance` configure the online
/// recalibration loop. Any of them creates the registry; `*registry`
/// stays null when none is given (single-profile serving, the previous
/// behavior). Prints the error and returns false on a bad value.
bool ParseRegistryFlags(const std::map<std::string, std::string>& flags,
                        std::unique_ptr<ProfileRegistry>* registry,
                        RoutingPolicy* routing) {
  RecalibrationOptions recalibration;
  if (!ParseUintFlag(flags, "recalibrate-every",
                     &recalibration.recalibrate_every) ||
      !ParseDoubleFlag(flags, "drift-tolerance", 0.0, 1.0,
                       &recalibration.drift_tolerance)) {
    return false;
  }
  if (auto it = flags.find("routing"); it != flags.end()) {
    auto parsed = ParseRoutingPolicy(it->second);
    if (!parsed.ok()) {
      Fail(parsed.status().ToString());
      return false;
    }
    *routing = *parsed;
  }
  if (!flags.count("profiles") && !flags.count("routing") &&
      !flags.count("recalibrate-every") && !flags.count("drift-tolerance")) {
    return true;
  }
  *registry = std::make_unique<ProfileRegistry>(recalibration);
  if (auto it = flags.find("profiles"); it != flags.end()) {
    const std::string& spec = it->second;
    size_t begin = 0;
    while (begin < spec.size()) {
      size_t end = spec.find(',', begin);
      if (end == std::string::npos) end = spec.size();
      const std::string pair = spec.substr(begin, end - begin);
      const size_t eq = pair.find('=');
      if (eq == 0 || eq == std::string::npos || eq + 1 >= pair.size()) {
        Fail("--profiles expects name=FILE pairs, got '" + pair + "'");
        return false;
      }
      auto profile = LoadBinProfileCsv(pair.substr(eq + 1));
      if (!profile.ok()) {
        Fail(profile.status().ToString());
        return false;
      }
      auto registered =
          (*registry)->Register(pair.substr(0, eq), std::move(*profile));
      if (!registered.ok()) {
        Fail(registered.status().ToString());
        return false;
      }
      begin = end + 1;
    }
  }
  return true;
}

/// Prints one line of routing/recalibration counters per platform.
void PrintPlatformStats(const ProfileRegistry& registry) {
  for (const PlatformStats& p : registry.stats()) {
    std::printf(
        "platform %s: epoch %llu%s, %llu promotion(s), %llu submission(s) "
        "routed (%llu atomic), billed %.4f, %llu answer(s) folded, "
        "last drift %.4f\n",
        p.platform_id.c_str(), static_cast<unsigned long long>(p.epoch),
        p.live ? "" : " (retired)",
        static_cast<unsigned long long>(p.promotions),
        static_cast<unsigned long long>(p.routed_submissions),
        static_cast<unsigned long long>(p.routed_atomic_tasks), p.billed_cost,
        static_cast<unsigned long long>(p.answers_folded),
        p.last_recalibration_delta);
  }
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  // Multi-platform registry first: with --profiles, the engine's ctor
  // profile may fall back to the first registered platform's. The
  // registry outlives the engine (declared before it, destroyed after),
  // which the engine's epoch listener requires.
  StreamingOptions options;
  std::unique_ptr<ProfileRegistry> registry;
  if (!ParseRegistryFlags(flags, &registry, &options.routing)) return 1;

  // The bin profile comes from a CSV, a built-in dataset model, or (for
  // the single-profile ctor fallback) the first registered platform.
  Result<BinProfile> profile = Status::Internal("unreachable");
  if (auto it = flags.find("profile"); it != flags.end()) {
    profile = LoadBinProfileCsv(it->second);
  } else if (auto dataset = flags.find("dataset"); dataset != flags.end()) {
    DatasetKind kind;
    if (dataset->second == "jelly") {
      kind = DatasetKind::kJelly;
    } else if (dataset->second == "smic") {
      kind = DatasetKind::kSmic;
    } else {
      return Fail("unknown dataset: " + dataset->second);
    }
    uint64_t max_cardinality = 10;
    if (!ParseUintFlag(flags, "max-cardinality", &max_cardinality)) return 1;
    if (max_cardinality == 0 || max_cardinality > 64) {
      return Fail("--max-cardinality expects an integer in [1, 64]");
    }
    profile = BuildProfile(MakeModel(kind),
                           static_cast<uint32_t>(max_cardinality));
  } else if (registry != nullptr && registry->live_count() > 0) {
    profile = BinProfile(*registry->LiveSnapshots().front().profile);
  } else {
    return Usage();
  }
  if (!profile.ok()) return Fail(profile.status().ToString());
  if (registry != nullptr) {
    if (registry->live_count() == 0) {
      // --routing/--recalibrate-every without --profiles: serve the
      // single loaded profile through the registry as platform "default".
      auto registered = registry->Register("default", *profile);
      if (!registered.ok()) return Fail(registered.status().ToString());
    }
    options.registry = registry.get();
  }

  auto parse_size = [&](const char* key, size_t* out) -> bool {
    uint64_t value = *out;
    if (!ParseUintFlag(flags, key, &value)) return false;
    *out = static_cast<size_t>(value);
    return true;
  };
  if (!parse_size("max-pending-atomic", &options.max_pending_atomic_tasks) ||
      !parse_size("max-pending-submissions",
                  &options.max_pending_submissions)) {
    return 1;
  }
  double max_delay_ms = options.max_delay_seconds * 1e3;
  if (!ParseDoubleFlag(flags, "max-delay-ms", 0.0, 1e9, &max_delay_ms)) {
    return 1;
  }
  options.max_delay_seconds = max_delay_ms / 1e3;
  if (!ParseThreadsFlag(flags, &options.num_threads)) return 1;
  if (!ParseSharingFlag(flags, &options.sharing)) return 1;
  if (!ParseResourceFlags(flags, &options.resources)) return 1;
  if (!ParseFairnessFlags(flags, &options.fairness)) return 1;

  ServerOptions server_options;
  uint64_t port = 8080;
  uint64_t workers = server_options.num_workers;
  uint64_t max_connections = server_options.max_connections;
  uint64_t max_body = server_options.parser_limits.max_body_bytes;
  if (!ParseUintFlag(flags, "port", &port) ||
      !ParseUintFlag(flags, "workers", &workers) ||
      !ParseUintFlag(flags, "max-connections", &max_connections) ||
      !ParseUintFlag(flags, "retry-after",
                     &server_options.retry_after_seconds) ||
      !ParseUintFlag(flags, "max-body-bytes", &max_body)) {
    return 1;
  }
  if (port > 65535) return Fail("--port expects an integer in [0, 65535]");
  if (workers == 0 || workers > 256) {
    return Fail("--workers expects an integer in [1, 256]");
  }
  if (max_connections == 0) return Fail("--max-connections must be >= 1");
  if (max_body == 0) return Fail("--max-body-bytes must be >= 1");
  server_options.port = static_cast<uint16_t>(port);
  server_options.num_workers = static_cast<size_t>(workers);
  server_options.max_connections = static_cast<size_t>(max_connections);
  server_options.parser_limits.max_body_bytes = static_cast<size_t>(max_body);
  if (auto it = flags.find("address"); it != flags.end()) {
    server_options.address = it->second;
  }

  // Durability: --wal-dir opens (and recovers) the submission journal
  // before the engine exists, so every admission below is logged.
  std::unique_ptr<SubmissionJournal> journal;
  std::vector<RecoveredSubmission> recovered;
  if (auto it = flags.find("wal-dir"); it != flags.end()) {
    JournalOptions journal_options;
    journal_options.wal.dir = it->second;
    if (!ParseUintFlag(flags, "wal-segment-bytes",
                       &journal_options.wal.segment_max_bytes) ||
        !ParseUintFlag(flags, "commit-wait-micros",
                       &journal_options.wal.commit_wait_micros)) {
      return 1;
    }
    if (journal_options.wal.segment_max_bytes == 0) {
      return Fail("--wal-segment-bytes must be >= 1");
    }
    auto opened = SubmissionJournal::Open(std::move(journal_options));
    if (!opened.ok()) return Fail(opened.status().ToString());
    journal = std::move(opened->journal);
    recovered = std::move(opened->pending);
    options.durability = journal.get();
  }
  server_options.journal = journal.get();

  // Background tape feed through the ingestion connector (optional).
  std::unique_ptr<FileReplaySource> replay_source;
  if (auto it = flags.find("replay"); it != flags.end()) {
    FileReplayOptions replay_options;
    replay_options.path = it->second;
    if (!ParseDoubleFlag(flags, "replay-speed", 0.0, 1e9,
                         &replay_options.speedup) ||
        !ParseUintFlag(flags, "replay-loop", &replay_options.loop_count)) {
      return 1;
    }
    if (auto prefix = flags.find("replay-id-prefix");
        prefix != flags.end()) {
      replay_options.submission_id_prefix = prefix->second;
    }
    auto src = FileReplaySource::Open(std::move(replay_options));
    if (!src.ok()) return Fail(src.status().ToString());
    replay_source = std::move(*src);
  }

  StreamingEngine engine(*profile, options);
  if (journal != nullptr) {
    const JournalRecoveryInfo recovery = journal->stats().recovery;
    const size_t readmitted = engine.ReplayRecovered(std::move(recovered));
    if (Status st = journal->CommitRecovery(); !st.ok()) {
      return Fail(st.ToString());
    }
    std::string torn;
    if (recovery.truncated) {
      torn = " (torn tail: " + std::to_string(recovery.truncated_bytes) +
             " bytes truncated, " + recovery.truncate_reason + ")";
    }
    std::printf(
        "wal: %s; %llu records over %llu segments, %llu outcomes retained, "
        "%zu unfinished submissions re-admitted%s\n",
        recovery.clean_shutdown ? "clean shutdown" : "recovered",
        static_cast<unsigned long long>(recovery.records_replayed),
        static_cast<unsigned long long>(recovery.segments_scanned),
        static_cast<unsigned long long>(recovery.outcomes_recovered),
        readmitted, torn.c_str());
  }
  SladeServer server(&engine, server_options);
  if (Status st = server.Start(); !st.ok()) return Fail(st.ToString());

  std::thread replay_thread;
  if (replay_source != nullptr) {
    replay_thread = std::thread([&engine, source = replay_source.get()] {
      TimedSubmission submission;
      for (;;) {
        auto next = source->Next(&submission);
        if (!next.ok() || !*next) return;
        // Fire and forget: the feed's outcomes show up in /v1/stats, and
        // a rejected submission is an expected backpressure outcome.
        engine.Submit(submission.requester, std::move(submission.tasks),
                      std::move(submission.submission_id));
      }
    });
  }

  std::printf("listening on %s:%u (%zu workers, %s sharing, fairness %s, "
              "backpressure %s)\n",
              server_options.address.c_str(), server.port(),
              server_options.num_workers, BatchSharingName(options.sharing),
              options.fairness.enabled ? "on" : "off",
              BackpressurePolicyName(options.resources.backpressure));
  if (registry != nullptr) {
    std::printf("routing: %s policy over %zu platform(s), recalibrate every "
                "%llu answer(s), drift tolerance %.3f\n",
                RoutingPolicyName(options.routing), registry->live_count(),
                static_cast<unsigned long long>(
                    registry->recalibration().recalibrate_every),
                registry->recalibration().drift_tolerance);
  }
  std::fflush(stdout);  // scripts parse the bound port from this line

  std::signal(SIGINT, OnServeSignal);
  std::signal(SIGTERM, OnServeSignal);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down: draining in-flight requests\n");
  if (replay_source != nullptr) replay_source->Cancel();
  if (replay_thread.joinable()) replay_thread.join();
  // Shutdown drains the engine and, with --wal-dir, writes the
  // clean-shutdown checkpoint so the next start skips the replay scan.
  server.Shutdown();
  engine.Drain();

  const ServerStats stats = server.stats();
  const StreamingStats engine_stats = engine.stats();
  std::printf(
      "served %llu requests over %llu connections "
      "(%llu 2xx, %llu 4xx, %llu 5xx, %llu backpressure 429s)\n"
      "engine: %llu submissions, %llu flushes, solve %.3f s, cost %.4f\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.responses_2xx),
      static_cast<unsigned long long>(stats.responses_4xx),
      static_cast<unsigned long long>(stats.responses_5xx),
      static_cast<unsigned long long>(stats.rejected_429),
      static_cast<unsigned long long>(engine_stats.submissions),
      static_cast<unsigned long long>(engine_stats.flushes),
      engine_stats.solve_seconds, engine_stats.total_cost);
  if (replay_source != nullptr) {
    std::printf("replay feed: %llu submissions delivered from the tape\n",
                static_cast<unsigned long long>(replay_source->delivered()));
  }
  if (registry != nullptr) PrintPlatformStats(*registry);
  if (journal != nullptr) {
    const JournalStats journal_stats = journal->stats();
    std::printf(
        "durability: %llu records appended (%llu admits, %llu completes, "
        "%llu rejects, %llu checkpoints), %llu fsyncs, "
        "commit batch p50 %.1f / p95 %.1f, %llu duplicate hits\n",
        static_cast<unsigned long long>(
            journal_stats.wal.records_appended),
        static_cast<unsigned long long>(journal_stats.admits),
        static_cast<unsigned long long>(journal_stats.completes),
        static_cast<unsigned long long>(journal_stats.rejects),
        static_cast<unsigned long long>(journal_stats.checkpoints),
        static_cast<unsigned long long>(journal_stats.wal.fsyncs),
        journal_stats.wal.commit_batch_p50,
        journal_stats.wal.commit_batch_p95,
        static_cast<unsigned long long>(engine_stats.duplicate_hits));
  }
  return 0;
}

int CmdServeLoop(const std::map<std::string, std::string>& flags) {
  auto dataset = flags.find("dataset");
  auto workload_flag = flags.find("workload");
  if (dataset == flags.end() || workload_flag == flags.end()) return Usage();
  DatasetKind kind;
  if (dataset->second == "jelly") {
    kind = DatasetKind::kJelly;
  } else if (dataset->second == "smic") {
    kind = DatasetKind::kSmic;
  } else {
    return Fail("unknown dataset: " + dataset->second);
  }
  uint64_t max_cardinality = 10;
  if (!ParseUintFlag(flags, "max-cardinality", &max_cardinality)) return 1;
  if (max_cardinality == 0 || max_cardinality > 64) {
    return Fail("--max-cardinality expects an integer in [1, 64]");
  }
  // One model drives both the planner's bin profile and the simulated
  // workers, so the loop's plans are calibrated to its marketplace.
  const DatasetModel model = MakeModel(kind);
  auto profile = BuildProfile(model, static_cast<uint32_t>(max_cardinality));
  if (!profile.ok()) return Fail(profile.status().ToString());
  auto submissions = LoadTimedWorkloadCsv(workload_flag->second);
  if (!submissions.ok()) return Fail(submissions.status().ToString());
  if (submissions->empty()) return Fail("workload is empty");

  ClosedLoopOptions options;
  options.platform.model = model;

  // Loop shape.
  uint64_t rounds = options.max_rounds;
  uint64_t dispatch_threads = options.dispatch_threads;
  if (!ParseUintFlag(flags, "rounds", &rounds) ||
      !ParseUintFlag(flags, "dispatch-threads", &dispatch_threads) ||
      !ParseUintFlag(flags, "max-redecompositions",
                     &options.max_redecomposed_atomic_tasks)) {
    return 1;
  }
  if (rounds == 0 || rounds > 64) {
    return Fail("--rounds expects an integer in [1, 64]");
  }
  if (dispatch_threads == 0 || dispatch_threads > 1024) {
    return Fail("--dispatch-threads expects an integer in [1, 1024]");
  }
  options.max_rounds = static_cast<uint32_t>(rounds);
  options.dispatch_threads = static_cast<uint32_t>(dispatch_threads);
  if (!ParseDoubleFlag(flags, "retry-cost-multiple", 0.0, 1e6,
                       &options.retry_cost_multiple)) {
    return 1;
  }
  if (auto it = flags.find("inference"); it != flags.end()) {
    if (it->second == "majority") {
      options.inference = InferenceKind::kMajorityVote;
    } else if (it->second == "ds" || it->second == "dawid-skene") {
      options.inference = InferenceKind::kDawidSkene;
    } else {
      return Fail("unknown inference: " + it->second + " (want majority|ds)");
    }
  }

  // Marketplace steady state.
  uint64_t population = options.platform.population;
  if (!ParseUintFlag(flags, "platform-seed", &options.platform.seed) ||
      !ParseUintFlag(flags, "population", &population) ||
      !ParseDoubleFlag(flags, "skill-sigma", 0.0, 10.0,
                       &options.platform.skill_sigma) ||
      !ParseDoubleFlag(flags, "spammers", 0.0, 1.0,
                       &options.platform.spammer_fraction)) {
    return 1;
  }
  if (population == 0 || population > (1ull << 31)) {
    return Fail("--population expects an integer in [1, 2^31]");
  }
  options.platform.population = static_cast<uint32_t>(population);

  // Fault schedule.
  if (auto it = flags.find("spammer-burst"); it != flags.end()) {
    unsigned long long period = 0, length = 0;
    double fraction = 0.0;
    if (std::sscanf(it->second.c_str(), "%llu,%llu,%lf", &period, &length,
                    &fraction) != 3 ||
        period == 0 || length > period || fraction < 0.0 || fraction > 1.0) {
      return Fail("--spammer-burst expects P,L,F with L <= P and F in [0,1]");
    }
    options.faults.spammer_burst_period = period;
    options.faults.spammer_burst_length = length;
    options.faults.spammer_burst_fraction = fraction;
  }
  if (auto it = flags.find("stragglers"); it != flags.end()) {
    double fraction = 0.0, multiplier = 0.0;
    if (std::sscanf(it->second.c_str(), "%lf,%lf", &fraction, &multiplier) !=
            2 ||
        fraction < 0.0 || fraction > 1.0 || multiplier <= 0.0) {
      return Fail("--stragglers expects F,X with F in [0,1] and X > 0");
    }
    options.faults.straggler_fraction = fraction;
    options.faults.straggler_multiplier = multiplier;
  }
  if (auto it = flags.find("outage"); it != flags.end()) {
    unsigned long long period = 0, length = 0;
    if (std::sscanf(it->second.c_str(), "%llu,%llu", &period, &length) != 2 ||
        period == 0 || length > period) {
      return Fail("--outage expects P,L with L <= P");
    }
    options.faults.outage_period = period;
    options.faults.outage_length = length;
  }
  if (!ParseUintFlag(flags, "churn-period", &options.faults.churn_period) ||
      !ParseUintFlag(flags, "fault-seed", &options.faults.seed)) {
    return 1;
  }

  // Admission path: same flags as `stream`.
  auto parse_size = [&](const char* key, size_t* out) -> bool {
    uint64_t value = *out;
    if (!ParseUintFlag(flags, key, &value)) return false;
    *out = static_cast<size_t>(value);
    return true;
  };
  if (!parse_size("max-pending-atomic",
                  &options.streaming.max_pending_atomic_tasks) ||
      !parse_size("max-pending-submissions",
                  &options.streaming.max_pending_submissions)) {
    return 1;
  }
  double max_delay_ms = options.streaming.max_delay_seconds * 1e3;
  if (!ParseDoubleFlag(flags, "max-delay-ms", 0.0, 1e9, &max_delay_ms)) {
    return 1;
  }
  options.streaming.max_delay_seconds = max_delay_ms / 1e3;
  if (!ParseThreadsFlag(flags, &options.streaming.num_threads)) return 1;
  if (!ParseSharingFlag(flags, &options.streaming.sharing)) return 1;
  if (!ParseResourceFlags(flags, &options.streaming.resources)) return 1;

  // Multi-platform registry + online recalibration. With --profiles the
  // registered profiles are the planner's (possibly stale) beliefs about
  // the one simulated marketplace; without it the dataset profile serves
  // as platform "default". The recalibration loop then folds the
  // marketplace's ground-truth-scored answers back into the serving
  // platform and promotes a new epoch when the drift tolerance trips.
  std::unique_ptr<ProfileRegistry> registry;
  if (!ParseRegistryFlags(flags, &registry, &options.streaming.routing)) {
    return 1;
  }
  if (registry != nullptr) {
    if (registry->live_count() == 0) {
      auto registered = registry->Register("default", *profile);
      if (!registered.ok()) return Fail(registered.status().ToString());
    }
    options.streaming.registry = registry.get();
  }

  // Ground truth: drawn per atomic task, independent of the platform's
  // RNG so the same labels replay under any fault scenario.
  double positive_rate = 0.5;
  uint64_t truth_seed = 7;
  if (!ParseDoubleFlag(flags, "positive-rate", 0.0, 1.0, &positive_rate) ||
      !ParseUintFlag(flags, "seed", &truth_seed)) {
    return 1;
  }
  Xoshiro256 truth_rng(truth_seed);
  std::vector<ClosedLoopWorkload> workloads;
  workloads.reserve(submissions->size());
  for (TimedSubmission& submission : *submissions) {
    ClosedLoopWorkload workload;
    workload.requester = std::move(submission.requester);
    workload.tasks = std::move(submission.tasks);
    workload.ground_truth.reserve(workload.num_atomic_tasks());
    for (size_t k = 0; k < workload.num_atomic_tasks(); ++k) {
      workload.ground_truth.push_back(truth_rng.NextBernoulli(positive_rate));
    }
    workloads.push_back(std::move(workload));
  }

  std::printf(
      "serve-loop: %s profile (m=%llu), %zu workload(s), %u round(s) max, "
      "%s inference, %u dispatch thread(s)\n"
      "platform: %u workers, skill sigma %.2f, %.1f%% steady spammers, "
      "faults: %s\n",
      DatasetKindName(kind), static_cast<unsigned long long>(max_cardinality),
      workloads.size(), options.max_rounds,
      InferenceKindName(options.inference), options.dispatch_threads,
      options.platform.population, options.platform.skill_sigma,
      options.platform.spammer_fraction * 100.0,
      options.faults.ToString().c_str());

  Stopwatch wall;
  ClosedLoopEngine engine(*profile, options);
  auto report = engine.Run(workloads);
  if (!report.ok()) return Fail(report.status().ToString());
  const double seconds = wall.ElapsedSeconds();

  std::printf("%s", report->ToString().c_str());
  std::printf(
      "serving: %llu flushes, solve %.3f s; faults: %llu outage verdicts, "
      "%llu burst posts, %llu straggler posts\n"
      "wall: %.3f s (%.0f answers/s)\n",
      static_cast<unsigned long long>(report->streaming.flushes),
      report->streaming.solve_seconds,
      static_cast<unsigned long long>(report->faults.outages),
      static_cast<unsigned long long>(report->faults.burst_posts),
      static_cast<unsigned long long>(report->faults.straggler_posts),
      seconds,
      seconds > 0.0 ? static_cast<double>(report->total_answers) / seconds
                    : 0.0);
  if (registry != nullptr) PrintPlatformStats(*registry);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags) return Usage();
  if (command == "profile") return CmdProfile(*flags);
  if (command == "solve") return CmdSolve(*flags);
  if (command == "opq") return CmdOpq(*flags);
  if (command == "validate") return CmdValidate(*flags);
  if (command == "batch") return CmdBatch(*flags);
  if (command == "stream") return CmdStream(*flags);
  if (command == "serve") return CmdServe(*flags);
  if (command == "serve-loop") return CmdServeLoop(*flags);
  return Usage();
}
