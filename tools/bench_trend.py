#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against committed baselines.

Each BENCH_<name>.json (written by bench/bench_util.h's BenchJsonWriter) is
a flat list of records; string fields identify a configuration and numeric
fields are its measurements. This tool pairs fresh and baseline records by
their string fields and prints a delta table, flagging regressions on
metrics where bigger is worse (latency, wall time, eviction/rejected rates)
and improvements where bigger is better (hit rate, throughput).

Two gating knobs, independent of the --threshold report filter:
  --strict            exit 1 on any regression beyond --threshold
  --max-regress-pct P exit 1 only when a regression exceeds P percent --
                      the blocking-CI mode: small drifts print, runaway
                      regressions fail the PR. Pick P well above runner
                      timing noise (the CI gate uses 200).

Usage:
  tools/bench_trend.py [--fresh DIR] [--baseline DIR]
                       [--threshold PCT] [--strict] [--max-regress-pct PCT]
"""

import argparse
import collections
import glob
import json
import os
import sys

# Substrings that classify a numeric field. Bigger-is-worse wins ties so a
# hypothetical "latency_rate" is treated conservatively.
WORSE_IF_BIGGER = ("latency", "seconds", "wall", "eviction", "rejected",
                   "shed", "blocked", "bytes", "dropped")
BETTER_IF_BIGGER = ("hit_rate", "per_second", "throughput", "delivered",
                    "speedup", "accuracy")


def classify(field):
    name = field.lower()
    if any(s in name for s in WORSE_IF_BIGGER):
        return "worse-if-bigger"
    if any(s in name for s in BETTER_IF_BIGGER):
        return "better-if-bigger"
    return "neutral"


def record_key(record):
    """Identity of a record: its string fields, in name order."""
    return tuple(sorted((k, v) for k, v in record.items()
                        if isinstance(v, str)))


def load(path):
    with open(path) as f:
        data = json.load(f)
    return data.get("bench", os.path.basename(path)), data.get("records", [])


def format_row(cols, widths):
    return "  ".join(c.ljust(w) for c, w in zip(cols, widths)).rstrip()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", default=".",
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory with committed baseline BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="flag deltas beyond this percentage")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression exceeds threshold")
    parser.add_argument("--max-regress-pct", type=float, default=None,
                        help="exit 1 when any regression exceeds this "
                             "percentage (the blocking-CI gate)")
    args = parser.parse_args()

    baselines = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baselines:
        print(f"bench_trend: no baselines under {args.baseline}; nothing to "
              "compare")
        return 0

    rows = []
    regressions = 0
    blocking = []  # (bench, config, metric, delta_pct) beyond the gate
    compared_files = 0
    for baseline_path in baselines:
        fresh_path = os.path.join(args.fresh, os.path.basename(baseline_path))
        if not os.path.exists(fresh_path):
            print(f"bench_trend: {os.path.basename(baseline_path)} not "
                  "produced by this run; skipping")
            continue
        compared_files += 1
        bench, base_records = load(baseline_path)
        _, fresh_records = load(fresh_path)
        # Several records can share one string-field identity (a sweep over
        # a numeric knob); the emit order is deterministic, so pair records
        # positionally within each identity group.
        fresh_groups = collections.defaultdict(list)
        for r in fresh_records:
            fresh_groups[record_key(r)].append(r)
        base_groups = collections.defaultdict(list)
        for r in base_records:
            base_groups[record_key(r)].append(r)
        pairs = []
        for key, group in base_groups.items():
            for position, base in enumerate(group):
                fresh_group = fresh_groups.get(key, [])
                if position >= len(fresh_group):
                    continue  # configuration no longer produced
                label = " ".join(v for _, v in key) or "(default)"
                if len(group) > 1:
                    label += f" #{position}"
                pairs.append((label, base, fresh_group[position]))
        for config, base, fresh in pairs:
            for field, base_value in sorted(base.items()):
                if not isinstance(base_value, (int, float)):
                    continue
                fresh_value = fresh.get(field)
                if not isinstance(fresh_value, (int, float)):
                    continue
                if base_value == 0 and fresh_value == 0:
                    continue
                denom = abs(base_value) if base_value != 0 else 1.0
                delta_pct = (fresh_value - base_value) / denom * 100.0
                if abs(delta_pct) < args.threshold:
                    continue
                kind = classify(field)
                verdict = ""
                if kind == "worse-if-bigger":
                    verdict = "REGRESSION" if delta_pct > 0 else "improved"
                elif kind == "better-if-bigger":
                    verdict = "REGRESSION" if delta_pct < 0 else "improved"
                if verdict == "REGRESSION":
                    regressions += 1
                    if (args.max_regress_pct is not None
                            and abs(delta_pct) > args.max_regress_pct):
                        blocking.append((bench, config, field, delta_pct))
                rows.append([bench, config, field, f"{base_value:.6g}",
                             f"{fresh_value:.6g}", f"{delta_pct:+.1f}%",
                             verdict])

    if not rows:
        print(f"bench_trend: {compared_files} file(s) compared, no deltas "
              f"beyond {args.threshold:.0f}% -- flat")
        return 0

    header = ["bench", "config", "metric", "baseline", "fresh", "delta",
              "verdict"]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    print(format_row(header, widths))
    print(format_row(["-" * w for w in widths], widths))
    for row in rows:
        print(format_row(row, widths))
    print(f"\nbench_trend: {len(rows)} delta(s) beyond "
          f"{args.threshold:.0f}%, {regressions} flagged as regressions")
    if blocking:
        print(f"bench_trend: {len(blocking)} regression(s) exceed the "
              f"blocking gate of {args.max_regress_pct:.0f}%:")
        for bench, config, field, delta_pct in blocking:
            print(f"  {bench} | {config} | {field}: {delta_pct:+.1f}%")
        return 1
    if args.strict and regressions > 0:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
