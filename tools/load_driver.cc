// load_driver: many-connection HTTP load generator for `slade_cli serve`.
//
//   load_driver --port P [--host H] [--connections N] [--repeat R]
//               (--workload TIMED.csv [--speed X] | --smoke)
//               [--out NAME] [--tenants a,b,c]
//               [--submission-id-prefix P] [--duplicate-replay]
//
// Replays a timed workload (CSV rows `arrival_ms,requester,task,threshold`,
// the same format `slade_cli stream` consumes) against a running serve
// front end over N concurrent keep-alive connections. --speed X replays
// arrivals X times faster than recorded; 0 (the default) submits as fast
// as the server accepts. --smoke generates a small deterministic synthetic
// workload instead (64 connections, 4 tenants, 128 submissions) -- the CI
// smoke leg uses it against an unbounded server, so its 429 count is
// deterministically zero and safe to gate on.
//
// --submission-id-prefix P stamps submission k of the workload with the
// deterministic idempotency id "P-<k>" (requires a server started with
// --wal-dir to mean anything). With --repeat R > 1, rounds after the
// first re-send the same ids, so a durable server answers them from the
// journal ("duplicate":true) without re-solving. --duplicate-replay goes
// further and proves at-most-once semantics end to end: after the
// measured run it re-sends every submission that was 2xx-acked and fails
// (exit 1) unless each one comes back as a duplicate of the original --
// a fresh solve there would be double billing.
//
// Emits BENCH_<NAME>.json (default NAME "server"; same schema family as
// the bench harnesses): one overall record with p50/p95/p99 latency,
// throughput, the 429 rate and the duplicate count, plus one record per
// tenant with its delivered throughput. Exit code is 0 when every request
// got an HTTP response (429s included -- backpressure is an answer, not a
// failure) and 1 on connect/protocol failures or a failed
// --duplicate-replay check.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "io/csv_reader.h"
#include "io/model_io.h"

namespace {

using namespace slade;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  load_driver --port P [--host H] [--connections N] [--repeat R]\n"
      "              (--workload TIMED.csv [--speed X] | --smoke)\n"
      "              [--out NAME] [--submission-id-prefix P] "
      "[--duplicate-replay]\n");
  return 2;
}

std::optional<std::map<std::string, std::string>> ParseFlags(int argc,
                                                             char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) return std::nullopt;
    if (std::strcmp(key, "--smoke") == 0 ||
        std::strcmp(key, "--duplicate-replay") == 0) {
      flags[key + 2] = "1";
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    flags[key + 2] = argv[++i];
  }
  return flags;
}

struct Sample {
  int status_code = 0;       ///< 0 = transport failure
  double latency_seconds = 0.0;
  std::string tenant;
  size_t index = 0;          ///< workload index this request replayed
  bool duplicate = false;    ///< server answered from the journal
};

/// One keep-alive client connection with a blocking socket.
class ClientConnection {
 public:
  ClientConnection(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~ClientConnection() { Close(); }

  bool EnsureConnected() {
    if (fd_ >= 0) return true;
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Close();
      return false;
    }
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
    residual_.clear();
  }

  /// Sends one request and reads one response; returns the status code or
  /// 0 on a transport/framing failure (the connection is closed then).
  /// When `body_out` is non-null it receives the response body.
  int RoundTrip(const std::string& request,
                std::string* body_out = nullptr) {
    if (!EnsureConnected()) return 0;
    size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n =
          send(fd_, request.data() + sent, request.size() - sent, 0);
      if (n <= 0) {
        Close();
        return 0;
      }
      sent += static_cast<size_t>(n);
    }
    // Read the response head (status line + headers).
    std::string head = std::move(residual_);
    residual_.clear();
    size_t header_end;
    while ((header_end = head.find("\r\n\r\n")) == std::string::npos) {
      char buf[8192];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0 || head.size() > (1u << 20)) {
        Close();
        return 0;
      }
      head.append(buf, static_cast<size_t>(n));
    }
    const int status = ParseStatus(head);
    const size_t body_len = ParseContentLength(head, header_end);
    // Read (and discard) the body; keep pipelined leftovers for the next
    // response on this connection.
    size_t have = head.size() - (header_end + 4);
    while (have < body_len) {
      char buf[8192];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        Close();
        return 0;
      }
      head.append(buf, static_cast<size_t>(n));
      have += static_cast<size_t>(n);
    }
    if (body_out != nullptr) {
      *body_out = head.substr(header_end + 4, body_len);
    }
    residual_ = head.substr(header_end + 4 + body_len);
    if (ConnectionCloses(head, header_end)) Close();
    return status;
  }

 private:
  static int ParseStatus(const std::string& head) {
    // "HTTP/1.1 200 OK"
    const size_t sp = head.find(' ');
    if (sp == std::string::npos || sp + 4 > head.size()) return 0;
    return std::atoi(head.c_str() + sp + 1);
  }

  static std::string LowerHead(const std::string& head, size_t header_end) {
    std::string lower = head.substr(0, header_end);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::tolower(c));
                   });
    return lower;
  }

  static size_t ParseContentLength(const std::string& head,
                                   size_t header_end) {
    const std::string lower = LowerHead(head, header_end);
    const size_t pos = lower.find("content-length:");
    if (pos == std::string::npos) return 0;
    return static_cast<size_t>(
        std::strtoull(lower.c_str() + pos + 15, nullptr, 10));
  }

  static bool ConnectionCloses(const std::string& head, size_t header_end) {
    return LowerHead(head, header_end).find("connection: close") !=
           std::string::npos;
  }

  const std::string host_;
  const uint16_t port_;
  int fd_ = -1;
  std::string residual_;  ///< bytes past the last response's body
};

std::string BuildSubmitRequest(const std::string& host,
                               const TimedSubmission& submission,
                               const std::string& submission_id) {
  std::string body = "{\"requester\": \"" + submission.requester + "\", ";
  if (!submission_id.empty()) {
    body += "\"submission_id\": \"" + submission_id + "\", ";
  }
  body += "\"tasks\": [";
  for (size_t i = 0; i < submission.tasks.size(); ++i) {
    if (i > 0) body += ", ";
    body += "[";
    const auto& thresholds = submission.tasks[i].thresholds();
    for (size_t k = 0; k < thresholds.size(); ++k) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%.9g", k > 0 ? ", " : "",
                    thresholds[k]);
      body += buf;
    }
    body += "]";
  }
  body += "]}";
  return "POST /v1/submit HTTP/1.1\r\nHost: " + host +
         "\r\nContent-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// The --smoke workload: deterministic, small, multi-tenant. 128
/// submissions round-robined over 4 tenants, 1-3 tasks each with
/// thresholds stepped over a fixed grid -- no RNG, so every run and every
/// machine produces the same byte stream.
std::vector<TimedSubmission> SmokeWorkload() {
  const char* tenants[] = {"gold", "silver", "bronze", "free"};
  std::vector<TimedSubmission> out;
  out.reserve(128);
  for (int i = 0; i < 128; ++i) {
    TimedSubmission submission;
    submission.arrival_ms = i;
    submission.requester = tenants[i % 4];
    const int num_tasks = 1 + (i % 3);
    for (int t = 0; t < num_tasks; ++t) {
      const double threshold = 0.85 + 0.01 * ((i + t) % 10);
      auto task = CrowdsourcingTask::Homogeneous(1 + (i + t) % 4, threshold);
      submission.tasks.push_back(std::move(*task));
    }
    out.push_back(std::move(submission));
  }
  return out;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);
  if (!flags) return Usage();

  auto port_flag = flags->find("port");
  if (port_flag == flags->end()) return Usage();
  const unsigned long port_raw =
      std::strtoul(port_flag->second.c_str(), nullptr, 10);
  if (port_raw == 0 || port_raw > 65535) {
    return Fail("--port expects an integer in [1, 65535]");
  }
  const uint16_t port = static_cast<uint16_t>(port_raw);
  const std::string host =
      flags->count("host") ? flags->at("host") : "127.0.0.1";
  const bool smoke = flags->count("smoke") != 0;

  std::vector<TimedSubmission> workload;
  if (smoke) {
    workload = SmokeWorkload();
  } else if (auto it = flags->find("workload"); it != flags->end()) {
    auto loaded = LoadTimedWorkloadCsv(it->second);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    workload = std::move(*loaded);
  } else {
    return Usage();
  }
  if (workload.empty()) return Fail("workload is empty");

  size_t connections = smoke ? 64 : 8;
  if (auto it = flags->find("connections"); it != flags->end()) {
    connections = static_cast<size_t>(
        std::strtoul(it->second.c_str(), nullptr, 10));
    if (connections == 0 || connections > 4096) {
      return Fail("--connections expects an integer in [1, 4096]");
    }
  }
  size_t repeat = 1;
  if (auto it = flags->find("repeat"); it != flags->end()) {
    repeat = static_cast<size_t>(
        std::strtoul(it->second.c_str(), nullptr, 10));
    if (repeat == 0 || repeat > 10000) {
      return Fail("--repeat expects an integer in [1, 10000]");
    }
  }
  double speed = 0.0;
  if (auto it = flags->find("speed"); it != flags->end()) {
    speed = std::strtod(it->second.c_str(), nullptr);
    if (speed < 0.0) return Fail("--speed expects a number >= 0");
  }
  const std::string out_name =
      flags->count("out") ? flags->at("out") : "server";
  const std::string id_prefix = flags->count("submission-id-prefix")
                                    ? flags->at("submission-id-prefix")
                                    : "";
  const bool duplicate_replay = flags->count("duplicate-replay") != 0;
  if (duplicate_replay && id_prefix.empty()) {
    return Fail("--duplicate-replay requires --submission-id-prefix");
  }

  // Pre-render every request; the measured section only moves bytes.
  std::vector<std::string> requests;
  requests.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const std::string submission_id =
        id_prefix.empty() ? "" : id_prefix + "-" + std::to_string(i);
    requests.push_back(BuildSubmitRequest(host, workload[i], submission_id));
  }

  // Each connection thread owns the submissions with index % connections
  // == its id, repeated --repeat times; pacing follows recorded arrivals
  // scaled by --speed.
  std::vector<std::vector<Sample>> samples_per_thread(connections);
  std::atomic<uint64_t> transport_failures{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t thread_id = 0; thread_id < connections; ++thread_id) {
    threads.emplace_back([&, thread_id] {
      ClientConnection conn(host, port);
      std::vector<Sample>& samples = samples_per_thread[thread_id];
      for (size_t round = 0; round < repeat; ++round) {
        for (size_t i = thread_id; i < workload.size(); i += connections) {
          if (speed > 0.0) {
            const double due = workload[i].arrival_ms / 1e3 / speed;
            const double now = wall.ElapsedSeconds();
            if (due > now) {
              std::this_thread::sleep_for(
                  std::chrono::duration<double>(due - now));
            }
          }
          Sample sample;
          sample.tenant = workload[i].requester;
          sample.index = i;
          Stopwatch latency;
          std::string body;
          sample.status_code = conn.RoundTrip(
              requests[i], id_prefix.empty() ? nullptr : &body);
          sample.latency_seconds = latency.ElapsedSeconds();
          sample.duplicate =
              body.find("\"duplicate\":true") != std::string::npos;
          if (sample.status_code == 0) {
            transport_failures.fetch_add(1);
          }
          samples.push_back(std::move(sample));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds = wall.ElapsedSeconds();

  // Aggregate.
  std::vector<double> latencies;
  uint64_t total = 0, ok_2xx = 0, rejected_429 = 0, other_error = 0;
  uint64_t duplicates = 0;
  std::vector<bool> acked(workload.size(), false);  // any 2xx per index
  struct TenantAgg {
    uint64_t requests = 0;
    uint64_t ok_2xx = 0;
    double latency_sum = 0.0;
  };
  std::map<std::string, TenantAgg> tenants;
  for (const std::vector<Sample>& samples : samples_per_thread) {
    for (const Sample& sample : samples) {
      total += 1;
      TenantAgg& agg = tenants[sample.tenant];
      agg.requests += 1;
      agg.latency_sum += sample.latency_seconds;
      if (sample.status_code >= 200 && sample.status_code < 300) {
        ok_2xx += 1;
        agg.ok_2xx += 1;
        acked[sample.index] = true;
        if (sample.duplicate) duplicates += 1;
        latencies.push_back(sample.latency_seconds);
      } else if (sample.status_code == 429) {
        rejected_429 += 1;
      } else {
        other_error += 1;
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(&latencies, 0.50);
  const double p95 = Percentile(&latencies, 0.95);
  const double p99 = Percentile(&latencies, 0.99);
  const double throughput =
      wall_seconds > 0.0 ? static_cast<double>(total) / wall_seconds : 0.0;
  const double rate_429 =
      total > 0 ? static_cast<double>(rejected_429) /
                      static_cast<double>(total)
                : 0.0;

  std::printf(
      "%llu requests over %zu connections in %.3f s (%.0f req/s)\n"
      "  2xx %llu, 429 %llu (%.2f%%), other %llu, transport failures %llu\n"
      "  latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
      static_cast<unsigned long long>(total), connections, wall_seconds,
      throughput, static_cast<unsigned long long>(ok_2xx),
      static_cast<unsigned long long>(rejected_429), rate_429 * 100.0,
      static_cast<unsigned long long>(other_error),
      static_cast<unsigned long long>(transport_failures.load()),
      p50 * 1e3, p95 * 1e3, p99 * 1e3);
  if (!id_prefix.empty()) {
    std::printf("  idempotency: %llu of the 2xx responses were journal "
                "replays (\"duplicate\":true)\n",
                static_cast<unsigned long long>(duplicates));
  }
  for (const auto& [tenant, agg] : tenants) {
    std::printf("  tenant %-10s %6llu requests, %6llu delivered, "
                "mean latency %.1f ms\n",
                tenant.c_str(),
                static_cast<unsigned long long>(agg.requests),
                static_cast<unsigned long long>(agg.ok_2xx),
                agg.requests > 0
                    ? agg.latency_sum / static_cast<double>(agg.requests) *
                          1e3
                    : 0.0);
  }

  // Duplicate replay: re-send every acked submission on one fresh
  // connection; each must come back as a journal replay of the original
  // outcome. A fresh solve here means the platform billed twice for one
  // submission id -- exactly what the WAL exists to prevent.
  uint64_t replayed = 0, confirmed = 0, rebilled = 0, replay_errors = 0;
  if (duplicate_replay) {
    ClientConnection conn(host, port);
    for (size_t i = 0; i < workload.size(); ++i) {
      if (!acked[i]) continue;
      replayed += 1;
      std::string body;
      const int status = conn.RoundTrip(requests[i], &body);
      if (status < 200 || status >= 300) {
        replay_errors += 1;
      } else if (body.find("\"duplicate\":true") != std::string::npos) {
        confirmed += 1;
      } else {
        rebilled += 1;
      }
    }
    std::printf("duplicate replay: %llu acked submissions re-sent, "
                "%llu answered from the journal, %llu re-billed, "
                "%llu errors\n",
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(confirmed),
                static_cast<unsigned long long>(rebilled),
                static_cast<unsigned long long>(replay_errors));
  }

  slade_bench::BenchJsonWriter json(out_name);
  json.BeginRecord();
  json.Field("scope", "overall");
  json.Field("connections", static_cast<double>(connections));
  json.Field("requests", static_cast<double>(total));
  json.Field("requests_per_second", throughput);
  json.Field("p50_latency_seconds", p50);
  json.Field("p95_latency_seconds", p95);
  json.Field("p99_latency_seconds", p99);
  json.Field("rejected_429", static_cast<double>(rejected_429));
  json.Field("rejected_429_rate", rate_429);
  json.Field("transport_failures",
             static_cast<double>(transport_failures.load()));
  if (!id_prefix.empty()) {
    json.Field("duplicates", static_cast<double>(duplicates));
  }
  if (duplicate_replay) {
    json.Field("duplicate_replayed", static_cast<double>(replayed));
    json.Field("duplicate_confirmed", static_cast<double>(confirmed));
    json.Field("duplicate_rebilled", static_cast<double>(rebilled));
  }
  for (const auto& [tenant, agg] : tenants) {
    json.BeginRecord();
    json.Field("scope", "tenant");
    json.Field("tenant", tenant);
    json.Field("requests", static_cast<double>(agg.requests));
    json.Field("delivered", static_cast<double>(agg.ok_2xx));
    json.Field("requests_per_second",
               wall_seconds > 0.0
                   ? static_cast<double>(agg.requests) / wall_seconds
                   : 0.0);
  }
  json.Write();

  if (transport_failures.load() > 0 || other_error > 0) return 1;
  if (duplicate_replay && (rebilled > 0 || replay_errors > 0)) return 1;
  return 0;
}
