// Tests for the spammer worker population and its effect on calibration
// and the adaptive loop.

#include <gtest/gtest.h>

#include "adaptive/adaptive_decomposer.h"
#include "binmodel/calibration.h"
#include "simulator/probe_runner.h"

namespace slade {
namespace {

PlatformConfig SpammyConfig(double fraction, uint64_t seed = 21) {
  PlatformConfig config;
  config.model = JellyModel();
  config.seed = seed;
  config.skill_sigma = 0.0;
  config.spammer_fraction = fraction;
  return config;
}

TEST(SpammerTest, MembershipIsDeterministic) {
  Platform a(SpammyConfig(0.3)), b(SpammyConfig(0.3));
  for (uint32_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(a.IsSpammer(id), b.IsSpammer(id)) << id;
  }
}

TEST(SpammerTest, FractionRoughlyRespected) {
  Platform platform(SpammyConfig(0.25));
  int spammers = 0;
  const int population = 10'000;
  for (uint32_t id = 0; id < population; ++id) {
    if (platform.IsSpammer(id)) ++spammers;
  }
  EXPECT_NEAR(static_cast<double>(spammers) / population, 0.25, 0.02);
}

TEST(SpammerTest, ZeroFractionMeansNoSpammers) {
  Platform platform(SpammyConfig(0.0));
  for (uint32_t id = 0; id < 500; ++id) {
    EXPECT_FALSE(platform.IsSpammer(id));
  }
}

TEST(SpammerTest, SpammersDepressEmpiricalConfidence) {
  // With fraction f of random-clickers, expected accuracy drops to
  // (1-f)*r + f*0.5.
  const uint32_t l = 4;
  Platform clean(SpammyConfig(0.0, 33));
  Platform spammy(SpammyConfig(0.4, 33));
  const double cost = ModelBinCost(clean.config().model, l);
  const double r = clean.ExpectedConfidence(l, cost);

  auto measure = [&](Platform& platform) {
    uint64_t total = 0, correct = 0;
    std::vector<bool> truth = {true, false, true, false};
    for (int b = 0; b < 4000; ++b) {
      auto outcome = platform.PostBin(l, cost, truth, 1);
      for (uint32_t i = 0; i < l; ++i) {
        ++total;
        if (outcome->assignments[0].answers[i] == truth[i]) ++correct;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  };

  EXPECT_NEAR(measure(clean), r, 0.01);
  EXPECT_NEAR(measure(spammy), 0.6 * r + 0.4 * 0.5, 0.015);
}

TEST(SpammerTest, CalibrationSeesTheDegradedConfidence) {
  // Probe-based calibration should recover the *effective* (spammer-
  // diluted) confidence -- which is exactly what a planner should use.
  Platform platform(SpammyConfig(0.3, 44));
  ProbePlan plan;
  plan.cardinalities = {1, 2, 4, 8, 12};
  plan.bins_per_cardinality = 300;
  plan.assignments_per_bin = 2;
  auto obs = RunProbes(platform, plan);
  ASSERT_TRUE(obs.ok());
  for (const ProbeObservation& o : *obs) {
    const double honest = ModelConfidence(platform.config().model,
                                          o.cardinality, o.bin_cost);
    const double diluted = 0.7 * honest + 0.3 * 0.5;
    EXPECT_NEAR(CountingEstimate(o), diluted, 0.03)
        << "l=" << o.cardinality;
  }
}

TEST(SpammerTest, AdaptiveLoopAbsorbsASpammerInflux) {
  // Plan with the clean profile, but run against a platform where 25% of
  // workers are spammers. The adaptive loop detects the depressed
  // effective confidence and tops up.
  const uint32_t m = 10;
  const BinProfile clean_profile =
      BuildProfile(JellyModel(), m).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(1200, 0.95);
  Xoshiro256 rng(55);
  std::vector<bool> truth(task->size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.5);
  }

  Platform static_platform(SpammyConfig(0.25, 66));
  AdaptiveOptions one_round;
  one_round.max_rounds = 1;
  auto static_report = RunAdaptiveDecomposition(
      static_platform, *task, clean_profile, truth, one_round);
  ASSERT_TRUE(static_report.ok());

  Platform adaptive_platform(SpammyConfig(0.25, 66));
  AdaptiveOptions adaptive;
  adaptive.max_rounds = 5;
  auto adaptive_report = RunAdaptiveDecomposition(
      adaptive_platform, *task, clean_profile, truth, adaptive);
  ASSERT_TRUE(adaptive_report.ok());

  EXPECT_GE(adaptive_report->positive_recall,
            static_report->positive_recall);
  EXPECT_GE(adaptive_report->positive_recall, 0.93);
}

}  // namespace
}  // namespace slade
