// Lifecycle property suite for the multi-platform profile registry:
// epoch monotonicity across retire/re-register cycles, clean failure of
// retired lookups, routing-policy behavior, cost-estimate sanity, salt
// uniqueness, listener notification, and -- the load-bearing property --
// that an epoch promotion invalidates exactly its own platform-epoch's
// OpqCache entries and leaves every other platform's entries (and hit
// counters) untouched. A threaded section runs the full API under 8-way
// contention so TSan can certify the locking.

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "engine/opq_cache.h"
#include "engine/profile_registry.h"
#include "engine/streaming_engine.h"
#include "solver/opq_solver.h"

namespace slade {
namespace {

BinProfile TestProfile() { return BinProfile::PaperExample(); }

CrowdsourcingTask TestTask(double threshold, size_t n = 4) {
  std::vector<double> thresholds(n, threshold);
  auto task = CrowdsourcingTask::FromThresholds(std::move(thresholds));
  EXPECT_TRUE(task.ok()) << task.status().ToString();
  return std::move(task).ValueOrDie();
}

TEST(ProfileRegistryTest, RegisterRetireLifecycle) {
  ProfileRegistry registry;
  auto epoch = registry.Register("alpha", TestProfile());
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(registry.live_count(), 1u);

  // Double registration of a live platform fails.
  EXPECT_TRUE(registry.Register("alpha", TestProfile())
                  .status()
                  .IsAlreadyExists());

  auto snapshot = registry.Current("alpha");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->platform_id, "alpha");
  EXPECT_EQ(snapshot->epoch, 1u);
  EXPECT_NE(snapshot->salt, 0u);
  ASSERT_NE(snapshot->profile, nullptr);

  ASSERT_TRUE(registry.Retire("alpha").ok());
  EXPECT_EQ(registry.live_count(), 0u);
  // Retired lookups fail cleanly, and so does a second retire.
  EXPECT_TRUE(registry.Current("alpha").status().IsNotFound());
  EXPECT_TRUE(registry.Retire("alpha").IsNotFound());
  EXPECT_TRUE(registry.Retire("never-registered").IsNotFound());
  // The snapshot taken before the retire stays usable: in-flight work
  // keeps solving against its admission epoch.
  EXPECT_EQ(snapshot->profile->max_cardinality(),
            TestProfile().max_cardinality());
}

TEST(ProfileRegistryTest, EpochsMonotonicAcrossRetireCycles) {
  ProfileRegistry registry;
  uint64_t last_epoch = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto epoch = registry.Register("p", TestProfile());
    ASSERT_TRUE(epoch.ok());
    EXPECT_GT(*epoch, last_epoch) << "cycle " << cycle;
    last_epoch = *epoch;

    auto promoted = registry.Promote("p", TestProfile());
    ASSERT_TRUE(promoted.ok());
    EXPECT_EQ(*promoted, last_epoch + 1);
    last_epoch = *promoted;

    ASSERT_TRUE(registry.Retire("p").ok());
  }
  // Promoting a retired platform fails like any other lookup.
  EXPECT_TRUE(registry.Promote("p", TestProfile()).status().IsNotFound());
}

TEST(ProfileRegistryTest, SaltsAreNonZeroAndDistinctPerEpoch) {
  std::vector<uint64_t> salts;
  for (uint64_t epoch = 1; epoch <= 64; ++epoch) {
    salts.push_back(ProfileRegistry::SaltOf("platform", epoch));
  }
  salts.push_back(ProfileRegistry::SaltOf("other", 1));
  salts.push_back(ProfileRegistry::SaltOf("", 1));
  for (size_t i = 0; i < salts.size(); ++i) {
    EXPECT_NE(salts[i], 0u) << i;
    for (size_t j = i + 1; j < salts.size(); ++j) {
      EXPECT_NE(salts[i], salts[j]) << i << " vs " << j;
    }
  }
}

TEST(ProfileRegistryTest, RoutingPoliciesBehave) {
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Register("a", TestProfile()).ok());
  ASSERT_TRUE(registry.Register("b", TestProfile()).ok());
  const std::vector<CrowdsourcingTask> tasks = {TestTask(0.9)};

  // Identical profiles: cheapest tie-breaks deterministically to the
  // smallest platform id.
  for (int i = 0; i < 3; ++i) {
    auto routed =
        registry.Route("r1", tasks, RoutingPolicy::kCheapest);
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(routed->platform_id, "a");
  }

  // An explicit hint always wins, whatever the policy.
  auto hinted =
      registry.Route("r1", tasks, RoutingPolicy::kCheapest, "b");
  ASSERT_TRUE(hinted.ok());
  EXPECT_EQ(hinted->platform_id, "b");
  EXPECT_TRUE(registry.Route("r1", tasks, RoutingPolicy::kCheapest, "zz")
                  .status()
                  .IsNotFound());

  // Explicit policy without a hint is a client error.
  EXPECT_TRUE(registry.Route("r1", tasks, RoutingPolicy::kExplicit)
                  .status()
                  .IsInvalidArgument());

  // Sticky: first route pins, later routes reuse the pin; when the pinned
  // platform retires the requester re-routes and re-pins.
  auto pin = registry.Route("r2", tasks, RoutingPolicy::kStickyRequester);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin->platform_id, "a");
  ASSERT_TRUE(registry.Retire("a").ok());
  auto repinned =
      registry.Route("r2", tasks, RoutingPolicy::kStickyRequester);
  ASSERT_TRUE(repinned.ok());
  EXPECT_EQ(repinned->platform_id, "b");
  // The new pin holds even after "a" comes back (sticky, not cheapest).
  ASSERT_TRUE(registry.Register("a", TestProfile()).ok());
  auto held = registry.Route("r2", tasks, RoutingPolicy::kStickyRequester);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(held->platform_id, "b");

  // No live platforms at all: routing fails with NotFound.
  ASSERT_TRUE(registry.Retire("a").ok());
  ASSERT_TRUE(registry.Retire("b").ok());
  EXPECT_TRUE(registry.Route("r1", tasks, RoutingPolicy::kCheapest)
                  .status()
                  .IsNotFound());
}

TEST(ProfileRegistryTest, EstimateCostScalesWithPriceAndThreshold) {
  const BinProfile profile = TestProfile();
  const std::vector<CrowdsourcingTask> easy = {TestTask(0.7)};
  const std::vector<CrowdsourcingTask> hard = {TestTask(0.97)};

  const double easy_cost = ProfileRegistry::EstimateCost(profile, easy);
  const double hard_cost = ProfileRegistry::EstimateCost(profile, hard);
  EXPECT_GT(easy_cost, 0.0);
  EXPECT_GE(hard_cost, easy_cost);  // tighter thresholds never get cheaper

  // A uniformly 3x-priced profile estimates exactly 3x the cost.
  std::vector<TaskBin> bins;
  for (uint32_t l = 1; l <= profile.max_cardinality(); ++l) {
    TaskBin b = profile.bin(l);
    b.cost *= 3.0;
    bins.push_back(b);
  }
  auto pricey = BinProfile::Create(std::move(bins));
  ASSERT_TRUE(pricey.ok());
  EXPECT_NEAR(ProfileRegistry::EstimateCost(*pricey, hard), 3.0 * hard_cost,
              1e-9 * hard_cost);
}

TEST(ProfileRegistryTest, ListenersSeeEveryEpochChange) {
  ProfileRegistry registry;
  struct Event {
    std::string platform;
    uint64_t retired_salt;
    uint64_t new_epoch;
  };
  std::vector<Event> events;
  const uint64_t id = registry.AddEpochListener(
      [&events](const std::string& platform, uint64_t retired_salt,
                uint64_t new_epoch) {
        events.push_back({platform, retired_salt, new_epoch});
      });

  ASSERT_TRUE(registry.Register("p", TestProfile()).ok());
  EXPECT_TRUE(events.empty());  // registration retires nothing

  ASSERT_TRUE(registry.Promote("p", TestProfile()).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].platform, "p");
  EXPECT_EQ(events[0].retired_salt, ProfileRegistry::SaltOf("p", 1));
  EXPECT_EQ(events[0].new_epoch, 2u);

  ASSERT_TRUE(registry.Retire("p").ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].retired_salt, ProfileRegistry::SaltOf("p", 2));
  EXPECT_EQ(events[1].new_epoch, 0u);  // retired, not promoted

  registry.RemoveEpochListener(id);
  ASSERT_TRUE(registry.Register("p", TestProfile()).ok());
  ASSERT_TRUE(registry.Promote("p", TestProfile()).ok());
  EXPECT_EQ(events.size(), 2u);  // removed listener hears nothing
}

TEST(ProfileRegistryTest, EvictBySaltDropsExactlyOneEpochsEntries) {
  // The cache-side half of the promotion contract, isolated from the
  // engines: entries built under two salts (two platform-epochs) plus an
  // unsalted entry share one cache; evicting one salt leaves the others
  // resident and still hitting.
  OpqCache cache;
  const BinProfile profile = TestProfile();
  const uint64_t salt_a = ProfileRegistry::SaltOf("a", 1);
  const uint64_t salt_b = ProfileRegistry::SaltOf("b", 1);

  const double thresholds[] = {0.85, 0.9, 0.95};
  for (double t : thresholds) {
    ASSERT_TRUE(cache.GetOrBuild(profile, t, {}, salt_a).ok());
    ASSERT_TRUE(cache.GetOrBuild(profile, t, {}, salt_b).ok());
  }
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.9, {}, /*salt=*/0).ok());
  ASSERT_EQ(cache.size(), 7u);  // same profile, but salts keep entries apart

  EXPECT_EQ(cache.EvictBySalt(salt_a), 3u);
  EXPECT_EQ(cache.size(), 4u);

  const CacheStats before = cache.stats();
  // Salt-b and unsalted entries still hit...
  for (double t : thresholds) {
    auto lookup = cache.GetOrBuild(profile, t, {}, salt_b);
    ASSERT_TRUE(lookup.ok());
    EXPECT_TRUE(lookup->hit) << "t=" << t;
  }
  auto unsalted = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(unsalted.ok());
  EXPECT_TRUE(unsalted->hit);
  EXPECT_EQ(cache.stats().hits, before.hits + 4);
  EXPECT_EQ(cache.stats().misses, before.misses);
  // ...while salt-a keys rebuild from scratch.
  auto rebuilt = cache.GetOrBuild(profile, 0.85, {}, salt_a);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->hit);

  // Evicting a salt with no entries is a no-op.
  EXPECT_EQ(cache.EvictBySalt(ProfileRegistry::SaltOf("c", 1)), 0u);
}

TEST(ProfileRegistryTest, PromotionInvalidatesOnlyItsOwnCacheEntries) {
  // End to end through StreamingEngine's epoch listener: two platforms
  // serve disjoint threshold groups; promoting one platform evicts exactly
  // its cache entries, and the other platform's next submission still hits
  // the cache with no new build.
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Register("a", TestProfile()).ok());
  ASSERT_TRUE(registry.Register("b", TestProfile()).ok());

  StreamingOptions options;
  options.max_pending_submissions = 1;
  options.max_delay_seconds = 3600.0;
  options.num_threads = 1;
  options.registry = &registry;
  options.routing = RoutingPolicy::kExplicit;
  StreamingEngine engine(TestProfile(), options);

  // One homogeneous threshold group per platform => one cache entry each.
  auto warm_a = engine.Submit("r", {TestTask(0.9)}, {}, "a");
  auto warm_b = engine.Submit("r", {TestTask(0.9)}, {}, "b");
  engine.Drain();
  ASSERT_TRUE(warm_a.get().ok());
  ASSERT_TRUE(warm_b.get().ok());
  const CacheStats warmed = engine.cache().stats();
  ASSERT_EQ(warmed.entries, 2u);  // identical profile, distinct salts
  EXPECT_EQ(warmed.evictions, 0u);

  // Promote "a": its single entry is evicted through the epoch listener.
  ASSERT_TRUE(registry.Promote("a", TestProfile()).ok());
  const CacheStats after_promote = engine.cache().stats();
  EXPECT_EQ(after_promote.entries, 1u);
  EXPECT_EQ(after_promote.evictions, warmed.evictions + 1);

  // "b" resubmits the same threshold group: pure cache hit, no build.
  auto again_b = engine.Submit("r", {TestTask(0.9)}, {}, "b");
  engine.Drain();
  auto slice_b = again_b.get();
  ASSERT_TRUE(slice_b.ok());
  EXPECT_EQ(slice_b->platform, "b");
  EXPECT_EQ(slice_b->epoch, 1u);
  const CacheStats after_b = engine.cache().stats();
  EXPECT_EQ(after_b.hits, after_promote.hits + 1);
  EXPECT_EQ(after_b.misses, after_promote.misses);

  // "a" resubmits under its new epoch: a fresh build under the new salt.
  auto again_a = engine.Submit("r", {TestTask(0.9)}, {}, "a");
  engine.Drain();
  auto slice_a = again_a.get();
  ASSERT_TRUE(slice_a.ok());
  EXPECT_EQ(slice_a->epoch, 2u);
  const CacheStats after_a = engine.cache().stats();
  EXPECT_EQ(after_a.misses, after_b.misses + 1);
  EXPECT_EQ(after_a.entries, 2u);

  // Retiring "b" drops its entry too; "a"'s new-epoch entry survives.
  ASSERT_TRUE(registry.Retire("b").ok());
  EXPECT_EQ(engine.cache().stats().entries, 1u);
}

TEST(ProfileRegistryTest, ContendedLifecycleIsSafe) {
  // 8 threads hammer register/retire/promote/route/fold/stats on four
  // shared platform ids. The assertions are the thread-safety contract:
  // no call crashes or corrupts, every snapshot is internally consistent,
  // and epochs observed by any one thread never move backwards.
  ProfileRegistry registry;
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(
        registry.Register("p" + std::to_string(p), TestProfile()).ok());
  }
  std::atomic<uint64_t> listener_calls{0};
  registry.AddEpochListener([&listener_calls](const std::string&, uint64_t,
                                              uint64_t) {
    listener_calls.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      const std::vector<CrowdsourcingTask> tasks = {TestTask(0.9, 3)};
      std::vector<uint64_t> last_epoch(4, 0);
      for (int i = 0; i < kIters; ++i) {
        const std::string id = "p" + std::to_string((t + i) % 4);
        switch ((t * 7 + i) % 6) {
          case 0: {
            // Retire/re-register churn; both may race another thread.
            registry.Retire(id).ok();
            registry.Register(id, TestProfile()).ok();
            break;
          }
          case 1:
            registry.Promote(id, TestProfile()).ok();
            break;
          case 2: {
            auto snapshot = registry.Current(id);
            if (snapshot.ok()) {
              EXPECT_EQ(snapshot->platform_id, id);
              EXPECT_NE(snapshot->salt, 0u);
              EXPECT_NE(snapshot->profile, nullptr);
              EXPECT_GE(snapshot->epoch, last_epoch[(t + i) % 4]);
              last_epoch[(t + i) % 4] = snapshot->epoch;
            }
            break;
          }
          case 3: {
            auto routed = registry.Route("r" + std::to_string(t), tasks,
                                         RoutingPolicy::kStickyRequester);
            if (routed.ok()) {
              registry.RecordRouted(routed->platform_id, 1, 3);
              registry.RecordBilled(routed->platform_id, 0.01);
            }
            break;
          }
          case 4: {
            ProbeObservation obs;
            obs.cardinality = 2;
            obs.total = 10;
            obs.correct = 9;
            registry.FoldOutcomes(id, {obs}).ok();
            break;
          }
          default: {
            for (const PlatformSnapshot& s : registry.LiveSnapshots()) {
              EXPECT_NE(s.profile, nullptr);
            }
            registry.stats();
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Post-contention sanity: stats cover all four platforms and epochs
  // reflect at least the initial registration.
  auto stats = registry.stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const PlatformStats& s : stats) {
    EXPECT_GE(s.epoch, 1u);
  }
  SUCCEED() << "listener saw " << listener_calls.load() << " epoch changes";
}

}  // namespace
}  // namespace slade
