#include "binmodel/reliability.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace slade {
namespace {

TEST(ReliabilityTest, SingleBinEqualsConfidence) {
  EXPECT_NEAR(Reliability({0.9}), 0.9, 1e-12);
}

TEST(ReliabilityTest, PaperExample4Plan1) {
  // P1: each task in two 2-cardinality bins: 1 - 0.15^2 = 0.9775.
  EXPECT_NEAR(Reliability({0.85, 0.85}), 0.9775, 1e-12);
}

TEST(ReliabilityTest, PaperExample4Plan2) {
  // P2: a1 is in two 3-cardinality bins: 1 - 0.2^2 = 0.96 >= 0.95.
  EXPECT_NEAR(Reliability({0.8, 0.8}), 0.96, 1e-12);
  // a3 is in one 3-bin and one 2-bin: 1 - 0.2*0.15 = 0.97.
  EXPECT_NEAR(Reliability({0.8, 0.85}), 0.97, 1e-12);
}

TEST(ReliabilityTest, EmptyAssignmentIsZero) {
  EXPECT_DOUBLE_EQ(Reliability(std::vector<double>{}), 0.0);
}

TEST(ReliabilityTest, ManyBinsApproachOneWithoutOverflow) {
  std::vector<double> bins(500, 0.9);
  const double r = Reliability(bins);
  EXPECT_LE(r, 1.0);
  EXPECT_GT(r, 0.999999);
  // The log-domain reduction stays finite and exact.
  EXPECT_NEAR(ReliabilityReduction(bins), 500 * LogReduction(0.9), 1e-6);
}

TEST(ReliabilityTest, ProfileLookupOverload) {
  const BinProfile p = BinProfile::PaperExample();
  EXPECT_NEAR(Reliability(p, {3, 3}), 0.96, 1e-12);
  EXPECT_NEAR(Reliability(p, {1}), 0.9, 1e-12);
  EXPECT_NEAR(Reliability(p, {2, 3}), 0.97, 1e-12);
}

TEST(ReliabilityTest, ReductionIsAdditive) {
  const double r1 = ReliabilityReduction({0.9});
  const double r2 = ReliabilityReduction({0.8});
  EXPECT_NEAR(ReliabilityReduction({0.9, 0.8}), r1 + r2, 1e-12);
}

TEST(MeetsThresholdTest, BoundaryCases) {
  // Exactly at threshold: 1 - 0.2^2 = 0.96 against t = 0.96.
  EXPECT_TRUE(MeetsThreshold({0.8, 0.8}, 0.96));
  EXPECT_TRUE(MeetsThreshold({0.8, 0.8}, 0.9599));
  EXPECT_FALSE(MeetsThreshold({0.8, 0.8}, 0.9601));
  EXPECT_FALSE(MeetsThreshold({}, 0.5));
}

}  // namespace
}  // namespace slade
