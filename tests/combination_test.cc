#include "solver/combination.h"

#include <gtest/gtest.h>

#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(CombinationTest, PaperExample6) {
  // Comb = {3 x b1, 2 x b2, 1 x b3}: LCM = 6,
  // UC = 3*0.1 + 2*0.18/2 + 1*0.24/3 = 0.56.
  const BinProfile profile = BinProfile::PaperExample();
  auto comb =
      Combination::Create({{1, 3}, {2, 2}, {3, 1}}, profile);
  ASSERT_TRUE(comb.ok());
  EXPECT_EQ(comb->lcm(), 6u);
  EXPECT_NEAR(comb->unit_cost(), 0.56, 1e-12);
  EXPECT_NEAR(comb->block_cost(), 3.36, 1e-12);  // 0.56 * 6 (Example 6)
}

TEST(CombinationTest, LogWeightSumsParts) {
  const BinProfile profile = BinProfile::PaperExample();
  auto comb = Combination::Create({{3, 2}}, profile);
  ASSERT_TRUE(comb.ok());
  EXPECT_NEAR(comb->log_weight(), 2 * profile.bin(3).log_weight(), 1e-12);
}

TEST(CombinationTest, RejectsInvalidParts) {
  const BinProfile profile = BinProfile::PaperExample();
  EXPECT_FALSE(Combination::Create({}, profile).ok());
  EXPECT_FALSE(Combination::Create({{4, 1}}, profile).ok());
  EXPECT_FALSE(Combination::Create({{0, 1}}, profile).ok());
  EXPECT_FALSE(Combination::Create({{1, 0}}, profile).ok());
  EXPECT_FALSE(Combination::Create({{1, 1}, {1, 2}}, profile).ok());
}

TEST(CombinationTest, ExpandFullBlockMatchesFigure5) {
  // Figure 5: 6 tasks through {3 x b1, 2 x b2, 1 x b3} means each task
  // appears in 3 singleton bins, 2 pair bins and 1 triple bin.
  const BinProfile profile = BinProfile::PaperExample();
  auto comb = Combination::Create({{1, 3}, {2, 2}, {3, 1}}, profile);
  std::vector<TaskId> ids = {0, 1, 2, 3, 4, 5};
  DecompositionPlan plan;
  const double cost = comb->ExpandInto(ids, 0, 6, profile, &plan);
  EXPECT_NEAR(cost, comb->block_cost(), 1e-12);

  auto counts = plan.BinCounts(3);
  EXPECT_EQ(counts[1], 18u);  // 6 groups x 3 copies
  EXPECT_EQ(counts[2], 6u);   // 3 groups x 2 copies
  EXPECT_EQ(counts[3], 2u);   // 2 groups x 1 copy

  // Every task is in exactly 6 bins and its reliability is the
  // combination's log weight.
  auto task = CrowdsourcingTask::Homogeneous(6, 0.5);
  auto report = ValidatePlan(plan, *task, profile);
  ASSERT_TRUE(report.ok());
  auto rel = plan.PerTaskReliability(profile, 6);
  for (double r : rel) {
    EXPECT_NEAR(r, InverseLogReduction(comb->log_weight()), 1e-12);
  }
}

TEST(CombinationTest, ExpandPartialBlockStillCoversEveryTask) {
  // Padding path: 4 tasks into an LCM=6 combination. Bins are partially
  // filled but each task still lands in n_k bins per part.
  const BinProfile profile = BinProfile::PaperExample();
  auto comb = Combination::Create({{2, 1}, {3, 1}}, profile);
  ASSERT_EQ(comb->lcm(), 6u);
  std::vector<TaskId> ids = {10, 11, 12, 13};
  DecompositionPlan plan;
  const double cost = comb->ExpandInto(ids, 0, 4, profile, &plan);
  EXPECT_LT(cost, comb->block_cost());  // padded block is cheaper

  auto rel = plan.PerTaskReliability(profile, 14);
  for (TaskId id : ids) {
    EXPECT_NEAR(rel[id],
                InverseLogReduction(comb->log_weight()), 1e-12);
  }
}

TEST(CombinationTest, ExpandRespectsOffset) {
  const BinProfile profile = BinProfile::PaperExample();
  auto comb = Combination::Create({{1, 1}}, profile);
  std::vector<TaskId> ids = {5, 6, 7, 8};
  DecompositionPlan plan;
  comb->ExpandInto(ids, 2, 2, profile, &plan);
  ASSERT_EQ(plan.placements().size(), 2u);
  EXPECT_EQ(plan.placements()[0].tasks[0], 7u);
  EXPECT_EQ(plan.placements()[1].tasks[0], 8u);
}

TEST(CombinationTest, ExpandBlocksMatchesRepeatedExpand) {
  // The Algorithm 3 bulk path must be placement-for-placement identical to
  // expanding one full block at a time.
  const BinProfile profile = BinProfile::PaperExample();
  auto comb = Combination::Create({{1, 3}, {2, 2}, {3, 1}}, profile);
  ASSERT_TRUE(comb.ok());
  const size_t lcm = static_cast<size_t>(comb->lcm());
  const uint64_t blocks = 4;
  std::vector<TaskId> ids(lcm * blocks + 3);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<TaskId>(i);

  DecompositionPlan bulk, looped;
  const size_t offset = 3;  // stamping must respect the starting offset
  const double bulk_cost =
      comb->ExpandBlocksInto(ids, offset, blocks, profile, &bulk);
  double looped_cost = 0.0;
  for (uint64_t b = 0; b < blocks; ++b) {
    looped_cost +=
        comb->ExpandInto(ids, offset + b * lcm, lcm, profile, &looped);
  }
  EXPECT_NEAR(bulk_cost, looped_cost, 1e-9);
  EXPECT_NEAR(bulk_cost, static_cast<double>(blocks) * comb->block_cost(),
              1e-9);
  ASSERT_EQ(bulk.placements().size(), looped.placements().size());
  for (size_t i = 0; i < bulk.placements().size(); ++i) {
    EXPECT_EQ(bulk.placements()[i].cardinality,
              looped.placements()[i].cardinality) << i;
    EXPECT_EQ(bulk.placements()[i].copies, looped.placements()[i].copies)
        << i;
    EXPECT_EQ(bulk.placements()[i].tasks, looped.placements()[i].tasks) << i;
  }
}

TEST(CombinationTest, ExpandZeroBlocksIsANoop) {
  const BinProfile profile = BinProfile::PaperExample();
  auto comb = Combination::Create({{2, 1}}, profile);
  std::vector<TaskId> ids = {0, 1};
  DecompositionPlan plan;
  EXPECT_EQ(comb->ExpandBlocksInto(ids, 0, 0, profile, &plan), 0.0);
  EXPECT_TRUE(plan.empty());
}

TEST(CombinationTest, ToStringFormat) {
  const BinProfile profile = BinProfile::PaperExample();
  auto comb = Combination::Create({{3, 2}}, profile);
  EXPECT_NE(comb->ToString().find("2 x b3"), std::string::npos);
  EXPECT_NE(comb->ToString().find("LCM=3"), std::string::npos);
}

}  // namespace
}  // namespace slade
