// Online recalibration: drift convergence, no-drift stability, and
// admission-epoch pinning.
//
// Ground truth is the generative power-law model (profile_model.h /
// synthetic power-law profiles): a platform's *true* reliability shifts
// mid-run while the registered profile still claims the old numbers.
// Folding ground-truth-scored outcomes must detect the drift, refit, and
// promote a new epoch whose predicted confidences converge on the truth --
// while a platform whose outcomes match its profile must never promote
// (no epoch churn, no cache churn). Plans admitted before a promotion keep
// solving under their admission epoch.

#include <cmath>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "binmodel/calibration.h"
#include "binmodel/profile_model.h"
#include "engine/closed_loop_engine.h"
#include "engine/decomposition_engine.h"
#include "engine/profile_registry.h"
#include "engine/streaming_engine.h"
#include "common/random.h"

namespace slade {
namespace {

/// A profile whose confidences follow 1 - base * l^power exactly -- the
/// same family the regression estimator fits, so exact-count outcomes
/// generated from one of these converge with no structural bias.
BinProfile PowerLawProfile(double base, double power, uint32_t m) {
  std::vector<TaskBin> bins;
  for (uint32_t l = 1; l <= m; ++l) {
    TaskBin b;
    b.cardinality = l;
    b.confidence = 1.0 - base * std::pow(static_cast<double>(l), power);
    b.cost = 0.05 + 0.01 * static_cast<double>(l);
    bins.push_back(b);
  }
  auto profile = BinProfile::Create(std::move(bins));
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  return std::move(profile).ValueOrDie();
}

/// Exact-count observations whose CountingEstimate inverts to the given
/// true confidence (Laplace smoothing inverted, so the estimator sees the
/// truth up to 1/total rounding).
ProbeObservation ExactObs(uint32_t l, double true_confidence,
                          uint64_t total) {
  ProbeObservation obs;
  obs.cardinality = l;
  obs.total = total;
  obs.correct = static_cast<uint64_t>(
      std::llround(true_confidence * static_cast<double>(total + 2) - 1.0));
  return obs;
}

std::vector<ProbeObservation> OutcomesFromProfile(const BinProfile& truth,
                                                  uint64_t total_per_l) {
  std::vector<ProbeObservation> outcomes;
  for (uint32_t l = 1; l <= truth.max_cardinality(); ++l) {
    outcomes.push_back(ExactObs(l, truth.bin(l).confidence, total_per_l));
  }
  return outcomes;
}

TEST(RecalibrationTest, DriftPromotesAndConverges) {
  // Registered: the optimistic pre-drift profile. Truth: failures have
  // doubled. Folding exact-count outcomes from the truth must promote and
  // land the new epoch's confidences on the true curve.
  constexpr uint32_t kM = 8;
  const BinProfile registered = PowerLawProfile(0.02, 0.7, kM);
  const BinProfile truth = PowerLawProfile(0.04, 0.7, kM);

  RecalibrationOptions recalibration;
  recalibration.recalibrate_every = 4000;
  recalibration.drift_tolerance = 0.01;
  ProfileRegistry registry(recalibration);
  ASSERT_TRUE(registry.Register("p", BinProfile(registered)).ok());

  // First fold: 8 cardinalities x 400 answers = 3200 < window, no refit.
  auto folded = registry.FoldOutcomes("p", OutcomesFromProfile(truth, 400));
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(*folded, 0u);
  EXPECT_EQ(registry.stats()[0].promotions, 0u);

  // Second fold crosses the window: refit sees 800 answers per
  // cardinality of pure truth and must promote.
  folded = registry.FoldOutcomes("p", OutcomesFromProfile(truth, 400));
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(*folded, 2u);

  auto snapshot = registry.Current("p");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->epoch, 2u);
  for (uint32_t l = 1; l <= kM; ++l) {
    EXPECT_NEAR(snapshot->profile->bin(l).confidence,
                truth.bin(l).confidence, 5e-3)
        << "l=" << l;
    // Bin costs carry over from the serving profile: recalibration
    // re-estimates reliability, not the marketplace's price list.
    EXPECT_DOUBLE_EQ(snapshot->profile->bin(l).cost,
                     registered.bin(l).cost);
  }

  const PlatformStats stats = registry.stats()[0];
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.answers_folded, 8u * 800u);
  EXPECT_GT(stats.last_recalibration_delta, recalibration.drift_tolerance);
}

TEST(RecalibrationTest, NoDriftNeverPromotes) {
  // Outcomes that agree with the registered profile: refits run, measure a
  // near-zero delta, and never promote -- so no epoch listener fires and
  // no cache entry is ever invalidated.
  constexpr uint32_t kM = 6;
  const BinProfile registered = PowerLawProfile(0.03, 0.8, kM);

  RecalibrationOptions recalibration;
  recalibration.recalibrate_every = 1000;
  recalibration.drift_tolerance = 0.01;
  ProfileRegistry registry(recalibration);
  ASSERT_TRUE(registry.Register("p", BinProfile(registered)).ok());

  int epoch_changes = 0;
  registry.AddEpochListener(
      [&epoch_changes](const std::string&, uint64_t, uint64_t) {
        ++epoch_changes;
      });

  auto before = registry.Current("p");
  ASSERT_TRUE(before.ok());
  for (int round = 0; round < 5; ++round) {
    auto folded =
        registry.FoldOutcomes("p", OutcomesFromProfile(registered, 5000));
    ASSERT_TRUE(folded.ok());
    EXPECT_EQ(*folded, 0u) << "round " << round;
  }
  auto after = registry.Current("p");
  ASSERT_TRUE(after.ok());

  EXPECT_EQ(after->epoch, 1u);
  EXPECT_EQ(after->profile.get(), before->profile.get());  // same snapshot
  EXPECT_EQ(epoch_changes, 0);
  const PlatformStats stats = registry.stats()[0];
  EXPECT_EQ(stats.promotions, 0u);
  // Refits did run -- the delta was measured, just under tolerance.
  EXPECT_GT(stats.answers_folded, 0u);
  EXPECT_LE(stats.last_recalibration_delta, recalibration.drift_tolerance);
}

TEST(RecalibrationTest, RecalibrationOffAccumulatesWithoutRefitting) {
  // recalibrate_every == 0: folding keeps counters but never refits, so
  // even wildly drifted outcomes change nothing.
  const BinProfile registered = PowerLawProfile(0.02, 0.7, 4);
  const BinProfile truth = PowerLawProfile(0.20, 0.7, 4);
  ProfileRegistry registry;  // default: recalibration off
  ASSERT_TRUE(registry.Register("p", BinProfile(registered)).ok());
  for (int round = 0; round < 3; ++round) {
    auto folded =
        registry.FoldOutcomes("p", OutcomesFromProfile(truth, 10000));
    ASSERT_TRUE(folded.ok());
    EXPECT_EQ(*folded, 0u);
  }
  EXPECT_EQ(registry.stats()[0].promotions, 0u);
  EXPECT_DOUBLE_EQ(registry.stats()[0].last_recalibration_delta, 0.0);
  EXPECT_EQ(registry.Current("p")->epoch, 1u);
}

TEST(RecalibrationTest, AdmittedPlansSolveUnderAdmissionEpoch) {
  // Submissions admitted before a promotion were priced and routed under
  // the old epoch; the promotion must not re-plan them. The new epoch's
  // profile triples every bin cost, so any re-plan would show up in the
  // delivered slice cost.
  const BinProfile old_profile = PowerLawProfile(0.03, 0.8, 6);
  std::vector<TaskBin> pricier;
  for (uint32_t l = 1; l <= old_profile.max_cardinality(); ++l) {
    TaskBin b = old_profile.bin(l);
    b.cost *= 3.0;
    pricier.push_back(b);
  }
  const BinProfile new_profile =
      BinProfile::Create(std::move(pricier)).ValueOrDie();

  ProfileRegistry registry;
  ASSERT_TRUE(registry.Register("p", BinProfile(old_profile)).ok());

  StreamingOptions options;
  // One giant micro-batch, cut only by Drain: everything submitted below
  // stays pending across the promotion.
  options.max_pending_submissions = 1u << 20;
  options.max_pending_atomic_tasks = 1u << 20;
  options.max_delay_seconds = 3600.0;
  options.num_threads = 2;
  options.registry = &registry;
  StreamingEngine engine(old_profile, options);

  std::vector<std::vector<CrowdsourcingTask>> submissions;
  std::vector<std::future<Result<RequesterPlan>>> futures;
  for (int i = 0; i < 4; ++i) {
    std::vector<double> thresholds(6, 0.85 + 0.02 * i);
    submissions.push_back(
        {CrowdsourcingTask::FromThresholds(std::move(thresholds))
             .ValueOrDie()});
    futures.push_back(engine.Submit("r" + std::to_string(i),
                                    submissions.back()));
  }

  // Promote while all four sit in the pending queue.
  auto promoted = registry.Promote("p", BinProfile(new_profile));
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(*promoted, 2u);
  engine.Drain();

  for (size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE("submission " + std::to_string(i));
    auto slice = futures[i].get();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_EQ(slice->platform, "p");
    EXPECT_EQ(slice->epoch, 1u);  // admission epoch, not the promoted one
    auto reference = SolveBatchSequential(submissions[i], old_profile);
    ASSERT_TRUE(reference.ok());
    EXPECT_NEAR(slice->cost, reference->total_cost,
                1e-9 + 1e-9 * reference->total_cost);
  }

  // Work admitted after the promotion serves (and is billed) at epoch 2.
  auto post = engine.Submit("r9", submissions[0]);
  engine.Drain();
  auto post_slice = post.get();
  ASSERT_TRUE(post_slice.ok()) << post_slice.status().ToString();
  EXPECT_EQ(post_slice->epoch, 2u);
  auto post_reference = SolveBatchSequential(submissions[0], new_profile);
  ASSERT_TRUE(post_reference.ok());
  EXPECT_NEAR(post_slice->cost, post_reference->total_cost,
              1e-9 + 1e-9 * post_reference->total_cost);
}

TEST(RecalibrationTest, ClosedLoopFoldsMarketplaceOutcomesIntoRegistry) {
  // End to end through the closed loop: the registered profile claims
  // near-perfect workers, the simulated marketplace (profile_model.h's
  // Jelly model) is much noisier. Scored answers flow AnswerCollector ->
  // FoldOutcomes; the registry must notice the gap, promote, and pull the
  // serving confidences down toward the marketplace's real accuracy.
  constexpr uint32_t kM = 8;
  const BinProfile optimistic = PowerLawProfile(0.002, 0.5, kM);

  RecalibrationOptions recalibration;
  recalibration.recalibrate_every = 50;
  recalibration.drift_tolerance = 0.02;
  ProfileRegistry registry(recalibration);
  ASSERT_TRUE(registry.Register("sim", BinProfile(optimistic)).ok());

  ClosedLoopOptions options;
  options.streaming.registry = &registry;
  options.streaming.max_delay_seconds = 3600.0;
  options.platform.model = MakeModel(DatasetKind::kJelly);
  options.platform.seed = 7;
  options.max_rounds = 2;

  Xoshiro256 rng(99);
  std::vector<ClosedLoopWorkload> workloads;
  for (int w = 0; w < 6; ++w) {
    ClosedLoopWorkload workload;
    workload.requester = "r" + std::to_string(w % 2);
    std::vector<double> thresholds(10, 0.88);
    workload.tasks.push_back(
        CrowdsourcingTask::FromThresholds(std::move(thresholds))
            .ValueOrDie());
    for (int k = 0; k < 10; ++k) {
      workload.ground_truth.push_back(rng.NextBernoulli(0.5));
    }
    workloads.push_back(std::move(workload));
  }

  ClosedLoopEngine engine(BinProfile(optimistic), options);
  auto report = engine.Run(workloads);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(registry.stats().size(), 1u);
  const PlatformStats stats = registry.stats()[0];
  EXPECT_GT(stats.answers_folded, 0u);
  EXPECT_GE(stats.promotions, 1u);
  EXPECT_GT(stats.last_recalibration_delta, 0.0);

  // The promoted profile stopped believing the near-perfect claims:
  // every serving confidence moved strictly below the optimistic one.
  auto snapshot = registry.Current("sim");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GT(snapshot->epoch, 1u);
  double max_drop = 0.0;
  for (uint32_t l = 1; l <= kM; ++l) {
    max_drop = std::max(max_drop, optimistic.bin(l).confidence -
                                      snapshot->profile->bin(l).confidence);
  }
  EXPECT_GT(max_drop, recalibration.drift_tolerance);
}

}  // namespace
}  // namespace slade
