#include "solver/opq_extended_solver.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "common/random.h"
#include "solver/opq_set_builder.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(OpqSetBuilderTest, ReproducesExample10Intervals) {
  // thetas 0.69, 0.92, 1.61(paper text; 1.20 by direct computation), 1.97:
  // alpha = floor(log2 0.69) = -1; uppers = {1, theta_max}.
  const BinProfile profile = BinProfile::PaperExample();
  const double theta_min = LogReduction(0.5);   // 0.693
  const double theta_max = LogReduction(0.86);  // 1.966
  auto set = BuildOpqSet(profile, theta_min, theta_max);
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->size(), 2u);
  EXPECT_NEAR(set->upper(0), 1.0, 1e-12);
  EXPECT_NEAR(set->upper(1), theta_max, 1e-12);

  // OPQ_0 built at t = 1 - e^{-1} = 0.632 has the Table 4 frontier.
  EXPECT_EQ(set->queue(0).size(), 3u);
  EXPECT_NEAR(set->queue(0).front().unit_cost(), 0.08, 1e-12);
  // OPQ_1 built at t ~ 0.86 has only {1 x b1} (Table 5).
  EXPECT_EQ(set->queue(1).size(), 1u);
  EXPECT_NEAR(set->queue(1).front().unit_cost(), 0.10, 1e-12);
}

TEST(OpqSetBuilderTest, GroupAssignment) {
  const BinProfile profile = BinProfile::PaperExample();
  auto set = BuildOpqSet(profile, LogReduction(0.5), LogReduction(0.86));
  ASSERT_TRUE(set.ok());
  // Example 11: a1 (0.69) and a2 (0.92) -> S0; a3 (1.20) and a4 (1.97)
  // -> S1.
  EXPECT_EQ(*set->GroupOf(LogReduction(0.5)), 0u);
  EXPECT_EQ(*set->GroupOf(LogReduction(0.6)), 0u);
  EXPECT_EQ(*set->GroupOf(LogReduction(0.7)), 1u);
  EXPECT_EQ(*set->GroupOf(LogReduction(0.86)), 1u);
  EXPECT_TRUE(set->GroupOf(10.0).status().IsOutOfRange());
}

TEST(OpqSetBuilderTest, ExactPowerOfTwoThetaHandled) {
  const BinProfile profile = BinProfile::PaperExample();
  // theta_min == theta_max == 2 exactly: loop degenerates, fallback queue.
  auto set = BuildOpqSet(profile, 2.0, 2.0);
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->size(), 1u);
  EXPECT_EQ(*set->GroupOf(2.0), 0u);
}

TEST(OpqSetBuilderTest, RejectsBadRange) {
  const BinProfile profile = BinProfile::PaperExample();
  EXPECT_FALSE(BuildOpqSet(profile, 0.0, 1.0).ok());
  EXPECT_FALSE(BuildOpqSet(profile, 2.0, 1.0).ok());
}

TEST(OpqExtendedTest, ReproducesExample11) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.6, 0.7, 0.86});
  OpqExtendedSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile), 0.38, 1e-9);
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(OpqExtendedTest, DegeneratesToOpqBasedOnHomogeneousInput) {
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(100, 0.9);
  OpqExtendedSolver extended;
  OpqSolver homogeneous;
  auto a = extended.Solve(*task, profile);
  auto b = homogeneous.Solve(*task, profile);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->TotalCost(profile), b->TotalCost(profile), 1e-9);
}

class OpqExtendedFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(OpqExtendedFeasibilityTest, RandomHeterogeneousInstances) {
  const auto [n, seed] = GetParam();
  const BinProfile profile = BuildProfile(JellyModel(), 15).ValueOrDie();
  Xoshiro256 rng(static_cast<uint64_t>(seed));
  std::vector<double> thresholds(n);
  for (auto& t : thresholds) t = rng.NextDouble(0.55, 0.99);
  auto task = CrowdsourcingTask::FromThresholds(thresholds);
  OpqExtendedSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible)
      << "n=" << n << " seed=" << seed << " margin "
      << report->worst_log_margin;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpqExtendedFeasibilityTest,
    ::testing::Combine(::testing::Values(1u, 2u, 9u, 64u, 500u),
                       ::testing::Values(1, 2, 3)));

TEST(OpqExtendedTest, WideThresholdSpreadBuildsMultipleQueues) {
  const BinProfile profile = BinProfile::PaperExample();
  // Spread thetas across ~4 octaves: 0.51 -> theta 0.71; 0.999 -> 6.9.
  auto set = BuildOpqSet(profile, LogReduction(0.51), LogReduction(0.999));
  ASSERT_TRUE(set.ok());
  EXPECT_GE(set->size(), 4u);
  // Uppers are non-decreasing and the last covers theta_max.
  for (size_t i = 1; i < set->size(); ++i) {
    EXPECT_GE(set->upper(i), set->upper(i - 1));
  }
  EXPECT_NEAR(set->upper(set->size() - 1), LogReduction(0.999), 1e-9);
}

TEST(OpqExtendedTest, TasksAtGroupBoundariesStayFeasible) {
  // Thresholds sitting exactly on 2^j boundaries (theta = 1, 2) must not
  // fall between groups.
  const BinProfile profile = BinProfile::PaperExample();
  const double t1 = InverseLogReduction(1.0);
  const double t2 = InverseLogReduction(2.0);
  auto task = CrowdsourcingTask::FromThresholds({t1, t2, 0.9});
  OpqExtendedSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

}  // namespace
}  // namespace slade
