#include "inference/truth_inference.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace slade {
namespace {

std::vector<WorkerAnswer> SyntheticAnswers(
    const std::vector<bool>& truth, const std::vector<double>& accuracy,
    int answers_per_task, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<WorkerAnswer> answers;
  for (TaskId t = 0; t < truth.size(); ++t) {
    for (int k = 0; k < answers_per_task; ++k) {
      const uint32_t w =
          static_cast<uint32_t>(rng.NextBounded(accuracy.size()));
      const bool correct = rng.NextBernoulli(accuracy[w]);
      answers.push_back(
          WorkerAnswer{w, t, correct ? truth[t] : !truth[t]});
    }
  }
  return answers;
}

TEST(MajorityVoteTest, BasicAggregation) {
  std::vector<WorkerAnswer> answers = {
      {0, 0, true}, {1, 0, true}, {2, 0, false},   // task 0: 2/3 yes
      {0, 1, false}, {1, 1, false},                // task 1: 0/2 yes
  };
  auto result = MajorityVote(answers, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->posterior[0], 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(result->labels[0]);
  EXPECT_FALSE(result->labels[1]);
  EXPECT_DOUBLE_EQ(result->posterior[2], 0.5);  // unanswered
}

TEST(MajorityVoteTest, TieBreaksPositive) {
  std::vector<WorkerAnswer> answers = {{0, 0, true}, {1, 0, false}};
  auto result = MajorityVote(answers, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->labels[0]);
}

TEST(MajorityVoteTest, WorkerAgreementReported) {
  std::vector<WorkerAnswer> answers = {
      {7, 0, true}, {8, 0, true}, {9, 0, false}};
  auto result = MajorityVote(answers, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->worker_accuracy.at(7), 1.0);
  EXPECT_DOUBLE_EQ(result->worker_accuracy.at(9), 0.0);
}

TEST(MajorityVoteTest, RejectsBadInput) {
  EXPECT_TRUE(MajorityVote({}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      MajorityVote({{0, 5, true}}, 3).status().IsOutOfRange());
}

TEST(DawidSkeneTest, RecoverLabelsFromReliableWorkers) {
  std::vector<bool> truth(200);
  Xoshiro256 rng(1);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.5);
  }
  std::vector<double> accuracy(20, 0.85);
  auto answers = SyntheticAnswers(truth, accuracy, 5, 2);
  auto result = DawidSkeneBinary(answers, truth.size());
  ASSERT_TRUE(result.ok());
  // Majority of 5 answers at 0.85 accuracy is right ~97% of the time;
  // allow normal sampling slack over 200 tasks.
  EXPECT_GE(LabelAccuracy(*result, truth, answers), 0.94);
}

TEST(DawidSkeneTest, BeatsMajorityWithMixedWorkerQuality) {
  // Half the workers are near-random; EM should discount them while
  // majority voting cannot.
  std::vector<bool> truth(400);
  Xoshiro256 rng(3);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.5);
  }
  std::vector<double> accuracy;
  for (int w = 0; w < 10; ++w) accuracy.push_back(0.95);
  for (int w = 0; w < 10; ++w) accuracy.push_back(0.52);
  auto answers = SyntheticAnswers(truth, accuracy, 7, 4);

  auto em = DawidSkeneBinary(answers, truth.size());
  auto mv = MajorityVote(answers, truth.size());
  ASSERT_TRUE(em.ok());
  ASSERT_TRUE(mv.ok());
  const double em_acc = LabelAccuracy(*em, truth, answers);
  const double mv_acc = LabelAccuracy(*mv, truth, answers);
  EXPECT_GE(em_acc, mv_acc - 1e-12);
  EXPECT_GE(em_acc, 0.97);
}

TEST(DawidSkeneTest, EstimatesWorkerAccuracies) {
  std::vector<bool> truth(600);
  Xoshiro256 rng(5);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.5);
  }
  std::vector<double> accuracy = {0.95, 0.95, 0.9, 0.9, 0.8, 0.8,
                                  0.7, 0.7, 0.6, 0.6};
  auto answers = SyntheticAnswers(truth, accuracy, 6, 6);
  auto result = DawidSkeneBinary(answers, truth.size());
  ASSERT_TRUE(result.ok());
  for (uint32_t w = 0; w < accuracy.size(); ++w) {
    ASSERT_TRUE(result->worker_accuracy.count(w));
    EXPECT_NEAR(result->worker_accuracy.at(w), accuracy[w], 0.08)
        << "worker " << w;
  }
}

TEST(DawidSkeneTest, UnansweredTasksStayAtHalf) {
  std::vector<WorkerAnswer> answers = {{0, 0, true}, {1, 0, true}};
  auto result = DawidSkeneBinary(answers, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->posterior[1], 0.5);
  EXPECT_DOUBLE_EQ(result->posterior[2], 0.5);
}

TEST(DawidSkeneTest, ConvergesAndReportsIterations) {
  std::vector<bool> truth(50, true);
  std::vector<double> accuracy(5, 0.9);
  auto answers = SyntheticAnswers(truth, accuracy, 3, 7);
  auto result = DawidSkeneBinary(answers, truth.size());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->iterations, 0);
  EXPECT_LE(result->iterations, 100);
}

TEST(DawidSkeneTest, RejectsBadOptions) {
  std::vector<WorkerAnswer> answers = {{0, 0, true}};
  DawidSkeneOptions bad;
  bad.initial_accuracy = 0.5;
  EXPECT_TRUE(
      DawidSkeneBinary(answers, 1, bad).status().IsInvalidArgument());
  DawidSkeneOptions bad_prior;
  bad_prior.prior_positive = 0.0;
  EXPECT_TRUE(DawidSkeneBinary(answers, 1, bad_prior)
                  .status()
                  .IsInvalidArgument());
}

TEST(ConfidenceFromAgreementTest, InvertsTheMomentEquation) {
  // a = r^2 + (1-r)^2 must round-trip.
  for (double r : {0.5, 0.6, 0.75, 0.9, 0.99}) {
    const double a = r * r + (1 - r) * (1 - r);
    EXPECT_NEAR(ConfidenceFromAgreement(a), r, 1e-12) << "r=" << r;
  }
}

TEST(ConfidenceFromAgreementTest, ClampsBelowHalf) {
  EXPECT_DOUBLE_EQ(ConfidenceFromAgreement(0.4), 0.5);
  EXPECT_DOUBLE_EQ(ConfidenceFromAgreement(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ConfidenceFromAgreement(1.0), 1.0);
}

TEST(ConfidenceFromAgreementTest, ConsistentOnSimulatedAnswers) {
  // Draw many answer pairs at true accuracy r and check the estimator
  // converges to r -- including the regime where the crowd agrees on a
  // wrong answer, which biases label-based agreement upward.
  Xoshiro256 rng(11);
  for (double r : {0.65, 0.8, 0.95}) {
    uint64_t agree = 0, pairs = 200000;
    for (uint64_t i = 0; i < pairs; ++i) {
      const bool a_correct = rng.NextBernoulli(r);
      const bool b_correct = rng.NextBernoulli(r);
      if (a_correct == b_correct) ++agree;
    }
    const double estimate = ConfidenceFromAgreement(
        static_cast<double>(agree) / static_cast<double>(pairs));
    EXPECT_NEAR(estimate, r, 0.01) << "r=" << r;
  }
}

TEST(AgreeingPairsTest, SmallCases) {
  EXPECT_EQ(AgreeingPairs(0, 2), 1u);   // both negative
  EXPECT_EQ(AgreeingPairs(2, 2), 1u);   // both positive
  EXPECT_EQ(AgreeingPairs(1, 2), 0u);   // split
  EXPECT_EQ(AgreeingPairs(2, 4), 2u);   // C(2,2)+C(2,2)
  EXPECT_EQ(AgreeingPairs(3, 4), 3u);   // C(3,2)+C(1,2)
  EXPECT_EQ(AgreeingPairs(0, 1), 0u);   // no pair
  EXPECT_EQ(AgreeingPairs(5, 4), 0u);   // malformed input
}

// --- Edge cases the closed loop feeds the aggregators: spammer-majority
// crowds, single-answer tasks and unanimously wrong answers must all
// yield sane (finite, [0,1], not over-confident) posteriors.

void ExpectSanePosteriors(const InferenceResult& result) {
  for (double p : result.posterior) {
    EXPECT_FALSE(std::isnan(p));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (const auto& [worker, accuracy] : result.worker_accuracy) {
    (void)worker;
    EXPECT_FALSE(std::isnan(accuracy));
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
}

TEST(DawidSkeneEdgeTest, SpammerMajorityStaysSane) {
  // 2 honest workers vs 5 coin-flip spammers over 40 tasks.
  const size_t n = 40;
  std::vector<bool> truth;
  Xoshiro256 rng(21);
  for (size_t i = 0; i < n; ++i) truth.push_back(rng.NextBernoulli(0.5));
  std::vector<WorkerAnswer> answers;
  for (TaskId t = 0; t < n; ++t) {
    for (uint32_t w = 0; w < 2; ++w) {  // honest
      answers.push_back(WorkerAnswer{w, t, truth[t]});
    }
    for (uint32_t w = 2; w < 7; ++w) {  // spammers
      answers.push_back(WorkerAnswer{w, t, rng.NextBernoulli(0.5)});
    }
  }
  auto result = DawidSkeneBinary(answers, n);
  ASSERT_TRUE(result.ok());
  ExpectSanePosteriors(*result);
  // EM should still downweight the spammers: the honest workers' learned
  // accuracy must dominate every spammer's.
  double honest_min = 1.0, spammer_max = 0.0;
  for (const auto& [worker, accuracy] : result->worker_accuracy) {
    if (worker < 2) {
      honest_min = std::min(honest_min, accuracy);
    } else {
      spammer_max = std::max(spammer_max, accuracy);
    }
  }
  EXPECT_GT(honest_min, spammer_max);
}

TEST(DawidSkeneEdgeTest, SingleAnswerTasksAreNotOverConfident) {
  // One answer per task: there is no agreement evidence at all, so no
  // posterior may hit a degenerate 0/1 (accuracies are Beta-smoothed and
  // clamped away from certainty).
  std::vector<WorkerAnswer> answers;
  for (TaskId t = 0; t < 12; ++t) {
    answers.push_back(WorkerAnswer{t % 3, t, t % 2 == 0});
  }
  auto result = DawidSkeneBinary(answers, 12);
  ASSERT_TRUE(result.ok());
  ExpectSanePosteriors(*result);
  for (double p : result->posterior) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(DawidSkeneEdgeTest, UnanimousWrongAnswerStaysBounded) {
  // 30 tasks answered correctly by 4 workers; task 30 answered wrongly by
  // all 4 (a genuinely hard task). The posterior must be finite and the
  // workers' accuracy must not be dragged to a degenerate value.
  std::vector<WorkerAnswer> answers;
  const size_t n = 31;
  for (TaskId t = 0; t + 1 < n; ++t) {
    for (uint32_t w = 0; w < 4; ++w) {
      answers.push_back(WorkerAnswer{w, t, true});
    }
  }
  for (uint32_t w = 0; w < 4; ++w) {
    answers.push_back(
        WorkerAnswer{w, static_cast<TaskId>(n - 1), false});
  }
  auto result = DawidSkeneBinary(answers, n);
  ASSERT_TRUE(result.ok());
  ExpectSanePosteriors(*result);
  // The crowd was unanimous, so the label follows it -- confidently but
  // not with certainty.
  EXPECT_FALSE(result->labels[n - 1]);
  EXPECT_LT(result->posterior[n - 1], 0.5);
  EXPECT_GT(result->posterior[n - 1], 0.0);
}

TEST(MajorityVoteEdgeTest, SpammerMajorityAndSingleAnswersStaySane) {
  std::vector<WorkerAnswer> answers;
  Xoshiro256 rng(4);
  for (TaskId t = 0; t < 20; ++t) {
    const uint32_t voters = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    for (uint32_t w = 0; w < voters; ++w) {
      answers.push_back(WorkerAnswer{w, t, rng.NextBernoulli(0.5)});
    }
  }
  auto result = MajorityVote(answers, 20);
  ASSERT_TRUE(result.ok());
  ExpectSanePosteriors(*result);
}

TEST(LabelAccuracyTest, CountsOnlyAnsweredTasks) {
  InferenceResult result;
  result.labels = {true, false, true};
  std::vector<WorkerAnswer> answers = {{0, 0, true}, {0, 2, true}};
  // Truth: {true, X, false} -> task 0 correct, task 2 wrong, task 1
  // ignored.
  EXPECT_DOUBLE_EQ(
      LabelAccuracy(result, {true, true, false}, answers), 0.5);
  EXPECT_DOUBLE_EQ(LabelAccuracy(result, {true, true, false}, {}), 0.0);
}

}  // namespace
}  // namespace slade
