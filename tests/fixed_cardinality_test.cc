#include "solver/fixed_cardinality_solver.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(FixedCardinalityTest, ExplicitCardinalityUsesOnlyThatBin) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(7, 0.95);
  FixedCardinalitySolver solver(2);
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto counts = plan->BinCounts(3);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_GT(counts[2], 0u);
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(FixedCardinalityTest, BinCountMatchesClosedForm) {
  // t=0.95 with b2 (w=1.897): each task needs ceil(2.996/1.897) = 2
  // memberships; 7 tasks x 2 rounds -> 2 * ceil(7/2) = 8 bins.
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(7, 0.95);
  FixedCardinalitySolver solver(2);
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->TotalBinInstances(), 8u);
  EXPECT_NEAR(plan->TotalCost(profile), 8 * 0.18, 1e-12);
}

TEST(FixedCardinalityTest, RejectsUnknownCardinality) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(3, 0.9);
  FixedCardinalitySolver solver(9);
  EXPECT_TRUE(solver.Solve(*task, profile).status().IsOutOfRange());
}

TEST(FixedCardinalityTest, AutoSelectionPicksCheapestPerTask) {
  // On the Table 1 profile at t=0.9 (theta == w1): b1 needs 1 copy at
  // 0.10/task; b2 needs 2 copies at 0.18/task; b3 needs 2 at 0.16/task.
  const BinProfile profile = BinProfile::PaperExample();
  EXPECT_EQ(FixedCardinalitySolver::BestCardinality(
                profile, LogReduction(0.9)),
            1u);
  // At t=0.95 all cardinalities need 2 copies: per-task costs 0.20 /
  // 0.18 / 0.16 -> picks 3.
  EXPECT_EQ(FixedCardinalitySolver::BestCardinality(
                profile, LogReduction(0.95)),
            3u);
}

TEST(FixedCardinalityTest, HeterogeneousRoundsCoverPrefixes) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.95, 0.6, 0.99});
  FixedCardinalitySolver solver(3);
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);
}

class FixedCardinalityFeasibilityTest
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FixedCardinalityFeasibilityTest, EveryCardinalityIsFeasible) {
  const uint32_t l = GetParam();
  const BinProfile profile = BuildProfile(JellyModel(), 20).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(137, 0.93);
  FixedCardinalitySolver solver(l);
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible) << "l=" << l;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FixedCardinalityFeasibilityTest,
                         ::testing::Values(1u, 2u, 5u, 10u, 20u));

TEST(FixedCardinalityTest, SladeBeatsThePriorPractice) {
  // The paper's core economic claim: varying bin sizes beats any single
  // fixed size. OPQ-Based must not cost more than the best fixed choice.
  const BinProfile profile = BuildProfile(JellyModel(), 20).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(5000, 0.9);
  FixedCardinalitySolver fixed;  // auto-select best single cardinality
  OpqSolver opq;
  auto fixed_plan = fixed.Solve(*task, profile);
  auto opq_plan = opq.Solve(*task, profile);
  ASSERT_TRUE(fixed_plan.ok());
  ASSERT_TRUE(opq_plan.ok());
  EXPECT_LE(opq_plan->TotalCost(profile),
            fixed_plan->TotalCost(profile) + 1e-9);
}

TEST(FixedCardinalityTest, NameReflectsMode) {
  EXPECT_EQ(FixedCardinalitySolver().name(), "Fixed-Cardinality");
  EXPECT_EQ(FixedCardinalitySolver(4).name(), "Fixed-Cardinality(l=4)");
}

}  // namespace
}  // namespace slade
