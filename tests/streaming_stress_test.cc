// Concurrency stress for the streaming admission engine: many producer
// threads submitting interleaved workloads against small size caps and a
// real (millisecond) flush deadline, so micro-batches are cut at
// timing-dependent points. The assertions are the invariants that must
// survive any interleaving: every future resolves, every slice covers
// exactly its submission's tasks and meets its thresholds, admission
// counters conserve, and flush reasons account for every flush.
//
// This test is the intended payload for the sanitizer builds: it runs in
// the existing ASan/UBSan CI leg and under -DSLADE_SANITIZE=thread (TSan).

#include <atomic>
#include <cstdint>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/streaming_engine.h"
#include "solver/plan_validator.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace slade {
namespace {

CrowdsourcingTask RandomTask(std::mt19937_64* rng) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;
  spec.clamp_lo = 0.6;
  spec.clamp_hi = 0.98;
  const size_t n = 1 + (*rng)() % 20;
  auto thresholds = GenerateThresholds(spec, n, (*rng)());
  EXPECT_TRUE(thresholds.ok());
  auto task =
      CrowdsourcingTask::FromThresholds(std::move(thresholds).ValueOrDie());
  EXPECT_TRUE(task.ok());
  return std::move(task).ValueOrDie();
}

struct ProducerRecord {
  std::vector<CrowdsourcingTask> tasks;
  std::future<Result<RequesterPlan>> future;
};

TEST(StreamingStressTest, ConcurrentProducersAllServedFeasibly) {
  constexpr size_t kProducers = 8;
  constexpr size_t kSubmissionsPerProducer = 24;

  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 8);
  ASSERT_TRUE(profile.ok());

  StreamingOptions options;
  options.max_pending_submissions = 16;
  options.max_pending_atomic_tasks = 160;
  options.max_delay_seconds = 0.001;  // deadline cuts wherever timing lands
  options.num_threads = 4;
  StreamingEngine engine(*profile, options);

  std::vector<std::vector<ProducerRecord>> records(kProducers);
  {
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([p, &records, &engine] {
        std::mt19937_64 rng(0xbeef + p);
        const std::string requester = "producer" + std::to_string(p);
        for (size_t s = 0; s < kSubmissionsPerProducer; ++s) {
          ProducerRecord record;
          const size_t num_tasks = 1 + rng() % 3;
          for (size_t k = 0; k < num_tasks; ++k) {
            record.tasks.push_back(RandomTask(&rng));
          }
          record.future = engine.Submit(requester, record.tasks);
          records[p].push_back(std::move(record));
          if (s % 5 == 0) std::this_thread::yield();
        }
      });
    }
    for (std::thread& producer : producers) producer.join();
  }
  engine.Drain();

  uint64_t expected_atomic = 0;
  for (size_t p = 0; p < kProducers; ++p) {
    const std::string requester = "producer" + std::to_string(p);
    for (ProducerRecord& record : records[p]) {
      auto slice = record.future.get();
      ASSERT_TRUE(slice.ok()) << slice.status().ToString();
      EXPECT_EQ(slice->requester_id, requester);
      EXPECT_EQ(slice->num_tasks(), record.tasks.size());

      auto merged = ConcatenateTasks(record.tasks);
      ASSERT_TRUE(merged.ok());
      expected_atomic += merged->size();
      EXPECT_EQ(slice->num_atomic_tasks(), merged->size());
      auto validation = ValidatePlan(slice->plan, *merged, *profile);
      ASSERT_TRUE(validation.ok()) << validation.status().ToString();
      EXPECT_TRUE(validation->feasible)
          << "worst log margin " << validation->worst_log_margin;
      EXPECT_GT(slice->latency_seconds, 0.0);
    }
  }

  const StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.submissions, kProducers * kSubmissionsPerProducer);
  EXPECT_EQ(stats.atomic_tasks, expected_atomic);
  EXPECT_GE(stats.flushes, 1u);
  EXPECT_EQ(stats.flushes, stats.flushes_by_size + stats.flushes_by_deadline +
                               stats.flushes_by_drain);
}

TEST(StreamingStressTest, ConcurrentFlushAndDrainCallsAreSafe) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());

  StreamingOptions options;
  options.max_pending_submissions = 1u << 20;
  options.max_pending_atomic_tasks = 1u << 20;
  options.max_delay_seconds = 3600.0;  // only explicit flushes cut batches
  StreamingEngine engine(*profile, options);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load()) {
      engine.Flush();
      std::this_thread::yield();
    }
  });

  std::mt19937_64 rng(0xf00d);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  for (size_t s = 0; s < 60; ++s) {
    futures.push_back(engine.Submit(
        "solo", std::vector<CrowdsourcingTask>{RandomTask(&rng)}));
    if (s % 10 == 0) engine.Drain();
  }
  engine.Drain();
  stop.store(true);
  flusher.join();

  for (auto& future : futures) {
    auto slice = future.get();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_EQ(slice->requester_id, "solo");
  }
}

TEST(StreamingStressTest, DestructorDrainsPendingSubmissions) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());

  std::mt19937_64 rng(0xdead);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  {
    StreamingOptions options;
    options.max_pending_submissions = 1u << 20;
    options.max_pending_atomic_tasks = 1u << 20;
    options.max_delay_seconds = 3600.0;  // nothing flushes until shutdown
    StreamingEngine engine(*profile, options);
    for (size_t s = 0; s < 10; ++s) {
      futures.push_back(engine.Submit(
          "tail", std::vector<CrowdsourcingTask>{RandomTask(&rng)}));
    }
  }  // destructor must fulfill every future

  for (auto& future : futures) {
    auto slice = future.get();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_EQ(slice->flush_id, 0u);  // one drain flush took them all
  }
}

TEST(StreamingStressTest, ZeroFlushCapsAreFlooredNotSpun) {
  // A cap of 0 would otherwise make the size trigger fire on an empty
  // pending queue and busy-spin the worker under the lock; the engine
  // floors both caps to 1 and behaves like flush-every-submission.
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());

  StreamingOptions options;
  options.max_pending_submissions = 0;
  options.max_pending_atomic_tasks = 0;
  StreamingEngine engine(*profile, options);
  EXPECT_EQ(engine.options().max_pending_submissions, 1u);
  EXPECT_EQ(engine.options().max_pending_atomic_tasks, 1u);

  std::mt19937_64 rng(0xabcd);
  auto future = engine.Submit(
      "zero", std::vector<CrowdsourcingTask>{RandomTask(&rng)});
  engine.Drain();
  auto slice = future.get();
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  EXPECT_EQ(slice->requester_id, "zero");
}

TEST(StreamingStressTest, EmptySubmissionFailsWithoutPoisoningTheStream) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());

  StreamingOptions options;
  options.max_pending_submissions = 2;
  StreamingEngine engine(*profile, options);

  auto bad = engine.Submit("oops", {});
  auto bad_result = bad.get();  // resolves immediately, before any flush
  EXPECT_FALSE(bad_result.ok());
  EXPECT_TRUE(bad_result.status().IsInvalidArgument());

  std::mt19937_64 rng(0xcafe);
  auto good = engine.Submit(
      "fine", std::vector<CrowdsourcingTask>{RandomTask(&rng)});
  engine.Drain();
  auto good_result = good.get();
  ASSERT_TRUE(good_result.ok()) << good_result.status().ToString();
  EXPECT_EQ(good_result->requester_id, "fine");
  EXPECT_EQ(engine.stats().submissions, 1u);  // the empty one never counted
}

}  // namespace
}  // namespace slade
