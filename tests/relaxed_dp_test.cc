#include "solver/relaxed_dp_solver.h"

#include <gtest/gtest.h>

#include "solver/plan_validator.h"

namespace slade {
namespace {

// A profile where every confidence exceeds the thresholds used below, so
// the relaxed variant's precondition holds.
BinProfile HighConfidenceProfile() {
  std::vector<TaskBin> bins = {
      {1, 0.96, 0.10},
      {2, 0.95, 0.15},
      {3, 0.94, 0.18},
  };
  return BinProfile::Create(std::move(bins)).ValueOrDie();
}

TEST(RelaxedDpTest, RejectsWhenPreconditionFails) {
  // Table 1 has r3 = 0.8 < t = 0.9.
  auto task = CrowdsourcingTask::Homogeneous(5, 0.9);
  RelaxedDpSolver solver;
  EXPECT_TRUE(solver.Solve(*task, BinProfile::PaperExample())
                  .status()
                  .IsInvalidArgument());
}

TEST(RelaxedDpTest, SingleTaskPicksCheapestBin) {
  auto task = CrowdsourcingTask::Homogeneous(1, 0.9);
  RelaxedDpSolver solver;
  auto plan = solver.Solve(*task, HighConfidenceProfile());
  ASSERT_TRUE(plan.ok());
  // Any single bin covers one task; the cheapest is b1 at 0.10.
  EXPECT_NEAR(plan->TotalCost(HighConfidenceProfile()), 0.10, 1e-12);
}

TEST(RelaxedDpTest, RodCuttingOptimality) {
  // Costs 0.10/0.15/0.18 for capacities 1/2/3: covering 6 tasks optimally
  // uses two 3-bins (0.36) rather than three 2-bins (0.45) or six
  // singletons (0.60).
  const BinProfile profile = HighConfidenceProfile();
  auto task = CrowdsourcingTask::Homogeneous(6, 0.9);
  RelaxedDpSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile), 0.36, 1e-12);
  auto counts = plan->BinCounts(3);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(RelaxedDpTest, RemainderHandledOptimally) {
  // 7 tasks: 2x b3 + 1x b1 = 0.46, vs 2x b3 + b2 = 0.51 wait b1 cheaper.
  const BinProfile profile = HighConfidenceProfile();
  auto task = CrowdsourcingTask::Homogeneous(7, 0.9);
  RelaxedDpSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile), 0.46, 1e-12);
}

class RelaxedDpMatchesBruteForceTest
    : public ::testing::TestWithParam<size_t> {};

TEST_P(RelaxedDpMatchesBruteForceTest, AgainstExhaustiveCover) {
  const size_t n = GetParam();
  const BinProfile profile = HighConfidenceProfile();
  auto task = CrowdsourcingTask::Homogeneous(n, 0.9);
  RelaxedDpSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());

  // Brute force: minimum cost to cover n units with pieces 1, 2, 3 at the
  // profile costs (bounded loops since n is small).
  double best = 1e18;
  for (size_t a = 0; a <= n; ++a) {
    for (size_t b = 0; 2 * b <= 2 * n; ++b) {
      for (size_t c = 0; 3 * c <= 3 * n; ++c) {
        if (a + 2 * b + 3 * c >= n) {
          best = std::min(best, 0.10 * a + 0.15 * b + 0.18 * c);
        }
        if (3 * c > n + 3) break;
      }
      if (2 * b > n + 2) break;
    }
  }
  EXPECT_NEAR(plan->TotalCost(profile), best, 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RelaxedDpMatchesBruteForceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u, 11u, 17u));

TEST(RelaxedDpTest, HeterogeneousThresholdsUseMaxForPrecondition) {
  // t_max = 0.97 > r3 = 0.94: rejected even though most tasks are low.
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.5, 0.97});
  RelaxedDpSolver solver;
  EXPECT_TRUE(solver.Solve(*task, HighConfidenceProfile())
                  .status()
                  .IsInvalidArgument());
  // With all thresholds below min confidence it succeeds.
  auto easy = CrowdsourcingTask::FromThresholds({0.5, 0.6, 0.9});
  EXPECT_TRUE(solver.Solve(*easy, HighConfidenceProfile()).ok());
}

}  // namespace
}  // namespace slade
