#include "simulator/fault_injector.h"

#include <gtest/gtest.h>

#include "simulator/platform.h"

namespace slade {
namespace {

TEST(FaultInjectorTest, AllDefaultInjectsNothing) {
  FaultOptions options;
  EXPECT_FALSE(options.any());
  EXPECT_EQ(options.ToString(), "none");
  FaultInjector injector(options);
  for (int i = 0; i < 100; ++i) {
    FaultInjector::Decision d = injector.NextBin();
    EXPECT_FALSE(d.outage);
    EXPECT_EQ(d.context.extra_spammer_fraction, 0.0);
    EXPECT_EQ(d.context.latency_multiplier, 1.0);
    EXPECT_EQ(d.context.worker_epoch, 0u);
  }
  const FaultStats stats = injector.stats();
  EXPECT_EQ(stats.attempts, 100u);
  EXPECT_EQ(stats.outages, 0u);
  EXPECT_EQ(stats.burst_posts, 0u);
  EXPECT_EQ(stats.straggler_posts, 0u);
}

TEST(FaultInjectorTest, OutageWindowsFollowTheSchedule) {
  FaultOptions options;
  options.outage_period = 10;
  options.outage_length = 3;
  EXPECT_TRUE(options.any());
  FaultInjector injector(options);
  for (uint64_t ordinal = 0; ordinal < 40; ++ordinal) {
    FaultInjector::Decision d = injector.NextBin();
    EXPECT_EQ(d.outage, ordinal % 10 < 3) << "ordinal " << ordinal;
  }
  EXPECT_EQ(injector.stats().outages, 12u);
}

TEST(FaultInjectorTest, SpammerBurstWindowsFollowTheSchedule) {
  FaultOptions options;
  options.spammer_burst_period = 8;
  options.spammer_burst_length = 2;
  options.spammer_burst_fraction = 0.7;
  FaultInjector injector(options);
  for (uint64_t ordinal = 0; ordinal < 32; ++ordinal) {
    FaultInjector::Decision d = injector.NextBin();
    EXPECT_FALSE(d.outage);
    const double expected = ordinal % 8 < 2 ? 0.7 : 0.0;
    EXPECT_EQ(d.context.extra_spammer_fraction, expected)
        << "ordinal " << ordinal;
  }
  EXPECT_EQ(injector.stats().burst_posts, 8u);
}

TEST(FaultInjectorTest, ChurnAdvancesTheWorkerEpoch) {
  FaultOptions options;
  options.churn_period = 5;
  FaultInjector injector(options);
  for (uint64_t ordinal = 0; ordinal < 23; ++ordinal) {
    FaultInjector::Decision d = injector.NextBin();
    EXPECT_EQ(d.context.worker_epoch, ordinal / 5) << "ordinal " << ordinal;
  }
  EXPECT_EQ(injector.stats().churn_epochs, 4u);
}

TEST(FaultInjectorTest, StragglersAreDeterministicPerSeed) {
  FaultOptions options;
  options.straggler_fraction = 0.3;
  options.straggler_multiplier = 15.0;
  options.seed = 99;
  FaultInjector a(options);
  FaultInjector b(options);
  uint64_t stragglers = 0;
  for (int i = 0; i < 500; ++i) {
    FaultInjector::Decision da = a.NextBin();
    FaultInjector::Decision db = b.NextBin();
    EXPECT_EQ(da.context.latency_multiplier, db.context.latency_multiplier);
    if (da.context.latency_multiplier > 1.0) {
      EXPECT_EQ(da.context.latency_multiplier, 15.0);
      ++stragglers;
    }
  }
  // ~30% of 500; a wide band keeps the test seed-robust.
  EXPECT_GT(stragglers, 100u);
  EXPECT_LT(stragglers, 220u);
  EXPECT_EQ(a.stats().straggler_posts, stragglers);
}

TEST(FaultInjectorTest, ToStringSummarizesEnabledFamilies) {
  FaultOptions options;
  options.spammer_burst_period = 10;
  options.spammer_burst_length = 4;
  options.outage_period = 20;
  options.outage_length = 2;
  const std::string s = options.ToString();
  EXPECT_NE(s.find("spammer-burst 4/10"), std::string::npos) << s;
  EXPECT_NE(s.find("outage 2/20"), std::string::npos) << s;
  EXPECT_EQ(s.find("churn"), std::string::npos) << s;
}

TEST(FaultInjectorTest, WorkerEpochSaltsThePlatformIdentitySpace) {
  PlatformConfig config;
  config.model = MakeModel(DatasetKind::kJelly);
  config.population = 1000;
  config.seed = 5;
  Platform platform(config);
  const std::vector<bool> truth = {true, false, true};

  BinPostContext context;
  context.worker_epoch = 3;
  for (int i = 0; i < 20; ++i) {
    auto outcome = platform.PostBin(4, 0.05, truth, 1, context);
    ASSERT_TRUE(outcome.ok());
    const uint32_t id = outcome->assignments.front().worker_id;
    EXPECT_GE(id, 3u * 1000u);
    EXPECT_LT(id, 4u * 1000u);
  }
  // Epoch 0 (the default context) stays in the original id range.
  auto outcome = platform.PostBin(4, 0.05, truth, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome->assignments.front().worker_id, 1000u);
}

TEST(FaultInjectorTest, PlatformRejectsInvalidContext) {
  PlatformConfig config;
  config.model = MakeModel(DatasetKind::kJelly);
  Platform platform(config);
  const std::vector<bool> truth = {true};

  BinPostContext bad_latency;
  bad_latency.latency_multiplier = 0.0;
  EXPECT_FALSE(platform.PostBin(2, 0.05, truth, 1, bad_latency).ok());

  BinPostContext bad_fraction;
  bad_fraction.extra_spammer_fraction = 1.5;
  EXPECT_FALSE(platform.PostBin(2, 0.05, truth, 1, bad_fraction).ok());
}

TEST(FaultInjectorTest, StragglerLatencyStretchesCompletionTime) {
  PlatformConfig config;
  config.model = MakeModel(DatasetKind::kJelly);
  config.seed = 11;
  const std::vector<bool> truth = {true, false};

  // Two identically seeded platforms: one post stretched, one not. The
  // stretched completion must be exactly the multiplier times the base.
  Platform base(config);
  Platform stretched(config);
  BinPostContext slow;
  slow.latency_multiplier = 40.0;
  auto base_outcome = base.PostBin(4, 0.05, truth, 1);
  auto slow_outcome = stretched.PostBin(4, 0.05, truth, 1, slow);
  ASSERT_TRUE(base_outcome.ok());
  ASSERT_TRUE(slow_outcome.ok());
  EXPECT_NEAR(slow_outcome->completion_minutes,
              base_outcome->completion_minutes * 40.0, 1e-9);
}

}  // namespace
}  // namespace slade
