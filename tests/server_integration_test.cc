// Loopback lifecycle tests for the HTTP front end: start on an ephemeral
// port, drive it with real sockets, check protocol semantics and stats
// consistency, and exercise graceful shutdown. Rides the ASan/TSan legs.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "durability/journal.h"
#include "engine/streaming_engine.h"
#include "server/slade_server.h"

namespace slade {
namespace {

/// Blocking loopback client: one request, one response, returns the raw
/// response bytes ("" on connect failure).
std::string RoundTrip(uint16_t port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                           0);
    if (n <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  shutdown(fd, SHUT_WR);  // half-close: the server still answers
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string PostSubmit(uint16_t port, const std::string& body) {
  return RoundTrip(port,
                   "POST /v1/submit HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body);
}

int StatusCodeOf(const std::string& response) {
  if (response.size() < 12) return 0;
  return std::atoi(response.c_str() + 9);  // after "HTTP/1.1 "
}

/// Raw text of a top-level numeric JSON field, "" if absent. Good enough
/// for comparing two responses' values for equality.
std::string JsonNumberText(const std::string& response,
                           const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = response.find(needle);
  if (pos == std::string::npos) return "";
  const size_t start = pos + needle.size();
  const size_t end = response.find_first_of(",}", start);
  return response.substr(start, end - start);
}

StreamingOptions FastFlushOptions() {
  StreamingOptions options;
  options.max_delay_seconds = 0.005;  // flush quickly: tests stay snappy
  return options;
}

class ServerIntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    server_.reset();   // before the engine it serves
    engine_.reset();   // before the journal it journals to
    journal_.reset();
    if (!wal_dir_.empty()) std::filesystem::remove_all(wal_dir_);
  }

  void StartServer(StreamingOptions engine_options,
                   ServerOptions server_options = {}) {
    auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
    ASSERT_TRUE(profile.ok());
    engine_ = std::make_unique<StreamingEngine>(*profile, engine_options);
    server_options.port = 0;  // ephemeral: tests never collide
    server_ = std::make_unique<SladeServer>(engine_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  /// StartServer with the full durable wiring of `slade_cli serve
  /// --wal-dir`: a journal under a test-private directory, hooked into
  /// both the engine (admission/outcome journaling, duplicate replay)
  /// and the server (stats export, shutdown checkpoint).
  void StartDurableServer(StreamingOptions engine_options) {
    wal_dir_ =
        std::filesystem::path(::testing::TempDir()) /
        (std::string("server_wal_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(wal_dir_);
    JournalOptions journal_options;
    journal_options.wal.dir = wal_dir_.string();
    journal_options.wal.commit_wait_micros = 0;
    auto opened = SubmissionJournal::Open(journal_options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal_ = std::move(opened->journal);
    engine_options.durability = journal_.get();
    ServerOptions server_options;
    server_options.journal = journal_.get();
    StartServer(engine_options, server_options);
  }

  std::filesystem::path wal_dir_;
  std::unique_ptr<SubmissionJournal> journal_;  // outlives the engine
  std::unique_ptr<StreamingEngine> engine_;
  std::unique_ptr<SladeServer> server_;
};

TEST_F(ServerIntegrationTest, HealthzAnswersOk) {
  StartServer(FastFlushOptions());
  const std::string response =
      RoundTrip(server_->port(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(response), 200);
  EXPECT_NE(response.find("\"ok\""), std::string::npos) << response;
}

TEST_F(ServerIntegrationTest, SubmitReturnsAPlanSlice) {
  StartServer(FastFlushOptions());
  const std::string response = PostSubmit(
      server_->port(),
      R"({"requester": "alice", "tasks": [[0.9, 0.85], [0.92]]})");
  EXPECT_EQ(StatusCodeOf(response), 200) << response;
  EXPECT_NE(response.find("\"requester\":\"alice\""), std::string::npos);
  EXPECT_NE(response.find("\"num_atomic_tasks\":3"), std::string::npos);
  EXPECT_NE(response.find("\"cost\":"), std::string::npos);
}

TEST_F(ServerIntegrationTest, MalformedInputsGetCleanErrors) {
  StartServer(FastFlushOptions());
  const uint16_t port = server_->port();
  // Bad JSON -> 400.
  EXPECT_EQ(StatusCodeOf(PostSubmit(port, "{not json")), 400);
  // Schema violations -> 400.
  EXPECT_EQ(StatusCodeOf(PostSubmit(port, R"({"tasks": [[0.9]]})")), 400);
  EXPECT_EQ(StatusCodeOf(PostSubmit(
                port, R"({"requester": "a", "tasks": []})")),
            400);
  // Thresholds out of (0,1) -> 400 from task validation.
  EXPECT_EQ(StatusCodeOf(PostSubmit(
                port, R"({"requester": "a", "tasks": [[1.5]]})")),
            400);
  // Unknown route -> 404; wrong method -> 405.
  EXPECT_EQ(StatusCodeOf(RoundTrip(
                port, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")),
            404);
  EXPECT_EQ(StatusCodeOf(RoundTrip(
                port, "GET /v1/submit HTTP/1.1\r\nHost: t\r\n\r\n")),
            405);
  // Malformed request line -> 400 and the connection closes.
  EXPECT_EQ(StatusCodeOf(RoundTrip(port, "garbage\r\n\r\n")), 400);
}

TEST_F(ServerIntegrationTest, OversizedBodyIs413) {
  ServerOptions server_options;
  server_options.parser_limits.max_body_bytes = 64;
  StartServer(FastFlushOptions(), server_options);
  const std::string big(200, 'x');
  EXPECT_EQ(StatusCodeOf(PostSubmit(server_->port(), big)), 413);
}

TEST_F(ServerIntegrationTest, BackpressureRejectionIs429WithRetryAfter) {
  // A queue capped below the submission size with kReject: everything
  // after the first pending submission is rejected. Park the engine
  // (huge deadline) so the queue deterministically stays full.
  StreamingOptions options;
  options.max_delay_seconds = 3600.0;
  options.max_pending_submissions = 1u << 20;
  options.max_pending_atomic_tasks = 1u << 20;
  options.resources.backpressure = BackpressurePolicy::kReject;
  options.resources.queue_max_atomic_tasks = 2;
  StartServer(options);
  const uint16_t port = server_->port();

  // First submission occupies the whole queue (empty-queue rule admits
  // it); it parks until drain. Submit it from a background thread since
  // its response only arrives after the drain below.
  std::thread first([&] {
    PostSubmit(port, R"({"requester": "a", "tasks": [[0.9], [0.9]]})");
  });
  // Wait until the engine shows the parked submission.
  while (engine_->stats().queue_submissions == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string rejected =
      PostSubmit(port, R"({"requester": "b", "tasks": [[0.9]]})");
  EXPECT_EQ(StatusCodeOf(rejected), 429) << rejected;
  EXPECT_NE(rejected.find("Retry-After:"), std::string::npos) << rejected;

  engine_->Flush();  // release the parked submission
  first.join();
  const StreamingStats stats = engine_->stats();
  EXPECT_EQ(stats.rejected, 1u);
}

TEST_F(ServerIntegrationTest, ConcurrentSubmitsAllSucceedAndStatsAdd) {
  StartServer(FastFlushOptions());
  const uint16_t port = server_->port();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string response = PostSubmit(
            port, "{\"requester\": \"r" + std::to_string(t) +
                      "\", \"tasks\": [[0.9], [0.85, 0.92]]}");
        if (StatusCodeOf(response) == 200) ok_counts[t] += 1;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  int total_ok = 0;
  for (const int n : ok_counts) total_ok += n;
  EXPECT_EQ(total_ok, kThreads * kPerThread);

  // Stats consistency: every wire submission was admitted and delivered
  // (unbounded queue, no rejections) and the server counted each request.
  const StreamingStats engine_stats = engine_->stats();
  EXPECT_EQ(engine_stats.submissions,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(engine_stats.rejected, 0u);
  EXPECT_EQ(engine_stats.shed, 0u);
  const ServerStats server_stats = server_->stats();
  EXPECT_EQ(server_stats.responses_2xx,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(server_stats.rejected_429, 0u);
  // The stats endpoint agrees with itself after the dust settles.
  const std::string stats_response = RoundTrip(
      port, "GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(stats_response), 200);
  EXPECT_NE(stats_response.find("\"submissions\":40"), std::string::npos)
      << stats_response;
}

TEST_F(ServerIntegrationTest, KeepAliveServesSequentialRequests) {
  StartServer(FastFlushOptions());
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[4096];
    // Each response is short; one read usually suffices, but loop until
    // the body ("ok") shows up.
    while (response.find("\"ok\"") == std::string::npos) {
      const ssize_t n = recv(fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "iteration " << i;
      response.append(buf, static_cast<size_t>(n));
    }
    EXPECT_EQ(StatusCodeOf(response), 200);
  }
  close(fd);
}

TEST_F(ServerIntegrationTest, HeadHealthzSendsHeadersButNoBody) {
  StartServer(FastFlushOptions());
  const uint16_t port = server_->port();
  // Measure what GET would return so we can pin HEAD's Content-Length.
  const std::string get_response =
      RoundTrip(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  const size_t get_header_end = get_response.find("\r\n\r\n");
  ASSERT_NE(get_header_end, std::string::npos);
  const size_t get_body_size = get_response.size() - (get_header_end + 4);
  ASSERT_GT(get_body_size, 0u);

  const std::string head_response =
      RoundTrip(port, "HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(head_response), 200);
  // Content-Length advertises the body a GET would produce...
  EXPECT_NE(head_response.find(
                "Content-Length: " + std::to_string(get_body_size)),
            std::string::npos)
      << head_response;
  // ...but the response ends at the blank line: no body bytes follow.
  const size_t header_end = head_response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_EQ(head_response.size(), header_end + 4) << head_response;

  // HEAD on a non-HEAD route gets a body-less 405, same rule.
  const std::string head_stats =
      RoundTrip(port, "HEAD /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(head_stats), 405);
  const size_t stats_header_end = head_stats.find("\r\n\r\n");
  ASSERT_NE(stats_header_end, std::string::npos);
  EXPECT_EQ(head_stats.size(), stats_header_end + 4) << head_stats;
}

TEST_F(ServerIntegrationTest, PipelinedGarbageThenCloseIsHandledCleanly) {
  // Regression: a valid request with garbage pipelined behind it, then a
  // peer close. The garbage poisons the parser while a worker owns the
  // first request; when the response flushes, the event loop's flush
  // pass must tear the connection down without invalidating its own
  // iteration over the connection map (previously UB under ASan).
  StartServer(FastFlushOptions());
  const uint16_t port = server_->port();
  for (int i = 0; i < 8; ++i) {
    const std::string response = RoundTrip(
        port,
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\ngarbage bytes\r\n\r\n");
    // The first request is answered; the poisoned tail yields either a
    // trailing 400 or a plain close depending on timing. Both are fine;
    // a torn first response is not.
    EXPECT_EQ(StatusCodeOf(response), 200) << response;
    EXPECT_NE(response.find("\"ok\""), std::string::npos) << response;
  }
  // The server is still healthy afterwards.
  EXPECT_EQ(StatusCodeOf(RoundTrip(
                port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")),
            200);
}

TEST_F(ServerIntegrationTest, GracefulShutdownAnswersInFlightRequests) {
  StartServer(FastFlushOptions());
  const uint16_t port = server_->port();
  // Launch submits, then shut down while they are likely in flight; every
  // request must still get a complete HTTP response (the server drains
  // instead of slamming connections).
  std::vector<std::thread> threads;
  std::vector<std::string> responses(6);
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      responses[i] = PostSubmit(
          port, R"({"requester": "shutdown", "tasks": [[0.9]]})");
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server_->Shutdown();
  for (std::thread& thread : threads) thread.join();
  for (const std::string& response : responses) {
    // Connections accepted before the listener closed were answered;
    // later connects were refused outright ("" response). No torn
    // responses either way.
    if (!response.empty()) {
      EXPECT_EQ(StatusCodeOf(response), 200) << response;
    }
  }
  // After shutdown the port no longer accepts.
  EXPECT_EQ(RoundTrip(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"), "");
}

TEST_F(ServerIntegrationTest, ShutdownIsIdempotent) {
  StartServer(FastFlushOptions());
  server_->Shutdown();
  server_->Shutdown();  // second call: no-op, no crash
  // Concurrent double-shutdown is also safe.
  StartServer(FastFlushOptions());
  std::thread a([&] { server_->Shutdown(); });
  std::thread b([&] { server_->Shutdown(); });
  a.join();
  b.join();
}

TEST_F(ServerIntegrationTest, SubmissionIdRoundTripsAndDuplicateReplays) {
  StartDurableServer(FastFlushOptions());
  const uint16_t port = server_->port();
  const std::string body =
      R"({"requester": "alice", "submission_id": "it-1",)"
      R"( "tasks": [[0.9, 0.85]]})";

  const std::string first = PostSubmit(port, body);
  EXPECT_EQ(StatusCodeOf(first), 200) << first;
  EXPECT_NE(first.find("\"submission_id\":\"it-1\""), std::string::npos)
      << first;
  EXPECT_NE(first.find("\"duplicate\":false"), std::string::npos) << first;
  const std::string first_cost = JsonNumberText(first, "cost");
  ASSERT_FALSE(first_cost.empty());

  // Resubmitting the same id replays the journaled outcome: same cost,
  // flagged duplicate, no second solve billed.
  const std::string second = PostSubmit(port, body);
  EXPECT_EQ(StatusCodeOf(second), 200) << second;
  EXPECT_NE(second.find("\"duplicate\":true"), std::string::npos) << second;
  EXPECT_EQ(JsonNumberText(second, "cost"), first_cost) << second;
  EXPECT_EQ(engine_->stats().submissions, 1u);
  EXPECT_EQ(engine_->stats().duplicate_hits, 1u);

  // Malformed ids are schema violations, not admissions.
  EXPECT_EQ(StatusCodeOf(PostSubmit(
                port,
                R"({"requester": "a", "submission_id": "",)"
                R"( "tasks": [[0.9]]})")),
            400);
  EXPECT_EQ(StatusCodeOf(PostSubmit(
                port,
                R"({"requester": "a", "submission_id": 7,)"
                R"( "tasks": [[0.9]]})")),
            400);
}

TEST_F(ServerIntegrationTest, InFlightDuplicateIs409ThenReplaysAfterAck) {
  // Park the engine so the first submission stays in flight: a duplicate
  // arriving meanwhile cannot be answered from the journal yet and must
  // be refused as a conflict rather than double-admitted.
  StreamingOptions options;
  options.max_delay_seconds = 3600.0;
  options.max_pending_submissions = 1u << 20;
  options.max_pending_atomic_tasks = 1u << 20;
  StartDurableServer(options);
  const uint16_t port = server_->port();
  const std::string body =
      R"({"requester": "alice", "submission_id": "dup-1",)"
      R"( "tasks": [[0.9]]})";

  std::string first;
  std::thread holder([&] { first = PostSubmit(port, body); });
  while (engine_->stats().queue_submissions == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string conflicted = PostSubmit(port, body);
  EXPECT_EQ(StatusCodeOf(conflicted), 409) << conflicted;

  engine_->Flush();  // release the parked original
  holder.join();
  EXPECT_EQ(StatusCodeOf(first), 200) << first;
  // Once the original is acked, the same id replays as a duplicate.
  const std::string replay = PostSubmit(port, body);
  EXPECT_EQ(StatusCodeOf(replay), 200) << replay;
  EXPECT_NE(replay.find("\"duplicate\":true"), std::string::npos) << replay;
  EXPECT_EQ(engine_->stats().submissions, 1u);
}

TEST_F(ServerIntegrationTest, StatsExposeDurabilityOnlyWhenJournaled) {
  StartDurableServer(FastFlushOptions());
  const uint16_t port = server_->port();
  EXPECT_EQ(StatusCodeOf(PostSubmit(
                port,
                R"({"requester": "alice", "submission_id": "s-1",)"
                R"( "tasks": [[0.9]]})")),
            200);
  const std::string stats =
      RoundTrip(port, "GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(stats), 200);
  for (const char* key :
       {"\"durability\":", "\"records_appended\":", "\"fsyncs\":",
        "\"recovery\":", "\"duplicate_hits\":", "\"clean_shutdown\":"}) {
    EXPECT_NE(stats.find(key), std::string::npos) << key << "\n" << stats;
  }

  // A journal-less server omits the section entirely.
  TearDown();
  StartServer(FastFlushOptions());
  const std::string plain = RoundTrip(
      server_->port(), "GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(plain), 200);
  EXPECT_EQ(plain.find("\"durability\":"), std::string::npos) << plain;
}

TEST_F(ServerIntegrationTest, ShutdownCheckpointMakesTheNextStartClean) {
  StartDurableServer(FastFlushOptions());
  EXPECT_EQ(StatusCodeOf(PostSubmit(
                server_->port(),
                R"({"requester": "alice", "submission_id": "ck-1",)"
                R"( "tasks": [[0.9]]})")),
            200);
  server_->Shutdown();  // drains the engine, checkpoints, compacts
  server_.reset();
  engine_.reset();
  journal_.reset();

  JournalOptions journal_options;
  journal_options.wal.dir = wal_dir_.string();
  journal_options.wal.commit_wait_micros = 0;
  auto reopened = SubmissionJournal::Open(journal_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->journal->stats().recovery.clean_shutdown);
  EXPECT_TRUE(reopened->pending.empty());
  SubmissionOutcome outcome;
  EXPECT_TRUE(reopened->journal->LookupCompleted("ck-1", &outcome));
}

TEST_F(ServerIntegrationTest, DestructorImpliesShutdown) {
  StartServer(FastFlushOptions());
  const uint16_t port = server_->port();
  EXPECT_EQ(StatusCodeOf(RoundTrip(
                port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")),
            200);
  server_.reset();  // ~SladeServer shuts down
  engine_.reset();  // engine outlives the server, then drains
  EXPECT_EQ(RoundTrip(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"), "");
}

}  // namespace
}  // namespace slade
