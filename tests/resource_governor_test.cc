#include "engine/resource_governor.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace slade {
namespace {

TEST(ResourceGovernorTest, ChargeReleaseAndPeaks) {
  ResourceGovernor governor(/*max_bytes=*/1000, /*max_units=*/10);
  governor.Charge(400, 4);
  governor.Charge(300, 3);
  GovernorCounters counters = governor.counters();
  EXPECT_EQ(counters.bytes, 700u);
  EXPECT_EQ(counters.units, 7u);
  EXPECT_EQ(counters.peak_bytes, 700u);
  EXPECT_EQ(counters.peak_units, 7u);
  EXPECT_EQ(counters.admitted, 2u);

  governor.Release(400, 4);
  counters = governor.counters();
  EXPECT_EQ(counters.bytes, 300u);
  EXPECT_EQ(counters.units, 3u);
  EXPECT_EQ(counters.peak_bytes, 700u);  // peaks are high-water marks
  EXPECT_EQ(counters.peak_units, 7u);
}

TEST(ResourceGovernorTest, TryAdmitEnforcesBothCapacities) {
  ResourceGovernor governor(/*max_bytes=*/100, /*max_units=*/3);
  EXPECT_TRUE(governor.TryAdmit(60, 1));
  EXPECT_FALSE(governor.TryAdmit(50, 1));  // bytes would hit 110
  EXPECT_TRUE(governor.TryAdmit(40, 2));   // exactly at both limits
  EXPECT_FALSE(governor.TryAdmit(0, 1));   // units at limit
  const GovernorCounters counters = governor.counters();
  EXPECT_EQ(counters.bytes, 100u);
  EXPECT_EQ(counters.units, 3u);
  EXPECT_EQ(counters.admitted, 2u);
  EXPECT_EQ(counters.denied, 2u);
  EXPECT_TRUE(governor.OverCapacity() == false);
}

TEST(ResourceGovernorTest, ZeroCapacityMeansUnbounded) {
  ResourceGovernor governor(/*max_bytes=*/0, /*max_units=*/0);
  EXPECT_TRUE(governor.TryAdmit(UINT64_C(1) << 40, 1'000'000));
  EXPECT_TRUE(governor.WouldFit(UINT64_C(1) << 40, 1'000'000));
  EXPECT_FALSE(governor.OverCapacity());
}

TEST(ResourceGovernorTest, WouldFitIsReadOnly) {
  ResourceGovernor governor(/*max_bytes=*/100, /*max_units=*/0);
  EXPECT_TRUE(governor.WouldFit(100, 0));
  EXPECT_EQ(governor.counters().bytes, 0u);  // nothing charged
  EXPECT_FALSE(governor.WouldFit(101, 0));
}

TEST(ResourceGovernorTest, OverCapacityAfterUnconditionalCharge) {
  ResourceGovernor governor(/*max_bytes=*/100, /*max_units=*/0);
  governor.Charge(150, 1);  // Charge never refuses; callers evict back down
  EXPECT_TRUE(governor.OverCapacity());
  governor.Release(60, 0);
  EXPECT_FALSE(governor.OverCapacity());
}

TEST(ResourceGovernorTest, ReleaseSaturatesAtZero) {
  ResourceGovernor governor(/*max_bytes=*/0, /*max_units=*/0);
  governor.Charge(10, 1);
  governor.Release(100, 5);  // a double-release bug must not wrap around
  const GovernorCounters counters = governor.counters();
  EXPECT_EQ(counters.bytes, 0u);
  EXPECT_EQ(counters.units, 0u);
}

TEST(ResourceGovernorTest, ConcurrentChargeReleaseConserves) {
  ResourceGovernor governor(/*max_bytes=*/0, /*max_units=*/0);
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&governor] {
      for (int iter = 0; iter < kIters; ++iter) {
        governor.Charge(3, 1);
        governor.Release(3, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const GovernorCounters counters = governor.counters();
  EXPECT_EQ(counters.bytes, 0u);
  EXPECT_EQ(counters.units, 0u);
  EXPECT_EQ(counters.admitted, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_GE(counters.peak_bytes, 3u);
}

TEST(ResourceGovernorTest, PolicyNames) {
  EXPECT_STREQ(BackpressurePolicyName(BackpressurePolicy::kBlock), "block");
  EXPECT_STREQ(BackpressurePolicyName(BackpressurePolicy::kReject), "reject");
  EXPECT_STREQ(BackpressurePolicyName(BackpressurePolicy::kShedOldest),
               "shed-oldest");
}

}  // namespace
}  // namespace slade
