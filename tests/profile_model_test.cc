#include "binmodel/profile_model.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

TEST(ProfileModelTest, JellyConfidenceMatchesFig3Anchors) {
  // Fitted anchors from Fig. 3a (cost 0.1 curve): r(2) ~ 0.981,
  // r(30) ~ 0.783.
  const DatasetModel jelly = JellyModel();
  EXPECT_NEAR(ModelConfidence(jelly, 2, 0.10), 0.981, 0.01);
  EXPECT_NEAR(ModelConfidence(jelly, 30, 0.10), 0.783, 0.02);
}

TEST(ProfileModelTest, ConfidenceDeclinesWithCardinality) {
  for (DatasetKind kind : {DatasetKind::kJelly, DatasetKind::kSmic}) {
    const DatasetModel model = MakeModel(kind);
    double prev = 1.0;
    for (uint32_t l = 1; l <= 30; ++l) {
      const double r = ModelConfidence(model, l, 0.2);
      EXPECT_LE(r, prev + 1e-12) << DatasetKindName(kind) << " l=" << l;
      prev = r;
    }
  }
}

TEST(ProfileModelTest, LowerPayLowersConfidence) {
  const DatasetModel jelly = JellyModel();
  for (uint32_t l : {5u, 10u, 20u, 30u}) {
    EXPECT_LT(ModelConfidence(jelly, l, 0.05),
              ModelConfidence(jelly, l, 0.10));
  }
}

TEST(ProfileModelTest, InTimeCutoffsMatchFig3a) {
  // Paper: cost 0.05 in-time up to l=14; cost 0.08 up to 24; 0.1 up to 30.
  const DatasetModel jelly = JellyModel();
  EXPECT_TRUE(ModelInTime(jelly, 14, 0.05));
  EXPECT_FALSE(ModelInTime(jelly, 16, 0.05));
  EXPECT_TRUE(ModelInTime(jelly, 24, 0.08));
  EXPECT_FALSE(ModelInTime(jelly, 26, 0.08));
  EXPECT_TRUE(ModelInTime(jelly, 30, 0.10));
}

TEST(ProfileModelTest, NothingQualifiesBeyondHardCap) {
  const DatasetModel jelly = JellyModel();
  EXPECT_FALSE(ModelInTime(jelly, 31, 10.0));
  EXPECT_FALSE(ModelInTime(jelly, 0, 10.0));
}

TEST(ProfileModelTest, CompletionTimeScalesInverselyWithPay) {
  const DatasetModel jelly = JellyModel();
  const double slow = ModelCompletionMinutes(jelly, 10, 0.05);
  const double fast = ModelCompletionMinutes(jelly, 10, 0.10);
  EXPECT_NEAR(slow / fast, 2.0, 1e-9);
}

TEST(ProfileModelTest, DifficultyShiftsConfidence) {
  // Fig. 3c: harder sample images lower the confidence at every size.
  for (uint32_t l : {2u, 10u, 20u}) {
    const double easy = ModelConfidence(JellyModel(1), l, 0.1);
    const double mid = ModelConfidence(JellyModel(2), l, 0.1);
    const double hard = ModelConfidence(JellyModel(3), l, 0.1);
    EXPECT_GT(easy, mid);
    EXPECT_GT(mid, hard);
  }
}

TEST(ProfileModelTest, SmicIsHarderThanJelly) {
  // Fig. 3b: the SMIC confidence sits well below Jelly at every size.
  for (uint32_t l : {2u, 10u, 30u}) {
    EXPECT_LT(ModelConfidence(SmicModel(), l, 0.2),
              ModelConfidence(JellyModel(), l, 0.2));
  }
}

TEST(ProfileModelTest, BuildProfileShape) {
  auto profile = BuildProfile(JellyModel(), 20);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile->size(), 20u);
  for (uint32_t l = 1; l <= 20; ++l) {
    const TaskBin& b = profile->bin(l);
    EXPECT_EQ(b.cardinality, l);
    EXPECT_GT(b.confidence, 0.0);
    EXPECT_LT(b.confidence, 1.0);
    EXPECT_GT(b.cost, 0.0);
    if (l > 1) {
      // Total bin cost rises with cardinality, per-task cost falls,
      // confidence falls: the Section 2 observations.
      EXPECT_GT(b.cost, profile->bin(l - 1).cost);
      EXPECT_LT(b.cost_per_task(), profile->bin(l - 1).cost_per_task());
      EXPECT_LE(b.confidence, profile->bin(l - 1).confidence + 1e-12);
    }
  }
}

TEST(ProfileModelTest, ProfileCostsAreInTime) {
  // The Section 3.1 rule: profile costs must meet the response-time
  // requirement.
  for (DatasetKind kind : {DatasetKind::kJelly, DatasetKind::kSmic}) {
    const DatasetModel model = MakeModel(kind);
    auto profile = BuildProfile(model, 20);
    ASSERT_TRUE(profile.ok());
    for (uint32_t l = 1; l <= 20; ++l) {
      EXPECT_TRUE(ModelInTime(model, l, profile->bin(l).cost))
          << DatasetKindName(kind) << " l=" << l;
    }
  }
}

TEST(ProfileModelTest, BuildProfileRejectsBadCardinality) {
  EXPECT_TRUE(BuildProfile(JellyModel(), 0).status().IsInvalidArgument());
  EXPECT_TRUE(BuildProfile(JellyModel(), 31).status().IsOutOfRange());
}

TEST(ProfileModelTest, LargeBinsAreMoreThetaEfficient) {
  // The economic premise of the paper: batched tasks cost less per unit of
  // log-reliability, otherwise decomposition would be pointless.
  auto profile = BuildProfile(JellyModel(), 20);
  ASSERT_TRUE(profile.ok());
  const TaskBin& b1 = profile->bin(1);
  const TaskBin& b20 = profile->bin(20);
  const double eff1 = b1.cost_per_task() / b1.log_weight();
  const double eff20 = b20.cost_per_task() / b20.log_weight();
  EXPECT_LT(eff20, eff1);
}

}  // namespace
}  // namespace slade
