#include "common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace slade {
namespace {

TEST(SplitMix64Test, KnownReferenceStream) {
  // Reference values for seed 1234567 from the published SplitMix64
  // algorithm (verified against the canonical C implementation).
  SplitMix64 sm(0);
  const uint64_t first = sm.Next();
  // First output for seed 0 is a fixed constant of the algorithm.
  EXPECT_EQ(first, UINT64_C(0xE220A8397B1DCDAF));
}

TEST(Xoshiro256Test, DeterministicForEqualSeeds) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleRangeRespected) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(2.5, 3.5);
    ASSERT_GE(x, 2.5);
    ASSERT_LT(x, 3.5);
  }
}

TEST(Xoshiro256Test, NextBoundedStaysInBound) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, NextBoundedIsRoughlyUniform) {
  Xoshiro256 rng(8);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (int c : counts) {
    // Expected 10000 per bucket; 4-sigma band ~ +-380.
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 500);
  }
}

TEST(Xoshiro256Test, NextIntCoversInclusiveRange) {
  Xoshiro256 rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Xoshiro256Test, BernoulliEdgeCases) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Xoshiro256Test, BernoulliMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Xoshiro256Test, ReseedingReproducesStream) {
  Xoshiro256 rng(123);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next());
  rng.Seed(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

}  // namespace
}  // namespace slade
