// WAL format and recovery semantics: frame round-trips, segment rotation
// and retention, torn-tail / corruption handling (the crash cases a
// kill -9 or a bad disk can produce), and the group-commit batching
// machinery. The corruption tests build "crash images" byte-surgically --
// truncating and bit-flipping real segment files at offsets derived from
// WalAppendResult -- so every tear the recovery path claims to handle is
// actually exercised.

#include "durability/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace slade {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("wal_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  WalOptions Options() {
    WalOptions options;
    options.dir = dir_.string();
    options.commit_wait_micros = 0;  // deterministic: no leader waiting
    return options;
  }

  /// Truncates `path` to `size` bytes, like a crash mid-write would.
  static void Truncate(const std::string& path, uint64_t size) {
    fs::resize_file(path, size);
  }

  /// Flips one bit at `offset` in `path`.
  static void FlipBit(const std::string& path, uint64_t offset) {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
  }

  /// Appends `size` garbage bytes to `path` (a torn partial frame).
  static void AppendGarbage(const std::string& path, size_t size) {
    std::ofstream file(path, std::ios::app | std::ios::binary);
    for (size_t i = 0; i < size; ++i) file.put(static_cast<char>(0x5a));
  }

  fs::path dir_;
};

TEST_F(WalTest, AppendReplayRoundTrip) {
  auto writer = WalWriter::Open(Options());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const std::string binary("\x00\x01\xff\x7f payload \n\r", 14);
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "first").ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kComplete, binary).ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kReject, "").ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kCheckpoint, "snap").ok());
  EXPECT_EQ((*writer)->last_seq(), 4u);
  writer->reset();

  WalRecoveryStats stats;
  auto records = ReplayWal(dir_.string(), /*repair=*/false, &stats);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 4u);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ((*records)[0].type, WalRecordType::kAdmit);
  EXPECT_EQ((*records)[0].payload, "first");
  EXPECT_EQ((*records)[1].type, WalRecordType::kComplete);
  EXPECT_EQ((*records)[1].payload, binary);
  EXPECT_EQ((*records)[2].type, WalRecordType::kReject);
  EXPECT_EQ((*records)[2].payload, "");
  EXPECT_EQ((*records)[3].type, WalRecordType::kCheckpoint);
  EXPECT_EQ((*records)[3].seq, 4u);
}

TEST_F(WalTest, MissingDirectoryReplaysEmpty) {
  WalRecoveryStats stats;
  auto records =
      ReplayWal((dir_ / "never_created").string(), /*repair=*/true, &stats);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  EXPECT_EQ(stats.segments_scanned, 0u);
  EXPECT_FALSE(stats.truncated);
}

TEST_F(WalTest, RotationSpreadsRecordsOverSegmentsAndReplaysAll) {
  WalOptions options = Options();
  options.segment_max_bytes = 64;  // every couple of records rotates
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 50; ++i) {
    auto result = (*writer)->Append(WalRecordType::kAdmit,
                                    "record-" + std::to_string(i));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  const WalStats stats = (*writer)->stats();
  EXPECT_GT(stats.segments_created, 5u);
  EXPECT_GT((*writer)->SegmentPaths().size(), 5u);
  writer->reset();

  WalRecoveryStats recovery;
  auto records = ReplayWal(dir_.string(), /*repair=*/false, &recovery);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 50u);
  EXPECT_GT(recovery.segments_scanned, 5u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ((*records)[i].payload, "record-" + std::to_string(i));
    EXPECT_EQ((*records)[i].seq, static_cast<uint64_t>(i + 1));
  }
  // Segment numbers never decrease along the replay order.
  for (size_t i = 1; i < records->size(); ++i) {
    EXPECT_GE((*records)[i].segment, (*records)[i - 1].segment);
  }
}

TEST_F(WalTest, RetentionDeletesOnlyFullyDeadSealedSegments) {
  WalOptions options = Options();
  options.segment_max_bytes = 1;  // one record per segment
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE((*writer)
                    ->Append(WalRecordType::kAdmit, std::to_string(i))
                    .ok());
  }
  const size_t before = (*writer)->SegmentPaths().size();
  // Records 1..3 are dead, 4+ live: only segments holding exclusively
  // seq < 4 may go; the active segment survives regardless.
  EXPECT_GT((*writer)->ReleasableSegments(4), 0u);
  ASSERT_TRUE((*writer)->ReleaseSealedThrough(4).ok());
  const size_t after = (*writer)->SegmentPaths().size();
  EXPECT_LT(after, before);
  EXPECT_EQ((*writer)->ReleasableSegments(4), 0u);  // idempotent
  writer->reset();

  WalRecoveryStats recovery;
  auto records = ReplayWal(dir_.string(), /*repair=*/false, &recovery);
  ASSERT_TRUE(records.ok());
  // Every record >= seq 4 survived the release.
  ASSERT_GE(records->size(), 3u);
  EXPECT_EQ(records->back().payload, "5");
}

TEST_F(WalTest, TornLengthPrefixIsCutAtLastValidFrame) {
  auto writer = WalWriter::Open(Options());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "kept").ok());
  const std::string segment = (*writer)->SegmentPaths().back();
  writer->reset();

  AppendGarbage(segment, 4);  // fewer bytes than a frame header
  WalRecoveryStats stats;
  auto records = ReplayWal(dir_.string(), /*repair=*/true, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "kept");
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.truncated_bytes, 4u);
  EXPECT_EQ(stats.truncate_reason, "truncated length prefix");

  // repair=true physically removed the tear: a second replay is clean
  // and a fresh writer opens fine.
  WalRecoveryStats again;
  ASSERT_TRUE(ReplayWal(dir_.string(), /*repair=*/false, &again).ok());
  EXPECT_FALSE(again.truncated);
  EXPECT_TRUE(WalWriter::Open(Options()).ok());
}

TEST_F(WalTest, TornRecordBodyIsCutAtLastValidFrame) {
  auto writer = WalWriter::Open(Options());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "kept").ok());
  auto second = (*writer)->Append(WalRecordType::kComplete,
                                  std::string(100, 'x'));
  ASSERT_TRUE(second.ok());
  const std::string segment = (*writer)->SegmentPaths().back();
  writer->reset();

  // Cut into the second frame's payload: header parses, body is short.
  Truncate(segment, second->end_offset - 10);
  WalRecoveryStats stats;
  auto records = ReplayWal(dir_.string(), /*repair=*/true, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "kept");
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.truncate_reason, "truncated record body");
}

TEST_F(WalTest, CrcMismatchStopsReplayAtTheFlippedFrame) {
  auto writer = WalWriter::Open(Options());
  ASSERT_TRUE(writer.ok());
  auto first = (*writer)->Append(WalRecordType::kAdmit, "good-1");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "corrupted").ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "unreachable").ok());
  const std::string segment = (*writer)->SegmentPaths().back();
  writer->reset();

  // Flip a payload bit of the SECOND record: the first survives, and the
  // third -- though intact on disk -- is behind the tear and dropped.
  FlipBit(segment, first->end_offset + 8 + 3);
  WalRecoveryStats stats;
  auto records = ReplayWal(dir_.string(), /*repair=*/true, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "good-1");
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.truncate_reason, "crc mismatch");
  EXPECT_GT(stats.truncated_bytes, 0u);
}

TEST_F(WalTest, ZeroLengthFrameIsTreatedAsTornTail) {
  auto writer = WalWriter::Open(Options());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "kept").ok());
  const std::string segment = (*writer)->SegmentPaths().back();
  writer->reset();

  // A run of zero bytes where a frame should start (preallocated-but-
  // unwritten tail, as some filesystems leave after a crash).
  std::ofstream file(segment, std::ios::app | std::ios::binary);
  for (int i = 0; i < 16; ++i) file.put('\0');
  file.close();

  WalRecoveryStats stats;
  auto records = ReplayWal(dir_.string(), /*repair=*/true, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.truncate_reason, "zero-length record");
}

TEST_F(WalTest, EmptySegmentFileReplaysCleanly) {
  auto writer = WalWriter::Open(Options());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "kept").ok());
  writer->reset();
  // A writer that crashed right after creating its fresh segment leaves a
  // zero-length file above the sealed ones.
  std::ofstream(dir_ / "wal-00000099.log").close();

  WalRecoveryStats stats;
  auto records = ReplayWal(dir_.string(), /*repair=*/false, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "kept");
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.segments_scanned, 2u);
}

TEST_F(WalTest, CorruptionInASealedSegmentDropsEveryLaterSegment) {
  WalOptions options = Options();
  options.segment_max_bytes = 1;  // one record per segment
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "one").ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "two").ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kAdmit, "three").ok());
  const auto paths = (*writer)->SegmentPaths();
  ASSERT_GE(paths.size(), 3u);
  writer->reset();

  FlipBit(paths[1], 9);  // corrupt the middle segment's record
  WalRecoveryStats stats;
  auto records = ReplayWal(dir_.string(), /*repair=*/true, &stats);
  ASSERT_TRUE(records.ok());
  // Replay keeps the prefix before the corruption and drops everything
  // after it -- including the intact third segment (the commit protocol
  // can never produce a valid record behind an invalid one; if the disk
  // did, the conservative answer is the contiguous durable prefix).
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "one");
  EXPECT_TRUE(stats.truncated);
  // Repair deleted the later segments; a clean replay agrees.
  WalRecoveryStats again;
  auto repaired = ReplayWal(dir_.string(), /*repair=*/false, &again);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), 1u);
  EXPECT_FALSE(again.truncated);
}

TEST_F(WalTest, BufferedAppendsShareOneFsyncPerSyncBarrier) {
  WalOptions options = Options();
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  const uint64_t fsyncs_before = (*writer)->stats().fsyncs;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*writer)
                    ->AppendBuffered(WalRecordType::kComplete,
                                     "outcome-" + std::to_string(i))
                    .ok());
  }
  EXPECT_EQ((*writer)->stats().durable_records, 0u);
  ASSERT_TRUE((*writer)->Sync().ok());
  const WalStats stats = (*writer)->stats();
  EXPECT_EQ(stats.fsyncs - fsyncs_before, 1u);  // 100 records, one barrier
  EXPECT_EQ(stats.durable_records, 100u);
  EXPECT_EQ(stats.commit_batch_max, 100u);
  writer->reset();

  auto records = ReplayWal(dir_.string(), /*repair=*/false, nullptr);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 100u);
}

TEST_F(WalTest, ConcurrentAppendersAllBecomeDurableInOrder) {
  WalOptions options = Options();
  options.commit_wait_micros = 200;  // leaders wait for companions
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            std::to_string(t) + ":" + std::to_string(i);
        auto result = (*writer)->Append(WalRecordType::kAdmit, payload);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const WalStats stats = (*writer)->stats();
  EXPECT_EQ(stats.records_appended, uint64_t{kThreads * kPerThread});
  EXPECT_EQ(stats.durable_records, uint64_t{kThreads * kPerThread});
  writer->reset();

  auto records = ReplayWal(dir_.string(), /*repair=*/false, nullptr);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), size_t{kThreads * kPerThread});
  // Each thread's own records replay in its program order.
  std::vector<int> next(kThreads, 0);
  for (const WalRecoveredRecord& record : *records) {
    const size_t colon = record.payload.find(':');
    ASSERT_NE(colon, std::string::npos);
    const int t = std::stoi(record.payload.substr(0, colon));
    const int i = std::stoi(record.payload.substr(colon + 1));
    EXPECT_EQ(i, next[t]) << "thread " << t;
    next[t] = i + 1;
  }
}

}  // namespace
}  // namespace slade
