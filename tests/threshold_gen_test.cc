#include "workload/threshold_gen.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace slade {
namespace {

TEST(ThresholdGenTest, HomogeneousIsConstant) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kHomogeneous;
  spec.mu = 0.9;
  auto ts = GenerateThresholds(spec, 100, 1);
  ASSERT_TRUE(ts.ok());
  for (double t : *ts) EXPECT_DOUBLE_EQ(t, 0.9);
}

TEST(ThresholdGenTest, NormalMatchesMoments) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;
  auto ts = GenerateThresholds(spec, 100000, 2);
  ASSERT_TRUE(ts.ok());
  OnlineStats stats;
  for (double t : *ts) stats.Add(t);
  EXPECT_NEAR(stats.mean(), 0.9, 0.001);
  EXPECT_NEAR(stats.stddev(), 0.03, 0.002);
}

TEST(ThresholdGenTest, AllFamiliesRespectClamps) {
  for (ThresholdFamily family :
       {ThresholdFamily::kHomogeneous, ThresholdFamily::kNormal,
        ThresholdFamily::kUniform, ThresholdFamily::kHeavyTail}) {
    ThresholdSpec spec;
    spec.family = family;
    spec.mu = 0.9;
    spec.sigma = 0.3;  // wide: clamping must kick in
    auto ts = GenerateThresholds(spec, 20000, 3);
    ASSERT_TRUE(ts.ok()) << ThresholdFamilyName(family);
    for (double t : *ts) {
      ASSERT_GE(t, spec.clamp_lo);
      ASSERT_LE(t, spec.clamp_hi);
    }
  }
}

TEST(ThresholdGenTest, DeterministicPerSeed) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  auto a = GenerateThresholds(spec, 1000, 42);
  auto b = GenerateThresholds(spec, 1000, 42);
  auto c = GenerateThresholds(spec, 1000, 43);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST(ThresholdGenTest, HeavyTailSkewsBelowMu) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kHeavyTail;
  spec.mu = 0.95;
  spec.sigma = 0.05;
  auto ts = GenerateThresholds(spec, 50000, 4);
  ASSERT_TRUE(ts.ok());
  size_t below = 0;
  for (double t : *ts) {
    EXPECT_LE(t, 0.95 + 1e-12);
    if (t < 0.9) ++below;
  }
  // A heavy tail reaches far below mu for a nontrivial fraction.
  EXPECT_GT(below, 1000u);
}

TEST(ThresholdGenTest, UniformCoversInterval) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kUniform;
  spec.mu = 0.85;
  spec.sigma = 0.05;
  auto ts = GenerateThresholds(spec, 50000, 5);
  ASSERT_TRUE(ts.ok());
  OnlineStats stats;
  for (double t : *ts) stats.Add(t);
  EXPECT_NEAR(stats.mean(), 0.85, 0.002);
  EXPECT_LT(stats.min(), 0.805);
  EXPECT_GT(stats.max(), 0.895);
}

TEST(ThresholdGenTest, RejectsBadInputs) {
  ThresholdSpec spec;
  EXPECT_FALSE(GenerateThresholds(spec, 0, 1).ok());
  spec.clamp_lo = 0.9;
  spec.clamp_hi = 0.5;
  EXPECT_FALSE(GenerateThresholds(spec, 10, 1).ok());
  ThresholdSpec bad_hi;
  bad_hi.clamp_hi = 1.0;
  EXPECT_FALSE(GenerateThresholds(bad_hi, 10, 1).ok());
}

}  // namespace
}  // namespace slade
