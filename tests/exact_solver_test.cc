#include "solver/exact_solver.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "solver/opq_builder.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(SingleTaskOptimumTest, MatchesOpqFrontOnPaperProfile) {
  // Lemma 2: the OPQ front element has the minimum unit cost among
  // threshold-satisfying combinations, which is exactly what the
  // branch-and-bound computes.
  const BinProfile profile = BinProfile::PaperExample();
  for (double t : {0.632, 0.86, 0.9, 0.95, 0.97}) {
    auto opt = OptimalSingleTaskCombination(profile, LogReduction(t));
    auto opq = BuildOpq(profile, t);
    ASSERT_TRUE(opt.ok());
    ASSERT_TRUE(opq.ok());
    EXPECT_NEAR(opt->unit_cost, opq->front().unit_cost(), 1e-9)
        << "t=" << t;
  }
}

TEST(SingleTaskOptimumTest, PartsSatisfyTheta) {
  const BinProfile profile = BinProfile::PaperExample();
  const double theta = LogReduction(0.95);
  auto opt = OptimalSingleTaskCombination(profile, theta);
  ASSERT_TRUE(opt.ok());
  double w = 0.0;
  for (const auto& [l, count] : opt->parts) {
    w += count * profile.bin(l).log_weight();
  }
  EXPECT_GE(w, theta - 1e-9);
}

TEST(SingleTaskOptimumTest, RejectsNonPositiveTheta) {
  EXPECT_FALSE(
      OptimalSingleTaskCombination(BinProfile::PaperExample(), 0.0).ok());
  EXPECT_FALSE(
      OptimalSingleTaskCombination(BinProfile::PaperExample(), -1.0).ok());
}

TEST(SingleTaskOptimumTest, BudgetEnforced) {
  EXPECT_TRUE(OptimalSingleTaskCombination(BinProfile::PaperExample(),
                                           LogReduction(0.95), 1)
                  .status()
                  .IsResourceExhausted());
}

TEST(ExactSmallSolverTest, SingleTaskMatchesBranchAndBound) {
  const BinProfile profile = BinProfile::PaperExample();
  ExactSmallSolver solver;
  for (double t : {0.7, 0.9, 0.95}) {
    auto task = CrowdsourcingTask::Homogeneous(1, t);
    auto plan = solver.Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);

    // For one task the exact cost equals the single-task optimum
    // evaluated at FULL bin costs (the lone task cannot share bins).
    // Compute the best full-cost combination by brute force.
    const double theta = LogReduction(t);
    double best = 1e18;
    for (uint32_t n1 = 0; n1 <= 3; ++n1) {
      for (uint32_t n2 = 0; n2 <= 3; ++n2) {
        for (uint32_t n3 = 0; n3 <= 3; ++n3) {
          const double w = n1 * profile.bin(1).log_weight() +
                           n2 * profile.bin(2).log_weight() +
                           n3 * profile.bin(3).log_weight();
          if (w < theta - 1e-12) continue;
          best = std::min(best, n1 * 0.10 + n2 * 0.18 + n3 * 0.24);
        }
      }
    }
    EXPECT_NEAR(plan->TotalCost(profile), best, 1e-9) << "t=" << t;
  }
}

TEST(ExactSmallSolverTest, FindsPaperOptimalPlanP2) {
  // Example 4 calls P2 (cost 0.66) the optimal plan for n=4, t=0.95.
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  ExactSmallSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile), 0.66, 1e-9);
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(ExactSmallSolverTest, RefusesLargeInstances) {
  auto task = CrowdsourcingTask::Homogeneous(11, 0.9);
  ExactSmallSolver solver;
  EXPECT_TRUE(solver.Solve(*task, BinProfile::PaperExample())
                  .status()
                  .IsInvalidArgument());
}

TEST(ExactSmallSolverTest, StateBudgetEnforced) {
  auto task = CrowdsourcingTask::Homogeneous(6, 0.97);
  ExactSmallSolver solver(/*state_budget=*/3);
  EXPECT_TRUE(solver.Solve(*task, BinProfile::PaperExample())
                  .status()
                  .IsResourceExhausted());
}

TEST(ExactSmallSolverTest, HeterogeneousInstances) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.95});
  ExactSmallSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
  // The low-threshold task needs theta=0.69 (one bin of any kind); the
  // high one needs 2.996. Sharing a 2-bin helps: optimal uses b2/b3 mixes.
  // At minimum the cost must beat treating both tasks independently at
  // full price (0.2 + 0.3... loose check: no more than independent cost).
  EXPECT_LE(plan->TotalCost(profile), 0.30 + 0.44 + 1e-9);
}

}  // namespace
}  // namespace slade
