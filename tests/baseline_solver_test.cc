#include "solver/baseline_solver.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "common/random.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(BaselineSolverTest, SolvesPaperExampleFeasibly) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  BaselineSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);
  // Feasible cost floor: 4 tasks each need theta(0.95)=2.996; the
  // cheapest per-theta rate in Table 1 is b1 (0.0434/unit) -> >= 0.52.
  EXPECT_GE(report->total_cost, 0.52);
}

class BaselineFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(BaselineFeasibilityTest, PlansAlwaysFeasible) {
  const auto [n, t] = GetParam();
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(n, t);
  BaselineSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible) << "n=" << n << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineFeasibilityTest,
    ::testing::Combine(::testing::Values(1u, 3u, 48u, 49u, 150u),
                       ::testing::Values(0.87, 0.95)));

TEST(BaselineSolverTest, HeterogeneousThresholdsHandled) {
  const BinProfile profile = BuildProfile(JellyModel(), 8).ValueOrDie();
  Xoshiro256 rng(3);
  std::vector<double> thresholds(120);
  for (auto& t : thresholds) t = rng.NextDouble(0.6, 0.97);
  auto task = CrowdsourcingTask::FromThresholds(thresholds);
  BaselineSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(BaselineSolverTest, DeterministicForFixedSeed) {
  const BinProfile profile = BuildProfile(JellyModel(), 6).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(60, 0.9);
  SolverOptions options;
  options.seed = 1234;
  BaselineSolver a(options), b(options);
  auto pa = a.Solve(*task, profile);
  auto pb = b.Solve(*task, profile);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(pa->TotalCost(profile), pb->TotalCost(profile));
  EXPECT_EQ(pa->TotalBinInstances(), pb->TotalBinInstances());
}

TEST(BaselineSolverTest, ChunkReplicationMatchesFeasibility) {
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(200, 0.9);
  SolverOptions options;
  options.baseline_reuse_homogeneous_chunks = true;
  BaselineSolver solver(options);
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(BaselineSolverTest, SmallChunkSizeStillWorks) {
  const BinProfile profile = BinProfile::PaperExample();
  SolverOptions options;
  options.baseline_chunk_size = 2;
  auto task = CrowdsourcingTask::Homogeneous(7, 0.9);
  BaselineSolver solver(options);
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(BaselineSolverTest, ParallelChunksMatchSerialExactly) {
  // Chunk seeds depend only on the chunk index and plans are merged in
  // chunk order, so the thread count must not change the plan.
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  Xoshiro256 rng(77);
  std::vector<double> thresholds(300);
  for (auto& t : thresholds) t = rng.NextDouble(0.7, 0.97);
  auto task = CrowdsourcingTask::FromThresholds(thresholds);

  SolverOptions serial_options;
  serial_options.baseline_threads = 0;
  SolverOptions parallel_options;
  parallel_options.baseline_threads = 4;
  BaselineSolver serial(serial_options), parallel(parallel_options);
  auto ps = serial.Solve(*task, profile);
  auto pp = parallel.Solve(*task, profile);
  ASSERT_TRUE(ps.ok());
  ASSERT_TRUE(pp.ok());
  ASSERT_EQ(ps->placements().size(), pp->placements().size());
  for (size_t i = 0; i < ps->placements().size(); ++i) {
    EXPECT_EQ(ps->placements()[i].cardinality,
              pp->placements()[i].cardinality);
    EXPECT_EQ(ps->placements()[i].copies, pp->placements()[i].copies);
    EXPECT_EQ(ps->placements()[i].tasks, pp->placements()[i].tasks);
  }
}

TEST(BaselineSolverTest, CostIsAboveTheLpFloorPerTask) {
  // Sanity: baseline cost per task cannot be below the single-task LP
  // floor theta * min_l (c_l/l / w_l).
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(96, 0.9);
  BaselineSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  double min_rate = 1e18;
  for (uint32_t l = 1; l <= 10; ++l) {
    min_rate = std::min(min_rate, profile.bin(l).cost_per_task() /
                                      profile.bin(l).log_weight());
  }
  const double floor = 96 * LogReduction(0.9) * min_rate;
  EXPECT_GE(plan->TotalCost(profile), floor - 1e-9);
}

}  // namespace
}  // namespace slade
