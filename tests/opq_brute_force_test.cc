// Cross-validation of the Algorithm 2 OPQ builder against an independent
// brute-force Pareto-front computation on randomized profiles.

#include <gtest/gtest.h>

#include <map>

#include "common/math_util.h"
#include "common/random.h"
#include "solver/opq_builder.h"

namespace slade {
namespace {

struct BruteCombo {
  uint64_t lcm = 1;
  double unit_cost = 0.0;
};

// Exhaustively enumerates every threshold-satisfying bin multiset (depth
// bounded by theta / w_min) and keeps, per LCM, the cheapest unit cost.
void Enumerate(const BinProfile& profile, uint32_t start, double weight,
               double unit_cost, uint64_t lcm, double theta,
               std::map<uint64_t, double>* best) {
  for (uint32_t l = start; l <= profile.max_cardinality(); ++l) {
    const TaskBin& bin = profile.bin(l);
    const double new_weight = weight + bin.log_weight();
    const double new_uc = unit_cost + bin.cost_per_task();
    const uint64_t new_lcm = SaturatingLcm(lcm, l);
    if (new_weight >= theta - 1e-12) {
      auto [it, inserted] = best->try_emplace(new_lcm, new_uc);
      if (!inserted && new_uc < it->second) it->second = new_uc;
    } else {
      Enumerate(profile, l, new_weight, new_uc, new_lcm, theta, best);
    }
  }
}

// Reduces the per-LCM map to its Pareto front: ascending LCM must give
// ascending-or-dropped unit cost; an entry survives iff no smaller-or-
// equal LCM has smaller-or-equal cost.
std::map<uint64_t, double> ParetoFront(
    const std::map<uint64_t, double>& best) {
  std::map<uint64_t, double> front;
  double min_cost_so_far = std::numeric_limits<double>::infinity();
  for (const auto& [lcm, uc] : best) {  // ascending LCM
    if (uc < min_cost_so_far - 1e-15) {
      front[lcm] = uc;
      min_cost_so_far = uc;
    }
  }
  return front;
}

BinProfile RandomProfile(uint32_t m, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<TaskBin> bins;
  double confidence = rng.NextDouble(0.82, 0.95);
  double cost = rng.NextDouble(0.05, 0.2);
  for (uint32_t l = 1; l <= m; ++l) {
    bins.push_back({l, confidence, cost});
    confidence = std::max(0.6, confidence - rng.NextDouble(0.0, 0.06));
    cost += rng.NextDouble(0.005, 0.08);
  }
  return BinProfile::Create(std::move(bins)).ValueOrDie();
}

class OpqBruteForceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(OpqBruteForceTest, BuilderMatchesExhaustiveParetoFront) {
  const auto [seed, t] = GetParam();
  Xoshiro256 rng(seed * 1000003);
  const uint32_t m = static_cast<uint32_t>(rng.NextInt(1, 5));
  const BinProfile profile = RandomProfile(m, seed);
  const double theta = LogReduction(t);

  std::map<uint64_t, double> best;
  Enumerate(profile, 1, 0.0, 0.0, 1, theta, &best);
  const std::map<uint64_t, double> expected = ParetoFront(best);

  auto opq = BuildOpq(profile, t);
  ASSERT_TRUE(opq.ok()) << opq.status().ToString();
  ASSERT_EQ(opq->size(), expected.size())
      << "seed=" << seed << " t=" << t << " m=" << m << "\n"
      << opq->ToString();
  // OPQ is sorted by LCM descending; expected map ascends.
  size_t i = opq->size();
  for (const auto& [lcm, uc] : expected) {
    --i;
    EXPECT_EQ(opq->element(i).lcm(), lcm) << "seed=" << seed;
    EXPECT_NEAR(opq->element(i).unit_cost(), uc, 1e-12)
        << "seed=" << seed << " lcm=" << lcm;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpqBruteForceTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 21),
                       ::testing::Values(0.85, 0.92, 0.97)));

}  // namespace
}  // namespace slade
