// Invariant coverage for PlanSplitter: handcrafted merged plans exercising
// the slicing rules directly, plus engine-produced plans for the edge cases
// the ISSUE calls out -- empty requesters, single-task requesters, all
// requesters landing in one threshold group, and requester order
// independence.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/decomposition_engine.h"
#include "engine/plan_splitter.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

std::string PlanSignature(const DecompositionPlan& plan) {
  std::string sig;
  for (const BinPlacement& p : plan.placements()) {
    sig += std::to_string(p.cardinality) + "x" + std::to_string(p.copies) +
           ":";
    for (TaskId id : p.tasks) sig += std::to_string(id) + ";";
    sig += "|";
  }
  return sig;
}

std::string PlanSignature(const ColumnarPlan& plan) {
  return PlanSignature(plan.ToPlan());
}

/// A merged "report" with two input tasks of 2 atomic tasks each and a
/// hand-written plan: one placement per input task plus one 3-bin shared
/// between them (the kPooled shape).
BatchReport HandcraftedReport() {
  BatchReport report;
  report.task_offsets = {0, 2, 4};
  report.plan.Add(2, 3, {0, 1});     // input task 0 only
  report.plan.Add(3, 1, {1, 2, 3});  // shared across both input tasks
  report.plan.Add(2, 2, {2, 3});     // input task 1 only
  return report;
}

TEST(PlanSplitterTest, SplitsSharedPlacementsIntoEverySlice) {
  const BinProfile profile = BinProfile::PaperExample();
  const BatchReport report = HandcraftedReport();
  std::vector<RequesterSpan> spans = {{"alice", 0, 1}, {"bob", 1, 1}};

  auto slices = PlanSplitter::SplitBySpans(report, profile, spans);
  ASSERT_TRUE(slices.ok()) << slices.status().ToString();
  ASSERT_EQ(slices->size(), 2u);

  const RequesterPlan& alice = (*slices)[0];
  EXPECT_EQ(alice.requester_id, "alice");
  EXPECT_EQ(alice.num_tasks(), 1u);
  EXPECT_EQ(alice.num_atomic_tasks(), 2u);
  // Local ids restart at 0; the shared 3-bin keeps cardinality and copies
  // but lists only alice's members.
  EXPECT_EQ(PlanSignature(alice.plan), "2x3:0;1;|3x1:1;|");

  const RequesterPlan& bob = (*slices)[1];
  EXPECT_EQ(bob.requester_id, "bob");
  EXPECT_EQ(bob.num_atomic_tasks(), 2u);
  EXPECT_EQ(PlanSignature(bob.plan), "3x1:0;1;|2x2:0;1;|");

  // Cost of each slice is the standalone cost of its placements, so the
  // shared 3-bin (cost 0.24) is billed to both.
  const double c2 = profile.bin(2).cost;
  const double c3 = profile.bin(3).cost;
  EXPECT_NEAR(alice.cost, 3 * c2 + c3, 1e-12);
  EXPECT_NEAR(bob.cost, c3 + 2 * c2, 1e-12);
  EXPECT_EQ(alice.bins_posted, 4u);
  EXPECT_EQ(bob.bins_posted, 3u);
}

TEST(PlanSplitterTest, EmptyRequesterGetsAnEmptySlice) {
  const BinProfile profile = BinProfile::PaperExample();
  const BatchReport report = HandcraftedReport();
  std::vector<RequesterSpan> spans = {
      {"early-empty", 0, 0}, {"alice", 0, 2}, {"late-empty", 2, 0}};

  auto slices = PlanSplitter::SplitBySpans(report, profile, spans);
  ASSERT_TRUE(slices.ok()) << slices.status().ToString();
  ASSERT_EQ(slices->size(), 3u);
  for (size_t empty_index : {size_t{0}, size_t{2}}) {
    const RequesterPlan& empty = (*slices)[empty_index];
    EXPECT_EQ(empty.num_tasks(), 0u);
    EXPECT_EQ(empty.num_atomic_tasks(), 0u);
    EXPECT_TRUE(empty.plan.empty());
    EXPECT_EQ(empty.cost, 0.0);
    EXPECT_EQ(empty.bins_posted, 0u);
  }
  // The non-empty span owns everything.
  EXPECT_EQ((*slices)[1].num_atomic_tasks(), 4u);
  EXPECT_EQ(PlanSignature((*slices)[1].plan), PlanSignature(report.plan));
}

TEST(PlanSplitterTest, SingleTaskRequesterKeepsItsWholePlan) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(5, 0.9);
  ASSERT_TRUE(task.ok());

  DecompositionEngine engine;
  auto report = engine.SolveBatch({*task}, profile);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto slices = PlanSplitter::SplitBySpans(*report, profile,
                                           {{"solo", 0, 1}});
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices->size(), 1u);
  // One requester owning the whole batch: the slice IS the merged plan.
  EXPECT_EQ(PlanSignature((*slices)[0].plan), PlanSignature(report->plan));
  EXPECT_NEAR((*slices)[0].cost, report->total_cost, 1e-9);
  EXPECT_EQ((*slices)[0].bins_posted, report->total_bins);

  auto validation = ValidatePlan((*slices)[0].plan, *task, profile);
  ASSERT_TRUE(validation.ok());
  EXPECT_TRUE(validation->feasible);
}

TEST(PlanSplitterTest, OneThresholdGroupPooledSlicesStayFeasible) {
  // Every requester uses the same threshold, so kPooled routes the whole
  // batch into a single shard and bins freely mix requesters.
  const BinProfile profile = BinProfile::PaperExample();
  std::vector<CrowdsourcingTask> tasks;
  std::vector<RequesterSpan> spans;
  for (size_t k = 0; k < 4; ++k) {
    auto task = CrowdsourcingTask::Homogeneous(3 + k, 0.9);
    ASSERT_TRUE(task.ok());
    tasks.push_back(*task);
    spans.push_back({"r" + std::to_string(k), k, 1});
  }

  EngineOptions options;
  options.sharing = BatchSharing::kPooled;
  DecompositionEngine engine(options);
  auto report = engine.SolveBatch(tasks, profile);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->shards.size(), 1u);

  auto slices = PlanSplitter::SplitBySpans(*report, profile, spans);
  ASSERT_TRUE(slices.ok());
  double billed = 0.0;
  for (size_t k = 0; k < slices->size(); ++k) {
    const RequesterPlan& slice = (*slices)[k];
    EXPECT_EQ(slice.num_atomic_tasks(), tasks[k].size());
    auto validation = ValidatePlan(slice.plan, tasks[k], profile);
    ASSERT_TRUE(validation.ok()) << validation.status().ToString();
    EXPECT_TRUE(validation->feasible)
        << "requester " << slice.requester_id << " margin "
        << validation->worst_log_margin;
    billed += slice.cost;
  }
  EXPECT_GE(billed, report->total_cost - 1e-9);
}

TEST(PlanSplitterTest, SplitByRequesterIsOrderIndependent) {
  const BinProfile profile = BinProfile::PaperExample();
  std::vector<CrowdsourcingTask> tasks;
  for (double t : {0.9, 0.8, 0.95, 0.85, 0.9, 0.7}) {
    auto task = CrowdsourcingTask::Homogeneous(4, t);
    ASSERT_TRUE(task.ok());
    tasks.push_back(*task);
  }
  DecompositionEngine engine;
  auto report = engine.SolveBatch(tasks, profile);
  ASSERT_TRUE(report.ok());

  // The same ownership in two different interleavings: which requester
  // appears first must not change any slice's content.
  const std::vector<std::string> owners_a = {"x", "y", "x", "z", "y", "z"};
  auto slices_a = PlanSplitter::SplitByRequester(*report, profile, owners_a);
  ASSERT_TRUE(slices_a.ok());
  ASSERT_EQ(slices_a->size(), 3u);
  EXPECT_EQ((*slices_a)[0].requester_id, "x");  // first-appearance order

  std::map<std::string, std::string> signature_a;
  std::map<std::string, double> cost_a;
  for (const RequesterPlan& slice : *slices_a) {
    signature_a[slice.requester_id] = PlanSignature(slice.plan);
    cost_a[slice.requester_id] = slice.cost;
  }

  // Relabel so "z" appears first, without changing each task's owner set:
  // swap the roles of x and z everywhere, then map back when comparing.
  const std::vector<std::string> owners_b = {"z", "y", "z", "x", "y", "x"};
  auto slices_b = PlanSplitter::SplitByRequester(*report, profile, owners_b);
  ASSERT_TRUE(slices_b.ok());
  ASSERT_EQ(slices_b->size(), 3u);
  EXPECT_EQ((*slices_b)[0].requester_id, "z");
  const std::map<std::string, std::string> role = {
      {"z", "x"}, {"y", "y"}, {"x", "z"}};
  for (const RequesterPlan& slice : *slices_b) {
    const std::string& original = role.at(slice.requester_id);
    EXPECT_EQ(PlanSignature(slice.plan), signature_a.at(original));
    EXPECT_DOUBLE_EQ(slice.cost, cost_a.at(original));
  }
}

TEST(PlanSplitterTest, SpansMustTileTheBatch) {
  const BinProfile profile = BinProfile::PaperExample();
  const BatchReport report = HandcraftedReport();

  // Gap, overlap, short coverage, over-coverage: all rejected.
  for (const std::vector<RequesterSpan>& bad :
       std::vector<std::vector<RequesterSpan>>{
           {{"a", 1, 1}},                  // gap at the front
           {{"a", 0, 2}, {"b", 1, 1}},     // overlap
           {{"a", 0, 1}},                  // covers 1 of 2
           {{"a", 0, 2}, {"b", 2, 1}}}) {  // third task doesn't exist
    auto slices = PlanSplitter::SplitBySpans(report, profile, bad);
    EXPECT_FALSE(slices.ok());
    EXPECT_TRUE(slices.status().IsInvalidArgument())
        << slices.status().ToString();
  }

  auto wrong_labels = PlanSplitter::SplitByRequester(report, profile,
                                                     {"a", "b", "c"});
  EXPECT_FALSE(wrong_labels.ok());
  EXPECT_TRUE(wrong_labels.status().IsInvalidArgument());
}

TEST(PlanSplitterTest, RejectsPlanReferencingTasksOutsideTheBatch) {
  const BinProfile profile = BinProfile::PaperExample();
  BatchReport report;
  report.task_offsets = {0, 2};
  report.plan.Add(2, 1, {0, 7});  // id 7 is out of range
  auto slices = PlanSplitter::SplitBySpans(report, profile, {{"a", 0, 1}});
  EXPECT_FALSE(slices.ok());
  EXPECT_TRUE(slices.status().IsInvalidArgument());
}

}  // namespace
}  // namespace slade
