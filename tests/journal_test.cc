// SubmissionJournal semantics: admit/complete/reject pairing across
// restarts, idempotent-outcome recovery, checkpointing and clean
// shutdown, compaction that must never forget a billable outcome, and
// the bounded idempotency window.

#include "durability/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "binmodel/task.h"

namespace slade {
namespace {

namespace fs = std::filesystem;

CrowdsourcingTask MakeTask(std::vector<double> thresholds) {
  auto task = CrowdsourcingTask::FromThresholds(std::move(thresholds));
  EXPECT_TRUE(task.ok());
  return std::move(task).ValueOrDie();
}

SubmissionOutcome MakeOutcome(double cost, uint64_t flush_id) {
  SubmissionOutcome outcome;
  outcome.cost = cost;
  outcome.bins_posted = 3;
  outcome.flush_id = flush_id;
  outcome.num_tasks = 1;
  outcome.num_atomic_tasks = 2;
  outcome.latency_seconds = 0.25;
  return outcome;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("journal_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  JournalOptions Options() {
    JournalOptions options;
    options.wal.dir = dir_.string();
    options.wal.commit_wait_micros = 0;
    return options;
  }

  fs::path dir_;
};

TEST_F(JournalTest, CompletedOutcomeSurvivesRestartPendingDoesNotLinger) {
  {
    auto opened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_TRUE(opened->pending.empty());
    SubmissionJournal& journal = *opened->journal;
    ASSERT_TRUE(
        journal.RecordAdmit("id-1", "alice", {MakeTask({0.9, 0.8})}).ok());
    ASSERT_TRUE(journal.RecordComplete("id-1", MakeOutcome(1.5, 7)).ok());
    ASSERT_TRUE(journal.SyncOutcomes().ok());
    SubmissionOutcome outcome;
    EXPECT_TRUE(journal.LookupCompleted("id-1", &outcome));
    EXPECT_DOUBLE_EQ(outcome.cost, 1.5);
  }

  auto reopened = SubmissionJournal::Open(Options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->pending.empty());  // id-1 is closed, not pending
  SubmissionOutcome outcome;
  ASSERT_TRUE(reopened->journal->LookupCompleted("id-1", &outcome));
  EXPECT_DOUBLE_EQ(outcome.cost, 1.5);
  EXPECT_EQ(outcome.flush_id, 7u);
  EXPECT_EQ(outcome.bins_posted, 3u);
  EXPECT_EQ(outcome.num_atomic_tasks, 2u);
  EXPECT_DOUBLE_EQ(outcome.latency_seconds, 0.25);
  const JournalStats stats = reopened->journal->stats();
  EXPECT_EQ(stats.recovery.outcomes_recovered, 1u);
  EXPECT_EQ(stats.recovery.pending_recovered, 0u);
  EXPECT_FALSE(stats.recovery.clean_shutdown);  // no final checkpoint
}

TEST_F(JournalTest, UnfinishedAdmitsRecoverInAdmissionOrderWithTasks) {
  {
    auto opened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(opened.ok());
    SubmissionJournal& journal = *opened->journal;
    ASSERT_TRUE(
        journal.RecordAdmit("a", "tenant-1", {MakeTask({0.9})}).ok());
    ASSERT_TRUE(journal
                    .RecordAdmit("b", "tenant-2",
                                 {MakeTask({0.8, 0.7}), MakeTask({0.95})})
                    .ok());
    ASSERT_TRUE(
        journal.RecordAdmit("c", "tenant-1", {MakeTask({0.85})}).ok());
    // Only b finishes; a and c are in flight when the "crash" happens.
    ASSERT_TRUE(journal.RecordComplete("b", MakeOutcome(2.0, 1)).ok());
    ASSERT_TRUE(journal.SyncOutcomes().ok());
  }

  auto reopened = SubmissionJournal::Open(Options());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->pending.size(), 2u);
  EXPECT_EQ(reopened->pending[0].submission_id, "a");
  EXPECT_EQ(reopened->pending[0].requester, "tenant-1");
  ASSERT_EQ(reopened->pending[0].tasks.size(), 1u);
  EXPECT_EQ(reopened->pending[0].tasks[0].thresholds(),
            std::vector<double>({0.9}));
  EXPECT_EQ(reopened->pending[1].submission_id, "c");
  // b's tasks round-tripped into its outcome instead.
  SubmissionOutcome outcome;
  EXPECT_TRUE(reopened->journal->LookupCompleted("b", &outcome));
  EXPECT_FALSE(reopened->journal->LookupCompleted("a", &outcome));
}

TEST_F(JournalTest, RejectClosesTheIdWithoutMakingItDedupable) {
  {
    auto opened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened->journal
                    ->RecordAdmit("shed-1", "alice", {MakeTask({0.9})})
                    .ok());
    ASSERT_TRUE(opened->journal->RecordReject("shed-1").ok());
    ASSERT_TRUE(opened->journal->SyncOutcomes().ok());
  }
  auto reopened = SubmissionJournal::Open(Options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->pending.empty());  // closed, not re-admitted
  SubmissionOutcome outcome;
  // ...but a reject is not a billable outcome: a retry of the id is a
  // fresh submission, not a duplicate.
  EXPECT_FALSE(reopened->journal->LookupCompleted("shed-1", &outcome));
}

TEST_F(JournalTest, CleanShutdownIsDetectedAndSkipsNothingItShould) {
  {
    auto opened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(opened.ok());
    SubmissionJournal& journal = *opened->journal;
    ASSERT_TRUE(
        journal.RecordAdmit("id-1", "alice", {MakeTask({0.9})}).ok());
    ASSERT_TRUE(journal.RecordComplete("id-1", MakeOutcome(1.0, 1)).ok());
    ASSERT_TRUE(journal.SyncOutcomes().ok());
    ASSERT_TRUE(journal.WriteCheckpoint().ok());
    ASSERT_TRUE(journal.Compact().ok());
  }
  auto reopened = SubmissionJournal::Open(Options());
  ASSERT_TRUE(reopened.ok());
  const JournalStats stats = reopened->journal->stats();
  EXPECT_TRUE(stats.recovery.clean_shutdown);
  EXPECT_TRUE(reopened->pending.empty());
  SubmissionOutcome outcome;
  EXPECT_TRUE(reopened->journal->LookupCompleted("id-1", &outcome));
}

TEST_F(JournalTest, CompactionNeverForgetsABillableOutcome) {
  JournalOptions options = Options();
  options.wal.segment_max_bytes = 1;  // every record seals a segment
  {
    auto opened = SubmissionJournal::Open(options);
    ASSERT_TRUE(opened.ok());
    SubmissionJournal& journal = *opened->journal;
    for (int i = 0; i < 8; ++i) {
      const std::string id = "id-" + std::to_string(i);
      ASSERT_TRUE(
          journal.RecordAdmit(id, "alice", {MakeTask({0.9})}).ok());
      ASSERT_TRUE(
          journal.RecordComplete(id, MakeOutcome(1.0 + i, i)).ok());
      ASSERT_TRUE(journal.SyncOutcomes().ok());
      ASSERT_TRUE(journal.Compact().ok());
    }
    EXPECT_GT(journal.stats().wal.segments_deleted, 0u);
  }
  // The complete records for early ids live in deleted segments now; the
  // checkpoint Compact wrote before releasing them must preserve every
  // outcome, or a crash here would re-bill a duplicate.
  auto reopened = SubmissionJournal::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->pending.empty());
  for (int i = 0; i < 8; ++i) {
    SubmissionOutcome outcome;
    ASSERT_TRUE(reopened->journal->LookupCompleted(
        "id-" + std::to_string(i), &outcome))
        << "outcome lost for id-" << i;
    EXPECT_DOUBLE_EQ(outcome.cost, 1.0 + i);
  }
}

TEST_F(JournalTest, CommitRecoveryDropsTheOldGenerationButKeepsState) {
  {
    auto opened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened->journal
                    ->RecordAdmit("id-1", "alice", {MakeTask({0.9})})
                    .ok());
    ASSERT_TRUE(
        opened->journal->RecordComplete("id-1", MakeOutcome(1.0, 1)).ok());
    ASSERT_TRUE(opened->journal->SyncOutcomes().ok());
  }
  size_t segments_after_commit = 0;
  {
    auto reopened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(reopened.ok());
    const size_t before = ListWalSegmentPaths(dir_.string()).size();
    ASSERT_TRUE(reopened->journal->CommitRecovery().ok());
    segments_after_commit = ListWalSegmentPaths(dir_.string()).size();
    EXPECT_LT(segments_after_commit, before);
  }
  // Third generation: the checkpoint alone carries the outcome forward.
  auto third = SubmissionJournal::Open(Options());
  ASSERT_TRUE(third.ok());
  SubmissionOutcome outcome;
  EXPECT_TRUE(third->journal->LookupCompleted("id-1", &outcome));
  EXPECT_DOUBLE_EQ(outcome.cost, 1.0);
}

TEST_F(JournalTest, GeneratedIdsAreUniqueAcrossRestarts) {
  std::set<std::string> ids;
  for (int generation = 0; generation < 3; ++generation) {
    auto opened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(opened.ok());
    for (int i = 0; i < 5; ++i) {
      const std::string id = opened->journal->GenerateSubmissionId();
      EXPECT_TRUE(ids.insert(id).second) << "duplicate auto id " << id;
      // Ids must hit the log so the NEXT generation numbers above them.
      ASSERT_TRUE(opened->journal
                      ->RecordAdmit(id, "alice", {MakeTask({0.9})})
                      .ok());
      ASSERT_TRUE(
          opened->journal->RecordComplete(id, MakeOutcome(1.0, 1)).ok());
      ASSERT_TRUE(opened->journal->SyncOutcomes().ok());
    }
  }
  EXPECT_EQ(ids.size(), 15u);
}

TEST_F(JournalTest, IdempotencyWindowEvictsOldestFirst) {
  JournalOptions options = Options();
  options.max_retained_outcomes = 2;
  auto opened = SubmissionJournal::Open(options);
  ASSERT_TRUE(opened.ok());
  SubmissionJournal& journal = *opened->journal;
  for (int i = 0; i < 3; ++i) {
    const std::string id = "id-" + std::to_string(i);
    ASSERT_TRUE(journal.RecordAdmit(id, "alice", {MakeTask({0.9})}).ok());
    ASSERT_TRUE(journal.RecordComplete(id, MakeOutcome(1.0, i)).ok());
    ASSERT_TRUE(journal.SyncOutcomes().ok());
  }
  SubmissionOutcome outcome;
  EXPECT_FALSE(journal.LookupCompleted("id-0", &outcome));  // aged out
  EXPECT_TRUE(journal.LookupCompleted("id-1", &outcome));
  EXPECT_TRUE(journal.LookupCompleted("id-2", &outcome));
  EXPECT_EQ(journal.stats().retained_outcomes, 2u);
}

TEST_F(JournalTest, DuplicateAdmitRecordsAreIgnoredOnReplay) {
  {
    auto opened = SubmissionJournal::Open(Options());
    ASSERT_TRUE(opened.ok());
    // Re-admission after recovery writes a second admit for the same id
    // (the first one lives in an older generation); replay must treat
    // the id as ONE submission.
    ASSERT_TRUE(opened->journal
                    ->RecordAdmit("dup", "alice", {MakeTask({0.9})})
                    .ok());
    ASSERT_TRUE(opened->journal
                    ->RecordAdmit("dup", "alice", {MakeTask({0.9})})
                    .ok());
  }
  auto reopened = SubmissionJournal::Open(Options());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->pending.size(), 1u);
  EXPECT_EQ(reopened->pending[0].submission_id, "dup");
}

}  // namespace
}  // namespace slade
