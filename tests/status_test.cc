#include "common/status.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad t");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad t");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad t");

  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::OutOfRange("cardinality 99");
  Status copy = st;
  EXPECT_EQ(copy, st);
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsOutOfRange());
  EXPECT_EQ(moved.message(), "cardinality 99");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_NE(Status::Internal("a"), Status::Internal("b"));
  EXPECT_NE(Status::Internal("a"), Status::IOError("a"));
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    SLADE_RETURN_NOT_OK(Status::Infeasible("nope"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsInfeasible());

  auto succeeds = []() -> Status {
    SLADE_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("fell through");
  };
  EXPECT_TRUE(succeeds().IsAlreadyExists());
}

}  // namespace
}  // namespace slade
