#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace slade {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadAll() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  // Unique per test: ctest runs test cases as parallel processes in the
  // same working directory.
  std::string path_ =
      std::string("csv_test_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_, {"n", "cost"}).ok());
  ASSERT_TRUE(
      w.WriteRow(std::vector<std::string>{"1000", "61.5"}).ok());
  ASSERT_TRUE(w.WriteRow(std::vector<double>{2000, 123.0}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadAll(), "n,cost\n1000,61.5\n2000,123\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_, {"a"}).ok());
  ASSERT_TRUE(w.WriteRow({std::string("has,comma"), "has\"quote"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadAll(), "a\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST_F(CsvTest, WriteWithoutOpenFails) {
  CsvWriter w;
  EXPECT_TRUE(w.WriteRow({"x"}).IsIOError());
  EXPECT_TRUE(w.Close().IsIOError());
}

TEST_F(CsvTest, OpenInvalidPathFails) {
  CsvWriter w;
  EXPECT_TRUE(w.Open("/nonexistent-dir-xyz/file.csv", {"a"}).IsIOError());
}

}  // namespace
}  // namespace slade
