#include "solver/opq_solver.h"

#include <gtest/gtest.h>

#include <numeric>

#include "binmodel/profile_model.h"
#include "solver/exact_solver.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(OpqSolverTest, ReproducesPaperExample9) {
  // 4 tasks, t=0.95: OPQ uses {2 x b3} on a1..a3 and {2 x b1} on a4,
  // total 0.68.
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  OpqSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile), 0.68, 1e-9);
  auto counts = plan->BinCounts(3);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(OpqSolverTest, RejectsHeterogeneousInput) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::FromThresholds({0.9, 0.95});
  OpqSolver solver;
  EXPECT_TRUE(
      solver.Solve(*task, profile).status().IsInvalidArgument());
}

TEST(OpqSolverTest, ExactlyOptimalOnLcmMultiples) {
  // Corollary 1: when n = k * OPQ_1.LCM the plan cost is exactly
  // n * OPQ_1.UC.
  const BinProfile profile = BinProfile::PaperExample();
  auto opq = BuildOpq(profile, 0.95);
  ASSERT_TRUE(opq.ok());
  const uint64_t lcm = opq->front().lcm();  // 3
  for (uint64_t k : {1u, 2u, 5u, 40u}) {
    const size_t n = static_cast<size_t>(k * lcm);
    auto task = CrowdsourcingTask::Homogeneous(n, 0.95);
    OpqSolver solver;
    auto plan = solver.Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    EXPECT_NEAR(plan->TotalCost(profile),
                static_cast<double>(n) * opq->front().unit_cost(), 1e-9)
        << "n=" << n;
  }
}

TEST(OpqSolverTest, LowerBoundNeverViolated) {
  // OPT >= n * OPQ_1.UC (Lemma 2 / Theorem 2 proof); our plan must sit
  // between the bound and log2(n)+1 times it.
  const BinProfile profile = BuildProfile(JellyModel(), 12).ValueOrDie();
  for (size_t n : {1u, 2u, 3u, 5u, 17u, 100u, 1001u}) {
    auto task = CrowdsourcingTask::Homogeneous(n, 0.9);
    auto opq = BuildOpq(profile, 0.9);
    ASSERT_TRUE(opq.ok());
    OpqSolver solver;
    auto plan = solver.Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    const double cost = plan->TotalCost(profile);
    const double lb = static_cast<double>(n) * opq->front().unit_cost();
    EXPECT_GE(cost, lb - 1e-9) << "n=" << n;
    // Theorem 2 assumes n >= OPQ_1.LCM ("j1 = 1 for a large-scale task");
    // below that, bins cannot be shared and the LP bound is unreachable.
    if (n >= opq->front().lcm()) {
      const double ratio_bound = std::log2(static_cast<double>(n)) + 1.0;
      EXPECT_LE(cost, lb * ratio_bound + 1e-9) << "n=" << n;
    }
  }
}

class OpqFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint32_t>> {
};

TEST_P(OpqFeasibilityTest, PlansAlwaysFeasible) {
  const auto [n, t, m] = GetParam();
  const BinProfile profile = BuildProfile(JellyModel(), m).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(n, t);
  OpqSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible)
      << "n=" << n << " t=" << t << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpqFeasibilityTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 7u, 100u, 999u),
                       ::testing::Values(0.87, 0.95, 0.97),
                       ::testing::Values(1u, 6u, 20u)));

TEST(OpqSolverTest, NeverWorseThanExactOnTinyInstances) {
  // Sanity floor: for n=1..3 on the paper profile, OPQ-Based must not
  // beat the exact optimum (it may match it).
  const BinProfile profile = BinProfile::PaperExample();
  ExactSmallSolver exact;
  OpqSolver opq;
  for (size_t n = 1; n <= 3; ++n) {
    auto task = CrowdsourcingTask::Homogeneous(n, 0.95);
    auto opq_plan = opq.Solve(*task, profile);
    auto exact_plan = exact.Solve(*task, profile);
    ASSERT_TRUE(opq_plan.ok());
    ASSERT_TRUE(exact_plan.ok());
    EXPECT_GE(opq_plan->TotalCost(profile),
              exact_plan->TotalCost(profile) - 1e-9)
        << "n=" << n;
  }
}

TEST(OpqSolverTest, PaddingPathProducesFeasiblePlans) {
  // Pick n so that leftovers trigger the Cost_prev padding branch:
  // with the Table-1 profile, the queue LCMs are {3, 2, 1}; n = 3k+1
  // leaves a remainder after the front element.
  const BinProfile profile = BinProfile::PaperExample();
  for (size_t n : {4u, 7u, 10u, 31u}) {
    auto task = CrowdsourcingTask::Homogeneous(n, 0.95);
    OpqSolver solver;
    auto plan = solver.Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible) << n;
  }
}

}  // namespace
}  // namespace slade
