#include "solver/plan_validator.h"

#include <chrono>

#include <gtest/gtest.h>

#include "solver/plan_arena.h"

namespace slade {
namespace {

class PlanValidatorTest : public ::testing::Test {
 protected:
  BinProfile profile_ = BinProfile::PaperExample();
  CrowdsourcingTask task_ =
      CrowdsourcingTask::Homogeneous(4, 0.95).ValueOrDie();
};

TEST_F(PlanValidatorTest, AcceptsPaperPlanP2) {
  // Example 4's optimal P2: {a1,a2,a3}, {a1,a2,a4}, {a3,a4}.
  DecompositionPlan plan;
  plan.Add(3, 1, {0, 1, 2});
  plan.Add(3, 1, {0, 1, 3});
  plan.Add(2, 1, {2, 3});
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);
  EXPECT_NEAR(report->total_cost, 0.66, 1e-12);
  EXPECT_GT(report->worst_log_margin, 0.0);
}

TEST_F(PlanValidatorTest, DetectsInfeasiblePlan) {
  DecompositionPlan plan;
  plan.Add(3, 1, {0, 1, 2});  // one 0.8-bin: Rel = 0.8 < 0.95
  plan.Add(1, 2, {3});
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->feasible);
  EXPECT_LT(report->worst_log_margin, 0.0);
  EXPECT_LT(report->worst_task, 3u);  // one of a1..a3
}

TEST_F(PlanValidatorTest, RejectsOverfullBin) {
  DecompositionPlan plan;
  plan.Add(2, 1, {0, 1, 2});  // 3 tasks in a 2-bin
  EXPECT_TRUE(
      ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
}

TEST_F(PlanValidatorTest, RejectsDuplicateTaskInBin) {
  DecompositionPlan plan;
  plan.Add(3, 1, {0, 0, 1});
  EXPECT_TRUE(
      ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
}

TEST_F(PlanValidatorTest, RejectsUnknownCardinality) {
  DecompositionPlan plan;
  plan.Add(4, 1, {0, 1, 2});
  EXPECT_TRUE(
      ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
}

TEST_F(PlanValidatorTest, RejectsOutOfRangeTaskId) {
  DecompositionPlan plan;
  plan.Add(1, 1, {17});
  EXPECT_TRUE(ValidatePlan(plan, task_, profile_).status().IsOutOfRange());
}

TEST_F(PlanValidatorTest, PartiallyFilledBinIsLegal) {
  // Definition 1: a bin holds AT MOST l tasks.
  DecompositionPlan plan;
  plan.Add(3, 2, {0});
  plan.Add(3, 2, {1});
  plan.Add(3, 2, {2});
  plan.Add(3, 2, {3});
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);  // 2 * w(0.8) = 3.22 >= 2.996
}

TEST_F(PlanValidatorTest, EmptyPlanIsInfeasibleButWellFormed) {
  DecompositionPlan plan;
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->feasible);
}

TEST_F(PlanValidatorTest, HeterogeneousThresholdsChecked) {
  auto hetero = CrowdsourcingTask::FromThresholds({0.5, 0.95});
  DecompositionPlan plan;
  plan.Add(1, 1, {0});  // r=0.9 >= 0.5: fine
  plan.Add(1, 1, {1});  // r=0.9 < 0.95: violates a2
  auto report = ValidatePlan(plan, *hetero, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->feasible);
  EXPECT_EQ(report->worst_task, 1u);
}

// --- ColumnarPlan overload: same checks, same reports ----------------------

TEST_F(PlanValidatorTest, ColumnarMatchesAoSReportOnFeasiblePlan) {
  DecompositionPlan aos;
  aos.Add(3, 1, {0, 1, 2});
  aos.Add(3, 1, {0, 1, 3});
  aos.Add(2, 1, {2, 3});
  auto aos_report = ValidatePlan(aos, task_, profile_);
  auto columnar_report =
      ValidatePlan(ColumnarPlan::FromPlan(aos), task_, profile_);
  ASSERT_TRUE(aos_report.ok());
  ASSERT_TRUE(columnar_report.ok());
  EXPECT_EQ(columnar_report->feasible, aos_report->feasible);
  EXPECT_EQ(columnar_report->worst_task, aos_report->worst_task);
  EXPECT_DOUBLE_EQ(columnar_report->worst_log_margin,
                   aos_report->worst_log_margin);
  EXPECT_DOUBLE_EQ(columnar_report->total_cost, aos_report->total_cost);
}

TEST_F(PlanValidatorTest, ColumnarRejectsSameStructuralViolations) {
  {
    ColumnarPlan plan;
    plan.Add(2, 1, {0, 1, 2});  // overfull
    EXPECT_TRUE(
        ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
  }
  {
    ColumnarPlan plan;
    plan.Add(3, 1, {0, 0, 1});  // duplicate
    EXPECT_TRUE(
        ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
  }
  {
    ColumnarPlan plan;
    plan.Add(4, 1, {0, 1, 2});  // unknown cardinality
    EXPECT_TRUE(
        ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
  }
  {
    ColumnarPlan plan;
    plan.Add(1, 1, {17});  // out of range
    EXPECT_TRUE(ValidatePlan(plan, task_, profile_).status().IsOutOfRange());
  }
}

TEST_F(PlanValidatorTest, DuplicateDetectionSpansOnlyOnePlacement) {
  // The same id in two different placements is legal (that is how copies
  // accumulate reliability); the epoch-stamped scratch must reset between
  // placements.
  DecompositionPlan plan;
  for (int i = 0; i < 10; ++i) plan.Add(3, 1, {0, 1, 2});
  plan.Add(1, 3, {3});
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);
}

TEST_F(PlanValidatorTest, LargePlanValidatesInLinearTime) {
  // Satellite regression: 10^5 placements over 10^5 tasks must validate in
  // one pass -- the old per-placement unordered_set made this rehash-bound.
  // Generous wall bound (seconds, not minutes) so the test only trips on a
  // complexity regression, not on a slow machine.
  constexpr size_t kTasks = 100'000;
  auto task = CrowdsourcingTask::Homogeneous(kTasks, 0.95);
  ASSERT_TRUE(task.ok());
  DecompositionPlan aos;
  aos.Reserve(kTasks);
  ColumnarPlan columnar;
  columnar.Reserve(kTasks, 3 * kTasks);
  for (size_t i = 0; i < kTasks; i += 3) {
    const TaskId a = static_cast<TaskId>(i);
    const TaskId b = static_cast<TaskId>((i + 1) % kTasks);
    const TaskId c = static_cast<TaskId>((i + 2) % kTasks);
    aos.Add(3, 2, {a, b, c});
    columnar.Add(3, 2, {a, b, c});
  }
  // Pad every task over the 0.95 threshold (2 * w(0.8) suffices; add 1-bins
  // for margin uniformity).
  const auto start = std::chrono::steady_clock::now();
  auto aos_report = ValidatePlan(aos, *task, profile_);
  auto columnar_report = ValidatePlan(columnar, *task, profile_);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(aos_report.ok());
  ASSERT_TRUE(columnar_report.ok());
  EXPECT_EQ(columnar_report->feasible, aos_report->feasible);
  EXPECT_DOUBLE_EQ(columnar_report->worst_log_margin,
                   aos_report->worst_log_margin);
  EXPECT_LT(seconds, 5.0) << "validation is no longer linear";
}

}  // namespace
}  // namespace slade
