#include "solver/plan_validator.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

class PlanValidatorTest : public ::testing::Test {
 protected:
  BinProfile profile_ = BinProfile::PaperExample();
  CrowdsourcingTask task_ =
      CrowdsourcingTask::Homogeneous(4, 0.95).ValueOrDie();
};

TEST_F(PlanValidatorTest, AcceptsPaperPlanP2) {
  // Example 4's optimal P2: {a1,a2,a3}, {a1,a2,a4}, {a3,a4}.
  DecompositionPlan plan;
  plan.Add(3, 1, {0, 1, 2});
  plan.Add(3, 1, {0, 1, 3});
  plan.Add(2, 1, {2, 3});
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);
  EXPECT_NEAR(report->total_cost, 0.66, 1e-12);
  EXPECT_GT(report->worst_log_margin, 0.0);
}

TEST_F(PlanValidatorTest, DetectsInfeasiblePlan) {
  DecompositionPlan plan;
  plan.Add(3, 1, {0, 1, 2});  // one 0.8-bin: Rel = 0.8 < 0.95
  plan.Add(1, 2, {3});
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->feasible);
  EXPECT_LT(report->worst_log_margin, 0.0);
  EXPECT_LT(report->worst_task, 3u);  // one of a1..a3
}

TEST_F(PlanValidatorTest, RejectsOverfullBin) {
  DecompositionPlan plan;
  plan.Add(2, 1, {0, 1, 2});  // 3 tasks in a 2-bin
  EXPECT_TRUE(
      ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
}

TEST_F(PlanValidatorTest, RejectsDuplicateTaskInBin) {
  DecompositionPlan plan;
  plan.Add(3, 1, {0, 0, 1});
  EXPECT_TRUE(
      ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
}

TEST_F(PlanValidatorTest, RejectsUnknownCardinality) {
  DecompositionPlan plan;
  plan.Add(4, 1, {0, 1, 2});
  EXPECT_TRUE(
      ValidatePlan(plan, task_, profile_).status().IsInvalidArgument());
}

TEST_F(PlanValidatorTest, RejectsOutOfRangeTaskId) {
  DecompositionPlan plan;
  plan.Add(1, 1, {17});
  EXPECT_TRUE(ValidatePlan(plan, task_, profile_).status().IsOutOfRange());
}

TEST_F(PlanValidatorTest, PartiallyFilledBinIsLegal) {
  // Definition 1: a bin holds AT MOST l tasks.
  DecompositionPlan plan;
  plan.Add(3, 2, {0});
  plan.Add(3, 2, {1});
  plan.Add(3, 2, {2});
  plan.Add(3, 2, {3});
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);  // 2 * w(0.8) = 3.22 >= 2.996
}

TEST_F(PlanValidatorTest, EmptyPlanIsInfeasibleButWellFormed) {
  DecompositionPlan plan;
  auto report = ValidatePlan(plan, task_, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->feasible);
}

TEST_F(PlanValidatorTest, HeterogeneousThresholdsChecked) {
  auto hetero = CrowdsourcingTask::FromThresholds({0.5, 0.95});
  DecompositionPlan plan;
  plan.Add(1, 1, {0});  // r=0.9 >= 0.5: fine
  plan.Add(1, 1, {1});  // r=0.9 < 0.95: violates a2
  auto report = ValidatePlan(plan, *hetero, profile_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->feasible);
  EXPECT_EQ(report->worst_task, 1u);
}

}  // namespace
}  // namespace slade
