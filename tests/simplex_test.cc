#include "solver/simplex.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

TEST(SimplexTest, SolvesTextbookCoveringLp) {
  // min 2x + 3y  s.t.  x + y >= 4, x + 3y >= 6, x,y >= 0.
  // Optimum at (3, 1): objective 9.
  LpProblem p;
  p.a = {{1, 1}, {1, 3}};
  p.b = {4, 6};
  p.c = {2, 3};
  auto sol = SolveCoveringLp(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 9.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 3.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-6);
}

TEST(SimplexTest, SingleVariableSingleRow) {
  // min 5x s.t. 2x >= 3 -> x = 1.5, obj = 7.5.
  LpProblem p;
  p.a = {{2}};
  p.b = {3};
  p.c = {5};
  auto sol = SolveCoveringLp(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 7.5, 1e-6);
  EXPECT_NEAR(sol->x[0], 1.5, 1e-6);
}

TEST(SimplexTest, PrefersCheaperColumn) {
  // Two ways to cover one row; the cheaper per unit must win.
  // min 10a + 3b s.t. 2a + 1b >= 4 -> all b: b=4, obj 12 (vs a=2, obj 20).
  LpProblem p;
  p.a = {{2, 1}};
  p.b = {4};
  p.c = {10, 3};
  auto sol = SolveCoveringLp(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 12.0, 1e-6);
}

TEST(SimplexTest, ZeroRhsRowIsFree) {
  // A row with b=0 is satisfied at x=0.
  LpProblem p;
  p.a = {{1, 0}, {0, 1}};
  p.b = {0, 2};
  p.c = {1, 1};
  auto sol = SolveCoveringLp(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 2.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 0.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // No column covers row 2 (all-zero row with positive demand).
  LpProblem p;
  p.a = {{1, 1}, {0, 0}};
  p.b = {1, 5};
  p.c = {1, 1};
  EXPECT_TRUE(SolveCoveringLp(p).status().IsInfeasible());
}

TEST(SimplexTest, RejectsMalformedInput) {
  LpProblem empty;
  EXPECT_TRUE(SolveCoveringLp(empty).status().IsInvalidArgument());

  LpProblem negative_b;
  negative_b.a = {{1}};
  negative_b.b = {-1};
  negative_b.c = {1};
  EXPECT_TRUE(SolveCoveringLp(negative_b).status().IsInvalidArgument());

  LpProblem ragged;
  ragged.a = {{1, 2}, {1}};
  ragged.b = {1, 1};
  ragged.c = {1, 1};
  EXPECT_TRUE(SolveCoveringLp(ragged).status().IsInvalidArgument());
}

TEST(SimplexTest, DegenerateConstraintsTerminate) {
  // Multiple identical rows (degenerate vertices) must not cycle.
  LpProblem p;
  p.a = {{1, 2}, {1, 2}, {1, 2}, {2, 1}};
  p.b = {2, 2, 2, 2};
  p.c = {1, 1};
  auto sol = SolveCoveringLp(p);
  ASSERT_TRUE(sol.ok());
  // Optimum at intersection x=y=2/3: objective 4/3.
  EXPECT_NEAR(sol->objective, 4.0 / 3.0, 1e-8);
}

TEST(SimplexTest, LargerRandomishInstanceStaysConsistent) {
  // 12 rows, 30 columns with deterministic pseudo-random structure; verify
  // the returned x is feasible and complementary costs are sane.
  LpProblem p;
  const size_t rows = 12, cols = 30;
  p.b.assign(rows, 3.0);
  p.c.resize(cols);
  p.a.assign(rows, std::vector<double>(cols, 0.0));
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 1000) / 1000.0;
  };
  for (size_t j = 0; j < cols; ++j) {
    p.c[j] = 0.5 + next();
    for (size_t i = 0; i < rows; ++i) {
      if (next() < 0.3) p.a[i][j] = 0.5 + next();
    }
  }
  // Guarantee coverage: add identity-ish columns.
  for (size_t i = 0; i < rows; ++i) p.a[i][i] = 1.0;

  auto sol = SolveCoveringLp(p);
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < rows; ++i) {
    double lhs = 0;
    for (size_t j = 0; j < cols; ++j) lhs += p.a[i][j] * sol->x[j];
    EXPECT_GE(lhs, p.b[i] - 1e-7) << "row " << i;
  }
  double obj = 0;
  for (size_t j = 0; j < cols; ++j) {
    EXPECT_GE(sol->x[j], -1e-9);
    obj += p.c[j] * sol->x[j];
  }
  EXPECT_NEAR(obj, sol->objective, 1e-7);
}

TEST(SimplexTest, IterationLimitReported) {
  LpProblem p;
  p.a = {{1, 1}, {1, 3}};
  p.b = {4, 6};
  p.c = {2, 3};
  EXPECT_TRUE(SolveCoveringLp(p, 1).status().IsResourceExhausted());
}

}  // namespace
}  // namespace slade
