#include "solver/budget_solver.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(BudgetSolverTest, RejectsBadArguments) {
  const BinProfile profile = BinProfile::PaperExample();
  EXPECT_TRUE(MaxReliabilityUnderBudget(0, profile, 1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MaxReliabilityUnderBudget(10, profile, 0.0)
                  .status()
                  .IsInvalidArgument());
  BudgetOptions bad;
  bad.t_lo = 0.9;
  bad.t_hi = 0.8;
  EXPECT_TRUE(MaxReliabilityUnderBudget(10, profile, 1.0, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(BudgetSolverTest, TinyBudgetIsInfeasible) {
  const BinProfile profile = BinProfile::PaperExample();
  EXPECT_TRUE(MaxReliabilityUnderBudget(100, profile, 0.01)
                  .status()
                  .IsInfeasible());
}

TEST(BudgetSolverTest, ResultRespectsBudgetAndIsFeasible) {
  const BinProfile profile = BuildProfile(JellyModel(), 12).ValueOrDie();
  const size_t n = 500;
  for (double budget : {5.0, 8.0, 15.0, 40.0}) {
    auto result = MaxReliabilityUnderBudget(n, profile, budget);
    ASSERT_TRUE(result.ok()) << "budget=" << budget;
    EXPECT_LE(result->cost, budget + 1e-9);
    auto task = CrowdsourcingTask::Homogeneous(n, result->threshold);
    auto report = ValidatePlan(result->plan, *task, profile);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->feasible) << "budget=" << budget;
  }
}

TEST(BudgetSolverTest, MoreBudgetBuysMoreReliability) {
  const BinProfile profile = BuildProfile(SmicModel(), 12).ValueOrDie();
  const size_t n = 400;
  double prev_threshold = 0.0;
  for (double budget : {8.0, 12.0, 20.0, 60.0}) {
    auto result = MaxReliabilityUnderBudget(n, profile, budget);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->threshold, prev_threshold - 1e-9)
        << "budget=" << budget;
    prev_threshold = result->threshold;
  }
  EXPECT_GT(prev_threshold, 0.9);
}

TEST(BudgetSolverTest, ThresholdIsNearlyMaximal) {
  // Raising the found threshold by a small log step must exceed the
  // budget (otherwise the bisection under-shot badly).
  const BinProfile profile = BuildProfile(JellyModel(), 12).ValueOrDie();
  const size_t n = 300;
  const double budget = 6.0;
  auto result = MaxReliabilityUnderBudget(n, profile, budget);
  ASSERT_TRUE(result.ok());
  if (result->threshold < 0.994) {  // not pinned at the search ceiling
    const double bumped =
        InverseLogReduction(LogReduction(result->threshold) * 1.05);
    auto task = CrowdsourcingTask::Homogeneous(n, std::min(bumped, 0.9949));
    OpqSolver solver;
    auto plan = solver.Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    EXPECT_GT(plan->TotalCost(profile), budget);
  }
}

TEST(BudgetSolverTest, GenerousBudgetHitsTheCeiling) {
  const BinProfile profile = BuildProfile(JellyModel(), 12).ValueOrDie();
  auto result = MaxReliabilityUnderBudget(100, profile, 1e6);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->threshold, 0.99);
}

}  // namespace
}  // namespace slade
