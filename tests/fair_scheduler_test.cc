// Property tests for the deficit-round-robin flush scheduler and the
// per-tenant quotas (StreamingOptions::fairness).
//
// The quota tests are fully deterministic: huge flush caps + a huge
// deadline park every admission, so quota decisions are observable
// without races (same idiom as streaming_backpressure_test.cc). The
// starvation test is a property over delivery order that holds under any
// thread interleaving once a backlog exists: a heavy tenant's backlog
// cannot push a light tenant's submissions behind all of its own.

#include <algorithm>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/streaming_engine.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace slade {
namespace {

CrowdsourcingTask FixedTask(size_t num_atomic, uint64_t seed) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;
  spec.clamp_lo = 0.6;
  spec.clamp_hi = 0.98;
  auto thresholds = GenerateThresholds(spec, num_atomic, seed);
  EXPECT_TRUE(thresholds.ok());
  auto task =
      CrowdsourcingTask::FromThresholds(std::move(thresholds).ValueOrDie());
  EXPECT_TRUE(task.ok());
  return std::move(task).ValueOrDie();
}

/// Huge flush caps + huge deadline: nothing flushes until Flush()/Drain().
StreamingOptions ParkedOptions() {
  StreamingOptions options;
  options.max_pending_submissions = 1u << 20;
  options.max_pending_atomic_tasks = 1u << 20;
  options.max_delay_seconds = 3600.0;
  return options;
}

/// A canonical text form of a plan slice, for placement-identity checks:
/// every placement as (cardinality x copies: sorted task ids).
std::string PlacementSignature(const RequesterPlan& slice) {
  std::vector<std::string> parts;
  const DecompositionPlan plan = slice.plan.ToPlan();
  for (const BinPlacement& placement : plan.placements()) {
    std::vector<TaskId> tasks = placement.tasks;
    std::sort(tasks.begin(), tasks.end());
    std::ostringstream part;
    part << placement.cardinality << "x" << placement.copies << ":";
    for (const TaskId id : tasks) part << id << ",";
    parts.push_back(part.str());
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream signature;
  for (const std::string& part : parts) signature << part << ";";
  return signature.str();
}

// ---------------------------------------------------------------------------
// Per-tenant quotas
// ---------------------------------------------------------------------------

TEST(FairSchedulerTest, QuotaExhaustionRejectsOnlyTheOffendingTenant) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingOptions options = ParkedOptions();
  options.fairness.enabled = true;
  options.fairness.tenant_max_pending_atomic_tasks = 4;
  StreamingEngine engine(*profile, options);

  // "hog" fills its quota exactly; the submission parks. The bystander
  // parks too (its own quota is untouched by hog's usage). Check the
  // queue before any rejection: a rejection kicks the worker, so the
  // parked submissions may flush at any point afterwards.
  auto hog_first = engine.Submit("hog", {FixedTask(4, 1)});
  auto bystander = engine.Submit("bystander", {FixedTask(2, 3)});
  EXPECT_EQ(engine.stats().queue_submissions, 2u);
  // Anything more from "hog" is over quota and fails fast.
  auto hog_second = engine.Submit("hog", {FixedTask(1, 2)});
  auto hog_result = hog_second.get();
  ASSERT_FALSE(hog_result.ok());
  EXPECT_TRUE(hog_result.status().IsResourceExhausted())
      << hog_result.status().ToString();

  StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.rejected_tenant_quota, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // quota rejections are counted apart

  engine.Drain();
  EXPECT_TRUE(hog_first.get().ok());
  EXPECT_TRUE(bystander.get().ok());

  // Per-tenant counters tell the same story.
  bool saw_hog = false, saw_bystander = false;
  for (const TenantStats& tenant : engine.tenant_stats()) {
    if (tenant.tenant == "hog") {
      saw_hog = true;
      EXPECT_EQ(tenant.rejected_quota, 1u);
      EXPECT_EQ(tenant.delivered, 1u);
      EXPECT_GT(tenant.billed_cost, 0.0);
    } else if (tenant.tenant == "bystander") {
      saw_bystander = true;
      EXPECT_EQ(tenant.rejected_quota, 0u);
      EXPECT_EQ(tenant.delivered, 1u);
    }
  }
  EXPECT_TRUE(saw_hog);
  EXPECT_TRUE(saw_bystander);
}

TEST(FairSchedulerTest, EmptyQueueAdmitsOneSubmissionOverQuota) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingOptions options = ParkedOptions();
  options.fairness.enabled = true;
  options.fairness.tenant_max_pending_atomic_tasks = 2;
  StreamingEngine engine(*profile, options);

  // One submission far over the quota still admits when the tenant's
  // queue is empty -- a quota smaller than one submission cannot starve.
  auto big = engine.Submit("whale", {FixedTask(6, 7), FixedTask(6, 8)});
  EXPECT_EQ(engine.stats().queue_submissions, 1u);
  // But with the queue now nonempty, the quota bites.
  auto refused = engine.Submit("whale", {FixedTask(1, 9)});
  auto refused_result = refused.get();
  ASSERT_FALSE(refused_result.ok());
  EXPECT_TRUE(refused_result.status().IsResourceExhausted());

  engine.Drain();
  EXPECT_TRUE(big.get().ok());
  EXPECT_EQ(engine.stats().rejected_tenant_quota, 1u);
}

TEST(FairSchedulerTest, ByteQuotaIsEnforcedIndependently) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingOptions options = ParkedOptions();
  options.fairness.enabled = true;
  // Atomic-task quota is roomy; the byte quota is what trips.
  options.fairness.tenant_max_pending_atomic_tasks = 1u << 20;
  options.fairness.tenant_max_pending_bytes = 64;
  StreamingEngine engine(*profile, options);

  // Any submission's footprint exceeds 64 bytes, so the first one only
  // gets in via the empty-queue rule...
  auto first = engine.Submit("t", {FixedTask(8, 11)});
  // ...and the second trips the byte quota even though it is tiny.
  auto second = engine.Submit("t", {FixedTask(1, 12)});
  auto second_result = second.get();
  ASSERT_FALSE(second_result.ok());
  EXPECT_TRUE(second_result.status().IsResourceExhausted());
  engine.Drain();
  EXPECT_TRUE(first.get().ok());
}

// ---------------------------------------------------------------------------
// Starvation resistance
// ---------------------------------------------------------------------------

TEST(FairSchedulerTest, HeavyBacklogCannotStarveALightTenant) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingOptions options;
  // Batches are bounded (8 submissions' worth of atomic tasks), the
  // deadline is parked: flushing is driven purely by the size trigger.
  options.max_pending_atomic_tasks = 64;
  options.max_pending_submissions = 1u << 20;
  options.max_delay_seconds = 3600.0;
  options.fairness.enabled = true;
  options.fairness.quantum_atomic_tasks = 8;  // one submission per visit
  StreamingEngine engine(*profile, options);

  constexpr int kHeavy = 120;
  constexpr int kLight = 12;
  std::vector<std::future<Result<RequesterPlan>>> heavy_futures;
  std::vector<std::future<Result<RequesterPlan>>> light_futures;
  // The heavy tenant's entire backlog is admitted FIRST; the light tenant
  // only shows up afterwards. Under plain FIFO, every light submission
  // would land in the final micro-batches, behind all of the heavy ones.
  for (int i = 0; i < kHeavy; ++i) {
    heavy_futures.push_back(
        engine.Submit("heavy", {FixedTask(8, 100 + static_cast<uint64_t>(i))}));
  }
  for (int i = 0; i < kLight; ++i) {
    light_futures.push_back(
        engine.Submit("light", {FixedTask(8, 900 + static_cast<uint64_t>(i))}));
  }
  engine.Drain();

  uint64_t heavy_last_flush = 0;
  for (auto& future : heavy_futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    heavy_last_flush = std::max(heavy_last_flush, result->flush_id);
  }
  uint64_t light_last_flush = 0;
  double light_mean_flush = 0.0;
  for (auto& future : light_futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    light_last_flush = std::max(light_last_flush, result->flush_id);
    light_mean_flush += static_cast<double>(result->flush_id);
  }
  light_mean_flush /= kLight;

  // DRR interleaves the tenants: the light tenant finishes while the
  // heavy backlog is still flushing. FIFO would give
  // light_last_flush == heavy_last_flush (light admitted last).
  EXPECT_LT(light_last_flush, heavy_last_flush);
  // And on average the light tenant rides early batches, not the tail.
  EXPECT_LT(light_mean_flush, static_cast<double>(heavy_last_flush) * 0.75);

  const StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.submissions, static_cast<uint64_t>(kHeavy + kLight));
  EXPECT_EQ(stats.rejected_tenant_quota, 0u);
}

TEST(FairSchedulerTest, WeightsScaleATenantsShare) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingOptions options;
  options.max_pending_atomic_tasks = 64;
  options.max_pending_submissions = 1u << 20;
  options.max_delay_seconds = 3600.0;
  options.fairness.enabled = true;
  options.fairness.quantum_atomic_tasks = 8;
  options.fairness.weights["gold"] = 4;  // 4x the credit per visit
  StreamingEngine engine(*profile, options);

  // Equal backlogs; gold should drain well before the default-weight
  // tenant despite being admitted second.
  constexpr int kEach = 48;
  std::vector<std::future<Result<RequesterPlan>>> free_futures;
  std::vector<std::future<Result<RequesterPlan>>> gold_futures;
  for (int i = 0; i < kEach; ++i) {
    free_futures.push_back(
        engine.Submit("free", {FixedTask(8, 300 + static_cast<uint64_t>(i))}));
  }
  for (int i = 0; i < kEach; ++i) {
    gold_futures.push_back(
        engine.Submit("gold", {FixedTask(8, 500 + static_cast<uint64_t>(i))}));
  }
  engine.Drain();

  uint64_t free_last = 0, gold_last = 0;
  for (auto& future : free_futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    free_last = std::max(free_last, result->flush_id);
  }
  for (auto& future : gold_futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    gold_last = std::max(gold_last, result->flush_id);
  }
  // gold was admitted after free yet finishes no later: weight 4 takes 4
  // submissions per scheduler visit to free's 1.
  EXPECT_LE(gold_last, free_last);

  for (const TenantStats& tenant : engine.tenant_stats()) {
    if (tenant.tenant == "gold") {
      EXPECT_EQ(tenant.weight, 4u);
    }
    if (tenant.tenant == "free") {
      EXPECT_EQ(tenant.weight, 1u);
    }
    EXPECT_EQ(tenant.delivered, static_cast<uint64_t>(kEach));
  }
}

// ---------------------------------------------------------------------------
// Placement differential: fairness only reorders, never re-plans
// ---------------------------------------------------------------------------

TEST(FairSchedulerTest, FairnessNeverChangesPlacements) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());

  // The same 24-submission, 3-tenant workload through four differently
  // configured engines. Under BatchSharing::kIsolated every configuration
  // must produce byte-identical plan slices -- fairness and batching
  // change only delivery timing.
  auto run = [&](StreamingOptions options) {
    StreamingEngine engine(*profile, options);
    std::vector<std::future<Result<RequesterPlan>>> futures;
    const char* tenants[3] = {"a", "b", "c"};
    for (int i = 0; i < 24; ++i) {
      futures.push_back(engine.Submit(
          tenants[i % 3], {FixedTask(1 + static_cast<size_t>(i % 5),
                                     40 + static_cast<uint64_t>(i)),
                           FixedTask(3, 70 + static_cast<uint64_t>(i))}));
    }
    engine.Drain();
    std::vector<std::string> signatures;
    std::vector<double> costs;
    for (auto& future : futures) {
      auto result = future.get();
      EXPECT_TRUE(result.ok());
      signatures.push_back(PlacementSignature(*result));
      costs.push_back(result->cost);
    }
    return std::make_pair(signatures, costs);
  };

  StreamingOptions fifo;           // fairness off: the baseline
  fifo.max_delay_seconds = 0.005;
  StreamingOptions fair = fifo;    // fairness on, default weights
  fair.fairness.enabled = true;
  StreamingOptions skewed = fair;  // tiny quantum + skewed weights:
  skewed.fairness.quantum_atomic_tasks = 1;  // maximal reordering
  skewed.fairness.weights["a"] = 7;
  skewed.max_pending_atomic_tasks = 6;  // and tiny micro-batches
  StreamingOptions threaded = fair;  // different solver parallelism
  threaded.num_threads = 2;

  const auto baseline = run(fifo);
  for (const StreamingOptions& variant : {fair, skewed, threaded}) {
    const auto other = run(variant);
    ASSERT_EQ(other.first.size(), baseline.first.size());
    for (size_t i = 0; i < baseline.first.size(); ++i) {
      EXPECT_EQ(other.first[i], baseline.first[i]) << "submission " << i;
      EXPECT_DOUBLE_EQ(other.second[i], baseline.second[i]);
    }
  }
}

TEST(FairSchedulerTest, SingleTenantFairnessMatchesFifoBatching) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());

  // With one tenant the DRR ring degenerates to the FIFO queue. Drive
  // flushing deterministically (parked engine, explicit Drain cycles):
  // every submission must land in the same flush ordinal, with the same
  // placements, whether fairness is on or off.
  auto run = [&](bool fairness_enabled) {
    StreamingOptions options = ParkedOptions();
    options.fairness.enabled = fairness_enabled;
    StreamingEngine engine(*profile, options);
    std::vector<std::future<Result<RequesterPlan>>> futures;
    for (int wave = 0; wave < 3; ++wave) {
      for (int i = 0; i < 7; ++i) {
        futures.push_back(engine.Submit(
            "solo",
            {FixedTask(3, static_cast<uint64_t>(600 + 10 * wave + i))}));
      }
      engine.Drain();  // each wave becomes exactly one micro-batch
    }
    std::vector<std::pair<uint64_t, std::string>> delivered;
    for (auto& future : futures) {
      auto result = future.get();
      EXPECT_TRUE(result.ok());
      delivered.emplace_back(result->flush_id, PlacementSignature(*result));
    }
    return delivered;
  };

  const auto fifo = run(false);
  const auto fair = run(true);
  ASSERT_EQ(fifo.size(), fair.size());
  for (size_t i = 0; i < fifo.size(); ++i) {
    EXPECT_EQ(fair[i].first, fifo[i].first) << "flush id, submission " << i;
    EXPECT_EQ(fair[i].second, fifo[i].second)
        << "placements, submission " << i;
  }
}

}  // namespace
}  // namespace slade
