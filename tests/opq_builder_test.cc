#include "solver/opq_builder.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "common/math_util.h"

namespace slade {
namespace {

TEST(OpqBuilderTest, ReproducesTable3) {
  // t = 0.95 on the Table 1 profile -> {2xb3} 0.16/3, {2xb2} 0.18/2,
  // {2xb1} 0.20/1 (paper Table 3).
  auto opq = BuildOpq(BinProfile::PaperExample(), 0.95);
  ASSERT_TRUE(opq.ok());
  ASSERT_EQ(opq->size(), 3u);
  EXPECT_EQ(opq->element(0).lcm(), 3u);
  EXPECT_NEAR(opq->element(0).unit_cost(), 0.16, 1e-12);
  EXPECT_EQ(opq->element(1).lcm(), 2u);
  EXPECT_NEAR(opq->element(1).unit_cost(), 0.18, 1e-12);
  EXPECT_EQ(opq->element(2).lcm(), 1u);
  EXPECT_NEAR(opq->element(2).unit_cost(), 0.20, 1e-12);
}

TEST(OpqBuilderTest, ReproducesTable4AndTable5) {
  // Table 4: t = 0.632 -> singletons of each bin.
  auto opq0 = BuildOpq(BinProfile::PaperExample(), 0.632);
  ASSERT_TRUE(opq0.ok());
  ASSERT_EQ(opq0->size(), 3u);
  EXPECT_NEAR(opq0->element(0).unit_cost(), 0.08, 1e-12);
  EXPECT_EQ(opq0->element(0).lcm(), 3u);
  EXPECT_NEAR(opq0->element(2).unit_cost(), 0.10, 1e-12);

  // Table 5: t = 0.86 -> only {1 x b1}.
  auto opq1 = BuildOpq(BinProfile::PaperExample(), 0.86);
  ASSERT_TRUE(opq1.ok());
  ASSERT_EQ(opq1->size(), 1u);
  EXPECT_EQ(opq1->element(0).lcm(), 1u);
  EXPECT_NEAR(opq1->element(0).unit_cost(), 0.10, 1e-12);
  Combination::Parts expected = {{1, 1}};
  EXPECT_EQ(opq1->element(0).parts(), expected);
}

TEST(OpqBuilderTest, RejectsBadThreshold) {
  EXPECT_FALSE(BuildOpq(BinProfile::PaperExample(), 0.0).ok());
  EXPECT_FALSE(BuildOpq(BinProfile::PaperExample(), 1.0).ok());
  EXPECT_FALSE(BuildOpq(BinProfile::PaperExample(), -3.0).ok());
}

TEST(OpqBuilderTest, NodeBudgetEnforced) {
  OpqBuildOptions options;
  options.node_budget = 2;
  auto opq = BuildOpq(BuildProfile(JellyModel(), 20).ValueOrDie(), 0.97,
                      options);
  EXPECT_TRUE(opq.status().IsResourceExhausted());
}

class OpqInvariantTest
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(OpqInvariantTest, DefinitionFourInvariantsHold) {
  const auto [t, m] = GetParam();
  const BinProfile profile = BuildProfile(JellyModel(), m).ValueOrDie();
  auto opq = BuildOpq(profile, t);
  ASSERT_TRUE(opq.ok());
  ASSERT_GT(opq->size(), 0u);

  const double theta = LogReduction(t);
  for (size_t i = 0; i < opq->size(); ++i) {
    const Combination& c = opq->element(i);
    // Condition (3): every element satisfies the threshold.
    EXPECT_GE(c.log_weight(), theta - 1e-9) << c.ToString();
    if (i > 0) {
      // Condition (1): LCM strictly descending.
      EXPECT_LT(c.lcm(), opq->element(i - 1).lcm());
      // Condition (2): no dominance => UC strictly ascending.
      EXPECT_GT(c.unit_cost(), opq->element(i - 1).unit_cost());
    }
  }
  // An LCM=1 element always survives (Algorithm 3's termination guarantee).
  EXPECT_EQ(opq->element(opq->size() - 1).lcm(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpqInvariantTest,
    ::testing::Combine(::testing::Values(0.87, 0.9, 0.92, 0.95, 0.97),
                       ::testing::Values(1u, 2u, 3u, 6u, 13u, 20u)));

TEST(OpqBuilderTest, PruningDoesNotChangeTheResult) {
  // Lemma 1 ablation: disabling partial-combination pruning must yield the
  // exact same Pareto frontier, only with more nodes visited.
  for (double t : {0.87, 0.95}) {
    const BinProfile profile = BuildProfile(SmicModel(), 10).ValueOrDie();
    OpqBuildOptions pruned, unpruned;
    unpruned.enable_partial_pruning = false;
    OpqBuildStats stats_pruned, stats_unpruned;
    auto a = BuildOpq(profile, t, pruned, &stats_pruned);
    auto b = BuildOpq(profile, t, unpruned, &stats_unpruned);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->element(i).lcm(), b->element(i).lcm());
      EXPECT_NEAR(a->element(i).unit_cost(), b->element(i).unit_cost(),
                  1e-12);
      EXPECT_EQ(a->element(i).parts(), b->element(i).parts());
    }
    EXPECT_LE(stats_pruned.nodes_visited, stats_unpruned.nodes_visited);
  }
}

TEST(OpqBuilderTest, FrontHasGloballyMinimalUnitCost) {
  // Lemma 2: OPQ_1 yields the lowest unit cost of any threshold-satisfying
  // combination. Cross-check against exhaustive enumeration on a small
  // profile (depth-capped brute force).
  const BinProfile profile = BinProfile::PaperExample();
  const double t = 0.95;
  const double theta = LogReduction(t);
  auto opq = BuildOpq(profile, t);
  ASSERT_TRUE(opq.ok());

  // Brute force over counts (n1, n2, n3) <= 4 each.
  double best_uc = 1e18;
  for (uint32_t n1 = 0; n1 <= 4; ++n1) {
    for (uint32_t n2 = 0; n2 <= 4; ++n2) {
      for (uint32_t n3 = 0; n3 <= 4; ++n3) {
        if (n1 + n2 + n3 == 0) continue;
        const double w = n1 * profile.bin(1).log_weight() +
                         n2 * profile.bin(2).log_weight() +
                         n3 * profile.bin(3).log_weight();
        if (w < theta - 1e-12) continue;
        const double uc = n1 * profile.bin(1).cost +
                          n2 * profile.bin(2).cost / 2.0 +
                          n3 * profile.bin(3).cost / 3.0;
        best_uc = std::min(best_uc, uc);
      }
    }
  }
  EXPECT_NEAR(opq->front().unit_cost(), best_uc, 1e-12);
}

TEST(OpqBuilderTest, SingleBinProfileDegenerates) {
  // With only b1 available, the queue is exactly {ceil(theta/w1) x b1}.
  auto profile = BinProfile::PaperExample().Truncated(1);
  auto opq = BuildOpq(*profile, 0.95);
  ASSERT_TRUE(opq.ok());
  ASSERT_EQ(opq->size(), 1u);
  Combination::Parts expected = {{1, 2}};  // 2*w(0.9)=4.6 >= 2.996
  EXPECT_EQ(opq->front().parts(), expected);
}

TEST(OpqBuilderTest, StatsAreRecorded) {
  OpqBuildStats stats;
  auto opq = BuildOpq(BinProfile::PaperExample(), 0.95, {}, &stats);
  ASSERT_TRUE(opq.ok());
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.insertions, 0u);
}

}  // namespace
}  // namespace slade
