// JSON writer/parser round-trip tests. The load-bearing property is that
// JsonWriter::Value(double) emits enough digits to round-trip exactly
// (costs and latencies in API responses must not be silently rounded)
// while still printing short values readably.

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/json.h"

namespace slade {
namespace {

std::string WriteDouble(double value) {
  JsonWriter w;
  w.Value(value);
  return std::move(w).Take();
}

TEST(JsonWriterTest, DoublesRoundTripExactly) {
  const std::vector<double> values = {
      0.0,
      0.1,                                    // not representable exactly
      1.0 / 3.0,                              // needs 17 digits
      2.0 / 3.0,
      0.123456789012345678,
      1e-308,                                 // near-denormal range
      1.7976931348623157e308,                 // max double
      std::numeric_limits<double>::epsilon(),
      123456.789012345678,
      -9876.54321098765432,
      3.141592653589793,
  };
  for (const double value : values) {
    const std::string text = WriteDouble(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value)
        << "lossy serialization: " << text;
    // And the repo's own parser agrees.
    const Result<JsonValue> parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->number, value) << text;
  }
}

TEST(JsonWriterTest, ShortDoublesStayReadable) {
  // Shortest-round-trip: values exactly representable at low precision
  // must not be padded out to 17 digits.
  EXPECT_EQ(WriteDouble(0.5), "0.5");
  EXPECT_EQ(WriteDouble(2.0), "2");
  EXPECT_EQ(WriteDouble(-1.25), "-1.25");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(WriteDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(WriteDouble(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(WriteDouble(std::nan("")), "null");
}

TEST(JsonWriterTest, NestedDocumentParsesBack) {
  JsonWriter w;
  w.BeginObject();
  w.Key("cost");
  w.Value(1.0 / 3.0);
  w.Key("tenants");
  w.BeginArray();
  w.Value("a\"b");  // escaping exercised
  w.Value(uint64_t{42});
  w.EndArray();
  w.EndObject();
  const std::string doc = std::move(w).Take();

  const Result<JsonValue> parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << doc;
  const JsonValue* cost = parsed->Find("cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->number, 1.0 / 3.0);
  const JsonValue* tenants = parsed->Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->items.size(), 2u);
  EXPECT_EQ(tenants->items[0].string, "a\"b");
  EXPECT_EQ(tenants->items[1].number, 42.0);
}

}  // namespace
}  // namespace slade
