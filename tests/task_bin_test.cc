#include "binmodel/task_bin.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace slade {
namespace {

TEST(TaskBinTest, DerivedQuantities) {
  TaskBin b{3, 0.8, 0.24};
  EXPECT_NEAR(b.log_weight(), LogReduction(0.8), 1e-15);
  EXPECT_DOUBLE_EQ(b.cost_per_task(), 0.08);
  EXPECT_NE(b.ToString().find("l=3"), std::string::npos);
}

TEST(BinProfileTest, PaperExampleMatchesTable1) {
  const BinProfile p = BinProfile::PaperExample();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.bin(1).confidence, 0.9);
  EXPECT_DOUBLE_EQ(p.bin(2).confidence, 0.85);
  EXPECT_DOUBLE_EQ(p.bin(3).confidence, 0.8);
  EXPECT_DOUBLE_EQ(p.bin(1).cost, 0.10);
  EXPECT_DOUBLE_EQ(p.bin(2).cost, 0.18);
  EXPECT_DOUBLE_EQ(p.bin(3).cost, 0.24);
  EXPECT_DOUBLE_EQ(p.max_confidence(), 0.9);
  EXPECT_NEAR(p.max_log_weight(), LogReduction(0.9), 1e-15);
}

TEST(BinProfileTest, RejectsGappedCardinalities) {
  std::vector<TaskBin> bins = {{1, 0.9, 0.1}, {3, 0.8, 0.2}};
  EXPECT_TRUE(BinProfile::Create(bins).status().IsInvalidArgument());
}

TEST(BinProfileTest, RejectsBadConfidence) {
  EXPECT_FALSE(BinProfile::Create({{1, 0.0, 0.1}}).ok());
  EXPECT_FALSE(BinProfile::Create({{1, 1.0, 0.1}}).ok());
  EXPECT_FALSE(BinProfile::Create({{1, -0.1, 0.1}}).ok());
}

TEST(BinProfileTest, RejectsBadCost) {
  EXPECT_FALSE(BinProfile::Create({{1, 0.9, 0.0}}).ok());
  EXPECT_FALSE(BinProfile::Create({{1, 0.9, -1.0}}).ok());
}

TEST(BinProfileTest, RejectsEmpty) {
  EXPECT_TRUE(BinProfile::Create({}).status().IsInvalidArgument());
}

TEST(BinProfileTest, TruncationKeepsPrefix) {
  const BinProfile p = BinProfile::PaperExample();
  auto t2 = p.Truncated(2);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->size(), 2u);
  EXPECT_DOUBLE_EQ(t2->bin(2).cost, 0.18);
  EXPECT_DOUBLE_EQ(t2->max_confidence(), 0.9);
}

TEST(BinProfileTest, TruncationBoundsChecked) {
  const BinProfile p = BinProfile::PaperExample();
  EXPECT_TRUE(p.Truncated(0).status().IsOutOfRange());
  EXPECT_TRUE(p.Truncated(4).status().IsOutOfRange());
  EXPECT_TRUE(p.Truncated(3).ok());
}

TEST(BinProfileTest, ToStringListsEveryBin) {
  const BinProfile p = BinProfile::PaperExample();
  const std::string s = p.ToString();
  EXPECT_NE(s.find("m=3"), std::string::npos);
  EXPECT_NE(s.find("l= 1"), std::string::npos);
  EXPECT_NE(s.find("l= 3"), std::string::npos);
}

}  // namespace
}  // namespace slade
