// Crash-injection property tests for the durable serving path.
//
// The property under test: an acknowledged submission is never lost and
// a submission id is never billed twice, at every kill point of the
// submit path --
//
//   (1) before the admit record      -> the submission never existed
//   (2) admit durable, not completed -> recovered as pending, solved once
//   (3) outcome buffered, not synced -> still pending (the ack was never
//                                       sent), solved once
//   (4) outcome durable, pre-ack     -> recovered as completed, a retry
//                                       replays it without re-billing
//
// "Crashes" are deterministic: the live WAL directory is snapshotted
// (byte-for-byte file copies) at the kill point and recovery runs on the
// snapshot, exactly as if the process had been SIGKILLed there -- plus
// torn-write and bit-flip variants of the same images. The real
// kill -9 / restart path is covered end to end by the CI crash-recovery
// smoke (.github/workflows).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "binmodel/profile_model.h"
#include "durability/journal.h"
#include "engine/streaming_engine.h"

namespace slade {
namespace {

namespace fs = std::filesystem;

CrowdsourcingTask MakeTask(std::vector<double> thresholds) {
  auto task = CrowdsourcingTask::FromThresholds(std::move(thresholds));
  EXPECT_TRUE(task.ok());
  return std::move(task).ValueOrDie();
}

SubmissionOutcome MakeOutcome(double cost) {
  SubmissionOutcome outcome;
  outcome.cost = cost;
  outcome.bins_posted = 2;
  outcome.flush_id = 1;
  outcome.num_tasks = 1;
  outcome.num_atomic_tasks = 1;
  outcome.latency_seconds = 0.1;
  return outcome;
}

class DurabilityRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            (std::string("durability_recovery_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  JournalOptions Options(const std::string& dir) {
    JournalOptions options;
    options.wal.dir = (root_ / dir).string();
    options.wal.commit_wait_micros = 0;
    return options;
  }

  /// Snapshots the live WAL directory: what a kill -9 at this instant
  /// would leave on disk (modulo the page cache, which the WAL's fsync
  /// discipline is exactly about -- buffered-not-synced records may be
  /// in these files, synced records must be).
  std::string TakeCrashImage(const std::string& live_dir,
                             const std::string& image_name) {
    const fs::path source = root_ / live_dir;
    const fs::path image = root_ / image_name;
    fs::create_directories(image);
    for (const auto& entry : fs::directory_iterator(source)) {
      fs::copy_file(entry.path(), image / entry.path().filename());
    }
    return image.string();
  }

  /// Cuts the last `bytes` bytes off the newest segment in `dir`.
  static void TearTail(const std::string& dir, uint64_t bytes) {
    const auto paths = ListWalSegmentPaths(dir);
    ASSERT_FALSE(paths.empty());
    const uint64_t size = fs::file_size(paths.back());
    ASSERT_GE(size, bytes);
    fs::resize_file(paths.back(), size - bytes);
  }

  /// Flips one bit `back_offset` bytes before the end of the newest
  /// segment in `dir`.
  static void FlipBitFromEnd(const std::string& dir, uint64_t back_offset) {
    const auto paths = ListWalSegmentPaths(dir);
    ASSERT_FALSE(paths.empty());
    const uint64_t size = fs::file_size(paths.back());
    ASSERT_GT(size, back_offset);
    std::fstream file(paths.back(),
                      std::ios::in | std::ios::out | std::ios::binary);
    const auto pos = static_cast<std::streamoff>(size - 1 - back_offset);
    file.seekg(pos);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(pos);
    file.write(&byte, 1);
  }

  fs::path root_;
};

TEST_F(DurabilityRecoveryTest, KillBeforeAppendLeavesNoTrace) {
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());
  const std::string image = TakeCrashImage("live", "image");
  JournalOptions recover_options = Options("live");
  recover_options.wal.dir = image;
  auto recovered = SubmissionJournal::Open(recover_options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->pending.empty());
  EXPECT_EQ(recovered->journal->stats().recovery.outcomes_recovered, 0u);
}

TEST_F(DurabilityRecoveryTest, KillAfterAdmitRecoversThePendingSubmission) {
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->journal
                  ->RecordAdmit("sub-1", "alice", {MakeTask({0.9, 0.8})})
                  .ok());
  const std::string image = TakeCrashImage("live", "image");

  JournalOptions recover_options;
  recover_options.wal.dir = image;
  recover_options.wal.commit_wait_micros = 0;
  auto recovered = SubmissionJournal::Open(recover_options);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->pending.size(), 1u);
  EXPECT_EQ(recovered->pending[0].submission_id, "sub-1");
  EXPECT_EQ(recovered->pending[0].requester, "alice");
  ASSERT_EQ(recovered->pending[0].tasks.size(), 1u);
  EXPECT_EQ(recovered->pending[0].tasks[0].thresholds(),
            std::vector<double>({0.9, 0.8}));
}

TEST_F(DurabilityRecoveryTest, KillAfterBufferedCompleteStaysPending) {
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->journal
                  ->RecordAdmit("sub-1", "alice", {MakeTask({0.9})})
                  .ok());
  // Outcome recorded but the durability barrier never ran: the crash
  // happens before the client could have been acked.
  ASSERT_TRUE(
      opened->journal->RecordComplete("sub-1", MakeOutcome(1.0)).ok());
  const std::string image = TakeCrashImage("live", "image");

  JournalOptions recover_options;
  recover_options.wal.dir = image;
  recover_options.wal.commit_wait_micros = 0;
  auto recovered = SubmissionJournal::Open(recover_options);
  ASSERT_TRUE(recovered.ok());
  // The complete record may or may not have reached the file (it was
  // buffered); either way no ack went out, so both "pending again" and
  // "completed" are safe. What must NOT happen: the id vanishing.
  SubmissionOutcome outcome;
  const bool completed =
      recovered->journal->LookupCompleted("sub-1", &outcome);
  if (!completed) {
    ASSERT_EQ(recovered->pending.size(), 1u);
    EXPECT_EQ(recovered->pending[0].submission_id, "sub-1");
  } else {
    EXPECT_TRUE(recovered->pending.empty());
  }
}

TEST_F(DurabilityRecoveryTest, KillAfterSyncNeverLosesTheAckedOutcome) {
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->journal
                  ->RecordAdmit("sub-1", "alice", {MakeTask({0.9})})
                  .ok());
  ASSERT_TRUE(
      opened->journal->RecordComplete("sub-1", MakeOutcome(2.5)).ok());
  ASSERT_TRUE(opened->journal->SyncOutcomes().ok());
  // The ack is on the wire; kill here.
  const std::string image = TakeCrashImage("live", "image");

  JournalOptions recover_options;
  recover_options.wal.dir = image;
  recover_options.wal.commit_wait_micros = 0;
  auto recovered = SubmissionJournal::Open(recover_options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->pending.empty());
  SubmissionOutcome outcome;
  ASSERT_TRUE(recovered->journal->LookupCompleted("sub-1", &outcome));
  EXPECT_DOUBLE_EQ(outcome.cost, 2.5);  // a duplicate replays, no re-bill
}

TEST_F(DurabilityRecoveryTest, TornWriteDegradesToThePreviousSafeState) {
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->journal
                  ->RecordAdmit("sub-1", "alice", {MakeTask({0.9})})
                  .ok());
  ASSERT_TRUE(
      opened->journal->RecordComplete("sub-1", MakeOutcome(1.0)).ok());
  ASSERT_TRUE(opened->journal->SyncOutcomes().ok());
  const std::string image = TakeCrashImage("live", "image");
  TearTail(image, 5);  // the disk tore the tail of the complete record

  JournalOptions recover_options;
  recover_options.wal.dir = image;
  recover_options.wal.commit_wait_micros = 0;
  auto recovered = SubmissionJournal::Open(recover_options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const JournalStats stats = recovered->journal->stats();
  EXPECT_TRUE(stats.recovery.truncated);
  // The tear ate the outcome, so the submission rolls back to pending --
  // the consistent state one step earlier. It will be solved (and billed)
  // exactly once after re-admission.
  ASSERT_EQ(recovered->pending.size(), 1u);
  EXPECT_EQ(recovered->pending[0].submission_id, "sub-1");
  SubmissionOutcome outcome;
  EXPECT_FALSE(recovered->journal->LookupCompleted("sub-1", &outcome));
}

TEST_F(DurabilityRecoveryTest, BitFlipNeverCrashesRecovery) {
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->journal
                  ->RecordAdmit("sub-1", "alice", {MakeTask({0.9})})
                  .ok());
  ASSERT_TRUE(
      opened->journal->RecordComplete("sub-1", MakeOutcome(1.0)).ok());
  ASSERT_TRUE(opened->journal->SyncOutcomes().ok());

  // Flip a bit at several depths from the tail; every image must recover
  // without crashing, flag the corruption, and keep a consistent prefix.
  for (const uint64_t back : {1ull, 10ull, 25ull}) {
    const std::string image =
        TakeCrashImage("live", "image-" + std::to_string(back));
    FlipBitFromEnd(image, back);
    JournalOptions recover_options;
    recover_options.wal.dir = image;
    recover_options.wal.commit_wait_micros = 0;
    auto recovered = SubmissionJournal::Open(recover_options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const JournalStats stats = recovered->journal->stats();
    EXPECT_TRUE(stats.recovery.truncated);
    // Consistency: the id is either pending or completed, never both,
    // never silently gone while an earlier record mentions it.
    SubmissionOutcome outcome;
    const bool completed =
        recovered->journal->LookupCompleted("sub-1", &outcome);
    const bool pending =
        !recovered->pending.empty() &&
        recovered->pending[0].submission_id == "sub-1";
    EXPECT_NE(completed, pending)
        << "flip at -" << back << ": completed=" << completed
        << " pending=" << pending;
  }
}

// ---- Engine-level properties (the full Submit path over the journal) --

StreamingOptions EngineOptionsWith(DurabilityHooks* hooks) {
  StreamingOptions options;
  options.max_pending_submissions = 1;  // flush every admission
  options.num_threads = 2;
  options.durability = hooks;
  return options;
}

TEST_F(DurabilityRecoveryTest, AckedSubmissionSurvivesACrashImage) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());

  std::string submission_id;
  double acked_cost = 0.0;
  {
    StreamingEngine engine(*profile,
                           EngineOptionsWith(opened->journal.get()));
    auto future =
        engine.Submit("alice", {MakeTask({0.9, 0.8})}, "acked-1");
    auto plan = future.get();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    // future.get() returned: the client is considered acked from here.
    submission_id = plan->submission_id;
    acked_cost = plan->cost;
    EXPECT_EQ(submission_id, "acked-1");
    EXPECT_FALSE(plan->duplicate);

    const std::string image = TakeCrashImage("live", "image");
    JournalOptions recover_options;
    recover_options.wal.dir = image;
    recover_options.wal.commit_wait_micros = 0;
    auto recovered = SubmissionJournal::Open(recover_options);
    ASSERT_TRUE(recovered.ok());
    SubmissionOutcome outcome;
    ASSERT_TRUE(recovered->journal->LookupCompleted("acked-1", &outcome))
        << "acked submission lost by the crash image";
    EXPECT_DOUBLE_EQ(outcome.cost, acked_cost);
    EXPECT_TRUE(recovered->pending.empty());
  }
}

TEST_F(DurabilityRecoveryTest, EightThreadsResubmittingOneIdBillOnce) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  auto opened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(opened.ok());
  StreamingEngine engine(*profile,
                         EngineOptionsWith(opened->journal.get()));

  constexpr int kThreads = 8;
  std::atomic<int> originals{0};
  std::atomic<int> duplicates{0};
  std::vector<double> costs(kThreads, -1.0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (;;) {
        auto plan =
            engine.Submit("alice", {MakeTask({0.9, 0.85})}, "contended")
                .get();
        if (plan.ok()) {
          costs[t] = plan->cost;
          (plan->duplicate ? duplicates : originals).fetch_add(1);
          return;
        }
        // In-flight duplicate: the first attempt owns the id; retry
        // until its outcome is published.
        EXPECT_TRUE(plan.status().IsAlreadyExists())
            << plan.status().ToString();
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  engine.Drain();

  // Exactly one thread solved and was billed; all others replayed its
  // outcome at its exact cost.
  EXPECT_EQ(originals.load(), 1);
  EXPECT_EQ(duplicates.load(), kThreads - 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(costs[t], costs[0]) << "thread " << t;
  }
  const StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.submissions, 1u);  // one admission total
  EXPECT_EQ(stats.duplicate_hits, uint64_t{kThreads - 1});
  EXPECT_EQ(opened->journal->stats().completes, 1u);  // billed once
}

TEST_F(DurabilityRecoveryTest, RecoveredPendingIsReadmittedAndBilledOnce) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  {
    // Generation 1 admits two submissions and "crashes" before solving.
    auto opened = SubmissionJournal::Open(Options("live"));
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened->journal
                    ->RecordAdmit("lost-1", "alice", {MakeTask({0.9})})
                    .ok());
    ASSERT_TRUE(opened->journal
                    ->RecordAdmit("lost-2", "bob", {MakeTask({0.8, 0.7})})
                    .ok());
  }

  // Generation 2: the serve startup protocol.
  auto reopened = SubmissionJournal::Open(Options("live"));
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->pending.size(), 2u);
  StreamingEngine engine(*profile,
                         EngineOptionsWith(reopened->journal.get()));
  EXPECT_EQ(engine.ReplayRecovered(std::move(reopened->pending)), 2u);
  ASSERT_TRUE(reopened->journal->CommitRecovery().ok());
  engine.Drain();

  // Both recovered submissions were solved exactly once...
  EXPECT_EQ(reopened->journal->stats().completes, 2u);
  SubmissionOutcome outcome;
  ASSERT_TRUE(reopened->journal->LookupCompleted("lost-1", &outcome));
  ASSERT_TRUE(reopened->journal->LookupCompleted("lost-2", &outcome));
  // ...and a client retrying its lost request gets the original outcome.
  auto retry = engine.Submit("alice", {MakeTask({0.9})}, "lost-1").get();
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->duplicate);
}

}  // namespace
}  // namespace slade
