// Exhaustive malformed-input battery for the bounded HTTP request parser.
//
// The parser fronts a network-facing server, so every test here is an
// attack rehearsal: truncated lines, oversized everything, bytes split
// across arbitrary read boundaries, pipelining, smuggling vectors
// (obs-fold, conflicting Content-Length, Transfer-Encoding). The
// invariant under test is always the same -- a definite clean outcome
// (kComplete or kError with the right status code), never a crash, hang,
// or unbounded buffer. The suite rides the ASan/UBSan and TSan CI legs.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/http_parser.h"

namespace slade {
namespace {

/// Feeds the whole input in one call and returns the resulting state.
HttpParseState FeedAll(HttpRequestParser* parser, const std::string& input) {
  return parser->Feed(input.data(), input.size());
}

/// Feeds the input byte by byte -- the harshest read-boundary split.
HttpParseState FeedBytewise(HttpRequestParser* parser,
                            const std::string& input) {
  HttpParseState state = parser->state();
  for (const char c : input) {
    state = parser->Feed(&c, 1);
  }
  return state;
}

const std::string kSimpleGet = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";

TEST(HttpParserTest, ParsesASimpleGet) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, kSimpleGet), HttpParseState::kComplete);
  const HttpRequest request = parser.ConsumeRequest(nullptr);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  ASSERT_EQ(request.headers.size(), 1u);
  EXPECT_EQ(request.headers[0].first, "host");  // lower-cased
  EXPECT_EQ(request.headers[0].second, "x");
  EXPECT_TRUE(request.body.empty());
  EXPECT_TRUE(request.keep_alive());
}

TEST(HttpParserTest, ParsesAPostWithBody) {
  HttpRequestParser parser;
  const std::string input =
      "POST /v1/submit HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  ASSERT_EQ(FeedAll(&parser, input), HttpParseState::kComplete);
  const HttpRequest request = parser.ConsumeRequest(nullptr);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "hello world");
}

TEST(HttpParserTest, EveryReadBoundarySplitYieldsTheSameRequest) {
  const std::string input =
      "POST /v1/submit HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nabcde";
  // Split the byte stream at every possible boundary into two Feed calls,
  // plus the all-at-once and byte-by-byte extremes.
  for (size_t split = 0; split <= input.size(); ++split) {
    HttpRequestParser parser;
    parser.Feed(input.data(), split);
    ASSERT_EQ(parser.Feed(input.data() + split, input.size() - split),
              HttpParseState::kComplete)
        << "split at " << split;
    const HttpRequest request = parser.ConsumeRequest(nullptr);
    EXPECT_EQ(request.body, "abcde") << "split at " << split;
  }
  HttpRequestParser parser;
  ASSERT_EQ(FeedBytewise(&parser, input), HttpParseState::kComplete);
  EXPECT_EQ(parser.ConsumeRequest(nullptr).body, "abcde");
}

TEST(HttpParserTest, PipelinedRequestsDrainOneAtATime) {
  HttpRequestParser parser;
  const std::string two = kSimpleGet + kSimpleGet;
  ASSERT_EQ(FeedAll(&parser, two), HttpParseState::kComplete);
  HttpParseState next = HttpParseState::kNeedMore;
  const HttpRequest first = parser.ConsumeRequest(&next);
  EXPECT_EQ(first.target, "/healthz");
  // The second request was already buffered: parsing resumed immediately.
  ASSERT_EQ(next, HttpParseState::kComplete);
  const HttpRequest second = parser.ConsumeRequest(&next);
  EXPECT_EQ(second.target, "/healthz");
  EXPECT_EQ(next, HttpParseState::kNeedMore);
}

TEST(HttpParserTest, TruncatedInputsStayInNeedMore) {
  // Every strict prefix of a valid request must report kNeedMore -- no
  // premature completion and no error on a half-arrived request.
  for (size_t length = 0; length < kSimpleGet.size(); ++length) {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(&parser, kSimpleGet.substr(0, length)),
              HttpParseState::kNeedMore)
        << "prefix length " << length;
  }
}

TEST(HttpParserTest, BareLfLineEndingIsRejected) {
  HttpRequestParser parser;
  EXPECT_EQ(FeedAll(&parser, "GET / HTTP/1.1\nHost: x\n\n"),
            HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 400);
}

TEST(HttpParserTest, MalformedRequestLinesAreRejected) {
  const std::vector<std::string> bad = {
      "\r\n",                          // empty request line
      "GET\r\n",                       // no target
      "GET /\r\n",                     // no version
      "GET / HTTP/2.0\r\n",            // unsupported version (505 below)
      "G@T / HTTP/1.1\r\n",            // non-token method byte
      " GET / HTTP/1.1\r\n",           // leading space
      "GET /a\tb HTTP/1.1\r\n",        // would need two targets
  };
  for (const std::string& line : bad) {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(&parser, line), HttpParseState::kError) << line;
    EXPECT_TRUE(parser.error_code() == 400 || parser.error_code() == 505)
        << line << " -> " << parser.error_code();
  }
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  HttpRequestParser parser;
  EXPECT_EQ(FeedAll(&parser, "GET / HTTP/2.0\r\n"), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 505);
}

TEST(HttpParserTest, OversizedRequestLineFailsEvenBeforeTermination) {
  HttpParserLimits limits;
  limits.max_request_line_bytes = 64;
  HttpRequestParser parser(limits);
  // No CRLF ever arrives; the cap must still trip on the partial line.
  const std::string long_target = "GET /" + std::string(200, 'a');
  EXPECT_EQ(FeedAll(&parser, long_target), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 431);
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpParserLimits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string input = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 16; ++i) {
    input += "X-Filler-" + std::to_string(i) + ": " +
             std::string(32, 'v') + "\r\n";
  }
  input += "\r\n";
  EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 431);
}

TEST(HttpParserTest, TooManyHeadersIs431) {
  HttpParserLimits limits;
  limits.max_headers = 4;
  HttpRequestParser parser(limits);
  std::string input = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    input += "H" + std::to_string(i) + ": v\r\n";
  }
  input += "\r\n";
  EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413BeforeTheBodyArrives) {
  HttpParserLimits limits;
  limits.max_body_bytes = 100;
  HttpRequestParser parser(limits);
  // The 413 must fire on the Content-Length declaration alone -- the
  // parser must not wait for (or buffer) a single body byte.
  const std::string head =
      "POST /v1/submit HTTP/1.1\r\nContent-Length: 101\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, head), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 413);
}

TEST(HttpParserTest, MalformedContentLengthIs400) {
  const std::vector<std::string> bad = {
      "Content-Length: ten\r\n",
      "Content-Length: -5\r\n",
      "Content-Length: 1e3\r\n",
      "Content-Length: 9999999999999999999999\r\n",  // > 18 digits
      "Content-Length: \r\n",
  };
  for (const std::string& header : bad) {
    HttpRequestParser parser;
    const std::string input = "POST / HTTP/1.1\r\n" + header + "\r\n";
    EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kError) << header;
    EXPECT_EQ(parser.error_code(), 400) << header;
  }
}

TEST(HttpParserTest, ConflictingContentLengthsAreRejected) {
  // Duplicate Content-Length with different values is a classic request
  // smuggling vector.
  HttpRequestParser parser;
  const std::string input =
      "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 400);
}

TEST(HttpParserTest, AgreeingDuplicateContentLengthsAreAccepted) {
  HttpRequestParser parser;
  const std::string input =
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
  EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kComplete);
  EXPECT_EQ(parser.ConsumeRequest(nullptr).body, "ok");
}

TEST(HttpParserTest, TransferEncodingIs501) {
  HttpRequestParser parser;
  const std::string input =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 501);
}

TEST(HttpParserTest, ObsoleteLineFoldingIsRejected) {
  HttpRequestParser parser;
  const std::string input =
      "GET / HTTP/1.1\r\nHost: a\r\n folded-continuation\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 400);
}

TEST(HttpParserTest, ControlBytesInHeaderValuesAreRejected) {
  HttpRequestParser parser;
  const std::string input = std::string("GET / HTTP/1.1\r\nHost: a") + '\x01' +
                            "b\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, input), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 400);
}

TEST(HttpParserTest, HeaderWithoutColonIsRejected) {
  HttpRequestParser parser;
  EXPECT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 400);
}

TEST(HttpParserTest, ErrorStateIsSticky) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "bad\r\n"), HttpParseState::kError);
  // More bytes -- even a whole valid request -- cannot resurrect it.
  EXPECT_EQ(FeedAll(&parser, kSimpleGet), HttpParseState::kError);
  EXPECT_EQ(parser.error_code(), 400);
}

TEST(HttpParserTest, ResetReturnsToPristine) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "bad\r\n"), HttpParseState::kError);
  parser.Reset();
  EXPECT_EQ(parser.state(), HttpParseState::kNeedMore);
  ASSERT_EQ(FeedAll(&parser, kSimpleGet), HttpParseState::kComplete);
  EXPECT_EQ(parser.ConsumeRequest(nullptr).target, "/healthz");
}

TEST(HttpParserTest, KeepAliveSemantics) {
  struct Case {
    std::string input;
    bool keep_alive;
  };
  const std::vector<Case> cases = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : cases) {
    HttpRequestParser parser;
    ASSERT_EQ(FeedAll(&parser, c.input), HttpParseState::kComplete) << c.input;
    EXPECT_EQ(parser.ConsumeRequest(nullptr).keep_alive(), c.keep_alive)
        << c.input;
  }
}

TEST(HttpParserTest, ConsumeKeepsMemoryBoundedAcrossManyRequests) {
  // A keep-alive connection serving thousands of requests must not grow
  // the parser's buffer: ConsumeRequest drops consumed bytes.
  HttpRequestParser parser;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(FeedAll(&parser, kSimpleGet), HttpParseState::kComplete);
    const HttpRequest request = parser.ConsumeRequest(nullptr);
    ASSERT_EQ(request.target, "/healthz");
    ASSERT_EQ(parser.state(), HttpParseState::kNeedMore);
  }
}

TEST(HttpParserTest, GarbageBytesNeverCrash) {
  // A deterministic pseudo-random byte spray; the only requirement is a
  // clean terminal state (error or still-waiting), never a crash.
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 200; ++round) {
    HttpRequestParser parser;
    std::string garbage;
    for (int i = 0; i < 512; ++i) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      garbage.push_back(static_cast<char>(rng & 0xff));
    }
    const HttpParseState state = FeedBytewise(&parser, garbage);
    EXPECT_TRUE(state == HttpParseState::kError ||
                state == HttpParseState::kNeedMore ||
                state == HttpParseState::kComplete);
  }
}

TEST(HttpParserTest, ZeroLengthBodyCompletesImmediately) {
  HttpRequestParser parser;
  const std::string input = "POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  ASSERT_EQ(FeedAll(&parser, input), HttpParseState::kComplete);
  EXPECT_TRUE(parser.ConsumeRequest(nullptr).body.empty());
}

}  // namespace
}  // namespace slade
