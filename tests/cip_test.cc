#include "solver/cip.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace slade {
namespace {

CipColumn MakeColumn(uint32_t cardinality, std::vector<uint32_t> rows,
                     double cost, double weight) {
  CipColumn col;
  col.cardinality = cardinality;
  col.rows = std::move(rows);
  col.cost = cost;
  col.weight = weight;
  return col;
}

TEST(CipTest, SolvesTrivialSingleRow) {
  CipInstance inst;
  inst.demand = {2.0};
  inst.columns = {MakeColumn(1, {0}, 1.0, 1.5)};
  auto sol = SolveCip(inst, {});
  ASSERT_TRUE(sol.ok());
  // Needs ceil(2.0 / 1.5) = 2 copies.
  EXPECT_EQ(sol->y[0], 2u);
  EXPECT_NEAR(sol->cost, 2.0, 1e-12);
  EXPECT_NEAR(sol->lp_objective, 2.0 / 1.5, 1e-6);
}

TEST(CipTest, PicksCheaperCoveringColumn) {
  CipInstance inst;
  inst.demand = {1.0, 1.0};
  // Column A covers both rows for 1.2; singletons cost 1.0 each.
  inst.columns = {MakeColumn(2, {0, 1}, 1.2, 1.0),
                  MakeColumn(1, {0}, 1.0, 1.0),
                  MakeColumn(1, {1}, 1.0, 1.0)};
  auto sol = SolveCip(inst, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->cost, 1.2, 1e-12);
  EXPECT_EQ(sol->y[0], 1u);
}

TEST(CipTest, SolutionAlwaysCoversDemand) {
  CipInstance inst;
  inst.demand = {2.3, 1.1, 3.7};
  inst.columns = {MakeColumn(2, {0, 1}, 0.5, 0.9),
                  MakeColumn(2, {1, 2}, 0.7, 1.1),
                  MakeColumn(1, {0}, 0.3, 1.3),
                  MakeColumn(1, {2}, 0.4, 1.3),
                  MakeColumn(3, {0, 1, 2}, 0.9, 0.8)};
  CipSolveOptions options;
  options.rounding_rounds = 3;
  for (uint64_t seed : {1u, 7u, 42u}) {
    options.seed = seed;
    auto sol = SolveCip(inst, options);
    ASSERT_TRUE(sol.ok());
    std::vector<double> got(inst.demand.size(), 0.0);
    for (size_t j = 0; j < inst.columns.size(); ++j) {
      for (uint32_t row : inst.columns[j].rows) {
        got[row] += inst.columns[j].weight * static_cast<double>(sol->y[j]);
      }
    }
    for (size_t i = 0; i < inst.demand.size(); ++i) {
      EXPECT_GE(got[i], inst.demand[i] - kRelEps)
          << "row " << i << " seed " << seed;
    }
    // Integer cost is bounded below by the LP relaxation.
    EXPECT_GE(sol->cost, sol->lp_objective - 1e-9);
  }
}

TEST(CipTest, DeterministicForFixedSeed) {
  CipInstance inst;
  inst.demand = {2.0, 2.0};
  inst.columns = {MakeColumn(2, {0, 1}, 1.0, 0.7),
                  MakeColumn(1, {0}, 0.6, 1.1),
                  MakeColumn(1, {1}, 0.6, 1.1)};
  CipSolveOptions options;
  options.seed = 99;
  auto a = SolveCip(inst, options);
  auto b = SolveCip(inst, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->y, b->y);
  EXPECT_EQ(a->cost, b->cost);
}

TEST(CipTest, UncoveredRowIsInfeasible) {
  CipInstance inst;
  inst.demand = {1.0, 1.0};
  inst.columns = {MakeColumn(1, {0}, 1.0, 1.0)};
  EXPECT_TRUE(SolveCip(inst, {}).status().IsInfeasible());
}

TEST(CipTest, RejectsMalformedColumns) {
  CipInstance empty;
  EXPECT_TRUE(SolveCip(empty, {}).status().IsInvalidArgument());

  CipInstance bad_weight;
  bad_weight.demand = {1.0};
  bad_weight.columns = {MakeColumn(1, {0}, 1.0, 0.0)};
  EXPECT_TRUE(SolveCip(bad_weight, {}).status().IsInvalidArgument());

  CipInstance bad_row;
  bad_row.demand = {1.0};
  bad_row.columns = {MakeColumn(1, {5}, 1.0, 1.0)};
  EXPECT_TRUE(SolveCip(bad_row, {}).status().IsOutOfRange());
}

TEST(CipTest, MoreRoundingRoundsNeverHurt) {
  // With more rounds we keep the cheapest, so cost is non-increasing in
  // expectation; check the deterministic property cost(5) <= cost(1) under
  // the same seed (round 1 is replayed identically as the first of 5).
  CipInstance inst;
  inst.demand = {1.9, 2.8, 0.9, 3.3};
  inst.columns = {MakeColumn(2, {0, 1}, 0.5, 0.8),
                  MakeColumn(2, {2, 3}, 0.5, 0.8),
                  MakeColumn(1, {0}, 0.3, 1.2),
                  MakeColumn(1, {1}, 0.3, 1.2),
                  MakeColumn(1, {2}, 0.3, 1.2),
                  MakeColumn(1, {3}, 0.3, 1.2),
                  MakeColumn(4, {0, 1, 2, 3}, 0.8, 0.6)};
  CipSolveOptions one, five;
  one.rounding_rounds = 1;
  five.rounding_rounds = 5;
  auto a = SolveCip(inst, one);
  auto b = SolveCip(inst, five);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->cost, a->cost + 1e-12);
}

}  // namespace
}  // namespace slade
