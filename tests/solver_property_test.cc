// Cross-solver property tests on randomized instances: every solver must
// return feasible plans, never beat the exact optimum, and stay within its
// proven approximation envelope.

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "common/random.h"
#include "solver/exact_solver.h"
#include "solver/opq_builder.h"
#include "solver/plan_validator.h"
#include "solver/solver.h"

namespace slade {
namespace {

// Deterministic random profile: m bins with decreasing confidence and
// sublinearly growing cost.
BinProfile RandomProfile(uint32_t m, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<TaskBin> bins;
  double confidence = rng.NextDouble(0.88, 0.96);
  double cost = rng.NextDouble(0.05, 0.15);
  for (uint32_t l = 1; l <= m; ++l) {
    bins.push_back({l, confidence, cost});
    confidence = std::max(0.55, confidence - rng.NextDouble(0.01, 0.05));
    cost += rng.NextDouble(0.01, 0.06);
  }
  return BinProfile::Create(std::move(bins)).ValueOrDie();
}

class AllSolversFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<SolverKind, uint64_t>> {};

TEST_P(AllSolversFeasibilityTest, RandomInstances) {
  const auto [kind, seed] = GetParam();
  Xoshiro256 rng(seed);
  const uint32_t m = static_cast<uint32_t>(rng.NextInt(1, 12));
  const BinProfile profile = RandomProfile(m, seed * 31 + 7);
  const size_t n = static_cast<size_t>(rng.NextInt(1, 300));

  std::vector<double> thresholds(n);
  const bool homogeneous =
      (kind == SolverKind::kOpq) || rng.NextBernoulli(0.5);
  const double common = rng.NextDouble(0.8, 0.97);
  for (auto& t : thresholds) {
    t = homogeneous ? common : rng.NextDouble(0.7, 0.97);
  }
  auto task = CrowdsourcingTask::FromThresholds(thresholds);
  ASSERT_TRUE(task.ok());

  auto solver = MakeSolver(kind);
  auto plan = solver->Solve(*task, profile);
  ASSERT_TRUE(plan.ok()) << SolverKindName(kind) << ": "
                         << plan.status().ToString();
  auto report = ValidatePlan(*plan, *task, profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible)
      << SolverKindName(kind) << " seed=" << seed << " n=" << n
      << " m=" << m << " margin=" << report->worst_log_margin;
  EXPECT_GT(report->total_cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllSolversFeasibilityTest,
    ::testing::Combine(::testing::Values(SolverKind::kGreedy,
                                         SolverKind::kOpq,
                                         SolverKind::kOpqExtended,
                                         SolverKind::kBaseline),
                       ::testing::Range<uint64_t>(1, 11)));

class ApproximationQualityTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ApproximationQualityTest, NoSolverBeatsExactAndOpqIsWithinLogN) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const BinProfile profile = RandomProfile(3, seed * 17 + 3);
  const size_t n = static_cast<size_t>(rng.NextInt(1, 4));
  const double t = rng.NextDouble(0.85, 0.96);
  auto task = CrowdsourcingTask::Homogeneous(n, t);

  ExactSmallSolver exact;
  auto exact_plan = exact.Solve(*task, profile);
  ASSERT_TRUE(exact_plan.ok()) << exact_plan.status().ToString();
  const double opt = exact_plan->TotalCost(profile);
  ASSERT_TRUE(ValidatePlan(*exact_plan, *task, profile)->feasible);

  for (SolverKind kind : {SolverKind::kGreedy, SolverKind::kOpq,
                          SolverKind::kOpqExtended, SolverKind::kBaseline}) {
    auto solver = MakeSolver(kind);
    auto plan = solver->Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    const double cost = plan->TotalCost(profile);
    EXPECT_GE(cost, opt - 1e-9)
        << SolverKindName(kind) << " beat the exact optimum (seed " << seed
        << ")";
    // Generous sanity ceiling: within 5x of optimal on these tiny
    // instances (the proven OPQ ratio is log n <= ~2.4 here; greedy and
    // baseline carry no guarantee but should stay in the same ballpark).
    EXPECT_LE(cost, 5.0 * opt + 1e-9)
        << SolverKindName(kind) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ApproximationQualityTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(SolverRegistryTest, NamesAndFactory) {
  EXPECT_STREQ(SolverKindName(SolverKind::kGreedy), "Greedy");
  EXPECT_STREQ(SolverKindName(SolverKind::kOpq), "OPQ-Based");
  EXPECT_STREQ(SolverKindName(SolverKind::kOpqExtended), "OPQ-Extended");
  EXPECT_STREQ(SolverKindName(SolverKind::kBaseline), "Baseline");
  EXPECT_STREQ(SolverKindName(SolverKind::kRelaxedDp), "Relaxed-DP");
  for (SolverKind kind : {SolverKind::kGreedy, SolverKind::kOpq,
                          SolverKind::kOpqExtended, SolverKind::kBaseline,
                          SolverKind::kRelaxedDp}) {
    auto solver = MakeSolver(kind);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->name(), SolverKindName(kind));
  }
}

TEST(SolverComparisonTest, OpqBeatsOrMatchesGreedyOnPaperWorkloads) {
  // The paper's headline effectiveness result: OPQ-Based has the lowest
  // decomposition cost. Verify on moderate Jelly/SMIC workloads.
  for (DatasetKind kind : {DatasetKind::kJelly, DatasetKind::kSmic}) {
    const BinProfile profile = BuildProfile(MakeModel(kind), 20).ValueOrDie();
    auto task = CrowdsourcingTask::Homogeneous(3000, 0.9);
    auto greedy = MakeSolver(SolverKind::kGreedy)->Solve(*task, profile);
    auto opq = MakeSolver(SolverKind::kOpq)->Solve(*task, profile);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(opq.ok());
    EXPECT_LE(opq->TotalCost(profile),
              greedy->TotalCost(profile) * 1.02 + 1e-9)
        << DatasetKindName(kind);
  }
}

}  // namespace
}  // namespace slade
