#include "io/csv_reader.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

TEST(ParseCsvTest, SimpleRowsAndTrailingNewline) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsvTest, MissingFinalNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
}

TEST(ParseCsvTest, QuotedCells) {
  auto rows = ParseCsv("\"has,comma\",\"has\"\"quote\"\n\"line\nbreak\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], "has,comma");
  EXPECT_EQ((*rows)[0][1], "has\"quote");
  EXPECT_EQ((*rows)[1][0], "line\nbreak");
}

TEST(ParseCsvTest, CrlfLineEndings) {
  auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "2");
}

TEST(ParseCsvTest, EmptyCellsPreserved) {
  auto rows = ParseCsv(",x,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ((*rows)[0].size(), 3u);
  EXPECT_EQ((*rows)[0][0], "");
  EXPECT_EQ((*rows)[0][2], "");
}

TEST(ParseCsvTest, QuotedEmptyCellMakesARow) {
  auto rows = ParseCsv("\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "");
}

TEST(ParseCsvTest, MalformedQuotingRejected) {
  EXPECT_TRUE(ParseCsv("ab\"c\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseCsv("\"unterminated").status().IsInvalidArgument());
}

TEST(ParseCsvTest, EmptyInputIsNoRows) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(ReadCsvFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadCsvFile("/no/such/file.csv").status().IsIOError());
}

TEST(ParseDoubleTest, StrictParsing) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e-3"), -0.002);
  EXPECT_TRUE(ParseDouble("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("1.5x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("abc").status().IsInvalidArgument());
}

TEST(ParseUintTest, StrictParsing) {
  EXPECT_EQ(*ParseUint("0"), 0u);
  EXPECT_EQ(*ParseUint("123456789012"), 123456789012ull);
  EXPECT_TRUE(ParseUint("-1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint("1.5").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint("").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseUint("99999999999999999999999").status().IsInvalidArgument());
}

}  // namespace
}  // namespace slade
