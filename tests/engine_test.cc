#include "engine/decomposition_engine.h"

#include <gtest/gtest.h>

#include "solver/opq_solver.h"
#include "solver/plan_validator.h"
#include "workload/workload.h"

namespace slade {
namespace {

BatchWorkload SmallHeterogeneousBatch(size_t num_tasks = 40,
                                      size_t atomic_per_task = 25) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;
  auto batch = MakeBatchWorkload(DatasetKind::kJelly, num_tasks,
                                 atomic_per_task, spec, 10,
                                 ExperimentDefaults::kSeed);
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  return std::move(batch).ValueOrDie();
}

// Plans don't expose operator==; compare the observable outcome instead:
// cost, bin counts per cardinality, and the serialized placements.
std::string PlanSignature(const DecompositionPlan& plan) {
  std::string sig;
  for (const BinPlacement& p : plan.placements()) {
    sig += std::to_string(p.cardinality) + "x" + std::to_string(p.copies) +
           ":";
    for (TaskId id : p.tasks) sig += std::to_string(id) + ";";
    sig += "|";
  }
  return sig;
}

std::string PlanSignature(const ColumnarPlan& plan) {
  return PlanSignature(plan.ToPlan());
}

TEST(DecompositionEngineTest, EmptyBatchIsRejected) {
  DecompositionEngine engine;
  auto profile = BinProfile::PaperExample();
  auto report = engine.SolveBatch({}, profile);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(DecompositionEngineTest, MergedPlanIsFeasible) {
  BatchWorkload batch = SmallHeterogeneousBatch();
  DecompositionEngine engine;
  auto report = engine.SolveBatch(batch.tasks, batch.profile);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto merged_task = ConcatenateTasks(batch.tasks);
  ASSERT_TRUE(merged_task.ok());
  ASSERT_EQ(merged_task->size(), report->num_atomic_tasks());
  auto validation = ValidatePlan(report->plan, *merged_task, batch.profile);
  ASSERT_TRUE(validation.ok()) << validation.status().ToString();
  EXPECT_TRUE(validation->feasible)
      << "worst log margin " << validation->worst_log_margin;
  EXPECT_NEAR(validation->total_cost, report->total_cost, 1e-6);
  EXPECT_EQ(report->plan.TotalBinInstances(), report->total_bins);
}

TEST(DecompositionEngineTest, DeterministicAcrossThreadCounts) {
  BatchWorkload batch = SmallHeterogeneousBatch();
  std::string reference_sig;
  double reference_cost = 0.0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    EngineOptions options;
    options.num_threads = threads;
    DecompositionEngine engine(options);
    auto report = engine.SolveBatch(batch.tasks, batch.profile);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (threads == 1) {
      reference_sig = PlanSignature(report->plan);
      reference_cost = report->total_cost;
      continue;
    }
    EXPECT_EQ(PlanSignature(report->plan), reference_sig)
        << "plan differs at " << threads << " threads";
    EXPECT_DOUBLE_EQ(report->total_cost, reference_cost);
  }
}

TEST(DecompositionEngineTest, RepeatedBatchHitsTheCache) {
  BatchWorkload batch = SmallHeterogeneousBatch();
  DecompositionEngine engine;
  auto first = engine.SolveBatch(batch.tasks, batch.profile);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->opq_cache_hits, 0u);
  EXPECT_EQ(first->opq_cache_misses, first->shards.size());

  auto second = engine.SolveBatch(batch.tasks, batch.profile);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->opq_cache_hits, second->shards.size());
  EXPECT_EQ(second->opq_cache_misses, 0u);
  EXPECT_EQ(PlanSignature(second->plan), PlanSignature(first->plan));
}

TEST(DecompositionEngineTest,
     SingleHomogeneousTaskMatchesOpqSolverCost) {
  auto profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(1000, 0.9);
  ASSERT_TRUE(task.ok());

  OpqSolver solver;
  auto direct = solver.Solve(*task, profile);
  ASSERT_TRUE(direct.ok());

  DecompositionEngine engine;
  auto report = engine.SolveBatch({*task}, profile);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->shards.size(), 1u);
  EXPECT_NEAR(report->total_cost, direct->TotalCost(profile), 1e-9);
}

TEST(DecompositionEngineTest, SequentialReferenceAgreesOnFeasibility) {
  BatchWorkload batch = SmallHeterogeneousBatch(10, 30);
  auto sequential = SolveBatchSequential(batch.tasks, batch.profile);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  auto merged_task = ConcatenateTasks(batch.tasks);
  ASSERT_TRUE(merged_task.ok());
  auto validation =
      ValidatePlan(sequential->plan, *merged_task, batch.profile);
  ASSERT_TRUE(validation.ok()) << validation.status().ToString();
  EXPECT_TRUE(validation->feasible);
  EXPECT_NEAR(validation->total_cost, sequential->total_cost, 1e-6);

  // The engine's batch-wide sharding pays the leftover padding once per
  // shard instead of once per task, so it never does meaningfully worse.
  DecompositionEngine engine;
  auto batched = engine.SolveBatch(batch.tasks, batch.profile);
  ASSERT_TRUE(batched.ok());
  EXPECT_LE(batched->total_cost, sequential->total_cost * 1.01);
}

TEST(DecompositionEngineTest, IsolatedModeMatchesSequentialReference) {
  // kIsolated shards each input task by its own Algorithm 4 partition, so
  // the merged plan must equal the sequential per-task reference loop
  // placement for placement -- this is the identity the streaming engine's
  // per-requester guarantee is built on.
  BatchWorkload batch = SmallHeterogeneousBatch(20, 15);
  auto sequential = SolveBatchSequential(batch.tasks, batch.profile);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  EngineOptions options;
  options.sharing = BatchSharing::kIsolated;
  DecompositionEngine engine(options);
  auto report = engine.SolveBatch(batch.tasks, batch.profile);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(PlanSignature(report->plan), PlanSignature(sequential->plan));
  EXPECT_NEAR(report->total_cost, sequential->total_cost,
              1e-9 * (1.0 + sequential->total_cost));
  EXPECT_EQ(report->total_bins, sequential->total_bins);
  EXPECT_EQ(report->task_offsets, sequential->task_offsets);

  // Every shard is owned by exactly one input task, in ascending order.
  size_t last_task = 0;
  for (const ShardStats& shard : report->shards) {
    ASSERT_NE(shard.input_task, ShardStats::kWholeBatch);
    EXPECT_GE(shard.input_task, last_task);
    EXPECT_LT(shard.input_task, batch.tasks.size());
    last_task = shard.input_task;
  }
}

TEST(DecompositionEngineTest, IsolatedModeDeterministicAcrossThreadCounts) {
  BatchWorkload batch = SmallHeterogeneousBatch(12, 20);
  std::string reference_sig;
  for (uint32_t threads : {1u, 4u, 8u}) {
    EngineOptions options;
    options.num_threads = threads;
    options.sharing = BatchSharing::kIsolated;
    DecompositionEngine engine(options);
    auto report = engine.SolveBatch(batch.tasks, batch.profile);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (threads == 1) {
      reference_sig = PlanSignature(report->plan);
      continue;
    }
    EXPECT_EQ(PlanSignature(report->plan), reference_sig)
        << "plan differs at " << threads << " threads";
  }
}

TEST(DecompositionEngineTest, IsolatedModeStillSharesTheOpqCache) {
  // Input tasks with the same threshold land in the same Algorithm 4
  // interval, so isolation changes bin sharing, not cache sharing: the
  // second identical input task's shard must hit the cache.
  auto profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(50, 0.9);
  ASSERT_TRUE(task.ok());

  EngineOptions options;
  options.sharing = BatchSharing::kIsolated;
  DecompositionEngine engine(options);
  auto report = engine.SolveBatch({*task, *task, *task}, profile);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->shards.size(), 3u);
  EXPECT_EQ(report->opq_cache_misses, 1u);
  EXPECT_EQ(report->opq_cache_hits, 2u);
}

TEST(ConcatenateTasksTest, PreservesOrderAndThresholds) {
  auto a = CrowdsourcingTask::FromThresholds({0.8, 0.9});
  auto b = CrowdsourcingTask::FromThresholds({0.7});
  ASSERT_TRUE(a.ok() && b.ok());
  auto merged = ConcatenateTasks({*a, *b});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 3u);
  EXPECT_DOUBLE_EQ(merged->threshold(0), 0.8);
  EXPECT_DOUBLE_EQ(merged->threshold(1), 0.9);
  EXPECT_DOUBLE_EQ(merged->threshold(2), 0.7);
  EXPECT_FALSE(ConcatenateTasks({}).ok());
}

}  // namespace
}  // namespace slade
