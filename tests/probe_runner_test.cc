#include "simulator/probe_runner.h"

#include <gtest/gtest.h>

#include "binmodel/calibration.h"
#include "common/stats.h"

namespace slade {
namespace {

PlatformConfig TestConfig() {
  PlatformConfig config;
  config.model = JellyModel();
  config.seed = 23;
  config.skill_sigma = 0.0;
  return config;
}

TEST(ProbeRunnerTest, RejectsEmptyPlans) {
  Platform platform(TestConfig());
  ProbePlan plan;
  EXPECT_TRUE(RunProbes(platform, plan).status().IsInvalidArgument());
  plan.cardinalities = {1};
  plan.bins_per_cardinality = 0;
  EXPECT_TRUE(RunProbes(platform, plan).status().IsInvalidArgument());
}

TEST(ProbeRunnerTest, ObservationVolumesMatchThePlan) {
  Platform platform(TestConfig());
  ProbePlan plan;
  plan.cardinalities = {1, 3, 5};
  plan.bins_per_cardinality = 4;
  plan.assignments_per_bin = 2;
  auto obs = RunProbes(platform, plan);
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs->size(), 3u);
  for (size_t i = 0; i < obs->size(); ++i) {
    const ProbeObservation& o = (*obs)[i];
    EXPECT_EQ(o.cardinality, plan.cardinalities[i]);
    // total answers = bins * assignments * cardinality.
    EXPECT_EQ(o.total, 4u * 2u * o.cardinality);
    EXPECT_LE(o.correct, o.total);
    EXPECT_GT(o.bin_cost, 0.0);
  }
}

TEST(ProbeRunnerTest, EstimatesTrackTheModel) {
  Platform platform(TestConfig());
  ProbePlan plan;
  plan.cardinalities = {2, 8, 16};
  plan.bins_per_cardinality = 400;
  plan.assignments_per_bin = 3;
  auto obs = RunProbes(platform, plan);
  ASSERT_TRUE(obs.ok());
  for (const ProbeObservation& o : *obs) {
    const double expected =
        ModelConfidence(platform.config().model, o.cardinality, o.bin_cost);
    const double estimate = CountingEstimate(o);
    EXPECT_NEAR(estimate, expected,
                4 * WilsonHalfWidth95(expected, o.total) + 0.002)
        << "l=" << o.cardinality;
  }
}

TEST(ProbeRunnerTest, ProbesFeedCalibrationEndToEnd) {
  Platform platform(TestConfig());
  ProbePlan plan;
  plan.cardinalities = {1, 2, 4, 8, 12, 16, 20};
  plan.bins_per_cardinality = 150;
  plan.assignments_per_bin = 3;
  auto obs = RunProbes(platform, plan);
  ASSERT_TRUE(obs.ok());
  auto profile = CalibrateProfile(*obs, 20, CalibrationMethod::kRegression);
  ASSERT_TRUE(profile.ok());
  for (uint32_t l = 1; l <= 20; ++l) {
    const double analytic = ModelConfidence(
        platform.config().model, l,
        ModelBinCost(platform.config().model, l));
    EXPECT_NEAR(profile->bin(l).confidence, analytic, 0.05) << "l=" << l;
  }
}

}  // namespace
}  // namespace slade
