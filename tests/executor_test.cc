#include "simulator/executor.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

PlatformConfig TestConfig(uint64_t seed = 31) {
  PlatformConfig config;
  config.model = JellyModel();
  config.seed = seed;
  config.skill_sigma = 0.0;
  return config;
}

TEST(ExecutorTest, EmptyPlanDetectsNothing) {
  Platform platform(TestConfig());
  DecompositionPlan plan;
  const BinProfile profile = BinProfile::PaperExample();
  auto report = ExecutePlan(platform, plan, profile, {true, false, true});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->positives, 2u);
  EXPECT_EQ(report->false_negatives, 2u);
  EXPECT_DOUBLE_EQ(report->positive_recall, 0.0);
  EXPECT_DOUBLE_EQ(report->total_cost, 0.0);
}

TEST(ExecutorTest, CostMatchesPlanCost) {
  Platform platform(TestConfig());
  const BinProfile profile = BuildProfile(JellyModel(), 5).ValueOrDie();
  DecompositionPlan plan;
  plan.Add(3, 2, {0, 1, 2});
  plan.Add(1, 1, {3});
  auto report =
      ExecutePlan(platform, plan, profile, {true, true, false, true});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->total_cost, plan.TotalCost(profile), 1e-12);
  EXPECT_EQ(report->bins_posted, 3u);
}

TEST(ExecutorTest, RejectsOutOfRangeTask) {
  Platform platform(TestConfig());
  const BinProfile profile = BinProfile::PaperExample();
  DecompositionPlan plan;
  plan.Add(1, 1, {5});
  EXPECT_TRUE(ExecutePlan(platform, plan, profile, {true})
                  .status()
                  .IsOutOfRange());
}

TEST(ExecutorTest, AllNegativeGroundTruthGivesPerfectRecall) {
  Platform platform(TestConfig());
  const BinProfile profile = BinProfile::PaperExample();
  DecompositionPlan plan;
  plan.Add(1, 1, {0});
  auto report = ExecutePlan(platform, plan, profile, {false});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->positives, 0u);
  EXPECT_DOUBLE_EQ(report->positive_recall, 1.0);
}

TEST(ExecutorTest, MeasuredRecallMatchesPlannedReliability) {
  // Solve a 2000-task homogeneous instance at t=0.9, execute it, and
  // check the measured positive recall lands near (and statistically not
  // below) the planned reliability.
  const BinProfile profile = BuildProfile(JellyModel(), 12).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(2000, 0.9);
  OpqSolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);

  Platform platform(TestConfig(77));
  std::vector<bool> truth(2000, true);  // all positive: every task counts
  auto report = ExecutePlan(platform, *plan, profile, truth);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->positives, 2000u);

  // The plan guarantees Rel >= 0.9 per task; with per-task reliabilities
  // r_i >= 0.9 the empirical recall concentrates at mean(r_i) >= 0.9.
  // Allow 3-sigma sampling slack below 0.9.
  const double slack =
      3 * std::sqrt(0.9 * 0.1 / static_cast<double>(report->positives));
  EXPECT_GE(report->positive_recall, 0.9 - slack);
  EXPECT_NEAR(report->total_cost, plan->TotalCost(profile), 1e-9);
}

TEST(ExecutorTest, HigherThresholdYieldsHigherMeasuredRecall) {
  const BinProfile profile = BuildProfile(JellyModel(), 12).ValueOrDie();
  OpqSolver solver;
  double recalls[2];
  int idx = 0;
  for (double t : {0.85, 0.99}) {
    auto task = CrowdsourcingTask::Homogeneous(3000, t);
    auto plan = solver.Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    Platform platform(TestConfig(123));
    std::vector<bool> truth(3000, true);
    auto report = ExecutePlan(platform, *plan, profile, truth);
    ASSERT_TRUE(report.ok());
    recalls[idx++] = report->positive_recall;
  }
  EXPECT_GT(recalls[1], recalls[0]);
  EXPECT_GE(recalls[1], 0.985);
}

}  // namespace
}  // namespace slade
