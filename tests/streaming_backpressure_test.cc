// Deterministic semantics of the admission backpressure policies, plus a
// concurrent shed/reject stress that rides the ASan/TSan CI legs.
//
// The deterministic tests exploit that the worker only flushes when kicked
// (huge flush caps + huge deadline): a first submission parks in the
// pending queue, so a second one deterministically finds the queue full
// and the policy's behavior is observable without races -- Submit holds
// the engine lock from the room check through the policy action, so the
// flush kick it issues cannot drain the queue mid-decision.

#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/streaming_engine.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace slade {
namespace {

CrowdsourcingTask FixedTask(size_t num_atomic, uint64_t seed) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;
  spec.clamp_lo = 0.6;
  spec.clamp_hi = 0.98;
  auto thresholds = GenerateThresholds(spec, num_atomic, seed);
  EXPECT_TRUE(thresholds.ok());
  auto task =
      CrowdsourcingTask::FromThresholds(std::move(thresholds).ValueOrDie());
  EXPECT_TRUE(task.ok());
  return std::move(task).ValueOrDie();
}

/// Flush caps and deadline so large that only backpressure kicks (or an
/// explicit Flush/Drain) ever cut a micro-batch.
StreamingOptions ParkedOptions(BackpressurePolicy policy,
                               uint64_t queue_max_atomic) {
  StreamingOptions options;
  options.max_pending_submissions = 1u << 20;
  options.max_pending_atomic_tasks = 1u << 20;
  options.max_delay_seconds = 3600.0;
  options.resources.backpressure = policy;
  options.resources.queue_max_atomic_tasks = queue_max_atomic;
  return options;
}

TEST(StreamingBackpressureTest, RejectFailsFastWhenQueueIsFull) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingEngine engine(*profile,
                         ParkedOptions(BackpressurePolicy::kReject,
                                       /*queue_max_atomic=*/10));

  auto first = engine.Submit("a", {FixedTask(10, 1)});   // fills the queue
  auto second = engine.Submit("b", {FixedTask(10, 2)});  // no room: rejected
  auto rejected = second.get();  // resolves without any flush happening
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();

  engine.Drain();
  auto delivered = first.get();
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_EQ(delivered->requester_id, "a");

  const StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.submissions, 1u);  // the rejected one never counted
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(StreamingBackpressureTest, ShedOldestEvictsThePendingSubmission) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingEngine engine(*profile,
                         ParkedOptions(BackpressurePolicy::kShedOldest,
                                       /*queue_max_atomic=*/10));

  auto first = engine.Submit("old", {FixedTask(10, 1)});
  auto second = engine.Submit("new", {FixedTask(10, 2)});  // sheds "old"

  auto shed = first.get();  // resolves immediately: evicted, never solved
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status().ToString();

  engine.Drain();
  auto delivered = second.get();
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_EQ(delivered->requester_id, "new");

  const StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.submissions, 2u);  // both were admitted...
  EXPECT_EQ(stats.shed, 1u);         // ...but the older one was shed
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(StreamingBackpressureTest, ShedOldestAdmitsOversizedSubmissionAlone) {
  // A submission larger than the whole cap empties the queue and is then
  // admitted alone (the empty-queue rule): nothing can deadlock on a cap
  // smaller than one submission.
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingEngine engine(*profile,
                         ParkedOptions(BackpressurePolicy::kShedOldest,
                                       /*queue_max_atomic=*/10));

  auto small = engine.Submit("small", {FixedTask(5, 1)});
  auto huge = engine.Submit("huge", {FixedTask(40, 2)});  // 4x the cap
  EXPECT_FALSE(small.get().ok());

  engine.Drain();
  auto delivered = huge.get();
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_EQ(delivered->num_atomic_tasks(), 40u);
}

TEST(StreamingBackpressureTest, BlockWaitsForRoomAndLosesNothing) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingEngine engine(*profile,
                         ParkedOptions(BackpressurePolicy::kBlock,
                                       /*queue_max_atomic=*/10));

  auto first = engine.Submit("a", {FixedTask(10, 1)});
  // The second Submit blocks until the kick it issues makes the worker
  // flush the first; run it on its own thread.
  std::future<Result<RequesterPlan>> second;
  std::thread submitter([&] {
    second = engine.Submit("b", {FixedTask(10, 2)});
  });
  submitter.join();  // returns once admitted
  engine.Drain();

  auto a = first.get();
  auto b = second.get();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  const StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.submissions, 2u);
  EXPECT_EQ(stats.blocked, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(StreamingBackpressureTest, BlockedWaitersThatLoseTheAdmissionRaceRekick) {
  // Two submitters block on one full queue; the flush they kick only makes
  // room for one of them. The loser must re-request a flush and still get
  // through -- without the re-kick it would stall until the (huge)
  // deadline and this test would time out.
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingEngine engine(*profile,
                         ParkedOptions(BackpressurePolicy::kBlock,
                                       /*queue_max_atomic=*/30));

  auto first = engine.Submit("a", {FixedTask(30, 1)});  // fills the queue
  std::future<Result<RequesterPlan>> second;
  std::future<Result<RequesterPlan>> third;
  std::thread submitter_b([&] {
    second = engine.Submit("b", {FixedTask(30, 2)});
  });
  std::thread submitter_c([&] {
    third = engine.Submit("c", {FixedTask(30, 3)});
  });
  submitter_b.join();
  submitter_c.join();
  engine.Drain();

  for (auto* future : {&first, &second, &third}) {
    auto slice = future->get();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  }
  const StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.submissions, 3u);
  EXPECT_GE(stats.blocked, 1u);  // timing decides whether both blocked
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(StreamingBackpressureTest, TrySubmitNeverBlocksRegardlessOfPolicy) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  // Policy is kBlock, but TrySubmit must fail fast instead of waiting.
  StreamingEngine engine(*profile,
                         ParkedOptions(BackpressurePolicy::kBlock,
                                       /*queue_max_atomic=*/10));

  auto admitted = engine.TrySubmit("a", {FixedTask(10, 1)});
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();

  auto refused = engine.TrySubmit("b", {FixedTask(10, 2)});
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();

  engine.Drain();
  auto delivered = admitted->get();
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_EQ(delivered->requester_id, "a");
  // TrySubmit's refusal counts as a rejection but nothing was shed.
  EXPECT_EQ(engine.stats().rejected, 1u);
  EXPECT_EQ(engine.stats().shed, 0u);
}

TEST(StreamingBackpressureTest, QueueCountersTrackOccupancyAndPeaks) {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 6);
  ASSERT_TRUE(profile.ok());
  StreamingEngine engine(*profile,
                         ParkedOptions(BackpressurePolicy::kBlock,
                                       /*queue_max_atomic=*/100));

  auto f1 = engine.Submit("a", {FixedTask(10, 1)});
  auto f2 = engine.Submit("a", {FixedTask(20, 2)});
  StreamingStats stats = engine.stats();
  EXPECT_EQ(stats.queue_submissions, 2u);
  EXPECT_EQ(stats.queue_atomic_tasks, 30u);
  EXPECT_GT(stats.queue_bytes, 0u);
  EXPECT_EQ(stats.peak_queue_atomic_tasks, 30u);

  engine.Drain();
  ASSERT_TRUE(f1.get().ok());
  ASSERT_TRUE(f2.get().ok());
  stats = engine.stats();
  EXPECT_EQ(stats.queue_submissions, 0u);
  EXPECT_EQ(stats.queue_atomic_tasks, 0u);
  EXPECT_EQ(stats.queue_bytes, 0u);
  EXPECT_EQ(stats.peak_queue_atomic_tasks, 30u);  // high-water mark sticks
  EXPECT_GT(stats.peak_queue_bytes, 0u);
}

TEST(StreamingBackpressureTest, ConcurrentProducersUnderPressureAllResolve) {
  // 8 producers race a tiny queue under each failing policy; every future
  // must resolve (slice or clean ResourceExhausted) and the admission
  // ledger must conserve. This is the sanitizer payload for the
  // backpressure paths.
  for (BackpressurePolicy policy :
       {BackpressurePolicy::kReject, BackpressurePolicy::kShedOldest}) {
    SCOPED_TRACE(std::string("policy ") + BackpressurePolicyName(policy));
    auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 8);
    ASSERT_TRUE(profile.ok());

    StreamingOptions options;
    options.max_pending_submissions = 4;
    options.max_delay_seconds = 0.001;
    options.num_threads = 2;
    options.resources.backpressure = policy;
    options.resources.queue_max_atomic_tasks = 40;
    StreamingEngine engine(*profile, options);

    constexpr size_t kProducers = 8;
    constexpr size_t kPerProducer = 25;
    std::vector<std::vector<std::future<Result<RequesterPlan>>>> futures(
        kProducers);
    {
      std::vector<std::thread> producers;
      producers.reserve(kProducers);
      for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([p, &futures, &engine] {
          std::mt19937_64 rng(0x5eed + p);
          const std::string requester = "p" + std::to_string(p);
          for (size_t s = 0; s < kPerProducer; ++s) {
            futures[p].push_back(engine.Submit(
                requester,
                {FixedTask(1 + rng() % 20, rng())}));
          }
        });
      }
      for (std::thread& producer : producers) producer.join();
    }
    engine.Drain();

    uint64_t delivered = 0;
    uint64_t failed = 0;
    for (auto& per_producer : futures) {
      for (auto& future : per_producer) {
        auto slice = future.get();
        if (slice.ok()) {
          delivered += 1;
        } else {
          EXPECT_TRUE(slice.status().IsResourceExhausted())
              << slice.status().ToString();
          failed += 1;
        }
      }
    }
    EXPECT_EQ(delivered + failed, kProducers * kPerProducer);

    const StreamingStats stats = engine.stats();
    EXPECT_EQ(stats.rejected + stats.shed, failed);
    EXPECT_EQ(stats.submissions, delivered + stats.shed);
    EXPECT_EQ(stats.queue_submissions, 0u);
    EXPECT_EQ(stats.queue_bytes, 0u);
  }
}

}  // namespace
}  // namespace slade
