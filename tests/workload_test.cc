#include "workload/workload.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

TEST(WorkloadTest, HomogeneousDefaults) {
  auto w = MakeHomogeneousWorkload(DatasetKind::kJelly,
                                   ExperimentDefaults::kNumTasks,
                                   ExperimentDefaults::kThreshold,
                                   ExperimentDefaults::kMaxCardinality);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->task.size(), 10000u);
  EXPECT_TRUE(w->task.is_homogeneous());
  EXPECT_EQ(w->profile.max_cardinality(), 20u);
}

TEST(WorkloadTest, HeterogeneousUsesSpec) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;
  auto w = MakeHeterogeneousWorkload(DatasetKind::kSmic, 500, spec, 15,
                                     ExperimentDefaults::kSeed);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->task.size(), 500u);
  EXPECT_FALSE(w->task.is_homogeneous());
  EXPECT_EQ(w->profile.max_cardinality(), 15u);
}

TEST(WorkloadTest, SmicProfileDiffersFromJelly) {
  auto jelly = MakeHomogeneousWorkload(DatasetKind::kJelly, 10, 0.9, 10);
  auto smic = MakeHomogeneousWorkload(DatasetKind::kSmic, 10, 0.9, 10);
  ASSERT_TRUE(jelly.ok());
  ASSERT_TRUE(smic.ok());
  // SMIC is a harder task: lower confidence at equal cardinality.
  for (uint32_t l = 1; l <= 10; ++l) {
    EXPECT_LT(smic->profile.bin(l).confidence,
              jelly->profile.bin(l).confidence);
  }
}

TEST(WorkloadTest, PropagatesInvalidParameters) {
  EXPECT_FALSE(MakeHomogeneousWorkload(DatasetKind::kJelly, 0, 0.9, 20).ok());
  EXPECT_FALSE(
      MakeHomogeneousWorkload(DatasetKind::kJelly, 10, 1.5, 20).ok());
  EXPECT_FALSE(
      MakeHomogeneousWorkload(DatasetKind::kJelly, 10, 0.9, 31).ok());
}

TEST(WorkloadTest, DeterministicHeterogeneousThresholds) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  auto a = MakeHeterogeneousWorkload(DatasetKind::kJelly, 100, spec, 20, 9);
  auto b = MakeHeterogeneousWorkload(DatasetKind::kJelly, 100, spec, 20, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->task.thresholds(), b->task.thresholds());
}

}  // namespace
}  // namespace slade
