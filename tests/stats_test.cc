#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace slade {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(OnlineStatsTest, MatchesClosedForm) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);          // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.5);   // n-1
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  Xoshiro256 rng(1);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-3, 7);
    all.Add(x);
    (i % 2 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmptyIsIdentity) {
  OnlineStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(MeanStddevTest, VectorHelpers) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(SampleStddev(xs), 2.138089935, 1e-8);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(SampleStddev({1.0}), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 17.5);
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(PercentileTest, UnsortedInputHandled) {
  std::vector<double> xs = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
}

TEST(WilsonTest, ShrinksWithSampleSize) {
  const double w100 = WilsonHalfWidth95(0.5, 100);
  const double w10000 = WilsonHalfWidth95(0.5, 10000);
  EXPECT_GT(w100, w10000);
  EXPECT_NEAR(w10000, 0.0098, 0.0005);
  EXPECT_EQ(WilsonHalfWidth95(0.5, 0), 1.0);
}

}  // namespace
}  // namespace slade
