#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace slade {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("yes");
  EXPECT_EQ(r.ValueOr("no"), "yes");
}

TEST(ResultTest, MoveOutOfResult) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Doubled(int x) {
  SLADE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_FALSE(Doubled(-1).ok());
  EXPECT_TRUE(Doubled(-1).status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnPassesValue) {
  auto r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

}  // namespace
}  // namespace slade
