#include "solver/plan_arena.h"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "engine/resource_governor.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

std::string Signature(const DecompositionPlan& plan) {
  std::string sig;
  for (const BinPlacement& p : plan.placements()) {
    sig += std::to_string(p.cardinality) + "x" + std::to_string(p.copies) +
           ":";
    for (TaskId id : p.tasks) sig += std::to_string(id) + ";";
    sig += "|";
  }
  return sig;
}

std::string Signature(const ColumnarPlan& plan) {
  return Signature(plan.ToPlan());
}

// --- PlanArena -------------------------------------------------------------

TEST(PlanArenaTest, AllocationsAreAlignedAndDisjoint) {
  PlanArena arena;
  auto* a = static_cast<uint8_t*>(arena.Allocate(13, 1));
  auto* b = static_cast<uint64_t*>(arena.Allocate(8, 8));
  auto* c = static_cast<uint32_t*>(arena.Allocate(40, 4));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 4, 0u);
  // Writes through one pointer must not clobber the others.
  for (int i = 0; i < 13; ++i) a[i] = 0xAB;
  *b = 0x0123456789ABCDEFull;
  for (int i = 0; i < 10; ++i) c[i] = 7u;
  EXPECT_EQ(a[12], 0xAB);
  EXPECT_EQ(*b, 0x0123456789ABCDEFull);
  EXPECT_EQ(c[9], 7u);
}

TEST(PlanArenaTest, ChunksGrowGeometricallyNotPerAllocation) {
  PlanArena arena;
  // 1 MiB of small allocations: chunk count must stay logarithmic (4 KiB
  // doubling to 4 MiB covers 1 MiB in well under 12 chunks), nowhere near
  // the 16384 allocations made.
  for (int i = 0; i < 16384; ++i) arena.Allocate(64, 8);
  EXPECT_LE(arena.num_chunks(), 12u);
  EXPECT_GE(arena.reserved_bytes(), 16384u * 64u);
}

TEST(PlanArenaTest, OversizedRequestGetsItsOwnChunk) {
  PlanArena arena;
  void* p = arena.Allocate(16u << 20, 8);  // 16 MiB > kMaxChunkBytes
  EXPECT_NE(p, nullptr);
  EXPECT_GE(arena.reserved_bytes(), 16u << 20);
}

TEST(PlanArenaTest, ResetReusesMemoryWithoutNewChunks) {
  PlanArena arena;
  for (int i = 0; i < 1000; ++i) arena.Allocate(64, 8);
  const size_t chunks = arena.num_chunks();
  const uint64_t bytes = arena.reserved_bytes();
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    for (int i = 0; i < 1000; ++i) arena.Allocate(64, 8);
  }
  EXPECT_EQ(arena.num_chunks(), chunks);
  EXPECT_EQ(arena.reserved_bytes(), bytes);
}

TEST(PlanArenaTest, GovernorIsChargedPerChunkAndReleasedOnDestruction) {
  ResourceGovernor governor(/*max_bytes=*/0, /*max_units=*/0);
  {
    PlanArena arena(&governor);
    arena.Allocate(100, 8);
    const GovernorCounters during = governor.counters();
    EXPECT_EQ(during.bytes, arena.reserved_bytes());
    EXPECT_EQ(during.units, arena.num_chunks());
    // Reset keeps the memory, so the charges stay too.
    arena.Reset();
    EXPECT_EQ(governor.counters().bytes, during.bytes);
  }
  const GovernorCounters after = governor.counters();
  EXPECT_EQ(after.bytes, 0u);
  EXPECT_EQ(after.units, 0u);
  EXPECT_GT(after.peak_bytes, 0u);  // high-water mark survives
}

TEST(PlanArenaTest, DetachGovernorReleasesChargesEarly) {
  ResourceGovernor governor(0, 0);
  PlanArena arena(&governor);
  arena.Allocate(100, 8);
  EXPECT_GT(governor.counters().bytes, 0u);
  arena.DetachGovernor();
  EXPECT_EQ(governor.counters().bytes, 0u);
  // Further growth after the detach never touches the governor.
  for (int i = 0; i < 1000; ++i) arena.Allocate(4096, 8);
  EXPECT_EQ(governor.counters().bytes, 0u);
}

TEST(PlanArenaTest, DyingArenaRecyclesChunksIntoProcessPool) {
  TrimPlanArenaPool();
  uint64_t retired_bytes = 0;
  {
    PlanArena arena;
    for (int i = 0; i < 1000; ++i) arena.Allocate(4096, 8);
    retired_bytes = arena.reserved_bytes();
  }
  const PlanArenaPoolCounters after = PlanArenaPoolStats();
  EXPECT_EQ(after.pooled_bytes, retired_bytes);
  EXPECT_GT(after.pooled_chunks, 0u);

  // A successor arena of the same shape is served from the pool: idle
  // bytes drain back out and hits advance, with no new system chunks
  // beyond what the pool could not cover.
  {
    PlanArena arena;
    for (int i = 0; i < 1000; ++i) arena.Allocate(4096, 8);
    const PlanArenaPoolCounters during = PlanArenaPoolStats();
    EXPECT_LT(during.pooled_bytes, after.pooled_bytes);
    EXPECT_GT(during.reuse_hits, after.reuse_hits);
  }
  TrimPlanArenaPool();
  EXPECT_EQ(PlanArenaPoolStats().pooled_bytes, 0u);
}

TEST(PlanArenaTest, PoolDropsChunksBeyondByteCap) {
  TrimPlanArenaPool();
  // Retire more than kMaxPooledBytes of chunk memory; the pool must hold
  // the cap, not the total.
  const size_t big = PlanArena::kMaxChunkBytes;
  const size_t rounds = PlanArena::kMaxPooledBytes / big + 8;
  for (size_t i = 0; i < rounds; ++i) {
    PlanArena arena;
    arena.Allocate(big - 64, 8);
  }
  EXPECT_LE(PlanArenaPoolStats().pooled_bytes, PlanArena::kMaxPooledBytes);
  TrimPlanArenaPool();
}

// --- ColumnarPlan ----------------------------------------------------------

TEST(ColumnarPlanTest, AddAndViewRoundTrip) {
  ColumnarPlan plan;
  plan.Add(3, 2, {0, 1, 2});
  plan.Add(2, 1, {3, 4});
  plan.Add(1, 5, {5});
  ASSERT_EQ(plan.num_placements(), 3u);
  EXPECT_EQ(plan.num_task_ids(), 6u);
  const ColumnarPlan::PlacementView v0 = plan.view(0);
  EXPECT_EQ(v0.cardinality, 3u);
  EXPECT_EQ(v0.copies, 2u);
  ASSERT_EQ(v0.num_tasks, 3u);
  EXPECT_EQ(v0.tasks[2], 2u);
  const ColumnarPlan::PlacementView v2 = plan.view(2);
  EXPECT_EQ(v2.cardinality, 1u);
  EXPECT_EQ(v2.copies, 5u);
  ASSERT_EQ(v2.num_tasks, 1u);
  EXPECT_EQ(v2.tasks[0], 5u);
}

TEST(ColumnarPlanTest, ZeroCopiesPlacementIsDroppedLikeAoS) {
  ColumnarPlan plan;
  plan.Add(2, 0, {0, 1});
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_task_ids(), 0u);
}

TEST(ColumnarPlanTest, ConversionRoundTripsBothWays) {
  DecompositionPlan aos;
  aos.Add(3, 1, {0, 1, 2});
  aos.Add(2, 4, {1, 3});
  aos.Add(2, 1, {2});  // partially filled bin
  const ColumnarPlan columnar = ColumnarPlan::FromPlan(aos);
  EXPECT_EQ(Signature(columnar), Signature(aos));
  const DecompositionPlan back = columnar.ToPlan();
  EXPECT_EQ(Signature(back), Signature(aos));
}

TEST(ColumnarPlanTest, AppendColumnsConcatenatesInOrder) {
  ColumnarPlan a;
  a.Add(2, 1, {0, 1});
  ColumnarPlan b;
  b.Add(3, 2, {2, 3, 4});
  b.Add(1, 1, {5});
  a.AppendColumns(b);
  EXPECT_EQ(Signature(a), "2x1:0;1;|3x2:2;3;4;|1x1:5;|");
}

TEST(ColumnarPlanTest, AppendRangeShiftsIdsAndSlicesPlacements) {
  ColumnarPlan src;
  src.Add(2, 1, {10, 11});
  src.Add(3, 2, {12, 13, 14});
  src.Add(1, 1, {15});
  ColumnarPlan dst;
  dst.AppendRange(src, 1, 2, /*id_delta=*/-12);
  EXPECT_EQ(Signature(dst), "3x2:0;1;2;|1x1:3;|");
}

TEST(ColumnarPlanTest, AppendPlanAndAppendToPlanApplyOffsets) {
  DecompositionPlan aos;
  aos.Add(2, 1, {0, 1});
  ColumnarPlan columnar;
  columnar.AppendPlan(aos, /*id_offset=*/100);
  EXPECT_EQ(Signature(columnar), "2x1:100;101;|");
  DecompositionPlan out;
  columnar.AppendToPlan(&out, /*id_offset=*/10);
  EXPECT_EQ(Signature(out), "2x1:110;111;|");
}

TEST(ColumnarPlanTest, DeepCopyIsIndependent) {
  ColumnarPlan a;
  a.Add(2, 1, {0, 1});
  ColumnarPlan b = a;
  b.Add(1, 1, {2});
  EXPECT_EQ(a.num_placements(), 1u);
  EXPECT_EQ(b.num_placements(), 2u);
  EXPECT_EQ(Signature(a), "2x1:0;1;|");
  a = b;
  EXPECT_EQ(Signature(a), Signature(b));
}

TEST(ColumnarPlanTest, ClearRewindsArenaForReuse) {
  ColumnarPlan plan;
  std::vector<TaskId> ids(64);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<TaskId>(i);
  for (int i = 0; i < 100; ++i) plan.Add(4, 1, ids.data(), 4);
  const uint64_t bytes = plan.arena().reserved_bytes();
  const size_t chunks = plan.arena().num_chunks();
  for (int round = 0; round < 5; ++round) {
    plan.Clear();
    EXPECT_TRUE(plan.empty());
    for (int i = 0; i < 100; ++i) plan.Add(4, 1, ids.data(), 4);
  }
  EXPECT_EQ(plan.arena().reserved_bytes(), bytes);
  EXPECT_EQ(plan.arena().num_chunks(), chunks);
}

TEST(ColumnarPlanTest, AccountingMatchesAoSOnRandomPlans) {
  const BinProfile profile = BinProfile::PaperExample();
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng() % 40;
    DecompositionPlan aos;
    ColumnarPlan columnar;
    const size_t placements = rng() % 60;
    for (size_t p = 0; p < placements; ++p) {
      const uint32_t cardinality =
          1 + static_cast<uint32_t>(rng() % profile.max_cardinality());
      const uint32_t copies = 1 + static_cast<uint32_t>(rng() % 3);
      std::vector<TaskId> ids;
      const size_t fill = 1 + rng() % cardinality;
      for (size_t j = 0; j < fill; ++j) {
        ids.push_back(static_cast<TaskId>(rng() % n));
      }
      aos.Add(cardinality, copies, ids);
      columnar.Add(cardinality, copies, ids);
    }
    EXPECT_NEAR(columnar.TotalCost(profile), aos.TotalCost(profile), 1e-12);
    EXPECT_EQ(columnar.TotalBinInstances(), aos.TotalBinInstances());
    EXPECT_EQ(columnar.BinCounts(profile.max_cardinality()),
              aos.BinCounts(profile.max_cardinality()));
    const std::vector<double> rel_columnar =
        columnar.PerTaskReliability(profile, n);
    const std::vector<double> rel_aos = aos.PerTaskReliability(profile, n);
    ASSERT_EQ(rel_columnar.size(), rel_aos.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(rel_columnar[i], rel_aos[i], 1e-12) << "task " << i;
    }
  }
}

TEST(ColumnarPlanTest, BulkStampingAllocatesChunksNotPlacements) {
  // 20k placements of 4 ids each through a reserved plan: the arena must
  // hold everything in a handful of chunks.
  ColumnarPlan plan;
  plan.Reserve(20000, 80000);
  std::vector<TaskId> ids = {0, 1, 2, 3};
  for (int i = 0; i < 20000; ++i) plan.Add(4, 1, ids.data(), ids.size());
  EXPECT_EQ(plan.num_placements(), 20000u);
  EXPECT_LE(plan.arena().num_chunks(), 4u);
}

}  // namespace
}  // namespace slade
