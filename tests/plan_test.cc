#include "solver/plan.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

TEST(PlanTest, EmptyPlan) {
  DecompositionPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.TotalBinInstances(), 0u);
  EXPECT_DOUBLE_EQ(plan.TotalCost(BinProfile::PaperExample()), 0.0);
}

TEST(PlanTest, TotalCostSumsCopies) {
  const BinProfile p = BinProfile::PaperExample();
  DecompositionPlan plan;
  plan.Add(3, 2, {0, 1, 2});  // 2 * 0.24
  plan.Add(1, 1, {3});        // 0.10
  EXPECT_NEAR(plan.TotalCost(p), 0.58, 1e-12);
  EXPECT_EQ(plan.TotalBinInstances(), 3u);
}

TEST(PlanTest, ZeroCopiesIsIgnored) {
  DecompositionPlan plan;
  plan.Add(1, 0, {0});
  EXPECT_TRUE(plan.empty());
}

TEST(PlanTest, BinCountsIndexedByCardinality) {
  DecompositionPlan plan;
  plan.Add(3, 2, {0, 1, 2});
  plan.Add(3, 1, {3});
  plan.Add(1, 5, {0});
  auto counts = plan.BinCounts(3);
  EXPECT_EQ(counts[1], 5u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 3u);
}

TEST(PlanTest, PerTaskReliabilityMatchesEquation1) {
  const BinProfile p = BinProfile::PaperExample();
  DecompositionPlan plan;
  plan.Add(3, 2, {0, 1, 2});  // tasks 0-2: two bins of r=0.8
  plan.Add(2, 1, {2, 3});     // task 2 also one bin of r=0.85
  auto rel = plan.PerTaskReliability(p, 4);
  EXPECT_NEAR(rel[0], 0.96, 1e-12);                 // 1 - 0.2^2
  EXPECT_NEAR(rel[2], 1.0 - 0.2 * 0.2 * 0.15, 1e-12);
  EXPECT_NEAR(rel[3], 0.85, 1e-12);
  EXPECT_DOUBLE_EQ(plan.PerTaskReliability(p, 5)[4], 0.0);  // unplaced
}

TEST(PlanTest, AppendMergesPlacements) {
  DecompositionPlan a, b;
  a.Add(1, 1, {0});
  b.Add(2, 3, {1, 2});
  a.Append(std::move(b));
  EXPECT_EQ(a.placements().size(), 2u);
  EXPECT_EQ(a.TotalBinInstances(), 4u);
}

TEST(PlanTest, SummaryMentionsBinCountsAndCost) {
  const BinProfile p = BinProfile::PaperExample();
  DecompositionPlan plan;
  plan.Add(3, 2, {0, 1, 2});
  plan.Add(1, 2, {3});
  const std::string s = plan.Summary(p);
  EXPECT_NE(s.find("2 x b1"), std::string::npos);
  EXPECT_NE(s.find("2 x b3"), std::string::npos);
  EXPECT_NE(s.find("cost=0.68"), std::string::npos);
}

}  // namespace
}  // namespace slade
