#include "io/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "binmodel/profile_model.h"

namespace slade {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_ =
      std::string("model_io_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".csv";
};

TEST_F(ModelIoTest, ProfileRoundTrip) {
  const BinProfile original = BuildProfile(JellyModel(), 12).ValueOrDie();
  ASSERT_TRUE(SaveBinProfileCsv(original, path_).ok());
  auto loaded = LoadBinProfileCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (uint32_t l = 1; l <= original.max_cardinality(); ++l) {
    EXPECT_NEAR(loaded->bin(l).confidence, original.bin(l).confidence,
                1e-9);
    EXPECT_NEAR(loaded->bin(l).cost, original.bin(l).cost, 1e-9);
  }
}

TEST_F(ModelIoTest, ProfileRowsMayArriveUnordered) {
  {
    std::ofstream out(path_);
    out << "cardinality,confidence,cost\n3,0.8,0.24\n1,0.9,0.1\n"
           "2,0.85,0.18\n";
  }
  auto loaded = LoadBinProfileCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->bin(2).cost, 0.18);
}

TEST_F(ModelIoTest, ProfileHeaderChecked) {
  {
    std::ofstream out(path_);
    out << "l,r,c\n1,0.9,0.1\n";
  }
  EXPECT_TRUE(LoadBinProfileCsv(path_).status().IsInvalidArgument());
}

TEST_F(ModelIoTest, ProfileBadRowRejected) {
  {
    std::ofstream out(path_);
    out << "cardinality,confidence,cost\n1,0.9\n";
  }
  EXPECT_TRUE(LoadBinProfileCsv(path_).status().IsInvalidArgument());
}

TEST_F(ModelIoTest, ThresholdsRoundTrip) {
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.9, 0.95, 0.86});
  ASSERT_TRUE(SaveThresholdsCsv(*task, path_).ok());
  auto loaded = LoadThresholdsCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 4u);
  EXPECT_EQ(loaded->thresholds(), task->thresholds());
}

TEST_F(ModelIoTest, ThresholdsOutOfRangeRejected) {
  {
    std::ofstream out(path_);
    out << "threshold\n0.9\n1.5\n";
  }
  EXPECT_TRUE(LoadThresholdsCsv(path_).status().IsInvalidArgument());
}

TEST_F(ModelIoTest, PlanRoundTrip) {
  DecompositionPlan plan;
  plan.Add(3, 2, {0, 5, 9});
  plan.Add(1, 1, {7});
  plan.Add(2, 4, {1, 2});
  ASSERT_TRUE(SavePlanCsv(plan, path_).ok());
  auto loaded = LoadPlanCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->placements().size(), 3u);
  EXPECT_EQ(loaded->placements()[0].cardinality, 3u);
  EXPECT_EQ(loaded->placements()[0].copies, 2u);
  EXPECT_EQ(loaded->placements()[0].tasks,
            (std::vector<TaskId>{0, 5, 9}));
  EXPECT_EQ(loaded->placements()[2].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(loaded->TotalBinInstances(), plan.TotalBinInstances());
}

TEST_F(ModelIoTest, PlanWithEmptyTaskListRoundTrips) {
  DecompositionPlan plan;
  plan.Add(2, 1, {});
  ASSERT_TRUE(SavePlanCsv(plan, path_).ok());
  auto loaded = LoadPlanCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->placements().size(), 1u);
  EXPECT_TRUE(loaded->placements()[0].tasks.empty());
}

TEST_F(ModelIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadBinProfileCsv("/no/such.csv").status().IsIOError());
  EXPECT_TRUE(LoadThresholdsCsv("/no/such.csv").status().IsIOError());
  EXPECT_TRUE(LoadPlanCsv("/no/such.csv").status().IsIOError());
}

}  // namespace
}  // namespace slade
