#include "io/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "binmodel/profile_model.h"

namespace slade {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_ =
      std::string("model_io_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".csv";
};

TEST_F(ModelIoTest, ProfileRoundTrip) {
  const BinProfile original = BuildProfile(JellyModel(), 12).ValueOrDie();
  ASSERT_TRUE(SaveBinProfileCsv(original, path_).ok());
  auto loaded = LoadBinProfileCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (uint32_t l = 1; l <= original.max_cardinality(); ++l) {
    EXPECT_NEAR(loaded->bin(l).confidence, original.bin(l).confidence,
                1e-9);
    EXPECT_NEAR(loaded->bin(l).cost, original.bin(l).cost, 1e-9);
  }
}

TEST_F(ModelIoTest, ProfileRowsMayArriveUnordered) {
  {
    std::ofstream out(path_);
    out << "cardinality,confidence,cost\n3,0.8,0.24\n1,0.9,0.1\n"
           "2,0.85,0.18\n";
  }
  auto loaded = LoadBinProfileCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->bin(2).cost, 0.18);
}

TEST_F(ModelIoTest, ProfileHeaderChecked) {
  {
    std::ofstream out(path_);
    out << "l,r,c\n1,0.9,0.1\n";
  }
  EXPECT_TRUE(LoadBinProfileCsv(path_).status().IsInvalidArgument());
}

TEST_F(ModelIoTest, ProfileBadRowRejected) {
  {
    std::ofstream out(path_);
    out << "cardinality,confidence,cost\n1,0.9\n";
  }
  EXPECT_TRUE(LoadBinProfileCsv(path_).status().IsInvalidArgument());
}

TEST_F(ModelIoTest, ThresholdsRoundTrip) {
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.9, 0.95, 0.86});
  ASSERT_TRUE(SaveThresholdsCsv(*task, path_).ok());
  auto loaded = LoadThresholdsCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 4u);
  EXPECT_EQ(loaded->thresholds(), task->thresholds());
}

TEST_F(ModelIoTest, ThresholdsOutOfRangeRejected) {
  {
    std::ofstream out(path_);
    out << "threshold\n0.9\n1.5\n";
  }
  EXPECT_TRUE(LoadThresholdsCsv(path_).status().IsInvalidArgument());
}

TEST_F(ModelIoTest, PlanRoundTrip) {
  DecompositionPlan plan;
  plan.Add(3, 2, {0, 5, 9});
  plan.Add(1, 1, {7});
  plan.Add(2, 4, {1, 2});
  ASSERT_TRUE(SavePlanCsv(plan, path_).ok());
  auto loaded = LoadPlanCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->placements().size(), 3u);
  EXPECT_EQ(loaded->placements()[0].cardinality, 3u);
  EXPECT_EQ(loaded->placements()[0].copies, 2u);
  EXPECT_EQ(loaded->placements()[0].tasks,
            (std::vector<TaskId>{0, 5, 9}));
  EXPECT_EQ(loaded->placements()[2].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(loaded->TotalBinInstances(), plan.TotalBinInstances());
}

TEST_F(ModelIoTest, PlanWithEmptyTaskListRoundTrips) {
  DecompositionPlan plan;
  plan.Add(2, 1, {});
  ASSERT_TRUE(SavePlanCsv(plan, path_).ok());
  auto loaded = LoadPlanCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->placements().size(), 1u);
  EXPECT_TRUE(loaded->placements()[0].tasks.empty());
}

TEST_F(ModelIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadBinProfileCsv("/no/such.csv").status().IsIOError());
  EXPECT_TRUE(LoadThresholdsCsv("/no/such.csv").status().IsIOError());
  EXPECT_TRUE(LoadPlanCsv("/no/such.csv").status().IsIOError());
  EXPECT_TRUE(LoadBatchWorkloadCsv("/no/such.csv").status().IsIOError());
}

TEST_F(ModelIoTest, BatchWorkloadRoundTrip) {
  std::vector<CrowdsourcingTask> tasks;
  tasks.push_back(
      CrowdsourcingTask::FromThresholds({0.8, 0.9, 0.85}).ValueOrDie());
  tasks.push_back(CrowdsourcingTask::Homogeneous(5, 0.92).ValueOrDie());
  tasks.push_back(CrowdsourcingTask::FromThresholds({0.7}).ValueOrDie());
  ASSERT_TRUE(SaveBatchWorkloadCsv(tasks, path_).ok());
  auto loaded = LoadBatchWorkloadCsv(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), tasks.size());
  for (size_t k = 0; k < tasks.size(); ++k) {
    ASSERT_EQ((*loaded)[k].size(), tasks[k].size()) << "task " << k;
    for (size_t i = 0; i < tasks[k].size(); ++i) {
      EXPECT_NEAR((*loaded)[k].threshold(static_cast<TaskId>(i)),
                  tasks[k].threshold(static_cast<TaskId>(i)), 1e-9);
    }
  }
}

TEST_F(ModelIoTest, TimedWorkloadRoundTrip) {
  std::vector<TimedSubmission> submissions(3);
  submissions[0].arrival_ms = 0.0;
  submissions[0].requester = "alice";
  submissions[0].tasks.push_back(
      CrowdsourcingTask::FromThresholds({0.8, 0.9}).ValueOrDie());
  submissions[0].tasks.push_back(
      CrowdsourcingTask::Homogeneous(3, 0.92).ValueOrDie());
  submissions[1].arrival_ms = 2.5;
  submissions[1].requester = "bob";
  submissions[1].tasks.push_back(
      CrowdsourcingTask::FromThresholds({0.7}).ValueOrDie());
  // Same requester again later: a distinct submission (arrival_ms differs).
  submissions[2].arrival_ms = 10.0;
  submissions[2].requester = "alice";
  submissions[2].tasks.push_back(
      CrowdsourcingTask::FromThresholds({0.95, 0.6}).ValueOrDie());

  ASSERT_TRUE(SaveTimedWorkloadCsv(submissions, path_).ok());
  auto loaded = LoadTimedWorkloadCsv(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), submissions.size());
  for (size_t s = 0; s < submissions.size(); ++s) {
    SCOPED_TRACE("submission " + std::to_string(s));
    EXPECT_NEAR((*loaded)[s].arrival_ms, submissions[s].arrival_ms, 1e-9);
    EXPECT_EQ((*loaded)[s].requester, submissions[s].requester);
    ASSERT_EQ((*loaded)[s].tasks.size(), submissions[s].tasks.size());
    EXPECT_EQ((*loaded)[s].num_atomic_tasks(),
              submissions[s].num_atomic_tasks());
    for (size_t k = 0; k < submissions[s].tasks.size(); ++k) {
      EXPECT_EQ((*loaded)[s].tasks[k].thresholds(),
                submissions[s].tasks[k].thresholds());
    }
  }
}

TEST_F(ModelIoTest, TimedWorkloadSubmissionBoundaries) {
  // Consecutive rows with the same (arrival_ms, requester) are one
  // submission; a changed requester at the same time, or a later arrival,
  // starts a new one.
  {
    std::ofstream out(path_);
    out << "arrival_ms,requester,task,threshold\n"
           "0,a,0,0.9\n0,a,0,0.8\n0,a,1,0.7\n"
           "0,b,0,0.85\n"
           "3,a,0,0.9\n";
  }
  auto loaded = LoadTimedWorkloadCsv(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].requester, "a");
  EXPECT_EQ((*loaded)[0].tasks.size(), 2u);
  EXPECT_EQ((*loaded)[0].tasks[0].size(), 2u);
  EXPECT_EQ((*loaded)[1].requester, "b");
  EXPECT_EQ((*loaded)[1].tasks.size(), 1u);
  EXPECT_EQ((*loaded)[2].requester, "a");
  EXPECT_NEAR((*loaded)[2].arrival_ms, 3.0, 1e-12);
}

TEST_F(ModelIoTest, TimedWorkloadSaveRejectsAmbiguousNeighbours) {
  // Two submissions sharing (arrival_ms, requester) would merge on reload;
  // Save must refuse instead of silently corrupting the round trip.
  std::vector<TimedSubmission> submissions(2);
  submissions[0].arrival_ms = 1.0;
  submissions[0].requester = "alice";
  submissions[0].tasks.push_back(
      CrowdsourcingTask::FromThresholds({0.9}).ValueOrDie());
  submissions[1].arrival_ms = 1.0;
  submissions[1].requester = "alice";
  submissions[1].tasks.push_back(
      CrowdsourcingTask::FromThresholds({0.8}).ValueOrDie());
  Status st = SaveTimedWorkloadCsv(submissions, path_);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();

  submissions[1].requester = "bob";  // same time, different requester: fine
  EXPECT_TRUE(SaveTimedWorkloadCsv(submissions, path_).ok());
  auto loaded = LoadTimedWorkloadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(ModelIoTest, TimedWorkloadRejectsBadInput) {
  {
    std::ofstream out(path_);
    out << "arrival_ms,requester,task,threshold\n"
           "5,a,0,0.9\n1,b,0,0.9\n";  // arrivals must be non-decreasing
  }
  EXPECT_TRUE(LoadTimedWorkloadCsv(path_).status().IsInvalidArgument());
  {
    std::ofstream out(path_);
    out << "arrival_ms,requester,task,threshold\n"
           "0,a,1,0.9\n";  // task indices start at 0 within a submission
  }
  EXPECT_TRUE(LoadTimedWorkloadCsv(path_).status().IsInvalidArgument());
  {
    std::ofstream out(path_);
    out << "arrival_ms,requester,task,threshold\n"
           "0,a,0,0.9\n0,a,2,0.9\n";  // index gap
  }
  EXPECT_TRUE(LoadTimedWorkloadCsv(path_).status().IsInvalidArgument());
  {
    std::ofstream out(path_);
    out << "arrival_ms,requester,task,threshold\n"
           "0,a,0,0.9\n0,a,1,0.8\n0,a,0,0.9\n";  // backwards in submission
  }
  EXPECT_TRUE(LoadTimedWorkloadCsv(path_).status().IsInvalidArgument());
  {
    std::ofstream out(path_);
    out << "arrival_ms,requester,task,threshold\n";  // empty
  }
  EXPECT_TRUE(LoadTimedWorkloadCsv(path_).status().IsInvalidArgument());
  EXPECT_TRUE(LoadTimedWorkloadCsv("/no/such.csv").status().IsIOError());
}

TEST_F(ModelIoTest, BatchWorkloadRejectsBadIndexSequences) {
  {
    std::ofstream out(path_);
    out << "task,threshold\n1,0.9\n";  // must start at 0
  }
  EXPECT_TRUE(LoadBatchWorkloadCsv(path_).status().IsInvalidArgument());
  {
    std::ofstream out(path_);
    out << "task,threshold\n0,0.9\n2,0.9\n";  // gap
  }
  EXPECT_TRUE(LoadBatchWorkloadCsv(path_).status().IsInvalidArgument());
  {
    std::ofstream out(path_);
    out << "task,threshold\n0,0.9\n1,0.8\n0,0.9\n";  // goes backwards
  }
  EXPECT_TRUE(LoadBatchWorkloadCsv(path_).status().IsInvalidArgument());
  {
    std::ofstream out(path_);
    out << "task,threshold\n";  // no rows
  }
  EXPECT_TRUE(LoadBatchWorkloadCsv(path_).status().IsInvalidArgument());
}

}  // namespace
}  // namespace slade
