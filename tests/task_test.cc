#include "binmodel/task.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace slade {
namespace {

TEST(CrowdsourcingTaskTest, HomogeneousConstruction) {
  auto task = CrowdsourcingTask::Homogeneous(100, 0.9);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->size(), 100u);
  EXPECT_TRUE(task->is_homogeneous());
  EXPECT_DOUBLE_EQ(task->threshold(0), 0.9);
  EXPECT_DOUBLE_EQ(task->threshold(99), 0.9);
  EXPECT_NEAR(task->theta(0), LogReduction(0.9), 1e-15);
  EXPECT_DOUBLE_EQ(task->min_threshold(), 0.9);
  EXPECT_DOUBLE_EQ(task->max_threshold(), 0.9);
}

TEST(CrowdsourcingTaskTest, HeterogeneousConstruction) {
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.6, 0.7, 0.86});
  ASSERT_TRUE(task.ok());
  EXPECT_FALSE(task->is_homogeneous());
  EXPECT_DOUBLE_EQ(task->min_threshold(), 0.5);
  EXPECT_DOUBLE_EQ(task->max_threshold(), 0.86);
  // Example 10: theta values 0.69, 0.92, 1.20, 1.97.
  EXPECT_NEAR(task->theta(0), 0.6931, 1e-4);
  EXPECT_NEAR(task->theta(1), 0.9163, 1e-4);
  EXPECT_NEAR(task->theta(3), 1.9661, 1e-4);
}

TEST(CrowdsourcingTaskTest, EqualThresholdVectorIsHomogeneous) {
  auto task = CrowdsourcingTask::FromThresholds({0.8, 0.8, 0.8});
  ASSERT_TRUE(task.ok());
  EXPECT_TRUE(task->is_homogeneous());
}

TEST(CrowdsourcingTaskTest, RejectsEmptyTask) {
  EXPECT_TRUE(CrowdsourcingTask::Homogeneous(0, 0.9)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      CrowdsourcingTask::FromThresholds({}).status().IsInvalidArgument());
}

TEST(CrowdsourcingTaskTest, RejectsOutOfRangeThresholds) {
  EXPECT_FALSE(CrowdsourcingTask::Homogeneous(1, 0.0).ok());
  EXPECT_FALSE(CrowdsourcingTask::Homogeneous(1, 1.0).ok());
  EXPECT_FALSE(CrowdsourcingTask::Homogeneous(1, -0.5).ok());
  EXPECT_FALSE(CrowdsourcingTask::Homogeneous(1, 1.5).ok());
  EXPECT_FALSE(CrowdsourcingTask::FromThresholds({0.9, 1.0}).ok());
}

TEST(CrowdsourcingTaskTest, ToStringDescribesShape) {
  auto homo = CrowdsourcingTask::Homogeneous(10, 0.9);
  EXPECT_NE(homo->ToString().find("t=0.9"), std::string::npos);
  auto hetero = CrowdsourcingTask::FromThresholds({0.5, 0.9});
  EXPECT_NE(hetero->ToString().find("[0.5, 0.9]"), std::string::npos);
}

}  // namespace
}  // namespace slade
