#include "simulator/platform.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace slade {
namespace {

PlatformConfig NoSkillConfig(uint64_t seed = 1) {
  PlatformConfig config;
  config.model = JellyModel();
  config.seed = seed;
  config.skill_sigma = 0.0;  // makes Monte Carlo match the analytic model
  return config;
}

TEST(PlatformTest, RejectsInvalidPosts) {
  Platform platform(NoSkillConfig());
  EXPECT_FALSE(platform.PostBin(0, 0.1, {true}, 1).ok());
  EXPECT_FALSE(platform.PostBin(2, 0.1, {}, 1).ok());
  EXPECT_FALSE(platform.PostBin(2, 0.1, {true, false, true}, 1).ok());
  EXPECT_FALSE(platform.PostBin(2, 0.0, {true}, 1).ok());
  EXPECT_FALSE(platform.PostBin(2, 0.1, {true}, 0).ok());
}

TEST(PlatformTest, DeterministicForFixedSeed) {
  Platform a(NoSkillConfig(7)), b(NoSkillConfig(7));
  for (int i = 0; i < 20; ++i) {
    auto oa = a.PostBin(3, 0.1, {true, false, true}, 2);
    auto ob = b.PostBin(3, 0.1, {true, false, true}, 2);
    ASSERT_TRUE(oa.ok());
    ASSERT_TRUE(ob.ok());
    ASSERT_EQ(oa->assignments.size(), ob->assignments.size());
    for (size_t k = 0; k < oa->assignments.size(); ++k) {
      EXPECT_EQ(oa->assignments[k].answers, ob->assignments[k].answers);
    }
    EXPECT_DOUBLE_EQ(oa->completion_minutes, ob->completion_minutes);
  }
}

TEST(PlatformTest, EmpiricalConfidenceMatchesAnalyticModel) {
  Platform platform(NoSkillConfig(11));
  const uint32_t l = 10;
  const double cost = ModelBinCost(platform.config().model, l);
  const double expected = platform.ExpectedConfidence(l, cost);

  uint64_t total = 0, correct = 0;
  std::vector<bool> truth(l);
  for (uint32_t i = 0; i < l; ++i) truth[i] = (i % 2 == 0);
  for (int b = 0; b < 2000; ++b) {
    auto outcome = platform.PostBin(l, cost, truth, 1);
    ASSERT_TRUE(outcome.ok());
    for (uint32_t i = 0; i < l; ++i) {
      ++total;
      if (outcome->assignments[0].answers[i] == truth[i]) ++correct;
    }
  }
  const double empirical =
      static_cast<double>(correct) / static_cast<double>(total);
  EXPECT_NEAR(empirical, expected,
              4 * WilsonHalfWidth95(expected, total));
}

TEST(PlatformTest, UnderpaidBinsRunOvertime) {
  Platform platform(NoSkillConfig(13));
  const DatasetModel& model = platform.config().model;
  // Pay far below the per-task minimum wage: expected completion is way
  // past the timeout, so (nearly) every post is overtime.
  const uint32_t l = 20;
  const double cheap = model.min_wage * l * 0.2;
  int overtime = 0;
  for (int i = 0; i < 50; ++i) {
    auto outcome = platform.PostBin(l, cheap, std::vector<bool>(l, true),
                                    model.assignments_required);
    ASSERT_TRUE(outcome.ok());
    if (outcome->overtime) ++overtime;
  }
  EXPECT_GE(overtime, 45);

  // Generous pay: overtime should be rare.
  const double generous = model.min_wage * l * 3.0;
  overtime = 0;
  for (int i = 0; i < 50; ++i) {
    auto outcome = platform.PostBin(l, generous, std::vector<bool>(l, true),
                                    model.assignments_required);
    ASSERT_TRUE(outcome.ok());
    if (outcome->overtime) ++overtime;
  }
  EXPECT_LE(overtime, 5);
}

TEST(PlatformTest, AccountingTracksSpendAndPosts) {
  Platform platform(NoSkillConfig(17));
  ASSERT_TRUE(platform.PostBin(2, 0.1, {true, false}, 3).ok());
  ASSERT_TRUE(platform.PostBin(1, 0.05, {true}, 1).ok());
  EXPECT_EQ(platform.bins_posted(), 2u);
  EXPECT_NEAR(platform.total_spent(), 3 * 0.1 + 0.05, 1e-12);
}

TEST(PlatformTest, WorkerSkillSpreadsAccuracy) {
  // With skill_sigma > 0 individual workers differ; aggregate accuracy
  // stays in a sane band around the model value.
  PlatformConfig config = NoSkillConfig(19);
  config.skill_sigma = 0.5;
  Platform platform(config);
  const double cost = ModelBinCost(config.model, 5);
  uint64_t total = 0, correct = 0;
  for (int b = 0; b < 3000; ++b) {
    auto outcome = platform.PostBin(5, cost, {true, true, false, true,
                                              false}, 1);
    ASSERT_TRUE(outcome.ok());
    for (size_t i = 0; i < 5; ++i) {
      ++total;
      if (outcome->assignments[0].answers[i] ==
          std::vector<bool>({true, true, false, true, false})[i]) {
        ++correct;
      }
    }
  }
  const double empirical =
      static_cast<double>(correct) / static_cast<double>(total);
  const double analytic = platform.ExpectedConfidence(5, cost);
  // Lognormal skill inflates mean failure by exp(sigma^2/2) ~ 13%.
  EXPECT_NEAR(empirical, analytic, 0.03);
}

}  // namespace
}  // namespace slade
