// Integration tests across the whole stack: simulate the platform, probe
// and calibrate a bin profile, solve with every algorithm, validate, and
// execute the plans back on the platform -- the full life of a large-scale
// crowdsourcing task.

#include <gtest/gtest.h>

#include "binmodel/calibration.h"
#include "simulator/executor.h"
#include "simulator/probe_runner.h"
#include "solver/plan_validator.h"
#include "solver/solver.h"
#include "workload/workload.h"

namespace slade {
namespace {

TEST(EndToEndTest, ProbeCalibrateSolveExecute) {
  // 1. Stand up the platform.
  PlatformConfig config;
  config.model = JellyModel();
  config.seed = 2024;
  config.skill_sigma = 0.0;
  Platform platform(config);

  // 2. Probe it with ground-truth bins and calibrate a profile.
  ProbePlan probes;
  probes.cardinalities = {1, 2, 4, 8, 12, 16, 20};
  probes.bins_per_cardinality = 120;
  probes.assignments_per_bin = 3;
  auto observations = RunProbes(platform, probes);
  ASSERT_TRUE(observations.ok());
  auto profile =
      CalibrateProfile(*observations, 20, CalibrationMethod::kRegression);
  ASSERT_TRUE(profile.ok());

  // 3. Solve a 5000-task instance at t=0.9 on the calibrated profile.
  auto task = CrowdsourcingTask::Homogeneous(5000, 0.9);
  auto solver = MakeSolver(SolverKind::kOpq);
  auto plan = solver->Solve(*task, *profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, *profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible);

  // 4. Execute the plan on the same platform and measure recall.
  std::vector<bool> truth(5000);
  Xoshiro256 rng(5);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.3);
  }
  auto execution = ExecutePlan(platform, *plan, *profile, truth);
  ASSERT_TRUE(execution.ok());
  // Calibration error can push the realized reliability slightly below
  // target; it must land in the right neighbourhood.
  EXPECT_GE(execution->positive_recall, 0.87);
  EXPECT_NEAR(execution->total_cost, plan->TotalCost(*profile), 1e-9);
}

TEST(EndToEndTest, AllSolversProduceExecutablePlansOnSmicWorkload) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;
  auto workload = MakeHeterogeneousWorkload(DatasetKind::kSmic, 800, spec,
                                            15, 99);
  ASSERT_TRUE(workload.ok());

  PlatformConfig config;
  config.model = SmicModel();
  config.seed = 7;
  Platform platform(config);
  std::vector<bool> truth(800, true);

  for (SolverKind kind : {SolverKind::kGreedy, SolverKind::kOpqExtended,
                          SolverKind::kBaseline}) {
    auto solver = MakeSolver(kind);
    auto plan = solver->Solve(workload->task, workload->profile);
    ASSERT_TRUE(plan.ok()) << SolverKindName(kind);
    auto report = ValidatePlan(*plan, workload->task, workload->profile);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->feasible) << SolverKindName(kind);

    auto execution =
        ExecutePlan(platform, *plan, workload->profile, truth);
    ASSERT_TRUE(execution.ok()) << SolverKindName(kind);
    // SMIC thresholds ~N(0.9, 0.03): recall should land near 0.9+.
    EXPECT_GE(execution->positive_recall, 0.85) << SolverKindName(kind);
  }
}

TEST(EndToEndTest, CostOrderingMatchesThePaperOnDefaults) {
  // Section 7.1 conclusion: "OPQ-Based is both more effective and
  // efficient than the other two. Baseline is the least effective."
  // Check the cost ordering OPQ <= Greedy <= Baseline on a reduced-size
  // version of the default homogeneous workload.
  auto workload = MakeHomogeneousWorkload(DatasetKind::kJelly, 4000, 0.9,
                                          20);
  ASSERT_TRUE(workload.ok());
  double costs[3];
  int i = 0;
  for (SolverKind kind : {SolverKind::kOpq, SolverKind::kGreedy,
                          SolverKind::kBaseline}) {
    auto plan = MakeSolver(kind)->Solve(workload->task, workload->profile);
    ASSERT_TRUE(plan.ok());
    costs[i++] = plan->TotalCost(workload->profile);
  }
  EXPECT_LE(costs[0], costs[1] * 1.02);  // OPQ <= Greedy (2% tolerance)
  EXPECT_LE(costs[0], costs[2] * 1.02);  // OPQ <= Baseline
}

TEST(EndToEndTest, ReliabilityIsMonotoneInSpend) {
  // Economics sanity: raising the threshold raises both planned cost and
  // measured recall.
  const BinProfile profile = BuildProfile(JellyModel(), 20).ValueOrDie();
  auto solver = MakeSolver(SolverKind::kOpq);
  double prev_cost = 0.0;
  for (double t : {0.85, 0.9, 0.95, 0.99}) {
    auto task = CrowdsourcingTask::Homogeneous(2000, t);
    auto plan = solver->Solve(*task, profile);
    ASSERT_TRUE(plan.ok());
    const double cost = plan->TotalCost(profile);
    EXPECT_GE(cost, prev_cost - 1e-9) << "t=" << t;
    prev_cost = cost;
  }
}

}  // namespace
}  // namespace slade
