#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace slade {
namespace {

TEST(LogReductionTest, MatchesPaperValues) {
  // theta(0.95) = -ln(0.05) = 2.9957 (Example 5 initializes residuals to
  // 2.996); w(0.9) = 2.3026; w(0.8) = 1.6094.
  EXPECT_NEAR(LogReduction(0.95), 2.99573227, 1e-7);
  EXPECT_NEAR(LogReduction(0.9), 2.30258509, 1e-7);
  EXPECT_NEAR(LogReduction(0.85), 1.89711998, 1e-7);
  EXPECT_NEAR(LogReduction(0.8), 1.60943791, 1e-7);
}

TEST(LogReductionTest, RoundTripsWithInverse) {
  for (double p : {1e-9, 0.01, 0.5, 0.9, 0.99, 0.999999}) {
    EXPECT_NEAR(InverseLogReduction(LogReduction(p)), p, 1e-12);
  }
  for (double theta : {1e-9, 0.1, 1.0, 5.0, 20.0}) {
    // At theta=20 the probability is within 2e-9 of 1, so the round trip
    // loses ~e^theta * eps of absolute precision; scale tolerance.
    EXPECT_NEAR(LogReduction(InverseLogReduction(theta)), theta,
                1e-9 * std::exp(std::min(theta, 25.0)) + 1e-9);
  }
}

TEST(LogReductionTest, AccurateNearZeroAndOne) {
  // Near 0: -ln(1-p) ~ p. A naive -log(1-p) would lose precision.
  EXPECT_NEAR(LogReduction(1e-12), 1e-12, 1e-24);
  // Near 1: theta explodes but stays finite below 1.
  EXPECT_GT(LogReduction(1.0 - 1e-15), 30.0);
  EXPECT_TRUE(std::isinf(LogReduction(1.0)));
}

TEST(LogReductionTest, ReliabilityCompositionIsAdditive) {
  // Two bins of confidence 0.85: Rel = 1 - 0.15^2 = 0.9775 (Example 4).
  const double combined = InverseLogReduction(2 * LogReduction(0.85));
  EXPECT_NEAR(combined, 0.9775, 1e-12);
}

TEST(SaturatingLcmTest, SmallValuesExact) {
  EXPECT_EQ(SaturatingLcm(1, 1), 1u);
  EXPECT_EQ(SaturatingLcm(2, 3), 6u);
  EXPECT_EQ(SaturatingLcm(4, 6), 12u);
  EXPECT_EQ(SaturatingLcm(1, 7), 7u);
  EXPECT_EQ(SaturatingLcm(12, 12), 12u);
}

TEST(SaturatingLcmTest, PaperExampleCombination) {
  // Comb = {3 x b1, 2 x b2, 1 x b3}: lcm(1,2,3) = 6 (Example 6).
  uint64_t lcm = 1;
  for (uint64_t k : {1, 2, 3}) lcm = SaturatingLcm(lcm, k);
  EXPECT_EQ(lcm, 6u);
}

TEST(SaturatingLcmTest, CardinalitiesUpTo30StayExact) {
  // lcm(1..30) = 2329089562800, well below the cap.
  uint64_t lcm = 1;
  for (uint64_t k = 1; k <= 30; ++k) lcm = SaturatingLcm(lcm, k);
  EXPECT_EQ(lcm, UINT64_C(2329089562800));
}

TEST(SaturatingLcmTest, SaturatesAtCap) {
  const uint64_t cap = 1000;
  EXPECT_EQ(SaturatingLcm(999, 998, cap), cap);
  EXPECT_EQ(SaturatingLcm(0, 5, cap), 0u);
}

TEST(ApproxCompareTest, ToleranceBehaviour) {
  EXPECT_TRUE(ApproxEq(1.0, 1.0 + 0.5e-9));
  EXPECT_FALSE(ApproxEq(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(ApproxGe(1.0, 1.0 + 0.5e-9));
  EXPECT_TRUE(ApproxGe(2.0, 1.0));
  EXPECT_FALSE(ApproxGe(1.0, 1.1));
}

TEST(CeilDivTest, Values) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 5), 1u);
}

}  // namespace
}  // namespace slade
