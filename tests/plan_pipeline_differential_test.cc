// Randomized differential suite for the columnar plan pipeline.
//
// The contract under test: ColumnarPlan is a *representation* change, not a
// semantics change. At every layer that was migrated from the AoS
// DecompositionPlan -- the OPQ assignment loop, the batch engine's
// shard-merge, the splitter, and the streaming front end -- the columnar
// path must produce a placement-for-placement identical plan to the legacy
// AoS path, across pooled/isolated sharing, fairness on/off, 1/4/8 worker
// threads, and OPQ-cache pressure.
//
// The AoS oracle is the untouched scalar path: RunOpqAssignment into a
// DecompositionPlan at the solver layer, and SolveBatchSequential (which
// routes through the per-task AoS Solver::Solve) at the engine layer.

#include <cstdint>
#include <future>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "engine/decomposition_engine.h"
#include "engine/plan_splitter.h"
#include "engine/streaming_engine.h"
#include "solver/opq_solver.h"
#include "solver/plan_arena.h"
#include "solver/plan_validator.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace slade {
namespace {

constexpr uint64_t kSuiteSeed = 0xC01D'CAFEull;

// Plans don't expose operator==; compare the serialized placements.
std::string PlanSignature(const DecompositionPlan& plan) {
  std::string sig;
  for (const BinPlacement& p : plan.placements()) {
    sig += std::to_string(p.cardinality) + "x" + std::to_string(p.copies) +
           ":";
    for (TaskId id : p.tasks) sig += std::to_string(id) + ";";
    sig += "|";
  }
  return sig;
}

std::string PlanSignature(const ColumnarPlan& plan) {
  return PlanSignature(plan.ToPlan());
}

BinProfile RandomProfile(std::mt19937_64& rng) {
  const DatasetKind dataset =
      (rng() % 2 == 0) ? DatasetKind::kJelly : DatasetKind::kSmic;
  const uint32_t max_cardinality = 4 + static_cast<uint32_t>(rng() % 9);
  auto profile = BuildProfile(MakeModel(dataset), max_cardinality);
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  return std::move(profile).ValueOrDie();
}

ThresholdSpec RandomSpec(std::mt19937_64& rng) {
  ThresholdSpec spec;
  switch (rng() % 4) {
    case 0:
      spec.family = ThresholdFamily::kHomogeneous;
      spec.mu = 0.75 + 0.2 * (static_cast<double>(rng() % 100) / 100.0);
      break;
    case 1:
      spec.family = ThresholdFamily::kNormal;
      spec.mu = 0.9;
      spec.sigma = 0.03;
      break;
    case 2:
      spec.family = ThresholdFamily::kUniform;
      spec.mu = 0.85;
      spec.sigma = 0.1;
      break;
    default:
      spec.family = ThresholdFamily::kHeavyTail;
      break;
  }
  spec.clamp_lo = 0.6;
  spec.clamp_hi = 0.98;
  return spec;
}

CrowdsourcingTask RandomTask(const ThresholdSpec& spec, size_t n,
                             uint64_t seed) {
  auto thresholds = GenerateThresholds(spec, n, seed);
  EXPECT_TRUE(thresholds.ok()) << thresholds.status().ToString();
  auto task =
      CrowdsourcingTask::FromThresholds(std::move(thresholds).ValueOrDie());
  EXPECT_TRUE(task.ok()) << task.status().ToString();
  return std::move(task).ValueOrDie();
}

std::vector<CrowdsourcingTask> RandomBatch(std::mt19937_64& rng,
                                           const ThresholdSpec& spec) {
  const size_t num_tasks = 1 + rng() % 6;
  std::vector<CrowdsourcingTask> tasks;
  tasks.reserve(num_tasks);
  for (size_t k = 0; k < num_tasks; ++k) {
    tasks.push_back(RandomTask(spec, 1 + rng() % 30, rng()));
  }
  return tasks;
}

// --- Solver layer: Algorithm 3's loop, AoS vs columnar ----------------------

TEST(PlanPipelineDifferentialTest, OpqAssignmentColumnarMatchesAoS) {
  std::mt19937_64 rng(kSuiteSeed);
  for (int trial = 0; trial < 40; ++trial) {
    const BinProfile profile = RandomProfile(rng);
    const double t =
        0.6 + 0.38 * (static_cast<double>(rng() % 1000) / 1000.0);
    auto queue = BuildOpq(profile, t);
    ASSERT_TRUE(queue.ok()) << queue.status().ToString();

    // Global (non-contiguous, non-zero-based) ids, as the threshold-group
    // sharding of Algorithm 5 produces them.
    const size_t n = 1 + rng() % 200;
    const TaskId base = static_cast<TaskId>(rng() % 10'000);
    std::vector<TaskId> ids;
    ids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(base + static_cast<TaskId>(3 * i));
    }

    DecompositionPlan aos;
    ASSERT_TRUE(RunOpqAssignment(*queue, ids, profile, &aos).ok());
    ColumnarPlan columnar;
    ASSERT_TRUE(RunOpqAssignment(*queue, ids, profile, &columnar).ok());
    ASSERT_EQ(PlanSignature(columnar), PlanSignature(aos))
        << "trial " << trial << " t=" << t << " n=" << n;
    EXPECT_NEAR(columnar.TotalCost(profile), aos.TotalCost(profile), 1e-12);
    EXPECT_EQ(columnar.TotalBinInstances(), aos.TotalBinInstances());
  }
}

// --- Engine layer: SolveBatch merge, across sharing and thread counts -------

TEST(PlanPipelineDifferentialTest, BatchMergeMatchesAoSReferenceAcrossThreads) {
  std::mt19937_64 rng(kSuiteSeed ^ 0x1);
  for (int trial = 0; trial < 12; ++trial) {
    const BinProfile profile = RandomProfile(rng);
    const ThresholdSpec spec = RandomSpec(rng);
    const std::vector<CrowdsourcingTask> tasks = RandomBatch(rng, spec);

    for (BatchSharing sharing :
         {BatchSharing::kIsolated, BatchSharing::kPooled}) {
      std::string reference_signature;
      double reference_cost = 0.0;
      for (uint32_t threads : {1u, 4u, 8u}) {
        EngineOptions options;
        options.sharing = sharing;
        options.num_threads = threads;
        DecompositionEngine engine(options);
        auto report = engine.SolveBatch(tasks, profile);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        const std::string signature = PlanSignature(report->plan);
        if (reference_signature.empty()) {
          reference_signature = signature;
          reference_cost = report->total_cost;
        } else {
          // The columnar shard-merge must be deterministic in thread count.
          EXPECT_EQ(signature, reference_signature)
              << "trial " << trial << " threads " << threads;
          EXPECT_DOUBLE_EQ(report->total_cost, reference_cost);
        }
        // Every slice of the merged columnar plan validates against its
        // requester's thresholds through the columnar validator.
        std::vector<RequesterSpan> spans;
        for (size_t k = 0; k < tasks.size(); ++k) {
          spans.push_back({"r" + std::to_string(k), k, 1});
        }
        auto slices = PlanSplitter::SplitBySpans(*report, profile, spans);
        ASSERT_TRUE(slices.ok()) << slices.status().ToString();
        for (size_t k = 0; k < tasks.size(); ++k) {
          auto validation = ValidatePlan((*slices)[k].plan, tasks[k], profile);
          ASSERT_TRUE(validation.ok()) << validation.status().ToString();
          EXPECT_TRUE(validation->feasible)
              << "trial " << trial << " task " << k << " margin "
              << validation->worst_log_margin;
        }
      }
      if (sharing == BatchSharing::kIsolated) {
        // Isolated batches are pinned to the legacy AoS path: the per-task
        // scalar solver merged with AppendPlan.
        auto sequential = SolveBatchSequential(tasks, profile);
        ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
        EXPECT_EQ(reference_signature, PlanSignature(sequential->plan))
            << "trial " << trial;
      }
    }
  }
}

// --- Streaming layer: fairness on/off, cache pressure ----------------------

TEST(PlanPipelineDifferentialTest, StreamingSlicesMatchSequentialReference) {
  std::mt19937_64 rng(kSuiteSeed ^ 0x2);
  for (int trial = 0; trial < 8; ++trial) {
    const BinProfile profile = RandomProfile(rng);
    const ThresholdSpec spec = RandomSpec(rng);

    struct Submission {
      std::string requester;
      std::vector<CrowdsourcingTask> tasks;
    };
    const size_t num_submissions = 2 + rng() % 8;
    std::vector<Submission> submissions;
    for (size_t s = 0; s < num_submissions; ++s) {
      Submission submission;
      submission.requester = "tenant" + std::to_string(rng() % 3);
      const size_t num_tasks = 1 + rng() % 3;
      for (size_t k = 0; k < num_tasks; ++k) {
        submission.tasks.push_back(RandomTask(spec, 1 + rng() % 20, rng()));
      }
      submissions.push_back(std::move(submission));
    }

    // Per-submission AoS reference: the sequential scalar path.
    std::vector<std::string> reference;
    for (const Submission& submission : submissions) {
      auto sequential = SolveBatchSequential(submission.tasks, profile);
      ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
      reference.push_back(PlanSignature(sequential->plan));
    }

    const bool fairness = (trial % 2 == 0);
    for (uint32_t threads : {1u, 4u, 8u}) {
      for (uint64_t cache_entries : {uint64_t{0}, uint64_t{1}}) {
        StreamingOptions options;
        options.sharing = BatchSharing::kIsolated;
        options.num_threads = threads;
        options.max_pending_submissions = 1 + rng() % 4;
        options.resources.cache_max_entries = cache_entries;
        options.fairness.enabled = fairness;
        options.fairness.quantum_atomic_tasks = 8;
        StreamingEngine engine(profile, options);

        std::vector<std::future<Result<RequesterPlan>>> futures;
        for (const Submission& submission : submissions) {
          futures.push_back(
              engine.Submit(submission.requester, submission.tasks));
        }
        engine.Drain();
        for (size_t s = 0; s < submissions.size(); ++s) {
          auto slice = futures[s].get();
          ASSERT_TRUE(slice.ok()) << slice.status().ToString();
          EXPECT_EQ(PlanSignature(slice->plan), reference[s])
              << "trial " << trial << " submission " << s << " threads "
              << threads << " cache_entries " << cache_entries
              << " fairness " << fairness;
        }
      }
    }
  }
}

}  // namespace
}  // namespace slade
