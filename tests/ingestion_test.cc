// FileReplaySource semantics: deterministic order and ids, loop-seam
// arrival arithmetic, cancelation of a paced wait, and Open() failure
// modes. Everything except the cancel test runs unpaced (speedup = 0) so
// the suite is timing-independent.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "durability/ingestion.h"
#include "io/model_io.h"

namespace slade {
namespace {

namespace fs = std::filesystem;

class IngestionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("ingestion_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Writes the standard three-submission tape and returns its path.
  /// Arrivals 0 / 5 / 12 ms, requesters alice / bob / alice.
  std::string WriteTape() {
    std::vector<TimedSubmission> tape;
    tape.push_back(Timed(0.0, "alice", {0.9}));
    tape.push_back(Timed(5.0, "bob", {0.8, 0.7}));
    tape.push_back(Timed(12.0, "alice", {0.85}));
    const std::string path = (dir_ / "tape.csv").string();
    EXPECT_TRUE(SaveTimedWorkloadCsv(tape, path).ok());
    return path;
  }

  static TimedSubmission Timed(double arrival_ms, std::string requester,
                               std::vector<double> thresholds) {
    TimedSubmission submission;
    submission.arrival_ms = arrival_ms;
    submission.requester = std::move(requester);
    auto task = CrowdsourcingTask::FromThresholds(std::move(thresholds));
    EXPECT_TRUE(task.ok());
    submission.tasks.push_back(std::move(task).ValueOrDie());
    return submission;
  }

  /// Drains `count` submissions, asserting each Next succeeds.
  static std::vector<TimedSubmission> Drain(FileReplaySource* source,
                                            size_t count) {
    std::vector<TimedSubmission> out;
    for (size_t i = 0; i < count; ++i) {
      TimedSubmission submission;
      auto next = source->Next(&submission);
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      EXPECT_TRUE(*next) << "stream ended early at " << i;
      out.push_back(std::move(submission));
    }
    return out;
  }

  fs::path dir_;
};

TEST_F(IngestionTest, DeliversTheTapeInOrderWithDeterministicIds) {
  FileReplayOptions options;
  options.path = WriteTape();
  options.speedup = 0;
  options.submission_id_prefix = "rep";
  auto source = FileReplaySource::Open(options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->tape_size(), 3u);

  const auto got = Drain(source->get(), 3);
  EXPECT_EQ(got[0].submission_id, "rep-0");
  EXPECT_EQ(got[1].submission_id, "rep-1");
  EXPECT_EQ(got[2].submission_id, "rep-2");
  EXPECT_EQ(got[0].requester, "alice");
  EXPECT_EQ(got[1].requester, "bob");
  EXPECT_EQ(got[2].requester, "alice");
  EXPECT_DOUBLE_EQ(got[1].arrival_ms, 5.0);
  ASSERT_EQ(got[1].tasks.size(), 1u);
  EXPECT_EQ(got[1].tasks[0].thresholds(),
            std::vector<double>({0.8, 0.7}));

  TimedSubmission extra;
  auto next = (*source)->Next(&extra);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);  // exhausted
  EXPECT_EQ((*source)->delivered(), 3u);
}

TEST_F(IngestionTest, EmptyPrefixMeansAnonymousSubmissions) {
  FileReplayOptions options;
  options.path = WriteTape();
  options.speedup = 0;
  auto source = FileReplaySource::Open(options);
  ASSERT_TRUE(source.ok());
  const auto got = Drain(source->get(), 3);
  for (const TimedSubmission& submission : got) {
    EXPECT_TRUE(submission.submission_id.empty());
  }
}

TEST_F(IngestionTest, LoopSeamShiftsArrivalsAndKeepsIdsCounting) {
  FileReplayOptions options;
  options.path = WriteTape();
  options.speedup = 0;
  options.loop_count = 2;
  options.submission_id_prefix = "rep";
  auto source = FileReplaySource::Open(options);
  ASSERT_TRUE(source.ok());

  const auto got = Drain(source->get(), 6);
  // Second pass: ids keep counting, arrivals shift by the tape span
  // (12 ms) so pacing would stay continuous across the seam.
  EXPECT_EQ(got[3].submission_id, "rep-3");
  EXPECT_EQ(got[5].submission_id, "rep-5");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i + 3].requester, got[i].requester);
    EXPECT_DOUBLE_EQ(got[i + 3].arrival_ms, got[i].arrival_ms + 12.0);
  }
  TimedSubmission extra;
  auto next = (*source)->Next(&extra);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
}

TEST_F(IngestionTest, LoopForeverRunsUntilCancel) {
  FileReplayOptions options;
  options.path = WriteTape();
  options.speedup = 0;
  options.loop_count = 0;  // forever
  options.submission_id_prefix = "rep";
  auto source = FileReplaySource::Open(options);
  ASSERT_TRUE(source.ok());

  const auto got = Drain(source->get(), 10);  // > 3 full passes
  EXPECT_EQ(got[9].submission_id, "rep-9");
  (*source)->Cancel();
  TimedSubmission extra;
  auto next = (*source)->Next(&extra);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_EQ((*source)->delivered(), 10u);
}

TEST_F(IngestionTest, IdenticalOptionsReplayIdentically) {
  FileReplayOptions options;
  options.path = WriteTape();
  options.speedup = 0;
  options.loop_count = 2;
  options.submission_id_prefix = "rep";
  auto first = FileReplaySource::Open(options);
  auto second = FileReplaySource::Open(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const auto a = Drain(first->get(), 6);
  const auto b = Drain(second->get(), 6);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submission_id, b[i].submission_id);
    EXPECT_EQ(a[i].requester, b[i].requester);
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
  }
}

TEST_F(IngestionTest, CancelUnblocksAPacedWait) {
  // A tape whose second submission is due a minute out, replayed at
  // recorded speed: the second Next() parks in the paced wait until
  // Cancel pulls it out.
  std::vector<TimedSubmission> tape;
  tape.push_back(Timed(0.0, "alice", {0.9}));
  tape.push_back(Timed(60'000.0, "bob", {0.8}));
  const std::string path = (dir_ / "slow.csv").string();
  ASSERT_TRUE(SaveTimedWorkloadCsv(tape, path).ok());

  FileReplayOptions options;
  options.path = path;
  options.speedup = 1.0;
  auto source = FileReplaySource::Open(options);
  ASSERT_TRUE(source.ok());

  TimedSubmission first;
  auto next = (*source)->Next(&first);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);

  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    TimedSubmission blocked;
    auto result = (*source)->Next(&blocked);
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(*result);  // canceled, not delivered
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());  // still parked on the 60 s arrival
  (*source)->Cancel();
  consumer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ((*source)->delivered(), 1u);
}

TEST_F(IngestionTest, OpenRejectsBadInputs) {
  FileReplayOptions options;
  options.path = (dir_ / "missing.csv").string();
  EXPECT_FALSE(FileReplaySource::Open(options).ok());

  options.path = WriteTape();
  options.speedup = -1.0;
  EXPECT_FALSE(FileReplaySource::Open(options).ok());

  // A header-only (zero-submission) CSV is rejected by the workload
  // loader, so it can never reach the replay loop.
  const std::string empty_path = (dir_ / "empty.csv").string();
  {
    std::ofstream out(empty_path);
    out << "arrival_ms,requester,task,threshold\n";
  }
  FileReplayOptions empty;
  empty.path = empty_path;
  empty.speedup = 0;
  EXPECT_FALSE(FileReplaySource::Open(empty).ok());
  empty.loop_count = 0;
  EXPECT_FALSE(FileReplaySource::Open(empty).ok());
}

}  // namespace
}  // namespace slade
