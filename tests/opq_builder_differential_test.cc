// Differential validation of the production iterative OPQ builder against
// the recursive reference enumerator it replaced: element-for-element
// identical queues and identical build statistics on randomized
// (profile, threshold) pairs, in both pruning modes; unified node/budget
// accounting; and survival of adversarially deep profiles that overflow
// the reference's call stack.

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "solver/opq_builder.h"

namespace slade {
namespace {

BinProfile RandomProfile(uint32_t m, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<TaskBin> bins;
  double confidence = rng.NextDouble(0.8, 0.95);
  double cost = rng.NextDouble(0.05, 0.2);
  for (uint32_t l = 1; l <= m; ++l) {
    bins.push_back({l, confidence, cost});
    confidence = std::max(0.55, confidence - rng.NextDouble(0.0, 0.08));
    cost += rng.NextDouble(0.005, 0.08);
  }
  return BinProfile::Create(std::move(bins)).ValueOrDie();
}

// The acceptance bar: same size, and per element the same LCM, the same
// unit cost (bit-identical: both builders accumulate the same additions in
// the same order), and the same parts (counts per cardinality).
void ExpectIdentical(const OptimalPriorityQueue& fast,
                     const OptimalPriorityQueue& reference,
                     const std::string& label) {
  ASSERT_EQ(fast.size(), reference.size()) << label;
  for (size_t i = 0; i < fast.size(); ++i) {
    const Combination& a = fast.element(i);
    const Combination& b = reference.element(i);
    EXPECT_EQ(a.lcm(), b.lcm()) << label << " element " << i;
    EXPECT_EQ(a.unit_cost(), b.unit_cost()) << label << " element " << i;
    EXPECT_EQ(a.parts(), b.parts()) << label << " element " << i;
  }
  // Condition 1 + 2 of Definition 4 on the production queue: LCM strictly
  // descending, unit cost strictly ascending.
  for (size_t i = 1; i < fast.size(); ++i) {
    EXPECT_GT(fast.element(i - 1).lcm(), fast.element(i).lcm()) << label;
    EXPECT_LT(fast.element(i - 1).unit_cost(), fast.element(i).unit_cost())
        << label;
  }
}

TEST(OpqBuilderDifferentialTest, MatchesReferenceOnRandomizedPairs) {
  // >= 100 randomized (profile, threshold) pairs, each checked in both
  // pruning modes (the pruning-disabled ablation must agree too).
  Xoshiro256 rng(0x09d1ff);
  int pairs = 0;
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    const uint32_t m = static_cast<uint32_t>(rng.NextInt(1, 10));
    const BinProfile profile = RandomProfile(m, seed * 7919);
    const double t = rng.NextDouble(0.82, 0.995);
    ++pairs;
    for (bool pruning : {true, false}) {
      OpqBuildOptions options;
      options.enable_partial_pruning = pruning;
      OpqBuildStats fast_stats, ref_stats;
      auto fast = BuildOpq(profile, t, options, &fast_stats);
      auto reference = BuildOpqReference(profile, t, options, &ref_stats);
      ASSERT_TRUE(fast.ok()) << fast.status().ToString();
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      const std::string label = "seed=" + std::to_string(seed) +
                                " m=" + std::to_string(m) +
                                " t=" + std::to_string(t) +
                                (pruning ? " pruned" : " full");
      ExpectIdentical(*fast, *reference, label);
      // The enumerations are step-for-step equivalent, so every counter
      // must agree exactly, not just the queues.
      EXPECT_EQ(fast_stats.nodes_visited, ref_stats.nodes_visited) << label;
      EXPECT_EQ(fast_stats.nodes_pruned_dominated,
                ref_stats.nodes_pruned_dominated)
          << label;
      EXPECT_EQ(fast_stats.insertions, ref_stats.insertions) << label;
    }
  }
  EXPECT_GE(pairs, 100);
}

TEST(OpqBuilderDifferentialTest, PruningAblationIsIdenticalOutput) {
  // Pruning changes nodes visited, never the queue.
  const BinProfile profile = RandomProfile(8, 42);
  OpqBuildOptions pruned, full;
  full.enable_partial_pruning = false;
  OpqBuildStats pruned_stats, full_stats;
  auto a = BuildOpq(profile, 0.97, pruned, &pruned_stats);
  auto b = BuildOpq(profile, 0.97, full, &full_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdentical(*a, *b, "pruning ablation");
  EXPECT_LT(pruned_stats.nodes_visited, full_stats.nodes_visited);
}

TEST(OpqBuilderDifferentialTest, BudgetExhaustionAgreesWithNodesVisited) {
  // The satellite fix: nodes_visited is the budget counter. On exhaustion
  // both builders report node_budget + 1 (the visit that tripped it), for
  // any stats pointer state.
  // The first DFS level alone visits m = 12 nodes, so a budget of 10 is
  // guaranteed to trip on any enumeration order.
  const BinProfile profile = RandomProfile(12, 7);
  OpqBuildOptions options;
  options.node_budget = 10;
  for (auto* build : {&BuildOpq, &BuildOpqReference}) {
    OpqBuildStats stats;
    auto result = (*build)(profile, 0.99, options, &stats);
    ASSERT_TRUE(result.status().IsResourceExhausted())
        << result.status().ToString();
    EXPECT_EQ(stats.nodes_visited, options.node_budget + 1);
    // And with no stats requested the build still fails identically.
    EXPECT_TRUE((*build)(profile, 0.99, options, nullptr)
                    .status()
                    .IsResourceExhausted());
  }
}

TEST(OpqBuilderDifferentialTest, SucceedingBuildsReportExactNodeCounts) {
  // A budget just above the need changes nothing; nodes_visited is exact.
  const BinProfile profile = BinProfile::PaperExample();
  OpqBuildStats stats;
  ASSERT_TRUE(BuildOpq(profile, 0.95, {}, &stats).ok());
  OpqBuildOptions tight;
  tight.node_budget = stats.nodes_visited;
  OpqBuildStats tight_stats;
  ASSERT_TRUE(BuildOpq(profile, 0.95, tight, &tight_stats).ok());
  EXPECT_EQ(tight_stats.nodes_visited, stats.nodes_visited);
  tight.node_budget = stats.nodes_visited - 1;
  EXPECT_TRUE(
      BuildOpq(profile, 0.95, tight, nullptr).status().IsResourceExhausted());
}

TEST(OpqBuilderDifferentialTest, MatchesReferenceBeyondGcdTableBound) {
  // Profiles with m > 255 take the builder's SaturatingLcm fallback (the
  // uint8_t gcd table cannot hold their gcd values); the queues must still
  // match the reference exactly.
  std::vector<TaskBin> bins;
  double cost = 0.05;
  for (uint32_t l = 1; l <= 300; ++l) {
    bins.push_back({l, 0.9, cost});
    cost += 0.01;
  }
  const BinProfile profile = BinProfile::Create(std::move(bins)).ValueOrDie();
  OpqBuildStats fast_stats, ref_stats;
  auto fast = BuildOpq(profile, 0.95, {}, &fast_stats);
  auto reference = BuildOpqReference(profile, 0.95, {}, &ref_stats);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(reference.ok());
  ExpectIdentical(*fast, *reference, "m=300");
  EXPECT_EQ(fast_stats.nodes_visited, ref_stats.nodes_visited);
}

TEST(OpqBuilderDifferentialTest, SurvivesAdversariallyDeepProfiles) {
  // A near-zero log-weight bin forces a combination of ~2.3 million copies
  // of b1 before the threshold is met: one DFS path 2.3M frames deep. The
  // recursive reference enumerator would exhaust the call stack here (one
  // Cand copy plus frame per level); the iterative builder just grows its
  // explicit frame vector.
  std::vector<TaskBin> bins = {{1, 1e-6, 0.01}};
  const BinProfile profile = BinProfile::Create(std::move(bins)).ValueOrDie();
  OpqBuildStats stats;
  auto queue = BuildOpq(profile, 0.9, {}, &stats);
  ASSERT_TRUE(queue.ok()) << queue.status().ToString();
  ASSERT_EQ(queue->size(), 1u);
  const Combination& only = queue->element(0);
  EXPECT_EQ(only.lcm(), 1u);
  ASSERT_EQ(only.parts().size(), 1u);
  const double w = profile.bin(1).log_weight();
  const uint32_t copies = only.parts()[0].second;
  EXPECT_GT(copies, 2'000'000u);
  EXPECT_GE(static_cast<double>(copies) * w, queue->theta() - 1e-9);
  EXPECT_GT(stats.nodes_visited, 2'000'000u);
}

TEST(OpqBuilderDifferentialTest, EstimatedBytesScalesWithElementsAndParts) {
  // Regression guard for OpqCache byte charging: EstimatedBytes must grow
  // with both the number of queue elements and the parts they carry, and
  // never report less than the element storage itself.
  // Table 5 (t=0.86) yields one element; Table 3 (t=0.95) yields three.
  const BinProfile profile = BinProfile::PaperExample();
  auto small = BuildOpq(profile, 0.86);
  auto large = BuildOpq(profile, 0.95);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  ASSERT_GT(large->size(), small->size());
  EXPECT_GT(large->EstimatedBytes(), small->EstimatedBytes());
  EXPECT_GE(small->EstimatedBytes(),
            sizeof(OptimalPriorityQueue) +
                small->size() * sizeof(Combination));

  // Same element count, more parts per element => strictly more bytes.
  auto one_part =
      Combination::Create({{1, 2}}, profile).ValueOrDie();
  auto three_parts =
      Combination::Create({{1, 3}, {2, 2}, {3, 1}}, profile).ValueOrDie();
  OptimalPriorityQueue thin({one_part}, 1.0);
  OptimalPriorityQueue wide({three_parts}, 1.0);
  EXPECT_GT(wide.EstimatedBytes(), thin.EstimatedBytes());
  const size_t parts_bytes =
      (3 - 1) * sizeof(Combination::Parts::value_type);
  EXPECT_GE(wide.EstimatedBytes(), thin.EstimatedBytes() + parts_bytes);
}

}  // namespace
}  // namespace slade
