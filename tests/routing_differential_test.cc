// Randomized differential suite for registry-routed streaming admission.
//
// The contract under test: routing is a *transparent* layer over the
// streaming engine. With exactly one registered platform, registry-routed
// serving must be placement-for-placement and bill-for-bill identical to
// the plain single-profile StreamingEngine across flush policies, fairness
// on/off and 1/4/8 worker threads -- the router may pick the platform, but
// it must never change what gets solved or what it costs. With N platforms
// registered under identical profiles, the total billed cost must equal
// the single-platform bill (the router only relabels, it never re-prices).
//
// Every delivered slice must also carry its serving (platform, epoch), and
// the registry's routed/billed counters must reconcile with the workload.

#include <cstdint>
#include <future>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/decomposition_engine.h"
#include "engine/plan_splitter.h"
#include "engine/profile_registry.h"
#include "engine/streaming_engine.h"
#include "solver/plan_validator.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace slade {
namespace {

std::string PlanSignature(const DecompositionPlan& plan) {
  std::string sig;
  for (const BinPlacement& p : plan.placements()) {
    sig += std::to_string(p.cardinality) + "x" + std::to_string(p.copies) +
           ":";
    for (TaskId id : p.tasks) sig += std::to_string(id) + ";";
    sig += "|";
  }
  return sig;
}

std::string PlanSignature(const ColumnarPlan& plan) {
  return PlanSignature(plan.ToPlan());
}

struct Submission {
  std::string requester;
  std::vector<CrowdsourcingTask> tasks;

  size_t num_atomic() const {
    size_t n = 0;
    for (const CrowdsourcingTask& t : tasks) n += t.size();
    return n;
  }
};

struct RandomWorkload {
  BinProfile profile;
  std::vector<Submission> submissions;
};

// Same generator shape as streaming_differential_test so the two suites
// probe comparable workload space.
RandomWorkload MakeRandomWorkload(uint64_t seed) {
  std::mt19937_64 rng(seed);

  const DatasetKind dataset =
      (rng() % 2 == 0) ? DatasetKind::kJelly : DatasetKind::kSmic;
  const uint32_t max_cardinality = 4 + static_cast<uint32_t>(rng() % 9);
  auto profile = BuildProfile(MakeModel(dataset), max_cardinality);
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();

  ThresholdSpec spec;
  switch (rng() % 4) {
    case 0:
      spec.family = ThresholdFamily::kHomogeneous;
      spec.mu = 0.75 + 0.2 * (static_cast<double>(rng() % 100) / 100.0);
      break;
    case 1:
      spec.family = ThresholdFamily::kNormal;
      spec.mu = 0.9;
      spec.sigma = 0.03;
      break;
    case 2:
      spec.family = ThresholdFamily::kUniform;
      spec.mu = 0.85;
      spec.sigma = 0.1;
      break;
    default:
      spec.family = ThresholdFamily::kHeavyTail;
      break;
  }
  spec.clamp_lo = 0.6;
  spec.clamp_hi = 0.98;

  const size_t num_requesters = 1 + rng() % 5;
  const size_t num_submissions = 2 + rng() % 11;
  RandomWorkload workload{std::move(profile).ValueOrDie(), {}};
  for (size_t s = 0; s < num_submissions; ++s) {
    Submission submission;
    submission.requester = "r" + std::to_string(rng() % num_requesters);
    const size_t num_tasks = 1 + rng() % 3;
    for (size_t k = 0; k < num_tasks; ++k) {
      const size_t n = 1 + rng() % 30;
      auto thresholds = GenerateThresholds(spec, n, rng());
      EXPECT_TRUE(thresholds.ok()) << thresholds.status().ToString();
      auto task =
          CrowdsourcingTask::FromThresholds(std::move(thresholds).ValueOrDie());
      EXPECT_TRUE(task.ok()) << task.status().ToString();
      submission.tasks.push_back(std::move(task).ValueOrDie());
    }
    workload.submissions.push_back(std::move(submission));
  }
  return workload;
}

StreamingOptions PolicyOf(size_t index, uint32_t threads,
                          BatchSharing sharing) {
  StreamingOptions options;
  options.max_delay_seconds = 3600.0;
  options.num_threads = threads;
  options.sharing = sharing;
  switch (index % 4) {
    case 0:
      options.max_pending_submissions = 1;
      break;
    case 1:
      options.max_pending_submissions = 1u << 20;
      options.max_pending_atomic_tasks = 1u << 20;
      break;
    case 2:
      options.max_pending_submissions = 1u << 20;
      options.max_pending_atomic_tasks = 48;
      break;
    default:
      options.max_pending_submissions = 3;
      break;
  }
  return options;
}

struct StreamResult {
  /// Per-requester reassembled plan + summed cost, in admission order.
  std::map<std::string, ColumnarPlan> plans;
  std::map<std::string, double> costs;
  double billed = 0.0;
  /// Serving platform of every delivered slice, in submission order.
  std::vector<std::string> platforms;
  std::vector<uint64_t> epochs;
};

/// Streams the workload through `engine` and reassembles per requester.
StreamResult StreamAndReassemble(const RandomWorkload& workload,
                                 StreamingEngine& engine) {
  std::vector<std::future<Result<RequesterPlan>>> futures;
  futures.reserve(workload.submissions.size());
  for (const Submission& submission : workload.submissions) {
    futures.push_back(engine.Submit(submission.requester, submission.tasks));
  }
  engine.Drain();

  StreamResult result;
  std::map<std::string, size_t> offsets;
  for (size_t i = 0; i < futures.size(); ++i) {
    const Submission& submission = workload.submissions[i];
    auto slice = futures[i].get();
    EXPECT_TRUE(slice.ok()) << slice.status().ToString();
    if (!slice.ok()) continue;
    EXPECT_EQ(slice->requester_id, submission.requester);
    size_t& offset = offsets[submission.requester];
    result.plans[submission.requester].AppendRange(
        slice->plan, 0, slice->plan.num_placements(),
        static_cast<int64_t>(offset));
    offset += submission.num_atomic();
    result.costs[submission.requester] += slice->cost;
    result.billed += slice->cost;
    result.platforms.push_back(slice->platform);
    result.epochs.push_back(slice->epoch);
  }
  return result;
}

constexpr uint64_t kSuiteSeed = 0x0f'0a7e'd0'105eULL;

TEST(RoutingDifferentialTest, SinglePlatformIdenticalToUnroutedEngine) {
  // One registered platform: the router has no choice to make, so routed
  // serving must be indistinguishable from the plain engine -- identical
  // placements, identical bill -- across flush policies, fairness on/off
  // and thread counts. Slices must carry the serving (platform, epoch).
  constexpr size_t kWorkloads = 40;
  const uint32_t thread_counts[] = {1, 4, 8};
  for (size_t w = 0; w < kWorkloads; ++w) {
    SCOPED_TRACE("workload " + std::to_string(w));
    RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + w);

    StreamingOptions options =
        PolicyOf(w, thread_counts[w % 3], BatchSharing::kIsolated);
    options.fairness.enabled = (w % 2 == 1);

    StreamingEngine plain(workload.profile, options);
    StreamResult baseline = StreamAndReassemble(workload, plain);

    for (RoutingPolicy policy :
         {RoutingPolicy::kCheapest, RoutingPolicy::kStickyRequester}) {
      SCOPED_TRACE(std::string("policy ") + RoutingPolicyName(policy));
      ProfileRegistry registry;
      ASSERT_TRUE(
          registry.Register("solo", BinProfile(workload.profile)).ok());
      StreamingOptions routed_options = options;
      routed_options.registry = &registry;
      routed_options.routing = policy;
      StreamingEngine routed(workload.profile, routed_options);
      StreamResult routed_result = StreamAndReassemble(workload, routed);

      ASSERT_EQ(routed_result.plans.size(), baseline.plans.size());
      for (const auto& [requester, plan] : baseline.plans) {
        SCOPED_TRACE("requester " + requester);
        auto it = routed_result.plans.find(requester);
        ASSERT_NE(it, routed_result.plans.end());
        EXPECT_EQ(PlanSignature(it->second), PlanSignature(plan));
        EXPECT_NEAR(routed_result.costs[requester],
                    baseline.costs[requester],
                    1e-9 + 1e-9 * baseline.costs[requester]);
      }
      EXPECT_NEAR(routed_result.billed, baseline.billed,
                  1e-9 + 1e-9 * baseline.billed);
      for (size_t i = 0; i < routed_result.platforms.size(); ++i) {
        EXPECT_EQ(routed_result.platforms[i], "solo");
        EXPECT_EQ(routed_result.epochs[i], 1u);
      }
      // Unrouted slices carry no platform metadata.
      for (const std::string& platform : baseline.platforms) {
        EXPECT_TRUE(platform.empty());
      }

      // Registry counters reconcile with the workload.
      auto stats = registry.stats();
      ASSERT_EQ(stats.size(), 1u);
      EXPECT_EQ(stats[0].platform_id, "solo");
      EXPECT_EQ(stats[0].routed_submissions, workload.submissions.size());
      uint64_t tasks = 0, atomic = 0;
      for (const Submission& s : workload.submissions) {
        tasks += s.tasks.size();
        atomic += s.num_atomic();
      }
      EXPECT_EQ(stats[0].routed_tasks, tasks);
      EXPECT_EQ(stats[0].routed_atomic_tasks, atomic);
      EXPECT_NEAR(stats[0].billed_cost, baseline.billed,
                  1e-9 + 1e-9 * baseline.billed);
    }
  }
}

TEST(RoutingDifferentialTest, IdenticalPlatformsBillLikeOnePlatform) {
  // N platforms with byte-identical profiles: whatever spread the router
  // produces, the total bill must equal the single-platform bill, every
  // slice must be placement-identical to its solo reference solve, and the
  // per-platform billed counters must sum to the total.
  constexpr size_t kWorkloads = 12;
  for (size_t w = 0; w < kWorkloads; ++w) {
    SCOPED_TRACE("workload " + std::to_string(w));
    RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + 500 + w);

    StreamingOptions options =
        PolicyOf(w, /*threads=*/1 + w % 4, BatchSharing::kIsolated);

    StreamingEngine plain(workload.profile, options);
    StreamResult baseline = StreamAndReassemble(workload, plain);

    for (RoutingPolicy policy :
         {RoutingPolicy::kCheapest, RoutingPolicy::kStickyRequester}) {
      SCOPED_TRACE(std::string("policy ") + RoutingPolicyName(policy));
      ProfileRegistry registry;
      const size_t kPlatforms = 3;
      for (size_t p = 0; p < kPlatforms; ++p) {
        ASSERT_TRUE(registry
                        .Register("p" + std::to_string(p),
                                  BinProfile(workload.profile))
                        .ok());
      }
      StreamingOptions routed_options = options;
      routed_options.registry = &registry;
      routed_options.routing = policy;
      StreamingEngine routed(workload.profile, routed_options);
      StreamResult routed_result = StreamAndReassemble(workload, routed);

      EXPECT_NEAR(routed_result.billed, baseline.billed,
                  1e-9 + 1e-9 * baseline.billed);
      for (const auto& [requester, cost] : baseline.costs) {
        EXPECT_NEAR(routed_result.costs[requester], cost, 1e-9 + 1e-9 * cost);
      }
      // Identical profiles: cheapest always tie-breaks to the smallest id,
      // and sticky pins whatever cheapest chose first -- either way every
      // slice names a registered platform at epoch 1.
      for (const std::string& platform : routed_result.platforms) {
        EXPECT_TRUE(platform == "p0" || platform == "p1" || platform == "p2")
            << platform;
      }
      if (policy == RoutingPolicy::kCheapest) {
        for (const std::string& platform : routed_result.platforms) {
          EXPECT_EQ(platform, "p0");  // deterministic tie-break
        }
      }
      double billed_sum = 0.0;
      for (const PlatformStats& s : registry.stats()) {
        billed_sum += s.billed_cost;
      }
      EXPECT_NEAR(billed_sum, baseline.billed, 1e-9 + 1e-9 * baseline.billed);
    }
  }
}

TEST(RoutingDifferentialTest, ExplicitHintsRouteAndSolvePerPlatform) {
  // kExplicit: each submission names its platform round-robin; every slice
  // echoes the named platform and is placement-identical to its solo
  // reference solve (identical profiles, so placements cannot differ).
  RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + 9000);
  ProfileRegistry registry;
  const std::vector<std::string> platforms = {"alpha", "beta"};
  for (const std::string& p : platforms) {
    ASSERT_TRUE(registry.Register(p, BinProfile(workload.profile)).ok());
  }
  StreamingOptions options =
      PolicyOf(1, /*threads=*/4, BatchSharing::kIsolated);
  options.registry = &registry;
  options.routing = RoutingPolicy::kExplicit;
  StreamingEngine engine(workload.profile, options);

  std::vector<std::future<Result<RequesterPlan>>> futures;
  for (size_t i = 0; i < workload.submissions.size(); ++i) {
    const Submission& submission = workload.submissions[i];
    futures.push_back(engine.Submit(submission.requester, submission.tasks,
                                    /*submission_id=*/{},
                                    platforms[i % platforms.size()]));
  }
  // Without a hint, explicit routing must fail the future cleanly.
  auto no_hint =
      engine.Submit("r0", workload.submissions[0].tasks).get();
  EXPECT_TRUE(no_hint.status().IsInvalidArgument())
      << no_hint.status().ToString();
  // A hint naming an unregistered platform fails with NotFound.
  auto bad_hint = engine
                      .Submit("r0", workload.submissions[0].tasks,
                              /*submission_id=*/{}, "nowhere")
                      .get();
  EXPECT_TRUE(bad_hint.status().IsNotFound()) << bad_hint.status().ToString();
  engine.Drain();

  for (size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE("submission " + std::to_string(i));
    auto slice = futures[i].get();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_EQ(slice->platform, platforms[i % platforms.size()]);
    EXPECT_EQ(slice->epoch, 1u);
    auto reference =
        SolveBatchSequential(workload.submissions[i].tasks, workload.profile);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_EQ(PlanSignature(slice->plan), PlanSignature(reference->plan));
    EXPECT_NEAR(slice->cost, reference->total_cost,
                1e-9 + 1e-9 * reference->total_cost);
  }
  // Failed routes are not counted as routed submissions.
  uint64_t routed = 0;
  for (const PlatformStats& s : registry.stats()) {
    routed += s.routed_submissions;
  }
  EXPECT_EQ(routed, workload.submissions.size());
}

TEST(RoutingDifferentialTest, CheapestPrefersTheCheaperProfile) {
  // Two platforms whose profiles differ only in price: the cost-based
  // router must send every submission to the cheap one, and the bill must
  // equal the cheap platform's single-profile bill.
  RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + 12000);

  // Build an expensive clone: same confidences, 3x the cost per bin.
  std::vector<TaskBin> pricey_bins;
  for (uint32_t l = 1; l <= workload.profile.max_cardinality(); ++l) {
    TaskBin b = workload.profile.bin(l);
    b.cost *= 3.0;
    pricey_bins.push_back(b);
  }
  auto pricey = BinProfile::Create(std::move(pricey_bins));
  ASSERT_TRUE(pricey.ok()) << pricey.status().ToString();

  ProfileRegistry registry;
  ASSERT_TRUE(registry.Register("bargain", BinProfile(workload.profile)).ok());
  ASSERT_TRUE(registry.Register("pricey", *std::move(pricey)).ok());

  const StreamingOptions options =
      PolicyOf(0, /*threads=*/2, BatchSharing::kIsolated);
  StreamingEngine plain(workload.profile, options);
  StreamResult baseline = StreamAndReassemble(workload, plain);

  StreamingOptions routed_options = options;
  routed_options.registry = &registry;
  routed_options.routing = RoutingPolicy::kCheapest;
  StreamingEngine routed(workload.profile, routed_options);
  StreamResult routed_result = StreamAndReassemble(workload, routed);

  for (const std::string& platform : routed_result.platforms) {
    EXPECT_EQ(platform, "bargain");
  }
  EXPECT_NEAR(routed_result.billed, baseline.billed,
              1e-9 + 1e-9 * baseline.billed);
  for (const PlatformStats& s : registry.stats()) {
    if (s.platform_id == "pricey") {
      EXPECT_EQ(s.routed_submissions, 0u);
      EXPECT_DOUBLE_EQ(s.billed_cost, 0.0);
    }
  }
}

}  // namespace
}  // namespace slade
