#include "adaptive/adaptive_decomposer.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "common/random.h"

namespace slade {
namespace {

PlatformConfig TestConfig(uint64_t seed) {
  PlatformConfig config;
  config.model = JellyModel();
  config.seed = seed;
  config.skill_sigma = 0.0;
  return config;
}

std::vector<bool> RandomTruth(size_t n, double positive_rate,
                              uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<bool> truth(n);
  for (size_t i = 0; i < n; ++i) truth[i] = rng.NextBernoulli(positive_rate);
  return truth;
}

// A profile whose confidences are optimistically wrong: the platform's
// true confidence is lower than claimed, so a static plan under-delivers.
Result<BinProfile> OverconfidentProfile(const DatasetModel& model,
                                        uint32_t m, double inflation) {
  SLADE_ASSIGN_OR_RETURN(BinProfile honest, BuildProfile(model, m));
  std::vector<TaskBin> bins;
  for (uint32_t l = 1; l <= m; ++l) {
    TaskBin b = honest.bin(l);
    b.confidence = std::min(0.999, b.confidence + inflation *
                                       (1.0 - b.confidence));
    bins.push_back(b);
  }
  return BinProfile::Create(std::move(bins));
}

TEST(AdaptiveTest, RejectsBadInput) {
  Platform platform(TestConfig(1));
  auto task = CrowdsourcingTask::Homogeneous(10, 0.9);
  const BinProfile profile = BuildProfile(JellyModel(), 5).ValueOrDie();
  AdaptiveOptions options;
  options.max_rounds = 0;
  EXPECT_TRUE(RunAdaptiveDecomposition(platform, *task, profile,
                                       std::vector<bool>(10, true), options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunAdaptiveDecomposition(platform, *task, profile,
                                       std::vector<bool>(3, true))
                  .status()
                  .IsInvalidArgument());
}

TEST(AdaptiveTest, SingleRoundEqualsStaticPlanning) {
  Platform platform(TestConfig(2));
  auto task = CrowdsourcingTask::Homogeneous(500, 0.9);
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  AdaptiveOptions options;
  options.max_rounds = 1;
  options.probes_per_cardinality_per_round = 0;  // no probe overhead
  auto report = RunAdaptiveDecomposition(platform, *task, profile,
                                         RandomTruth(500, 0.5, 3), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rounds, 1u);
  EXPECT_GT(report->total_cost, 0.0);

  // The static OPQ-Extended cost for the same instance is identical: one
  // round plans the full residual with the initial profile.
  auto solver = MakeSolver(SolverKind::kOpqExtended);
  auto plan = solver->Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(report->round_stats[0].cost, plan->TotalCost(profile), 1e-9);
}

TEST(AdaptiveTest, AccurateProfileConvergesInOneOrTwoRounds) {
  Platform platform(TestConfig(4));
  auto task = CrowdsourcingTask::Homogeneous(800, 0.9);
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  auto report = RunAdaptiveDecomposition(platform, *task, profile,
                                         RandomTruth(800, 0.5, 5));
  ASSERT_TRUE(report.ok());
  // With an honest profile the re-estimated confidences stay close, so
  // little or no top-up is needed.
  EXPECT_LE(report->rounds, 3u);
  EXPECT_EQ(report->unsatisfied, 0u);
  EXPECT_GE(report->positive_recall, 0.85);
}

TEST(AdaptiveTest, RecoversFromOverconfidentProfile) {
  // SMIC at t = 0.95: the true confidences genuinely require 2-3 bins per
  // task, so a profile inflated toward ~0.95+ confidence under-plans by a
  // wide margin and a static run misses the reliability target.
  const uint32_t m = 15;
  auto lying = OverconfidentProfile(SmicModel(), m, 0.6);
  ASSERT_TRUE(lying.ok());
  auto task = CrowdsourcingTask::Homogeneous(1500, 0.95);
  const auto truth = RandomTruth(1500, 0.5, 7);

  PlatformConfig smic_config;
  smic_config.model = SmicModel();
  smic_config.seed = 8;
  smic_config.skill_sigma = 0.0;

  // Static execution under the inflated profile misses the target: the
  // plan banks on confidences the workers do not deliver.
  Platform static_platform(smic_config);
  AdaptiveOptions one_round;
  one_round.max_rounds = 1;
  auto static_report = RunAdaptiveDecomposition(
      static_platform, *task, *lying, truth, one_round);
  ASSERT_TRUE(static_report.ok());
  EXPECT_LT(static_report->positive_recall, 0.93);

  Platform adaptive_platform(smic_config);
  AdaptiveOptions adaptive;
  adaptive.max_rounds = 6;
  auto adaptive_report = RunAdaptiveDecomposition(
      adaptive_platform, *task, *lying, truth, adaptive);
  ASSERT_TRUE(adaptive_report.ok());

  // The adaptive loop tops up and pays more, but restores recall.
  EXPECT_GT(adaptive_report->rounds, 1u);
  EXPECT_GT(adaptive_report->total_cost, static_report->total_cost);
  EXPECT_GT(adaptive_report->positive_recall,
            static_report->positive_recall);
  EXPECT_GE(adaptive_report->positive_recall, 0.93);

  // And its confidence estimates end close to the platform's truth.
  ASSERT_FALSE(adaptive_report->round_stats.empty());
  EXPECT_LT(adaptive_report->round_stats.back().max_confidence_error,
            0.10);
}

TEST(AdaptiveTest, RoundStatsAreConsistent) {
  Platform platform(TestConfig(10));
  auto task = CrowdsourcingTask::Homogeneous(600, 0.9);
  const BinProfile profile = BuildProfile(JellyModel(), 8).ValueOrDie();
  auto report = RunAdaptiveDecomposition(platform, *task, profile,
                                         RandomTruth(600, 0.4, 11));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->round_stats.size(), report->rounds);
  double cost_sum = 0.0;
  for (const AdaptiveRoundStats& stats : report->round_stats) {
    EXPECT_GT(stats.bins_posted, 0u);
    cost_sum += stats.cost;
  }
  EXPECT_NEAR(cost_sum, report->total_cost, 1e-9);
  EXPECT_EQ(report->final_confidences.size(), profile.size());
}

TEST(AdaptiveTest, HeterogeneousThresholdsSupported) {
  Platform platform(TestConfig(12));
  Xoshiro256 rng(13);
  std::vector<double> thresholds(400);
  for (auto& t : thresholds) t = rng.NextDouble(0.8, 0.97);
  auto task = CrowdsourcingTask::FromThresholds(thresholds);
  const BinProfile profile = BuildProfile(JellyModel(), 10).ValueOrDie();
  auto report = RunAdaptiveDecomposition(platform, *task, profile,
                                         RandomTruth(400, 0.5, 14));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->unsatisfied, 0u);
}

}  // namespace
}  // namespace slade
