// Randomized differential suite for the streaming admission engine.
//
// The contract under test: with BatchSharing::kIsolated, streaming
// admission is an *answer-preserving* transport. However submissions are
// interleaved across requesters, however micro-batches are cut (by size,
// by atomic-task count, by explicit drain), and however many worker
// threads solve the shards, each requester's reassembled plan must be
// placement-for-placement identical to solving that requester's tasks
// through the sequential per-task reference path (SolveBatchSequential,
// i.e. the paper's OPQ-Extended solver per crowdsourcing task) -- and must
// pass PlanValidator against the requester's thresholds.
//
// ~100 seeded random workloads vary the dataset model, profile size,
// requester count, submission interleaving, tasks per submission, atomic
// tasks per task and threshold distribution; flush policy and thread count
// rotate per workload, and one fixed workload is checked at 1, 4 and 8
// threads explicitly.

#include <cstdint>
#include <future>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/decomposition_engine.h"
#include "engine/plan_splitter.h"
#include "engine/streaming_engine.h"
#include "solver/plan_validator.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace slade {
namespace {

// Plans don't expose operator==; compare the serialized placements.
std::string PlanSignature(const DecompositionPlan& plan) {
  std::string sig;
  for (const BinPlacement& p : plan.placements()) {
    sig += std::to_string(p.cardinality) + "x" + std::to_string(p.copies) +
           ":";
    for (TaskId id : p.tasks) sig += std::to_string(id) + ";";
    sig += "|";
  }
  return sig;
}

std::string PlanSignature(const ColumnarPlan& plan) {
  return PlanSignature(plan.ToPlan());
}

struct Submission {
  std::string requester;
  std::vector<CrowdsourcingTask> tasks;

  size_t num_atomic() const {
    size_t n = 0;
    for (const CrowdsourcingTask& t : tasks) n += t.size();
    return n;
  }
};

struct RandomWorkload {
  BinProfile profile;
  std::vector<Submission> submissions;
};

/// Deterministic random workload: dataset, profile size, requester count,
/// interleaving, task shapes and threshold family all derive from `seed`.
RandomWorkload MakeRandomWorkload(uint64_t seed) {
  std::mt19937_64 rng(seed);

  const DatasetKind dataset =
      (rng() % 2 == 0) ? DatasetKind::kJelly : DatasetKind::kSmic;
  const uint32_t max_cardinality = 4 + static_cast<uint32_t>(rng() % 9);
  auto profile = BuildProfile(MakeModel(dataset), max_cardinality);
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();

  ThresholdSpec spec;
  switch (rng() % 4) {
    case 0:
      spec.family = ThresholdFamily::kHomogeneous;
      spec.mu = 0.75 + 0.2 * (static_cast<double>(rng() % 100) / 100.0);
      break;
    case 1:
      spec.family = ThresholdFamily::kNormal;
      spec.mu = 0.9;
      spec.sigma = 0.03;
      break;
    case 2:
      spec.family = ThresholdFamily::kUniform;
      spec.mu = 0.85;
      spec.sigma = 0.1;
      break;
    default:
      spec.family = ThresholdFamily::kHeavyTail;
      break;
  }
  spec.clamp_lo = 0.6;
  spec.clamp_hi = 0.98;

  const size_t num_requesters = 1 + rng() % 5;
  const size_t num_submissions = 2 + rng() % 11;
  RandomWorkload workload{std::move(profile).ValueOrDie(), {}};
  for (size_t s = 0; s < num_submissions; ++s) {
    Submission submission;
    submission.requester = "r" + std::to_string(rng() % num_requesters);
    const size_t num_tasks = 1 + rng() % 3;
    for (size_t k = 0; k < num_tasks; ++k) {
      const size_t n = 1 + rng() % 30;
      auto thresholds = GenerateThresholds(spec, n, rng());
      EXPECT_TRUE(thresholds.ok()) << thresholds.status().ToString();
      auto task =
          CrowdsourcingTask::FromThresholds(std::move(thresholds).ValueOrDie());
      EXPECT_TRUE(task.ok()) << task.status().ToString();
      submission.tasks.push_back(std::move(task).ValueOrDie());
    }
    workload.submissions.push_back(std::move(submission));
  }
  return workload;
}

/// The flush policies the suite rotates through. All are deterministic
/// given the submission sequence (deadline flushing is exercised by
/// streaming_stress_test, where timing may cut batches anywhere).
StreamingOptions PolicyOf(size_t index, uint32_t threads,
                          BatchSharing sharing) {
  StreamingOptions options;
  options.max_delay_seconds = 3600.0;  // policies below decide the cuts
  options.num_threads = threads;
  options.sharing = sharing;
  switch (index % 4) {
    case 0:  // flush eagerly (the worker may still batch a backlog)
      options.max_pending_submissions = 1;
      break;
    case 1:  // one big micro-batch, cut by the final drain
      options.max_pending_submissions = 1u << 20;
      options.max_pending_atomic_tasks = 1u << 20;
      break;
    case 2:  // cut mid-stream by atomic-task volume
      options.max_pending_submissions = 1u << 20;
      options.max_pending_atomic_tasks = 48;
      break;
    default:  // small submission-count batches
      options.max_pending_submissions = 3;
      break;
  }
  return options;
}

struct RequesterReference {
  std::vector<CrowdsourcingTask> tasks;  // admission order
  ColumnarPlan plan;
  double cost = 0.0;
};

/// Sequential per-requester baselines: each requester's tasks, in
/// admission order, through the paper's per-task reference loop.
std::map<std::string, RequesterReference> SequentialBaselines(
    const RandomWorkload& workload) {
  std::map<std::string, RequesterReference> references;
  for (const Submission& submission : workload.submissions) {
    RequesterReference& ref = references[submission.requester];
    ref.tasks.insert(ref.tasks.end(), submission.tasks.begin(),
                     submission.tasks.end());
  }
  for (auto& [requester, ref] : references) {
    auto report = SolveBatchSequential(ref.tasks, workload.profile);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    ref.plan = std::move(report->plan);
    ref.cost = report->total_cost;
  }
  return references;
}

/// Streams the workload under `options`, reassembles each requester's
/// slices in admission order, and returns plan + summed cost per requester.
std::map<std::string, RequesterReference> StreamAndReassemble(
    const RandomWorkload& workload, const StreamingOptions& options,
    StreamingStats* stats_out = nullptr, double* billed_out = nullptr,
    CacheStats* cache_out = nullptr) {
  StreamingEngine engine(workload.profile, options);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  futures.reserve(workload.submissions.size());
  for (const Submission& submission : workload.submissions) {
    futures.push_back(engine.Submit(submission.requester, submission.tasks));
  }
  engine.Drain();

  std::map<std::string, RequesterReference> reassembled;
  double billed = 0.0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const Submission& submission = workload.submissions[i];
    auto slice = futures[i].get();
    EXPECT_TRUE(slice.ok()) << slice.status().ToString();
    if (!slice.ok()) continue;
    EXPECT_EQ(slice->requester_id, submission.requester);
    EXPECT_EQ(slice->num_tasks(), submission.tasks.size());
    EXPECT_EQ(slice->num_atomic_tasks(), submission.num_atomic());

    RequesterReference& ref = reassembled[submission.requester];
    size_t offset = 0;  // requester-global id of this slice's local id 0
    for (const CrowdsourcingTask& t : ref.tasks) offset += t.size();
    // Stitch the slice back in requester-global ids -- how a requester
    // reassembles their per-flush slices.
    ref.plan.AppendRange(slice->plan, 0, slice->plan.num_placements(),
                         static_cast<int64_t>(offset));
    ref.cost += slice->cost;
    billed += slice->cost;
    ref.tasks.insert(ref.tasks.end(), submission.tasks.begin(),
                     submission.tasks.end());
  }
  if (stats_out != nullptr) *stats_out = engine.stats();
  if (billed_out != nullptr) *billed_out = billed;
  if (cache_out != nullptr) *cache_out = engine.cache().stats();
  return reassembled;
}

void ExpectMatchesSequential(
    const std::map<std::string, RequesterReference>& streamed,
    const std::map<std::string, RequesterReference>& references,
    const BinProfile& profile) {
  ASSERT_EQ(streamed.size(), references.size());
  for (const auto& [requester, ref] : references) {
    SCOPED_TRACE("requester " + requester);
    auto it = streamed.find(requester);
    ASSERT_NE(it, streamed.end());
    const RequesterReference& got = it->second;

    // Placement-for-placement identity with the per-task reference solve.
    EXPECT_EQ(PlanSignature(got.plan), PlanSignature(ref.plan));
    EXPECT_NEAR(got.cost, ref.cost, 1e-9 + 1e-9 * ref.cost);

    // And independently: the reassembled plan is feasible for the
    // requester's thresholds.
    auto merged_task = ConcatenateTasks(got.tasks);
    ASSERT_TRUE(merged_task.ok()) << merged_task.status().ToString();
    auto validation = ValidatePlan(got.plan, *merged_task, profile);
    ASSERT_TRUE(validation.ok()) << validation.status().ToString();
    EXPECT_TRUE(validation->feasible)
        << "worst log margin " << validation->worst_log_margin;
    EXPECT_NEAR(validation->total_cost, got.cost, 1e-9 + 1e-9 * got.cost);
  }
}

constexpr uint64_t kSuiteSeed = 0x51adE5'7Bea17ULL;

TEST(StreamingDifferentialTest, IsolatedMatchesSequentialOnRandomWorkloads) {
  constexpr size_t kWorkloads = 100;
  const uint32_t thread_counts[] = {1, 4, 8};
  for (size_t w = 0; w < kWorkloads; ++w) {
    SCOPED_TRACE("workload " + std::to_string(w));
    RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + w);
    auto references = SequentialBaselines(workload);

    const StreamingOptions options =
        PolicyOf(w, thread_counts[w % 3], BatchSharing::kIsolated);
    auto streamed = StreamAndReassemble(workload, options);
    ExpectMatchesSequential(streamed, references, workload.profile);
  }
}

TEST(StreamingDifferentialTest, IdenticalAcrossThreadCountsAndPolicies) {
  RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + 1234);
  auto references = SequentialBaselines(workload);
  for (uint32_t threads : {1u, 4u, 8u}) {
    for (size_t policy = 0; policy < 4; ++policy) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " policy " +
                   std::to_string(policy));
      const StreamingOptions options =
          PolicyOf(policy, threads, BatchSharing::kIsolated);
      auto streamed = StreamAndReassemble(workload, options);
      ExpectMatchesSequential(streamed, references, workload.profile);
    }
  }
}

TEST(StreamingDifferentialTest, EvictionPressureKeepsPlansIdentical) {
  // A 1-entry OPQ cache forces an eviction on every threshold-group
  // switch; the differential guarantee must not notice -- an evicted queue
  // is rebuilt to exactly the same content, and queues held by in-flight
  // shard solves stay valid via shared ownership.
  constexpr size_t kWorkloads = 16;
  uint64_t total_evictions = 0;
  for (size_t w = 0; w < kWorkloads; ++w) {
    SCOPED_TRACE("workload " + std::to_string(w));
    RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + w);
    auto references = SequentialBaselines(workload);

    StreamingOptions options =
        PolicyOf(w, /*threads=*/1 + w % 4, BatchSharing::kIsolated);
    options.resources.cache_max_entries = 1;
    CacheStats cache_stats;
    auto streamed = StreamAndReassemble(workload, options, nullptr, nullptr,
                                        &cache_stats);
    ExpectMatchesSequential(streamed, references, workload.profile);
    total_evictions += cache_stats.evictions;
    EXPECT_LE(cache_stats.entries, 1u);
  }
  // Heterogeneous thresholds span several Algorithm 4 groups, so at least
  // some workloads must have churned the 1-entry cache.
  EXPECT_GT(total_evictions, 0u);
}

TEST(StreamingDifferentialTest, BackpressurePoliciesPreserveAdmittedPlans) {
  // Small admission caps under a fast submission loop: some submissions
  // are rejected or shed (policy-dependent), but every future resolves,
  // every failure is a clean ResourceExhausted, and every delivered slice
  // is still placement-identical to solving its submission alone.
  for (BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kReject,
        BackpressurePolicy::kShedOldest}) {
    SCOPED_TRACE(std::string("policy ") + BackpressurePolicyName(policy));
    RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + 31337);

    StreamingOptions options;
    options.max_pending_submissions = 2;
    options.max_delay_seconds = 3600.0;
    options.num_threads = 2;
    options.sharing = BatchSharing::kIsolated;
    options.resources.backpressure = policy;
    options.resources.queue_max_atomic_tasks = 48;

    StreamingEngine engine(workload.profile, options);
    std::vector<std::future<Result<RequesterPlan>>> futures;
    futures.reserve(workload.submissions.size());
    for (const Submission& submission : workload.submissions) {
      futures.push_back(
          engine.Submit(submission.requester, submission.tasks));
    }
    engine.Drain();

    uint64_t delivered = 0;
    uint64_t failed = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      SCOPED_TRACE("submission " + std::to_string(i));
      const Submission& submission = workload.submissions[i];
      auto slice = futures[i].get();
      if (!slice.ok()) {
        EXPECT_TRUE(slice.status().IsResourceExhausted())
            << slice.status().ToString();
        failed += 1;
        continue;
      }
      delivered += 1;
      // Per-submission identity: under kIsolated a slice equals the
      // sequential reference solve of just its own tasks, regardless of
      // which other submissions were admitted around it.
      auto reference =
          SolveBatchSequential(submission.tasks, workload.profile);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      EXPECT_EQ(PlanSignature(slice->plan), PlanSignature(reference->plan));
      EXPECT_NEAR(slice->cost, reference->total_cost,
                  1e-9 + 1e-9 * reference->total_cost);
    }

    const StreamingStats stats = engine.stats();
    if (policy == BackpressurePolicy::kBlock) {
      EXPECT_EQ(failed, 0u);  // blocking loses nothing
      EXPECT_EQ(stats.rejected, 0u);
      EXPECT_EQ(stats.shed, 0u);
    }
    EXPECT_EQ(delivered + failed, futures.size());
    EXPECT_EQ(stats.rejected + stats.shed, failed);
    // Admitted = delivered + shed (rejected never entered the queue).
    EXPECT_EQ(stats.submissions, delivered + stats.shed);
  }
}

TEST(StreamingDifferentialTest, PooledSlicesAreFeasibleAndConserveCost) {
  constexpr size_t kWorkloads = 24;
  for (size_t w = 0; w < kWorkloads; ++w) {
    SCOPED_TRACE("workload " + std::to_string(w));
    RandomWorkload workload = MakeRandomWorkload(kSuiteSeed + 7000 + w);

    const StreamingOptions options =
        PolicyOf(w, /*threads=*/1 + w % 4, BatchSharing::kPooled);
    StreamingStats stats;
    double billed = 0.0;
    auto streamed = StreamAndReassemble(workload, options, &stats, &billed);

    // Every requester's reassembled plan meets their thresholds, even when
    // micro-batches tiled their atomic tasks into shared bins.
    for (const auto& [requester, got] : streamed) {
      SCOPED_TRACE("requester " + requester);
      auto merged_task = ConcatenateTasks(got.tasks);
      ASSERT_TRUE(merged_task.ok());
      auto validation = ValidatePlan(got.plan, *merged_task, workload.profile);
      ASSERT_TRUE(validation.ok()) << validation.status().ToString();
      EXPECT_TRUE(validation->feasible)
          << "worst log margin " << validation->worst_log_margin;
    }

    // Shared bins are billed to every requester they serve, so the billed
    // sum can only meet or exceed what the platform actually paid.
    EXPECT_GE(billed, stats.total_cost - 1e-6);
  }
}

}  // namespace
}  // namespace slade
