// Closed-loop engine: differential identity against plain streaming
// admission, adaptive-retry value under spammers, budget stops, fault
// survival and determinism.

#include "engine/closed_loop_engine.h"

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "common/random.h"
#include "engine/streaming_engine.h"

namespace slade {
namespace {

std::string PlanSignature(const DecompositionPlan& plan) {
  std::string sig;
  for (const BinPlacement& p : plan.placements()) {
    sig += std::to_string(p.cardinality) + "x" + std::to_string(p.copies) +
           ":";
    for (TaskId id : p.tasks) sig += std::to_string(id) + ";";
    sig += "|";
  }
  return sig;
}

std::string PlanSignature(const ColumnarPlan& plan) {
  return PlanSignature(plan.ToPlan());
}

BinProfile JellyProfile() {
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 10);
  EXPECT_TRUE(profile.ok());
  return std::move(profile).ValueOrDie();
}

/// `count` workloads of one heterogeneous task each, thresholds cycling
/// in [0.82, 0.93], ground truth from `seed`.
std::vector<ClosedLoopWorkload> MakeWorkloads(size_t count,
                                              size_t atomic_per_workload,
                                              uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<ClosedLoopWorkload> workloads;
  for (size_t w = 0; w < count; ++w) {
    ClosedLoopWorkload workload;
    workload.requester = "r" + std::to_string(w % 3);
    std::vector<double> thresholds;
    for (size_t k = 0; k < atomic_per_workload; ++k) {
      thresholds.push_back(0.82 + 0.11 * static_cast<double>(k % 5) / 4.0);
    }
    workload.tasks.push_back(
        CrowdsourcingTask::FromThresholds(std::move(thresholds))
            .ValueOrDie());
    for (size_t k = 0; k < atomic_per_workload; ++k) {
      workload.ground_truth.push_back(rng.NextBernoulli(0.5));
    }
    workloads.push_back(std::move(workload));
  }
  return workloads;
}

// Criterion (a) of the closed-loop contract: with faults disabled and one
// round, the loop is plain streaming admission -- every delivered slice
// (and the billed total) matches submitting the same workloads to a
// StreamingEngine directly.
TEST(ClosedLoopTest, NoFaultRoundOneMatchesPlainStreaming) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(7, 12, /*seed=*/31);

  ClosedLoopOptions options;
  options.max_rounds = 1;
  options.keep_round_plans = true;
  ClosedLoopEngine engine(profile, options);
  auto report = engine.Run(workloads);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rounds, 1u);
  ASSERT_EQ(report->round_plans.size(), 1u);
  ASSERT_EQ(report->round_plans[0].size(), workloads.size());

  StreamingEngine reference(profile, options.streaming);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  for (const ClosedLoopWorkload& w : workloads) {
    futures.push_back(reference.Submit(w.requester, w.tasks));
  }
  reference.Drain();

  double reference_billed = 0.0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto slice = futures[i].get();
    ASSERT_TRUE(slice.ok());
    const RequesterPlan& loop_slice = report->round_plans[0][i];
    EXPECT_EQ(PlanSignature(loop_slice.plan), PlanSignature(slice->plan))
        << "submission " << i;
    EXPECT_DOUBLE_EQ(loop_slice.cost, slice->cost);
    reference_billed += slice->cost;
  }
  EXPECT_DOUBLE_EQ(report->billed_cost, reference_billed);
}

// With majority inference and no faults every answered task is fully
// confident, so a multi-round loop converges in round 1 and bills exactly
// the no-retry amount.
TEST(ClosedLoopTest, ConvergedLoopBillsExactlyOneRound) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(5, 10, /*seed=*/77);

  ClosedLoopOptions no_retry;
  no_retry.max_rounds = 1;
  no_retry.inference = InferenceKind::kMajorityVote;
  auto baseline = ClosedLoopEngine(profile, no_retry).Run(workloads);
  ASSERT_TRUE(baseline.ok());

  ClosedLoopOptions adaptive = no_retry;
  adaptive.max_rounds = 5;
  auto looped = ClosedLoopEngine(profile, adaptive).Run(workloads);
  ASSERT_TRUE(looped.ok());

  EXPECT_EQ(looped->rounds, 1u);
  EXPECT_EQ(looped->redecomposed_atomic_tasks, 0u);
  EXPECT_DOUBLE_EQ(looped->billed_cost, baseline->billed_cost);
  EXPECT_EQ(looped->total_bins, baseline->total_bins);
  EXPECT_EQ(looped->final_under_confident, 0u);
}

// Criterion (b): under a heavy steady spammer population, adaptive
// re-decomposition measurably improves final accuracy over the no-retry
// baseline, at a billed cost bounded by the configured multiple.
TEST(ClosedLoopTest, AdaptiveRetryBeatsNoRetryUnderSpammers) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(9, 20, /*seed=*/13);

  ClosedLoopOptions options;
  options.platform.spammer_fraction = 0.45;
  options.platform.seed = 2024;
  options.inference = InferenceKind::kDawidSkene;
  options.max_rounds = 1;
  auto no_retry = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(no_retry.ok());

  options.max_rounds = 4;
  options.retry_cost_multiple = 5.0;
  auto adaptive = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(adaptive.ok());

  EXPECT_GT(adaptive->rounds, 1u);
  EXPECT_GT(adaptive->redecomposed_atomic_tasks, 0u);
  // Measurable accuracy gain...
  EXPECT_GE(adaptive->final_accuracy, no_retry->final_accuracy + 0.02);
  EXPECT_LT(adaptive->final_under_confident,
            no_retry->final_under_confident);
  // ...at bounded extra cost.
  EXPECT_GT(adaptive->billed_cost, no_retry->billed_cost);
  EXPECT_LE(adaptive->billed_cost, 5.0 * no_retry->billed_cost + 1e-9);
}

TEST(ClosedLoopTest, RedecompositionBudgetStopsTheLoop) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(6, 15, /*seed=*/13);

  ClosedLoopOptions options;
  options.platform.spammer_fraction = 0.45;
  options.inference = InferenceKind::kDawidSkene;
  options.max_rounds = 6;
  options.max_redecomposed_atomic_tasks = 10;
  auto report = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->budget_stopped);
  EXPECT_LE(report->redecomposed_atomic_tasks, 10u);
}

TEST(ClosedLoopTest, RetryCostBudgetStopsTheLoop) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(6, 15, /*seed=*/13);

  ClosedLoopOptions options;
  options.platform.spammer_fraction = 0.45;
  options.inference = InferenceKind::kDawidSkene;
  options.max_rounds = 8;
  // Round 1 alone reaches the 1x budget, so no retry round may start.
  options.retry_cost_multiple = 1.0;
  auto report = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rounds, 1u);
  EXPECT_TRUE(report->budget_stopped);
  EXPECT_EQ(report->redecomposed_atomic_tasks, 0u);
}

// A permanent outage must not hang or crash the loop: every post is
// eventually dropped, nothing is answered, and the report says so.
TEST(ClosedLoopTest, PermanentOutageCompletesWithDroppedBins) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(3, 8, /*seed=*/5);

  ClosedLoopOptions options;
  options.max_rounds = 2;
  options.faults.outage_period = 4;
  options.faults.outage_length = 4;  // always down
  auto report = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rounds, 2u);
  EXPECT_EQ(report->total_answers, 0u);
  EXPECT_EQ(report->final_under_confident, 3u * 8u);
  EXPECT_DOUBLE_EQ(report->platform_cost, 0.0);
  uint64_t dropped = 0;
  for (const ClosedLoopRoundStats& r : report->round_stats) {
    dropped += r.dropped_bins;
    EXPECT_EQ(r.answers, 0u);
    EXPECT_EQ(r.unanswered_after, 3u * 8u);
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(report->faults.outages, 0u);
}

// A transient outage (window shorter than the retry budget) only delays
// posts: everything is eventually answered.
TEST(ClosedLoopTest, TransientOutageDelaysButAnswersEverything) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(3, 8, /*seed=*/5);

  ClosedLoopOptions options;
  options.max_rounds = 1;
  options.faults.outage_period = 5;
  options.faults.outage_length = 2;
  auto report = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->round_stats[0].dropped_bins, 0u);
  EXPECT_GT(report->round_stats[0].outage_retries, 0u);
  EXPECT_EQ(report->round_stats[0].unanswered_after, 0u);
}

TEST(ClosedLoopTest, SingleThreadedRunsAreDeterministic) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(5, 12, /*seed=*/99);

  ClosedLoopOptions options;
  options.platform.spammer_fraction = 0.3;
  options.faults.spammer_burst_period = 12;
  options.faults.spammer_burst_length = 4;
  options.faults.straggler_fraction = 0.2;
  options.inference = InferenceKind::kDawidSkene;
  options.max_rounds = 3;
  auto a = ClosedLoopEngine(profile, options).Run(workloads);
  auto b = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rounds, b->rounds);
  EXPECT_EQ(a->total_answers, b->total_answers);
  EXPECT_EQ(a->total_bins, b->total_bins);
  EXPECT_EQ(a->redecomposed_atomic_tasks, b->redecomposed_atomic_tasks);
  EXPECT_DOUBLE_EQ(a->billed_cost, b->billed_cost);
  EXPECT_DOUBLE_EQ(a->platform_cost, b->platform_cost);
  EXPECT_DOUBLE_EQ(a->final_accuracy, b->final_accuracy);
}

// Multi-threaded dispatch reorders answer arrival but must not change
// what is answered or billed (only RNG interleaving differs).
TEST(ClosedLoopTest, MultiThreadedDispatchAnswersEverything) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(8, 16, /*seed=*/55);

  ClosedLoopOptions options;
  options.platform.spammer_fraction = 0.2;
  options.faults.straggler_fraction = 0.1;
  options.dispatch_threads = 4;
  options.max_rounds = 2;
  auto report = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->round_stats[0].unanswered_after, 0u);
  EXPECT_GT(report->total_answers, 0u);
  EXPECT_GT(report->billed_cost, 0.0);
}

TEST(ClosedLoopTest, RejectsMalformedInput) {
  const BinProfile profile = JellyProfile();
  ClosedLoopEngine engine(profile, {});
  EXPECT_FALSE(engine.Run({}).ok());

  auto workloads = MakeWorkloads(1, 5, /*seed=*/1);
  workloads[0].ground_truth.pop_back();
  EXPECT_FALSE(engine.Run(workloads).ok());

  ClosedLoopOptions bad;
  bad.max_rounds = 0;
  EXPECT_FALSE(
      ClosedLoopEngine(profile, bad).Run(MakeWorkloads(1, 5, 1)).ok());
}

TEST(ClosedLoopTest, ReportToStringMentionsEveryRound) {
  const BinProfile profile = JellyProfile();
  const auto workloads = MakeWorkloads(4, 10, /*seed=*/3);
  ClosedLoopOptions options;
  options.platform.spammer_fraction = 0.4;
  options.max_rounds = 2;
  auto report = ClosedLoopEngine(profile, options).Run(workloads);
  ASSERT_TRUE(report.ok());
  const std::string s = report->ToString();
  EXPECT_NE(s.find("closed loop:"), std::string::npos);
  EXPECT_NE(s.find("round"), std::string::npos);
}

}  // namespace
}  // namespace slade
