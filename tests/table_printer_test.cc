#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace slade {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long-header", "c"});
  t.AddRow({"wide-cell", "1", "2"});
  t.AddRow({"x", "22", "333"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header, separator and both rows present.
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Every line is as wide as the widest cells demand.
  std::istringstream lines(out);
  std::string line;
  std::getline(lines, line);
  const size_t header_width = line.size();
  std::getline(lines, line);  // separator
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), header_width + 2);
  }
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TablePrinterTest, DoubleRowFormatting) {
  TablePrinter t({"key", "v1", "v2"});
  t.AddRow("t=0.9", {612.43219, 583.1}, 2);
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("612.43"), std::string::npos);
  EXPECT_NE(os.str().find("583.10"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoublePrecision) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.68, 2), "0.68");
  EXPECT_EQ(TablePrinter::FormatDouble(1.0, 4), "1.0000");
}

TEST(PrintBannerTest, ContainsTitle) {
  std::ostringstream os;
  PrintBanner(os, "Figure 6a");
  EXPECT_NE(os.str().find("== Figure 6a =="), std::string::npos);
}

}  // namespace
}  // namespace slade
