#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace slade {
namespace {

TEST(ThreadPoolTest, ExecutesAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // no Wait(): the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 100);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelForTest, ResultsMatchSerialComputation) {
  ThreadPool pool(8);
  std::vector<double> parallel_out(1000), serial_out(1000);
  auto compute = [](size_t i) {
    double acc = 0;
    for (size_t k = 1; k <= i % 50 + 1; ++k) {
      acc += 1.0 / static_cast<double>(k);
    }
    return acc;
  };
  ParallelFor(&pool, parallel_out.size(),
              [&](size_t i) { parallel_out[i] = compute(i); });
  for (size_t i = 0; i < serial_out.size(); ++i) {
    serial_out[i] = compute(i);
  }
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace slade
