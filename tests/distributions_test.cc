#include "common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace slade {
namespace {

constexpr int kDraws = 200000;

TEST(UniformDistributionTest, MomentsMatch) {
  Xoshiro256 rng(1);
  UniformDistribution dist(2.0, 6.0);
  OnlineStats stats;
  for (int i = 0; i < kDraws; ++i) stats.Add(dist.Sample(rng));
  EXPECT_NEAR(stats.mean(), 4.0, 0.02);
  // Var = (b-a)^2/12 = 16/12.
  EXPECT_NEAR(stats.variance(), 16.0 / 12.0, 0.03);
  EXPECT_GE(stats.min(), 2.0);
  EXPECT_LT(stats.max(), 6.0);
}

TEST(NormalDistributionTest, MomentsMatch) {
  Xoshiro256 rng(2);
  NormalDistribution dist(0.9, 0.03);
  OnlineStats stats;
  for (int i = 0; i < kDraws; ++i) stats.Add(dist.Sample(rng));
  EXPECT_NEAR(stats.mean(), 0.9, 0.001);
  EXPECT_NEAR(stats.stddev(), 0.03, 0.001);
}

TEST(NormalDistributionTest, TailFractionsPlausible) {
  Xoshiro256 rng(3);
  NormalDistribution dist(0.0, 1.0);
  int beyond_two_sigma = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (std::fabs(dist.Sample(rng)) > 2.0) ++beyond_two_sigma;
  }
  // P(|Z| > 2) ~ 4.55%.
  EXPECT_NEAR(static_cast<double>(beyond_two_sigma) / kDraws, 0.0455, 0.005);
}

TEST(ParetoDistributionTest, MeanMatchesWhenFinite) {
  Xoshiro256 rng(4);
  ParetoDistribution dist(1.0, 3.0);
  OnlineStats stats;
  for (int i = 0; i < kDraws; ++i) stats.Add(dist.Sample(rng));
  EXPECT_NEAR(stats.mean(), dist.Mean(), 0.02);  // 1.5
  EXPECT_GE(stats.min(), 1.0);
}

TEST(ParetoDistributionTest, InfiniteMeanForSmallAlpha) {
  ParetoDistribution dist(1.0, 0.9);
  EXPECT_TRUE(std::isinf(dist.Mean()));
}

TEST(ExponentialDistributionTest, MeanMatches) {
  Xoshiro256 rng(5);
  ExponentialDistribution dist(4.0);
  OnlineStats stats;
  for (int i = 0; i < kDraws; ++i) stats.Add(dist.Sample(rng));
  EXPECT_NEAR(stats.mean(), 0.25, 0.005);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(ClampedDistributionTest, SamplesStayInRange) {
  Xoshiro256 rng(6);
  auto inner = std::make_shared<NormalDistribution>(0.9, 0.5);
  ClampedDistribution dist(inner, 0.5, 0.99);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist.Sample(rng);
    ASSERT_GE(x, 0.5);
    ASSERT_LE(x, 0.99);
  }
}

TEST(SampleClampedTest, RespectsBoundsAndCount) {
  Xoshiro256 rng(7);
  NormalDistribution dist(0.9, 0.2);
  auto xs = SampleClamped(dist, 5000, 0.6, 0.95, rng);
  ASSERT_EQ(xs.size(), 5000u);
  for (double x : xs) {
    ASSERT_GE(x, 0.6);
    ASSERT_LE(x, 0.95);
  }
}

TEST(MakeDistributionTest, ParsesAllFamilies) {
  EXPECT_TRUE(MakeDistribution("uniform:0,1").ok());
  EXPECT_TRUE(MakeDistribution("normal:0.9,0.03").ok());
  EXPECT_TRUE(MakeDistribution("pareto:1,2").ok());
  EXPECT_TRUE(MakeDistribution("exponential:3").ok());
}

TEST(MakeDistributionTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(MakeDistribution("normal").ok());
  EXPECT_FALSE(MakeDistribution("uniform:3,1").ok());
  EXPECT_FALSE(MakeDistribution("pareto:-1,2").ok());
  EXPECT_FALSE(MakeDistribution("exponential:0").ok());
  EXPECT_FALSE(MakeDistribution("cauchy:0,1").ok());
}

TEST(MakeDistributionTest, ParsedDistributionSamples) {
  auto dist = MakeDistribution("normal:5,0.1");
  ASSERT_TRUE(dist.ok());
  Xoshiro256 rng(8);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add((*dist)->Sample(rng));
  EXPECT_NEAR(stats.mean(), 5.0, 0.01);
}

}  // namespace
}  // namespace slade
