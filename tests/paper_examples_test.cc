// Golden tests pinning every worked example in the paper. If any of these
// fail, the reproduction has drifted from the published algorithms.

#include <gtest/gtest.h>

#include "binmodel/reliability.h"
#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/math_util.h"
#include "solver/greedy_solver.h"
#include "solver/opq_builder.h"
#include "solver/opq_extended_solver.h"
#include "solver/opq_set_builder.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  BinProfile profile_ = BinProfile::PaperExample();
};

TEST_F(PaperExamplesTest, Example4FeasiblePlansAndCosts) {
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);

  // P1: four 2-cardinality bins {a1,a2} x2, {a3,a4} x2; Rel = 0.98 per
  // task; cost 0.72.
  DecompositionPlan p1;
  p1.Add(2, 2, {0, 1});
  p1.Add(2, 2, {2, 3});
  auto r1 = ValidatePlan(p1, *task, profile_);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->feasible);
  EXPECT_NEAR(r1->total_cost, 0.72, 1e-12);
  EXPECT_NEAR(Reliability({0.85, 0.85}), 0.9775, 1e-9);  // "0.98" in text

  // P2 (optimal): {a1,a2,a3}, {a1,a2,a4}, {a3,a4}; cost 0.66.
  DecompositionPlan p2;
  p2.Add(3, 1, {0, 1, 2});
  p2.Add(3, 1, {0, 1, 3});
  p2.Add(2, 1, {2, 3});
  auto r2 = ValidatePlan(p2, *task, profile_);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->feasible);
  EXPECT_NEAR(r2->total_cost, 0.66, 1e-12);
}

TEST_F(PaperExamplesTest, Example5GreedyTrace) {
  // theta initialized to -ln(1-0.95) = 2.996; first ratio is
  // 0.1/w(0.9) = 0.0434; final cost 0.74.
  EXPECT_NEAR(LogReduction(0.95), 2.996, 1e-3);
  EXPECT_NEAR(0.1 / LogReduction(0.9), 0.0434, 1e-4);
  // After one singleton: residual 2.996 - 2.303 = 0.693.
  EXPECT_NEAR(LogReduction(0.95) - LogReduction(0.9), 0.693, 1e-3);

  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  GreedySolver solver(GreedySolver::Strategy::kNaive);
  auto plan = solver.Solve(*task, profile_);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile_), 0.74, 1e-9);
}

TEST_F(PaperExamplesTest, Example6CombinationArithmetic) {
  auto comb = Combination::Create({{1, 3}, {2, 2}, {3, 1}}, profile_);
  ASSERT_TRUE(comb.ok());
  EXPECT_EQ(comb->lcm(), 6u);
  EXPECT_NEAR(comb->unit_cost(), 0.56, 1e-12);
  EXPECT_NEAR(comb->block_cost(), 3.36, 1e-12);
}

TEST_F(PaperExamplesTest, Example7OpqFirstElementReliability) {
  // {2 x b3}: 2 * w(0.8) = 3.22 > 2.996.
  EXPECT_NEAR(2 * LogReduction(0.8), 3.22, 1e-2);
  auto opq = BuildOpq(profile_, 0.95);
  ASSERT_TRUE(opq.ok());
  EXPECT_GE(opq->front().log_weight(), LogReduction(0.95));
}

TEST_F(PaperExamplesTest, Example8EnumerationIntermediates) {
  // The paper walks through {2 x b1} (4.605 > 2.996), then {b1 + b2}
  // (4.20 > 2.996, UC 0.19), which is later displaced by {2 x b2}
  // (UC 0.18). Verify the arithmetic and the final frontier.
  EXPECT_NEAR(2 * LogReduction(0.9), 4.605, 1e-3);
  EXPECT_NEAR(LogReduction(0.9) + LogReduction(0.85), 4.20, 1e-2);
  EXPECT_NEAR(0.1 + 0.18 / 2, 0.19, 1e-12);
  EXPECT_NEAR(2 * LogReduction(0.85), 3.794, 1e-3);

  auto opq = BuildOpq(profile_, 0.95);
  ASSERT_TRUE(opq.ok());
  // {b1 + b2} must NOT be in the final queue.
  for (const Combination& c : opq->elements()) {
    Combination::Parts displaced = {{1, 1}, {2, 1}};
    EXPECT_NE(c.parts(), displaced);
  }
}

TEST_F(PaperExamplesTest, Example9OpqPlan) {
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  OpqSolver solver;
  auto plan = solver.Solve(*task, profile_);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile_), 0.68, 1e-9);
  // 1*3*0.16 + 1*1*0.2 = 0.68 as the paper computes.
  EXPECT_NEAR(1 * 3 * 0.16 + 1 * 1 * 0.2, 0.68, 1e-12);
}

TEST_F(PaperExamplesTest, Example10ThetasAndAlpha) {
  // Thresholds 0.5/0.6/0.7/0.86 -> thetas 0.69, 0.92, 1.20, 1.97.
  // (The paper's text lists 1.61 for t=0.7; -ln(0.3) = 1.204, and the
  // partition it derives matches 1.204, so we pin the computed value.)
  EXPECT_NEAR(LogReduction(0.5), 0.69, 5e-3);
  EXPECT_NEAR(LogReduction(0.6), 0.92, 5e-3);
  EXPECT_NEAR(LogReduction(0.7), 1.204, 5e-3);
  EXPECT_NEAR(LogReduction(0.86), 1.97, 5e-3);
  // alpha = floor(log2 0.69) = -1; first interval upper = 2^0 = 1 with
  // t = 1 - e^{-1} = 0.632.
  EXPECT_NEAR(InverseLogReduction(1.0), 0.632, 1e-3);
}

TEST_F(PaperExamplesTest, Example11HeterogeneousPlan) {
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.6, 0.7, 0.86});
  OpqExtendedSolver solver;
  auto plan = solver.Solve(*task, profile_);
  ASSERT_TRUE(plan.ok());
  // Paper: S0 = {a1, a2} via {1 x b2}; S1 = {a3, a4} via {1 x b1} each;
  // total 0.09*2 + ... = 0.38.
  EXPECT_NEAR(plan->TotalCost(profile_), 0.38, 1e-9);
  auto counts = plan->BinCounts(3);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile_)->feasible);
}

TEST_F(PaperExamplesTest, Section4UkpReductionArithmetic) {
  // The NP-hardness reduction maps item (w_i, v_i) to a bin with
  // c_i = w_i, r_i = 1 - e^{-v_i}: then -ln(1 - r_i) = v_i exactly.
  for (double v : {0.5, 1.0, 2.5}) {
    EXPECT_NEAR(LogReduction(1.0 - std::exp(-v)), v, 1e-12);
  }
}

}  // namespace
}  // namespace slade
