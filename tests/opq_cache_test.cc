#include "engine/opq_cache.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "binmodel/profile_model.h"
#include "solver/opq_solver.h"
#include "solver/plan.h"

namespace slade {
namespace {

TEST(OpqCacheTest, MissThenHit) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto first = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->hit);
  auto second = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(first->queue.get(), second->queue.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(OpqCacheTest, CachedQueueEqualsFreshBuild) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  for (double t : {0.8, 0.9, 0.95}) {
    auto cached = cache.GetOrBuild(profile, t);
    ASSERT_TRUE(cached.ok());
    auto fresh = BuildOpq(profile, t);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(cached->queue->size(), fresh->size());
    EXPECT_DOUBLE_EQ(cached->queue->theta(), fresh->theta());
    for (size_t i = 0; i < fresh->size(); ++i) {
      EXPECT_EQ(cached->queue->element(i).lcm(), fresh->element(i).lcm());
      EXPECT_DOUBLE_EQ(cached->queue->element(i).unit_cost(),
                       fresh->element(i).unit_cost());
    }
  }
}

TEST(OpqCacheTest, CachedQueueProducesSamePlanAsFreshBuild) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto cached = cache.GetOrBuild(profile, 0.92);
  ASSERT_TRUE(cached.ok());
  auto fresh = BuildOpq(profile, 0.92);
  ASSERT_TRUE(fresh.ok());

  std::vector<TaskId> ids(1234);
  std::iota(ids.begin(), ids.end(), 0);
  DecompositionPlan from_cache, from_fresh;
  ASSERT_TRUE(
      RunOpqAssignment(*cached->queue, ids, profile, &from_cache).ok());
  ASSERT_TRUE(RunOpqAssignment(*fresh, ids, profile, &from_fresh).ok());
  EXPECT_DOUBLE_EQ(from_cache.TotalCost(profile),
                   from_fresh.TotalCost(profile));
  EXPECT_EQ(from_cache.TotalBinInstances(), from_fresh.TotalBinInstances());
  EXPECT_EQ(from_cache.BinCounts(profile.max_cardinality()),
            from_fresh.BinCounts(profile.max_cardinality()));
}

TEST(OpqCacheTest, DistinctProfilesGetDistinctEntries) {
  OpqCache cache;
  auto jelly = BuildProfile(JellyModel(), 10);
  auto smic = BuildProfile(SmicModel(), 10);
  ASSERT_TRUE(jelly.ok() && smic.ok());
  EXPECT_NE(OpqCache::ProfileFingerprint(*jelly),
            OpqCache::ProfileFingerprint(*smic));
  ASSERT_TRUE(cache.GetOrBuild(*jelly, 0.9).ok());
  ASSERT_TRUE(cache.GetOrBuild(*smic, 0.9).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(OpqCacheTest, InvalidThresholdErrorIsMemoized) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto first = cache.GetOrBuild(profile, 1.5);
  EXPECT_FALSE(first.ok());
  auto second = cache.GetOrBuild(profile, 1.5);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), second.status().code());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OpqCacheTest, ConcurrentLookupsBuildOnce) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const OptimalPriorityQueue>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &profile, &seen, i] {
      auto lookup = cache.GetOrBuild(profile, 0.9);
      if (lookup.ok()) seen[i] = lookup->queue;
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_NE(seen[0], nullptr);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(OpqCacheTest, ClearResetsEverythingButKeepsHandedOutQueues) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto lookup = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(lookup.ok());
  auto held = lookup->queue;
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_GT(held->size(), 0u);  // still usable after Clear
  auto rebuilt = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->hit);
}

}  // namespace
}  // namespace slade
