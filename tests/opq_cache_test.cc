#include "engine/opq_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "binmodel/profile_model.h"
#include "solver/opq_solver.h"
#include "solver/plan.h"

namespace slade {
namespace {

TEST(OpqCacheTest, MissThenHit) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto first = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->hit);
  auto second = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(first->queue.get(), second->queue.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(OpqCacheTest, CachedQueueEqualsFreshBuild) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  for (double t : {0.8, 0.9, 0.95}) {
    auto cached = cache.GetOrBuild(profile, t);
    ASSERT_TRUE(cached.ok());
    auto fresh = BuildOpq(profile, t);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(cached->queue->size(), fresh->size());
    EXPECT_DOUBLE_EQ(cached->queue->theta(), fresh->theta());
    for (size_t i = 0; i < fresh->size(); ++i) {
      EXPECT_EQ(cached->queue->element(i).lcm(), fresh->element(i).lcm());
      EXPECT_DOUBLE_EQ(cached->queue->element(i).unit_cost(),
                       fresh->element(i).unit_cost());
    }
  }
}

TEST(OpqCacheTest, CachedQueueProducesSamePlanAsFreshBuild) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto cached = cache.GetOrBuild(profile, 0.92);
  ASSERT_TRUE(cached.ok());
  auto fresh = BuildOpq(profile, 0.92);
  ASSERT_TRUE(fresh.ok());

  std::vector<TaskId> ids(1234);
  std::iota(ids.begin(), ids.end(), 0);
  DecompositionPlan from_cache, from_fresh;
  ASSERT_TRUE(
      RunOpqAssignment(*cached->queue, ids, profile, &from_cache).ok());
  ASSERT_TRUE(RunOpqAssignment(*fresh, ids, profile, &from_fresh).ok());
  EXPECT_DOUBLE_EQ(from_cache.TotalCost(profile),
                   from_fresh.TotalCost(profile));
  EXPECT_EQ(from_cache.TotalBinInstances(), from_fresh.TotalBinInstances());
  EXPECT_EQ(from_cache.BinCounts(profile.max_cardinality()),
            from_fresh.BinCounts(profile.max_cardinality()));
}

TEST(OpqCacheTest, AggregatesBuildStatsAcrossMisses) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  OpqBuildStats direct_90, direct_95;
  ASSERT_TRUE(BuildOpq(profile, 0.90, {}, &direct_90).ok());
  ASSERT_TRUE(BuildOpq(profile, 0.95, {}, &direct_95).ok());

  ASSERT_TRUE(cache.GetOrBuild(profile, 0.90).ok());
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.95).ok());
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.90).ok());  // hit: no new build

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.build_stats.nodes_visited,
            direct_90.nodes_visited + direct_95.nodes_visited);
  EXPECT_EQ(stats.build_stats.insertions,
            direct_90.insertions + direct_95.insertions);
  EXPECT_GE(stats.build_seconds, 0.0);

  // ResetStats zeroes the build aggregates; entries stay resident.
  cache.ResetStats();
  stats = cache.stats();
  EXPECT_EQ(stats.builds, 0u);
  EXPECT_EQ(stats.build_stats.nodes_visited, 0u);
  EXPECT_EQ(cache.size(), 2u);

  // Clear keeps lifetime counters: a rebuild after Clear accumulates on
  // top of whatever ResetStats left.
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.90).ok());  // still a hit
  EXPECT_EQ(cache.stats().builds, 0u);
  cache.Clear();
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.90).ok());  // rebuild
  stats = cache.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.build_stats.nodes_visited, direct_90.nodes_visited);
}

TEST(OpqCacheTest, DistinctProfilesGetDistinctEntries) {
  OpqCache cache;
  auto jelly = BuildProfile(JellyModel(), 10);
  auto smic = BuildProfile(SmicModel(), 10);
  ASSERT_TRUE(jelly.ok() && smic.ok());
  EXPECT_NE(OpqCache::ProfileFingerprint(*jelly),
            OpqCache::ProfileFingerprint(*smic));
  ASSERT_TRUE(cache.GetOrBuild(*jelly, 0.9).ok());
  ASSERT_TRUE(cache.GetOrBuild(*smic, 0.9).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(OpqCacheTest, InvalidThresholdErrorIsMemoized) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto first = cache.GetOrBuild(profile, 1.5);
  EXPECT_FALSE(first.ok());
  auto second = cache.GetOrBuild(profile, 1.5);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), second.status().code());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OpqCacheTest, ConcurrentLookupsBuildOnce) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const OptimalPriorityQueue>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &profile, &seen, i] {
      auto lookup = cache.GetOrBuild(profile, 0.9);
      if (lookup.ok()) seen[i] = lookup->queue;
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_NE(seen[0], nullptr);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(OpqCacheTest, ClearDropsEntriesButKeepsLifetimeCounters) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  auto lookup = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(lookup.ok());
  auto held = lookup->queue;
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.9).ok());  // one hit on record
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  // Clearing entries must not rewrite history: a long-running server
  // clearing its cache keeps honest cumulative hit/miss counters.
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GT(held->size(), 0u);  // still usable after Clear
  auto rebuilt = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->hit);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(OpqCacheTest, ResetStatsZeroesCountersButKeepsEntries) {
  OpqCache cache;
  auto profile = BinProfile::PaperExample();
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.9).ok());
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.9).ok());
  cache.ResetStats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 1u);
  auto lookup = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(lookup.ok());
  EXPECT_TRUE(lookup->hit);  // the entry itself survived
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(OpqCacheTest, FingerprintCollisionsGetDistinctChainedEntries) {
  // fingerprint_mask = 0 keys every profile to fingerprint 0, so two
  // structurally different profiles collide by construction and must be
  // told apart by the structural-equality guard.
  OpqCacheOptions options;
  options.fingerprint_mask = 0;
  OpqCache cache(options);
  auto jelly = BuildProfile(JellyModel(), 6);
  auto smic = BuildProfile(SmicModel(), 6);
  ASSERT_TRUE(jelly.ok() && smic.ok());

  auto first = cache.GetOrBuild(*jelly, 0.9);
  auto second = cache.GetOrBuild(*smic, 0.9);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(first->queue.get(), second->queue.get());
  EXPECT_FALSE(second->hit);  // the collision built its own entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().collisions, 1u);

  // Each chained entry answers for exactly its own profile.
  auto expect_matches_fresh = [](const OpqCache::Lookup& cached,
                                 const BinProfile& profile) {
    auto fresh = BuildOpq(profile, 0.9);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(cached.queue->size(), fresh->size());
    for (size_t i = 0; i < fresh->size(); ++i) {
      EXPECT_EQ(cached.queue->element(i).lcm(), fresh->element(i).lcm());
      EXPECT_DOUBLE_EQ(cached.queue->element(i).unit_cost(),
                       fresh->element(i).unit_cost());
    }
  };
  expect_matches_fresh(*first, *jelly);
  expect_matches_fresh(*second, *smic);

  // Re-requests hit the right entry of the chain.
  auto again = cache.GetOrBuild(*jelly, 0.9);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->hit);
  EXPECT_EQ(again->queue.get(), first->queue.get());
}

TEST(OpqCacheTest, EntryCapacityEvictsLeastRecentlyUsed) {
  OpqCacheOptions options;
  options.max_entries = 2;
  options.num_shards = 1;  // single shard so LRU order is global
  OpqCache cache(options);
  auto profile = BinProfile::PaperExample();
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.80).ok());  // A
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.90).ok());  // B
  auto touch = cache.GetOrBuild(profile, 0.80);       // touch A: B is LRU
  ASSERT_TRUE(touch.ok());
  EXPECT_TRUE(touch->hit);
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.95).ok());  // C evicts B
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  auto a = cache.GetOrBuild(profile, 0.80);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->hit);  // A survived
  auto b = cache.GetOrBuild(profile, 0.90);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->hit);  // B was evicted and rebuilt
  EXPECT_EQ(cache.size(), 2u);
}

TEST(OpqCacheTest, ByteCapacityBoundsResidentBytes) {
  auto profile = BinProfile::PaperExample();
  // Measure one entry's charge with an unbounded probe cache, then budget
  // roughly two and a half entries.
  OpqCache probe;
  ASSERT_TRUE(probe.GetOrBuild(profile, 0.9).ok());
  const uint64_t one_entry = probe.stats().bytes;
  ASSERT_GT(one_entry, 0u);

  OpqCacheOptions options;
  options.max_bytes = one_entry * 5 / 2;
  options.num_shards = 1;
  OpqCache cache(options);
  for (double t : {0.80, 0.85, 0.90, 0.92, 0.95}) {
    ASSERT_TRUE(cache.GetOrBuild(profile, t).ok());
  }
  const CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_LE(stats.peak_bytes, options.max_bytes + one_entry * 2);
}

TEST(OpqCacheTest, EvictedQueueStaysValidForHolderAndRebuildsForRacers) {
  OpqCacheOptions options;
  options.max_entries = 1;
  OpqCache cache(options);
  auto profile = BinProfile::PaperExample();
  auto held = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(held.ok());
  auto queue = held->queue;
  ASSERT_TRUE(cache.GetOrBuild(profile, 0.8).ok());  // evicts the 0.9 entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The holder's queue is untouched by the eviction (shared_ptr contract):
  // an in-flight solve keeps working off it.
  std::vector<TaskId> ids(100);
  std::iota(ids.begin(), ids.end(), 0);
  DecompositionPlan plan;
  ASSERT_TRUE(RunOpqAssignment(*queue, ids, profile, &plan).ok());
  EXPECT_GT(plan.TotalBinInstances(), 0u);

  // A racer re-requesting the evicted key rebuilds a fresh, equal entry.
  auto rebuilt = cache.GetOrBuild(profile, 0.9);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->hit);
  EXPECT_NE(rebuilt->queue.get(), queue.get());
  ASSERT_EQ(rebuilt->queue->size(), queue->size());
  for (size_t i = 0; i < queue->size(); ++i) {
    EXPECT_EQ(rebuilt->queue->element(i).lcm(), queue->element(i).lcm());
  }
}

TEST(OpqCacheTest, ConcurrentLookupsUnderTinyCapacityStayConsistent) {
  // Threads hammer overlapping keys against a 2-entry cache, so builds,
  // hits and evictions race constantly. Every lookup must still return a
  // usable queue built for its own threshold. This is the ASan/TSan
  // payload for eviction racing an in-flight build.
  OpqCacheOptions options;
  options.max_entries = 2;
  OpqCache cache(options);
  auto profile = BinProfile::PaperExample();
  const double thresholds[] = {0.80, 0.85, 0.90, 0.92, 0.95};
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &profile, &thresholds, &failures, i] {
      for (int iter = 0; iter < kIters; ++iter) {
        const double t = thresholds[(i * 7 + iter) % 5];
        auto lookup = cache.GetOrBuild(profile, t);
        if (!lookup.ok() || lookup->queue == nullptr ||
            lookup->queue->theta() != LogReduction(t) ||
            lookup->queue->elements().back().lcm() != 1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(OpqCacheTest, ShardedCacheAggregatesAcrossShards) {
  OpqCacheOptions options;
  options.num_shards = 4;
  OpqCache cache(options);
  auto profile = BinProfile::PaperExample();
  const double thresholds[] = {0.80, 0.85, 0.90, 0.92, 0.95};
  for (double t : thresholds) ASSERT_TRUE(cache.GetOrBuild(profile, t).ok());
  for (double t : thresholds) {
    auto lookup = cache.GetOrBuild(profile, t);
    ASSERT_TRUE(lookup.ok());
    EXPECT_TRUE(lookup->hit);
  }
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.hits(), 5u);
  EXPECT_EQ(cache.misses(), 5u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 5u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.peak_bytes, stats.bytes);  // nothing was evicted
}

}  // namespace
}  // namespace slade
