#include "solver/greedy_solver.h"

#include <gtest/gtest.h>

#include "binmodel/profile_model.h"
#include "common/random.h"
#include "solver/plan_validator.h"

namespace slade {
namespace {

TEST(GreedySolverTest, ReproducesPaperExample5) {
  // Example 5: 4 tasks, t=0.95, Table 1 bins. The paper's trace ends with
  // plan {a1},{a2},{a3},{a4},{a1,a2,a3},{a4} and total cost 0.74.
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  GreedySolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalCost(profile), 0.74, 1e-9);
  auto counts = plan->BinCounts(3);
  EXPECT_EQ(counts[1], 5u);
  EXPECT_EQ(counts[3], 1u);
  auto report = ValidatePlan(*plan, *task, profile);
  EXPECT_TRUE(report->feasible);
}

TEST(GreedySolverTest, FirstPickMatchesPaperTrace) {
  // The paper's first iteration picks b1 ({a1}) because 0.1/w(0.9)=0.043
  // is the smallest ratio; verify the first placement is a singleton.
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  GreedySolver solver(GreedySolver::Strategy::kNaive);
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->placements().empty());
  EXPECT_EQ(plan->placements().front().cardinality, 1u);
}

TEST(GreedySolverTest, SingleTaskUsesCheapestSufficientCombination) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::Homogeneous(1, 0.9);
  GreedySolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, profile);
  EXPECT_TRUE(report->feasible);
  // theta(0.9) == w(0.9): exactly one singleton suffices and greedy's
  // ratio rule picks it.
  EXPECT_NEAR(plan->TotalCost(profile), 0.10, 1e-9);
}

class GreedyStrategyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, double, int>> {};

TEST_P(GreedyStrategyEquivalenceTest, FastMatchesNaive) {
  const auto [n, t, seed] = GetParam();
  const BinProfile profile =
      BuildProfile(JellyModel(), 8).ValueOrDie();

  // Mix of homogeneous and seeded-heterogeneous thresholds.
  Xoshiro256 rng(static_cast<uint64_t>(seed));
  std::vector<double> thresholds(n);
  for (auto& th : thresholds) {
    th = (seed % 2 == 0) ? t : rng.NextDouble(0.7, 0.97);
  }
  auto task = CrowdsourcingTask::FromThresholds(thresholds);
  ASSERT_TRUE(task.ok());

  GreedySolver fast(GreedySolver::Strategy::kFast);
  GreedySolver naive(GreedySolver::Strategy::kNaive);
  auto fast_plan = fast.Solve(*task, profile);
  auto naive_plan = naive.Solve(*task, profile);
  ASSERT_TRUE(fast_plan.ok());
  ASSERT_TRUE(naive_plan.ok());

  // The two strategies make identical decisions, so costs and per-
  // cardinality bin counts agree exactly.
  EXPECT_NEAR(fast_plan->TotalCost(profile),
              naive_plan->TotalCost(profile), 1e-9);
  auto fc = fast_plan->BinCounts(profile.max_cardinality());
  auto nc = naive_plan->BinCounts(profile.max_cardinality());
  EXPECT_EQ(fc, nc);

  EXPECT_TRUE(ValidatePlan(*fast_plan, *task, profile)->feasible);
  EXPECT_TRUE(ValidatePlan(*naive_plan, *task, profile)->feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyStrategyEquivalenceTest,
    ::testing::Values(std::make_tuple(1, 0.9, 0), std::make_tuple(2, 0.9, 1),
                      std::make_tuple(7, 0.95, 2),
                      std::make_tuple(16, 0.9, 3),
                      std::make_tuple(33, 0.85, 4),
                      std::make_tuple(64, 0.97, 5),
                      std::make_tuple(100, 0.9, 6),
                      std::make_tuple(100, 0.9, 7)));

class GreedyFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(GreedyFeasibilityTest, PlansAlwaysFeasible) {
  const auto [t, m] = GetParam();
  const BinProfile profile = BuildProfile(JellyModel(), m).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(257, t);
  GreedySolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  auto report = ValidatePlan(*plan, *task, profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->feasible)
      << "t=" << t << " m=" << m
      << " worst margin " << report->worst_log_margin;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyFeasibilityTest,
    ::testing::Combine(::testing::Values(0.87, 0.9, 0.92, 0.95, 0.97),
                       ::testing::Values(1u, 2u, 6u, 13u, 20u)));

TEST(GreedySolverTest, HeterogeneousThresholdsHandled) {
  const BinProfile profile = BinProfile::PaperExample();
  auto task = CrowdsourcingTask::FromThresholds({0.5, 0.6, 0.7, 0.86});
  GreedySolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

TEST(GreedySolverTest, BatchingKicksInForLargeHomogeneousInput) {
  // Mostly a performance property: 50k homogeneous tasks should solve
  // near-instantly thanks to run batching. Feasibility is still checked.
  const BinProfile profile = BuildProfile(JellyModel(), 20).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(50'000, 0.9);
  GreedySolver solver;
  auto plan = solver.Solve(*task, profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, *task, profile)->feasible);
}

}  // namespace
}  // namespace slade
