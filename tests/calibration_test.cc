#include "binmodel/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "binmodel/profile_model.h"
#include "common/random.h"

namespace slade {
namespace {

ProbeObservation MakeObs(uint32_t l, uint64_t total, uint64_t correct,
                         double cost) {
  ProbeObservation obs;
  obs.cardinality = l;
  obs.total = total;
  obs.correct = correct;
  obs.bin_cost = cost;
  return obs;
}

TEST(CountingEstimateTest, LaplaceSmoothing) {
  EXPECT_DOUBLE_EQ(CountingEstimate(MakeObs(1, 100, 90, 0.1)),
                   91.0 / 102.0);
  // All-correct probes stay strictly below 1.
  EXPECT_LT(CountingEstimate(MakeObs(1, 50, 50, 0.1)), 1.0);
  // All-wrong probes stay strictly above 0.
  EXPECT_GT(CountingEstimate(MakeObs(1, 50, 0, 0.1)), 0.0);
}

TEST(PowerLawFitTest, RecoversSyntheticParameters) {
  // Generate exact counts from failure = 0.01 * l^0.9 and check the fit
  // recovers (B, p) closely.
  std::vector<ProbeObservation> obs;
  for (uint32_t l : {1u, 2u, 4u, 8u, 16u}) {
    const double failure = 0.01 * std::pow(l, 0.9);
    const uint64_t total = 100000;
    // Invert the Laplace smoothing so CountingEstimate lands exactly on r.
    const double r = 1.0 - failure;
    const uint64_t correct =
        static_cast<uint64_t>(std::llround(r * (total + 2) - 1));
    obs.push_back(MakeObs(l, total, correct, 0.05 + 0.004 * l));
  }
  auto fit = PowerLawConfidenceFit::Fit(obs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->failure_base(), 0.01, 0.002);
  EXPECT_NEAR(fit->failure_power(), 0.9, 0.05);
  EXPECT_NEAR(fit->Predict(10), 1.0 - 0.01 * std::pow(10, 0.9), 0.01);
}

TEST(PowerLawFitTest, SingleCardinalityFallsBackToFlatFit) {
  // One distinct cardinality cannot identify a slope; the fit degrades to
  // p = 0 at the pooled failure estimate instead of erroring, so the
  // online recalibration loop keeps working when a platform only ever
  // serves one bin size.
  std::vector<ProbeObservation> obs = {MakeObs(3, 100, 90, 0.1),
                                       MakeObs(3, 100, 85, 0.1)};
  auto fit = PowerLawConfidenceFit::Fit(obs);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->failure_power(), 0.0);
  // Flat model: every cardinality predicts the same confidence, the
  // geometric pool of the per-observation counting estimates.
  const double pooled = std::sqrt((1.0 - CountingEstimate(obs[0])) *
                                  (1.0 - CountingEstimate(obs[1])));
  EXPECT_NEAR(fit->Predict(1), 1.0 - pooled, 1e-12);
  EXPECT_DOUBLE_EQ(fit->Predict(1), fit->Predict(17));
}

TEST(PowerLawFitTest, RejectsNoUsableObservations) {
  // Zero-answer observations are skipped; all-skipped input still errors.
  std::vector<ProbeObservation> obs = {MakeObs(3, 0, 0, 0.1),
                                       MakeObs(0, 100, 90, 0.1)};
  EXPECT_TRUE(
      PowerLawConfidenceFit::Fit(obs).status().IsInvalidArgument());
  EXPECT_TRUE(PowerLawConfidenceFit::Fit({}).status().IsInvalidArgument());
}

TEST(PowerLawFitTest, AllCorrectProbesMatchCountingSmoothing) {
  // All-correct probes would put ln(0) into the regression without the
  // Laplace smoothing; check the fit survives and stays consistent with
  // the per-cardinality counting estimates it is built from.
  std::vector<ProbeObservation> obs = {MakeObs(1, 500, 500, 0.05),
                                       MakeObs(4, 500, 500, 0.08)};
  auto fit = PowerLawConfidenceFit::Fit(obs);
  ASSERT_TRUE(fit.ok());
  for (const ProbeObservation& o : obs) {
    EXPECT_NEAR(fit->Predict(o.cardinality), CountingEstimate(o), 1e-9)
        << "l=" << o.cardinality;
  }
}

TEST(CalibrateProfileTest, CountingNeedsFullCoverage) {
  std::vector<ProbeObservation> obs = {MakeObs(1, 100, 95, 0.05),
                                       MakeObs(3, 100, 85, 0.07)};
  EXPECT_TRUE(CalibrateProfile(obs, 3, CalibrationMethod::kCounting)
                  .status()
                  .IsInvalidArgument());
}

TEST(CalibrateProfileTest, CountingBuildsProfile) {
  std::vector<ProbeObservation> obs = {MakeObs(1, 1000, 950, 0.05),
                                       MakeObs(2, 1000, 920, 0.06),
                                       MakeObs(3, 1000, 880, 0.07)};
  auto profile = CalibrateProfile(obs, 3, CalibrationMethod::kCounting);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->size(), 3u);
  EXPECT_NEAR(profile->bin(1).confidence, 951.0 / 1002.0, 1e-12);
  EXPECT_DOUBLE_EQ(profile->bin(2).cost, 0.06);
}

TEST(CalibrateProfileTest, RegressionInterpolatesMissingCardinalities) {
  std::vector<ProbeObservation> obs = {MakeObs(1, 5000, 4930, 0.05),
                                       MakeObs(4, 5000, 4700, 0.08),
                                       MakeObs(8, 5000, 4400, 0.12)};
  auto profile = CalibrateProfile(obs, 8, CalibrationMethod::kRegression);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->size(), 8u);
  // Confidence decreases monotonically (power law is monotone).
  for (uint32_t l = 2; l <= 8; ++l) {
    EXPECT_LE(profile->bin(l).confidence,
              profile->bin(l - 1).confidence + 1e-12);
  }
  // Cost at l=2 interpolates between the probes at l=1 and l=4.
  EXPECT_GT(profile->bin(2).cost, 0.05);
  EXPECT_LT(profile->bin(2).cost, 0.08);
}

TEST(CalibrateProfileTest, MergesRepeatedObservations) {
  std::vector<ProbeObservation> obs = {MakeObs(1, 100, 90, 0.05),
                                       MakeObs(1, 300, 285, 0.06),
                                       MakeObs(2, 100, 85, 0.07)};
  auto profile = CalibrateProfile(obs, 2, CalibrationMethod::kCounting);
  ASSERT_TRUE(profile.ok());
  // Merged counts: 375/400 -> (375+1)/(400+2).
  EXPECT_NEAR(profile->bin(1).confidence, 376.0 / 402.0, 1e-12);
  // Cheapest probed cost is kept.
  EXPECT_DOUBLE_EQ(profile->bin(1).cost, 0.05);
}

TEST(CalibrateProfileTest, CalibrationApproximatesGenerativeModel) {
  // Sample Bernoulli correctness counts from the Jelly model itself and
  // check the regression calibration lands near the analytic confidences.
  const DatasetModel jelly = JellyModel();
  Xoshiro256 rng(17);
  std::vector<ProbeObservation> obs;
  for (uint32_t l : {1u, 2u, 3u, 5u, 8u, 12u, 16u, 20u}) {
    const double cost = ModelBinCost(jelly, l);
    const double r = ModelConfidence(jelly, l, cost);
    ProbeObservation o;
    o.cardinality = l;
    o.bin_cost = cost;
    o.total = 20000;
    for (uint64_t i = 0; i < o.total; ++i) {
      if (rng.NextBernoulli(r)) ++o.correct;
    }
    obs.push_back(o);
  }
  auto profile = CalibrateProfile(obs, 20, CalibrationMethod::kRegression);
  ASSERT_TRUE(profile.ok());
  for (uint32_t l = 1; l <= 20; ++l) {
    const double analytic =
        ModelConfidence(jelly, l, ModelBinCost(jelly, l));
    // The generative model adds a pay penalty on top of the power law, so
    // the pure power-law fit carries some structural bias; 0.04 bounds it.
    EXPECT_NEAR(profile->bin(l).confidence, analytic, 0.04) << "l=" << l;
  }
}

TEST(CalibrateProfileTest, RegressionSingleCardinalityBuildsFlatProfile) {
  // Degenerate probe data: every probe at one cardinality. The regression
  // path used to fail here; now it builds the flat-fallback profile, with
  // every confidence equal to the counting estimate of the pooled probe
  // and the single probed cost carried to all cardinalities.
  std::vector<ProbeObservation> obs = {MakeObs(2, 400, 360, 0.06)};
  auto profile = CalibrateProfile(obs, 4, CalibrationMethod::kRegression);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->size(), 4u);
  const double expected = CountingEstimate(obs[0]);
  for (uint32_t l = 1; l <= 4; ++l) {
    EXPECT_NEAR(profile->bin(l).confidence, expected, 1e-12) << "l=" << l;
    EXPECT_DOUBLE_EQ(profile->bin(l).cost, 0.06);
  }
}

TEST(CalibrateProfileTest, RejectsEmptyAndZeroM) {
  EXPECT_FALSE(CalibrateProfile({}, 3, CalibrationMethod::kCounting).ok());
  EXPECT_FALSE(CalibrateProfile({MakeObs(1, 10, 9, 0.1)}, 0,
                                CalibrationMethod::kCounting)
                   .ok());
}

}  // namespace
}  // namespace slade
