#include "common/histogram.h"

#include <gtest/gtest.h>

namespace slade {
namespace {

TEST(HistogramTest, BucketsEvenly) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.total_count(), 10u);
  for (size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bucket_count(b), 1u) << "bucket " << b;
  }
}

TEST(HistogramTest, ClampsOutOfRangeValues) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(2.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(HistogramTest, UpperEdgeGoesToLastBucket) {
  Histogram h(0.0, 1.0, 4);
  h.Add(1.0);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 0.75);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 1.0);
}

TEST(HistogramTest, AsciiRenderingHasOneLinePerBucket) {
  Histogram h(0.0, 1.0, 5);
  for (int i = 0; i < 100; ++i) h.Add(0.5);
  const std::string art = h.ToAscii(20);
  size_t lines = 0;
  for (char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramTest, ZeroBucketRequestGetsOne) {
  Histogram h(0.0, 1.0, 0);
  h.Add(0.5);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

}  // namespace
}  // namespace slade
