// End-to-end comparison of all SLADE solvers on the simulated AMT platform
// (the Section 7 homogeneous default: Jelly, n = 10,000, t = 0.9,
// |B| = 20), including plan execution and measured recall.

#include <cstdio>
#include <iostream>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "simulator/executor.h"
#include "solver/plan_validator.h"
#include "solver/solver.h"
#include "workload/workload.h"

int main() {
  using namespace slade;

  auto workload = MakeHomogeneousWorkload(
      DatasetKind::kJelly, ExperimentDefaults::kNumTasks,
      ExperimentDefaults::kThreshold, ExperimentDefaults::kMaxCardinality);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  std::printf("Workload: %s on the Jelly profile (m=%u)\n\n",
              workload->task.ToString().c_str(),
              workload->profile.max_cardinality());

  std::vector<bool> truth(workload->task.size());
  Xoshiro256 rng(13);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.4);
  }

  TablePrinter table({"Solver", "Cost (USD)", "Bins", "Solve (s)",
                      "Feasible", "Measured recall", "Paid (USD)"});

  for (SolverKind kind : {SolverKind::kGreedy, SolverKind::kOpq,
                          SolverKind::kBaseline}) {
    auto solver = MakeSolver(kind);
    Stopwatch watch;
    auto plan = solver->Solve(workload->task, workload->profile);
    const double seconds = watch.ElapsedSeconds();
    if (!plan.ok()) {
      std::cerr << solver->name() << ": " << plan.status().ToString()
                << "\n";
      return 1;
    }
    auto report = ValidatePlan(*plan, workload->task, workload->profile);

    PlatformConfig config;
    config.model = JellyModel();
    config.seed = 555;  // same worker pool for every solver
    // Solvers plan against the average worker; skill dispersion would
    // bias mean failure upward (E[e^{sigma Z}] > 1) and unfairly punish
    // plans that sit exactly at the threshold, so it is disabled here.
    config.skill_sigma = 0.0;
    Platform platform(config);
    auto execution =
        ExecutePlan(platform, *plan, workload->profile, truth);
    if (!execution.ok()) {
      std::cerr << execution.status().ToString() << "\n";
      return 1;
    }

    table.AddRow(
        {solver->name(),
         TablePrinter::FormatDouble(plan->TotalCost(workload->profile), 2),
         std::to_string(plan->TotalBinInstances()),
         TablePrinter::FormatDouble(seconds, 3),
         report->feasible ? "yes" : "NO",
         TablePrinter::FormatDouble(execution->positive_recall, 4),
         TablePrinter::FormatDouble(execution->total_cost, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nAll plans hit the 0.9 reliability target; OPQ-Based "
               "pays the least for it\n(the paper's Section 7.1 "
               "conclusion).\n";
  return 0;
}
