// SLADE quickstart: the paper's running example end to end.
//
// Reproduces Table 1 (the bin profile), Example 5 (Greedy), Table 3 and
// Example 9 (the optimal priority queue and the OPQ-Based plan), and
// Example 10/11 (the heterogeneous OPQ-Extended run) on the 4-atomic-task
// toy instance.

#include <cstdio>
#include <iostream>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "solver/greedy_solver.h"
#include "solver/opq_builder.h"
#include "solver/opq_extended_solver.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

int main() {
  using namespace slade;

  // --- Table 1: the example bin profile --------------------------------
  const BinProfile profile = BinProfile::PaperExample();
  std::cout << "The paper's Table 1 bin profile:\n"
            << profile.ToString() << "\n";

  // --- Example 4: four atomic tasks, homogeneous t = 0.95 --------------
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  if (!task.ok()) {
    std::cerr << task.status().ToString() << "\n";
    return 1;
  }

  // --- Example 5: the Greedy plan ---------------------------------------
  GreedySolver greedy;
  auto greedy_plan = greedy.Solve(*task, profile);
  if (!greedy_plan.ok()) {
    std::cerr << greedy_plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Greedy (Algorithm 1):    " << greedy_plan->Summary(profile)
            << "\n";

  // --- Table 3: the optimal priority queue for t = 0.95 ----------------
  auto opq = BuildOpq(profile, 0.95);
  if (!opq.ok()) {
    std::cerr << opq.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nOptimal priority queue (Table 3):\n" << opq->ToString();

  // --- Example 9: the OPQ-Based plan ------------------------------------
  OpqSolver opq_solver;
  auto opq_plan = opq_solver.Solve(*task, profile);
  if (!opq_plan.ok()) {
    std::cerr << opq_plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "OPQ-Based (Algorithm 3): " << opq_plan->Summary(profile)
            << "\n";

  auto report = ValidatePlan(*opq_plan, *task, profile);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  std::printf("Feasible: %s (worst log-margin %.4f on task a%u)\n",
              report->feasible ? "yes" : "NO", report->worst_log_margin,
              report->worst_task + 1);

  // --- Examples 10/11: heterogeneous thresholds -------------------------
  auto hetero =
      CrowdsourcingTask::FromThresholds({0.5, 0.6, 0.7, 0.86});
  if (!hetero.ok()) {
    std::cerr << hetero.status().ToString() << "\n";
    return 1;
  }
  OpqExtendedSolver extended;
  auto hetero_plan = extended.Solve(*hetero, profile);
  if (!hetero_plan.ok()) {
    std::cerr << hetero_plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nHeterogeneous (Examples 10/11), t = {0.5, 0.6, 0.7, 0.86}:\n"
            << "OPQ-Extended (Algorithm 5): "
            << hetero_plan->Summary(profile) << "\n";
  auto hetero_report = ValidatePlan(*hetero_plan, *hetero, profile);
  if (!hetero_report.ok()) {
    std::cerr << hetero_report.status().ToString() << "\n";
    return 1;
  }
  std::printf("Feasible: %s\n", hetero_report->feasible ? "yes" : "NO");
  return 0;
}
