// Fishing-line discovery (paper Example 1): a large-scale screening task
// over satellite image tiles with heterogeneous reliability requirements.
//
// Tiles covering marine protected areas must not miss a fishing line
// (t = 0.99), open-ocean tiles are standard (t = 0.9), and coastal tiles
// that are independently patrolled only need t = 0.8. The task is
// decomposed with OPQ-Extended (Algorithm 5) and compared against the
// naive "every tile individually, repeated until reliable" strategy and
// against Greedy.

#include <cstdio>
#include <iostream>

#include "binmodel/profile_model.h"
#include "binmodel/task.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "solver/greedy_solver.h"
#include "solver/opq_extended_solver.h"
#include "solver/plan_validator.h"

namespace {

constexpr size_t kProtectedTiles = 4'000;
constexpr size_t kOpenOceanTiles = 30'000;
constexpr size_t kCoastalTiles = 6'000;

}  // namespace

int main() {
  using namespace slade;

  // The satellite-screening task behaves like the Jelly visual-comparison
  // task: a binary shape-detection question per tile.
  auto profile_result = BuildProfile(JellyModel(), 20);
  if (!profile_result.ok()) {
    std::cerr << profile_result.status().ToString() << "\n";
    return 1;
  }
  const BinProfile& profile = *profile_result;

  std::vector<double> thresholds;
  thresholds.reserve(kProtectedTiles + kOpenOceanTiles + kCoastalTiles);
  thresholds.insert(thresholds.end(), kProtectedTiles, 0.99);
  thresholds.insert(thresholds.end(), kOpenOceanTiles, 0.90);
  thresholds.insert(thresholds.end(), kCoastalTiles, 0.80);
  auto task = CrowdsourcingTask::FromThresholds(std::move(thresholds));
  if (!task.ok()) {
    std::cerr << task.status().ToString() << "\n";
    return 1;
  }

  std::printf("Fishing-line discovery: %zu tiles "
              "(%zu protected @0.99, %zu open ocean @0.90, "
              "%zu coastal @0.80)\n\n",
              task->size(), kProtectedTiles, kOpenOceanTiles, kCoastalTiles);
  std::cout << profile.ToString() << "\n";

  TablePrinter table(
      {"Strategy", "Cost (USD)", "Bins posted", "Time (s)", "Feasible"});

  // Naive plan: each tile processed individually until its threshold is
  // met (the "one way" of Example 1).
  {
    Stopwatch watch;
    DecompositionPlan naive;
    const double w1 = profile.bin(1).log_weight();
    for (TaskId id = 0; id < task->size(); ++id) {
      const auto copies = static_cast<uint32_t>(
          std::ceil(task->theta(id) / w1 - 1e-12));
      naive.Add(1, copies, {id});
    }
    auto report = ValidatePlan(naive, *task, profile);
    table.AddRow({"Individual tiles (b1 only)",
                  TablePrinter::FormatDouble(naive.TotalCost(profile), 2),
                  std::to_string(naive.TotalBinInstances()),
                  TablePrinter::FormatDouble(watch.ElapsedSeconds(), 3),
                  report->feasible ? "yes" : "NO"});
  }

  for (auto* solver :
       std::initializer_list<Solver*>{new GreedySolver(),
                                      new OpqExtendedSolver()}) {
    Stopwatch watch;
    auto plan = solver->Solve(*task, profile);
    if (!plan.ok()) {
      std::cerr << solver->name() << ": " << plan.status().ToString()
                << "\n";
      return 1;
    }
    const double seconds = watch.ElapsedSeconds();
    auto report = ValidatePlan(*plan, *task, profile);
    table.AddRow({solver->name(),
                  TablePrinter::FormatDouble(plan->TotalCost(profile), 2),
                  std::to_string(plan->TotalBinInstances()),
                  TablePrinter::FormatDouble(seconds, 3),
                  report->feasible ? "yes" : "NO"});
    delete solver;
  }

  table.Print(std::cout);
  std::cout << "\nThe decomposer batches open-ocean and coastal tiles into "
               "large bins while the\nprotected tiles get extra redundancy "
               "-- the same money buys far more coverage\nthan posting "
               "every tile as its own HIT.\n";
  return 0;
}
