// Micro-expression screening (paper Example 3 / Section 2): the full
// requester pipeline against the simulated SMIC platform.
//
//   1. post ground-truth probe bins at several cardinalities;
//   2. calibrate a bin profile from the probe answers (counting vs
//      power-law regression, Section 3.1);
//   3. decompose a 5,000-image screening task at t = 0.9 (OPQ-Based);
//   4. execute the plan on the platform and measure the realized recall.

#include <cstdio>
#include <iostream>

#include "binmodel/calibration.h"
#include "common/table_printer.h"
#include "simulator/executor.h"
#include "simulator/probe_runner.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

int main() {
  using namespace slade;

  PlatformConfig config;
  config.model = SmicModel();
  config.seed = 90210;
  config.skill_sigma = 0.2;
  Platform platform(config);

  // --- 1. probe ---------------------------------------------------------
  ProbePlan probes;
  probes.cardinalities = {1, 2, 4, 6, 8, 12, 16, 20};
  probes.bins_per_cardinality = 80;
  probes.assignments_per_bin = 3;
  auto observations = RunProbes(platform, probes);
  if (!observations.ok()) {
    std::cerr << observations.status().ToString() << "\n";
    return 1;
  }
  std::printf("Posted %llu probe bins (spent %.2f USD so far)\n",
              static_cast<unsigned long long>(platform.bins_posted()),
              platform.total_spent());

  TablePrinter probe_table({"l", "answers", "correct", "r(count)",
                            "r(model truth)"});
  for (const ProbeObservation& obs : *observations) {
    probe_table.AddRow(
        {std::to_string(obs.cardinality), std::to_string(obs.total),
         std::to_string(obs.correct),
         TablePrinter::FormatDouble(CountingEstimate(obs), 4),
         TablePrinter::FormatDouble(
             ModelConfidence(config.model, obs.cardinality, obs.bin_cost),
             4)});
  }
  probe_table.Print(std::cout);

  // --- 2. calibrate ------------------------------------------------------
  auto profile =
      CalibrateProfile(*observations, 20, CalibrationMethod::kRegression);
  if (!profile.ok()) {
    std::cerr << profile.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nCalibrated profile (power-law regression over probes):\n"
            << profile->ToString();

  // --- 3. decompose ------------------------------------------------------
  auto task = CrowdsourcingTask::Homogeneous(5'000, 0.9);
  OpqSolver solver;
  auto plan = solver.Solve(*task, *profile);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  auto report = ValidatePlan(*plan, *task, *profile);
  std::printf("\nDecomposition: %s\n", plan->Summary(*profile).c_str());
  std::printf("Planned reliability feasible: %s (worst log margin %.4f)\n",
              report->feasible ? "yes" : "NO", report->worst_log_margin);

  // --- 4. execute --------------------------------------------------------
  std::vector<bool> truth(task->size());
  Xoshiro256 rng(7);
  size_t positives = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.25);  // 25% of faces show the expression
    positives += truth[i];
  }
  auto execution = ExecutePlan(platform, *plan, *profile, truth);
  if (!execution.ok()) {
    std::cerr << execution.status().ToString() << "\n";
    return 1;
  }
  std::printf(
      "\nExecuted %llu bins for %.2f USD; %llu/%zu positive faces "
      "detected\n",
      static_cast<unsigned long long>(execution->bins_posted),
      execution->total_cost,
      static_cast<unsigned long long>(execution->positives -
                                      execution->false_negatives),
      positives);
  std::printf("Measured recall %.4f vs target reliability %.2f\n",
              execution->positive_recall, 0.9);
  std::printf("(calibration noise and worker-skill spread explain the "
              "difference)\n");
  return 0;
}
