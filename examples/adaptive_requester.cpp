// Adaptive requester: what happens when the calibrated profile is wrong.
//
// A requester calibrates bin confidences from last month's probes, but the
// worker pool has degraded (or the task got harder). A static SLADE plan
// silently under-delivers reliability. The adaptive decomposer
// (src/adaptive/) monitors quality on-line -- gold probes plus the
// pairwise-agreement estimator -- re-estimates the profile and tops up the
// shortfall.

#include <cstdio>
#include <iostream>

#include "adaptive/adaptive_decomposer.h"
#include "binmodel/profile_model.h"
#include "common/table_printer.h"

int main() {
  using namespace slade;

  // The platform's true behaviour: SMIC-grade workers.
  PlatformConfig config;
  config.model = SmicModel();
  config.seed = 4242;
  config.skill_sigma = 0.15;

  // The requester's *believed* profile: confidences inflated by stale
  // calibration (workers used to be better).
  const uint32_t m = 15;
  const BinProfile honest = BuildProfile(SmicModel(), m).ValueOrDie();
  std::vector<TaskBin> inflated;
  for (uint32_t l = 1; l <= m; ++l) {
    TaskBin b = honest.bin(l);
    b.confidence = std::min(0.995, b.confidence + 0.6 * (1 - b.confidence));
    inflated.push_back(b);
  }
  const BinProfile believed =
      BinProfile::Create(std::move(inflated)).ValueOrDie();

  auto task = CrowdsourcingTask::Homogeneous(3000, 0.95);
  std::vector<bool> truth(task->size());
  Xoshiro256 rng(99);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.NextBernoulli(0.35);
  }

  std::printf("Task: %s; believed r(1)=%.3f vs true r(1)=%.3f\n\n",
              task->ToString().c_str(), believed.bin(1).confidence,
              honest.bin(1).confidence);

  TablePrinter table({"Strategy", "Rounds", "Cost (USD)", "Recall",
                      "Max conf. error"});

  {
    Platform platform(config);
    AdaptiveOptions static_options;
    static_options.max_rounds = 1;
    auto report = RunAdaptiveDecomposition(platform, *task, believed, truth,
                                           static_options);
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({"Static (round 1 only)", std::to_string(report->rounds),
                  TablePrinter::FormatDouble(report->total_cost, 2),
                  TablePrinter::FormatDouble(report->positive_recall, 4),
                  TablePrinter::FormatDouble(
                      report->round_stats.back().max_confidence_error, 3)});
  }
  {
    Platform platform(config);
    AdaptiveOptions adaptive_options;
    adaptive_options.max_rounds = 6;
    auto report = RunAdaptiveDecomposition(platform, *task, believed, truth,
                                           adaptive_options);
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({"Adaptive (top-up rounds)", std::to_string(report->rounds),
                  TablePrinter::FormatDouble(report->total_cost, 2),
                  TablePrinter::FormatDouble(report->positive_recall, 4),
                  TablePrinter::FormatDouble(
                      report->round_stats.back().max_confidence_error, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nThe adaptive run spends more than the (under-provisioned) "
               "static plan but\nrestores the 0.95 reliability target and "
               "ends with near-true confidence\nestimates.\n";
  return 0;
}
