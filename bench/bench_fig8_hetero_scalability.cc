// Figure 8 (heterogeneous scalability): running time vs. number of atomic
// tasks on Jelly (8a) and SMIC (8b) with t_i ~ Normal(0.9, 0.03).
//
// Paper shape: all algorithms grow with n; OPQ-Extended pays extra over
// its homogeneous counterpart for building one OPQ per threshold group but
// stays the fastest; Greedy (paper-literal) is slowest. Decomposition cost
// is printed too for completeness.

#include <iostream>

#include "bench_util.h"
#include "solver/greedy_solver.h"
#include "workload/workload.h"

namespace {

using namespace slade;
using slade_bench::RunSolver;
using slade_bench::TimedSolve;

void Sweep(DatasetKind dataset, slade_bench::BenchJsonWriter* json) {
  const char* name = DatasetKindName(dataset);
  GreedySolver greedy;
  GreedySolver naive(GreedySolver::Strategy::kNaive);
  auto opqx = MakeSolver(SolverKind::kOpqExtended);
  auto baseline = MakeSolver(SolverKind::kBaseline);

  TablePrinter time(
      {"n", "Greedy", "Greedy-Naive", "OPQ-Extended", "Baseline"});
  TablePrinter cost({"n", "Greedy", "OPQ-Extended", "Baseline"});

  std::vector<size_t> ns = {1'000,  3'000,  5'000,  10'000, 15'000,
                            20'000, 30'000, 50'000, 75'000, 100'000};
  if (slade_bench::FastMode()) ns = {1'000, 5'000, 10'000};
  for (size_t n : ns) {
    ThresholdSpec spec;
    spec.family = ThresholdFamily::kNormal;
    spec.mu = 0.9;
    spec.sigma = 0.03;
    auto workload = MakeHeterogeneousWorkload(
        dataset, n, spec, 20, ExperimentDefaults::kSeed + n);
    TimedSolve g = RunSolver(greedy, workload->task, workload->profile);
    TimedSolve o = RunSolver(*opqx, workload->task, workload->profile);
    TimedSolve b = RunSolver(*baseline, workload->task, workload->profile);
    double naive_seconds = -1.0;
    if (n <= 20'000) {
      naive_seconds =
          RunSolver(naive, workload->task, workload->profile).seconds;
    }
    time.AddRow(std::to_string(n),
                {g.seconds, naive_seconds, o.seconds, b.seconds}, 4);
    cost.AddRow(std::to_string(n), {g.cost, o.cost, b.cost}, 2);
    const struct {
      const char* solver;
      const TimedSolve* run;
    } series[] = {{"Greedy", &g}, {"OPQ-Extended", &o}, {"Baseline", &b}};
    for (const auto& s : series) {
      json->BeginRecord();
      json->Field("dataset", name);
      json->Field("solver", s.solver);
      json->Field("n", static_cast<double>(n));
      json->Field("seconds", s.run->seconds);
      json->Field("cost", s.run->cost);
    }
  }
  PrintBanner(std::cout,
              std::string("Figure 8 analog (") + name +
                  "): # of atomic tasks vs. Time (seconds; Greedy-Naive "
                  "= paper-literal resort, -1 = skipped)");
  time.Print(std::cout);
  PrintBanner(std::cout, std::string("Companion (") + name +
                             "): # of atomic tasks vs. Cost (USD)");
  cost.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Figure 8 reproduction: heterogeneous scalability "
               "(t_i ~ N(0.9, 0.03), |B|=20).\n";
  slade_bench::BenchJsonWriter json("fig8_hetero_scalability");
  Sweep(DatasetKind::kJelly, &json);
  Sweep(DatasetKind::kSmic, &json);
  json.Write();
  return 0;
}
