// Ablation benchmarks for the design choices called out in DESIGN.md:
//
//   A1: the Lemma 1 dominance pruning inside the OPQ builder
//       (nodes visited / build time, identical output);
//   A2: Greedy execution strategy -- paper-literal re-sort (kNaive) vs.
//       linear merge + run batching (kFast), identical plans;
//   A3: Baseline column-sampling budget (columns per cardinality);
//   A4: Baseline chunk size.

#include <iostream>

#include "bench_util.h"
#include "solver/baseline_solver.h"
#include "solver/greedy_solver.h"
#include "solver/opq_builder.h"
#include "workload/workload.h"

namespace {

using namespace slade;
using slade_bench::RunSolver;
using slade_bench::TimedSolve;

void OpqPruningAblation() {
  PrintBanner(std::cout,
              "A1: OPQ builder, Lemma 1 pruning on/off (identical queues)");
  TablePrinter table({"dataset", "t", "m", "nodes(pruned)", "nodes(full)",
                      "time pruned (s)", "time full (s)", "queue size"});
  for (DatasetKind dataset : {DatasetKind::kJelly, DatasetKind::kSmic}) {
    const BinProfile profile =
        BuildProfile(MakeModel(dataset), 20).ValueOrDie();
    for (double t : {0.9, 0.95, 0.97}) {
      OpqBuildOptions with, without;
      without.enable_partial_pruning = false;
      OpqBuildStats stats_with, stats_without;
      Stopwatch w1;
      auto a = BuildOpq(profile, t, with, &stats_with);
      const double t1 = w1.ElapsedSeconds();
      Stopwatch w2;
      auto b = BuildOpq(profile, t, without, &stats_without);
      const double t2 = w2.ElapsedSeconds();
      if (!a.ok() || !b.ok() || a->size() != b->size()) {
        std::cerr << "pruning ablation mismatch!\n";
        std::exit(1);
      }
      table.AddRow({DatasetKindName(dataset),
                    TablePrinter::FormatDouble(t, 2), "20",
                    std::to_string(stats_with.nodes_visited),
                    std::to_string(stats_without.nodes_visited),
                    TablePrinter::FormatDouble(t1, 4),
                    TablePrinter::FormatDouble(t2, 4),
                    std::to_string(a->size())});
    }
  }
  table.Print(std::cout);
}

void GreedyStrategyAblation() {
  PrintBanner(std::cout,
              "A2: Greedy re-sort (paper) vs. merge+batch (ours), same "
              "plans");
  TablePrinter table({"workload", "n", "naive (s)", "fast (s)",
                      "cost naive", "cost fast"});
  GreedySolver naive(GreedySolver::Strategy::kNaive);
  GreedySolver fast(GreedySolver::Strategy::kFast);
  std::vector<size_t> ns = slade_bench::FastMode()
                               ? std::vector<size_t>{1'000}
                               : std::vector<size_t>{1'000, 5'000, 10'000,
                                                     20'000};
  for (size_t n : ns) {
    // Homogeneous (batching shines).
    {
      auto workload =
          MakeHomogeneousWorkload(DatasetKind::kJelly, n, 0.9, 20);
      TimedSolve a = RunSolver(naive, workload->task, workload->profile);
      TimedSolve b = RunSolver(fast, workload->task, workload->profile);
      table.AddRow({"homogeneous t=0.9", std::to_string(n),
                    TablePrinter::FormatDouble(a.seconds, 4),
                    TablePrinter::FormatDouble(b.seconds, 4),
                    TablePrinter::FormatDouble(a.cost, 2),
                    TablePrinter::FormatDouble(b.cost, 2)});
    }
    // Heterogeneous (merge only; no batching possible).
    {
      ThresholdSpec spec;
      spec.family = ThresholdFamily::kNormal;
      auto workload = MakeHeterogeneousWorkload(DatasetKind::kJelly, n,
                                                spec, 20, 77);
      TimedSolve a = RunSolver(naive, workload->task, workload->profile);
      TimedSolve b = RunSolver(fast, workload->task, workload->profile);
      table.AddRow({"hetero N(0.9,0.03)", std::to_string(n),
                    TablePrinter::FormatDouble(a.seconds, 4),
                    TablePrinter::FormatDouble(b.seconds, 4),
                    TablePrinter::FormatDouble(a.cost, 2),
                    TablePrinter::FormatDouble(b.cost, 2)});
    }
  }
  table.Print(std::cout);
}

void BaselineColumnAblation() {
  PrintBanner(std::cout,
              "A3: Baseline column budget (random columns per cardinality)");
  TablePrinter table({"columns/l", "cost (USD)", "time (s)"});
  const size_t n = slade_bench::FastMode() ? 1'000 : 10'000;
  auto workload = MakeHomogeneousWorkload(DatasetKind::kJelly, n, 0.9, 20);
  for (uint32_t columns : {0u, 2u, 4u, 8u, 16u, 32u}) {
    SolverOptions options;
    options.baseline_columns_per_cardinality = columns;
    BaselineSolver solver(options);
    TimedSolve r = RunSolver(solver, workload->task, workload->profile);
    table.AddRow({std::to_string(columns),
                  TablePrinter::FormatDouble(r.cost, 2),
                  TablePrinter::FormatDouble(r.seconds, 4)});
  }
  table.Print(std::cout);
}

void BaselineChunkAblation() {
  PrintBanner(std::cout, "A4: Baseline chunk size");
  TablePrinter table({"chunk", "cost (USD)", "time (s)"});
  const size_t n = slade_bench::FastMode() ? 1'000 : 10'000;
  auto workload = MakeHomogeneousWorkload(DatasetKind::kJelly, n, 0.9, 20);
  for (uint32_t chunk : {16u, 32u, 48u, 64u, 96u}) {
    SolverOptions options;
    options.baseline_chunk_size = chunk;
    BaselineSolver solver(options);
    TimedSolve r = RunSolver(solver, workload->task, workload->profile);
    table.AddRow({std::to_string(chunk),
                  TablePrinter::FormatDouble(r.cost, 2),
                  TablePrinter::FormatDouble(r.seconds, 4)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Ablation benchmarks (see DESIGN.md, experiment A1).\n";
  OpqPruningAblation();
  GreedyStrategyAblation();
  BaselineColumnAblation();
  BaselineChunkAblation();
  return 0;
}
