// Adaptive-decomposition benchmark (our extension; DESIGN.md experiment
// A5): static vs. closed-loop planning under profile miscalibration.
//
// Sweep the confidence inflation of the requester's believed profile and
// report, for the static single-round plan and the adaptive loop:
// cost, measured positive recall, and the final confidence-estimate error.
// Also sweeps the prior-practice Fixed-Cardinality solver as a context
// series for the same workloads (all correctly calibrated).

#include <iostream>

#include "adaptive/adaptive_decomposer.h"
#include "bench_util.h"
#include "solver/baseline_solver.h"
#include "solver/budget_solver.h"
#include "solver/fixed_cardinality_solver.h"
#include "workload/workload.h"

namespace {

using namespace slade;

Result<BinProfile> Inflate(const BinProfile& honest, double inflation) {
  std::vector<TaskBin> bins;
  for (uint32_t l = 1; l <= honest.max_cardinality(); ++l) {
    TaskBin b = honest.bin(l);
    b.confidence =
        std::min(0.995, b.confidence + inflation * (1 - b.confidence));
    bins.push_back(b);
  }
  return BinProfile::Create(std::move(bins));
}

void MiscalibrationSweep() {
  PrintBanner(std::cout,
              "A5a: static vs adaptive under profile miscalibration "
              "(SMIC, n=2000, t=0.95)");
  TablePrinter table({"inflation", "static cost", "static recall",
                      "adaptive cost", "adaptive recall",
                      "adaptive rounds", "final conf. error"});
  const size_t n = slade_bench::FastMode() ? 500 : 2000;
  const BinProfile honest = BuildProfile(SmicModel(), 15).ValueOrDie();
  auto task = CrowdsourcingTask::Homogeneous(n, 0.95).ValueOrDie();

  for (double inflation : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    auto believed = Inflate(honest, inflation);
    if (!believed.ok()) {
      std::cerr << believed.status().ToString() << "\n";
      std::exit(1);
    }
    std::vector<bool> truth(n);
    Xoshiro256 rng(314159);
    for (size_t i = 0; i < n; ++i) truth[i] = rng.NextBernoulli(0.5);

    PlatformConfig config;
    config.model = SmicModel();
    config.seed = 2718;
    config.skill_sigma = 0.0;

    AdaptiveOptions static_options;
    static_options.max_rounds = 1;
    Platform static_platform(config);
    auto static_report = RunAdaptiveDecomposition(
        static_platform, task, *believed, truth, static_options);

    AdaptiveOptions adaptive_options;
    adaptive_options.max_rounds = 6;
    Platform adaptive_platform(config);
    auto adaptive_report = RunAdaptiveDecomposition(
        adaptive_platform, task, *believed, truth, adaptive_options);

    if (!static_report.ok() || !adaptive_report.ok()) {
      std::cerr << "adaptive benchmark failed\n";
      std::exit(1);
    }
    table.AddRow(
        {TablePrinter::FormatDouble(inflation, 1),
         TablePrinter::FormatDouble(static_report->total_cost, 2),
         TablePrinter::FormatDouble(static_report->positive_recall, 4),
         TablePrinter::FormatDouble(adaptive_report->total_cost, 2),
         TablePrinter::FormatDouble(adaptive_report->positive_recall, 4),
         std::to_string(adaptive_report->rounds),
         TablePrinter::FormatDouble(
             adaptive_report->round_stats.back().max_confidence_error,
             3)});
  }
  table.Print(std::cout);
}

void PriorPracticeSweep() {
  PrintBanner(std::cout,
              "A5b: SLADE vs prior practice (single fixed cardinality), "
              "SMIC, n=10000");
  TablePrinter table({"t", "Fixed(best l)", "Fixed(l=1)", "Fixed(l=20)",
                      "OPQ-Based", "saving vs best fixed"});
  const size_t n = slade_bench::FastMode() ? 1000 : 10'000;
  FixedCardinalitySolver best_fixed;
  FixedCardinalitySolver singletons(1);
  FixedCardinalitySolver maximal(20);
  auto opq = MakeSolver(SolverKind::kOpq);
  for (double t : {0.90, 0.95, 0.97, 0.99}) {
    auto workload = MakeHomogeneousWorkload(DatasetKind::kSmic, n, t, 20);
    auto a = slade_bench::RunSolver(best_fixed, workload->task,
                                    workload->profile);
    auto b = slade_bench::RunSolver(singletons, workload->task,
                                    workload->profile);
    auto c = slade_bench::RunSolver(maximal, workload->task,
                                    workload->profile);
    auto d = slade_bench::RunSolver(*opq, workload->task,
                                    workload->profile);
    const double saving = 100.0 * (a.cost - d.cost) / a.cost;
    table.AddRow({TablePrinter::FormatDouble(t, 2),
                  TablePrinter::FormatDouble(a.cost, 2),
                  TablePrinter::FormatDouble(b.cost, 2),
                  TablePrinter::FormatDouble(c.cost, 2),
                  TablePrinter::FormatDouble(d.cost, 2),
                  TablePrinter::FormatDouble(saving, 1) + "%"});
  }
  table.Print(std::cout);
}

void BudgetSweep() {
  PrintBanner(std::cout,
              "A5c: budget-constrained dual (max reliability a budget "
              "buys), Jelly, n=10000");
  TablePrinter table({"budget (USD)", "best t", "plan cost"});
  const size_t n = slade_bench::FastMode() ? 1000 : 10'000;
  const double scale = static_cast<double>(n) / 10'000.0;
  const BinProfile profile = BuildProfile(JellyModel(), 20).ValueOrDie();
  for (double budget : {60.0, 90.0, 120.0, 200.0, 400.0}) {
    auto result =
        MaxReliabilityUnderBudget(n, profile, budget * scale);
    if (!result.ok()) {
      table.AddRow({TablePrinter::FormatDouble(budget * scale, 2),
                    "infeasible", "-"});
      continue;
    }
    table.AddRow({TablePrinter::FormatDouble(budget * scale, 2),
                  TablePrinter::FormatDouble(result->threshold, 4),
                  TablePrinter::FormatDouble(result->cost, 2)});
  }
  table.Print(std::cout);
}

void ParallelBaselineSweep() {
  PrintBanner(std::cout, "A5d: baseline chunk parallelism (threads vs time)");
  TablePrinter table({"threads", "time (s)", "cost (USD)"});
  const size_t n = slade_bench::FastMode() ? 2000 : 20'000;
  auto workload = MakeHomogeneousWorkload(DatasetKind::kJelly, n, 0.9, 20);
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    SolverOptions options;
    options.baseline_threads = threads;
    BaselineSolver solver(options);
    auto r = slade_bench::RunSolver(solver, workload->task,
                                    workload->profile);
    table.AddRow({std::to_string(threads),
                  TablePrinter::FormatDouble(r.seconds, 4),
                  TablePrinter::FormatDouble(r.cost, 2)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Adaptive decomposition + prior-practice benchmarks "
               "(extensions beyond the paper).\n";
  MiscalibrationSweep();
  PriorPracticeSweep();
  BudgetSweep();
  ParallelBaselineSweep();
  return 0;
}
