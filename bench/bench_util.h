// Shared helpers for the figure-reproduction benchmark harnesses.

#ifndef SLADE_BENCH_BENCH_UTIL_H_
#define SLADE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "solver/plan_validator.h"
#include "solver/solver.h"

namespace slade_bench {

struct TimedSolve {
  double cost = 0.0;
  double seconds = 0.0;
  bool feasible = false;
};

/// Solves, times, validates; aborts the harness on solver failure (a
/// failed figure run should be loud, not silently skipped).
inline TimedSolve RunSolver(slade::Solver& solver,
                            const slade::CrowdsourcingTask& task,
                            const slade::BinProfile& profile) {
  slade::Stopwatch watch;
  auto plan = solver.Solve(task, profile);
  TimedSolve out;
  out.seconds = watch.ElapsedSeconds();
  if (!plan.ok()) {
    std::cerr << solver.name() << " failed: " << plan.status().ToString()
              << "\n";
    std::exit(1);
  }
  out.cost = plan->TotalCost(profile);
  auto report = slade::ValidatePlan(*plan, task, profile);
  if (!report.ok()) {
    std::cerr << solver.name()
              << " produced a malformed plan: "
              << report.status().ToString() << "\n";
    std::exit(1);
  }
  out.feasible = report->feasible;
  if (!out.feasible) {
    std::cerr << "WARNING: " << solver.name()
              << " plan infeasible (margin " << report->worst_log_margin
              << ")\n";
  }
  return out;
}

/// True when SLADE_BENCH_FAST is set: harnesses shrink their sweeps for
/// quick iteration during development.
inline bool FastMode() { return std::getenv("SLADE_BENCH_FAST") != nullptr; }

// Build provenance baked in by bench/CMakeLists.txt, stamped into every
// emitted JSON so a BENCH_*.json artifact is self-describing (which
// commit, compiler and build type produced it). Harmless defaults keep
// ad-hoc compiles (no CMake definitions) working.
#ifndef SLADE_GIT_SHA
#define SLADE_GIT_SHA "unknown"
#endif
#ifndef SLADE_BUILD_TYPE
#define SLADE_BUILD_TYPE "unknown"
#endif
#if defined(__clang__)
#define SLADE_BENCH_COMPILER "clang " __clang_version__
#elif defined(__GNUC__)
#define SLADE_BENCH_COMPILER "gcc " __VERSION__
#else
#define SLADE_BENCH_COMPILER "unknown"
#endif

/// \brief Accumulates flat records and writes them as
/// `BENCH_<name>.json` next to the human-readable tables, so the perf
/// trajectory is machine-readable across PRs:
///
/// \code
///   BenchJsonWriter json("engine_batch");
///   json.BeginRecord();
///   json.Field("mode", "engine");
///   json.Field("seconds", 0.004);
///   ...
///   json.Write();  // {"bench": "engine_batch", "records": [{...}, ...]}
/// \endcode
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}

  /// Starts a new record; subsequent Field() calls land in it.
  void BeginRecord() { records_.emplace_back(); }

  void Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    Append(key, buf);
  }

  void Field(const std::string& key, const std::string& value) {
    Append(key, "\"" + Escape(value) + "\"");
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Writes the JSON file; warns (but does not abort) on IO failure so a
  /// read-only working directory never kills a benchmark run. Provenance
  /// lands in top-level keys (never inside records), so the trend tool's
  /// record pairing is unaffected across commits and compilers.
  bool Write() const {
    std::ofstream out(path());
    if (!out) {
      std::cerr << "WARNING: cannot write " << path() << "\n";
      return false;
    }
    out << "{\"bench\": \"" << Escape(name_) << "\",\n"
        << " \"git_sha\": \"" << Escape(SLADE_GIT_SHA) << "\","
        << " \"compiler\": \"" << Escape(SLADE_BENCH_COMPILER) << "\","
        << " \"build_type\": \"" << Escape(SLADE_BUILD_TYPE) << "\",\n"
        << " \"records\": [";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << (i ? ",\n  {" : "\n  {") << records_[i] << "}";
    }
    out << "\n]}\n";
    std::cout << "wrote " << path() << " (" << records_.size()
              << " records)\n";
    return out.good();
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  void Append(const std::string& key, const std::string& rendered) {
    if (records_.empty()) records_.emplace_back();  // Field before BeginRecord
    std::string& record = records_.back();
    if (!record.empty()) record += ", ";
    record += "\"" + Escape(key) + "\": " + rendered;
  }

  std::string name_;
  std::vector<std::string> records_;  // serialized field lists
};

}  // namespace slade_bench

#endif  // SLADE_BENCH_BENCH_UTIL_H_
