// Shared helpers for the figure-reproduction benchmark harnesses.

#ifndef SLADE_BENCH_BENCH_UTIL_H_
#define SLADE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "solver/plan_validator.h"
#include "solver/solver.h"

namespace slade_bench {

struct TimedSolve {
  double cost = 0.0;
  double seconds = 0.0;
  bool feasible = false;
};

/// Solves, times, validates; aborts the harness on solver failure (a
/// failed figure run should be loud, not silently skipped).
inline TimedSolve RunSolver(slade::Solver& solver,
                            const slade::CrowdsourcingTask& task,
                            const slade::BinProfile& profile) {
  slade::Stopwatch watch;
  auto plan = solver.Solve(task, profile);
  TimedSolve out;
  out.seconds = watch.ElapsedSeconds();
  if (!plan.ok()) {
    std::cerr << solver.name() << " failed: " << plan.status().ToString()
              << "\n";
    std::exit(1);
  }
  out.cost = plan->TotalCost(profile);
  auto report = slade::ValidatePlan(*plan, task, profile);
  if (!report.ok()) {
    std::cerr << solver.name()
              << " produced a malformed plan: "
              << report.status().ToString() << "\n";
    std::exit(1);
  }
  out.feasible = report->feasible;
  if (!out.feasible) {
    std::cerr << "WARNING: " << solver.name()
              << " plan infeasible (margin " << report->worst_log_margin
              << ")\n";
  }
  return out;
}

/// True when SLADE_BENCH_FAST is set: harnesses shrink their sweeps for
/// quick iteration during development.
inline bool FastMode() { return std::getenv("SLADE_BENCH_FAST") != nullptr; }

}  // namespace slade_bench

#endif  // SLADE_BENCH_BENCH_UTIL_H_
