// Figure 3 (motivation experiments): cardinality vs. confidence per bin
// cost, on the simulated platform.
//
//   3a: Jelly-Beans-in-a-Jar, costs {0.05, 0.08, 0.10}, 40-min timeout;
//   3b: Micro-Expressions (SMIC), costs {0.05, 0.10, 0.20}, 30-min timeout;
//   3c: Jelly difficulty 1/2/3 at cost 0.10.
//
// Each cell is a Monte-Carlo estimate over posted probe bins (10
// assignments each, as in Section 2). "(OT)" marks overtime bins -- the
// dotted-line regime where answers do not arrive within the threshold.

#include <iostream>

#include "bench_util.h"
#include "simulator/platform.h"

namespace {

using namespace slade;

std::string Cell(Platform& platform, uint32_t l, double cost, int bins) {
  const DatasetModel& model = platform.config().model;
  uint64_t total = 0, correct = 0, overtime = 0;
  Xoshiro256 truth_rng(l * 7919 + static_cast<uint64_t>(cost * 1000));
  for (int b = 0; b < bins; ++b) {
    std::vector<bool> truth(l);
    for (uint32_t i = 0; i < l; ++i) truth[i] = truth_rng.NextBernoulli(0.5);
    auto outcome =
        platform.PostBin(l, cost, truth, model.assignments_required);
    if (!outcome.ok()) {
      std::cerr << outcome.status().ToString() << "\n";
      std::exit(1);
    }
    if (outcome->overtime) ++overtime;
    for (const AssignmentOutcome& assignment : outcome->assignments) {
      for (uint32_t i = 0; i < l; ++i) {
        ++total;
        if (assignment.answers[i] == truth[i]) ++correct;
      }
    }
  }
  const double confidence =
      static_cast<double>(correct) / static_cast<double>(total);
  std::string cell = TablePrinter::FormatDouble(confidence, 3);
  if (overtime * 2 > static_cast<uint64_t>(bins)) cell += " (OT)";
  return cell;
}

void RunFigure(const std::string& title, const DatasetModel& model,
               const std::vector<double>& costs, uint32_t l_lo,
               uint32_t l_hi, uint32_t l_step) {
  PrintBanner(std::cout, title);
  const int bins = slade_bench::FastMode() ? 8 : 40;

  std::vector<std::string> header = {"Cardinality"};
  for (double c : costs) {
    header.push_back("cost=" + TablePrinter::FormatDouble(c, 2));
  }
  TablePrinter table(header);

  PlatformConfig config;
  config.model = model;
  config.seed = 303;
  config.skill_sigma = 0.25;
  Platform platform(config);

  for (uint32_t l = l_lo; l <= l_hi; l += l_step) {
    std::vector<std::string> row = {std::to_string(l)};
    for (double cost : costs) {
      row.push_back(Cell(platform, l, cost, bins));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Figure 3 reproduction: cardinality vs. confidence on the "
               "simulated platform.\nPaper anchors: Jelly r(2)~0.981 -> "
               "r(30)~0.783 at cost 0.10; cost 0.05 overtime\nbeyond l=14, "
               "cost 0.08 beyond l=24. '(OT)' marks overtime cells.\n";

  RunFigure("Figure 3a: Jelly-Beans-in-a-Jar", JellyModel(),
            {0.05, 0.08, 0.10}, 2, 30, 2);
  RunFigure("Figure 3b: Micro-Expressions (SMIC)", SmicModel(),
            {0.05, 0.10, 0.20}, 2, 30, 2);

  PrintBanner(std::cout, "Figure 3c: Jelly difficulty levels (cost 0.10)");
  const int bins = slade_bench::FastMode() ? 8 : 40;
  TablePrinter table({"Cardinality", "Diff. 1", "Diff. 2", "Diff. 3"});
  std::vector<Platform> platforms;
  for (int difficulty = 1; difficulty <= 3; ++difficulty) {
    PlatformConfig config;
    config.model = JellyModel(difficulty);
    config.seed = 404;
    config.skill_sigma = 0.25;
    platforms.emplace_back(config);
  }
  for (uint32_t l = 1; l <= 20; ++l) {
    std::vector<std::string> row = {std::to_string(l)};
    for (auto& platform : platforms) {
      row.push_back(Cell(platform, l, 0.10, bins));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
