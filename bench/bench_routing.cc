// Multi-platform routing overhead and epoch-promotion invalidation cost.
//
// Two questions the profile registry must answer cheaply:
//
//  1. What does routing cost? Replays the same submission stream through a
//     plain single-profile StreamingEngine and through registry-routed
//     engines with 1, 4 and 8 registered platforms (cheapest and sticky
//     policies). With identical profiles the solves are identical, so the
//     throughput gap is pure routing overhead.
//
//  2. What does a promotion cost? Warms the OPQ cache across several
//     platforms, then promotes one epoch at a time and measures the
//     eviction: entries dropped (only the promoted platform's), wall time,
//     and the rebuild cost of the next submission on the new epoch.
//
// Emits BENCH_routing.json alongside the tables.

#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "engine/profile_registry.h"
#include "engine/streaming_engine.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace {

using namespace slade;

struct Submission {
  std::string requester;
  std::vector<CrowdsourcingTask> tasks;
};

std::vector<Submission> MakeSubmissions(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;

  std::vector<Submission> submissions;
  submissions.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    Submission submission;
    submission.requester = "r" + std::to_string(rng.NextBounded(8));
    const size_t num_tasks = static_cast<size_t>(rng.NextInt(1, 3));
    for (size_t k = 0; k < num_tasks; ++k) {
      const size_t num_atomic = static_cast<size_t>(rng.NextInt(10, 30));
      const uint64_t task_seed = rng.Next();
      auto thresholds = GenerateThresholds(spec, num_atomic, task_seed);
      submission.tasks.push_back(
          CrowdsourcingTask::FromThresholds(
              std::move(thresholds).ValueOrDie())
              .ValueOrDie());
    }
    submissions.push_back(std::move(submission));
  }
  return submissions;
}

StreamingOptions BatchOptions() {
  StreamingOptions options;
  options.max_pending_submissions = 16;
  options.max_pending_atomic_tasks = 1u << 20;
  options.max_delay_seconds = 10.0;
  options.num_threads = 4;
  return options;
}

struct RunResult {
  double wall_seconds = 0.0;
  double per_second = 0.0;
  double billed_cost = 0.0;
};

RunResult Replay(const BinProfile& profile,
                 const std::vector<Submission>& submissions,
                 const StreamingOptions& options) {
  Stopwatch wall;
  StreamingEngine engine(profile, options);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  futures.reserve(submissions.size());
  for (const Submission& submission : submissions) {
    futures.push_back(engine.Submit(submission.requester, submission.tasks));
  }
  engine.Drain();

  RunResult result;
  for (auto& future : futures) {
    auto slice = future.get();
    if (!slice.ok()) {
      std::cerr << "routed solve failed: " << slice.status().ToString()
                << "\n";
      std::exit(1);
    }
    result.billed_cost += slice->cost;
  }
  result.wall_seconds = wall.ElapsedSeconds();
  result.per_second =
      static_cast<double>(submissions.size()) / result.wall_seconds;
  return result;
}

}  // namespace

int main() {
  std::cout << "Registry routing overhead and epoch-promotion cost\n"
               "(Jelly |B|=12, identical profiles per platform, 16-sub "
               "micro-batches, 4 threads).\n";

  size_t num_submissions = 240;
  size_t repeats = 3;
  if (slade_bench::FastMode()) {
    num_submissions = 60;
    repeats = 1;
  }

  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 12);
  if (!profile.ok()) {
    std::cerr << "profile failed: " << profile.status().ToString() << "\n";
    return 1;
  }
  const auto submissions = MakeSubmissions(num_submissions, /*seed=*/4711);

  slade_bench::BenchJsonWriter json("routing");

  // --- 1. Routing overhead: unrouted vs 1/4/8 identical platforms. -----
  TablePrinter route_table({"platforms", "policy", "subs/s", "billed",
                            "wall s"});
  struct Config {
    size_t platforms;  // 0 = plain engine, no registry
    RoutingPolicy policy;
    const char* label;
  };
  const std::vector<Config> configs = {
      {0, RoutingPolicy::kCheapest, "unrouted"},
      {1, RoutingPolicy::kCheapest, "cheapest"},
      {4, RoutingPolicy::kCheapest, "cheapest"},
      {8, RoutingPolicy::kCheapest, "cheapest"},
      {4, RoutingPolicy::kStickyRequester, "sticky"},
  };
  for (const Config& config : configs) {
    RunResult best;
    for (size_t rep = 0; rep < repeats; ++rep) {
      ProfileRegistry registry;
      for (size_t p = 0; p < config.platforms; ++p) {
        registry.Register("p" + std::to_string(p), BinProfile(*profile))
            .ValueOrDie();
      }
      StreamingOptions options = BatchOptions();
      if (config.platforms > 0) {
        options.registry = &registry;
        options.routing = config.policy;
      }
      RunResult run = Replay(*profile, submissions, options);
      if (rep == 0 || run.wall_seconds < best.wall_seconds) best = run;
    }
    route_table.AddRow(
        {std::to_string(config.platforms), config.label,
         TablePrinter::FormatDouble(best.per_second, 0),
         TablePrinter::FormatDouble(best.billed_cost, 2),
         TablePrinter::FormatDouble(best.wall_seconds, 3)});
    json.BeginRecord();
    json.Field("section", "routing");
    json.Field("policy", config.label);
    json.Field("platforms", static_cast<double>(config.platforms));
    // Wall time stays out of the JSON on purpose: fast-mode runs finish in
    // ~1-2 ms, where runner noise dwarfs the 200% CI gate. Throughput
    // (better-if-bigger, bounded at -100%) carries the same signal safely.
    json.Field("submissions_per_second", best.per_second);
    json.Field("billed_cost", best.billed_cost);
  }

  // --- 2. Promotion cost: warmed cache, one eviction per platform. -----
  TablePrinter promote_table({"platforms", "cache entries", "evicted",
                              "evict ms", "entries after"});
  for (size_t platforms : {2u, 4u, 8u}) {
    ProfileRegistry registry;
    std::vector<std::string> ids;
    for (size_t p = 0; p < platforms; ++p) {
      ids.push_back("p" + std::to_string(p));
      registry.Register(ids.back(), BinProfile(*profile)).ValueOrDie();
    }
    StreamingOptions options = BatchOptions();
    options.registry = &registry;
    options.routing = RoutingPolicy::kExplicit;
    StreamingEngine engine(*profile, options);

    // Warm every platform's cache with the same submission stream.
    std::vector<std::future<Result<RequesterPlan>>> futures;
    for (size_t i = 0; i < submissions.size(); ++i) {
      futures.push_back(engine.Submit(submissions[i].requester,
                                      submissions[i].tasks, {},
                                      ids[i % ids.size()]));
    }
    engine.Drain();
    for (auto& future : futures) future.get().ValueOrDie();

    const CacheStats warmed = engine.cache().stats();
    Stopwatch evict_wall;
    // Promote every platform once; each promotion evicts only its own
    // epoch's entries through the engine's epoch listener.
    for (const std::string& id : ids) {
      registry.Promote(id, BinProfile(*profile)).ValueOrDie();
    }
    const double evict_seconds = evict_wall.ElapsedSeconds();
    const CacheStats drained = engine.cache().stats();

    promote_table.AddRow(
        {std::to_string(platforms), std::to_string(warmed.entries),
         std::to_string(drained.evictions - warmed.evictions),
         TablePrinter::FormatDouble(evict_seconds * 1e3, 3),
         std::to_string(drained.entries)});
    json.BeginRecord();
    json.Field("section", "promotion");
    json.Field("platforms", static_cast<double>(platforms));
    // Deterministic counters only (see above): the eviction wall time is
    // tens of microseconds and prints in the table instead.
    json.Field("warm_entries", static_cast<double>(warmed.entries));
    json.Field("evicted",
               static_cast<double>(drained.evictions - warmed.evictions));
  }

  PrintBanner(std::cout,
              "Routing overhead: identical platforms, identical solves");
  route_table.Print(std::cout);
  PrintBanner(std::cout, "Epoch promotion: per-platform cache eviction");
  promote_table.Print(std::cout);
  json.Write();
  return 0;
}
