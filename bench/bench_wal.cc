// WAL hot-path benchmark: append/commit throughput of the submission log
// under its three durability disciplines, plus recovery replay speed.
//
//   * sync     -- one fsync per record (commit_wait_micros = 0, single
//                 appender): the worst-case latency floor.
//   * group    -- 8 concurrent appenders sharing group commits: the serve
//                 path under load. The figure of merit is records per
//                 fsync (batching efficiency), not just throughput.
//   * buffered -- AppendBuffered + one Sync barrier per batch: the
//                 micro-batch outcome path (one barrier per flush).
//   * replay   -- sequential scan + CRC check of the log written by the
//                 buffered pass: recovery-time cost per record.
//
// Emits BENCH_wal.json for tools/bench_trend.py. `--smoke` (or
// SLADE_BENCH_FAST=1) shrinks the record counts for CI; fsync-bound
// numbers depend heavily on the backing filesystem, which is why the
// trend gate keys on regressions, not absolutes.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "durability/wal.h"

namespace {

using namespace slade;

constexpr size_t kPayloadBytes = 128;

WalOptions Options(const std::string& dir, uint64_t commit_wait_micros) {
  WalOptions options;
  options.dir = dir;
  options.commit_wait_micros = commit_wait_micros;
  return options;
}

std::string FreshDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("slade_bench_wal_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct PassResult {
  double seconds = 0.0;
  uint64_t records = 0;
  uint64_t fsyncs = 0;
};

void Report(slade_bench::BenchJsonWriter& json, TablePrinter& table,
            const char* mode, const PassResult& pass) {
  const double per_second =
      static_cast<double>(pass.records) / pass.seconds;
  const double records_per_fsync =
      pass.fsyncs == 0 ? 0.0
                       : static_cast<double>(pass.records) /
                             static_cast<double>(pass.fsyncs);
  table.AddRow({mode, std::to_string(pass.records),
                TablePrinter::FormatDouble(pass.seconds * 1e3, 2),
                TablePrinter::FormatDouble(per_second / 1e3, 2),
                std::to_string(pass.fsyncs),
                TablePrinter::FormatDouble(records_per_fsync, 1)});
  json.BeginRecord();
  json.Field("mode", mode);
  json.Field("config", std::string(mode) + "/payload=" +
                           std::to_string(kPayloadBytes));
  json.Field("records", static_cast<double>(pass.records));
  json.Field("payload_bytes", static_cast<double>(kPayloadBytes));
  json.Field("seconds", pass.seconds);
  json.Field("records_per_second", per_second);
  json.Field("fsyncs", static_cast<double>(pass.fsyncs));
  json.Field("records_per_fsync", records_per_fsync);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = slade_bench::FastMode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const uint64_t sync_records = smoke ? 256 : 2048;
  const uint64_t group_threads = 8;
  const uint64_t group_per_thread = smoke ? 128 : 1024;
  const uint64_t buffered_records = smoke ? 8192 : 65536;
  const uint64_t buffered_batch = 64;  // outcomes per Sync barrier

  std::cout << "WAL submission-log throughput ("
            << kPayloadBytes << "-byte payloads"
            << (smoke ? ", smoke sizes" : "") << ").\n";

  const std::string payload(kPayloadBytes, 'x');
  slade_bench::BenchJsonWriter json("wal");
  TablePrinter table({"mode", "records", "wall (ms)", "krec/s", "fsyncs",
                      "rec/fsync"});

  // --- sync: every append is its own durability barrier --------------------
  {
    const std::string dir = FreshDir("sync");
    auto writer = WalWriter::Open(Options(dir, 0));
    if (!writer.ok()) {
      std::cerr << "open failed: " << writer.status().ToString() << "\n";
      return 1;
    }
    Stopwatch watch;
    for (uint64_t i = 0; i < sync_records; ++i) {
      if (!(*writer)->Append(WalRecordType::kAdmit, payload).ok()) return 1;
    }
    PassResult pass;
    pass.seconds = watch.ElapsedSeconds();
    pass.records = sync_records;
    pass.fsyncs = (*writer)->stats().fsyncs;
    Report(json, table, "sync", pass);
    writer->reset();
    std::filesystem::remove_all(dir);
  }

  // --- group: 8 appenders share commits via the group-commit leader --------
  {
    const std::string dir = FreshDir("group");
    auto writer = WalWriter::Open(Options(dir, 200));
    if (!writer.ok()) return 1;
    Stopwatch watch;
    std::vector<std::thread> threads;
    threads.reserve(group_threads);
    for (uint64_t t = 0; t < group_threads; ++t) {
      threads.emplace_back([&] {
        for (uint64_t i = 0; i < group_per_thread; ++i) {
          if (!(*writer)->Append(WalRecordType::kAdmit, payload).ok()) {
            std::exit(1);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    PassResult pass;
    pass.seconds = watch.ElapsedSeconds();
    pass.records = group_threads * group_per_thread;
    pass.fsyncs = (*writer)->stats().fsyncs;
    Report(json, table, "group", pass);
    writer->reset();
    std::filesystem::remove_all(dir);
  }

  // --- buffered: micro-batch discipline, one barrier per batch -------------
  const std::string replay_dir = FreshDir("buffered");
  {
    auto writer = WalWriter::Open(Options(replay_dir, 0));
    if (!writer.ok()) return 1;
    Stopwatch watch;
    for (uint64_t i = 0; i < buffered_records; ++i) {
      if (!(*writer)->AppendBuffered(WalRecordType::kComplete, payload)
               .ok()) {
        return 1;
      }
      if ((i + 1) % buffered_batch == 0 && !(*writer)->Sync().ok()) return 1;
    }
    if (!(*writer)->Sync().ok()) return 1;
    PassResult pass;
    pass.seconds = watch.ElapsedSeconds();
    pass.records = buffered_records;
    pass.fsyncs = (*writer)->stats().fsyncs;
    Report(json, table, "buffered", pass);
  }

  // --- replay: recovery-time scan of the buffered log ----------------------
  {
    Stopwatch watch;
    WalRecoveryStats stats;
    auto replayed = ReplayWal(replay_dir, /*repair=*/false, &stats);
    if (!replayed.ok()) {
      std::cerr << "replay failed: " << replayed.status().ToString() << "\n";
      return 1;
    }
    PassResult pass;
    pass.seconds = watch.ElapsedSeconds();
    pass.records = stats.records_replayed;
    pass.fsyncs = 0;
    if (pass.records != buffered_records) {
      std::cerr << "replay lost records: " << pass.records << " of "
                << buffered_records << "\n";
      return 1;
    }
    Report(json, table, "replay", pass);
  }
  std::filesystem::remove_all(replay_dir);

  PrintBanner(std::cout,
              "WAL: append/commit throughput per durability discipline "
              "(rec/fsync = group-commit batching efficiency)");
  table.Print(std::cout);
  json.Write();
  return 0;
}
