// Closed-loop serving soak: the full admit -> dispatch -> infer ->
// re-decompose lifecycle (engine/closed_loop_engine.h) under fault
// scenarios, each run twice -- max_rounds=1 (the no-retry baseline) and
// max_rounds=3 (adaptive re-decomposition) -- so the table shows what the
// adaptive loop buys in final accuracy and what it costs in extra billing.
//
// The full run soaks ~1M atomic tasks per scenario; `--smoke` (or
// SLADE_BENCH_FAST) shrinks to a few thousand for CI. Emits
// BENCH_closed_loop.json alongside the tables.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "engine/closed_loop_engine.h"
#include "workload/threshold_gen.h"

namespace {

using namespace slade;

/// `num_submissions` requester submissions of 1-2 crowdsourcing tasks
/// each, sized so the workload totals ~`target_atomic` atomic tasks;
/// thresholds ~ N(0.88, 0.04), ground truth Bernoulli(0.5). Built on the
/// library RNG so every platform benches the same workload per seed.
std::vector<ClosedLoopWorkload> MakeWorkloads(size_t num_submissions,
                                              size_t target_atomic,
                                              uint64_t seed) {
  Xoshiro256 rng(seed);
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.88;
  spec.sigma = 0.04;

  const size_t atomic_per_submission = target_atomic / num_submissions;
  std::vector<ClosedLoopWorkload> workloads;
  workloads.reserve(num_submissions);
  for (size_t s = 0; s < num_submissions; ++s) {
    ClosedLoopWorkload workload;
    workload.requester = "r" + std::to_string(rng.NextBounded(8));
    const size_t num_tasks = static_cast<size_t>(rng.NextInt(1, 2));
    for (size_t k = 0; k < num_tasks; ++k) {
      const size_t num_atomic =
          std::max<size_t>(1, atomic_per_submission / num_tasks);
      const uint64_t task_seed = rng.Next();
      auto thresholds = GenerateThresholds(spec, num_atomic, task_seed);
      auto task = CrowdsourcingTask::FromThresholds(
          std::move(thresholds).ValueOrDie());
      workload.tasks.push_back(std::move(task).ValueOrDie());
    }
    for (size_t k = 0; k < workload.num_atomic_tasks(); ++k) {
      workload.ground_truth.push_back(rng.NextBernoulli(0.5));
    }
    workloads.push_back(std::move(workload));
  }
  return workloads;
}

struct Scenario {
  const char* name;
  double steady_spammers = 0.0;
  FaultOptions faults;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = slade_bench::FastMode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::cout << "Closed-loop serving soak: fault scenario x retry mode\n"
               "(Jelly |B|=12, t_i ~ N(0.88, 0.04), Dawid-Skene inference, "
               "1 dispatch thread;\n adaptive = up to 3 rounds of "
               "re-decomposition, capped at 3x round-1 billing).\n";

  const size_t num_submissions = smoke ? 48 : 2'000;
  const size_t target_atomic = smoke ? 2'400 : 1'000'000;

  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 12);
  if (!profile.ok()) {
    std::cerr << "profile failed: " << profile.status().ToString() << "\n";
    return 1;
  }

  // Bursts/outages/churn are sized in bin posts: roughly one bin per 2-3
  // atomic tasks, so period ~ posts/8 gives several windows per round.
  const uint64_t burst_period = std::max<uint64_t>(16, target_atomic / 24);
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "clean";
    scenarios.push_back(s);
    s = Scenario{};
    s.name = "spammers35";
    s.steady_spammers = 0.35;
    scenarios.push_back(s);
    s = Scenario{};
    s.name = "spammer-burst";
    s.faults.spammer_burst_period = burst_period;
    s.faults.spammer_burst_length = burst_period / 2;
    s.faults.spammer_burst_fraction = 0.8;
    scenarios.push_back(s);
    s = Scenario{};
    s.name = "churn+stragglers";
    s.steady_spammers = 0.2;
    s.faults.churn_period = burst_period;
    s.faults.straggler_fraction = 0.15;
    s.faults.straggler_multiplier = 25.0;
    scenarios.push_back(s);
    s = Scenario{};
    s.name = "outage";
    s.steady_spammers = 0.2;
    s.faults.outage_period = burst_period;
    s.faults.outage_length = std::max<uint64_t>(2, burst_period / 8);
    scenarios.push_back(s);
  }

  const auto workloads =
      MakeWorkloads(num_submissions, target_atomic, /*seed=*/20190408);
  size_t total_atomic = 0;
  for (const ClosedLoopWorkload& w : workloads) {
    total_atomic += w.num_atomic_tasks();
  }
  std::cout << workloads.size() << " submissions, " << total_atomic
            << " atomic tasks per run\n\n";

  slade_bench::BenchJsonWriter json("closed_loop");
  TablePrinter table({"scenario", "mode", "rounds", "redecomposed",
                      "answers", "accuracy", "under-conf", "billed",
                      "platform", "wall s", "answers/s"});

  for (const Scenario& scenario : scenarios) {
    for (const bool adaptive : {false, true}) {
      ClosedLoopOptions options;
      options.platform.spammer_fraction = scenario.steady_spammers;
      options.faults = scenario.faults;
      options.inference = InferenceKind::kDawidSkene;
      options.max_rounds = adaptive ? 3 : 1;
      options.retry_cost_multiple = adaptive ? 3.0 : 0.0;
      options.streaming.max_pending_submissions = 64;
      options.streaming.max_delay_seconds = 10.0;  // size-driven flushes

      Stopwatch wall;
      ClosedLoopEngine engine(*profile, options);
      auto report = engine.Run(workloads);
      if (!report.ok()) {
        std::cerr << scenario.name
                  << " failed: " << report.status().ToString() << "\n";
        return 1;
      }
      const double seconds = wall.ElapsedSeconds();
      const double answers_per_second =
          seconds > 0.0 ? static_cast<double>(report->total_answers) / seconds
                        : 0.0;
      const char* mode = adaptive ? "adaptive" : "no-retry";

      table.AddRow({scenario.name, mode, std::to_string(report->rounds),
                    std::to_string(report->redecomposed_atomic_tasks),
                    std::to_string(report->total_answers),
                    TablePrinter::FormatDouble(report->final_accuracy, 4),
                    std::to_string(report->final_under_confident),
                    TablePrinter::FormatDouble(report->billed_cost, 2),
                    TablePrinter::FormatDouble(report->platform_cost, 2),
                    TablePrinter::FormatDouble(seconds, 3),
                    TablePrinter::FormatDouble(answers_per_second, 0)});

      json.BeginRecord();
      json.Field("scenario", std::string(scenario.name));
      json.Field("mode", std::string(mode));
      json.Field("atomic_tasks", static_cast<double>(total_atomic));
      json.Field("rounds", static_cast<double>(report->rounds));
      json.Field("redecomposed",
                 static_cast<double>(report->redecomposed_atomic_tasks));
      json.Field("answers", static_cast<double>(report->total_answers));
      json.Field("bins", static_cast<double>(report->total_bins));
      json.Field("dropped_bins",
                 static_cast<double>(
                     report->round_stats.empty()
                         ? 0
                         : [&] {
                             uint64_t dropped = 0;
                             for (const auto& r : report->round_stats) {
                               dropped += r.dropped_bins;
                             }
                             return dropped;
                           }()));
      json.Field("accuracy", report->final_accuracy);
      json.Field("under_confident",
                 static_cast<double>(report->final_under_confident));
      json.Field("billed_cost", report->billed_cost);
      json.Field("platform_cost", report->platform_cost);
      json.Field("wall_seconds", seconds);
      json.Field("answers_per_second", answers_per_second);
    }
  }

  table.Print(std::cout);
  json.Write();
  return 0;
}
