// Figure 7 (heterogeneous evaluation, Jelly): decomposition cost and
// running time with thresholds t_i ~ Normal(mu, sigma).
//
//   7a/7b: sweep sigma in {0.01..0.05} at mu = 0.9;
//   7c/7d: sweep mu in {0.87..0.97} at sigma = 0.03.
//
// Paper shapes: cost decreases as sigma grows (more low thresholds);
// running time grows with sigma (more distinct threshold groups for
// OPQ-Extended); cost decreases with lower mu; OPQ-Extended cheapest in
// most settings.

#include <iostream>

#include "bench_util.h"
#include "solver/greedy_solver.h"
#include "workload/workload.h"

namespace {

using namespace slade;
using slade_bench::RunSolver;
using slade_bench::TimedSolve;

constexpr uint32_t kMaxCardinality = 20;

void SweepSigma() {
  GreedySolver greedy;
  auto opqx = MakeSolver(SolverKind::kOpqExtended);
  auto baseline = MakeSolver(SolverKind::kBaseline);
  TablePrinter cost({"sigma", "Greedy", "OPQ-Extended", "Baseline"});
  TablePrinter time({"sigma", "Greedy", "OPQ-Extended", "Baseline"});
  const size_t n = slade_bench::FastMode() ? 2000 : 10'000;
  for (double sigma : {0.01, 0.02, 0.03, 0.04, 0.05}) {
    ThresholdSpec spec;
    spec.family = ThresholdFamily::kNormal;
    spec.mu = 0.9;
    spec.sigma = sigma;
    auto workload = MakeHeterogeneousWorkload(
        DatasetKind::kJelly, n, spec, kMaxCardinality,
        ExperimentDefaults::kSeed);
    TimedSolve g = RunSolver(greedy, workload->task, workload->profile);
    TimedSolve o = RunSolver(*opqx, workload->task, workload->profile);
    TimedSolve b = RunSolver(*baseline, workload->task, workload->profile);
    const std::string key = TablePrinter::FormatDouble(sigma, 2);
    cost.AddRow(key, {g.cost, o.cost, b.cost}, 2);
    time.AddRow(key, {g.seconds, o.seconds, b.seconds}, 4);
  }
  PrintBanner(std::cout,
              "Figure 7a analog (Jelly): sigma of t_i vs. Cost (USD)");
  cost.Print(std::cout);
  PrintBanner(std::cout,
              "Figure 7b analog (Jelly): sigma of t_i vs. Time (seconds)");
  time.Print(std::cout);
}

void SweepMu() {
  GreedySolver greedy;
  auto opqx = MakeSolver(SolverKind::kOpqExtended);
  auto baseline = MakeSolver(SolverKind::kBaseline);
  TablePrinter cost({"mu", "Greedy", "OPQ-Extended", "Baseline"});
  TablePrinter time({"mu", "Greedy", "OPQ-Extended", "Baseline"});
  const size_t n = slade_bench::FastMode() ? 2000 : 10'000;
  for (double mu : {0.87, 0.90, 0.92, 0.95, 0.97}) {
    ThresholdSpec spec;
    spec.family = ThresholdFamily::kNormal;
    spec.mu = mu;
    spec.sigma = 0.03;
    auto workload = MakeHeterogeneousWorkload(
        DatasetKind::kJelly, n, spec, kMaxCardinality,
        ExperimentDefaults::kSeed);
    TimedSolve g = RunSolver(greedy, workload->task, workload->profile);
    TimedSolve o = RunSolver(*opqx, workload->task, workload->profile);
    TimedSolve b = RunSolver(*baseline, workload->task, workload->profile);
    const std::string key = TablePrinter::FormatDouble(mu, 2);
    cost.AddRow(key, {g.cost, o.cost, b.cost}, 2);
    time.AddRow(key, {g.seconds, o.seconds, b.seconds}, 4);
  }
  PrintBanner(std::cout,
              "Figure 7c analog (Jelly): mu of t_i vs. Cost (USD)");
  cost.Print(std::cout);
  PrintBanner(std::cout,
              "Figure 7d analog (Jelly): mu of t_i vs. Time (seconds)");
  time.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Figure 7 reproduction: heterogeneous SLADE on Jelly "
               "(n=10000, t_i ~ N(mu, sigma), |B|=20).\n";
  SweepSigma();
  SweepMu();
  return 0;
}
