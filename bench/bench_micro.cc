// google-benchmark micro benchmarks for the hot paths of the library
// (experiment M1 in DESIGN.md). Run in Release mode for meaningful numbers.

#include <benchmark/benchmark.h>

#include "binmodel/profile_model.h"
#include "binmodel/reliability.h"
#include "common/math_util.h"
#include "common/random.h"
#include "inference/truth_inference.h"
#include "solver/budget_solver.h"
#include "solver/greedy_solver.h"
#include "solver/opq_builder.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"
#include "solver/simplex.h"
#include "workload/workload.h"

namespace {

using namespace slade;

void BM_LogReduction(benchmark::State& state) {
  Xoshiro256 rng(1);
  double p = rng.NextDouble(0.5, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogReduction(p));
  }
}
BENCHMARK(BM_LogReduction);

void BM_OpqBuild(benchmark::State& state) {
  const BinProfile profile =
      BuildProfile(JellyModel(), static_cast<uint32_t>(state.range(0)))
          .ValueOrDie();
  for (auto _ : state) {
    auto opq = BuildOpq(profile, 0.95);
    benchmark::DoNotOptimize(opq);
  }
}
BENCHMARK(BM_OpqBuild)->Arg(5)->Arg(10)->Arg(20);

void BM_OpqSolve(benchmark::State& state) {
  auto workload = MakeHomogeneousWorkload(
      DatasetKind::kJelly, static_cast<size_t>(state.range(0)), 0.9, 20);
  OpqSolver solver;
  for (auto _ : state) {
    auto plan = solver.Solve(workload->task, workload->profile);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OpqSolve)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_GreedySolveHomogeneous(benchmark::State& state) {
  auto workload = MakeHomogeneousWorkload(
      DatasetKind::kJelly, static_cast<size_t>(state.range(0)), 0.9, 20);
  GreedySolver solver;
  for (auto _ : state) {
    auto plan = solver.Solve(workload->task, workload->profile);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GreedySolveHomogeneous)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_GreedySolveHeterogeneous(benchmark::State& state) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  auto workload = MakeHeterogeneousWorkload(
      DatasetKind::kJelly, static_cast<size_t>(state.range(0)), spec, 20,
      11);
  GreedySolver solver;
  for (auto _ : state) {
    auto plan = solver.Solve(workload->task, workload->profile);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GreedySolveHeterogeneous)->Arg(1'000)->Arg(10'000);

void BM_PlanValidation(benchmark::State& state) {
  auto workload = MakeHomogeneousWorkload(
      DatasetKind::kJelly, static_cast<size_t>(state.range(0)), 0.9, 20);
  OpqSolver solver;
  auto plan = solver.Solve(workload->task, workload->profile);
  for (auto _ : state) {
    auto report = ValidatePlan(*plan, workload->task, workload->profile);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PlanValidation)->Arg(10'000);

void BM_SimplexChunkLp(benchmark::State& state) {
  // A covering LP shaped like one baseline chunk: 48 rows, ~150 columns.
  const size_t rows = 48, cols = 150;
  LpProblem p;
  p.b.assign(rows, 2.3);
  p.c.resize(cols);
  p.a.assign(rows, std::vector<double>(cols, 0.0));
  Xoshiro256 rng(5);
  for (size_t j = 0; j < cols; ++j) {
    p.c[j] = rng.NextDouble(0.05, 0.3);
    const size_t span = 1 + rng.NextBounded(12);
    const size_t start = rng.NextBounded(rows);
    for (size_t k = 0; k < span; ++k) {
      p.a[(start + k) % rows][j] = rng.NextDouble(1.0, 2.5);
    }
  }
  for (size_t i = 0; i < rows; ++i) p.a[i][i % cols] = 2.0;
  for (auto _ : state) {
    auto sol = SolveCoveringLp(p);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexChunkLp);

void BM_DawidSkene(benchmark::State& state) {
  // 500 tasks x 5 answers from 50 workers.
  Xoshiro256 rng(3);
  std::vector<WorkerAnswer> answers;
  for (TaskId t = 0; t < 500; ++t) {
    const bool truth = rng.NextBernoulli(0.5);
    for (int k = 0; k < 5; ++k) {
      const uint32_t w = static_cast<uint32_t>(rng.NextBounded(50));
      const bool correct = rng.NextBernoulli(0.8);
      answers.push_back(WorkerAnswer{w, t, correct ? truth : !truth});
    }
  }
  for (auto _ : state) {
    auto result = DawidSkeneBinary(answers, 500);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DawidSkene);

void BM_MajorityVote(benchmark::State& state) {
  Xoshiro256 rng(4);
  std::vector<WorkerAnswer> answers;
  for (TaskId t = 0; t < 2000; ++t) {
    for (int k = 0; k < 5; ++k) {
      answers.push_back(WorkerAnswer{
          static_cast<uint32_t>(rng.NextBounded(100)), t,
          rng.NextBernoulli(0.6)});
    }
  }
  for (auto _ : state) {
    auto result = MajorityVote(answers, 2000);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MajorityVote);

void BM_BudgetBisection(benchmark::State& state) {
  const BinProfile profile = BuildProfile(JellyModel(), 12).ValueOrDie();
  for (auto _ : state) {
    auto result = MaxReliabilityUnderBudget(1000, profile, 12.0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BudgetBisection);

void BM_ReliabilityEvaluation(benchmark::State& state) {
  const BinProfile profile = BuildProfile(JellyModel(), 20).ValueOrDie();
  std::vector<uint32_t> cardinalities = {20, 20, 13, 7, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Reliability(profile, cardinalities));
  }
}
BENCHMARK(BM_ReliabilityEvaluation);

}  // namespace
