// Streaming admission throughput and latency: replays a synthetic timed
// workload (Poisson arrivals from a pool of requesters, heterogeneous
// thresholds) through engine/StreamingEngine, sweeping arrival rate x
// flush policy x sharing mode. Reports per-submission latency
// (mean / p95), flush counts, micro-batch sizes and total plan cost; the
// cost column shows what pooled sharing saves over isolated (per-requester
// exact) decomposition under real batching.
//
// Emits BENCH_streaming.json alongside the tables.

#include <algorithm>
#include <chrono>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/distributions.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "engine/streaming_engine.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace {

using namespace slade;

struct Arrival {
  double arrival_ms = 0.0;
  std::string requester;
  std::vector<CrowdsourcingTask> tasks;
};

/// Poisson arrivals at `rate_per_second`, 1-3 tasks per submission,
/// 10-30 atomic tasks each, t_i ~ N(0.9, 0.03). Built on the library's
/// own RNG/distributions (common/random.h, common/distributions.h), so a
/// given seed produces the same workload on every platform and compiler --
/// <random> distributions are implementation-defined and would make the
/// gcc and clang CI legs bench different streams.
std::vector<Arrival> MakeArrivals(size_t num_submissions,
                                  double rate_per_second, uint64_t seed) {
  Xoshiro256 rng(seed);
  const ExponentialDistribution gap_ms(rate_per_second / 1e3);

  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;

  std::vector<Arrival> arrivals;
  arrivals.reserve(num_submissions);
  double clock_ms = 0.0;
  for (size_t s = 0; s < num_submissions; ++s) {
    clock_ms += gap_ms.Sample(rng);
    Arrival arrival;
    arrival.arrival_ms = clock_ms;
    arrival.requester = "r" + std::to_string(rng.NextBounded(8));
    const size_t num_tasks = static_cast<size_t>(rng.NextInt(1, 3));
    for (size_t k = 0; k < num_tasks; ++k) {
      // One draw per statement: argument evaluation order is unspecified.
      const size_t num_atomic = static_cast<size_t>(rng.NextInt(10, 30));
      const uint64_t task_seed = rng.Next();
      auto thresholds = GenerateThresholds(spec, num_atomic, task_seed);
      auto task = CrowdsourcingTask::FromThresholds(
          std::move(thresholds).ValueOrDie());
      arrival.tasks.push_back(std::move(task).ValueOrDie());
    }
    arrivals.push_back(std::move(arrival));
  }
  return arrivals;
}

struct Policy {
  const char* name;
  StreamingOptions options;
};

struct RunResult {
  double wall_seconds = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  /// What the platform pays: sum of merged micro-batch plan costs.
  double platform_cost = 0.0;
  /// Sum of per-slice standalone costs. Equal to platform_cost under
  /// isolated sharing; larger under pooled (shared bins appear in every
  /// affected requester's slice) -- the gap is the sharing discount.
  double billed_cost = 0.0;
  uint64_t flushes = 0;
  double mean_batch_submissions = 0.0;
};

RunResult Replay(const BinProfile& profile,
                 const std::vector<Arrival>& arrivals,
                 const StreamingOptions& options) {
  Stopwatch wall;
  StreamingEngine engine(profile, options);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  futures.reserve(arrivals.size());
  for (const Arrival& arrival : arrivals) {
    const double due = arrival.arrival_ms / 1e3;
    const double now = wall.ElapsedSeconds();
    if (due > now) {
      std::this_thread::sleep_for(std::chrono::duration<double>(due - now));
    }
    futures.push_back(engine.Submit(arrival.requester, arrival.tasks));
  }
  engine.Drain();

  RunResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  std::vector<double> latencies_ms;
  latencies_ms.reserve(futures.size());
  for (auto& future : futures) {
    auto slice = future.get();
    if (!slice.ok()) {
      std::cerr << "streaming solve failed: " << slice.status().ToString()
                << "\n";
      std::exit(1);
    }
    latencies_ms.push_back(slice->latency_seconds * 1e3);
    result.billed_cost += slice->cost;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double sum = 0.0;
  for (double l : latencies_ms) sum += l;
  result.mean_latency_ms = sum / latencies_ms.size();
  result.p95_latency_ms = latencies_ms[latencies_ms.size() * 95 / 100];
  StreamingStats stats = engine.stats();
  result.platform_cost = stats.total_cost;
  result.flushes = stats.flushes;
  result.mean_batch_submissions =
      stats.flushes == 0
          ? 0.0
          : static_cast<double>(stats.submissions) /
                static_cast<double>(stats.flushes);
  return result;
}

}  // namespace

int main() {
  std::cout << "Streaming admission: arrival rate x flush policy x sharing\n"
               "(Jelly |B|=12, 8 requesters, 1-3 tasks x 10-30 atomic per "
               "submission,\n t_i ~ N(0.9, 0.03); Poisson arrivals replayed "
               "in real time).\n";

  size_t num_submissions = 240;
  std::vector<double> rates = {1'000, 4'000, 16'000};  // submissions/s
  if (slade_bench::FastMode()) {
    num_submissions = 60;
    rates = {2'000, 8'000};
  }

  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 12);
  if (!profile.ok()) {
    std::cerr << "profile failed: " << profile.status().ToString() << "\n";
    return 1;
  }

  std::vector<Policy> policies;
  {
    Policy p;
    p.name = "size16";
    p.options.max_pending_submissions = 16;
    p.options.max_pending_atomic_tasks = 1u << 20;
    p.options.max_delay_seconds = 10.0;  // size-driven
    policies.push_back(p);
    p.name = "size64";
    p.options.max_pending_submissions = 64;
    policies.push_back(p);
    p.name = "deadline2ms";
    p.options.max_pending_submissions = 1u << 20;
    p.options.max_delay_seconds = 0.002;
    policies.push_back(p);
    p.name = "deadline20ms";
    p.options.max_delay_seconds = 0.020;
    policies.push_back(p);
  }

  slade_bench::BenchJsonWriter json("streaming");
  TablePrinter table({"rate/s", "policy", "sharing", "flushes",
                      "batch subs", "mean lat ms", "p95 lat ms",
                      "platform cost", "billed cost", "wall s"});

  for (double rate : rates) {
    const auto arrivals = MakeArrivals(
        num_submissions, rate, /*seed=*/20180131 + static_cast<uint64_t>(rate));
    for (const Policy& policy : policies) {
      for (BatchSharing sharing :
           {BatchSharing::kIsolated, BatchSharing::kPooled}) {
        StreamingOptions options = policy.options;
        options.sharing = sharing;
        RunResult run = Replay(*profile, arrivals, options);
        table.AddRow(
            {TablePrinter::FormatDouble(rate, 0), policy.name,
             BatchSharingName(sharing), std::to_string(run.flushes),
             TablePrinter::FormatDouble(run.mean_batch_submissions, 1),
             TablePrinter::FormatDouble(run.mean_latency_ms, 3),
             TablePrinter::FormatDouble(run.p95_latency_ms, 3),
             TablePrinter::FormatDouble(run.platform_cost, 2),
             TablePrinter::FormatDouble(run.billed_cost, 2),
             TablePrinter::FormatDouble(run.wall_seconds, 3)});
        json.BeginRecord();
        json.Field("rate_per_second", rate);
        json.Field("policy", policy.name);
        json.Field("sharing", BatchSharingName(sharing));
        json.Field("submissions", static_cast<double>(num_submissions));
        json.Field("flushes", static_cast<double>(run.flushes));
        json.Field("mean_batch_submissions", run.mean_batch_submissions);
        json.Field("mean_latency_ms", run.mean_latency_ms);
        json.Field("p95_latency_ms", run.p95_latency_ms);
        json.Field("platform_cost", run.platform_cost);
        json.Field("billed_cost", run.billed_cost);
        json.Field("wall_seconds", run.wall_seconds);
      }
    }
  }

  PrintBanner(std::cout,
              "Streaming admission: latency and cost by arrival rate, "
              "flush policy and sharing mode");
  table.Print(std::cout);
  json.Write();
  return 0;
}
