// Reproduces the paper's illustrative tables on the Table 1 profile:
//   Table 1   -- the example bin profile;
//   Table 3   -- OPQ for t = 0.95;
//   Tables 4/5 -- OPQ_0 (t = 0.632) and OPQ_1 (t = 0.86) from Example 10;
//   Examples 4/5/9/11 -- plan costs of Greedy / OPQ-Based / OPQ-Extended.

#include <iostream>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/table_printer.h"
#include "solver/greedy_solver.h"
#include "solver/opq_builder.h"
#include "solver/opq_extended_solver.h"
#include "solver/opq_solver.h"
#include "solver/plan_validator.h"

namespace {

void PrintOpqTable(const slade::OptimalPriorityQueue& opq,
                   const std::string& title) {
  slade::PrintBanner(std::cout, title);
  slade::TablePrinter table({"Comb", "UC", "LCM"});
  for (const slade::Combination& comb : opq.elements()) {
    std::string name = "{";
    for (size_t i = 0; i < comb.parts().size(); ++i) {
      name += (i ? ", " : "") + std::to_string(comb.parts()[i].second) +
              " x b" + std::to_string(comb.parts()[i].first);
    }
    name += "}";
    table.AddRow({name, slade::TablePrinter::FormatDouble(comb.unit_cost(), 2),
                  std::to_string(comb.lcm())});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  using namespace slade;
  const BinProfile profile = BinProfile::PaperExample();

  PrintBanner(std::cout, "Table 1: the example bin profile");
  TablePrinter t1({"Task Bins", "b1", "b2", "b3"});
  t1.AddRow({"Cardinality l", "1", "2", "3"});
  t1.AddRow({"Confidence r_l",
             TablePrinter::FormatDouble(profile.bin(1).confidence, 2),
             TablePrinter::FormatDouble(profile.bin(2).confidence, 2),
             TablePrinter::FormatDouble(profile.bin(3).confidence, 2)});
  t1.AddRow({"Incentive cost c_l",
             TablePrinter::FormatDouble(profile.bin(1).cost, 2),
             TablePrinter::FormatDouble(profile.bin(2).cost, 2),
             TablePrinter::FormatDouble(profile.bin(3).cost, 2)});
  t1.Print(std::cout);

  auto opq95 = BuildOpq(profile, 0.95);
  if (!opq95.ok()) {
    std::cerr << opq95.status().ToString() << "\n";
    return 1;
  }
  PrintOpqTable(*opq95, "Table 3: OPQ for t=0.95 (paper: {2xb3} 0.16/3, "
                        "{2xb2} 0.18/2, {2xb1} 0.20/1)");

  auto opq632 = BuildOpq(profile, 0.632);
  auto opq86 = BuildOpq(profile, 0.86);
  if (!opq632.ok() || !opq86.ok()) {
    std::cerr << "OPQ build failed\n";
    return 1;
  }
  PrintOpqTable(*opq632, "Table 4: OPQ_0 for t=0.632 (paper: {1xb3} 0.08/3, "
                         "{1xb2} 0.09/2, {1xb1} 0.10/1)");
  PrintOpqTable(*opq86, "Table 5: OPQ_1 for t=0.86 (paper: {1xb1} 0.10/1)");

  PrintBanner(std::cout, "Examples 4/5/9: homogeneous t=0.95, n=4");
  auto task = CrowdsourcingTask::Homogeneous(4, 0.95);
  GreedySolver greedy;
  OpqSolver opq_solver;
  TablePrinter plans({"Solver", "Plan", "Cost", "Paper"});
  {
    auto plan = greedy.Solve(*task, profile);
    plans.AddRow({"Greedy", plan->Summary(profile),
                  TablePrinter::FormatDouble(plan->TotalCost(profile), 2),
                  "0.74 (Example 5; text also cites 0.76)"});
  }
  {
    auto plan = opq_solver.Solve(*task, profile);
    plans.AddRow({"OPQ-Based", plan->Summary(profile),
                  TablePrinter::FormatDouble(plan->TotalCost(profile), 2),
                  "0.68 (Example 9)"});
  }
  plans.Print(std::cout);

  PrintBanner(std::cout,
              "Example 11: heterogeneous t={0.5,0.6,0.7,0.86}, OPQ-Extended");
  auto hetero = CrowdsourcingTask::FromThresholds({0.5, 0.6, 0.7, 0.86});
  OpqExtendedSolver extended;
  auto hetero_plan = extended.Solve(*hetero, profile);
  if (!hetero_plan.ok()) {
    std::cerr << hetero_plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "OPQ-Extended: " << hetero_plan->Summary(profile)
            << "   (paper Example 11: cost 0.38)\n";
  auto report = ValidatePlan(*hetero_plan, *hetero, profile);
  std::cout << "Feasible: " << (report->feasible ? "yes" : "NO") << "\n";
  return 0;
}
