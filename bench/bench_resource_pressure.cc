// Resource pressure on the governed engine stack: what does bounding the
// OPQ cache and the admission queue cost?
//
// Part 1 (batch): a DecompositionEngine serves interleaved batches from P
// distinct platform profiles. Unbounded, the cache's working set is one
// entry per (profile, threshold group); this harness measures that working
// set, then re-runs with the byte capacity at the working set and at a
// quarter of it, reporting hit rate, eviction rate, resident bytes and
// throughput. With capacity >= working set the bounded cache must match
// the unbounded baseline within noise -- eviction only starts to hurt once
// the capacity actually cuts into the working set.
//
// Part 2 (stream): a StreamingEngine takes a burst of submissions against
// a small admission queue under each backpressure policy x cache capacity,
// reporting delivered/rejected fractions and delivered-submission latency
// (mean / p95).
//
// Emits BENCH_resource_pressure.json alongside the tables.

#include <algorithm>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/streaming_engine.h"
#include "workload/threshold_gen.h"
#include "workload/workload.h"

namespace {

using namespace slade;

double P95(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() * 95 / 100];
}

// --- Part 1: cache capacity x distinct-profile count (batch engine) --------

struct ProfileWorkload {
  BinProfile profile;
  std::vector<CrowdsourcingTask> tasks;
};

/// P structurally distinct profiles (dataset model x max cardinality), each
/// with a fixed heterogeneous workload so every round re-requests the same
/// (profile, threshold-group) keys.
std::vector<ProfileWorkload> MakeProfileWorkloads(size_t num_profiles,
                                                  size_t tasks_per_batch,
                                                  size_t atomic_per_task) {
  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;

  std::vector<ProfileWorkload> workloads;
  workloads.reserve(num_profiles);
  for (size_t p = 0; p < num_profiles; ++p) {
    const DatasetKind dataset =
        (p % 2 == 0) ? DatasetKind::kJelly : DatasetKind::kSmic;
    const uint32_t max_cardinality = 4 + static_cast<uint32_t>(p / 2) % 10;
    auto batch =
        MakeBatchWorkload(dataset, tasks_per_batch, atomic_per_task, spec,
                          max_cardinality, /*seed=*/0x9e55 + p);
    if (!batch.ok()) {
      std::cerr << "workload failed: " << batch.status().ToString() << "\n";
      std::exit(1);
    }
    workloads.push_back(
        ProfileWorkload{std::move(batch->profile), std::move(batch->tasks)});
  }
  return workloads;
}

struct BatchRun {
  double wall_seconds = 0.0;
  uint64_t atomic_tasks = 0;
  CacheStats cache;
};

/// `rounds` passes over all P profiles through one engine (one shared
/// cache), interleaved profile by profile -- the adversarial order for a
/// bounded cache.
BatchRun RunBatchRounds(const std::vector<ProfileWorkload>& workloads,
                        size_t rounds, uint64_t cache_max_bytes) {
  EngineOptions options;
  options.resources.cache_max_bytes = cache_max_bytes;
  DecompositionEngine engine(options);
  BatchRun run;
  Stopwatch wall;
  for (size_t round = 0; round < rounds; ++round) {
    for (const ProfileWorkload& workload : workloads) {
      auto report = engine.SolveBatch(workload.tasks, workload.profile);
      if (!report.ok()) {
        std::cerr << "batch failed: " << report.status().ToString() << "\n";
        std::exit(1);
      }
      run.atomic_tasks += report->num_atomic_tasks();
    }
  }
  run.wall_seconds = wall.ElapsedSeconds();
  run.cache = engine.cache().stats();
  return run;
}

// --- Part 2: backpressure policy x cache capacity (streaming burst) --------

struct StreamRun {
  uint64_t delivered = 0;
  uint64_t failed = 0;  ///< rejected + shed, all clean ResourceExhausted
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double wall_seconds = 0.0;
  CacheStats cache;
  StreamingStats stats;
};

StreamRun RunStreamBurst(const BinProfile& profile, size_t num_submissions,
                         BackpressurePolicy policy,
                         uint64_t cache_max_bytes) {
  StreamingOptions options;
  options.max_pending_submissions = 8;
  options.max_delay_seconds = 3600.0;  // size/backpressure cut the batches
  options.resources.backpressure = policy;
  options.resources.queue_max_atomic_tasks = 256;
  options.resources.cache_max_bytes = cache_max_bytes;

  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;

  StreamRun run;
  Stopwatch wall;
  StreamingEngine engine(profile, options);
  std::vector<std::future<Result<RequesterPlan>>> futures;
  futures.reserve(num_submissions);
  for (size_t s = 0; s < num_submissions; ++s) {
    auto thresholds =
        GenerateThresholds(spec, 10 + s % 21, /*seed=*/0xbead + s);
    auto task = CrowdsourcingTask::FromThresholds(
        std::move(thresholds).ValueOrDie());
    futures.push_back(engine.Submit("r" + std::to_string(s % 8),
                                    {std::move(task).ValueOrDie()}));
  }
  engine.Drain();
  run.wall_seconds = wall.ElapsedSeconds();

  std::vector<double> latencies_ms;
  latencies_ms.reserve(futures.size());
  for (auto& future : futures) {
    auto slice = future.get();
    if (slice.ok()) {
      run.delivered += 1;
      latencies_ms.push_back(slice->latency_seconds * 1e3);
    } else if (slice.status().IsResourceExhausted()) {
      run.failed += 1;
    } else {
      std::cerr << "stream failed: " << slice.status().ToString() << "\n";
      std::exit(1);
    }
  }
  double sum = 0.0;
  for (double l : latencies_ms) sum += l;
  run.mean_latency_ms =
      latencies_ms.empty() ? 0.0 : sum / latencies_ms.size();
  run.p95_latency_ms = P95(std::move(latencies_ms));
  run.cache = engine.cache().stats();
  run.stats = engine.stats();
  return run;
}

}  // namespace

int main() {
  std::cout << "Resource pressure: bounded OPQ cache and admission "
               "backpressure\n";

  size_t rounds = 6;
  size_t tasks_per_batch = 96;
  size_t stream_submissions = 240;
  std::vector<size_t> profile_counts = {1, 4, 12};
  if (slade_bench::FastMode()) {
    rounds = 4;
    tasks_per_batch = 32;
    stream_submissions = 80;
    profile_counts = {1, 4};
  }

  slade_bench::BenchJsonWriter json("resource_pressure");

  // --- Part 1 -----------------------------------------------------------
  TablePrinter batch_table({"profiles", "cache cap", "hit rate", "evictions",
                            "resident B", "peak B", "atomic/s", "wall s"});
  for (size_t num_profiles : profile_counts) {
    const auto workloads =
        MakeProfileWorkloads(num_profiles, tasks_per_batch,
                             /*atomic_per_task=*/20);
    // Unbounded baseline: its resident bytes are the working set.
    const BatchRun unbounded = RunBatchRounds(workloads, rounds, 0);
    const uint64_t working_set = unbounded.cache.bytes;
    struct Capacity {
      const char* name;
      uint64_t max_bytes;
    };
    // Capacity exactly at the working set must match unbounded (entries
    // are only evicted when the cache actually exceeds a limit); a quarter
    // forces constant eviction.
    const Capacity capacities[] = {
        {"unbounded", 0},
        {"working-set", working_set},
        {"quarter", working_set / 4},
    };
    for (const Capacity& capacity : capacities) {
      const BatchRun run =
          capacity.max_bytes == 0
              ? unbounded  // reuse the baseline run
              : RunBatchRounds(workloads, rounds, capacity.max_bytes);
      const double lookups =
          static_cast<double>(run.cache.hits + run.cache.misses);
      const double hit_rate = run.cache.hit_rate();
      const double eviction_rate =
          lookups == 0.0 ? 0.0 : run.cache.evictions / lookups;
      const double throughput =
          run.wall_seconds == 0.0 ? 0.0 : run.atomic_tasks / run.wall_seconds;
      batch_table.AddRow(
          {std::to_string(num_profiles), capacity.name,
           TablePrinter::FormatDouble(hit_rate * 100.0, 1) + "%",
           std::to_string(run.cache.evictions),
           std::to_string(run.cache.bytes),
           std::to_string(run.cache.peak_bytes),
           TablePrinter::FormatDouble(throughput, 0),
           TablePrinter::FormatDouble(run.wall_seconds, 3)});
      json.BeginRecord();
      json.Field("mode", "batch");
      json.Field("distinct_profiles", static_cast<double>(num_profiles));
      json.Field("capacity", capacity.name);
      json.Field("cache_max_bytes", static_cast<double>(capacity.max_bytes));
      json.Field("hit_rate", hit_rate);
      json.Field("eviction_rate", eviction_rate);
      json.Field("evictions", static_cast<double>(run.cache.evictions));
      json.Field("resident_bytes", static_cast<double>(run.cache.bytes));
      json.Field("atomic_per_second", throughput);
      json.Field("wall_seconds", run.wall_seconds);
    }
  }
  PrintBanner(std::cout,
              "Batch: cache capacity x distinct profiles (interleaved "
              "rounds; capacity >= working set must match unbounded)");
  batch_table.Print(std::cout);

  // --- Part 2 -----------------------------------------------------------
  auto profile = BuildProfile(MakeModel(DatasetKind::kJelly), 10);
  if (!profile.ok()) {
    std::cerr << "profile failed: " << profile.status().ToString() << "\n";
    return 1;
  }
  TablePrinter stream_table({"policy", "cache cap", "delivered", "failed",
                             "rejected frac", "mean lat ms", "p95 lat ms",
                             "hit rate", "wall s"});
  for (BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kReject,
        BackpressurePolicy::kShedOldest}) {
    for (uint64_t cache_max_bytes : {uint64_t{0}, uint64_t{64 * 1024}}) {
      const StreamRun run = RunStreamBurst(*profile, stream_submissions,
                                           policy, cache_max_bytes);
      const double rejected_fraction =
          static_cast<double>(run.failed) /
          static_cast<double>(run.delivered + run.failed);
      stream_table.AddRow(
          {BackpressurePolicyName(policy),
           cache_max_bytes == 0 ? "unbounded" : "64KiB",
           std::to_string(run.delivered), std::to_string(run.failed),
           TablePrinter::FormatDouble(rejected_fraction * 100.0, 1) + "%",
           TablePrinter::FormatDouble(run.mean_latency_ms, 3),
           TablePrinter::FormatDouble(run.p95_latency_ms, 3),
           TablePrinter::FormatDouble(run.cache.hit_rate() * 100.0, 1) + "%",
           TablePrinter::FormatDouble(run.wall_seconds, 3)});
      json.BeginRecord();
      json.Field("mode", "stream");
      json.Field("policy", BackpressurePolicyName(policy));
      json.Field("cache_max_bytes", static_cast<double>(cache_max_bytes));
      json.Field("submissions", static_cast<double>(stream_submissions));
      json.Field("delivered", static_cast<double>(run.delivered));
      json.Field("rejected_fraction", rejected_fraction);
      json.Field("mean_latency_ms", run.mean_latency_ms);
      json.Field("p95_latency_ms", run.p95_latency_ms);
      json.Field("hit_rate", run.cache.hit_rate());
      json.Field("evictions", static_cast<double>(run.cache.evictions));
      json.Field("shed", static_cast<double>(run.stats.shed));
      json.Field("rejected", static_cast<double>(run.stats.rejected));
      json.Field("blocked", static_cast<double>(run.stats.blocked));
      json.Field("wall_seconds", run.wall_seconds);
    }
  }
  PrintBanner(std::cout,
              "Stream: backpressure policy x cache capacity (burst "
              "admission against a 256-atomic queue)");
  stream_table.Print(std::cout);

  json.Write();
  return 0;
}
