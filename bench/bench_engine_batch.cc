// Batch decomposition throughput: the sharded, memoized, thread-parallel
// engine (engine/decomposition_engine.h) versus the sequential per-task
// loop a platform would otherwise run (OPQ-Extended per crowdsourcing
// task). Sweeps batch size x thread count on a heterogeneous workload
// (t_i ~ N(0.9, 0.03), Jelly, |B|=20) and reports wall time, speedup and
// plan cost; the batch-wide sharding also pays Algorithm 3's leftover
// padding once per shard instead of once per task, so the engine's plans
// are cheaper as well as faster.
//
// Emits BENCH_engine_batch.json alongside the tables.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "engine/decomposition_engine.h"
#include "workload/workload.h"

namespace {

using namespace slade;

struct Run {
  double seconds = 0.0;
  double cost = 0.0;
  uint64_t bins = 0;
};

Run Feasible(const Result<BatchReport>& report,
             const std::vector<CrowdsourcingTask>& tasks,
             const BinProfile& profile, const char* what) {
  if (!report.ok()) {
    std::cerr << what << " failed: " << report.status().ToString() << "\n";
    std::exit(1);
  }
  auto merged = ConcatenateTasks(tasks);
  auto validation = ValidatePlan(report->plan, *merged, profile);
  if (!validation.ok() || !validation->feasible) {
    std::cerr << what << " produced an infeasible merged plan\n";
    std::exit(1);
  }
  return Run{report->wall_seconds, report->total_cost, report->total_bins};
}

}  // namespace

int main() {
  std::cout << "Batch engine throughput: sharded+memoized+parallel vs "
               "sequential per-task loop\n(Jelly, |B|=20, 20 atomic tasks "
               "per crowdsourcing task, t_i ~ N(0.9, 0.03)).\n";

  std::vector<size_t> batch_sizes = {1'000, 10'000, 50'000};
  std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  if (slade_bench::FastMode()) {
    batch_sizes = {200, 1'000};
    thread_counts = {1, 4};
  }
  constexpr size_t kAtomicPerTask = 20;

  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;

  slade_bench::BenchJsonWriter json("engine_batch");
  std::vector<std::string> time_header = {"tasks", "sequential"};
  for (uint32_t threads : thread_counts) {
    time_header.push_back("engine x" + std::to_string(threads));
  }
  time_header.push_back("speedup x" + std::to_string(thread_counts.back()));
  TablePrinter time(time_header);
  TablePrinter cost({"tasks", "sequential", "engine"});

  for (size_t num_tasks : batch_sizes) {
    auto batch = MakeBatchWorkload(DatasetKind::kJelly, num_tasks,
                                   kAtomicPerTask, spec, 20,
                                   ExperimentDefaults::kSeed);
    if (!batch.ok()) {
      std::cerr << "workload failed: " << batch.status().ToString() << "\n";
      return 1;
    }

    Run sequential =
        Feasible(SolveBatchSequential(batch->tasks, batch->profile),
                 batch->tasks, batch->profile, "sequential");
    json.BeginRecord();
    json.Field("mode", "sequential");
    json.Field("num_tasks", static_cast<double>(num_tasks));
    json.Field("atomic_per_task", static_cast<double>(kAtomicPerTask));
    json.Field("threads", 1.0);
    json.Field("seconds", sequential.seconds);
    json.Field("cost", sequential.cost);
    json.Field("bins", static_cast<double>(sequential.bins));

    std::vector<double> row = {sequential.seconds};
    Run last{};
    for (uint32_t threads : thread_counts) {
      // A fresh engine per run: the sweep measures cold-cache batches
      // (the cache still wins *within* the batch via sharding).
      EngineOptions options;
      options.num_threads = threads;
      DecompositionEngine engine(options);
      last = Feasible(engine.SolveBatch(batch->tasks, batch->profile),
                      batch->tasks, batch->profile, "engine");
      row.push_back(last.seconds);
      json.BeginRecord();
      json.Field("mode", "engine");
      json.Field("num_tasks", static_cast<double>(num_tasks));
      json.Field("atomic_per_task", static_cast<double>(kAtomicPerTask));
      json.Field("threads", static_cast<double>(threads));
      json.Field("seconds", last.seconds);
      json.Field("cost", last.cost);
      json.Field("bins", static_cast<double>(last.bins));
      json.Field("speedup_vs_sequential", sequential.seconds / last.seconds);
    }
    row.push_back(sequential.seconds / last.seconds);
    time.AddRow(std::to_string(num_tasks), row, 4);
    cost.AddRow(std::to_string(num_tasks), {sequential.cost, last.cost}, 2);
  }

  PrintBanner(std::cout,
              "Batch decomposition: wall seconds (engine xK = K threads; "
              "speedup = sequential / engine at max threads)");
  time.Print(std::cout);
  PrintBanner(std::cout, "Batch decomposition: plan cost (USD)");
  cost.Print(std::cout);
  json.Write();
  return 0;
}
