// Figure 6 (homogeneous evaluation): decomposition cost and running time
// for Greedy / OPQ-Based / Baseline on the Jelly and SMIC profiles.
//
//   6a/6b: cost vs. reliability threshold t (n = 10k, |B| = 20);
//   6c/6d: running time vs. t;
//   6e/6f: cost vs. max cardinality |B| (t = 0.9, n = 10k);
//   6g/6h: running time vs. |B|;
//   6i/6j: cost vs. number of atomic tasks;
//   6k/6l: running time vs. number of atomic tasks.
//
// Paper shapes to check: OPQ-Based cheapest and its time t-insensitive;
// Baseline least effective and noisy at small |B|; cost drops sharply with
// |B| up to ~6 and then flattens; cost grows linearly in n.
//
// Note on Greedy timing: our Greedy implementation replaces the paper's
// per-iteration O(n log n) re-sort by a linear merge with run batching, so
// it no longer dominates the runtime plots the way Fig. 6k/6l show. The
// paper-literal variant ("Greedy-Naive") is included in the n-sweep up to
// 30k tasks to exhibit the original quadratic growth (see also
// bench_ablation).

#include <iostream>

#include "bench_util.h"
#include "solver/greedy_solver.h"
#include "workload/workload.h"

namespace {

using namespace slade;
using slade_bench::RunSolver;
using slade_bench::TimedSolve;

constexpr uint32_t kMaxCardinality = 20;
constexpr size_t kDefaultTasks = 10'000;
constexpr double kDefaultThreshold = 0.9;

struct SolverSet {
  GreedySolver greedy;
  std::unique_ptr<Solver> opq = MakeSolver(SolverKind::kOpq);
  std::unique_ptr<Solver> baseline = MakeSolver(SolverKind::kBaseline);
};

void SweepThreshold(DatasetKind dataset) {
  const char* name = DatasetKindName(dataset);
  SolverSet solvers;
  TablePrinter cost({"t", "Greedy", "OPQ-Based", "Baseline"});
  TablePrinter time({"t", "Greedy", "OPQ-Based", "Baseline"});
  const size_t n = slade_bench::FastMode() ? 2000 : kDefaultTasks;
  for (double t : {0.87, 0.90, 0.92, 0.95, 0.97}) {
    auto workload = MakeHomogeneousWorkload(dataset, n, t, kMaxCardinality);
    TimedSolve g = RunSolver(solvers.greedy, workload->task,
                             workload->profile);
    TimedSolve o = RunSolver(*solvers.opq, workload->task,
                             workload->profile);
    TimedSolve b = RunSolver(*solvers.baseline, workload->task,
                             workload->profile);
    const std::string key = TablePrinter::FormatDouble(t, 2);
    cost.AddRow(key, {g.cost, o.cost, b.cost}, 2);
    time.AddRow(key, {g.seconds, o.seconds, b.seconds}, 4);
  }
  PrintBanner(std::cout, std::string("Figure 6a/6b analog (") + name +
                             "): t vs. Cost (USD)");
  cost.Print(std::cout);
  PrintBanner(std::cout, std::string("Figure 6c/6d analog (") + name +
                             "): t vs. Time (seconds)");
  time.Print(std::cout);
}

void SweepMaxCardinality(DatasetKind dataset) {
  const char* name = DatasetKindName(dataset);
  SolverSet solvers;
  TablePrinter cost({"|B|", "Greedy", "OPQ-Based", "Baseline"});
  TablePrinter time({"|B|", "Greedy", "OPQ-Based", "Baseline"});
  const size_t n = slade_bench::FastMode() ? 2000 : kDefaultTasks;
  for (uint32_t m = 1; m <= kMaxCardinality; ++m) {
    auto workload =
        MakeHomogeneousWorkload(dataset, n, kDefaultThreshold, m);
    TimedSolve g = RunSolver(solvers.greedy, workload->task,
                             workload->profile);
    TimedSolve o = RunSolver(*solvers.opq, workload->task,
                             workload->profile);
    TimedSolve b = RunSolver(*solvers.baseline, workload->task,
                             workload->profile);
    cost.AddRow(std::to_string(m), {g.cost, o.cost, b.cost}, 2);
    time.AddRow(std::to_string(m), {g.seconds, o.seconds, b.seconds}, 4);
  }
  PrintBanner(std::cout, std::string("Figure 6e/6f analog (") + name +
                             "): max cardinality vs. Cost (USD)");
  cost.Print(std::cout);
  PrintBanner(std::cout, std::string("Figure 6g/6h analog (") + name +
                             "): max cardinality vs. Time (seconds)");
  time.Print(std::cout);
}

void SweepTaskCount(DatasetKind dataset) {
  const char* name = DatasetKindName(dataset);
  SolverSet solvers;
  GreedySolver naive(GreedySolver::Strategy::kNaive);
  TablePrinter cost({"n", "Greedy", "OPQ-Based", "Baseline"});
  TablePrinter time(
      {"n", "Greedy", "Greedy-Naive", "OPQ-Based", "Baseline"});
  std::vector<size_t> ns = {1'000,  3'000,  5'000,  10'000, 15'000,
                            20'000, 30'000, 50'000, 75'000, 100'000};
  if (slade_bench::FastMode()) ns = {1'000, 5'000, 10'000};
  for (size_t n : ns) {
    auto workload = MakeHomogeneousWorkload(dataset, n, kDefaultThreshold,
                                            kMaxCardinality);
    TimedSolve g = RunSolver(solvers.greedy, workload->task,
                             workload->profile);
    TimedSolve o = RunSolver(*solvers.opq, workload->task,
                             workload->profile);
    TimedSolve b = RunSolver(*solvers.baseline, workload->task,
                             workload->profile);
    double naive_seconds = -1.0;
    if (n <= 30'000) {
      naive_seconds =
          RunSolver(naive, workload->task, workload->profile).seconds;
    }
    cost.AddRow(std::to_string(n), {g.cost, o.cost, b.cost}, 2);
    time.AddRow(std::to_string(n),
                {g.seconds, naive_seconds, o.seconds, b.seconds}, 4);
  }
  PrintBanner(std::cout, std::string("Figure 6i/6j analog (") + name +
                             "): # of atomic tasks vs. Cost (USD)");
  cost.Print(std::cout);
  PrintBanner(std::cout,
              std::string("Figure 6k/6l analog (") + name +
                  "): # of atomic tasks vs. Time (seconds; "
                  "Greedy-Naive = paper-literal resort, -1 = skipped)");
  time.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Figure 6 reproduction: homogeneous SLADE "
               "(defaults n=10000, t=0.9, |B|=20).\n";
  for (DatasetKind dataset : {DatasetKind::kJelly, DatasetKind::kSmic}) {
    SweepThreshold(dataset);
    SweepMaxCardinality(dataset);
    SweepTaskCount(dataset);
  }
  return 0;
}
