// OPQ construction kernel: the production iterative zero-allocation
// builder (BuildOpq) versus the recursive reference enumerator
// (BuildOpqReference), swept over profiles x thresholds x Lemma 1 pruning
// on/off. Queues are verified element-for-element identical before any
// timing is reported, and a global allocation counter checks the
// production builder's no-per-node-allocation contract: its allocation
// count must scale with frontier insertions (rare), never with visited
// nodes.
//
// Emits BENCH_opq_build.json. `--smoke` (or SLADE_BENCH_FAST=1) shrinks
// the sweep for CI.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "binmodel/profile_model.h"
#include "solver/opq_builder.h"

// -- Global allocation counter ----------------------------------------------
// Counts every operator-new in the process; deltas around a build isolate
// that build's allocations (the harness is single-threaded).

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// ---------------------------------------------------------------------------

namespace {

using namespace slade;

struct BuildRun {
  double seconds = 0.0;       // per build, averaged over reps
  uint64_t allocations = 0;   // per build, single measured run
  OpqBuildStats stats;
  size_t queue_size = 0;
};

// Times `build` by repeating it until ~0.2s of wall time accumulates
// (min 3 reps), then measures one extra run's allocation delta.
template <typename BuildFn>
BuildRun Measure(BuildFn&& build) {
  BuildRun run;
  // Warmup + correctness probe.
  {
    auto queue = build(&run.stats);
    if (!queue.ok()) {
      std::cerr << "build failed: " << queue.status().ToString() << "\n";
      std::exit(1);
    }
    run.queue_size = queue->size();
  }
  uint64_t reps = 0;
  Stopwatch watch;
  do {
    OpqBuildStats stats;
    auto queue = build(&stats);
    if (!queue.ok()) std::exit(1);
    ++reps;
  } while (watch.ElapsedSeconds() < 0.2 && reps < 10'000);
  run.seconds = watch.ElapsedSeconds() / static_cast<double>(reps);

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  {
    OpqBuildStats stats;
    auto queue = build(&stats);
    if (!queue.ok()) std::exit(1);
    run.allocations =
        g_allocations.load(std::memory_order_relaxed) - before;
  }
  return run;
}

void RequireIdentical(const OptimalPriorityQueue& fast,
                      const OptimalPriorityQueue& reference,
                      const std::string& config) {
  if (fast.size() != reference.size()) {
    std::cerr << config << ": queue size mismatch (" << fast.size() << " vs "
              << reference.size() << ")\n";
    std::exit(1);
  }
  for (size_t i = 0; i < fast.size(); ++i) {
    const Combination& a = fast.element(i);
    const Combination& b = reference.element(i);
    if (a.lcm() != b.lcm() || a.unit_cost() != b.unit_cost() ||
        a.parts() != b.parts()) {
      std::cerr << config << ": element " << i << " differs:\n  "
                << a.ToString() << "\n  " << b.ToString() << "\n";
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = slade_bench::FastMode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::cout << "OPQ construction kernel: iterative zero-allocation builder "
               "vs recursive reference\n(identical queues verified per "
               "configuration before timing).\n";

  std::vector<DatasetKind> datasets = {DatasetKind::kJelly,
                                       DatasetKind::kSmic};
  std::vector<uint32_t> cardinalities = {12, 20, 28};
  std::vector<double> thresholds = {0.9, 0.95, 0.99, 0.999};
  if (smoke) {
    datasets = {DatasetKind::kSmic};
    cardinalities = {20};
    thresholds = {0.9, 0.99};
  }

  slade_bench::BenchJsonWriter json("opq_build");
  TablePrinter table({"dataset", "m", "t", "pruning", "nodes", "queue",
                      "ref (ms)", "fast (ms)", "speedup", "fast allocs"});
  double worst_speedup = -1.0;
  double best_speedup = -1.0;

  for (DatasetKind dataset : datasets) {
    for (uint32_t m : cardinalities) {
      const BinProfile profile =
          BuildProfile(MakeModel(dataset), m).ValueOrDie();
      for (double t : thresholds) {
        for (bool pruning : {true, false}) {
          OpqBuildOptions options;
          options.enable_partial_pruning = pruning;
          const std::string config = std::string(DatasetKindName(dataset)) +
                                     " m=" + std::to_string(m) +
                                     " t=" + std::to_string(t) +
                                     (pruning ? " pruned" : " full");

          auto fast_queue = BuildOpq(profile, t, options);
          auto ref_queue = BuildOpqReference(profile, t, options);
          if (!fast_queue.ok() || !ref_queue.ok()) {
            std::cerr << config << ": build failed\n";
            return 1;
          }
          RequireIdentical(*fast_queue, *ref_queue, config);

          BuildRun fast = Measure([&](OpqBuildStats* stats) {
            return BuildOpq(profile, t, options, stats);
          });
          BuildRun ref = Measure([&](OpqBuildStats* stats) {
            return BuildOpqReference(profile, t, options, stats);
          });
          const double speedup = ref.seconds / fast.seconds;
          worst_speedup = worst_speedup < 0.0
                              ? speedup
                              : std::min(worst_speedup, speedup);
          best_speedup = std::max(best_speedup, speedup);

          // The zero-per-node-allocation contract: the production builder
          // may allocate for setup (stack, SoA copies, final Combinations)
          // and per frontier insertion, but never per visited node. The
          // bound is deliberately generous on the insertion term and
          // stingy on the node term.
          const uint64_t allowance =
              256 + 32 * (fast.stats.insertions + fast.queue_size);
          if (fast.allocations > allowance) {
            std::cerr << config << ": production builder allocated "
                      << fast.allocations << " times for "
                      << fast.stats.nodes_visited << " nodes / "
                      << fast.stats.insertions
                      << " insertions (allowance " << allowance
                      << ") -- per-node allocation has crept back in\n";
            return 1;
          }

          table.AddRow({DatasetKindName(dataset), std::to_string(m),
                        TablePrinter::FormatDouble(t, 3),
                        pruning ? "on" : "off",
                        std::to_string(fast.stats.nodes_visited),
                        std::to_string(fast.queue_size),
                        TablePrinter::FormatDouble(ref.seconds * 1e3, 3),
                        TablePrinter::FormatDouble(fast.seconds * 1e3, 3),
                        TablePrinter::FormatDouble(speedup, 1),
                        std::to_string(fast.allocations)});

          json.BeginRecord();
          json.Field("dataset", DatasetKindName(dataset));
          json.Field("m", static_cast<double>(m));
          json.Field("threshold", t);
          json.Field("pruning", pruning ? "on" : "off");
          json.Field("nodes_visited",
                     static_cast<double>(fast.stats.nodes_visited));
          json.Field("insertions",
                     static_cast<double>(fast.stats.insertions));
          json.Field("queue_size", static_cast<double>(fast.queue_size));
          json.Field("reference_seconds", ref.seconds);
          json.Field("fast_seconds", fast.seconds);
          json.Field("speedup", speedup);
          json.Field("fast_allocations",
                     static_cast<double>(fast.allocations));
          json.Field("reference_allocations",
                     static_cast<double>(ref.allocations));
        }
      }
    }
  }

  PrintBanner(std::cout,
              "OPQ build: reference vs production builder (per-build wall "
              "time; allocs = heap allocations per production build)");
  table.Print(std::cout);
  std::printf("speedup range: %.1fx .. %.1fx\n", worst_speedup,
              best_speedup);
  json.Write();
  return 0;
}
