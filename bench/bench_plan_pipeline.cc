// Columnar plan pipeline kernel: the arena-backed ColumnarPlan hot path
// (solve -> merge -> validate -> account -> split) versus the legacy AoS
// DecompositionPlan consumers, swept over batch sizes. Reports per-stage
// wall time and the columnar/AoS speedup for the stages that have both
// implementations.
//
// Two allocation contracts are enforced with a global operator-new
// counter (exit 1 on breach):
//   * read passes (validate + cost accounting) over a built ColumnarPlan
//     allocate O(1) scratch -- never O(placements);
//   * a Clear()+restamp cycle reuses the arena's chunks instead of
//     growing them, so steady-state plan reuse is allocation-free.
//
// Emits BENCH_plan_pipeline.json. `--smoke` (or SLADE_BENCH_FAST=1)
// shrinks the sweep for CI.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/decomposition_engine.h"
#include "engine/plan_splitter.h"
#include "solver/plan_arena.h"
#include "workload/workload.h"

// -- Global allocation counter ----------------------------------------------
// Counts every operator-new in the process; deltas around a single-threaded
// pass isolate that pass's allocations.

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// ---------------------------------------------------------------------------

namespace {

using namespace slade;

struct Timed {
  double seconds = 0.0;      // per pass, averaged over reps
  uint64_t allocations = 0;  // per pass, single measured run
};

// Sink defeating dead-code elimination of pure accounting passes.
volatile double g_sink = 0.0;

// Times `pass` by repeating it until ~0.2s of wall time accumulates (min
// 1 rep), then measures one extra run's allocation delta.
template <typename Fn>
Timed Measure(Fn&& pass) {
  pass();  // warmup
  uint64_t reps = 0;
  Stopwatch watch;
  do {
    pass();
    ++reps;
  } while (watch.ElapsedSeconds() < 0.2 && reps < 10'000);
  Timed out;
  out.seconds = watch.ElapsedSeconds() / static_cast<double>(reps);
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  pass();
  out.allocations = g_allocations.load(std::memory_order_relaxed) - before;
  return out;
}

void RequireBudget(const char* what, uint64_t allocations, uint64_t allowance,
                   size_t num_placements) {
  if (allocations > allowance) {
    std::cerr << what << " allocated " << allocations << " times over "
              << num_placements << " placements (allowance " << allowance
              << ") -- per-placement allocation has crept back in\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = slade_bench::FastMode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::cout << "Columnar plan pipeline: arena-backed flat-column passes vs "
               "legacy AoS consumers\n(Jelly, |B|=20, 20 atomic tasks per "
               "crowdsourcing task, t_i ~ N(0.9, 0.03)).\n";

  std::vector<size_t> batch_sizes = {2'000, 10'000};
  if (smoke) batch_sizes = {500};
  constexpr size_t kAtomicPerTask = 20;
  constexpr uint32_t kThreads = 4;

  ThresholdSpec spec;
  spec.family = ThresholdFamily::kNormal;
  spec.mu = 0.9;
  spec.sigma = 0.03;

  slade_bench::BenchJsonWriter json("plan_pipeline");
  TablePrinter table({"tasks", "stage", "columnar (ms)", "aos (ms)",
                      "speedup", "allocs/pass"});

  for (size_t num_tasks : batch_sizes) {
    auto batch = MakeBatchWorkload(DatasetKind::kJelly, num_tasks,
                                   kAtomicPerTask, spec, 20,
                                   ExperimentDefaults::kSeed);
    if (!batch.ok()) {
      std::cerr << "workload failed: " << batch.status().ToString() << "\n";
      return 1;
    }
    const BinProfile& profile = batch->profile;
    const std::string config = "n=" + std::to_string(num_tasks);

    // One cold engine solve supplies the plan the read stages consume.
    EngineOptions options;
    options.num_threads = kThreads;
    auto report = [&] {
      DecompositionEngine engine(options);
      return engine.SolveBatch(batch->tasks, profile);
    }();
    if (!report.ok()) {
      std::cerr << "solve failed: " << report.status().ToString() << "\n";
      return 1;
    }
    const ColumnarPlan& plan = report->plan;
    const DecompositionPlan aos = plan.ToPlan();
    auto merged = ConcatenateTasks(batch->tasks);
    if (!merged.ok()) return 1;
    const size_t n = merged->size();

    // --- solve: engine batch, cold cache, columnar shard merge -------------
    const Timed solve = Measure([&] {
      DecompositionEngine engine(options);
      auto r = engine.SolveBatch(batch->tasks, profile);
      if (!r.ok()) std::exit(1);
      g_sink = r->total_cost;
    });

    // --- validate: fused columnar sweep vs AoS placement walk --------------
    const Timed validate_columnar = Measure([&] {
      auto v = ValidatePlan(plan, *merged, profile);
      if (!v.ok() || !v->feasible) std::exit(1);
      g_sink = v->worst_log_margin;
    });
    const Timed validate_aos = Measure([&] {
      auto v = ValidatePlan(aos, *merged, profile);
      if (!v.ok() || !v->feasible) std::exit(1);
      g_sink = v->worst_log_margin;
    });

    // --- account: cost + bin census + per-task reliability -----------------
    const Timed account_columnar = Measure([&] {
      g_sink = plan.TotalCost(profile);
      g_sink += static_cast<double>(plan.TotalBinInstances());
      g_sink += plan.PerTaskReliability(profile, n).back();
    });
    const Timed account_aos = Measure([&] {
      g_sink = aos.TotalCost(profile);
      g_sink += static_cast<double>(aos.TotalBinInstances());
      g_sink += aos.PerTaskReliability(profile, n).back();
    });

    // --- split: per-requester slicing of the merged plan -------------------
    std::vector<RequesterSpan> spans;
    spans.reserve(batch->tasks.size());
    for (size_t k = 0; k < batch->tasks.size(); ++k) {
      spans.push_back({"r" + std::to_string(k % 16), k, 1});
    }
    const Timed split = Measure([&] {
      auto slices = PlanSplitter::SplitBySpans(*report, profile, spans);
      if (!slices.ok()) std::exit(1);
      g_sink = slices->back().cost;
    });

    // --- restamp: Clear() + AppendPlan over a warmed arena -----------------
    ColumnarPlan reuse;
    const Timed restamp = Measure([&] {
      reuse.Clear();
      reuse.AppendPlan(aos);
      g_sink = static_cast<double>(reuse.num_placements());
    });

    // Allocation contracts. Read passes may allocate scratch (epoch
    // array, LUTs, report vectors) but never per placement; the restamp
    // cycle must live entirely inside the already-reserved arena.
    RequireBudget("columnar validate", validate_columnar.allocations, 64,
                  plan.num_placements());
    RequireBudget("columnar accounting", account_columnar.allocations, 64,
                  plan.num_placements());
    RequireBudget("columnar restamp", restamp.allocations, 16,
                  plan.num_placements());

    struct StageRow {
      const char* stage;
      const Timed* columnar;
      const Timed* aos;  // nullptr when there is no AoS twin
    };
    for (const StageRow& row :
         {StageRow{"solve", &solve, nullptr},
          StageRow{"validate", &validate_columnar, &validate_aos},
          StageRow{"account", &account_columnar, &account_aos},
          StageRow{"split", &split, nullptr},
          StageRow{"restamp", &restamp, nullptr}}) {
      table.AddRow(
          {std::to_string(num_tasks), row.stage,
           TablePrinter::FormatDouble(row.columnar->seconds * 1e3, 4),
           row.aos ? TablePrinter::FormatDouble(row.aos->seconds * 1e3, 4)
                   : "-",
           row.aos ? TablePrinter::FormatDouble(
                         row.aos->seconds / row.columnar->seconds, 2)
                   : "-",
           std::to_string(row.columnar->allocations)});
      json.BeginRecord();
      json.Field("stage", row.stage);
      json.Field("config", config);
      json.Field("num_tasks", static_cast<double>(num_tasks));
      json.Field("threads", static_cast<double>(kThreads));
      json.Field("placements", static_cast<double>(plan.num_placements()));
      json.Field("seconds", row.columnar->seconds);
      json.Field("allocations",
                 static_cast<double>(row.columnar->allocations));
      if (row.aos) {
        json.Field("aos_seconds", row.aos->seconds);
        json.Field("speedup_vs_aos",
                   row.aos->seconds / row.columnar->seconds);
      }
    }
  }

  PrintBanner(std::cout,
              "Plan pipeline: per-pass wall time (columnar vs AoS twin "
              "where one exists; allocs = heap allocations per columnar "
              "pass)");
  table.Print(std::cout);
  json.Write();
  return 0;
}
