#include "binmodel/task.h"

#include <algorithm>
#include <cstdio>

namespace slade {

CrowdsourcingTask::CrowdsourcingTask(std::vector<double> thresholds)
    : thresholds_(std::move(thresholds)) {
  thetas_.reserve(thresholds_.size());
  min_threshold_ = thresholds_.front();
  max_threshold_ = thresholds_.front();
  for (double t : thresholds_) {
    thetas_.push_back(LogReduction(t));
    min_threshold_ = std::min(min_threshold_, t);
    max_threshold_ = std::max(max_threshold_, t);
    if (t != thresholds_.front()) homogeneous_ = false;
  }
}

Result<CrowdsourcingTask> CrowdsourcingTask::Homogeneous(size_t n, double t) {
  if (n == 0) {
    return Status::InvalidArgument("a crowdsourcing task needs n > 0");
  }
  if (!(t > 0.0 && t < 1.0)) {
    return Status::InvalidArgument(
        "reliability threshold must be in (0, 1), got " + std::to_string(t));
  }
  return CrowdsourcingTask(std::vector<double>(n, t));
}

Result<CrowdsourcingTask> CrowdsourcingTask::FromThresholds(
    std::vector<double> thresholds) {
  if (thresholds.empty()) {
    return Status::InvalidArgument("a crowdsourcing task needs n > 0");
  }
  for (double t : thresholds) {
    if (!(t > 0.0 && t < 1.0)) {
      return Status::InvalidArgument(
          "reliability threshold must be in (0, 1), got " +
          std::to_string(t));
    }
  }
  return CrowdsourcingTask(std::move(thresholds));
}

std::string CrowdsourcingTask::ToString() const {
  char buf[96];
  if (homogeneous_) {
    std::snprintf(buf, sizeof(buf), "n=%zu, t=%g", size(), min_threshold_);
  } else {
    std::snprintf(buf, sizeof(buf), "n=%zu, t in [%g, %g]", size(),
                  min_threshold_, max_threshold_);
  }
  return buf;
}

}  // namespace slade
