// Copyright (c) the SLADE reproduction authors.
// Atomic tasks and large-scale crowdsourcing tasks (paper Section 3.1).

#ifndef SLADE_BINMODEL_TASK_H_
#define SLADE_BINMODEL_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/result.h"

namespace slade {

/// Identifier of an atomic task inside a large-scale crowdsourcing task:
/// the index into `CrowdsourcingTask` (0-based).
using TaskId = uint32_t;

/// \brief A large-scale crowdsourcing task `T = {a_1..a_n}` with per-atomic-
/// task reliability thresholds `t_i` (paper Definition 3).
///
/// Atomic tasks are boolean questions (e.g. "is there a fishing line in this
/// image?") that are independent of each other; the only per-task state the
/// optimizer needs is the reliability threshold, so the representation is a
/// dense threshold vector indexed by TaskId.
class CrowdsourcingTask {
 public:
  /// Builds a homogeneous task: `n` atomic tasks all with threshold `t`.
  /// Fails unless 0 < t < 1 and n > 0.
  static Result<CrowdsourcingTask> Homogeneous(size_t n, double t);

  /// Builds a heterogeneous task from explicit thresholds.
  /// Fails unless every threshold is in (0, 1) and the vector is non-empty.
  static Result<CrowdsourcingTask> FromThresholds(
      std::vector<double> thresholds);

  /// Number of atomic tasks `n = |T|`.
  size_t size() const { return thresholds_.size(); }

  /// Reliability threshold `t_i` of atomic task `id`.
  double threshold(TaskId id) const { return thresholds_[id]; }

  /// Log-domain threshold `theta_i = -ln(1 - t_i)` (Equation 2).
  double theta(TaskId id) const { return thetas_[id]; }

  const std::vector<double>& thresholds() const { return thresholds_; }
  const std::vector<double>& thetas() const { return thetas_; }

  /// True iff all thresholds are equal (the homogeneous SLADE variant).
  bool is_homogeneous() const { return homogeneous_; }

  double min_threshold() const { return min_threshold_; }
  double max_threshold() const { return max_threshold_; }

  /// "n=10000, t=0.9" or "n=10000, t in [0.81, 0.97]".
  std::string ToString() const;

 private:
  explicit CrowdsourcingTask(std::vector<double> thresholds);

  std::vector<double> thresholds_;
  std::vector<double> thetas_;
  bool homogeneous_ = true;
  double min_threshold_ = 0.0;
  double max_threshold_ = 0.0;
};

}  // namespace slade

#endif  // SLADE_BINMODEL_TASK_H_
