#include "binmodel/calibration.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace slade {

double CountingEstimate(const ProbeObservation& obs) {
  return (static_cast<double>(obs.correct) + 1.0) /
         (static_cast<double>(obs.total) + 2.0);
}

Result<PowerLawConfidenceFit> PowerLawConfidenceFit::Fit(
    const std::vector<ProbeObservation>& observations) {
  // Weighted least squares on y = ln(failure), x = ln(l).
  double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
  std::map<uint32_t, bool> seen;
  for (const ProbeObservation& obs : observations) {
    if (obs.cardinality == 0 || obs.total == 0) continue;
    seen[obs.cardinality] = true;
    const double r_hat = CountingEstimate(obs);
    const double failure = std::clamp(1.0 - r_hat, 1e-6, 1.0 - 1e-6);
    const double x = std::log(static_cast<double>(obs.cardinality));
    const double y = std::log(failure);
    const double w = static_cast<double>(obs.total);
    sw += w;
    swx += w * x;
    swy += w * y;
    swxx += w * x * x;
    swxy += w * x * y;
  }
  if (seen.empty()) {
    return Status::InvalidArgument(
        "power-law fit needs at least one probe with answers");
  }
  if (seen.size() == 1) {
    // One probed cardinality cannot identify a slope. Fall back to the
    // flat model p = 0 with the pooled counting estimate as base: the fit
    // then predicts the same confidence at every cardinality, which is
    // the best unbiased answer the data supports (and what the online
    // recalibration loop needs when a platform only ever serves bins of
    // one size).
    const double failure = std::clamp(std::exp(swy / sw), 1e-6, 1.0 - 1e-6);
    return PowerLawConfidenceFit(failure, 0.0);
  }
  const double denom = sw * swxx - swx * swx;
  if (std::fabs(denom) < 1e-12) {
    return Status::Internal("degenerate design matrix in power-law fit");
  }
  const double power = (sw * swxy - swx * swy) / denom;
  const double intercept = (swy - power * swx) / sw;
  return PowerLawConfidenceFit(std::exp(intercept), power);
}

double PowerLawConfidenceFit::Predict(uint32_t l) const {
  const double failure =
      failure_base_ * std::pow(static_cast<double>(l), failure_power_);
  return std::clamp(1.0 - failure, 1e-6, 1.0 - 1e-6);
}

namespace {

// Linear interpolation/extrapolation of bin costs over cardinality from the
// probed (l, cost) pairs.
double InterpolateCost(const std::map<uint32_t, double>& costs, uint32_t l) {
  auto it = costs.find(l);
  if (it != costs.end()) return it->second;
  auto hi = costs.lower_bound(l);
  if (hi == costs.begin()) {
    // Extrapolate below the smallest probed cardinality via the first two
    // points (or flat if only one).
    auto first = costs.begin();
    auto second = std::next(first);
    if (second == costs.end()) return first->second;
    const double slope = (second->second - first->second) /
                         (static_cast<double>(second->first) -
                          static_cast<double>(first->first));
    return first->second +
           slope * (static_cast<double>(l) -
                    static_cast<double>(first->first));
  }
  if (hi == costs.end()) {
    auto last = std::prev(costs.end());
    if (last == costs.begin()) return last->second;
    auto before = std::prev(last);
    const double slope = (last->second - before->second) /
                         (static_cast<double>(last->first) -
                          static_cast<double>(before->first));
    return last->second +
           slope * (static_cast<double>(l) -
                    static_cast<double>(last->first));
  }
  auto lo = std::prev(hi);
  const double frac = (static_cast<double>(l) -
                       static_cast<double>(lo->first)) /
                      (static_cast<double>(hi->first) -
                       static_cast<double>(lo->first));
  return lo->second + frac * (hi->second - lo->second);
}

}  // namespace

Result<BinProfile> CalibrateProfile(
    const std::vector<ProbeObservation>& observations, uint32_t m,
    CalibrationMethod method) {
  if (m == 0) return Status::InvalidArgument("calibration needs m >= 1");

  // Merge multiple observations at the same cardinality.
  std::map<uint32_t, ProbeObservation> merged;
  for (const ProbeObservation& obs : observations) {
    if (obs.cardinality == 0 || obs.cardinality > m || obs.total == 0) {
      continue;
    }
    ProbeObservation& slot = merged[obs.cardinality];
    if (slot.total == 0) {
      slot = obs;
    } else {
      slot.total += obs.total;
      slot.correct += obs.correct;
      // Keep the cheaper in-time cost if probes tried several price points.
      slot.bin_cost = std::min(slot.bin_cost, obs.bin_cost);
    }
  }
  if (merged.empty()) {
    return Status::InvalidArgument("no usable probe observations");
  }

  std::map<uint32_t, double> costs;
  for (const auto& [l, obs] : merged) costs[l] = obs.bin_cost;

  std::vector<TaskBin> bins;
  bins.reserve(m);

  if (method == CalibrationMethod::kCounting) {
    for (uint32_t l = 1; l <= m; ++l) {
      auto it = merged.find(l);
      if (it == merged.end()) {
        return Status::InvalidArgument(
            "counting calibration needs probes at every cardinality; "
            "missing l=" + std::to_string(l));
      }
      TaskBin b;
      b.cardinality = l;
      b.confidence = CountingEstimate(it->second);
      b.cost = it->second.bin_cost;
      bins.push_back(b);
    }
  } else {
    std::vector<ProbeObservation> flat;
    flat.reserve(merged.size());
    for (const auto& [l, obs] : merged) flat.push_back(obs);
    SLADE_ASSIGN_OR_RETURN(PowerLawConfidenceFit fit,
                           PowerLawConfidenceFit::Fit(flat));
    for (uint32_t l = 1; l <= m; ++l) {
      TaskBin b;
      b.cardinality = l;
      b.confidence = fit.Predict(l);
      b.cost = InterpolateCost(costs, l);
      if (b.cost <= 0.0) {
        return Status::InvalidArgument(
            "cost interpolation produced non-positive cost at l=" +
            std::to_string(l) + "; probe a wider cardinality range");
      }
      bins.push_back(b);
    }
  }
  return BinProfile::Create(std::move(bins));
}

}  // namespace slade
