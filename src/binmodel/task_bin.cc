#include "binmodel/task_bin.h"

#include <algorithm>
#include <cstdio>

namespace slade {

std::string TaskBin::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "b%u <l=%u, r=%g, c=%g>", cardinality,
                cardinality, confidence, cost);
  return buf;
}

BinProfile::BinProfile(std::vector<TaskBin> bins) : bins_(std::move(bins)) {
  log_weights_.reserve(bins_.size());
  costs_per_task_.reserve(bins_.size());
  for (const TaskBin& b : bins_) {
    log_weights_.push_back(b.log_weight());
    costs_per_task_.push_back(b.cost_per_task());
    max_log_weight_ = std::max(max_log_weight_, b.log_weight());
    max_confidence_ = std::max(max_confidence_, b.confidence);
  }
  min_log_weight_ = *std::min_element(log_weights_.begin(),
                                      log_weights_.end());
}

Result<BinProfile> BinProfile::Create(std::vector<TaskBin> bins) {
  if (bins.empty()) {
    return Status::InvalidArgument("bin profile must contain at least b1");
  }
  for (size_t i = 0; i < bins.size(); ++i) {
    const TaskBin& b = bins[i];
    if (b.cardinality != i + 1) {
      return Status::InvalidArgument(
          "bin profile cardinalities must be exactly 1..m; slot " +
          std::to_string(i + 1) + " holds cardinality " +
          std::to_string(b.cardinality));
    }
    if (!(b.confidence > 0.0 && b.confidence < 1.0)) {
      return Status::InvalidArgument(
          "bin confidence must be in (0, 1), got " +
          std::to_string(b.confidence) + " at cardinality " +
          std::to_string(b.cardinality));
    }
    if (!(b.cost > 0.0)) {
      return Status::InvalidArgument("bin cost must be > 0, got " +
                                     std::to_string(b.cost) +
                                     " at cardinality " +
                                     std::to_string(b.cardinality));
    }
  }
  return BinProfile(std::move(bins));
}

BinProfile BinProfile::PaperExample() {
  std::vector<TaskBin> bins = {
      {1, 0.90, 0.10},
      {2, 0.85, 0.18},
      {3, 0.80, 0.24},
  };
  auto result = Create(std::move(bins));
  return std::move(result).ValueOrDie();
}

Result<BinProfile> BinProfile::Truncated(uint32_t max_l) const {
  if (max_l == 0 || max_l > bins_.size()) {
    return Status::OutOfRange("cannot truncate profile of m=" +
                              std::to_string(bins_.size()) + " to " +
                              std::to_string(max_l));
  }
  std::vector<TaskBin> prefix(bins_.begin(), bins_.begin() + max_l);
  return Create(std::move(prefix));
}

std::string BinProfile::ToString() const {
  std::string out = "BinProfile (m=" + std::to_string(bins_.size()) + ")\n";
  char buf[96];
  for (const TaskBin& b : bins_) {
    std::snprintf(buf, sizeof(buf), "  l=%2u  r=%.4f  c=%.4f  c/l=%.4f\n",
                  b.cardinality, b.confidence, b.cost, b.cost_per_task());
    out += buf;
  }
  return out;
}

}  // namespace slade
