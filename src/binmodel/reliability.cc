#include "binmodel/reliability.h"

namespace slade {

double Reliability(const std::vector<double>& assigned_confidences) {
  // Accumulate in the log domain: with many assigned bins the direct
  // product underflows the failure probability before the reliability
  // rounds to 1, and the log form matches the Equation 2 reduction used by
  // all solvers.
  double theta = 0.0;
  for (double r : assigned_confidences) theta += LogReduction(r);
  return InverseLogReduction(theta);
}

double Reliability(const BinProfile& profile,
                   const std::vector<uint32_t>& assigned_cardinalities) {
  double theta = 0.0;
  for (uint32_t l : assigned_cardinalities) {
    theta += profile.bin(l).log_weight();
  }
  return InverseLogReduction(theta);
}

double ReliabilityReduction(const std::vector<double>& assigned_confidences) {
  double theta = 0.0;
  for (double r : assigned_confidences) theta += LogReduction(r);
  return theta;
}

bool MeetsThreshold(const std::vector<double>& assigned_confidences,
                    double t) {
  return ApproxGe(ReliabilityReduction(assigned_confidences),
                  LogReduction(t));
}

}  // namespace slade
