// Copyright (c) the SLADE reproduction authors.
//
// Parametric worker-behaviour models for the paper's two AMT datasets,
// "Jelly-Beans-in-a-Jar" (Jelly) and "Micro-Expressions Identification"
// (SMIC). The paper measured, on live Amazon Mechanical Turk:
//
//   * per-atomic-task confidence r declining with bin cardinality l
//     (Fig. 3: Jelly 0.981 at l=2 down to 0.783 at l=30);
//   * a mild extra confidence drop at lower pay;
//   * a sharp *quantity* effect of pay: bins paying less than a per-task
//     minimum wage do not finish within the response-time threshold
//     (Jelly: cost 0.05 in-time only up to l=14, cost 0.1 up to l=30 --
//     both cutoffs sit at ~0.0033 USD per atomic task).
//
// We cannot run AMT, so this module is the substitution (see DESIGN.md §4):
// a closed-form model with the failure probability growing as a power law
// of cardinality, `1 - r(l) = B * l^p * payPenalty`, whose parameters are
// fitted to the Fig. 3 curves. The simulator (src/simulator) draws worker
// answers from the same model, so calibration, planning and execution all
// see one consistent "platform".

#ifndef SLADE_BINMODEL_PROFILE_MODEL_H_
#define SLADE_BINMODEL_PROFILE_MODEL_H_

#include <cstdint>
#include <string>

#include "binmodel/task_bin.h"
#include "common/result.h"

namespace slade {

/// \brief Identifies one of the paper's evaluation datasets.
enum class DatasetKind {
  kJelly,
  kSmic,
};

const char* DatasetKindName(DatasetKind kind);

/// \brief Closed-form worker-behaviour model for one dataset/difficulty.
///
/// Confidence:
///   `r(l, c) = 1 - B * d * l^p * (1 + q * max(0, (c_ref - c)/c_ref))`
/// clamped into [min_confidence, max_confidence]. The penalty term keys
/// off the *bin* incentive `c` relative to the dataset's reference
/// incentive `c_ref` -- Fig. 3 plots one confidence curve per bin cost,
/// and the curves separate mildly by cost ("the confidence of crowd
/// workers tend to be less sensitive to the drop in cost").
///
/// Timeliness: a bin finishes within `timeout_minutes` iff the per-task
/// pay `c / l >= min_wage` and `l <= max_feasible_cardinality` (the
/// *quantity* of workers is what reacts sharply to pay).
struct DatasetModel {
  std::string name;
  /// Failure-probability scale `B` (at l=1, reference pay, difficulty 1.0).
  double failure_base = 0.0102;
  /// Failure-probability growth exponent `p` in `B * l^p`.
  double failure_power = 0.899;
  /// Difficulty multiplier `d` on the failure probability (Fig. 3c).
  double difficulty_factor = 1.0;
  /// Bin incentive at/above which no pay penalty applies (`c_ref`).
  double cost_ref = 0.10;
  /// Pay-penalty strength `q`.
  double pay_penalty = 0.92;
  /// Per-task minimum wage for in-time completion (`u_min`).
  double min_wage = 0.0033;
  /// Hard cardinality cap (webpage length / worker patience).
  uint32_t max_feasible_cardinality = 30;
  /// Response-time threshold (40 min for Jelly, 30 for SMIC).
  double timeout_minutes = 40.0;
  /// Assignments collected per bin in the motivation experiments.
  int assignments_required = 10;
  /// Fixed platform/posting overhead per bin used when building solver
  /// profiles (the "minimum cost that meets the response time requirement"
  /// of Section 3.1 plus the per-HIT fee).
  double posting_overhead = 0.045;
  /// Safety multiplier over min_wage when choosing profile costs.
  double wage_margin = 1.2;
  /// Confidence clamps.
  double min_confidence = 0.02;
  double max_confidence = 0.995;
};

/// \brief The Jelly-Beans-in-a-Jar model (Fig. 3a). `difficulty` in
/// {1, 2, 3} maps to the 50/200/400-dot sample images of Fig. 3c
/// (failure multipliers 0.6 / 1.0 / 1.6).
DatasetModel JellyModel(int difficulty = 2);

/// \brief The Micro-Expressions (SMIC) model (Fig. 3b): lower base
/// confidence, pricier minimum wage, 30-minute timeout.
DatasetModel SmicModel();

/// \brief Dispatches to JellyModel(2) / SmicModel().
DatasetModel MakeModel(DatasetKind kind);

/// \brief Analytic per-atomic-task confidence for a bin of cardinality `l`
/// posted at total incentive `bin_cost` (the solid/dotted curves of Fig. 3).
double ModelConfidence(const DatasetModel& model, uint32_t l,
                       double bin_cost);

/// \brief True iff a bin of cardinality `l` at incentive `bin_cost`
/// collects all required assignments within the dataset's timeout
/// (solid vs. dotted portions of Fig. 3).
bool ModelInTime(const DatasetModel& model, uint32_t l, double bin_cost);

/// \brief Expected completion time in minutes for one bin (used by the
/// simulator's arrival process and by ModelInTime).
double ModelCompletionMinutes(const DatasetModel& model, uint32_t l,
                              double bin_cost);

/// \brief The minimum in-time incentive for a bin of cardinality `l`
/// including the wage margin -- the cost rule of Section 3.1 ("the cost for
/// each cardinality is calculated as the minimum cost that meets the
/// response time requirement").
double ModelBinCost(const DatasetModel& model, uint32_t l);

/// \brief Builds the solver-facing bin profile `B = {b_1..b_m}` for the
/// dataset: for each cardinality, cost from ModelBinCost and confidence from
/// ModelConfidence at that cost. Fails if `m` is 0 or exceeds the model's
/// feasible cardinality.
Result<BinProfile> BuildProfile(const DatasetModel& model, uint32_t m);

}  // namespace slade

#endif  // SLADE_BINMODEL_PROFILE_MODEL_H_
