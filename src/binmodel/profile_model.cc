#include "binmodel/profile_model.h"

#include <algorithm>
#include <cmath>

namespace slade {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kJelly:
      return "Jelly";
    case DatasetKind::kSmic:
      return "SMIC";
  }
  return "?";
}

DatasetModel JellyModel(int difficulty) {
  DatasetModel m;
  m.name = "Jelly";
  // Fit of 1-r = B * l^p to Fig. 3a (cost 0.1 curve): r(2)=0.981,
  // r(30)=0.783  =>  p = ln(0.217/0.019)/ln(15) ~= 0.899,
  // B = 0.019 / 2^0.899 ~= 0.0102.
  m.failure_base = 0.0102;
  m.failure_power = 0.899;
  // Fig. 3c difficulty levels: 50 / 200 / 400 dots.
  m.difficulty_factor = (difficulty <= 1) ? 0.6 : (difficulty == 2 ? 1.0 : 1.6);
  // Penalty calibrated on the Fig. 3a cost-0.05 curve: 1-r ~= 0.16 at
  // l=14 needs a 1.46x failure multiplier at half the reference pay.
  m.cost_ref = 0.10;
  m.pay_penalty = 0.92;
  // In-time cutoffs 14 @ $0.05, 24 @ $0.08, 30 @ $0.1 all sit at a per-task
  // wage of ~$0.0033.
  m.min_wage = 0.0033;
  m.max_feasible_cardinality = 30;
  m.timeout_minutes = 40.0;
  m.assignments_required = 10;
  m.posting_overhead = 0.045;
  m.wage_margin = 1.2;
  return m;
}

DatasetModel SmicModel() {
  DatasetModel m;
  m.name = "SMIC";
  // Fit to Fig. 3b (cost 0.2 curve): r(2) ~= 0.88, r(30) ~= 0.62.
  m.failure_base = 0.0893;
  m.failure_power = 0.426;
  m.difficulty_factor = 1.0;
  m.cost_ref = 0.20;
  m.pay_penalty = 0.6;
  // Micro-expression labelling is slower work; workers demand more per task.
  m.min_wage = 0.006;
  m.max_feasible_cardinality = 30;
  m.timeout_minutes = 30.0;
  m.assignments_required = 10;
  m.posting_overhead = 0.05;
  m.wage_margin = 1.2;
  return m;
}

DatasetModel MakeModel(DatasetKind kind) {
  return kind == DatasetKind::kJelly ? JellyModel() : SmicModel();
}

double ModelConfidence(const DatasetModel& model, uint32_t l,
                       double bin_cost) {
  const double ll = static_cast<double>(l);
  double penalty = 1.0;
  if (bin_cost < model.cost_ref) {
    penalty +=
        model.pay_penalty * (model.cost_ref - bin_cost) / model.cost_ref;
  }
  const double failure = model.failure_base * model.difficulty_factor *
                         std::pow(ll, model.failure_power) * penalty;
  const double r = 1.0 - failure;
  return std::clamp(r, model.min_confidence, model.max_confidence);
}

double ModelCompletionMinutes(const DatasetModel& model, uint32_t l,
                              double bin_cost) {
  const double per_task_pay = bin_cost / static_cast<double>(l);
  // Worker arrival rate grows linearly with the per-task wage and is
  // normalized so that a bin paying exactly min_wage collects its
  // assignments exactly at the timeout.
  const double rate_at_min =
      static_cast<double>(model.assignments_required) / model.timeout_minutes;
  const double rate = rate_at_min * (per_task_pay / model.min_wage);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(model.assignments_required) / rate;
}

bool ModelInTime(const DatasetModel& model, uint32_t l, double bin_cost) {
  if (l == 0 || l > model.max_feasible_cardinality) return false;
  return ModelCompletionMinutes(model, l, bin_cost) <=
         model.timeout_minutes + 1e-12;
}

double ModelBinCost(const DatasetModel& model, uint32_t l) {
  return model.posting_overhead +
         model.min_wage * model.wage_margin * static_cast<double>(l);
}

Result<BinProfile> BuildProfile(const DatasetModel& model, uint32_t m) {
  if (m == 0) {
    return Status::InvalidArgument("profile needs m >= 1");
  }
  if (m > model.max_feasible_cardinality) {
    return Status::OutOfRange(
        "dataset " + model.name + " supports cardinality up to " +
        std::to_string(model.max_feasible_cardinality) + ", requested " +
        std::to_string(m));
  }
  std::vector<TaskBin> bins;
  bins.reserve(m);
  for (uint32_t l = 1; l <= m; ++l) {
    TaskBin b;
    b.cardinality = l;
    b.cost = ModelBinCost(model, l);
    b.confidence = ModelConfidence(model, l, b.cost);
    bins.push_back(b);
  }
  return BinProfile::Create(std::move(bins));
}

}  // namespace slade
