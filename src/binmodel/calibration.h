// Copyright (c) the SLADE reproduction authors.
//
// Probe-based bin-profile calibration (paper Section 3.1): "when a batch of
// atomic tasks arrives, one can regularly issue testing task bins with
// different cardinalities. The atomic tasks in testing task bins are the
// same as the real tasks, yet the ground truth is known to calculate the
// confidence. ... the confidence can be obtained by regression or counting
// methods."
//
// This module implements both estimators. The probe *data* comes from the
// platform simulator (src/simulator/probe_runner.h) in this reproduction,
// but the estimators only see (cardinality, correct, total) counts and work
// unchanged against a live platform.

#ifndef SLADE_BINMODEL_CALIBRATION_H_
#define SLADE_BINMODEL_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "binmodel/task_bin.h"
#include "common/result.h"

namespace slade {

/// \brief Aggregated outcome of probe bins at one cardinality.
struct ProbeObservation {
  uint32_t cardinality = 0;
  /// Total atomic-task answers collected at this cardinality.
  uint64_t total = 0;
  /// How many of them matched the known ground truth.
  uint64_t correct = 0;
  /// Incentive cost per probe bin (becomes c_l of the calibrated profile).
  double bin_cost = 0.0;
};

/// \brief Direct counting estimator with Laplace (add-one) smoothing:
/// `r_hat = (correct + 1) / (total + 2)`.
///
/// Smoothing keeps the estimate inside (0, 1) -- a raw 100%-correct probe
/// would otherwise produce r = 1 and an infinite log weight.
double CountingEstimate(const ProbeObservation& obs);

/// \brief Power-law regression estimator.
///
/// Fits `ln(1 - r) = ln B + p * ln l` by ordinary least squares over all
/// observations (each weighted by its answer count), then predicts the
/// failure probability for any cardinality. This matches the generative
/// model of profile_model.h and smooths per-cardinality sampling noise; it
/// can also extrapolate to cardinalities that were never probed.
class PowerLawConfidenceFit {
 public:
  /// Fits the model. Needs at least one observation with answers;
  /// observations with zero errors contribute via smoothing. With probes
  /// at a single distinct cardinality the slope is unidentifiable and the
  /// fit degrades to the flat model p = 0 at the pooled failure estimate
  /// (predicting the same confidence at every cardinality); >= 2 distinct
  /// cardinalities fit the full power law.
  static Result<PowerLawConfidenceFit> Fit(
      const std::vector<ProbeObservation>& observations);

  /// Predicted confidence at cardinality `l`, clamped into (0, 1).
  double Predict(uint32_t l) const;

  double failure_base() const { return failure_base_; }   ///< fitted B
  double failure_power() const { return failure_power_; } ///< fitted p

 private:
  PowerLawConfidenceFit(double base, double power)
      : failure_base_(base), failure_power_(power) {}
  double failure_base_;
  double failure_power_;
};

/// \brief Strategy used by `CalibrateProfile`.
enum class CalibrationMethod {
  kCounting,    ///< per-cardinality counting estimate
  kRegression,  ///< power-law fit shared across cardinalities
};

/// \brief Builds a solver-facing `BinProfile` from probe outcomes.
///
/// Observations must cover every cardinality 1..m for `kCounting`; for
/// `kRegression` any non-empty probe set suffices and the missing
/// cardinalities are interpolated (a single probed cardinality yields the
/// flat fallback fit -- see PowerLawConfidenceFit::Fit). Costs for
/// unprobed cardinalities are linearly interpolated between the nearest
/// probed ones.
Result<BinProfile> CalibrateProfile(
    const std::vector<ProbeObservation>& observations, uint32_t m,
    CalibrationMethod method);

}  // namespace slade

#endif  // SLADE_BINMODEL_CALIBRATION_H_
