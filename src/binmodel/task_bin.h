// Copyright (c) the SLADE reproduction authors.
// l-cardinality task bins and bin profiles (paper Definition 1, Table 1).

#ifndef SLADE_BINMODEL_TASK_BIN_H_
#define SLADE_BINMODEL_TASK_BIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/result.h"

namespace slade {

/// \brief An l-cardinality task bin `b_l = <l, r_l, c_l>` (Definition 1).
///
/// Posting one instance of the bin sends up to `l` distinct atomic tasks to
/// a single crowd worker; each contained task is answered correctly with
/// probability `confidence`, and the requester pays `cost` for the bin.
struct TaskBin {
  /// Maximum number of distinct atomic tasks in the bin (`l >= 1`).
  uint32_t cardinality = 0;
  /// Per-atomic-task success probability `r_l`, in (0, 1).
  double confidence = 0.0;
  /// Incentive cost `c_l` paid per posted bin instance, > 0.
  double cost = 0.0;

  /// Log-domain reliability contribution per atomic task:
  /// `w_l = -ln(1 - r_l)` (Equation 2).
  double log_weight() const { return LogReduction(confidence); }

  /// Average incentive cost per contained atomic task, `c_l / l`.
  double cost_per_task() const {
    return cost / static_cast<double>(cardinality);
  }

  /// "b3 <l=3, r=0.8, c=0.24>".
  std::string ToString() const;
};

/// \brief The set of available task bins `B = {b_1..b_m}`, indexed by
/// cardinality 1..m (paper Table 1).
///
/// Invariants enforced at construction:
///  * cardinalities are exactly 1..m with no gaps (the paper's `B` always
///    offers every cardinality up to the maximum, see Section 7 "maximum
///    cardinality |B|");
///  * every confidence is in (0, 1) and every cost is positive.
///
/// The profile deliberately does NOT require monotone confidence/cost: a
/// calibrated profile from noisy probes may be locally non-monotone, and all
/// solvers remain correct (they only read `(l, r_l, c_l)` triples).
class BinProfile {
 public:
  /// Validates and adopts `bins`. `bins[i]` must have cardinality i+1.
  static Result<BinProfile> Create(std::vector<TaskBin> bins);

  /// The paper's running-example profile (Table 1):
  /// b1=<1,0.9,0.1>, b2=<2,0.85,0.18>, b3=<3,0.8,0.24>.
  static BinProfile PaperExample();

  /// Number of distinct bins `m = |B|` (== maximum cardinality).
  size_t size() const { return bins_.size(); }
  uint32_t max_cardinality() const {
    return static_cast<uint32_t>(bins_.size());
  }

  /// The l-cardinality bin (1-based `l`, as in the paper).
  const TaskBin& bin(uint32_t l) const { return bins_[l - 1]; }
  const std::vector<TaskBin>& bins() const { return bins_; }

  /// Largest per-task log contribution over all bins; > 0 by construction.
  double max_log_weight() const { return max_log_weight_; }
  /// Smallest per-task log contribution over all bins; > 0 by construction.
  double min_log_weight() const { return min_log_weight_; }
  /// Largest confidence over all bins.
  double max_confidence() const { return max_confidence_; }

  /// Flat structure-of-arrays views of the profile, indexed by l-1 (so
  /// `log_weights()[l-1] == bin(l).log_weight()`). Precomputed once at
  /// construction; the Algorithm 2 enumerator's inner loop reads these
  /// contiguous arrays instead of chasing per-bin fields, keeping the hot
  /// path cache-linear and free of repeated log1p/division work.
  const std::vector<double>& log_weights() const { return log_weights_; }
  /// `costs_per_task()[l-1] == bin(l).cost / l` (the unit-cost increment
  /// of adding one copy of b_l to a combination).
  const std::vector<double>& costs_per_task() const {
    return costs_per_task_;
  }

  /// Returns a copy truncated to bins of cardinality <= `max_l` (used by
  /// the |B| sweep of Figures 6e-6h). Fails if max_l is 0 or exceeds m.
  Result<BinProfile> Truncated(uint32_t max_l) const;

  /// Multi-line human-readable rendering (mirrors Table 1).
  std::string ToString() const;

 private:
  explicit BinProfile(std::vector<TaskBin> bins);

  std::vector<TaskBin> bins_;
  std::vector<double> log_weights_;
  std::vector<double> costs_per_task_;
  double max_log_weight_ = 0.0;
  double min_log_weight_ = 0.0;
  double max_confidence_ = 0.0;
};

}  // namespace slade

#endif  // SLADE_BINMODEL_TASK_BIN_H_
