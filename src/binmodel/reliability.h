// Copyright (c) the SLADE reproduction authors.
// Reliability of an atomic task under a set of assigned bins
// (paper Definition 2 and the Section 4.1 log reduction).

#ifndef SLADE_BINMODEL_RELIABILITY_H_
#define SLADE_BINMODEL_RELIABILITY_H_

#include <cstdint>
#include <vector>

#include "binmodel/task_bin.h"
#include "common/math_util.h"

namespace slade {

/// \brief Reliability `Rel(a_i, B(a_i)) = 1 - prod(1 - r_|beta|)` of an
/// atomic task assigned to bins with the given confidences (Equation 1).
double Reliability(const std::vector<double>& assigned_confidences);

/// \brief Reliability from cardinalities: looks up each cardinality's
/// confidence in `profile` (Equation 1).
double Reliability(const BinProfile& profile,
                   const std::vector<uint32_t>& assigned_cardinalities);

/// \brief The equivalent log-domain reduction
/// `R(a_i, B(a_i)) = sum(-ln(1 - r_|beta|))` (Equation 2).
double ReliabilityReduction(const std::vector<double>& assigned_confidences);

/// \brief True iff a task assigned these confidences meets threshold `t`,
/// i.e. `Rel >= t`, evaluated in the log domain for numerical robustness.
bool MeetsThreshold(const std::vector<double>& assigned_confidences,
                    double t);

}  // namespace slade

#endif  // SLADE_BINMODEL_RELIABILITY_H_
