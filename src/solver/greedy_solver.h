// Copyright (c) the SLADE reproduction authors.
// The Greedy heuristic (paper Algorithm 1).

#ifndef SLADE_SOLVER_GREEDY_SOLVER_H_
#define SLADE_SOLVER_GREEDY_SOLVER_H_

#include "solver/solver.h"

namespace slade {

/// \brief Greedy cost-confidence-ratio solver (Algorithm 1).
///
/// Repeatedly picks the task bin minimizing the cost-confidence ratio
/// (Equation 4)
///
///   ratio(l) = c_l / min(l * w_l, sum of the l largest threshold residuals)
///
/// and assigns it to the l atomic tasks with the largest residuals, until
/// every residual reaches zero. Works for both the homogeneous and the
/// heterogeneous SLADE problem (Section 6: only the initial residuals
/// differ).
///
/// Two equivalent execution strategies are provided:
///  * `kNaive` re-sorts all residuals every iteration, exactly as written
///    in the paper (O(n log n) per iteration);
///  * `kFast` (default) exploits that subtracting the same w from the
///    top-l residuals keeps both halves sorted, so a linear merge suffices,
///    and batches runs of identical residuals (homogeneous inputs) into
///    repeated identical decisions.
///
/// The two strategies produce identical plans (see greedy_solver_test.cc);
/// kNaive exists as the reference for that equivalence and for the
/// ablation benchmark.
///
/// Implementation notes (deviations from the paper's pseudocode, both
/// behaviour-preserving):
///  * residuals are clamped at zero once satisfied (a satisfied task
///    contributes nothing useful to the Equation 4 denominator);
///  * a selected bin is filled only with still-unsatisfied tasks; the
///    paper would pad it with satisfied ones, which changes neither cost
///    nor feasibility.
class GreedySolver final : public Solver {
 public:
  enum class Strategy { kFast, kNaive };

  explicit GreedySolver(Strategy strategy = Strategy::kFast,
                        const SolverOptions& options = {})
      : strategy_(strategy), options_(options) {}

  std::string name() const override { return "Greedy"; }

  Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                  const BinProfile& profile) override;

 private:
  Strategy strategy_;
  SolverOptions options_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_GREEDY_SOLVER_H_
