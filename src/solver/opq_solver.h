// Copyright (c) the SLADE reproduction authors.
// The OPQ-Based homogeneous solver (paper Algorithm 3, Theorem 2).

#ifndef SLADE_SOLVER_OPQ_SOLVER_H_
#define SLADE_SOLVER_OPQ_SOLVER_H_

#include "solver/opq_builder.h"
#include "solver/solver.h"

namespace slade {

class ColumnarPlan;

/// \brief Assigns the atomic tasks in `ids` using `queue` (Algorithm 3's
/// main loop), appending the posted bins to `plan`.
///
/// Shared between OpqSolver (over all tasks) and OpqExtendedSolver (over
/// each threshold group). Faithful to the paper's pseudocode including the
/// Cost_prev comparison of lines 7-10: when covering the leftover tasks
/// with smaller-LCM combinations would cost more than padding one more
/// block of the previously used combination, the previous combination is
/// posted once more with partially filled bins.
///
/// Cost accounting note: for a padded block the paper charges the full
/// block cost `LCM * UC`; we post (and charge) only the bins that are
/// actually needed for the leftover tasks, which is never more expensive.
/// The returned plan's cost is therefore exactly `sum tau_l * c_l`
/// (Definition 3) for the bins it contains.
Status RunOpqAssignment(const OptimalPriorityQueue& queue,
                        const std::vector<TaskId>& ids,
                        const BinProfile& profile, DecompositionPlan* plan);

/// Columnar variant of RunOpqAssignment: identical placement sequence,
/// stamped into flat columns via the ColumnarPlan Expand* overloads.
Status RunOpqAssignment(const OptimalPriorityQueue& queue,
                        const std::vector<TaskId>& ids,
                        const BinProfile& profile, ColumnarPlan* plan);

/// \brief OPQ-Based approximation solver for the homogeneous SLADE problem
/// (Algorithm 3): log(n)-approximate (Theorem 2), and exactly optimal when
/// n is a multiple of the front element's LCM (Corollary 1).
///
/// Rejects heterogeneous input with InvalidArgument -- use
/// OpqExtendedSolver (Algorithm 5) there.
class OpqSolver final : public Solver {
 public:
  explicit OpqSolver(const SolverOptions& options = {}) : options_(options) {}

  std::string name() const override { return "OPQ-Based"; }

  Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                  const BinProfile& profile) override;

 private:
  SolverOptions options_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_OPQ_SOLVER_H_
