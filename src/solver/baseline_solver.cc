#include "solver/baseline_solver.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "common/thread_pool.h"
#include "solver/cip.h"

namespace slade {

namespace {

// Generates the sampled combination-instance columns for one chunk of
// `chunk` tasks with demands `thetas` (chunk-local indexing).
std::vector<CipColumn> GenerateColumns(const BinProfile& profile,
                                       size_t chunk,
                                       uint32_t columns_per_cardinality,
                                       Xoshiro256& rng) {
  std::vector<CipColumn> columns;
  const uint32_t m = profile.max_cardinality();

  // All singletons: guarantees every row is coverable.
  for (uint32_t i = 0; i < chunk; ++i) {
    CipColumn col;
    col.cardinality = 1;
    col.rows = {i};
    col.cost = profile.bin(1).cost;
    col.weight = profile.bin(1).log_weight();
    columns.push_back(std::move(col));
  }

  std::vector<uint32_t> perm(chunk);
  std::iota(perm.begin(), perm.end(), 0);

  for (uint32_t l = 2; l <= m; ++l) {
    const TaskBin& bin = profile.bin(l);
    const size_t take = std::min<size_t>(l, chunk);

    // Consecutive tiling: offsets 0, l, 2l, ...
    for (size_t start = 0; start < chunk; start += take) {
      CipColumn col;
      col.cardinality = l;
      const size_t end = std::min(start + take, chunk);
      for (size_t i = start; i < end; ++i) {
        col.rows.push_back(static_cast<uint32_t>(i));
      }
      col.cost = bin.cost;
      col.weight = bin.log_weight();
      columns.push_back(std::move(col));
    }

    // Random subsets (partial Fisher-Yates per column).
    for (uint32_t s = 0; s < columns_per_cardinality; ++s) {
      for (size_t i = 0; i < take; ++i) {
        const size_t j =
            i + static_cast<size_t>(rng.NextBounded(chunk - i));
        std::swap(perm[i], perm[j]);
      }
      CipColumn col;
      col.cardinality = l;
      col.rows.assign(perm.begin(), perm.begin() + take);
      std::sort(col.rows.begin(), col.rows.end());
      col.cost = bin.cost;
      col.weight = bin.log_weight();
      columns.push_back(std::move(col));
    }
  }
  return columns;
}

// Emits the integer CIP solution of one chunk into the plan, mapping
// chunk-local rows through `global_ids` starting at `offset`.
void EmitChunkPlan(const CipInstance& inst, const std::vector<uint64_t>& y,
                   const std::vector<TaskId>& global_ids, size_t offset,
                   DecompositionPlan* plan) {
  for (size_t j = 0; j < inst.columns.size(); ++j) {
    if (y[j] == 0) continue;
    const CipColumn& col = inst.columns[j];
    std::vector<TaskId> tasks;
    tasks.reserve(col.rows.size());
    for (uint32_t row : col.rows) tasks.push_back(global_ids[offset + row]);
    plan->Add(col.cardinality, static_cast<uint32_t>(y[j]),
              std::move(tasks));
  }
}

}  // namespace

Result<DecompositionPlan> BaselineSolver::Solve(const CrowdsourcingTask& task,
                                                const BinProfile& profile) {
  const size_t n = task.size();
  const size_t chunk_size = std::max<size_t>(
      std::min<size_t>(options_.baseline_chunk_size, n), 1);

  std::vector<TaskId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);

  // For homogeneous thresholds every full chunk's CIP is identical up to
  // task relabeling (modulo column sampling), so the caller may opt into
  // solving once and replicating.
  const bool replicate =
      options_.baseline_reuse_homogeneous_chunks && task.is_homogeneous();

  struct ChunkSpec {
    size_t offset = 0;
    size_t size = 0;
  };
  std::vector<ChunkSpec> chunks;
  for (size_t offset = 0; offset < n; offset += chunk_size) {
    chunks.push_back({offset, std::min(chunk_size, n - offset)});
  }

  // Solves chunk `c` into its own plan slot. Chunk seeds depend only on
  // the chunk index, so the outcome is schedule-independent.
  std::vector<DecompositionPlan> chunk_plans(chunks.size());
  std::vector<Status> chunk_status(chunks.size());
  auto solve_chunk = [&](size_t c) {
    const auto [offset, chunk] = chunks[c];
    Xoshiro256 rng(options_.seed ^ (0x9E3779B97F4A7C15ULL * (c + 1)));
    CipInstance inst;
    inst.demand.reserve(chunk);
    for (size_t i = 0; i < chunk; ++i) {
      inst.demand.push_back(task.theta(ids[offset + i]));
    }
    inst.columns = GenerateColumns(
        profile, chunk, options_.baseline_columns_per_cardinality, rng);

    CipSolveOptions cip_options;
    cip_options.seed = options_.seed + c;
    cip_options.rounding_rounds = options_.baseline_rounding_rounds;
    auto solution = SolveCip(inst, cip_options);
    if (!solution.ok()) {
      chunk_status[c] = solution.status();
      return;
    }
    EmitChunkPlan(inst, solution->y, ids, offset, &chunk_plans[c]);
  };

  DecompositionPlan plan;
  if (replicate) {
    // Serial path: solve the first chunk of each distinct size, replay it
    // for equally-sized later chunks (relabeling the tasks).
    CipInstance cached_instance;
    std::vector<uint64_t> cached_y;
    bool have_cached = false;
    for (size_t c = 0; c < chunks.size(); ++c) {
      const auto [offset, chunk] = chunks[c];
      if (have_cached && chunk == cached_instance.demand.size()) {
        EmitChunkPlan(cached_instance, cached_y, ids, offset, &plan);
        continue;
      }
      Xoshiro256 rng(options_.seed ^ (0x9E3779B97F4A7C15ULL * (c + 1)));
      CipInstance inst;
      inst.demand.reserve(chunk);
      for (size_t i = 0; i < chunk; ++i) {
        inst.demand.push_back(task.theta(ids[offset + i]));
      }
      inst.columns = GenerateColumns(
          profile, chunk, options_.baseline_columns_per_cardinality, rng);
      CipSolveOptions cip_options;
      cip_options.seed = options_.seed + c;
      cip_options.rounding_rounds = options_.baseline_rounding_rounds;
      SLADE_ASSIGN_OR_RETURN(CipSolution solution,
                             SolveCip(inst, cip_options));
      EmitChunkPlan(inst, solution.y, ids, offset, &plan);
      cached_instance = std::move(inst);
      cached_y = std::move(solution.y);
      have_cached = true;
    }
    return plan;
  }

  if (options_.baseline_threads > 1 && chunks.size() > 1) {
    ThreadPool pool(options_.baseline_threads);
    ParallelFor(&pool, chunks.size(), solve_chunk);
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) solve_chunk(c);
  }
  size_t total_placements = plan.placements().size();
  for (const DecompositionPlan& chunk_plan : chunk_plans) {
    total_placements += chunk_plan.placements().size();
  }
  plan.Reserve(total_placements);
  for (size_t c = 0; c < chunks.size(); ++c) {
    SLADE_RETURN_NOT_OK(chunk_status[c]);
    plan.Append(std::move(chunk_plans[c]));
  }
  return plan;
}

}  // namespace slade
