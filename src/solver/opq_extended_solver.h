// Copyright (c) the SLADE reproduction authors.
// The OPQ-Extended heterogeneous solver (paper Algorithm 5, Theorem 3).

#ifndef SLADE_SOLVER_OPQ_EXTENDED_SOLVER_H_
#define SLADE_SOLVER_OPQ_EXTENDED_SOLVER_H_

#include "solver/solver.h"

namespace slade {

/// \brief OPQ-Extended: partitions atomic tasks into power-of-two
/// log-threshold groups (Algorithm 4), then runs the Algorithm 3
/// assignment per group with that group's optimal priority queue, and
/// merges the per-group plans. Approximation ratio
/// `2 * ceil(log(theta_max/theta_min)) * log n` (Theorem 3).
///
/// On homogeneous input the partition collapses to a single group built at
/// exactly the common threshold, so OPQ-Extended degenerates to OPQ-Based.
class OpqExtendedSolver final : public Solver {
 public:
  explicit OpqExtendedSolver(const SolverOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "OPQ-Extended"; }

  Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                  const BinProfile& profile) override;

 private:
  SolverOptions options_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_OPQ_EXTENDED_SOLVER_H_
