// Copyright (c) the SLADE reproduction authors.
// A dense two-phase primal simplex solver for covering LPs.
//
// The Section 4.3 baseline reduces SLADE to covering integer programming
// (CIP) and solves it "via existing methods [Vazirani]": LP relaxation plus
// randomized rounding. The environment is offline, so the LP solver is
// implemented here from scratch. Problem sizes are small (one CIP chunk at
// a time, tens of rows and a few hundred columns), so a textbook dense
// tableau with Bland's anti-cycling rule is entirely adequate.

#ifndef SLADE_SOLVER_SIMPLEX_H_
#define SLADE_SOLVER_SIMPLEX_H_

#include <vector>

#include "common/result.h"

namespace slade {

/// \brief A linear program `min c^T x  s.t.  A x >= b,  x >= 0` with
/// `b >= 0` (every SLADE covering demand `theta_i` is positive).
struct LpProblem {
  /// Row-major constraint matrix, `a[i][j]`.
  std::vector<std::vector<double>> a;
  /// Right-hand side, one entry per row; must be >= 0.
  std::vector<double> b;
  /// Objective coefficients, one per column.
  std::vector<double> c;
};

/// \brief Solution of an LpProblem.
struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
  /// True iff phase 2 reached proven optimality. When false, `x` is still
  /// primal feasible (the simplex maintains feasibility on every pivot) but
  /// possibly suboptimal: the iteration budget ran out on a heavily
  /// degenerate instance. Callers doing rounding/repair can proceed.
  bool converged = true;
};

/// \brief Solves the covering LP with two-phase primal simplex.
///
/// Returns:
///  * InvalidArgument for malformed/negative-rhs input;
///  * Infeasible if no x >= 0 satisfies A x >= b (cannot happen for CIP
///    instances whose columns cover every row, but callers may construct
///    arbitrary LPs);
///  * ResourceExhausted if `max_iterations` pivots were not enough.
Result<LpSolution> SolveCoveringLp(const LpProblem& problem,
                                   int max_iterations = 20000);

}  // namespace slade

#endif  // SLADE_SOLVER_SIMPLEX_H_
