#include "solver/relaxed_dp_solver.h"

#include <algorithm>
#include <limits>

namespace slade {

Result<DecompositionPlan> RelaxedDpSolver::Solve(const CrowdsourcingTask& task,
                                                 const BinProfile& profile) {
  const double t_max = task.max_threshold();
  for (uint32_t l = 1; l <= profile.max_cardinality(); ++l) {
    if (profile.bin(l).confidence < t_max) {
      return Status::InvalidArgument(
          "relaxed variant requires r_l >= t_max for every bin; bin " +
          std::to_string(l) + " has r=" +
          std::to_string(profile.bin(l).confidence) + " < t_max=" +
          std::to_string(t_max));
    }
  }

  const size_t n = task.size();
  const uint32_t m = profile.max_cardinality();

  // DP over the number of already-covered tasks; choice[j] records the
  // cardinality of the last bin in an optimal cover of j tasks.
  std::vector<double> dp(n + 1, std::numeric_limits<double>::infinity());
  std::vector<uint32_t> choice(n + 1, 0);
  dp[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    for (uint32_t l = 1; l <= m; ++l) {
      const size_t take = std::min<size_t>(l, j);
      const double cand = dp[j - take] + profile.bin(l).cost;
      if (cand < dp[j]) {
        dp[j] = cand;
        choice[j] = l;
      }
    }
  }

  // Reconstruct: walk back through the choices, assigning consecutive ids.
  DecompositionPlan plan;
  size_t j = n;
  while (j > 0) {
    const uint32_t l = choice[j];
    const size_t take = std::min<size_t>(l, j);
    std::vector<TaskId> ids;
    ids.reserve(take);
    for (size_t k = j - take; k < j; ++k) {
      ids.push_back(static_cast<TaskId>(k));
    }
    plan.Add(l, 1, std::move(ids));
    j -= take;
  }
  return plan;
}

}  // namespace slade
