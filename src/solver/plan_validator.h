// Copyright (c) the SLADE reproduction authors.
// Feasibility checking of decomposition plans against the SLADE constraints.

#ifndef SLADE_SOLVER_PLAN_VALIDATOR_H_
#define SLADE_SOLVER_PLAN_VALIDATOR_H_

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/status.h"
#include "solver/plan.h"

namespace slade {

class ColumnarPlan;

/// \brief Structural + reliability validation report.
struct ValidationReport {
  /// Per Definition 3: Rel(a_i, B(a_i)) >= t_i for all i.
  bool feasible = false;
  /// Worst margin `min_i (R(a_i) - theta_i)` in the log domain; negative
  /// iff infeasible.
  double worst_log_margin = 0.0;
  /// Index of the atomic task attaining the worst margin.
  TaskId worst_task = 0;
  /// Total plan cost recomputed from the profile.
  double total_cost = 0.0;
};

/// \brief Validates `plan` against `task` under `profile`.
///
/// Checks, in order:
///  1. every placement's cardinality exists in the profile;
///  2. every placement holds <= cardinality distinct tasks, all in range;
///  3. every atomic task reaches its reliability threshold (Equation 1/2).
///
/// Structural violations (1-2) return an error Status; an infeasible but
/// well-formed plan returns OK with `feasible == false` so callers can
/// report the margin.
Result<ValidationReport> ValidatePlan(const DecompositionPlan& plan,
                                      const CrowdsourcingTask& task,
                                      const BinProfile& profile);

/// Columnar variant: one fused sweep over the flat columns (bounds, dup
/// and reliability accumulation in a single pass, per-cardinality weight
/// lookup table, epoch-stamped dup scratch). Same checks, same report.
Result<ValidationReport> ValidatePlan(const ColumnarPlan& plan,
                                      const CrowdsourcingTask& task,
                                      const BinProfile& profile);

}  // namespace slade

#endif  // SLADE_SOLVER_PLAN_VALIDATOR_H_
