// Copyright (c) the SLADE reproduction authors.
// The Section 4.3 baseline: SLADE -> CIP reduction + LP rounding.

#ifndef SLADE_SOLVER_BASELINE_SOLVER_H_
#define SLADE_SOLVER_BASELINE_SOLVER_H_

#include "solver/solver.h"

namespace slade {

/// \brief Baseline solver via the covering-integer-programming reduction
/// (Section 4.3).
///
/// The full reduction enumerates `sum_l C(n, l)` combination instances,
/// which the paper itself declares impractical -- "we only generate part of
/// the combination instances for performance evaluation". We follow the
/// same regime:
///
///  * the task set is partitioned into chunks of `baseline_chunk_size`
///    atomic tasks and one CIP is built per chunk (a plan for a chunk is
///    always a valid sub-plan of the whole instance because atomic tasks
///    are independent);
///  * per chunk, the generated columns are: every singleton (guaranteeing
///    feasibility), consecutive tilings at each cardinality, and
///    `baseline_columns_per_cardinality` random subsets per cardinality;
///  * each chunk CIP is solved by LP relaxation (our simplex) plus
///    randomized rounding with greedy repair (cip.h).
///
/// On homogeneous input every full chunk has an identical CIP, so it is
/// solved once and the integer solution is replicated across chunks (same
/// plan, a fraction of the work). Heterogeneous chunks are solved
/// individually.
class BaselineSolver final : public Solver {
 public:
  explicit BaselineSolver(const SolverOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "Baseline"; }

  Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                  const BinProfile& profile) override;

 private:
  SolverOptions options_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_BASELINE_SOLVER_H_
