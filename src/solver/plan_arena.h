// Copyright (c) the SLADE reproduction authors.
// Arena-backed columnar decomposition plans.
//
// PR 4 made OPQ *construction* allocation-free; this file does the same for
// plan *materialization* and everything downstream of it. The classic
// DecompositionPlan is an array-of-structs: every BinPlacement owns its own
// heap-allocated std::vector<TaskId>, so a million-placement merged plan
// costs a million allocations to build, a million pointer chases to walk,
// and a million frees to drop. ColumnarPlan is the structure-of-arrays
// alternative (Arrow's columnar buffer + memory-pool design is the model):
//
//   task_ids[]    -- every placement's member ids, back to back
//   ends[]        -- placement i's ids live in
//                    [ends[i-1], ends[i])  (ends[-1] == 0)
//   cardinality[] -- bin cardinality l per placement
//   copies[]      -- posted instances per placement
//
// All four columns live in one PlanArena: a chunked bump allocator that is
//   * reserve-friendly -- Combination::ExpandBlocksInto sizes a whole
//     assignment up front, so the steady state is one chunk and zero
//     per-placement allocations;
//   * reset-reusable -- Clear() rewinds the arena without freeing, so a
//     serving loop stamping plans round after round allocates only on the
//     first round;
//   * byte-charged -- an optional ResourceGovernor is charged per chunk,
//     making plan-materialization memory visible in the same ledger that
//     already bounds the OPQ cache and the admission queue.
//
// Consumers (validation, cost accounting, splitting, merge, dispatch) walk
// the flat columns with dense loops instead of node-at-a-time traversal;
// see plan_validator.h, plan_splitter.h, decomposition_engine.h.

#ifndef SLADE_SOLVER_PLAN_ARENA_H_
#define SLADE_SOLVER_PLAN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "solver/plan.h"

namespace slade {

class ResourceGovernor;

/// \brief Chunked bump allocator backing ColumnarPlan columns.
///
/// Allocate() never frees; Reset() rewinds every chunk for reuse without
/// returning memory (or governor charges). Chunks grow geometrically from
/// `min_chunk_bytes` up to `max_chunk_bytes`, so allocation count is
/// O(log bytes) even without a Reserve. Not thread-safe: one arena belongs
/// to one plan (engine shards each stamp their own).
///
/// Chunks outlive any single arena: a dying arena returns its chunks to a
/// process-wide pool, and AddChunk satisfies new demand
/// from that pool before touching the system allocator. Large chunks are
/// the ones glibc serves by mmap, so without pooling every solve batch
/// would re-fault and re-zero its plan memory from the kernel -- with it,
/// a serving loop reaches a steady state where plan materialization does
/// no system allocation at all. The pool holds at most kMaxPooledBytes
/// (drop-on-overflow, LIFO reuse); PlanArenaPoolStats()/TrimPlanArenaPool()
/// expose it for tests and memory-pressure handling.
class PlanArena {
 public:
  static constexpr size_t kMinChunkBytes = 4096;
  static constexpr size_t kMaxChunkBytes = size_t{1} << 22;  // 4 MiB
  /// Cap on idle bytes retained by the process-wide chunk pool.
  static constexpr size_t kMaxPooledBytes = size_t{1} << 27;  // 128 MiB

  /// `governor` (may be null) is charged `capacity` bytes / 1 unit per
  /// chunk and released when the arena dies or the governor is detached.
  /// It must outlive the arena (or be detached first).
  explicit PlanArena(ResourceGovernor* governor = nullptr);
  ~PlanArena();

  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  /// Never fails short of std::bad_alloc.
  void* Allocate(size_t bytes, size_t alignment);

  /// Rewinds every chunk for reuse. Existing allocations become invalid;
  /// memory and governor charges are retained, so the next fill of the
  /// same shape allocates nothing.
  void Reset();

  /// Releases the governor charges and forgets the governor (used when an
  /// arena-backed plan escapes the governor's owner, e.g. a BatchReport
  /// returned to the caller). Peak counters on the governor retain the
  /// high-water mark.
  void DetachGovernor();

  size_t num_chunks() const { return chunks_.size(); }
  uint64_t reserved_bytes() const { return reserved_bytes_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  /// Makes chunks_[active_] (possibly a new chunk) able to hold `bytes`.
  void AddChunk(size_t min_bytes);

  /// Returns every chunk to the process-wide pool and releases the
  /// governor charges (the destructor's body).
  void ReleaseChunks();

  ResourceGovernor* governor_;
  std::vector<Chunk> chunks_;
  size_t active_ = 0;  ///< chunks_[active_] takes the next allocation
  uint64_t reserved_bytes_ = 0;
};

/// Observability for the process-wide chunk pool (see PlanArena).
struct PlanArenaPoolCounters {
  uint64_t pooled_bytes = 0;   ///< idle bytes currently held
  uint64_t pooled_chunks = 0;  ///< idle chunks currently held
  uint64_t reuse_hits = 0;     ///< AddChunk demands served from the pool
  uint64_t reuse_misses = 0;   ///< AddChunk demands that hit operator new
};
PlanArenaPoolCounters PlanArenaPoolStats();

/// Frees every idle pooled chunk (memory-pressure hook; counters for
/// lifetime hits/misses are retained).
void TrimPlanArenaPool();

/// \brief One growable typed column inside a PlanArena.
///
/// A grow moves the column to a fresh arena block (the old block is wasted
/// until Reset -- reservation makes growth rare); clear() keeps capacity.
template <typename T>
class ArenaColumn {
 public:
  const T* data() const { return data_; }
  T* data() { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& operator[](size_t i) { return data_[i]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  /// Grows capacity to at least `n`. A relocation doubles the current
  /// capacity at minimum, so a caller that conservatively Reserves exact
  /// totals before every append (e.g. per ExpandBlocksInto call, or
  /// AppendPlan in a merge loop) still amortizes to O(1) copies per
  /// element instead of relocating the whole column each time.
  void Reserve(PlanArena& arena, size_t n) {
    if (n <= capacity_) return;
    const size_t target = n > capacity_ * 2 ? n : capacity_ * 2;
    T* grown =
        static_cast<T*>(arena.Allocate(target * sizeof(T), alignof(T)));
    if (size_ != 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = target;
  }

  /// Appends `n` default-stamped slots and returns the write pointer.
  T* AppendN(PlanArena& arena, size_t n) {
    if (size_ + n > capacity_) Grow(arena, size_ + n);
    T* out = data_ + size_;
    size_ += n;
    return out;
  }

  void PushBack(PlanArena& arena, T value) {
    if (size_ == capacity_) Grow(arena, size_ + 1);
    data_[size_++] = value;
  }

  /// Forgets the storage entirely (after the owning arena was Reset).
  void Detach() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

 private:
  void Grow(PlanArena& arena, size_t needed) {
    size_t next = capacity_ == 0 ? size_t{64} : capacity_ * 2;
    if (next < needed) next = needed;
    Reserve(arena, next);
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// \brief Structure-of-arrays decomposition plan (see the file comment).
///
/// Semantically interchangeable with DecompositionPlan -- FromPlan/ToPlan
/// convert both ways, placement for placement -- but built and consumed as
/// flat columns. The engine hot path (solve -> merge -> split -> validate
/// -> dispatch) runs entirely on this representation; the AoS
/// DecompositionPlan remains the adapter for solvers and cold paths.
class ColumnarPlan {
 public:
  /// `governor` (may be null) is charged per arena chunk; it must outlive
  /// the plan unless DetachGovernor() is called first.
  explicit ColumnarPlan(ResourceGovernor* governor = nullptr)
      : arena_(std::make_unique<PlanArena>(governor)) {}

  // Deep copy (fresh arena, no governor). Hot paths move instead.
  ColumnarPlan(const ColumnarPlan& other);
  ColumnarPlan& operator=(const ColumnarPlan& other);
  ColumnarPlan(ColumnarPlan&&) noexcept = default;
  ColumnarPlan& operator=(ColumnarPlan&&) noexcept = default;

  /// \brief Zero-copy read view of one placement.
  struct PlacementView {
    uint32_t cardinality = 0;
    uint32_t copies = 0;
    const TaskId* tasks = nullptr;
    uint32_t num_tasks = 0;
  };

  size_t num_placements() const { return cardinality_.size(); }
  bool empty() const { return cardinality_.size() == 0; }
  size_t num_task_ids() const { return task_ids_.size(); }

  size_t placement_begin(size_t i) const { return i == 0 ? 0 : ends_[i - 1]; }
  size_t placement_end(size_t i) const { return ends_[i]; }

  PlacementView view(size_t i) const {
    const size_t begin = placement_begin(i);
    return PlacementView{cardinality_[i], copies_[i], task_ids_.data() + begin,
                         static_cast<uint32_t>(ends_[i] - begin)};
  }

  // Raw columns for flat passes (sizes: num_placements(), except task_ids
  // with num_task_ids()). ends()[i] is the exclusive task-id offset of
  // placement i; placement 0 begins at 0.
  const TaskId* task_ids() const { return task_ids_.data(); }
  const uint32_t* ends() const { return ends_.data(); }
  const uint32_t* cardinalities() const { return cardinality_.data(); }
  const uint32_t* copies() const { return copies_.data(); }

  /// Pre-sizes the columns; the workhorse of bulk stamping. Growth still
  /// works without it, at O(log) extra arena chunks.
  void Reserve(size_t placements, size_t ids);

  /// Appends one placement: `copies` instances of an l=`cardinality` bin
  /// holding the `n` ids at `ids`. No-op when copies == 0 (mirroring
  /// DecompositionPlan::Add).
  void Add(uint32_t cardinality, uint32_t copies, const TaskId* ids,
           size_t n);
  void Add(uint32_t cardinality, uint32_t copies,
           const std::vector<TaskId>& ids) {
    Add(cardinality, copies, ids.data(), ids.size());
  }

  /// Column-concatenates `other` onto this plan (the shard merge): three
  /// memcpys plus an offset-rebase of the ends column, no per-placement
  /// work.
  void AppendColumns(const ColumnarPlan& other);

  /// Column-concatenates placements [first, first + count) of `other`,
  /// shifting every task id by `id_delta` (the splitter's contiguous-run
  /// fast path).
  void AppendRange(const ColumnarPlan& other, size_t first, size_t count,
                   int64_t id_delta);

  /// Appends an AoS plan, shifting ids by `id_offset` (adapter; reserves
  /// once up front).
  void AppendPlan(const DecompositionPlan& plan, TaskId id_offset = 0);

  /// Appends this plan onto an AoS plan, shifting ids by `id_offset`
  /// (adapter for legacy consumers; reserves `out` once up front).
  void AppendToPlan(DecompositionPlan* out, TaskId id_offset = 0) const;

  DecompositionPlan ToPlan() const;
  static ColumnarPlan FromPlan(const DecompositionPlan& plan,
                               ResourceGovernor* governor = nullptr);

  /// Empties the plan and rewinds the arena; the next fill of similar
  /// shape allocates nothing.
  void Clear();

  /// See PlanArena::DetachGovernor.
  void DetachGovernor() { arena_->DetachGovernor(); }

  // --- flat accounting passes (single sweeps over the columns, bin
  // --- lookups through per-cardinality tables) ---

  /// Total incentive cost `sum tau_l * c_l` under `profile`.
  double TotalCost(const BinProfile& profile) const;

  /// Bin-usage counts tau_l indexed by cardinality (index 0 unused).
  std::vector<uint64_t> BinCounts(uint32_t max_cardinality) const;

  /// Total number of posted bin instances (sum of copies).
  uint64_t TotalBinInstances() const;

  /// Per-task achieved reliability (Equation 1) under `profile`; tasks
  /// never placed get 0.
  std::vector<double> PerTaskReliability(const BinProfile& profile,
                                         size_t n) const;

  const PlanArena& arena() const { return *arena_; }

 private:
  std::unique_ptr<PlanArena> arena_;
  ArenaColumn<TaskId> task_ids_;
  ArenaColumn<uint32_t> ends_;
  ArenaColumn<uint32_t> cardinality_;
  ArenaColumn<uint32_t> copies_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_PLAN_ARENA_H_
