#include "solver/opq_extended_solver.h"

#include "solver/opq_set_builder.h"
#include "solver/opq_solver.h"

namespace slade {

Result<DecompositionPlan> OpqExtendedSolver::Solve(
    const CrowdsourcingTask& task, const BinProfile& profile) {
  const double theta_min = LogReduction(task.min_threshold());
  const double theta_max = LogReduction(task.max_threshold());

  OpqBuildOptions build_options;
  build_options.node_budget = options_.opq_node_budget;
  SLADE_ASSIGN_OR_RETURN(
      OpqSet set, BuildOpqSet(profile, theta_min, theta_max, build_options));

  // Algorithm 5 lines 5-7: route each atomic task to the interval whose
  // upper bound covers its log threshold.
  std::vector<std::vector<TaskId>> groups(set.size());
  for (size_t i = 0; i < task.size(); ++i) {
    SLADE_ASSIGN_OR_RETURN(
        size_t g, set.GroupOf(task.theta(static_cast<TaskId>(i))));
    groups[g].push_back(static_cast<TaskId>(i));
  }

  // Lines 8-16: per-group Algorithm 3 runs, merged into one plan.
  DecompositionPlan plan;
  for (size_t g = 0; g < set.size(); ++g) {
    if (groups[g].empty()) continue;
    SLADE_RETURN_NOT_OK(
        RunOpqAssignment(set.queue(g), groups[g], profile, &plan));
  }
  return plan;
}

}  // namespace slade
