// Copyright (c) the SLADE reproduction authors.
// Exact DP for the relaxed SLADE variant (paper Section 4.2).

#ifndef SLADE_SOLVER_RELAXED_DP_SOLVER_H_
#define SLADE_SOLVER_RELAXED_DP_SOLVER_H_

#include "solver/solver.h"

namespace slade {

/// \brief Exact polynomial-time solver for the relaxed SLADE variant where
/// every bin confidence already meets the largest threshold
/// (`r_l >= t_max` for all l, Section 4.2).
///
/// Under the relaxation each atomic task is satisfied by *any single* bin
/// containing it, so the problem collapses to covering n tasks by bins of
/// capacities 1..m at minimum cost -- the ROD CUTTING recurrence
/// `DP[j] = min_l DP[j - min(l, j)] + c_l`, solved in O(n m) time.
///
/// Returns InvalidArgument if the precondition does not hold (the relaxed
/// DP would silently under-provision reliability otherwise).
class RelaxedDpSolver final : public Solver {
 public:
  explicit RelaxedDpSolver(const SolverOptions& options = {}) {
    (void)options;
  }

  std::string name() const override { return "Relaxed-DP"; }

  Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                  const BinProfile& profile) override;
};

}  // namespace slade

#endif  // SLADE_SOLVER_RELAXED_DP_SOLVER_H_
