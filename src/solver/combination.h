// Copyright (c) the SLADE reproduction authors.
// Combinations of task bins and their LCM / unit-cost arithmetic
// (paper Section 5.2.1, Example 6, Figure 5).

#ifndef SLADE_SOLVER_COMBINATION_H_
#define SLADE_SOLVER_COMBINATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/plan.h"

namespace slade {

class ColumnarPlan;

/// \brief A combination of task bins
/// `Comb = {n_{k1} x b_{k1}, ..., n_{kl} x b_{kl}}`: every atomic task
/// routed through the combination is placed in `n_k` bins of cardinality
/// `k` for each part.
///
/// Derived quantities (Section 5.2.1):
///  * `lcm()` -- the least common multiple of the part cardinalities: the
///    number of atomic tasks that tile perfectly into the combination
///    (Figure 5);
///  * `unit_cost()` -- `UC = sum n_k * c_k / k`, the averaged incentive
///    cost per atomic task;
///  * `log_weight()` -- `sum n_k * w_k`, the per-task reliability
///    contribution in the log domain.
class Combination {
 public:
  /// (cardinality, count) parts; sorted by cardinality, counts >= 1.
  using Parts = std::vector<std::pair<uint32_t, uint32_t>>;

  /// Validates parts against `profile` and precomputes LCM/UC/weight.
  static Result<Combination> Create(Parts parts, const BinProfile& profile);

  const Parts& parts() const { return parts_; }
  uint64_t lcm() const { return lcm_; }
  double unit_cost() const { return unit_cost_; }
  double log_weight() const { return log_weight_; }

  /// Cost of assigning one full block of `lcm()` atomic tasks.
  double block_cost() const {
    return unit_cost_ * static_cast<double>(lcm_);
  }

  /// \brief Emits the bins that route `ids` through this combination.
  ///
  /// When `ids.size() == lcm()` this is the perfect tiling of Figure 5:
  /// for each part (k, n_k), the ids are split into lcm/k consecutive
  /// groups of k, and each group is posted n_k times. When fewer ids are
  /// given (the Algorithm 3 padding path), the last group of each
  /// cardinality is partially filled; every task still lands in exactly
  /// n_k bins of each part, so the reliability guarantee is preserved.
  ///
  /// Returns the actual incentive cost of the emitted bins (equal to
  /// block_cost() for a full block, less for a padded one).
  double ExpandInto(const std::vector<TaskId>& ids, size_t offset,
                    size_t count, const BinProfile& profile,
                    DecompositionPlan* plan) const;

  /// Columnar variant: groups are stamped straight into the plan's flat
  /// columns (one memcpy per group, no per-placement vector).
  double ExpandInto(const std::vector<TaskId>& ids, size_t offset,
                    size_t count, const BinProfile& profile,
                    ColumnarPlan* plan) const;

  /// \brief Emits `blocks` consecutive perfect blocks of `lcm()` tasks
  /// each, starting at `ids[offset]` -- the Algorithm 3 lines 12-15 bulk
  /// path. Equivalent to calling `ExpandInto(ids, offset + b * lcm(),
  /// lcm(), ...)` for b = 0..blocks-1 (placements appended in the same
  /// order), but materializes the block's placement template (one
  /// (cardinality, copies, begin) group list) once, bulk-reserves the
  /// plan's placement storage for all blocks, and stamps the template with
  /// id offsets instead of re-deriving group bounds per block.
  ///
  /// Returns the total incentive cost of the emitted bins
  /// (`blocks * block_cost()` up to rounding of the per-bin sum).
  double ExpandBlocksInto(const std::vector<TaskId>& ids, size_t offset,
                          uint64_t blocks, const BinProfile& profile,
                          DecompositionPlan* plan) const;

  /// Columnar variant: reserves every column once (placements AND task-id
  /// slots for all blocks), then range-fills the template per block --
  /// zero allocations in the steady state of a reset-reused arena.
  double ExpandBlocksInto(const std::vector<TaskId>& ids, size_t offset,
                          uint64_t blocks, const BinProfile& profile,
                          ColumnarPlan* plan) const;

  /// "{3 x b1, 2 x b2, 1 x b3} LCM=6 UC=0.56".
  std::string ToString() const;

 private:
  Combination(Parts parts, uint64_t lcm, double unit_cost, double log_weight)
      : parts_(std::move(parts)),
        lcm_(lcm),
        unit_cost_(unit_cost),
        log_weight_(log_weight) {}

  Parts parts_;
  uint64_t lcm_;
  double unit_cost_;
  double log_weight_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_COMBINATION_H_
