#include "solver/opq_solver.h"

#include <numeric>

#include "common/logging.h"
#include "solver/plan_arena.h"

namespace slade {
namespace {

// Algorithm 3's main loop, shared between the AoS and columnar plan
// representations (the Expand* overloads pick the stamping strategy).
template <typename PlanT>
Status RunOpqAssignmentImpl(const OptimalPriorityQueue& queue,
                            const std::vector<TaskId>& ids,
                            const BinProfile& profile, PlanT* plan) {
  if (queue.size() == 0) {
    return Status::Internal("empty optimal priority queue");
  }
  uint64_t n = ids.size();
  size_t pos = 0;   // next unassigned index into `ids`
  size_t qi = 0;    // current front of the queue (elements sorted LCM desc)
  const Combination* prev = nullptr;
  double cost_prev = 0.0;

  while (n > 0) {
    // Lines 4-5: drop combinations needing more tasks than remain.
    while (qi < queue.size() && queue.element(qi).lcm() > n) ++qi;
    if (qi == queue.size()) {
      // Cannot happen: the queue always retains an LCM=1 element
      // (see BuildOpq). Guard anyway.
      return Status::Internal("OPQ exhausted with tasks remaining");
    }
    const Combination& e = queue.element(qi);
    const uint64_t k = n / e.lcm();

    if (prev != nullptr &&
        static_cast<double>(k) * e.block_cost() > cost_prev) {
      // Lines 8-10: finishing with the current (smaller-LCM) combination
      // would cost more than padding one more block of the previous one.
      const size_t take = static_cast<size_t>(n);  // n < prev->lcm() here
      prev->ExpandInto(ids, pos, take, profile, plan);
      pos += take;
      n = 0;
    } else {
      // Lines 12-15: k perfect blocks of the front combination, stamped
      // from one materialized placement template (see ExpandBlocksInto).
      e.ExpandBlocksInto(ids, pos, k, profile, plan);
      pos += static_cast<size_t>(k * e.lcm());
      n %= e.lcm();
      prev = &e;
      cost_prev = e.block_cost();
    }
  }
  return Status::OK();
}

}  // namespace

Status RunOpqAssignment(const OptimalPriorityQueue& queue,
                        const std::vector<TaskId>& ids,
                        const BinProfile& profile, DecompositionPlan* plan) {
  return RunOpqAssignmentImpl(queue, ids, profile, plan);
}

Status RunOpqAssignment(const OptimalPriorityQueue& queue,
                        const std::vector<TaskId>& ids,
                        const BinProfile& profile, ColumnarPlan* plan) {
  return RunOpqAssignmentImpl(queue, ids, profile, plan);
}

Result<DecompositionPlan> OpqSolver::Solve(const CrowdsourcingTask& task,
                                           const BinProfile& profile) {
  if (!task.is_homogeneous()) {
    return Status::InvalidArgument(
        "OPQ-Based handles the homogeneous SLADE problem only; "
        "use OPQ-Extended for heterogeneous thresholds");
  }
  OpqBuildOptions build_options;
  build_options.node_budget = options_.opq_node_budget;
  SLADE_ASSIGN_OR_RETURN(
      OptimalPriorityQueue queue,
      BuildOpq(profile, task.threshold(0), build_options));

  std::vector<TaskId> ids(task.size());
  std::iota(ids.begin(), ids.end(), 0);
  DecompositionPlan plan;
  SLADE_RETURN_NOT_OK(RunOpqAssignment(queue, ids, profile, &plan));
  return plan;
}

}  // namespace slade
