#include "solver/opq_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace slade {

namespace {

// Builder-internal element: a combination's counts plus cached aggregates.
// Both enumerators produce these; FinalizeOpq turns them into Combinations.
struct Cand {
  std::vector<uint32_t> counts;  // counts[l-1] = copies of b_l
  uint64_t lcm = 1;
  double unit_cost = 0.0;
  double log_weight = 0.0;
};

// Acceptance margin for the threshold check. Stricter than kRelEps so that
// plans built from accepted combinations still validate under kRelEps.
constexpr double kBuildEps = 1e-12;

// Frames preallocated for the iterative DFS. Realistic profiles need a
// stack no deeper than theta / min_log_weight (a dozen or two); the cap
// keeps an adversarial bound (tiny log-weights) from reserving gigabytes.
// Deeper paths grow the stack geometrically -- O(log depth) allocations per
// build, never per node.
constexpr size_t kMaxPreallocFrames = 4096;

// The reference enumerator: the original recursive Algorithm 2
// implementation, kept as the differential-test oracle. One heap-copied
// Cand per visited node, O(queue) dominance scans.
class ReferenceEnumerator {
 public:
  ReferenceEnumerator(const BinProfile& profile, double theta,
                      const OpqBuildOptions& options, OpqBuildStats* stats)
      : profile_(profile), theta_(theta), options_(options), stats_(stats) {}

  Status Run() {
    Cand root;
    root.counts.assign(profile_.size(), 0);
    Status status = Enumerate(1, root);
    if (stats_ != nullptr) *stats_ = counters_;
    return status;
  }

  std::vector<Cand> TakeQueue() { return std::move(queue_); }

 private:
  // True iff some already-found combination weakly dominates (lcm, uc).
  bool Dominated(uint64_t lcm, double uc) const {
    for (const Cand& e : queue_) {
      if (e.lcm <= lcm && e.unit_cost <= uc) return true;
    }
    return false;
  }

  // Inserts `cand`, evicting everything it dominates (Algorithm 2 line 10
  // plus the line 2 sweep, maintained incrementally).
  void Insert(Cand cand) {
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const Cand& e) {
                                  return e.lcm >= cand.lcm &&
                                         e.unit_cost >= cand.unit_cost;
                                }),
                 queue_.end());
    queue_.push_back(std::move(cand));
    ++counters_.insertions;
  }

  // Algorithm 2's Enumerate(p, q, S, B, t): extends `cand` with bins of
  // cardinality >= p (multisets enumerated once, in non-decreasing order).
  Status Enumerate(uint32_t p, Cand& cand) {
    const uint32_t m = profile_.max_cardinality();
    for (uint32_t k = p; k <= m; ++k) {
      if (++counters_.nodes_visited > options_.node_budget) {
        return Status::ResourceExhausted(
            "OPQ enumeration exceeded node budget of " +
            std::to_string(options_.node_budget));
      }
      const TaskBin& bin = profile_.bin(k);
      Cand next = cand;
      next.counts[k - 1] += 1;
      next.lcm = SaturatingLcm(cand.lcm, k);
      next.unit_cost =
          cand.unit_cost + bin.cost / static_cast<double>(k);
      next.log_weight = cand.log_weight + bin.log_weight();

      // Lemma 1 pruning: a dominated partial combination can never lead to
      // a Pareto-optimal completion (supersets only grow both LCM and UC).
      if (options_.enable_partial_pruning &&
          Dominated(next.lcm, next.unit_cost)) {
        ++counters_.nodes_pruned_dominated;
        continue;
      }

      if (next.log_weight >= theta_ - kBuildEps) {
        if (!Dominated(next.lcm, next.unit_cost)) {
          Insert(std::move(next));
        } else {
          ++counters_.nodes_pruned_dominated;
        }
        // No recursion: any superset is dominated by `next` itself.
      } else {
        SLADE_RETURN_NOT_OK(Enumerate(k, next));
      }
    }
    return Status::OK();
  }

  const BinProfile& profile_;
  const double theta_;
  const OpqBuildOptions& options_;
  OpqBuildStats* stats_;
  std::vector<Cand> queue_;
  OpqBuildStats counters_;
};

// The production enumerator: iterative DFS, one in-place count array, flat
// SoA profile arrays, binary-search dominance against a frontier kept
// sorted by LCM descending / unit cost ascending. Visits nodes in exactly
// the order of ReferenceEnumerator (k ascending per level, child before
// next sibling) and accumulates unit cost / log weight with the identical
// addition sequence, so the resulting queue -- and every counter -- is
// element-for-element identical.
class FastEnumerator {
 public:
  FastEnumerator(const BinProfile& profile, double theta,
                 const OpqBuildOptions& options, OpqBuildStats* stats)
      : profile_(profile), theta_(theta), options_(options), stats_(stats) {}

  Status Run() {
    const uint32_t m = profile_.max_cardinality();
    const double* cost_per_task = profile_.costs_per_task().data();
    const double* log_weights = profile_.log_weights().data();
    counts_.assign(m, 0);

    // gcd(a, k) == gcd(a mod k, k) and k <= m, so one modulo plus a small
    // table replaces the general 64-bit gcd in the LCM update. The table
    // holds values <= m in uint8_t, so it is only used for m <= 255
    // (realistic profiles are m <= 64); larger profiles fall back to the
    // shared SaturatingLcm, which both paths match exactly.
    const bool use_gcd_table = m <= 255;
    std::vector<uint8_t> gcd_table(
        use_gcd_table ? (m + 1) * (m + 1) : 0);
    for (uint32_t k = 1; use_gcd_table && k <= m; ++k) {
      for (uint32_t r = 0; r <= m; ++r) {
        gcd_table[k * (m + 1) + r] =
            static_cast<uint8_t>(r == 0 ? k : std::gcd(r, k));
      }
    }
    const uint8_t* gcd_rows = gcd_table.data();
    const auto fast_lcm = [gcd_rows, m,
                           use_gcd_table](uint64_t a, uint32_t k) -> uint64_t {
      if (!use_gcd_table) return SaturatingLcm(a, k);
      const uint64_t g =
          gcd_rows[k * (m + 1) + static_cast<uint32_t>(a % k)];
      const uint64_t a_over_g = a / g;
      if (a_over_g > kSaturatingLcmCap / k) return kSaturatingLcmCap;
      return a_over_g * k;
    };

    // The DFS only descends while log_weight < theta and each level adds
    // at least min_log_weight, which bounds the path length exactly.
    const double depth_bound =
        std::floor(theta_ / profile_.min_log_weight()) + 2.0;
    stack_.clear();
    stack_.reserve(static_cast<size_t>(std::min(
        depth_bound, static_cast<double>(kMaxPreallocFrames))));
    constexpr double kNoWitness = std::numeric_limits<double>::infinity();
    stack_.push_back(Frame{1, 0, 1, 0.0, 0.0, kNoWitness});

    // The node counter lives in a register for the hot loop and is synced
    // into counters_ on every exit path.
    uint64_t nodes = 0;
    const uint64_t node_budget = options_.node_budget;

    while (!stack_.empty()) {
      Frame& frame = stack_.back();
      if (frame.next_k > m) {
        // Every cardinality at this level tried: undo the push that
        // created the level and return to the parent frame.
        if (frame.added_k != 0) --counts_[frame.added_k - 1];
        stack_.pop_back();
        continue;
      }
      const uint32_t k = frame.next_k++;
      if (++nodes > node_budget) {
        counters_.nodes_visited = nodes;
        if (stats_ != nullptr) *stats_ = counters_;
        return Status::ResourceExhausted(
            "OPQ enumeration exceeded node budget of " +
            std::to_string(options_.node_budget));
      }
      const double unit_cost = frame.unit_cost + cost_per_task[k - 1];
      const double log_weight = frame.log_weight + log_weights[k - 1];
      const bool satisfied = log_weight >= theta_ - kBuildEps;

      // Witness shortcut: when this frame was pushed it cached the
      // cheapest frontier unit cost among elements with lcm' <= frame.lcm
      // (kNoWitness if none existed). Such an element also has
      // lcm' <= every child LCM, so any child at least as expensive is
      // dominated WITHOUT computing its LCM (no gcd) or searching the
      // frontier -- and dominated fringe children are the bulk of every
      // enumeration. A hit decides exactly what the full check below
      // would (the witness, or whatever later evicted it, is in the
      // frontier both builders share); misses -- a stale cache or a
      // dominator whose LCM lies strictly between frame.lcm and the
      // child's -- simply fall through to the exact check. Sub-threshold
      // nodes with pruning disabled must still descend, so the shortcut
      // is gated exactly like the checks below.
      if ((options_.enable_partial_pruning || satisfied) &&
          frame.witness_uc <= unit_cost) {
        ++counters_.nodes_pruned_dominated;
        continue;
      }
      const uint64_t lcm = fast_lcm(frame.lcm, k);
      const size_t first = LowerBoundLcmLe(lcm);
      const bool dominated =
          first < frontier_.size() && frontier_[first].unit_cost <= unit_cost;

      if (options_.enable_partial_pruning && dominated) {
        ++counters_.nodes_pruned_dominated;
        continue;
      }
      if (satisfied) {
        if (!dominated) {
          ++counts_[k - 1];
          Insert(lcm, unit_cost, log_weight);
          --counts_[k - 1];
        } else {
          ++counters_.nodes_pruned_dominated;
        }
        // No descent: any superset is dominated by this element itself.
      } else {
        // Descend; the binary search above doubles as the child frame's
        // witness lookup (`first` indexes the cheapest element with
        // lcm' <= the child's own LCM).
        ++counts_[k - 1];
        const double witness_uc = first < frontier_.size()
                                      ? frontier_[first].unit_cost
                                      : kNoWitness;
        stack_.push_back(
            Frame{k, k, lcm, unit_cost, log_weight, witness_uc});
      }
    }
    counters_.nodes_visited = nodes;
    if (stats_ != nullptr) *stats_ = counters_;
    return Status::OK();
  }

  std::vector<Cand> TakeQueue() {
    // Rebuild the Cand representation FinalizeOpq expects; the frontier is
    // already LCM-descending so this is a straight copy.
    std::vector<Cand> queue;
    queue.reserve(frontier_.size());
    for (Elem& e : frontier_) {
      Cand cand;
      cand.counts = std::move(e.counts);
      cand.lcm = e.lcm;
      cand.unit_cost = e.unit_cost;
      cand.log_weight = e.log_weight;
      queue.push_back(std::move(cand));
    }
    return queue;
  }

 private:
  // One DFS level: the partial combination built by pushing `added_k`
  // onto the parent, with `next_k` the cardinality to try next.
  struct Frame {
    uint32_t next_k;
    uint32_t added_k;  // 0 for the root (nothing to undo on pop)
    uint64_t lcm;
    double unit_cost;
    double log_weight;
    // Cheapest frontier unit cost among elements with lcm' <= lcm at the
    // time this frame was pushed; +inf when no such element existed. A
    // sound (possibly stale, never wrong) dominance witness for every
    // child of this frame.
    double witness_uc;
  };

  // A frontier element; the array is sorted by lcm strictly descending,
  // which (being a Pareto front) makes unit_cost strictly ascending.
  struct Elem {
    uint64_t lcm;
    double unit_cost;
    double log_weight;
    std::vector<uint32_t> counts;
  };

  // First frontier index whose lcm <= `lcm` (the array descends).
  size_t LowerBoundLcmLe(uint64_t lcm) const {
    return static_cast<size_t>(
        std::lower_bound(frontier_.begin(), frontier_.end(), lcm,
                         [](const Elem& e, uint64_t value) {
                           return e.lcm > value;
                         }) -
        frontier_.begin());
  }

  // Inserts the current counts_ as a frontier element, evicting the
  // contiguous run it dominates. Caller guarantees non-dominance, so
  // every element with lcm' == lcm is strictly costlier and sits inside
  // the evicted range -- order and strictness invariants are preserved.
  void Insert(uint64_t lcm, double uc, double log_weight) {
    const size_t end = LowerBoundLcmLe(lcm);  // first with lcm' <= lcm
    const size_t end_ge = static_cast<size_t>(
        std::lower_bound(frontier_.begin() + end, frontier_.end(), lcm,
                         [](const Elem& e, uint64_t value) {
                           return e.lcm >= value;
                         }) -
        frontier_.begin());  // first with lcm' < lcm
    // Evict elements dominated by the newcomer: lcm' >= lcm and uc' >= uc.
    // Unit cost ascends over [0, end_ge), so they are the run [lo, end_ge).
    const size_t lo = static_cast<size_t>(
        std::lower_bound(frontier_.begin(), frontier_.begin() + end_ge, uc,
                         [](const Elem& e, double value) {
                           return e.unit_cost < value;
                         }) -
        frontier_.begin());
    Elem elem{lcm, uc, log_weight, counts_};
    if (lo < end_ge) {
      frontier_[lo] = std::move(elem);
      frontier_.erase(frontier_.begin() + lo + 1,
                      frontier_.begin() + end_ge);
    } else {
      frontier_.insert(frontier_.begin() + lo, std::move(elem));
    }
    ++counters_.insertions;
  }

  const BinProfile& profile_;
  const double theta_;
  const OpqBuildOptions& options_;
  OpqBuildStats* stats_;
  std::vector<uint32_t> counts_;
  std::vector<Frame> stack_;
  std::vector<Elem> frontier_;
  OpqBuildStats counters_;
};

Result<Combination> ToCombination(const Cand& cand,
                                  const BinProfile& profile) {
  Combination::Parts parts;
  for (uint32_t l = 1; l <= profile.max_cardinality(); ++l) {
    if (cand.counts[l - 1] > 0) {
      parts.emplace_back(l, cand.counts[l - 1]);
    }
  }
  return Combination::Create(std::move(parts), profile);
}

// Shared post-processing: unit-LCM fallback, Combination conversion and the
// Definition 4 ordering. Both builders funnel through here so they can only
// differ in how they enumerate, never in what a queue looks like.
Result<OptimalPriorityQueue> FinalizeOpq(std::vector<Cand> cands,
                                         const BinProfile& profile,
                                         double theta) {
  // Defensive: the pure-b1 combination guarantees an LCM=1 element, which
  // in turn guarantees Algorithm 3 can always make progress. The DFS always
  // finds one (or something dominating it); re-add if numerical edge cases
  // ever dropped it.
  const bool has_unit = std::any_of(cands.begin(), cands.end(),
                                    [](const Cand& c) { return c.lcm == 1; });
  std::vector<Combination> elements;
  elements.reserve(cands.size() + 1);
  for (const Cand& cand : cands) {
    SLADE_ASSIGN_OR_RETURN(Combination c, ToCombination(cand, profile));
    elements.push_back(std::move(c));
  }
  if (!has_unit) {
    const TaskBin& b1 = profile.bin(1);
    const uint32_t copies = static_cast<uint32_t>(
        std::ceil(theta / b1.log_weight() - kBuildEps));
    SLADE_ASSIGN_OR_RETURN(
        Combination fallback,
        Combination::Create({{1, std::max(copies, 1u)}}, profile));
    elements.push_back(std::move(fallback));
  }

  // Condition (1) of Definition 4: descending LCM. Dominance removal makes
  // unit cost ascend along the same order.
  std::sort(elements.begin(), elements.end(),
            [](const Combination& a, const Combination& b) {
              if (a.lcm() != b.lcm()) return a.lcm() > b.lcm();
              return a.unit_cost() < b.unit_cost();
            });
  return OptimalPriorityQueue(std::move(elements), theta);
}

Status ValidateThreshold(double t) {
  if (!(t > 0.0 && t < 1.0)) {
    return Status::InvalidArgument(
        "OPQ threshold must be in (0, 1), got " + std::to_string(t));
  }
  return Status::OK();
}

}  // namespace

OptimalPriorityQueue::OptimalPriorityQueue(std::vector<Combination> elements,
                                           double theta)
    : elements_(std::move(elements)), theta_(theta) {}

size_t OptimalPriorityQueue::EstimatedBytes() const {
  size_t bytes = sizeof(*this) + elements_.capacity() * sizeof(Combination);
  for (const Combination& c : elements_) {
    bytes += c.parts().capacity() * sizeof(Combination::Parts::value_type);
  }
  return bytes;
}

std::string OptimalPriorityQueue::ToString() const {
  std::string out = "OPQ (theta=" + std::to_string(theta_) + ")\n";
  for (const Combination& c : elements_) {
    out += "  " + c.ToString() + "\n";
  }
  return out;
}

Result<OptimalPriorityQueue> BuildOpq(const BinProfile& profile, double t,
                                      const OpqBuildOptions& options,
                                      OpqBuildStats* stats) {
  SLADE_RETURN_NOT_OK(ValidateThreshold(t));
  const double theta = LogReduction(t);
  FastEnumerator enumerator(profile, theta, options, stats);
  SLADE_RETURN_NOT_OK(enumerator.Run());
  return FinalizeOpq(enumerator.TakeQueue(), profile, theta);
}

Result<OptimalPriorityQueue> BuildOpqReference(const BinProfile& profile,
                                               double t,
                                               const OpqBuildOptions& options,
                                               OpqBuildStats* stats) {
  SLADE_RETURN_NOT_OK(ValidateThreshold(t));
  const double theta = LogReduction(t);
  ReferenceEnumerator enumerator(profile, theta, options, stats);
  SLADE_RETURN_NOT_OK(enumerator.Run());
  return FinalizeOpq(enumerator.TakeQueue(), profile, theta);
}

}  // namespace slade
