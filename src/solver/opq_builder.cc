#include "solver/opq_builder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace slade {

namespace {

// Builder-internal element: a combination's counts plus cached aggregates.
struct Cand {
  std::vector<uint32_t> counts;  // counts[l-1] = copies of b_l
  uint64_t lcm = 1;
  double unit_cost = 0.0;
  double log_weight = 0.0;
};

// Acceptance margin for the threshold check. Stricter than kRelEps so that
// plans built from accepted combinations still validate under kRelEps.
constexpr double kBuildEps = 1e-12;

class Enumerator {
 public:
  Enumerator(const BinProfile& profile, double theta,
             const OpqBuildOptions& options, OpqBuildStats* stats)
      : profile_(profile), theta_(theta), options_(options), stats_(stats) {}

  Status Run() {
    Cand root;
    root.counts.assign(profile_.size(), 0);
    return Enumerate(1, root);
  }

  std::vector<Cand> TakeQueue() { return std::move(queue_); }

 private:
  // True iff some already-found combination weakly dominates (lcm, uc).
  bool Dominated(uint64_t lcm, double uc) const {
    for (const Cand& e : queue_) {
      if (e.lcm <= lcm && e.unit_cost <= uc) return true;
    }
    return false;
  }

  // Inserts `cand`, evicting everything it dominates (Algorithm 2 line 10
  // plus the line 2 sweep, maintained incrementally).
  void Insert(Cand cand) {
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const Cand& e) {
                                  return e.lcm >= cand.lcm &&
                                         e.unit_cost >= cand.unit_cost;
                                }),
                 queue_.end());
    queue_.push_back(std::move(cand));
    if (stats_ != nullptr) ++stats_->insertions;
  }

  // Algorithm 2's Enumerate(p, q, S, B, t): extends `cand` with bins of
  // cardinality >= p (multisets enumerated once, in non-decreasing order).
  Status Enumerate(uint32_t p, Cand& cand) {
    const uint32_t m = profile_.max_cardinality();
    for (uint32_t k = p; k <= m; ++k) {
      if (++nodes_ > options_.node_budget) {
        return Status::ResourceExhausted(
            "OPQ enumeration exceeded node budget of " +
            std::to_string(options_.node_budget));
      }
      if (stats_ != nullptr) ++stats_->nodes_visited;
      const TaskBin& bin = profile_.bin(k);
      Cand next = cand;
      next.counts[k - 1] += 1;
      next.lcm = SaturatingLcm(cand.lcm, k);
      next.unit_cost =
          cand.unit_cost + bin.cost / static_cast<double>(k);
      next.log_weight = cand.log_weight + bin.log_weight();

      // Lemma 1 pruning: a dominated partial combination can never lead to
      // a Pareto-optimal completion (supersets only grow both LCM and UC).
      if (options_.enable_partial_pruning &&
          Dominated(next.lcm, next.unit_cost)) {
        if (stats_ != nullptr) ++stats_->nodes_pruned_dominated;
        continue;
      }

      if (next.log_weight >= theta_ - kBuildEps) {
        if (!Dominated(next.lcm, next.unit_cost)) {
          Insert(std::move(next));
        } else if (stats_ != nullptr) {
          ++stats_->nodes_pruned_dominated;
        }
        // No recursion: any superset is dominated by `next` itself.
      } else {
        SLADE_RETURN_NOT_OK(Enumerate(k, next));
      }
    }
    return Status::OK();
  }

  const BinProfile& profile_;
  const double theta_;
  const OpqBuildOptions& options_;
  OpqBuildStats* stats_;
  std::vector<Cand> queue_;
  uint64_t nodes_ = 0;
};

Result<Combination> ToCombination(const Cand& cand,
                                  const BinProfile& profile) {
  Combination::Parts parts;
  for (uint32_t l = 1; l <= profile.max_cardinality(); ++l) {
    if (cand.counts[l - 1] > 0) {
      parts.emplace_back(l, cand.counts[l - 1]);
    }
  }
  return Combination::Create(std::move(parts), profile);
}

}  // namespace

OptimalPriorityQueue::OptimalPriorityQueue(std::vector<Combination> elements,
                                           double theta)
    : elements_(std::move(elements)), theta_(theta) {}

size_t OptimalPriorityQueue::EstimatedBytes() const {
  size_t bytes = sizeof(*this) + elements_.capacity() * sizeof(Combination);
  for (const Combination& c : elements_) {
    bytes += c.parts().capacity() * sizeof(Combination::Parts::value_type);
  }
  return bytes;
}

std::string OptimalPriorityQueue::ToString() const {
  std::string out = "OPQ (theta=" + std::to_string(theta_) + ")\n";
  for (const Combination& c : elements_) {
    out += "  " + c.ToString() + "\n";
  }
  return out;
}

Result<OptimalPriorityQueue> BuildOpq(const BinProfile& profile, double t,
                                      const OpqBuildOptions& options,
                                      OpqBuildStats* stats) {
  if (!(t > 0.0 && t < 1.0)) {
    return Status::InvalidArgument(
        "OPQ threshold must be in (0, 1), got " + std::to_string(t));
  }
  const double theta = LogReduction(t);
  Enumerator enumerator(profile, theta, options, stats);
  SLADE_RETURN_NOT_OK(enumerator.Run());
  std::vector<Cand> cands = enumerator.TakeQueue();

  // Defensive: the pure-b1 combination guarantees an LCM=1 element, which
  // in turn guarantees Algorithm 3 can always make progress. The DFS always
  // finds one (or something dominating it); re-add if numerical edge cases
  // ever dropped it.
  const bool has_unit = std::any_of(cands.begin(), cands.end(),
                                    [](const Cand& c) { return c.lcm == 1; });
  std::vector<Combination> elements;
  elements.reserve(cands.size() + 1);
  for (const Cand& cand : cands) {
    SLADE_ASSIGN_OR_RETURN(Combination c, ToCombination(cand, profile));
    elements.push_back(std::move(c));
  }
  if (!has_unit) {
    const TaskBin& b1 = profile.bin(1);
    const uint32_t copies = static_cast<uint32_t>(
        std::ceil(theta / b1.log_weight() - kBuildEps));
    SLADE_ASSIGN_OR_RETURN(
        Combination fallback,
        Combination::Create({{1, std::max(copies, 1u)}}, profile));
    elements.push_back(std::move(fallback));
  }

  // Condition (1) of Definition 4: descending LCM. Dominance removal makes
  // unit cost ascend along the same order.
  std::sort(elements.begin(), elements.end(),
            [](const Combination& a, const Combination& b) {
              if (a.lcm() != b.lcm()) return a.lcm() > b.lcm();
              return a.unit_cost() < b.unit_cost();
            });
  return OptimalPriorityQueue(std::move(elements), theta);
}

}  // namespace slade
