// Copyright (c) the SLADE reproduction authors.
// The prior-practice strategy SLADE argues against (paper Section 1):
// "Previous works either set the fixed cardinality of a task bin [8], [9],
// [10] or adopt simple heuristics to determine a single cardinality for
// the entire large-scale crowdsourcing task."

#ifndef SLADE_SOLVER_FIXED_CARDINALITY_SOLVER_H_
#define SLADE_SOLVER_FIXED_CARDINALITY_SOLVER_H_

#include "solver/solver.h"

namespace slade {

/// \brief Decomposes the whole task using bins of a SINGLE cardinality.
///
/// With cardinality `l` fixed, each atomic task a_i needs
/// `k_i = ceil(theta_i / w_l)` bin memberships; tasks are packed
/// level-by-level into full bins. Two modes:
///
///  * explicit cardinality (`FixedCardinalitySolver(l)`) — the CrowdDB /
///    Deco-style hard-coded bin size;
///  * auto (`l = 0`, default) — the "simple heuristic": pick the single
///    cardinality with the best analytic cost for the whole task, i.e.
///    minimizing `c_l * ceil(theta_max / w_l) / l` per task. This is the
///    strongest member of the single-cardinality family, so SLADE's win
///    over it lower-bounds its win over prior practice.
///
/// Used by benchmarks as the prior-practice reference series; it is a
/// legitimate general-purpose solver as well (always feasible).
class FixedCardinalitySolver final : public Solver {
 public:
  /// `cardinality == 0` selects the best single cardinality automatically.
  explicit FixedCardinalitySolver(uint32_t cardinality = 0)
      : cardinality_(cardinality) {}

  std::string name() const override;

  /// Fails with OutOfRange if an explicit cardinality is not in the
  /// profile.
  Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                  const BinProfile& profile) override;

  /// The auto-selection rule, exposed for tests/benchmarks: the
  /// cardinality minimizing per-task cost at threshold `theta`.
  static uint32_t BestCardinality(const BinProfile& profile, double theta);

 private:
  uint32_t cardinality_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_FIXED_CARDINALITY_SOLVER_H_
