#include "solver/solver.h"

#include "solver/baseline_solver.h"
#include "solver/greedy_solver.h"
#include "solver/opq_extended_solver.h"
#include "solver/opq_solver.h"
#include "solver/relaxed_dp_solver.h"

namespace slade {

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kGreedy:
      return "Greedy";
    case SolverKind::kOpq:
      return "OPQ-Based";
    case SolverKind::kOpqExtended:
      return "OPQ-Extended";
    case SolverKind::kBaseline:
      return "Baseline";
    case SolverKind::kRelaxedDp:
      return "Relaxed-DP";
  }
  return "?";
}

std::unique_ptr<Solver> MakeSolver(SolverKind kind,
                                   const SolverOptions& options) {
  switch (kind) {
    case SolverKind::kGreedy:
      return std::make_unique<GreedySolver>(GreedySolver::Strategy::kFast,
                                            options);
    case SolverKind::kOpq:
      return std::make_unique<OpqSolver>(options);
    case SolverKind::kOpqExtended:
      return std::make_unique<OpqExtendedSolver>(options);
    case SolverKind::kBaseline:
      return std::make_unique<BaselineSolver>(options);
    case SolverKind::kRelaxedDp:
      return std::make_unique<RelaxedDpSolver>(options);
  }
  return nullptr;
}

}  // namespace slade
