#include "solver/plan.h"

#include <cstdio>

#include "common/math_util.h"

namespace slade {

void DecompositionPlan::Add(uint32_t cardinality, uint32_t copies,
                            std::vector<TaskId> tasks) {
  if (copies == 0) return;
  BinPlacement p;
  p.cardinality = cardinality;
  p.copies = copies;
  p.tasks = std::move(tasks);
  placements_.push_back(std::move(p));
}

double DecompositionPlan::TotalCost(const BinProfile& profile) const {
  double cost = 0.0;
  for (const BinPlacement& p : placements_) {
    cost += static_cast<double>(p.copies) * profile.bin(p.cardinality).cost;
  }
  return cost;
}

std::vector<uint64_t> DecompositionPlan::BinCounts(
    uint32_t max_cardinality) const {
  std::vector<uint64_t> counts(max_cardinality + 1, 0);
  for (const BinPlacement& p : placements_) {
    if (p.cardinality <= max_cardinality) {
      counts[p.cardinality] += p.copies;
    }
  }
  return counts;
}

uint64_t DecompositionPlan::TotalBinInstances() const {
  uint64_t total = 0;
  for (const BinPlacement& p : placements_) total += p.copies;
  return total;
}

std::vector<double> DecompositionPlan::PerTaskReliability(
    const BinProfile& profile, size_t n) const {
  std::vector<double> theta(n, 0.0);
  for (const BinPlacement& p : placements_) {
    const double w = profile.bin(p.cardinality).log_weight() *
                     static_cast<double>(p.copies);
    for (TaskId id : p.tasks) {
      if (id < n) theta[id] += w;
    }
  }
  std::vector<double> rel(n);
  for (size_t i = 0; i < n; ++i) rel[i] = InverseLogReduction(theta[i]);
  return rel;
}

void DecompositionPlan::Append(DecompositionPlan other) {
  placements_.reserve(placements_.size() + other.placements_.size());
  for (BinPlacement& p : other.placements_) {
    placements_.push_back(std::move(p));
  }
}

std::string DecompositionPlan::Summary(const BinProfile& profile) const {
  std::vector<uint64_t> counts = BinCounts(profile.max_cardinality());
  std::string out = "plan {";
  bool first = true;
  char buf[64];
  for (uint32_t l = 1; l < counts.size(); ++l) {
    if (counts[l] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s%llu x b%u", first ? "" : ", ",
                  static_cast<unsigned long long>(counts[l]), l);
    out += buf;
    first = false;
  }
  std::snprintf(buf, sizeof(buf), "} cost=%.4f", TotalCost(profile));
  out += buf;
  return out;
}

}  // namespace slade
