// Copyright (c) the SLADE reproduction authors.
// Covering integer programming (CIP) reduction of SLADE (paper Section 4.3)
// and its LP-relaxation + randomized-rounding solver.

#ifndef SLADE_SOLVER_CIP_H_
#define SLADE_SOLVER_CIP_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace slade {

/// \brief One CIP column: a "combination instance" of the Section 4.3
/// reduction -- a concrete subset of atomic tasks packed into one bin of a
/// given cardinality. Using the column once contributes `weight` (= the
/// bin's log confidence `-ln(1-r_l)`) to each covered row's demand at
/// price `cost` (= c_l).
struct CipColumn {
  uint32_t cardinality = 0;
  /// Instance-local row (task) indices covered; distinct, size <= cardinality.
  std::vector<uint32_t> rows;
  double cost = 0.0;
  double weight = 0.0;
};

/// \brief A CIP instance `min c^T y  s.t.  U y >= v, y in N` (Equation 3).
struct CipInstance {
  /// Row demands `v_i = -ln(1 - t_i)`.
  std::vector<double> demand;
  std::vector<CipColumn> columns;
};

/// \brief Knobs for SolveCip.
struct CipSolveOptions {
  uint64_t seed = 1;
  /// Randomized-rounding repetitions; the cheapest feasible rounding wins.
  uint32_t rounding_rounds = 5;
  /// Pivot budget per LP. Chunk-sized covering LPs converge in a few
  /// hundred pivots; heavily degenerate ones hit the budget and fall back
  /// to the feasible point reached (see simplex.h), so a tight budget
  /// bounds worst-case latency without affecting typical results.
  int lp_max_iterations = 2000;
};

/// \brief Result of SolveCip: integer multiplicities per column plus
/// bookkeeping for benchmarks.
struct CipSolution {
  std::vector<uint64_t> y;
  double cost = 0.0;
  /// LP relaxation objective: the true optimum (and thus a lower bound on
  /// `cost`) when the simplex converged; the value of the feasible point
  /// it stopped at otherwise.
  double lp_objective = 0.0;
};

/// \brief Solves the CIP: LP relaxation via simplex, then randomized
/// rounding (floor + Bernoulli on the fractional part) with a greedy
/// cost-effectiveness repair pass that restores feasibility (the standard
/// Vazirani-style treatment the paper cites).
///
/// Requires every row to be covered by at least one column (otherwise
/// Infeasible).
Result<CipSolution> SolveCip(const CipInstance& instance,
                             const CipSolveOptions& options);

}  // namespace slade

#endif  // SLADE_SOLVER_CIP_H_
