#include "solver/combination.h"

#include <algorithm>
#include <cstdio>

#include "common/math_util.h"
#include "solver/plan_arena.h"

namespace slade {

Result<Combination> Combination::Create(Parts parts,
                                        const BinProfile& profile) {
  if (parts.empty()) {
    return Status::InvalidArgument("a combination needs at least one part");
  }
  std::sort(parts.begin(), parts.end());
  uint64_t lcm = 1;
  double unit_cost = 0.0;
  double log_weight = 0.0;
  uint32_t prev_cardinality = 0;
  for (const auto& [cardinality, count] : parts) {
    if (cardinality == prev_cardinality) {
      return Status::InvalidArgument(
          "combination parts must have distinct cardinalities");
    }
    prev_cardinality = cardinality;
    if (cardinality == 0 || cardinality > profile.max_cardinality()) {
      return Status::OutOfRange("combination cardinality " +
                                std::to_string(cardinality) +
                                " outside profile");
    }
    if (count == 0) {
      return Status::InvalidArgument("combination counts must be >= 1");
    }
    const TaskBin& bin = profile.bin(cardinality);
    lcm = SaturatingLcm(lcm, cardinality);
    unit_cost += static_cast<double>(count) * bin.cost /
                 static_cast<double>(cardinality);
    log_weight += static_cast<double>(count) * bin.log_weight();
  }
  return Combination(std::move(parts), lcm, unit_cost, log_weight);
}

double Combination::ExpandInto(const std::vector<TaskId>& ids, size_t offset,
                               size_t count, const BinProfile& profile,
                               DecompositionPlan* plan) const {
  double cost = 0.0;
  for (const auto& [cardinality, copies] : parts_) {
    const size_t k = cardinality;
    for (size_t group = 0; group < count; group += k) {
      const size_t group_size = std::min(k, count - group);
      std::vector<TaskId> members;
      members.reserve(group_size);
      for (size_t j = 0; j < group_size; ++j) {
        members.push_back(ids[offset + group + j]);
      }
      plan->Add(cardinality, copies, std::move(members));
      cost += static_cast<double>(copies) * profile.bin(cardinality).cost;
    }
  }
  return cost;
}

double Combination::ExpandInto(const std::vector<TaskId>& ids, size_t offset,
                               size_t count, const BinProfile& profile,
                               ColumnarPlan* plan) const {
  double cost = 0.0;
  for (const auto& [cardinality, copies] : parts_) {
    const size_t k = cardinality;
    for (size_t group = 0; group < count; group += k) {
      const size_t group_size = std::min(k, count - group);
      plan->Add(cardinality, copies, ids.data() + offset + group, group_size);
      cost += static_cast<double>(copies) * profile.bin(cardinality).cost;
    }
  }
  return cost;
}

double Combination::ExpandBlocksInto(const std::vector<TaskId>& ids,
                                     size_t offset, uint64_t blocks,
                                     const BinProfile& profile,
                                     DecompositionPlan* plan) const {
  if (blocks == 0) return 0.0;
  const size_t lcm = static_cast<size_t>(lcm_);

  // The placement template of one perfect block: each part (k, n_k) tiles
  // the block's lcm ids into lcm/k groups of exactly k (k divides lcm by
  // construction). Derived once; every block stamps the same groups at its
  // own id offset.
  struct TemplateGroup {
    uint32_t cardinality;
    uint32_t copies;
    size_t begin;  // offset of the group's first id within the block
  };
  std::vector<TemplateGroup> groups;
  double block_cost = 0.0;
  size_t groups_per_block = 0;
  for (const auto& [cardinality, copies] : parts_) {
    groups_per_block += lcm / cardinality;
  }
  groups.reserve(groups_per_block);
  for (const auto& [cardinality, copies] : parts_) {
    for (size_t begin = 0; begin < lcm; begin += cardinality) {
      groups.push_back(TemplateGroup{cardinality, copies, begin});
    }
    block_cost += static_cast<double>(lcm / cardinality) *
                  static_cast<double>(copies) * profile.bin(cardinality).cost;
  }

  plan->Reserve(plan->placements().size() +
                static_cast<size_t>(blocks) * groups_per_block);
  for (uint64_t block = 0; block < blocks; ++block) {
    const size_t base = offset + static_cast<size_t>(block) * lcm;
    for (const TemplateGroup& g : groups) {
      const auto first = ids.begin() + static_cast<ptrdiff_t>(base + g.begin);
      plan->Add(g.cardinality, g.copies,
                std::vector<TaskId>(first, first + g.cardinality));
    }
  }
  return static_cast<double>(blocks) * block_cost;
}

double Combination::ExpandBlocksInto(const std::vector<TaskId>& ids,
                                     size_t offset, uint64_t blocks,
                                     const BinProfile& profile,
                                     ColumnarPlan* plan) const {
  if (blocks == 0) return 0.0;
  const size_t lcm = static_cast<size_t>(lcm_);

  struct TemplateGroup {
    uint32_t cardinality;
    uint32_t copies;
    size_t begin;  // offset of the group's first id within the block
  };
  std::vector<TemplateGroup> groups;
  double block_cost = 0.0;
  size_t groups_per_block = 0;
  for (const auto& [cardinality, copies] : parts_) {
    groups_per_block += lcm / cardinality;
  }
  groups.reserve(groups_per_block);
  for (const auto& [cardinality, copies] : parts_) {
    for (size_t begin = 0; begin < lcm; begin += cardinality) {
      groups.push_back(TemplateGroup{cardinality, copies, begin});
    }
    block_cost += static_cast<double>(lcm / cardinality) *
                  static_cast<double>(copies) * profile.bin(cardinality).cost;
  }

  // Each part re-lists all lcm ids of the block, so the whole expansion is
  // exactly blocks * parts * lcm id slots -- reserve it all at once.
  plan->Reserve(
      plan->num_placements() + static_cast<size_t>(blocks) * groups_per_block,
      plan->num_task_ids() +
          static_cast<size_t>(blocks) * parts_.size() * lcm);
  for (uint64_t block = 0; block < blocks; ++block) {
    const size_t base = offset + static_cast<size_t>(block) * lcm;
    for (const TemplateGroup& g : groups) {
      plan->Add(g.cardinality, g.copies, ids.data() + base + g.begin,
                g.cardinality);
    }
  }
  return static_cast<double>(blocks) * block_cost;
}

std::string Combination::ToString() const {
  std::string out = "{";
  char buf[64];
  for (size_t i = 0; i < parts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%u x b%u", i ? ", " : "",
                  parts_[i].second, parts_[i].first);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "} LCM=%llu UC=%.6f",
                static_cast<unsigned long long>(lcm_), unit_cost_);
  out += buf;
  return out;
}

}  // namespace slade
