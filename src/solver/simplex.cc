#include "solver/simplex.h"

#include <algorithm>
#include <cmath>

namespace slade {

namespace {

constexpr double kPivotEps = 1e-9;
// Minimum magnitude for a pivot element: pivoting on near-zero entries
// multiplies rounding error into the whole tableau.
constexpr double kMinPivot = 1e-7;

// Dense simplex tableau over the variable layout
//   [structural 0..n) | surplus n..n+m) | artificial n+m..n+2m)
// for constraints A x - s + a = b with the artificials as initial basis.
//
// The reduced-cost row is carried in the tableau and updated on every
// pivot, so entering-variable selection is O(cols). Pricing is Dantzig
// (most negative reduced cost) for speed, switching to Bland's rule for
// guaranteed termination if an optimization runs unusually long.
class Tableau {
 public:
  explicit Tableau(const LpProblem& p)
      : m_(p.b.size()), n_(p.c.size()), cols_(n_ + 2 * m_) {
    rows_.assign(m_, std::vector<double>(cols_ + 1, 0.0));
    basis_.resize(m_);
    for (size_t i = 0; i < m_; ++i) {
      for (size_t j = 0; j < n_; ++j) rows_[i][j] = p.a[i][j];
      rows_[i][n_ + i] = -1.0;        // surplus
      rows_[i][n_ + m_ + i] = 1.0;    // artificial
      // Deterministic lexicographic-style perturbation of the right-hand
      // side: breaks the massive degeneracy of covering LPs with many
      // identical rows (the classic anti-cycling device). The perturbation
      // only ever *increases* demands, so the solution remains feasible
      // for the unperturbed covering problem; its cost effect is O(1e-7).
      rows_[i][cols_] =
          p.b[i] * (1.0 + 1e-9 * static_cast<double>(i + 1)) +
          1e-9 * static_cast<double>(i + 1);
      basis_[i] = n_ + m_ + i;
    }
  }

  size_t num_structural() const { return n_; }

  bool IsArtificial(size_t col) const { return col >= n_ + m_; }

  // Sets the objective to `obj` (size cols_) and recomputes the reduced-
  // cost row r_j = obj_j - obj_B^T T_j for the current basis.
  void SetObjective(const std::vector<double>& obj) {
    obj_ = obj;
    RefreshReducedCosts();
  }

  // Recomputes the reduced-cost row from scratch. Called at objective
  // changes and periodically during long optimizations: the incremental
  // per-pivot updates accumulate rounding error, and a stale negative
  // entry would make the loop chase phantom improvements forever.
  void RefreshReducedCosts() {
    reduced_.assign(cols_ + 1, 0.0);
    for (size_t j = 0; j <= cols_; ++j) {
      double r = (j < cols_) ? obj_[j] : 0.0;
      for (size_t i = 0; i < m_; ++i) {
        const double cb = obj_[basis_[i]];
        if (cb != 0.0) r -= cb * rows_[i][j];
      }
      reduced_[j] = r;
    }
  }

  // Minimizes the current objective. Returns iterations used,
  // or -1 on iteration limit, -2 on unbounded.
  int Optimize(int max_iterations, bool forbid_artificial_entering) {
    int iterations = 0;
    // Entering tolerance: relative to the objective scale, so tiny
    // rounding residue never counts as an improvement direction.
    double scale = 1.0;
    for (double c : obj_) scale = std::max(scale, std::fabs(c));
    const double enter_eps = 1e-9 * scale;
    while (iterations < max_iterations) {
      if (iterations > 0 && iterations % 256 == 0) RefreshReducedCosts();
      // After a long run, fall back to Bland's rule (anti-cycling).
      const bool bland = iterations > max_iterations / 2;
      size_t enter = cols_;
      double most_negative = -enter_eps;
      for (size_t j = 0; j < cols_; ++j) {
        if (forbid_artificial_entering && IsArtificial(j)) continue;
        const double r = reduced_[j];
        if (r < most_negative) {
          enter = j;
          if (bland) break;  // first (smallest-index) negative column
          most_negative = r;
        }
      }
      if (enter == cols_) return iterations;  // optimal

      // Ratio test over rows with a numerically safe pivot element.
      // Among near-tied ratios prefer the largest pivot (stability),
      // then the smallest basis index (Bland).
      size_t leave = m_;
      double best_ratio = 0.0;
      for (size_t i = 0; i < m_; ++i) {
        if (rows_[i][enter] > kMinPivot) {
          const double ratio =
              std::max(rows_[i][cols_], 0.0) / rows_[i][enter];
          if (leave == m_ || ratio < best_ratio - kPivotEps) {
            leave = i;
            best_ratio = ratio;
          } else if (ratio < best_ratio + kPivotEps) {
            if (rows_[i][enter] > 2.0 * rows_[leave][enter] ||
                (rows_[i][enter] > 0.5 * rows_[leave][enter] &&
                 basis_[i] < basis_[leave])) {
              leave = i;
              best_ratio = ratio;
            }
          }
        }
      }
      if (leave == m_) return -2;  // unbounded

      Pivot(leave, enter);
      ++iterations;
    }
    return -1;
  }

  void Pivot(size_t row, size_t col) {
    std::vector<double>& pivot_row = rows_[row];
    const double pivot = pivot_row[col];
    for (double& v : pivot_row) v /= pivot;
    for (size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double factor = rows_[i][col];
      if (factor == 0.0) continue;
      std::vector<double>& r = rows_[i];
      for (size_t j = 0; j <= cols_; ++j) r[j] -= factor * pivot_row[j];
    }
    const double rfactor = reduced_[col];
    if (rfactor != 0.0) {
      for (size_t j = 0; j <= cols_; ++j) {
        reduced_[j] -= rfactor * pivot_row[j];
      }
    }
    basis_[row] = col;
  }

  double ObjectiveValue() const {
    double v = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      v += obj_[basis_[i]] * rows_[i][cols_];
    }
    return v;
  }

  // Drives artificial variables out of the basis after phase 1 (pivoting
  // on any usable non-artificial column; a row with none is redundant and
  // its artificial stays at value zero, which is harmless).
  void EvictArtificials() {
    for (size_t i = 0; i < m_; ++i) {
      if (!IsArtificial(basis_[i])) continue;
      for (size_t j = 0; j < n_ + m_; ++j) {
        if (std::fabs(rows_[i][j]) > kPivotEps) {
          Pivot(i, j);
          break;
        }
      }
    }
  }

  std::vector<double> ExtractStructural() const {
    std::vector<double> x(n_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) x[basis_[i]] = rows_[i][cols_];
    }
    return x;
  }

 private:
  size_t m_;
  size_t n_;
  size_t cols_;
  std::vector<std::vector<double>> rows_;  // each row: cols_ + rhs
  std::vector<double> reduced_;            // reduced-cost row + rhs slot
  std::vector<double> obj_;
  std::vector<size_t> basis_;
};

}  // namespace

Result<LpSolution> SolveCoveringLp(const LpProblem& problem,
                                   int max_iterations) {
  const size_t m = problem.b.size();
  const size_t n = problem.c.size();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("LP needs at least one row and column");
  }
  if (problem.a.size() != m) {
    return Status::InvalidArgument("LP row count mismatch");
  }
  for (const auto& row : problem.a) {
    if (row.size() != n) {
      return Status::InvalidArgument("LP column count mismatch");
    }
  }
  for (double bi : problem.b) {
    if (bi < 0.0) {
      return Status::InvalidArgument("covering LP requires b >= 0");
    }
  }

  Tableau tableau(problem);
  const size_t cols = n + 2 * m;

  // Phase 1: minimize the sum of artificials.
  std::vector<double> phase1(cols, 0.0);
  for (size_t j = n + m; j < cols; ++j) phase1[j] = 1.0;
  tableau.SetObjective(phase1);
  int it1 = tableau.Optimize(max_iterations, false);
  if (it1 == -1) {
    return Status::ResourceExhausted("simplex phase 1 iteration limit");
  }
  if (it1 == -2) {
    return Status::Internal("phase 1 unbounded (cannot happen)");
  }
  if (tableau.ObjectiveValue() > 1e-7) {
    return Status::Infeasible("covering LP has no feasible point");
  }
  tableau.EvictArtificials();

  // Phase 2: the real objective (zero cost on surplus; artificials barred
  // from re-entering the basis).
  std::vector<double> phase2(cols, 0.0);
  for (size_t j = 0; j < n; ++j) phase2[j] = problem.c[j];
  tableau.SetObjective(phase2);
  int it2 = tableau.Optimize(max_iterations, true);
  if (it2 == -2) {
    return Status::Internal(
        "covering LP with nonnegative costs reported unbounded");
  }

  LpSolution solution;
  solution.x = tableau.ExtractStructural();
  solution.objective = tableau.ObjectiveValue();
  if (it2 == -1) {
    // Ran out of pivots on a degenerate instance. Every phase 2 iterate
    // is primal feasible, so return the current point as an approximate
    // solution rather than failing the caller.
    solution.converged = false;
    solution.iterations = it1 + max_iterations;
  } else {
    solution.iterations = it1 + it2;
  }
  return solution;
}

}  // namespace slade
