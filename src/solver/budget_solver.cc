#include "solver/budget_solver.h"

#include "common/math_util.h"
#include "solver/opq_solver.h"

namespace slade {

Result<BudgetResult> MaxReliabilityUnderBudget(
    size_t n, const BinProfile& profile, double budget,
    const BudgetOptions& options) {
  if (n == 0) return Status::InvalidArgument("need n > 0 tasks");
  if (!(budget > 0.0)) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (!(options.t_lo > 0.0 && options.t_hi < 1.0 &&
        options.t_lo < options.t_hi)) {
    return Status::InvalidArgument("need 0 < t_lo < t_hi < 1");
  }

  OpqSolver solver(options.solver_options);
  auto cost_at = [&](double t) -> Result<std::pair<double,
                                                   DecompositionPlan>> {
    SLADE_ASSIGN_OR_RETURN(CrowdsourcingTask task,
                           CrowdsourcingTask::Homogeneous(n, t));
    SLADE_ASSIGN_OR_RETURN(DecompositionPlan plan,
                           solver.Solve(task, profile));
    const double cost = plan.TotalCost(profile);
    return std::make_pair(cost, std::move(plan));
  };

  // Feasibility of the floor.
  SLADE_ASSIGN_OR_RETURN(auto floor_solution, cost_at(options.t_lo));
  if (floor_solution.first > budget) {
    return Status::Infeasible(
        "even t=" + std::to_string(options.t_lo) + " costs " +
        std::to_string(floor_solution.first) + " > budget " +
        std::to_string(budget));
  }

  BudgetResult best;
  best.threshold = options.t_lo;
  best.cost = floor_solution.first;
  best.plan = std::move(floor_solution.second);

  // Bisect in the log domain, where thresholds compose additively.
  double lo = LogReduction(options.t_lo);
  double hi = LogReduction(options.t_hi);
  for (int i = 0; i < options.bisection_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double t = InverseLogReduction(mid);
    SLADE_ASSIGN_OR_RETURN(auto solution, cost_at(t));
    if (solution.first <= budget) {
      lo = mid;
      if (t > best.threshold) {
        best.threshold = t;
        best.cost = solution.first;
        best.plan = std::move(solution.second);
      }
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace slade
