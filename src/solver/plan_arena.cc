#include "solver/plan_arena.h"

#include <algorithm>
#include <mutex>

#include "common/math_util.h"
#include "engine/resource_governor.h"

namespace slade {

namespace {

/// Process-wide recycler for retired arena chunks. Large chunks are the
/// ones glibc serves straight from mmap, so without recycling every batch
/// solve re-faults and re-zeroes its plan memory from the kernel; the pool
/// keeps those pages warm across arena lifetimes.
///
/// Idle chunks sit in power-of-two size-class free lists (bucket b holds
/// capacities in [2^b, 2^(b+1))); Acquire pops LIFO from the smallest
/// class that guarantees the demand, so a split pass retiring tens of
/// thousands of 4 KiB slice chunks never degrades acquire beyond the
/// O(log) bucket scan. LIFO reuse favors the most recently touched
/// (cache- and TLB-warm) chunks; Recycle drops chunks on the floor once
/// kMaxPooledBytes of idle memory is held.
class ChunkPool {
 public:
  static ChunkPool& Instance() {
    static ChunkPool* pool = new ChunkPool();  // never destroyed: arenas
    return *pool;  // in static objects may recycle after exit begins
  }

  /// Pops an idle chunk holding >= `min_bytes` from the smallest
  /// sufficient size class. Returns null (and counts a miss) when every
  /// such class is empty.
  std::unique_ptr<unsigned char[]> Acquire(size_t min_bytes,
                                           size_t* capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    // Every chunk in bucket >= ceil(log2(min_bytes)) has capacity >=
    // min_bytes. (A bucket-floor chunk with capacity in
    // [min_bytes, 2^ceil) is skipped -- arena capacities are almost
    // always exact powers of two, so the loss is negligible.)
    for (size_t b = CeilLog2(min_bytes); b < kNumBuckets; ++b) {
      std::vector<Idle>& bucket = buckets_[b];
      if (bucket.empty()) continue;
      ++hits_;
      Idle idle = std::move(bucket.back());
      bucket.pop_back();
      pooled_bytes_ -= idle.capacity;
      --pooled_chunks_;
      *capacity = idle.capacity;
      return std::move(idle.data);
    }
    ++misses_;
    return nullptr;
  }

  void Recycle(std::unique_ptr<unsigned char[]> data, size_t capacity) {
    if (data == nullptr || capacity == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (pooled_bytes_ + capacity > PlanArena::kMaxPooledBytes) return;
    pooled_bytes_ += capacity;
    ++pooled_chunks_;
    buckets_[FloorLog2(capacity)].push_back(Idle{std::move(data), capacity});
  }

  PlanArenaPoolCounters Stats() {
    std::lock_guard<std::mutex> lock(mu_);
    PlanArenaPoolCounters out;
    out.pooled_bytes = pooled_bytes_;
    out.pooled_chunks = pooled_chunks_;
    out.reuse_hits = hits_;
    out.reuse_misses = misses_;
    return out;
  }

  void Trim() {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::vector<Idle>& bucket : buckets_) bucket.clear();
    pooled_bytes_ = 0;
    pooled_chunks_ = 0;
  }

 private:
  static constexpr size_t kNumBuckets = 64;

  struct Idle {
    std::unique_ptr<unsigned char[]> data;
    size_t capacity = 0;
  };

  static size_t FloorLog2(size_t v) {
    size_t b = 0;
    while (v >>= 1) ++b;
    return b;
  }

  static size_t CeilLog2(size_t v) {
    const size_t floor = FloorLog2(v);
    return (size_t{1} << floor) == v ? floor : floor + 1;
  }

  std::mutex mu_;
  std::vector<Idle> buckets_[kNumBuckets];
  uint64_t pooled_bytes_ = 0;
  uint64_t pooled_chunks_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace

PlanArenaPoolCounters PlanArenaPoolStats() {
  return ChunkPool::Instance().Stats();
}

void TrimPlanArenaPool() { ChunkPool::Instance().Trim(); }

PlanArena::PlanArena(ResourceGovernor* governor) : governor_(governor) {}

PlanArena::~PlanArena() { ReleaseChunks(); }

void PlanArena::ReleaseChunks() {
  DetachGovernor();
  for (Chunk& chunk : chunks_) {
    ChunkPool::Instance().Recycle(std::move(chunk.data), chunk.capacity);
  }
  chunks_.clear();
  active_ = 0;
  reserved_bytes_ = 0;
}

void PlanArena::DetachGovernor() {
  if (governor_ == nullptr) return;
  governor_->Release(reserved_bytes_, chunks_.size());
  governor_ = nullptr;
}

void* PlanArena::Allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& chunk = chunks_[active_];
      const size_t aligned =
          (chunk.used + alignment - 1) & ~(alignment - 1);
      if (aligned + bytes <= chunk.capacity) {
        chunk.used = aligned + bytes;
        return chunk.data.get() + aligned;
      }
      // The active chunk is full; after a Reset() the next retained chunk
      // may still have room, otherwise a new one is grown below.
      ++active_;
      continue;
    }
    AddChunk(bytes + alignment);
  }
}

void PlanArena::AddChunk(size_t min_bytes) {
  size_t capacity = kMinChunkBytes;
  if (!chunks_.empty()) {
    capacity = std::min(chunks_.back().capacity * 2, kMaxChunkBytes);
  }
  capacity = std::max(capacity, min_bytes);
  Chunk chunk;
  // A recycled chunk keeps its (possibly larger) capacity; the governor is
  // charged for what the arena actually holds either way.
  chunk.data = ChunkPool::Instance().Acquire(capacity, &capacity);
  if (chunk.data == nullptr) {
    // Default-initialized (not value-initialized): columns stamp every
    // byte they expose, so zeroing fresh chunks would be pure waste.
    chunk.data.reset(new unsigned char[capacity]);
  }
  chunk.capacity = capacity;
  chunks_.push_back(std::move(chunk));
  active_ = chunks_.size() - 1;
  reserved_bytes_ += capacity;
  if (governor_ != nullptr) governor_->Charge(capacity, 1);
}

void PlanArena::Reset() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
}

ColumnarPlan::ColumnarPlan(const ColumnarPlan& other)
    : arena_(std::make_unique<PlanArena>()) {
  AppendColumns(other);
}

ColumnarPlan& ColumnarPlan::operator=(const ColumnarPlan& other) {
  if (this == &other) return *this;
  Clear();
  // Clear() rewound the arena; the columns must not reuse their stale
  // pointers into it.
  task_ids_.Detach();
  ends_.Detach();
  cardinality_.Detach();
  copies_.Detach();
  AppendColumns(other);
  return *this;
}

void ColumnarPlan::Reserve(size_t placements, size_t ids) {
  task_ids_.Reserve(*arena_, ids);
  ends_.Reserve(*arena_, placements);
  cardinality_.Reserve(*arena_, placements);
  copies_.Reserve(*arena_, placements);
}

void ColumnarPlan::Add(uint32_t cardinality, uint32_t copies,
                       const TaskId* ids, size_t n) {
  if (copies == 0) return;
  TaskId* out = task_ids_.AppendN(*arena_, n);
  if (n != 0) std::memcpy(out, ids, n * sizeof(TaskId));
  ends_.PushBack(*arena_, static_cast<uint32_t>(task_ids_.size()));
  cardinality_.PushBack(*arena_, cardinality);
  copies_.PushBack(*arena_, copies);
}

void ColumnarPlan::AppendColumns(const ColumnarPlan& other) {
  AppendRange(other, 0, other.num_placements(), 0);
}

void ColumnarPlan::AppendRange(const ColumnarPlan& other, size_t first,
                               size_t count, int64_t id_delta) {
  if (count == 0) return;
  const size_t id_begin = other.placement_begin(first);
  const size_t id_end = other.placement_end(first + count - 1);
  const size_t ids = id_end - id_begin;

  TaskId* id_out = task_ids_.AppendN(*arena_, ids);
  if (id_delta == 0) {
    std::memcpy(id_out, other.task_ids() + id_begin, ids * sizeof(TaskId));
  } else {
    const TaskId* src = other.task_ids() + id_begin;
    for (size_t k = 0; k < ids; ++k) {
      id_out[k] = static_cast<TaskId>(static_cast<int64_t>(src[k]) +
                                      id_delta);
    }
  }

  uint32_t* cards = cardinality_.AppendN(*arena_, count);
  std::memcpy(cards, other.cardinalities() + first, count * sizeof(uint32_t));
  uint32_t* copies = copies_.AppendN(*arena_, count);
  std::memcpy(copies, other.copies() + first, count * sizeof(uint32_t));

  // The ends column needs a rebase: subtract the range's base offset in
  // `other`, add the id count already present here.
  const int64_t rebase = static_cast<int64_t>(task_ids_.size()) -
                         static_cast<int64_t>(id_end);
  uint32_t* ends = ends_.AppendN(*arena_, count);
  const uint32_t* src_ends = other.ends() + first;
  for (size_t k = 0; k < count; ++k) {
    ends[k] =
        static_cast<uint32_t>(static_cast<int64_t>(src_ends[k]) + rebase);
  }
}

void ColumnarPlan::AppendPlan(const DecompositionPlan& plan,
                              TaskId id_offset) {
  const std::vector<BinPlacement>& placements = plan.placements();
  size_t ids = 0;
  for (const BinPlacement& p : placements) ids += p.tasks.size();
  Reserve(num_placements() + placements.size(), num_task_ids() + ids);
  for (const BinPlacement& p : placements) {
    if (id_offset == 0) {
      Add(p.cardinality, p.copies, p.tasks.data(), p.tasks.size());
    } else {
      TaskId* out = task_ids_.AppendN(*arena_, p.tasks.size());
      for (size_t k = 0; k < p.tasks.size(); ++k) {
        out[k] = p.tasks[k] + id_offset;
      }
      ends_.PushBack(*arena_, static_cast<uint32_t>(task_ids_.size()));
      cardinality_.PushBack(*arena_, p.cardinality);
      copies_.PushBack(*arena_, p.copies);
    }
  }
}

void ColumnarPlan::AppendToPlan(DecompositionPlan* out,
                                TaskId id_offset) const {
  out->Reserve(out->placements().size() + num_placements());
  for (size_t i = 0; i < num_placements(); ++i) {
    const PlacementView p = view(i);
    std::vector<TaskId> tasks(p.tasks, p.tasks + p.num_tasks);
    if (id_offset != 0) {
      for (TaskId& id : tasks) id += id_offset;
    }
    out->Add(p.cardinality, p.copies, std::move(tasks));
  }
}

DecompositionPlan ColumnarPlan::ToPlan() const {
  DecompositionPlan out;
  AppendToPlan(&out);
  return out;
}

ColumnarPlan ColumnarPlan::FromPlan(const DecompositionPlan& plan,
                                    ResourceGovernor* governor) {
  ColumnarPlan out(governor);
  out.AppendPlan(plan);
  return out;
}

void ColumnarPlan::Clear() {
  task_ids_.Detach();
  ends_.Detach();
  cardinality_.Detach();
  copies_.Detach();
  arena_->Reset();
}

double ColumnarPlan::TotalCost(const BinProfile& profile) const {
  // Per-cardinality cost table: the sweep reads two dense u32 columns and
  // one small table instead of chasing per-placement bin structs.
  const std::vector<TaskBin>& bins = profile.bins();
  std::vector<double> cost_of(bins.size() + 1, 0.0);
  for (const TaskBin& bin : bins) cost_of[bin.cardinality] = bin.cost;
  double cost = 0.0;
  const size_t n = num_placements();
  for (size_t i = 0; i < n; ++i) {
    if (cardinality_[i] < cost_of.size()) {
      cost += static_cast<double>(copies_[i]) * cost_of[cardinality_[i]];
    }
  }
  return cost;
}

std::vector<uint64_t> ColumnarPlan::BinCounts(uint32_t max_cardinality) const {
  std::vector<uint64_t> counts(max_cardinality + 1, 0);
  const size_t n = num_placements();
  for (size_t i = 0; i < n; ++i) {
    if (cardinality_[i] <= max_cardinality) {
      counts[cardinality_[i]] += copies_[i];
    }
  }
  return counts;
}

uint64_t ColumnarPlan::TotalBinInstances() const {
  uint64_t total = 0;
  const size_t n = num_placements();
  for (size_t i = 0; i < n; ++i) total += copies_[i];
  return total;
}

std::vector<double> ColumnarPlan::PerTaskReliability(const BinProfile& profile,
                                                     size_t n) const {
  // Per-cardinality log-weight table, then one flat sweep: placement i
  // scatters `copies * w[l]` into theta over its id range.
  const std::vector<double>& log_weights = profile.log_weights();
  std::vector<double> theta(n, 0.0);
  const size_t placements = num_placements();
  size_t begin = 0;
  for (size_t i = 0; i < placements; ++i) {
    const size_t end = ends_[i];
    const double w = log_weights[cardinality_[i] - 1] *
                     static_cast<double>(copies_[i]);
    for (size_t k = begin; k < end; ++k) {
      const TaskId id = task_ids_[k];
      if (id < n) theta[id] += w;
    }
    begin = end;
  }
  std::vector<double> rel(n);
  for (size_t i = 0; i < n; ++i) rel[i] = InverseLogReduction(theta[i]);
  return rel;
}

}  // namespace slade
