#include "solver/exact_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "common/math_util.h"

namespace slade {

namespace {

// Branch-and-bound state for the single-task optimum.
struct BnB {
  const BinProfile& profile;
  uint64_t budget;
  uint64_t nodes = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<uint32_t> best_counts;
  std::vector<uint32_t> counts;
  double min_cost_per_weight = 0.0;

  explicit BnB(const BinProfile& p, uint64_t node_budget)
      : profile(p), budget(node_budget) {
    counts.assign(p.max_cardinality(), 0);
    min_cost_per_weight = std::numeric_limits<double>::infinity();
    for (uint32_t l = 1; l <= p.max_cardinality(); ++l) {
      const TaskBin& b = p.bin(l);
      min_cost_per_weight = std::min(
          min_cost_per_weight, b.cost_per_task() / b.log_weight());
    }
  }

  Status Search(uint32_t start, double remaining, double cost) {
    for (uint32_t l = start; l <= profile.max_cardinality(); ++l) {
      if (++nodes > budget) {
        return Status::ResourceExhausted(
            "single-task branch-and-bound exceeded node budget");
      }
      const TaskBin& b = profile.bin(l);
      const double new_cost = cost + b.cost_per_task();
      if (new_cost >= best_cost) continue;
      const double new_remaining = remaining - b.log_weight();
      counts[l - 1] += 1;
      if (new_remaining <= kRelEps) {
        best_cost = new_cost;
        best_counts = counts;
      } else if (new_cost + new_remaining * min_cost_per_weight <
                 best_cost) {
        SLADE_RETURN_NOT_OK(Search(l, new_remaining, new_cost));
      }
      counts[l - 1] -= 1;
    }
    return Status::OK();
  }
};

}  // namespace

Result<SingleTaskOptimum> OptimalSingleTaskCombination(
    const BinProfile& profile, double theta, uint64_t node_budget) {
  if (!(theta > 0.0)) {
    return Status::InvalidArgument("theta must be positive");
  }
  BnB bnb(profile, node_budget);
  SLADE_RETURN_NOT_OK(bnb.Search(1, theta, 0.0));
  SingleTaskOptimum opt;
  opt.unit_cost = bnb.best_cost;
  for (uint32_t l = 1; l <= profile.max_cardinality(); ++l) {
    if (bnb.best_counts.size() >= l && bnb.best_counts[l - 1] > 0) {
      opt.parts.emplace_back(l, bnb.best_counts[l - 1]);
    }
  }
  return opt;
}

namespace {

using StateKey = std::vector<int64_t>;

StateKey MakeKey(const std::vector<double>& residuals) {
  StateKey key(residuals.size());
  for (size_t i = 0; i < residuals.size(); ++i) {
    const double clamped = std::max(residuals[i], 0.0);
    key[i] = static_cast<int64_t>(std::llround(clamped * 1e7));
  }
  return key;
}

struct SearchAction {
  uint32_t cardinality = 0;
  std::vector<TaskId> tasks;
};

struct NodeInfo {
  double cost = std::numeric_limits<double>::infinity();
  StateKey parent;
  SearchAction action;
};

// Enumerates all size-`s` subsets of `active` via index combinations,
// invoking `fn` with each subset.
template <typename Fn>
void ForEachSubset(const std::vector<TaskId>& active, size_t s, Fn&& fn) {
  std::vector<size_t> idx(s);
  for (size_t i = 0; i < s; ++i) idx[i] = i;
  while (true) {
    std::vector<TaskId> subset(s);
    for (size_t i = 0; i < s; ++i) subset[i] = active[idx[i]];
    fn(subset);
    // Next combination.
    size_t i = s;
    while (i > 0) {
      --i;
      if (idx[i] != i + active.size() - s) {
        ++idx[i];
        for (size_t j = i + 1; j < s; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (s == 0) return;
  }
}

}  // namespace

Result<DecompositionPlan> ExactSmallSolver::Solve(
    const CrowdsourcingTask& task, const BinProfile& profile) {
  const size_t n = task.size();
  if (n > 10) {
    return Status::InvalidArgument(
        "ExactSmallSolver is exponential; refusing n > 10 (got " +
        std::to_string(n) + ")");
  }
  const uint32_t m = profile.max_cardinality();

  // Uniform-cost search over residual vectors.
  std::map<StateKey, NodeInfo> nodes;
  using QueueEntry = std::pair<double, StateKey>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      frontier;

  std::vector<double> start_res(task.thetas());
  const StateKey start = MakeKey(start_res);
  nodes[start] = NodeInfo{0.0, {}, {}};
  frontier.emplace(0.0, start);

  uint64_t expanded = 0;
  StateKey goal;
  bool found = false;

  while (!frontier.empty()) {
    auto [cost, key] = frontier.top();
    frontier.pop();
    auto it = nodes.find(key);
    if (it == nodes.end() || cost > it->second.cost + 1e-12) continue;

    // Goal test: all residuals zero.
    bool done = true;
    std::vector<TaskId> active;
    for (size_t i = 0; i < n; ++i) {
      if (key[i] > 0) {
        done = false;
        active.push_back(static_cast<TaskId>(i));
      }
    }
    if (done) {
      goal = key;
      found = true;
      break;
    }
    if (++expanded > state_budget_) {
      return Status::ResourceExhausted(
          "exact search exceeded its state budget");
    }

    for (uint32_t l = 1; l <= m; ++l) {
      const TaskBin& bin = profile.bin(l);
      const size_t s = std::min<size_t>(l, active.size());
      const int64_t w_fixed =
          static_cast<int64_t>(std::llround(bin.log_weight() * 1e7));
      ForEachSubset(active, s, [&](const std::vector<TaskId>& subset) {
        StateKey next = key;
        for (TaskId id : subset) {
          next[id] = std::max<int64_t>(0, next[id] - w_fixed);
        }
        const double next_cost = cost + bin.cost;
        auto [slot, inserted] =
            nodes.try_emplace(next, NodeInfo{});
        if (inserted || next_cost < slot->second.cost - 1e-12) {
          slot->second.cost = next_cost;
          slot->second.parent = key;
          slot->second.action = SearchAction{l, subset};
          frontier.emplace(next_cost, next);
        }
      });
    }
  }

  if (!found) {
    return Status::Internal("exact search exhausted frontier without goal");
  }

  // Reconstruct the plan by walking parents back to the start state.
  DecompositionPlan plan;
  std::vector<SearchAction> actions;
  StateKey cur = goal;
  while (cur != start) {
    const NodeInfo& info = nodes.at(cur);
    actions.push_back(info.action);
    cur = info.parent;
  }
  for (auto it2 = actions.rbegin(); it2 != actions.rend(); ++it2) {
    plan.Add(it2->cardinality, 1, it2->tasks);
  }
  return plan;
}

}  // namespace slade
