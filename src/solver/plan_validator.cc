#include "solver/plan_validator.h"

#include <algorithm>

#include "common/math_util.h"
#include "solver/plan_arena.h"

namespace slade {
namespace {

// Shared validation core, templated over the placement accessor so the AoS
// and columnar paths run the identical fused loop: bounds check, duplicate
// check and reliability accumulation in one pass per placement.
//
// Duplicate detection uses an epoch-stamped scratch array instead of a
// per-placement unordered_set: `last_seen[id] == epoch` iff `id` already
// appeared in the current placement. Advancing the epoch retires all
// stamps in O(1), so a 10^5-placement plan costs one n-sized allocation
// total instead of 10^5 hash-set rebuilds.
template <typename ViewFn>
Result<ValidationReport> ValidateImpl(size_t num_placements, ViewFn view,
                                      const CrowdsourcingTask& task,
                                      const BinProfile& profile) {
  const size_t n = task.size();
  const uint32_t max_cardinality = profile.max_cardinality();
  const std::vector<double>& log_weights = profile.log_weights();

  // Cost is accumulated inside the same sweep, through a per-cardinality
  // table indexed only *after* the cardinality check -- a malformed plan
  // must never drive a profile lookup (TotalCost would read out of
  // bounds on an unknown cardinality).
  std::vector<double> cost_of(max_cardinality + 1, 0.0);
  for (const TaskBin& bin : profile.bins()) {
    if (bin.cardinality <= max_cardinality) {
      cost_of[bin.cardinality] = bin.cost;
    }
  }
  double total_cost = 0.0;

  std::vector<double> accumulated(n, 0.0);
  std::vector<uint32_t> last_seen(n, 0);
  uint32_t epoch = 0;

  for (size_t pi = 0; pi < num_placements; ++pi) {
    const ColumnarPlan::PlacementView p = view(pi);
    if (p.cardinality == 0 || p.cardinality > max_cardinality) {
      return Status::InvalidArgument(
          "placement " + std::to_string(pi) + " uses cardinality " +
          std::to_string(p.cardinality) + " outside profile (m=" +
          std::to_string(max_cardinality) + ")");
    }
    if (p.num_tasks > p.cardinality) {
      return Status::InvalidArgument(
          "placement " + std::to_string(pi) + " holds " +
          std::to_string(p.num_tasks) + " tasks in a bin of cardinality " +
          std::to_string(p.cardinality));
    }
    ++epoch;
    if (epoch == 0) {  // wrapped: restamp the scratch and restart epochs
      std::fill(last_seen.begin(), last_seen.end(), 0);
      epoch = 1;
    }
    total_cost += static_cast<double>(p.copies) * cost_of[p.cardinality];
    const double w = log_weights[p.cardinality - 1] *
                     static_cast<double>(p.copies);
    for (uint32_t j = 0; j < p.num_tasks; ++j) {
      const TaskId id = p.tasks[j];
      if (id >= n) {
        return Status::OutOfRange("placement " + std::to_string(pi) +
                                  " references task " + std::to_string(id) +
                                  " but n=" + std::to_string(n));
      }
      if (last_seen[id] == epoch) {
        return Status::InvalidArgument(
            "placement " + std::to_string(pi) + " lists task " +
            std::to_string(id) +
            " twice (a bin holds *different* atomic tasks)");
      }
      last_seen[id] = epoch;
      accumulated[id] += w;
    }
  }

  ValidationReport report;
  report.total_cost = total_cost;
  report.feasible = true;
  bool first = true;
  for (size_t i = 0; i < n; ++i) {
    const double margin = accumulated[i] - task.theta(static_cast<TaskId>(i));
    if (first || margin < report.worst_log_margin) {
      report.worst_log_margin = margin;
      report.worst_task = static_cast<TaskId>(i);
      first = false;
    }
    if (!ApproxGe(accumulated[i], task.theta(static_cast<TaskId>(i)))) {
      report.feasible = false;
    }
  }
  return report;
}

}  // namespace

Result<ValidationReport> ValidatePlan(const DecompositionPlan& plan,
                                      const CrowdsourcingTask& task,
                                      const BinProfile& profile) {
  const std::vector<BinPlacement>& placements = plan.placements();
  return ValidateImpl(
      placements.size(),
      [&placements](size_t i) {
        const BinPlacement& p = placements[i];
        return ColumnarPlan::PlacementView{
            p.cardinality, p.copies, p.tasks.data(),
            static_cast<uint32_t>(p.tasks.size())};
      },
      task, profile);
}

Result<ValidationReport> ValidatePlan(const ColumnarPlan& plan,
                                      const CrowdsourcingTask& task,
                                      const BinProfile& profile) {
  return ValidateImpl(
      plan.num_placements(), [&plan](size_t i) { return plan.view(i); },
      task, profile);
}

}  // namespace slade
