#include "solver/plan_validator.h"

#include <unordered_set>

#include "common/math_util.h"

namespace slade {

Result<ValidationReport> ValidatePlan(const DecompositionPlan& plan,
                                      const CrowdsourcingTask& task,
                                      const BinProfile& profile) {
  const size_t n = task.size();
  std::vector<double> accumulated(n, 0.0);

  std::unordered_set<TaskId> dedup;
  for (size_t pi = 0; pi < plan.placements().size(); ++pi) {
    const BinPlacement& p = plan.placements()[pi];
    if (p.cardinality == 0 || p.cardinality > profile.max_cardinality()) {
      return Status::InvalidArgument(
          "placement " + std::to_string(pi) + " uses cardinality " +
          std::to_string(p.cardinality) + " outside profile (m=" +
          std::to_string(profile.max_cardinality()) + ")");
    }
    if (p.tasks.size() > p.cardinality) {
      return Status::InvalidArgument(
          "placement " + std::to_string(pi) + " holds " +
          std::to_string(p.tasks.size()) + " tasks in a bin of cardinality " +
          std::to_string(p.cardinality));
    }
    dedup.clear();
    for (TaskId id : p.tasks) {
      if (id >= n) {
        return Status::OutOfRange("placement " + std::to_string(pi) +
                                  " references task " + std::to_string(id) +
                                  " but n=" + std::to_string(n));
      }
      if (!dedup.insert(id).second) {
        return Status::InvalidArgument(
            "placement " + std::to_string(pi) + " lists task " +
            std::to_string(id) +
            " twice (a bin holds *different* atomic tasks)");
      }
    }
    const double w = profile.bin(p.cardinality).log_weight() *
                     static_cast<double>(p.copies);
    for (TaskId id : p.tasks) accumulated[id] += w;
  }

  ValidationReport report;
  report.total_cost = plan.TotalCost(profile);
  report.feasible = true;
  bool first = true;
  for (size_t i = 0; i < n; ++i) {
    const double margin = accumulated[i] - task.theta(static_cast<TaskId>(i));
    if (first || margin < report.worst_log_margin) {
      report.worst_log_margin = margin;
      report.worst_task = static_cast<TaskId>(i);
      first = false;
    }
    if (!ApproxGe(accumulated[i], task.theta(static_cast<TaskId>(i)))) {
      report.feasible = false;
    }
  }
  return report;
}

}  // namespace slade
