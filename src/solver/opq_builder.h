// Copyright (c) the SLADE reproduction authors.
// Building the Optimal Priority Queue (paper Definition 4, Algorithm 2).

#ifndef SLADE_SOLVER_OPQ_BUILDER_H_
#define SLADE_SOLVER_OPQ_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/combination.h"

namespace slade {

/// \brief The optimal priority queue (Definition 4): the Pareto frontier of
/// threshold-satisfying bin combinations over (LCM, unit cost).
///
/// Invariants (asserted by tests):
///  * every element's log_weight() >= theta (condition 3);
///  * elements are sorted by LCM strictly descending (condition 1);
///  * no element is dominated: along the queue, unit cost is strictly
///    increasing as LCM decreases (condition 2);
///  * the last element has LCM == 1 (a pure-b1 combination always
///    survives, which is what guarantees Algorithm 3 terminates).
class OptimalPriorityQueue {
 public:
  OptimalPriorityQueue(std::vector<Combination> elements, double theta);

  const std::vector<Combination>& elements() const { return elements_; }
  size_t size() const { return elements_.size(); }
  const Combination& element(size_t i) const { return elements_[i]; }

  /// The front OPQ_1: largest LCM, lowest unit cost (Lemma 2).
  const Combination& front() const { return elements_.front(); }

  /// The log-domain threshold the queue was built for.
  double theta() const { return theta_; }

  /// Estimated resident size of this queue in bytes (object plus element
  /// storage plus each element's parts). Used by OpqCache to charge its
  /// ResourceGovernor for capacity-bounded eviction.
  size_t EstimatedBytes() const;

  /// Multi-line rendering mirroring the paper's Table 3.
  std::string ToString() const;

 private:
  std::vector<Combination> elements_;
  double theta_;
};

/// \brief Statistics from the Algorithm 2 enumeration (used by the
/// ablation benchmark to quantify the Lemma 1 pruning rule and surfaced
/// through OpqCache / `slade_cli batch --verbose`).
///
/// `nodes_visited` is the same counter the node budget is charged against,
/// and it is filled even when the build fails with ResourceExhausted (it
/// then reads node_budget + 1: the visit that tripped the budget).
struct OpqBuildStats {
  uint64_t nodes_visited = 0;
  uint64_t nodes_pruned_dominated = 0;
  uint64_t insertions = 0;

  /// Accumulates `other` into this (aggregation across many builds).
  void Accumulate(const OpqBuildStats& other) {
    nodes_visited += other.nodes_visited;
    nodes_pruned_dominated += other.nodes_pruned_dominated;
    insertions += other.insertions;
  }
};

/// \brief Options for BuildOpq.
struct OpqBuildOptions {
  /// Abort with ResourceExhausted beyond this many DFS nodes.
  uint64_t node_budget = 50'000'000;
  /// Disable the Lemma 1 dominance pruning of *partial* combinations
  /// (ablation only; the result is identical, just slower).
  bool enable_partial_pruning = true;
};

/// \brief Runs the Algorithm 2 depth-first enumeration with Lemma 1
/// dominance pruning and returns the optimal priority queue for reliability
/// threshold `t` (0 < t < 1).
///
/// This is the production builder: an iterative DFS over an explicit frame
/// stack (no recursion, so adversarially deep profiles cannot blow the call
/// stack) that mutates one in-place count array with push/pop deltas and
/// reads the profile through BinProfile's flat SoA views. The Pareto
/// frontier is kept sorted by LCM descending / unit cost ascending, so the
/// dominance test is a binary search and an insertion evicts a contiguous
/// range. The visited-node inner loop performs no heap allocation; only
/// frontier insertions (rare, counted in OpqBuildStats::insertions) and
/// one-off setup allocate.
Result<OptimalPriorityQueue> BuildOpq(const BinProfile& profile, double t,
                                      const OpqBuildOptions& options = {},
                                      OpqBuildStats* stats = nullptr);

/// \brief The original recursive Algorithm 2 enumerator, kept verbatim as a
/// differential-test / ablation reference. Produces an element-for-element
/// identical queue (same counts, LCM, unit-cost order -- pinned by
/// opq_builder_differential_test) but heap-copies the candidate count
/// vector on every visited node and scans the queue linearly for
/// dominance, so it is many times slower and can exhaust the call stack on
/// profiles with tiny log-weights. Not for production use.
Result<OptimalPriorityQueue> BuildOpqReference(
    const BinProfile& profile, double t, const OpqBuildOptions& options = {},
    OpqBuildStats* stats = nullptr);

}  // namespace slade

#endif  // SLADE_SOLVER_OPQ_BUILDER_H_
