// Copyright (c) the SLADE reproduction authors.
// Building the Optimal Priority Queue (paper Definition 4, Algorithm 2).

#ifndef SLADE_SOLVER_OPQ_BUILDER_H_
#define SLADE_SOLVER_OPQ_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/combination.h"

namespace slade {

/// \brief The optimal priority queue (Definition 4): the Pareto frontier of
/// threshold-satisfying bin combinations over (LCM, unit cost).
///
/// Invariants (asserted by tests):
///  * every element's log_weight() >= theta (condition 3);
///  * elements are sorted by LCM strictly descending (condition 1);
///  * no element is dominated: along the queue, unit cost is strictly
///    increasing as LCM decreases (condition 2);
///  * the last element has LCM == 1 (a pure-b1 combination always
///    survives, which is what guarantees Algorithm 3 terminates).
class OptimalPriorityQueue {
 public:
  OptimalPriorityQueue(std::vector<Combination> elements, double theta);

  const std::vector<Combination>& elements() const { return elements_; }
  size_t size() const { return elements_.size(); }
  const Combination& element(size_t i) const { return elements_[i]; }

  /// The front OPQ_1: largest LCM, lowest unit cost (Lemma 2).
  const Combination& front() const { return elements_.front(); }

  /// The log-domain threshold the queue was built for.
  double theta() const { return theta_; }

  /// Estimated resident size of this queue in bytes (object plus element
  /// storage plus each element's parts). Used by OpqCache to charge its
  /// ResourceGovernor for capacity-bounded eviction.
  size_t EstimatedBytes() const;

  /// Multi-line rendering mirroring the paper's Table 3.
  std::string ToString() const;

 private:
  std::vector<Combination> elements_;
  double theta_;
};

/// \brief Statistics from the Algorithm 2 enumeration (used by the
/// ablation benchmark to quantify the Lemma 1 pruning rule).
struct OpqBuildStats {
  uint64_t nodes_visited = 0;
  uint64_t nodes_pruned_dominated = 0;
  uint64_t insertions = 0;
};

/// \brief Options for BuildOpq.
struct OpqBuildOptions {
  /// Abort with ResourceExhausted beyond this many DFS nodes.
  uint64_t node_budget = 50'000'000;
  /// Disable the Lemma 1 dominance pruning of *partial* combinations
  /// (ablation only; the result is identical, just slower).
  bool enable_partial_pruning = true;
};

/// \brief Runs the Algorithm 2 depth-first enumeration with Lemma 1
/// dominance pruning and returns the optimal priority queue for reliability
/// threshold `t` (0 < t < 1).
Result<OptimalPriorityQueue> BuildOpq(const BinProfile& profile, double t,
                                      const OpqBuildOptions& options = {},
                                      OpqBuildStats* stats = nullptr);

}  // namespace slade

#endif  // SLADE_SOLVER_OPQ_BUILDER_H_
