#include "solver/opq_set_builder.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace slade {

Result<size_t> GroupIndexOf(const std::vector<double>& uppers,
                            double theta) {
  auto it = std::lower_bound(uppers.begin(), uppers.end(), theta - kRelEps);
  if (it == uppers.end()) {
    return Status::OutOfRange("theta " + std::to_string(theta) +
                              " above the largest interval bound " +
                              std::to_string(uppers.back()));
  }
  return static_cast<size_t>(it - uppers.begin());
}

Result<size_t> OpqSet::GroupOf(double theta) const {
  return GroupIndexOf(uppers_, theta);
}

Result<std::vector<double>> ComputeThetaPartition(double theta_min,
                                                  double theta_max) {
  if (!(theta_min > 0.0) || theta_min > theta_max) {
    return Status::InvalidArgument(
        "need 0 < theta_min <= theta_max in ComputeThetaPartition");
  }
  // Algorithm 4: alpha = floor(log2 theta_min); intervals with upper
  // bounds 2^{alpha+i+1}, the last clipped to theta_max.
  const double alpha = std::floor(std::log2(theta_min));
  std::vector<double> uppers;
  for (int i = 0;; ++i) {
    const double lower = std::exp2(alpha + i);
    if (!(lower < theta_max)) break;
    uppers.push_back(std::min(std::exp2(alpha + i + 1), theta_max));
  }
  // Degenerate case (theta_min == theta_max == exact power of two): the
  // loop body never runs; a single queue at theta_max covers everything.
  if (uppers.empty()) uppers.push_back(theta_max);
  return uppers;
}

Result<OpqSet> BuildOpqSet(const BinProfile& profile, double theta_min,
                           double theta_max,
                           const OpqBuildOptions& options) {
  SLADE_ASSIGN_OR_RETURN(std::vector<double> uppers,
                         ComputeThetaPartition(theta_min, theta_max));

  std::vector<OptimalPriorityQueue> queues;
  queues.reserve(uppers.size());
  for (double tau : uppers) {
    // Line 10 (with the paper's sign typo fixed): t = 1 - e^{-tau}.
    const double t = InverseLogReduction(tau);
    SLADE_ASSIGN_OR_RETURN(OptimalPriorityQueue q,
                           BuildOpq(profile, t, options));
    queues.push_back(std::move(q));
  }
  return OpqSet(std::move(uppers), std::move(queues));
}

}  // namespace slade
