// Copyright (c) the SLADE reproduction authors.
// Building the set of optimal priority queues over threshold intervals
// (paper Algorithm 4, Example 10).

#ifndef SLADE_SOLVER_OPQ_SET_BUILDER_H_
#define SLADE_SOLVER_OPQ_SET_BUILDER_H_

#include <vector>

#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/opq_builder.h"

namespace slade {

/// \brief The partition of the log-threshold range [theta_min, theta_max]
/// into power-of-two intervals, with one OPQ built per interval upper
/// bound (Algorithm 4).
///
/// Interval upper bounds are `tau_i = min(2^{alpha+i+1}, theta_max)` with
/// `alpha = floor(log2 theta_min)`; the queue for interval i is built for
/// the surrogate homogeneous threshold `t = 1 - e^{-tau_i}`, which upper-
/// bounds every task threshold falling into the interval.
class OpqSet {
 public:
  OpqSet(std::vector<double> uppers, std::vector<OptimalPriorityQueue> queues)
      : uppers_(std::move(uppers)), queues_(std::move(queues)) {}

  size_t size() const { return queues_.size(); }
  /// Upper bound tau_i of interval `i` (ascending in i).
  double upper(size_t i) const { return uppers_[i]; }
  const OptimalPriorityQueue& queue(size_t i) const { return queues_[i]; }

  /// Index of the interval whose queue covers log-threshold `theta`
  /// (the lowest i with theta <= tau_i; Algorithm 5 lines 5-7).
  /// `theta` must be <= the largest upper bound.
  Result<size_t> GroupOf(double theta) const;

 private:
  std::vector<double> uppers_;
  std::vector<OptimalPriorityQueue> queues_;
};

/// \brief The Algorithm 4 interval upper bounds for log-threshold range
/// [theta_min, theta_max]: `tau_i = min(2^{alpha+i+1}, theta_max)` with
/// `alpha = floor(log2 theta_min)`, ascending. Never empty. Exposed
/// separately from BuildOpqSet so callers that memoize queue builds (the
/// batch engine's OpqCache) can shard tasks by threshold group without
/// forcing a fresh build per group. Requires 0 < theta_min <= theta_max.
Result<std::vector<double>> ComputeThetaPartition(double theta_min,
                                                  double theta_max);

/// \brief Index of the lowest partition interval whose upper bound covers
/// log-threshold `theta` (with the kRelEps tolerance OpqSet::GroupOf
/// uses). Shared by OpqSet and the batch engine's shard routing so the
/// two can never diverge. OutOfRange if theta exceeds the last bound.
Result<size_t> GroupIndexOf(const std::vector<double>& uppers, double theta);

/// \brief Runs Algorithm 4 for log-threshold range [theta_min, theta_max].
/// Requires 0 < theta_min <= theta_max.
Result<OpqSet> BuildOpqSet(const BinProfile& profile, double theta_min,
                           double theta_max,
                           const OpqBuildOptions& options = {});

}  // namespace slade

#endif  // SLADE_SOLVER_OPQ_SET_BUILDER_H_
