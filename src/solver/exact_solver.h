// Copyright (c) the SLADE reproduction authors.
// Exact reference solvers, used to validate the approximation algorithms
// on small instances (SLADE is NP-hard, Theorem 1, so these do not scale).

#ifndef SLADE_SOLVER_EXACT_SOLVER_H_
#define SLADE_SOLVER_EXACT_SOLVER_H_

#include <cstdint>

#include "solver/combination.h"
#include "solver/solver.h"

namespace slade {

/// \brief Minimum-cost multiset of bins whose summed log weights reach
/// `theta` -- the optimal way to satisfy ONE atomic task (an unbounded
/// min-knapsack covering problem, solved by branch-and-bound with the
/// fractional cost-per-weight lower bound).
///
/// Multiplying by n, this equals the LP lower bound `n * OPQ_1.UC` used in
/// the Theorem 2 proof, so tests compare it against the OPQ front.
struct SingleTaskOptimum {
  /// Chosen (cardinality, count) parts.
  Combination::Parts parts;
  /// Per-task cost of the parts, `sum count * c_l / l`.
  double unit_cost = 0.0;
};
Result<SingleTaskOptimum> OptimalSingleTaskCombination(
    const BinProfile& profile, double theta,
    uint64_t node_budget = 10'000'000);

/// \brief Exhaustive (Dijkstra / uniform-cost search) exact SLADE solver
/// for tiny instances.
///
/// States are the vectors of outstanding log residuals; actions post one
/// bin of some cardinality filled with some subset of still-unsatisfied
/// tasks. Exponential in every direction -- intended for n <= ~6 and
/// small profiles in tests and ablation benchmarks only.
class ExactSmallSolver final : public Solver {
 public:
  explicit ExactSmallSolver(uint64_t state_budget = 2'000'000)
      : state_budget_(state_budget) {}

  std::string name() const override { return "Exact"; }

  /// Fails with ResourceExhausted when the state budget is hit and with
  /// InvalidArgument for n > 10 (guarding against accidental misuse).
  Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                  const BinProfile& profile) override;

 private:
  uint64_t state_budget_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_EXACT_SOLVER_H_
