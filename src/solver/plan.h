// Copyright (c) the SLADE reproduction authors.
// Decomposition plans (paper Definition 3).

#ifndef SLADE_SOLVER_PLAN_H_
#define SLADE_SOLVER_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"

namespace slade {

/// \brief One group of identical posted bins: `copies` instances of an
/// l-cardinality bin, each containing exactly the listed atomic tasks.
///
/// `tasks.size()` may be less than `cardinality`: Definition 1 allows a bin
/// to contain *at most* l distinct atomic tasks, and the OPQ padding path
/// (Algorithm 3 lines 8-10) posts partially filled bins for leftover tasks.
struct BinPlacement {
  uint32_t cardinality = 0;
  uint32_t copies = 1;
  std::vector<TaskId> tasks;
};

/// \brief A decomposition plan `DP_T`: which bins are posted and which
/// atomic tasks each contains.
///
/// The paper's plan notation {tau_i, b_i} only counts bins per cardinality;
/// we additionally record the task-to-bin mapping so that plans can be
/// validated (plan_validator.h) and executed on the platform simulator
/// (simulator/executor.h).
class DecompositionPlan {
 public:
  DecompositionPlan() = default;

  /// Appends a placement. `tasks` must be distinct and fit the cardinality;
  /// violations are caught by the validator rather than here (solvers are
  /// trusted, external input is not).
  void Add(uint32_t cardinality, uint32_t copies, std::vector<TaskId> tasks);

  const std::vector<BinPlacement>& placements() const { return placements_; }

  /// Total incentive cost `sum tau_l * c_l` under `profile`.
  double TotalCost(const BinProfile& profile) const;

  /// Bin-usage counts tau_l indexed by cardinality (index 0 unused).
  std::vector<uint64_t> BinCounts(uint32_t max_cardinality) const;

  /// Total number of posted bin instances (sum of copies).
  uint64_t TotalBinInstances() const;

  /// Per-task achieved reliability (Equation 1) under `profile`.
  /// `n` is the number of atomic tasks; tasks never placed get 0.
  std::vector<double> PerTaskReliability(const BinProfile& profile,
                                         size_t n) const;

  /// Merges `other`'s placements into this plan (used by OPQ-Extended to
  /// combine per-group plans, Algorithm 5 line 15).
  void Append(DecompositionPlan other);

  /// Human-readable summary: bin counts and total cost.
  std::string Summary(const BinProfile& profile) const;

  void Reserve(size_t n) { placements_.reserve(n); }
  bool empty() const { return placements_.empty(); }

 private:
  std::vector<BinPlacement> placements_;
};

}  // namespace slade

#endif  // SLADE_SOLVER_PLAN_H_
