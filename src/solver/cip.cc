#include "solver/cip.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "solver/simplex.h"

namespace slade {

namespace {

// Residual demand after applying multiplicities `y`.
std::vector<double> ComputeResidual(const CipInstance& inst,
                                    const std::vector<uint64_t>& y) {
  std::vector<double> residual = inst.demand;
  for (size_t j = 0; j < inst.columns.size(); ++j) {
    if (y[j] == 0) continue;
    const CipColumn& col = inst.columns[j];
    const double add = col.weight * static_cast<double>(y[j]);
    for (uint32_t row : col.rows) residual[row] -= add;
  }
  return residual;
}

bool AllSatisfied(const std::vector<double>& residual) {
  for (double r : residual) {
    if (r > kRelEps) return false;
  }
  return true;
}

// Greedy repair: repeatedly add the column with the best
// covered-residual-per-cost ratio until every demand is met. This is the
// classical greedy for covering programs and always terminates because
// every column has positive weight.
double GreedyRepair(const CipInstance& inst, std::vector<uint64_t>* y,
                    std::vector<double>* residual) {
  double added_cost = 0.0;
  while (!AllSatisfied(*residual)) {
    size_t best = inst.columns.size();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < inst.columns.size(); ++j) {
      const CipColumn& col = inst.columns[j];
      double covered = 0.0;
      for (uint32_t row : col.rows) {
        const double r = (*residual)[row];
        if (r > kRelEps) covered += std::min(r, col.weight);
      }
      if (covered <= 0.0) continue;
      const double ratio = col.cost / covered;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = j;
      }
    }
    if (best == inst.columns.size()) {
      // No column covers any remaining demand: infeasible input; caller
      // verified coverage, so this is unreachable, but avoid a spin.
      break;
    }
    const CipColumn& col = inst.columns[best];
    ++(*y)[best];
    added_cost += col.cost;
    for (uint32_t row : col.rows) (*residual)[row] -= col.weight;
  }
  return added_cost;
}

double TotalCost(const CipInstance& inst, const std::vector<uint64_t>& y) {
  double cost = 0.0;
  for (size_t j = 0; j < inst.columns.size(); ++j) {
    cost += static_cast<double>(y[j]) * inst.columns[j].cost;
  }
  return cost;
}

}  // namespace

Result<CipSolution> SolveCip(const CipInstance& instance,
                             const CipSolveOptions& options) {
  const size_t num_rows = instance.demand.size();
  const size_t num_cols = instance.columns.size();
  if (num_rows == 0 || num_cols == 0) {
    return Status::InvalidArgument("CIP needs rows and columns");
  }
  // Coverage check (feasibility precondition).
  std::vector<bool> covered(num_rows, false);
  for (const CipColumn& col : instance.columns) {
    if (col.weight <= 0.0 || col.cost <= 0.0) {
      return Status::InvalidArgument(
          "CIP columns need positive weight and cost");
    }
    for (uint32_t row : col.rows) {
      if (row >= num_rows) {
        return Status::OutOfRange("CIP column references row " +
                                  std::to_string(row));
      }
      covered[row] = true;
    }
  }
  for (size_t i = 0; i < num_rows; ++i) {
    if (!covered[i] && instance.demand[i] > kRelEps) {
      return Status::Infeasible("row " + std::to_string(i) +
                                " is covered by no column");
    }
  }

  // LP relaxation.
  LpProblem lp;
  lp.b = instance.demand;
  lp.c.reserve(num_cols);
  lp.a.assign(num_rows, std::vector<double>(num_cols, 0.0));
  for (size_t j = 0; j < num_cols; ++j) {
    const CipColumn& col = instance.columns[j];
    lp.c.push_back(col.cost);
    for (uint32_t row : col.rows) lp.a[row][j] = col.weight;
  }
  // An exhausted/failed LP falls back to the all-zero fractional point:
  // the rounding loop below then degenerates to the classical greedy
  // covering heuristic, which is always available.
  LpSolution relaxed;
  auto lp_result = SolveCoveringLp(lp, options.lp_max_iterations);
  if (lp_result.ok()) {
    relaxed = std::move(lp_result).ValueOrDie();
  } else if (lp_result.status().IsResourceExhausted()) {
    relaxed.x.assign(num_cols, 0.0);
    relaxed.objective = 0.0;
    relaxed.converged = false;
  } else {
    return lp_result.status();
  }

  // Randomized rounding with greedy repair; keep the cheapest round.
  Xoshiro256 rng(options.seed);
  CipSolution best;
  best.lp_objective = relaxed.objective;
  best.cost = std::numeric_limits<double>::infinity();
  const uint32_t rounds = std::max<uint32_t>(options.rounding_rounds, 1);
  for (uint32_t round = 0; round < rounds; ++round) {
    std::vector<uint64_t> y(num_cols, 0);
    for (size_t j = 0; j < num_cols; ++j) {
      const double v = std::max(relaxed.x[j], 0.0);
      const double fl = std::floor(v);
      y[j] = static_cast<uint64_t>(fl);
      if (rng.NextBernoulli(v - fl)) ++y[j];
    }
    std::vector<double> residual = ComputeResidual(instance, y);
    GreedyRepair(instance, &y, &residual);
    const double cost = TotalCost(instance, y);
    if (cost < best.cost) {
      best.cost = cost;
      best.y = std::move(y);
    }
  }
  return best;
}

}  // namespace slade
