// Copyright (c) the SLADE reproduction authors.
// The budget-constrained dual of SLADE (our extension): instead of
// "reach reliability t at minimum cost", answer "how much reliability can
// a fixed budget buy?" -- the question a requester with a grant line item
// actually asks. Not in the paper, but a direct corollary of its machinery:
// decomposition cost is non-decreasing in the threshold, so the maximal
// affordable threshold can be found by bisection over Algorithm 3.

#ifndef SLADE_SOLVER_BUDGET_SOLVER_H_
#define SLADE_SOLVER_BUDGET_SOLVER_H_

#include "solver/plan.h"
#include "solver/solver.h"

namespace slade {

/// \brief Options for MaxReliabilityUnderBudget.
struct BudgetOptions {
  /// Bisection iterations over the log-threshold; 40 pins theta to ~1e-12
  /// relative precision.
  int bisection_iterations = 40;
  /// Search range for the common threshold.
  double t_lo = 0.5;
  double t_hi = 0.995;
  SolverOptions solver_options;
};

/// \brief Result of the budget search.
struct BudgetResult {
  /// The largest threshold whose plan fits the budget.
  double threshold = 0.0;
  /// The plan achieving it.
  DecompositionPlan plan;
  /// Its cost (<= budget).
  double cost = 0.0;
};

/// \brief Finds the maximum homogeneous reliability threshold `t` such
/// that an OPQ-Based decomposition of `n` atomic tasks costs at most
/// `budget`, by bisection on the log-threshold.
///
/// Plan cost under Algorithm 3 is non-decreasing in t up to the
/// leftover-handling steps, which can make it locally flat but never
/// reverses the global trend; the search therefore tracks the best
/// *verified-affordable* threshold rather than trusting monotonicity
/// blindly. Returns Infeasible if even `t_lo` exceeds the budget.
Result<BudgetResult> MaxReliabilityUnderBudget(
    size_t n, const BinProfile& profile, double budget,
    const BudgetOptions& options = {});

}  // namespace slade

#endif  // SLADE_SOLVER_BUDGET_SOLVER_H_
