#include "solver/fixed_cardinality_solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.h"

namespace slade {

std::string FixedCardinalitySolver::name() const {
  if (cardinality_ == 0) return "Fixed-Cardinality";
  return "Fixed-Cardinality(l=" + std::to_string(cardinality_) + ")";
}

uint32_t FixedCardinalitySolver::BestCardinality(const BinProfile& profile,
                                                 double theta) {
  uint32_t best_l = 1;
  double best_per_task = std::numeric_limits<double>::infinity();
  for (uint32_t l = 1; l <= profile.max_cardinality(); ++l) {
    const TaskBin& bin = profile.bin(l);
    const double copies = std::ceil(theta / bin.log_weight() - kRelEps);
    const double per_task = copies * bin.cost_per_task();
    if (per_task < best_per_task) {
      best_per_task = per_task;
      best_l = l;
    }
  }
  return best_l;
}

Result<DecompositionPlan> FixedCardinalitySolver::Solve(
    const CrowdsourcingTask& task, const BinProfile& profile) {
  uint32_t l = cardinality_;
  if (l == 0) {
    l = BestCardinality(profile, LogReduction(task.max_threshold()));
  } else if (l > profile.max_cardinality()) {
    return Status::OutOfRange("profile has no cardinality " +
                              std::to_string(l));
  }
  const TaskBin& bin = profile.bin(l);
  const double w = bin.log_weight();
  const size_t n = task.size();

  // Bin memberships needed per task; sorted descending so that every
  // "round" of bins covers a prefix.
  std::vector<TaskId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint32_t> needed(n);
  uint32_t max_needed = 0;
  for (size_t i = 0; i < n; ++i) {
    needed[i] = static_cast<uint32_t>(
        std::ceil(task.theta(static_cast<TaskId>(i)) / w - kRelEps));
    needed[i] = std::max(needed[i], 1u);
    max_needed = std::max(max_needed, needed[i]);
  }
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return needed[a] > needed[b];
  });

  DecompositionPlan plan;
  size_t round_size = n;
  for (uint32_t round = 1; round <= max_needed; ++round) {
    // Shrink to the prefix of tasks still needing a `round`-th membership.
    while (round_size > 0 && needed[order[round_size - 1]] < round) {
      --round_size;
    }
    for (size_t start = 0; start < round_size; start += l) {
      const size_t end = std::min<size_t>(start + l, round_size);
      std::vector<TaskId> members(order.begin() + start,
                                  order.begin() + end);
      plan.Add(l, 1, std::move(members));
    }
  }
  return plan;
}

}  // namespace slade
