// Copyright (c) the SLADE reproduction authors.
// Common interface for all SLADE solvers + factory.

#ifndef SLADE_SOLVER_SOLVER_H_
#define SLADE_SOLVER_SOLVER_H_

#include <memory>
#include <string>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/plan.h"

namespace slade {

/// \brief Tuning knobs shared across solvers.
struct SolverOptions {
  /// Seed for randomized components (the baseline's randomized rounding).
  uint64_t seed = 0x51adeULL;
  /// Baseline: tasks per CIP chunk (the paper's "we only generate part of
  /// the combination instances" sampling; see baseline_solver.h).
  uint32_t baseline_chunk_size = 48;
  /// Baseline: sampled combination instances per cardinality per chunk.
  uint32_t baseline_columns_per_cardinality = 8;
  /// Baseline: randomized-rounding repetitions (cheapest kept).
  uint32_t baseline_rounding_rounds = 5;
  /// Baseline: on homogeneous input, solve one chunk CIP and replicate the
  /// integer solution across chunks instead of re-solving each chunk.
  /// Off by default: re-solving keeps the per-chunk column sampling
  /// independent, which is what the paper's randomized baseline does.
  bool baseline_reuse_homogeneous_chunks = false;
  /// Baseline: worker threads for solving chunk CIPs in parallel
  /// (chunks are independent sub-problems). 0 or 1 = serial. The result
  /// is identical regardless of thread count: chunk seeds are fixed and
  /// plans are merged in chunk order.
  uint32_t baseline_threads = 0;
  /// OPQ builder: abort enumeration beyond this many DFS nodes.
  uint64_t opq_node_budget = 50'000'000;
};

/// \brief A SLADE solver: turns (task, bin profile) into a decomposition
/// plan whose per-task reliability meets every threshold.
///
/// The SLADE problem is always feasible (bins can be repeated without
/// bound and every confidence is positive), so errors signal invalid input
/// or exhausted internal budgets, never true infeasibility.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Solver name as used in the paper's figures ("Greedy", "OPQ-Based",
  /// "OPQ-Extended", "Baseline").
  virtual std::string name() const = 0;

  /// Computes a feasible decomposition plan.
  virtual Result<DecompositionPlan> Solve(const CrowdsourcingTask& task,
                                          const BinProfile& profile) = 0;
};

/// \brief Known solver implementations.
enum class SolverKind {
  kGreedy,       ///< Algorithm 1
  kOpq,          ///< Algorithm 3 (homogeneous; rejects heterogeneous input)
  kOpqExtended,  ///< Algorithm 5 (handles both)
  kBaseline,     ///< Section 4.3 CIP reduction + LP rounding
  kRelaxedDp,    ///< Section 4.2 rod-cutting DP (requires r_l >= t_max)
};

const char* SolverKindName(SolverKind kind);

/// \brief Creates a solver instance.
std::unique_ptr<Solver> MakeSolver(SolverKind kind,
                                   const SolverOptions& options = {});

}  // namespace slade

#endif  // SLADE_SOLVER_SOLVER_H_
