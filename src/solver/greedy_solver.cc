#include "solver/greedy_solver.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"

namespace slade {

namespace {

// A task with its current threshold residual. Ordered by residual
// descending, then id ascending, so both strategies break ties identically.
struct Entry {
  double residual;
  TaskId id;
};

inline bool EntryGreater(const Entry& a, const Entry& b) {
  if (a.residual != b.residual) return a.residual > b.residual;
  return a.id < b.id;
}

// Selects the bin minimizing the Equation 4 cost-confidence ratio over the
// sorted residual prefix. `prefix[k]` = sum of the k largest residuals
// (prefix[0] = 0). Ties broken toward cheaper, then smaller bins, to keep
// the algorithm deterministic.
uint32_t SelectBin(const BinProfile& profile,
                   const std::vector<double>& prefix, size_t active) {
  const uint32_t m = profile.max_cardinality();
  uint32_t best_l = 1;
  double best_ratio = std::numeric_limits<double>::infinity();
  for (uint32_t l = 1; l <= m; ++l) {
    const TaskBin& b = profile.bin(l);
    const size_t reach = std::min<size_t>(l, active);
    const double denom =
        std::min(static_cast<double>(l) * b.log_weight(), prefix[reach]);
    if (denom <= 0.0) continue;
    const double ratio = b.cost / denom;
    const TaskBin& cur = profile.bin(best_l);
    if (ratio < best_ratio - 1e-15 ||
        (ratio < best_ratio + 1e-15 &&
         (b.cost < cur.cost || (b.cost == cur.cost && l < best_l)))) {
      best_ratio = ratio;
      best_l = l;
    }
  }
  return best_l;
}

}  // namespace

Result<DecompositionPlan> GreedySolver::Solve(const CrowdsourcingTask& task,
                                              const BinProfile& profile) {
  const size_t n = task.size();
  const uint32_t m = profile.max_cardinality();

  // Residuals sorted non-ascending (paper line 3).
  std::vector<Entry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = {task.theta(static_cast<TaskId>(i)),
                  static_cast<TaskId>(i)};
  }
  std::sort(entries.begin(), entries.end(), EntryGreater);

  size_t active = n;  // entries[0..active) have residual > 0
  DecompositionPlan plan;
  std::vector<double> prefix(m + 1, 0.0);
  std::vector<Entry> merged;  // scratch for the kFast merge
  merged.reserve(n);

  while (active > 0) {
    // Prefix sums of the top-m residuals for the Equation 4 denominator.
    const size_t top = std::min<size_t>(m, active);
    for (size_t k = 0; k < top; ++k) {
      prefix[k + 1] = prefix[k] + entries[k].residual;
    }
    for (size_t k = top; k < m; ++k) prefix[k + 1] = prefix[k];

    const uint32_t l_star = SelectBin(profile, prefix, active);
    const double w = profile.bin(l_star).log_weight();
    const size_t cover = std::min<size_t>(l_star, active);

    // How many times the exact same decision provably repeats: while the
    // leading run of equal residuals stays at least m long, the selection
    // inputs (the top-m residuals) do not change.
    size_t reps = 1;
    if (strategy_ == Strategy::kFast) {
      size_t run = 1;
      while (run < active &&
             entries[run].residual == entries[0].residual) {
        ++run;
      }
      if (cover == l_star && run >= cover + m) {
        reps = (run - m) / cover;
        if (reps == 0) reps = 1;
      }
    }

    // Lines 6-9: post the bin(s) and lower the residuals.
    for (size_t rep = 0; rep < reps; ++rep) {
      std::vector<TaskId> ids;
      ids.reserve(cover);
      const size_t begin = rep * cover;
      for (size_t k = 0; k < cover; ++k) {
        ids.push_back(entries[begin + k].id);
      }
      plan.Add(l_star, 1, std::move(ids));
    }
    const size_t touched = reps * cover;
    for (size_t k = 0; k < touched; ++k) {
      entries[k].residual = std::max(0.0, entries[k].residual - w);
    }

    if (strategy_ == Strategy::kNaive) {
      // Paper line 10: full re-rank.
      std::sort(entries.begin(), entries.begin() + active, EntryGreater);
    } else {
      // entries[0..touched) and entries[touched..active) are each sorted
      // non-ascending; a linear merge restores global order.
      merged.clear();
      size_t a = 0, b = touched;
      while (a < touched && b < active) {
        if (EntryGreater(entries[a], entries[b])) {
          merged.push_back(entries[a++]);
        } else {
          merged.push_back(entries[b++]);
        }
      }
      while (a < touched) merged.push_back(entries[a++]);
      while (b < active) merged.push_back(entries[b++]);
      std::copy(merged.begin(), merged.end(), entries.begin());
    }

    while (active > 0 && entries[active - 1].residual <= kRelEps) {
      --active;
    }
  }
  return plan;
}

}  // namespace slade
