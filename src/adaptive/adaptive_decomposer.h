// Copyright (c) the SLADE reproduction authors.
//
// Adaptive (closed-loop) decomposition. The paper plans against a bin
// profile calibrated up front and notes that marketplaces "use a set of
// different task bins as real-time probes to monitor the quality of the
// current work flow" (Section 3.1). This module closes that loop without
// ground truth:
//
//   repeat up to max_rounds:
//     1. plan the *residual* reliability demands with the current
//        confidence estimates (any SLADE solver);
//     2. post the plan's bins on the platform and collect answers, plus a
//        small batch of gold probe bins per cardinality;
//     3. re-estimate per-cardinality confidences by pooling (a) gold-probe
//        correctness (unbiased, ground truth known) and (b) the pairwise-
//        agreement moment estimator over real tasks that collected
//        multiple answers at the same cardinality (consistent without
//        ground truth -- see inference/truth_inference.h), smoothed by the
//        same power-law regression as offline calibration;
//     4. recompute every task's delivered log-reliability under the NEW
//        estimates; tasks short of their threshold carry a residual into
//        the next round.
//
// A statically executed plan under a miscalibrated profile either misses
// its reliability target (over-estimated confidences) or over-pays
// (under-estimated); the adaptive loop converges to the true profile and
// tops up exactly the shortfall. bench_adaptive quantifies this.

#ifndef SLADE_ADAPTIVE_ADAPTIVE_DECOMPOSER_H_
#define SLADE_ADAPTIVE_ADAPTIVE_DECOMPOSER_H_

#include <cstdint>
#include <vector>

#include "binmodel/calibration.h"
#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "inference/truth_inference.h"
#include "simulator/platform.h"
#include "solver/solver.h"

namespace slade {

/// \brief Knobs for the adaptive loop.
struct AdaptiveOptions {
  /// Planning/posting rounds (>= 1). Round 1 is the static plan; further
  /// rounds only run while some task is short of its threshold under the
  /// latest confidence estimates.
  uint32_t max_rounds = 4;
  /// Planner used each round.
  SolverKind solver = SolverKind::kOpqExtended;
  /// Answers required (across all cardinalities) before the confidence
  /// estimates are revised; below this the initial profile is trusted.
  uint64_t min_answers_for_recalibration = 400;
  /// Gold probe bins posted per cardinality per round (the paper's
  /// "testing task bins ... the ground truth is known"). Probes anchor the
  /// confidence estimates without the agreement bias of inferred truth:
  /// when redundancy is low, workers who agree on a wrong answer *define*
  /// the inferred label, so agreement-rate systematically overestimates
  /// confidence. 0 disables probing (inference-only monitoring).
  uint32_t probes_per_cardinality_per_round = 4;
  /// Worker assignments collected per gold probe bin.
  int probe_assignments = 2;
  SolverOptions solver_options;
  uint64_t probe_seed = 0xAB12CD34ULL;
};

/// \brief Per-round bookkeeping.
struct AdaptiveRoundStats {
  uint64_t bins_posted = 0;
  double cost = 0.0;
  /// Tasks still short of threshold after re-estimation.
  size_t unsatisfied_after = 0;
  /// Largest |estimated - true| confidence over the profile, using the
  /// platform's analytic model as truth (evaluation only).
  double max_confidence_error = 0.0;
};

/// \brief Outcome of an adaptive run.
struct AdaptiveReport {
  double total_cost = 0.0;
  uint32_t rounds = 0;
  std::vector<AdaptiveRoundStats> round_stats;
  /// Final per-cardinality confidence estimates (index l-1).
  std::vector<double> final_confidences;
  /// Fraction of ground-truth-positive tasks detected at least once
  /// across all rounds (the paper's reliability notion, measured).
  double positive_recall = 0.0;
  /// Tasks still short of threshold when the loop stopped.
  size_t unsatisfied = 0;
};

/// \brief Runs the adaptive loop.
///
/// `initial_profile` provides the cost schedule (costs are contractual and
/// known exactly) and the *initial* confidence estimates, which may be
/// wrong; `ground_truth` is used for posting bins (the platform needs the
/// true labels to generate answers) and for the final recall figure; the
/// loop itself never reads it for estimation.
Result<AdaptiveReport> RunAdaptiveDecomposition(
    Platform& platform, const CrowdsourcingTask& task,
    const BinProfile& initial_profile, const std::vector<bool>& ground_truth,
    const AdaptiveOptions& options = {});

}  // namespace slade

#endif  // SLADE_ADAPTIVE_ADAPTIVE_DECOMPOSER_H_
