#include "adaptive/adaptive_decomposer.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/random.h"
#include "inference/truth_inference.h"

namespace slade {

namespace {

// One posted bin's footprint: which tasks it contained at which
// cardinality (needed to recompute delivered reliability when the
// confidence estimates change).
struct PostedBin {
  uint32_t cardinality = 0;
  std::vector<TaskId> tasks;
};

// Rebuilds a BinProfile with the given confidences over the cost schedule
// of `base`.
Result<BinProfile> WithConfidences(const BinProfile& base,
                                   const std::vector<double>& confidences) {
  std::vector<TaskBin> bins;
  bins.reserve(base.size());
  for (uint32_t l = 1; l <= base.max_cardinality(); ++l) {
    TaskBin b = base.bin(l);
    b.confidence = std::clamp(confidences[l - 1], 1e-4, 1.0 - 1e-6);
    bins.push_back(b);
  }
  return BinProfile::Create(std::move(bins));
}

}  // namespace

Result<AdaptiveReport> RunAdaptiveDecomposition(
    Platform& platform, const CrowdsourcingTask& task,
    const BinProfile& initial_profile, const std::vector<bool>& ground_truth,
    const AdaptiveOptions& options) {
  const size_t n = task.size();
  if (ground_truth.size() != n) {
    return Status::InvalidArgument(
        "ground truth size does not match the task");
  }
  if (options.max_rounds == 0) {
    return Status::InvalidArgument("need max_rounds >= 1");
  }
  const uint32_t m = initial_profile.max_cardinality();

  std::vector<double> confidences(m);
  for (uint32_t l = 1; l <= m; ++l) {
    confidences[l - 1] = initial_profile.bin(l).confidence;
  }

  std::vector<PostedBin> posted;  // real task bins posted so far
  uint64_t total_answers = 0;
  // Per task: positive/total answer counts per cardinality, for the
  // pairwise-agreement confidence estimator.
  struct TaskAnswerCounts {
    std::vector<std::pair<uint64_t, uint64_t>> per_cardinality;  // pos,total
  };
  std::vector<TaskAnswerCounts> task_answers(n);
  for (auto& t : task_answers) t.per_cardinality.assign(m + 1, {0, 0});
  std::vector<bool> detected(n, false);
  // Gold probe agreement counts per cardinality (ground truth known).
  std::vector<ProbeObservation> gold(m + 1);
  for (uint32_t l = 1; l <= m; ++l) {
    gold[l].cardinality = l;
    gold[l].bin_cost = initial_profile.bin(l).cost;
  }
  Xoshiro256 probe_rng(options.probe_seed);

  AdaptiveReport report;
  auto planner = MakeSolver(options.solver, options.solver_options);

  for (uint32_t round = 0; round < options.max_rounds; ++round) {
    SLADE_ASSIGN_OR_RETURN(BinProfile profile,
                           WithConfidences(initial_profile, confidences));

    // Outstanding demand under the current estimates.
    std::vector<double> delivered(n, 0.0);
    for (const PostedBin& bin : posted) {
      const double w = profile.bin(bin.cardinality).log_weight();
      for (TaskId id : bin.tasks) delivered[id] += w;
    }
    std::vector<TaskId> unsatisfied;
    std::vector<double> residual_thresholds;
    for (size_t i = 0; i < n; ++i) {
      const double residual = task.theta(static_cast<TaskId>(i)) -
                              delivered[i];
      if (residual > kRelEps) {
        unsatisfied.push_back(static_cast<TaskId>(i));
        residual_thresholds.push_back(InverseLogReduction(residual));
      }
    }
    if (unsatisfied.empty()) break;

    // 1. Plan the residual demands.
    SLADE_ASSIGN_OR_RETURN(
        CrowdsourcingTask residual_task,
        CrowdsourcingTask::FromThresholds(residual_thresholds));
    SLADE_ASSIGN_OR_RETURN(DecompositionPlan plan,
                           planner->Solve(residual_task, profile));

    // 2a. Post the plan's bins and log answers.
    AdaptiveRoundStats stats;
    for (const BinPlacement& placement : plan.placements()) {
      if (placement.tasks.empty()) continue;
      std::vector<TaskId> global_ids;
      global_ids.reserve(placement.tasks.size());
      std::vector<bool> truth;
      truth.reserve(placement.tasks.size());
      for (TaskId local : placement.tasks) {
        const TaskId global = unsatisfied[local];
        global_ids.push_back(global);
        truth.push_back(ground_truth[global]);
      }
      const double cost = initial_profile.bin(placement.cardinality).cost;
      for (uint32_t copy = 0; copy < placement.copies; ++copy) {
        SLADE_ASSIGN_OR_RETURN(
            BinOutcome outcome,
            platform.PostBin(placement.cardinality, cost, truth, 1));
        ++stats.bins_posted;
        stats.cost += cost;
        const AssignmentOutcome& assignment = outcome.assignments.front();
        for (size_t k = 0; k < global_ids.size(); ++k) {
          auto& [pos, tot] =
              task_answers[global_ids[k]]
                  .per_cardinality[placement.cardinality];
          ++tot;
          ++total_answers;
          if (assignment.answers[k]) {
            ++pos;
            detected[global_ids[k]] = true;
          }
        }
        posted.push_back(PostedBin{placement.cardinality, global_ids});
      }
    }

    // 2b. Post gold probe bins (synthetic tasks with known truth).
    for (uint32_t l = 1;
         options.probes_per_cardinality_per_round > 0 && l <= m; ++l) {
      const double cost = initial_profile.bin(l).cost;
      for (uint32_t p = 0; p < options.probes_per_cardinality_per_round;
           ++p) {
        std::vector<bool> truth(l);
        for (uint32_t i = 0; i < l; ++i) {
          truth[i] = probe_rng.NextBernoulli(0.5);
        }
        SLADE_ASSIGN_OR_RETURN(
            BinOutcome outcome,
            platform.PostBin(l, cost, truth, options.probe_assignments));
        stats.cost += cost * static_cast<double>(options.probe_assignments);
        stats.bins_posted += options.probe_assignments;
        for (const AssignmentOutcome& assignment : outcome.assignments) {
          for (uint32_t i = 0; i < l; ++i) {
            ++gold[l].total;
            if (assignment.answers[i] == truth[i]) ++gold[l].correct;
          }
        }
      }
    }
    report.total_cost += stats.cost;

    // 3+4. Re-estimate confidences from (a) gold probes (unbiased, known
    // truth) and (b) the pairwise-agreement moment estimator over real
    // tasks that collected >= 2 answers at the same cardinality.
    {
      std::vector<uint64_t> total(m + 1, 0), correct(m + 1, 0);
      for (uint32_t l = 1; l <= m; ++l) {
        total[l] += gold[l].total;
        correct[l] += gold[l].correct;
      }
      if (total_answers >= options.min_answers_for_recalibration) {
        std::vector<uint64_t> agree_pairs(m + 1, 0), all_pairs(m + 1, 0);
        for (const TaskAnswerCounts& t : task_answers) {
          for (uint32_t l = 1; l <= m; ++l) {
            const auto& [pos, tot] = t.per_cardinality[l];
            if (tot < 2) continue;
            agree_pairs[l] += AgreeingPairs(pos, tot);
            all_pairs[l] += tot * (tot - 1) / 2;
          }
        }
        for (uint32_t l = 1; l <= m; ++l) {
          if (all_pairs[l] == 0) continue;
          const double rate = static_cast<double>(agree_pairs[l]) /
                              static_cast<double>(all_pairs[l]);
          const double r_hat = ConfidenceFromAgreement(rate);
          // Convert into pseudo-counts commensurate with the number of
          // answers behind the pairs so the regression weights gold and
          // agreement evidence comparably.
          const uint64_t pseudo_total = 2 * all_pairs[l];
          ProbeObservation obs;
          obs.cardinality = l;
          obs.total = pseudo_total;
          obs.correct = static_cast<uint64_t>(
              std::llround(r_hat * static_cast<double>(pseudo_total)));
          total[l] += obs.total;
          correct[l] += obs.correct;
        }
      }
      std::vector<ProbeObservation> observations;
      for (uint32_t l = 1; l <= m; ++l) {
        if (total[l] == 0) continue;
        ProbeObservation obs;
        obs.cardinality = l;
        obs.total = total[l];
        obs.correct = correct[l];
        obs.bin_cost = initial_profile.bin(l).cost;
        observations.push_back(obs);
      }
      if (!observations.empty()) {
        auto recalibrated = CalibrateProfile(
            observations, m, CalibrationMethod::kRegression);
        if (recalibrated.ok()) {
          for (uint32_t l = 1; l <= m; ++l) {
            confidences[l - 1] = recalibrated->bin(l).confidence;
          }
        } else {
          for (const ProbeObservation& obs : observations) {
            confidences[obs.cardinality - 1] = CountingEstimate(obs);
          }
        }
      }
    }

    // 5. Recount the shortfall under the new estimates.
    SLADE_ASSIGN_OR_RETURN(BinProfile updated,
                           WithConfidences(initial_profile, confidences));
    std::vector<double> redelivered(n, 0.0);
    for (const PostedBin& bin : posted) {
      const double w = updated.bin(bin.cardinality).log_weight();
      for (TaskId id : bin.tasks) redelivered[id] += w;
    }
    stats.unsatisfied_after = 0;
    for (size_t i = 0; i < n; ++i) {
      if (task.theta(static_cast<TaskId>(i)) - redelivered[i] > kRelEps) {
        ++stats.unsatisfied_after;
      }
    }
    for (uint32_t l = 1; l <= m; ++l) {
      const double true_confidence = platform.ExpectedConfidence(
          l, initial_profile.bin(l).cost);
      stats.max_confidence_error =
          std::max(stats.max_confidence_error,
                   std::fabs(confidences[l - 1] - true_confidence));
    }
    report.round_stats.push_back(stats);
    ++report.rounds;
    report.unsatisfied = stats.unsatisfied_after;
    if (stats.unsatisfied_after == 0) break;
  }

  report.final_confidences = confidences;
  uint64_t positives = 0, hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!ground_truth[i]) continue;
    ++positives;
    if (detected[i]) ++hits;
  }
  report.positive_recall =
      positives == 0 ? 1.0
                     : static_cast<double>(hits) /
                           static_cast<double>(positives);
  return report;
}

}  // namespace slade
