// Copyright (c) the SLADE reproduction authors.
// SubmissionJournal: the WAL-backed implementation of DurabilityHooks.
//
// One journal owns one WAL directory and gives the serving stack its
// crash story:
//
//  * Every admission is a durable kAdmit record before Submit returns;
//    completions/rejections are kComplete/kReject records made durable by
//    one SyncOutcomes barrier per micro-batch, before any future resolves.
//  * Open() replays the log (repairing a torn tail in place): admits
//    without a matching complete/reject come back as RecoveredSubmission,
//    in admission order — re-admitting them in that order preserves the
//    tenant interleaving the fairness scheduler had produced; completed
//    outcomes seed the duplicate-id map, so idempotency survives restarts.
//  * WriteCheckpoint() snapshots the outcome map into one kCheckpoint
//    record (the clean-shutdown marker); Compact() deletes sealed
//    segments that hold only closed submissions.
//
// Startup protocol (slade_cli serve --wal-dir):
//
//   auto opened = SubmissionJournal::Open(options);     // replay + repair
//   StreamingEngine engine(profile, {..., .durability = journal});
//   engine.ReplayRecovered(opened.pending);             // fresh admits
//   journal->CommitRecovery();  // checkpoint, then drop old-generation
//                               // segments the fresh records supersede
//
// Shutdown protocol: engine.Drain(); journal->WriteCheckpoint();
// journal->Compact(); — the next Open finds a checkpointed log with no
// live admits and skips straight past the replay work (clean_shutdown).
//
// Idempotency window: the duplicate-id map retains the most recent
// `max_retained_outcomes` completions (FIFO eviction) and compaction may
// drop older completions from disk; a duplicate arriving after its
// outcome aged out is re-solved (and re-billed) as if new. Size the
// window to exceed the clients' retry horizon.

#ifndef SLADE_DURABILITY_JOURNAL_H_
#define SLADE_DURABILITY_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "durability/hooks.h"
#include "durability/wal.h"

namespace slade {

struct JournalOptions {
  WalOptions wal;
  /// Duplicate-id outcomes retained in memory (and in checkpoints);
  /// oldest-completion-first eviction beyond it. 0 = unbounded.
  size_t max_retained_outcomes = 1u << 20;
};

/// \brief What Open() reconstructed, exported through stats().
struct JournalRecoveryInfo {
  uint64_t records_replayed = 0;
  uint64_t segments_scanned = 0;
  bool truncated = false;          ///< a torn/corrupt tail was cut
  uint64_t truncated_bytes = 0;
  std::string truncate_reason;
  uint64_t decode_errors = 0;      ///< CRC-valid records that failed to parse
  uint64_t pending_recovered = 0;  ///< admits with no complete/reject
  uint64_t outcomes_recovered = 0;
  /// True when the log ended in a checkpoint with no live admits: the
  /// previous process drained and checkpointed before exiting.
  bool clean_shutdown = false;
};

struct JournalStats {
  WalStats wal;
  JournalRecoveryInfo recovery;
  uint64_t admits = 0;
  uint64_t completes = 0;
  uint64_t rejects = 0;
  uint64_t checkpoints = 0;
  uint64_t append_errors = 0;      ///< Record* calls the WAL refused
  uint64_t live_submissions = 0;   ///< admitted, not yet closed
  uint64_t retained_outcomes = 0;  ///< duplicate-id map size
};

class SubmissionJournal final : public DurabilityHooks {
 public:
  struct OpenResult {
    std::unique_ptr<SubmissionJournal> journal;
    /// Admitted-but-unresolved submissions, in admission order.
    std::vector<RecoveredSubmission> pending;
  };

  /// Replays (and tail-repairs) `options.wal.dir`, seeds the duplicate-id
  /// map from replayed outcomes, and opens a fresh log generation for new
  /// records. The old generation's segments stay on disk until
  /// CommitRecovery() so the recovered state stays crash-safe while it is
  /// being re-admitted.
  static Result<OpenResult> Open(JournalOptions options);

  ~SubmissionJournal() override = default;

  // --- DurabilityHooks ---
  std::string GenerateSubmissionId() override;
  Status RecordAdmit(const std::string& submission_id,
                     const std::string& requester,
                     const std::vector<CrowdsourcingTask>& tasks) override;
  Status RecordComplete(const std::string& submission_id,
                        const SubmissionOutcome& outcome) override;
  Status RecordReject(const std::string& submission_id) override;
  Status SyncOutcomes() override;
  bool LookupCompleted(const std::string& submission_id,
                       SubmissionOutcome* outcome) const override;
  Status Compact() override;

  /// Snapshots the duplicate-id map into one durable kCheckpoint record.
  Status WriteCheckpoint();

  /// Checkpoints, then deletes the pre-Open segment files: every record
  /// they held is now superseded by the checkpoint plus the fresh admit
  /// records ReplayRecovered wrote. Call once re-admission is done.
  Status CommitRecovery();

  JournalStats stats() const;
  const WalWriter& wal() const { return *wal_; }

 private:
  SubmissionJournal(JournalOptions options, std::unique_ptr<WalWriter> wal)
      : options_(std::move(options)), wal_(std::move(wal)) {}

  /// Inserts into the duplicate-id map with FIFO eviction. Requires
  /// mutex_ held.
  void RetainOutcomeLocked(const std::string& submission_id,
                           const SubmissionOutcome& outcome);

  const JournalOptions options_;
  std::unique_ptr<WalWriter> wal_;
  /// Generation tag for GenerateSubmissionId: the first segment seq of
  /// this writer, strictly increasing across restarts of the same dir.
  uint64_t generation_ = 0;
  std::atomic<uint64_t> next_auto_id_{0};
  /// Old-generation segment paths replayed by Open, deleted by
  /// CommitRecovery.
  std::vector<std::string> recovered_segment_paths_;

  mutable std::mutex mutex_;
  /// Live admits: submission id -> admit record seq (this generation).
  /// The smallest seq bounds what Compact may release.
  std::unordered_map<std::string, uint64_t> live_admits_;
  /// Outcomes staged by RecordComplete, published by SyncOutcomes.
  std::vector<std::pair<std::string, SubmissionOutcome>> staged_outcomes_;
  /// The duplicate-id map: only durable outcomes, FIFO-bounded.
  std::unordered_map<std::string, SubmissionOutcome> completed_;
  std::deque<std::string> completed_order_;
  JournalStats stats_;
};

}  // namespace slade

#endif  // SLADE_DURABILITY_JOURNAL_H_
