#include "durability/crc32c.h"

#include <array>

namespace slade {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Crc32cTables {
  // table[k][b]: CRC contribution of byte b at distance k from the end of
  // an 8-byte block (slice-by-8).
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        const uint32_t prev = t[k - 1][b];
        t[k][b] = (prev >> 8) ^ t[0][prev & 0xFFu];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const Crc32cTables& tables = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment, then slice-by-8.
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFFu];
    --size;
  }
  while (size >= 8) {
    // Reading via two aligned 32-bit words keeps this portable (no
    // unaligned uint64_t load) while still consuming 8 bytes per step.
    const uint32_t lo =
        crc ^ (static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
               static_cast<uint32_t>(p[2]) << 16 |
               static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi =
        static_cast<uint32_t>(p[4]) | static_cast<uint32_t>(p[5]) << 8 |
        static_cast<uint32_t>(p[6]) << 16 | static_cast<uint32_t>(p[7]) << 24;
    crc = tables.t[7][lo & 0xFFu] ^ tables.t[6][(lo >> 8) & 0xFFu] ^
          tables.t[5][(lo >> 16) & 0xFFu] ^ tables.t[4][lo >> 24] ^
          tables.t[3][hi & 0xFFu] ^ tables.t[2][(hi >> 8) & 0xFFu] ^
          tables.t[1][(hi >> 16) & 0xFFu] ^ tables.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFFu];
    --size;
  }
  return ~crc;
}

}  // namespace slade
