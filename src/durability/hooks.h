// Copyright (c) the SLADE reproduction authors.
// The durability seam between the streaming engine and the write-ahead
// log (durability/journal.h implements it; durability/wal.h stores it).
//
// StreamingEngine stays ignorant of WAL formats and fsync policy: when
// StreamingOptions::durability is set it calls these hooks at the three
// lifecycle points of a submission — admitted (durable before the future
// is handed out), completed or rejected (buffered, made durable by one
// SyncOutcomes barrier per micro-batch, *before* any future resolves) —
// and consults LookupCompleted to answer a duplicate submission id with
// the original outcome instead of re-solving and re-billing it.
//
// The hooks object must outlive every engine wired to it.

#ifndef SLADE_DURABILITY_HOOKS_H_
#define SLADE_DURABILITY_HOOKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binmodel/task.h"
#include "common/status.h"

namespace slade {

/// \brief The billable summary of a delivered submission: everything a
/// duplicate-id response reports without re-solving. The plan bytes
/// themselves are deliberately not retained — a duplicate gets the
/// original metadata (cost, bins, flush) plus `duplicate = true`, and
/// re-fetching placements requires a fresh (new-id) submission.
struct SubmissionOutcome {
  double cost = 0.0;
  uint64_t bins_posted = 0;
  uint64_t flush_id = 0;
  uint64_t num_tasks = 0;
  uint64_t num_atomic_tasks = 0;
  double latency_seconds = 0.0;
};

/// \brief A submission reconstructed from the log on startup: admitted
/// (its admit record was durable) but neither completed nor rejected
/// before the crash. Re-admit through StreamingEngine::ReplayRecovered.
struct RecoveredSubmission {
  std::string submission_id;
  std::string requester;
  std::vector<CrowdsourcingTask> tasks;
};

/// \brief Journal callbacks the streaming engine drives. All methods are
/// thread-safe. Record* calls may fail with IOError once the underlying
/// log is dead; the engine surfaces admit failures to the submitter and
/// counts outcome failures (delivery still proceeds — losing the log
/// degrades durability, not availability of already-solved plans).
class DurabilityHooks {
 public:
  virtual ~DurabilityHooks() = default;

  /// A process-unique submission id for clients that did not supply one.
  /// Ids must stay unique across restarts on the same log.
  virtual std::string GenerateSubmissionId() = 0;

  /// Journals an admission; durable when it returns (group commit — see
  /// durability/wal.h — amortizes the fsync across concurrent callers).
  virtual Status RecordAdmit(const std::string& submission_id,
                             const std::string& requester,
                             const std::vector<CrowdsourcingTask>& tasks) = 0;

  /// Buffers a completion record and stages `outcome` for the duplicate-id
  /// map. Neither is visible to LookupCompleted (nor durable) until
  /// SyncOutcomes: a duplicate must never be answered from an outcome a
  /// crash could still lose.
  virtual Status RecordComplete(const std::string& submission_id,
                                const SubmissionOutcome& outcome) = 0;

  /// Buffers a close-without-outcome record: the id's admit must not be
  /// replayed, but the id is NOT dedupable — a client retrying a rejected
  /// submission with the same id gets a real solve, which is correct.
  virtual Status RecordReject(const std::string& submission_id) = 0;

  /// Durability barrier: every buffered record is durable when this
  /// returns, and every outcome staged by RecordComplete becomes visible
  /// to LookupCompleted.
  virtual Status SyncOutcomes() = 0;

  /// Returns true and fills `*outcome` when `submission_id` completed
  /// previously (within the retained-outcome window).
  virtual bool LookupCompleted(const std::string& submission_id,
                               SubmissionOutcome* outcome) const = 0;

  /// Optional retention pass: reclaim log space that holds only closed
  /// submissions. The engine calls it after each SyncOutcomes.
  virtual Status Compact() { return Status::OK(); }
};

}  // namespace slade

#endif  // SLADE_DURABILITY_HOOKS_H_
