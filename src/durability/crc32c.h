// Copyright (c) the SLADE reproduction authors.
// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every write-ahead-log record (see durability/wal.h).
// Chosen over CRC32 (IEEE) for its better error-detection properties on
// short records and because it is the de-facto WAL checksum (LevelDB,
// RocksDB, Kafka). Software slice-by-8 implementation; fast enough that
// fsync, not checksumming, dominates every commit path.

#ifndef SLADE_DURABILITY_CRC32C_H_
#define SLADE_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace slade {

/// \brief Extends a running CRC32C with `size` bytes. Start with crc = 0;
/// feed chunks in order to checksum a logically concatenated buffer.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

/// \brief One-shot CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

/// \brief Masks a CRC so that a checksum stored alongside the data it
/// covers never equals the raw CRC of bytes that themselves contain CRCs
/// (the classic LevelDB rotation+offset mask).
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace slade

#endif  // SLADE_DURABILITY_CRC32C_H_
