#include "durability/journal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace slade {

namespace {

// --- payload encoding -------------------------------------------------
//
// Little-endian fixed-width scalars and u32-length-prefixed strings; the
// frame CRC in the WAL layer guards the bytes, so payloads carry no
// checksum of their own. Doubles are stored as their IEEE-754 bit
// pattern via u64.
//
//   kAdmit:      id, requester, u32 num_tasks, per task u32 n + n doubles
//   kComplete:   id, outcome
//   kReject:     id
//   kCheckpoint: u64 count, per entry id + outcome  (FIFO order, so the
//                eviction order of the duplicate-id map survives restart)
//   outcome:     cost, u64 bins, u64 flush, u64 tasks, u64 atomic, latency

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutOutcome(std::string* out, const SubmissionOutcome& o) {
  PutDouble(out, o.cost);
  PutU64(out, o.bins_posted);
  PutU64(out, o.flush_id);
  PutU64(out, o.num_tasks);
  PutU64(out, o.num_atomic_tasks);
  PutDouble(out, o.latency_seconds);
}

/// Bounds-checked sequential reader; every getter returns false (and
/// poisons the reader) on underrun instead of reading past the payload.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload)
      : p_(payload.data()), end_(payload.data() + payload.size()) {}

  bool U32(uint32_t* v) {
    if (!ok_ || end_ - p_ < 4) return Fail();
    const uint8_t* u = reinterpret_cast<const uint8_t*>(p_);
    *v = static_cast<uint32_t>(u[0]) | static_cast<uint32_t>(u[1]) << 8 |
         static_cast<uint32_t>(u[2]) << 16 | static_cast<uint32_t>(u[3]) << 24;
    p_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!U32(&lo) || !U32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
    return true;
  }
  bool Double(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (end_ - p_ < static_cast<ptrdiff_t>(len)) return Fail();
    s->assign(p_, len);
    p_ += len;
    return true;
  }
  bool Outcome(SubmissionOutcome* o) {
    return Double(&o->cost) && U64(&o->bins_posted) && U64(&o->flush_id) &&
           U64(&o->num_tasks) && U64(&o->num_atomic_tasks) &&
           Double(&o->latency_seconds);
  }
  bool AtEnd() const { return ok_ && p_ == end_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

std::string EncodeAdmit(const std::string& id, const std::string& requester,
                        const std::vector<CrowdsourcingTask>& tasks) {
  std::string payload;
  PutString(&payload, id);
  PutString(&payload, requester);
  PutU32(&payload, static_cast<uint32_t>(tasks.size()));
  for (const CrowdsourcingTask& t : tasks) {
    PutU32(&payload, static_cast<uint32_t>(t.size()));
    for (const double threshold : t.thresholds()) {
      PutDouble(&payload, threshold);
    }
  }
  return payload;
}

bool DecodeAdmit(const std::string& payload, RecoveredSubmission* out) {
  PayloadReader r(payload);
  uint32_t num_tasks = 0;
  if (!r.Str(&out->submission_id) || !r.Str(&out->requester) ||
      !r.U32(&num_tasks)) {
    return false;
  }
  out->tasks.clear();
  out->tasks.reserve(num_tasks);
  for (uint32_t i = 0; i < num_tasks; ++i) {
    uint32_t n = 0;
    if (!r.U32(&n) || n == 0) return false;
    std::vector<double> thresholds(n);
    for (uint32_t k = 0; k < n; ++k) {
      if (!r.Double(&thresholds[k])) return false;
    }
    Result<CrowdsourcingTask> task =
        CrowdsourcingTask::FromThresholds(std::move(thresholds));
    if (!task.ok()) return false;
    out->tasks.push_back(std::move(task).ValueOrDie());
  }
  return r.AtEnd();
}

}  // namespace

Result<SubmissionJournal::OpenResult> SubmissionJournal::Open(
    JournalOptions options) {
  WalRecoveryStats wal_recovery;
  SLADE_ASSIGN_OR_RETURN(
      std::vector<WalRecoveredRecord> records,
      ReplayWal(options.wal.dir, /*repair=*/true, &wal_recovery));
  // Post-repair survivors: the old generation CommitRecovery will drop.
  std::vector<std::string> old_paths = ListWalSegmentPaths(options.wal.dir);

  JournalRecoveryInfo info;
  info.records_replayed = wal_recovery.records_replayed;
  info.segments_scanned = wal_recovery.segments_scanned;
  info.truncated = wal_recovery.truncated;
  info.truncated_bytes = wal_recovery.truncated_bytes;
  info.truncate_reason = wal_recovery.truncate_reason;

  // Pair admits with completes/rejects by submission id. A re-admission
  // after a previous recovery shows up as a second admit for a live id;
  // the first one wins (same content, earlier order).
  std::map<uint64_t, RecoveredSubmission> live;  // admit seq -> submission
  std::unordered_map<std::string, uint64_t> live_by_id;
  std::unordered_map<std::string, SubmissionOutcome> completed;
  std::deque<std::string> completed_order;
  auto close_id = [&](const std::string& id) {
    const auto it = live_by_id.find(id);
    if (it == live_by_id.end()) return;
    live.erase(it->second);
    live_by_id.erase(it);
  };
  auto retain = [&](const std::string& id, const SubmissionOutcome& outcome) {
    if (completed.emplace(id, outcome).second) {
      completed_order.push_back(id);
    } else {
      completed[id] = outcome;
    }
  };
  for (const WalRecoveredRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kAdmit: {
        RecoveredSubmission sub;
        if (!DecodeAdmit(rec.payload, &sub)) {
          ++info.decode_errors;
          break;
        }
        if (live_by_id.count(sub.submission_id) != 0 ||
            completed.count(sub.submission_id) != 0) {
          break;  // re-admission of an id we already know about
        }
        live_by_id.emplace(sub.submission_id, rec.seq);
        live.emplace(rec.seq, std::move(sub));
        break;
      }
      case WalRecordType::kComplete: {
        PayloadReader r(rec.payload);
        std::string id;
        SubmissionOutcome outcome;
        if (!r.Str(&id) || !r.Outcome(&outcome) || !r.AtEnd()) {
          ++info.decode_errors;
          break;
        }
        close_id(id);
        retain(id, outcome);
        break;
      }
      case WalRecordType::kReject: {
        PayloadReader r(rec.payload);
        std::string id;
        if (!r.Str(&id) || !r.AtEnd()) {
          ++info.decode_errors;
          break;
        }
        close_id(id);
        break;
      }
      case WalRecordType::kCheckpoint: {
        PayloadReader r(rec.payload);
        uint64_t count = 0;
        if (!r.U64(&count)) {
          ++info.decode_errors;
          break;
        }
        bool bad = false;
        for (uint64_t i = 0; i < count; ++i) {
          std::string id;
          SubmissionOutcome outcome;
          if (!r.Str(&id) || !r.Outcome(&outcome)) {
            bad = true;
            break;
          }
          retain(id, outcome);
        }
        if (bad || !r.AtEnd()) ++info.decode_errors;
        break;
      }
      default:
        ++info.decode_errors;
        break;
    }
  }
  info.pending_recovered = live.size();
  info.outcomes_recovered = completed.size();
  info.clean_shutdown = !records.empty() &&
                        records.back().type == WalRecordType::kCheckpoint &&
                        live.empty();

  SLADE_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                         WalWriter::Open(options.wal));
  const uint64_t generation = wal->stats().active_segment;
  std::unique_ptr<SubmissionJournal> journal(
      new SubmissionJournal(std::move(options), std::move(wal)));
  journal->generation_ = generation;
  journal->recovered_segment_paths_ = std::move(old_paths);
  journal->stats_.recovery = info;
  // Seed the duplicate-id map, honoring the retention cap FIFO-wise.
  for (const std::string& id : completed_order) {
    journal->RetainOutcomeLocked(id, completed[id]);
  }

  OpenResult result;
  result.journal = std::move(journal);
  result.pending.reserve(live.size());
  for (auto& [seq, sub] : live) result.pending.push_back(std::move(sub));
  return result;
}

std::string SubmissionJournal::GenerateSubmissionId() {
  return "auto-" + std::to_string(generation_) + "-" +
         std::to_string(next_auto_id_.fetch_add(1, std::memory_order_relaxed));
}

void SubmissionJournal::RetainOutcomeLocked(const std::string& submission_id,
                                            const SubmissionOutcome& outcome) {
  if (completed_.emplace(submission_id, outcome).second) {
    completed_order_.push_back(submission_id);
  } else {
    completed_[submission_id] = outcome;
  }
  if (options_.max_retained_outcomes > 0) {
    while (completed_order_.size() > options_.max_retained_outcomes) {
      completed_.erase(completed_order_.front());
      completed_order_.pop_front();
    }
  }
}

Status SubmissionJournal::RecordAdmit(
    const std::string& submission_id, const std::string& requester,
    const std::vector<CrowdsourcingTask>& tasks) {
  Result<WalAppendResult> appended =
      wal_->Append(WalRecordType::kAdmit,
                   EncodeAdmit(submission_id, requester, tasks));
  std::lock_guard<std::mutex> lock(mutex_);
  if (!appended.ok()) {
    ++stats_.append_errors;
    return appended.status();
  }
  ++stats_.admits;
  // Keep the first admit's seq on re-admission: retention must protect
  // the oldest record that can prove this id was admitted.
  live_admits_.emplace(submission_id, appended->seq);
  return Status::OK();
}

Status SubmissionJournal::RecordComplete(const std::string& submission_id,
                                         const SubmissionOutcome& outcome) {
  std::string payload;
  PutString(&payload, submission_id);
  PutOutcome(&payload, outcome);
  Result<WalAppendResult> appended =
      wal_->AppendBuffered(WalRecordType::kComplete, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!appended.ok()) {
    ++stats_.append_errors;
    return appended.status();
  }
  ++stats_.completes;
  staged_outcomes_.emplace_back(submission_id, outcome);
  return Status::OK();
}

Status SubmissionJournal::RecordReject(const std::string& submission_id) {
  std::string payload;
  PutString(&payload, submission_id);
  Result<WalAppendResult> appended =
      wal_->AppendBuffered(WalRecordType::kReject, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!appended.ok()) {
    ++stats_.append_errors;
    return appended.status();
  }
  ++stats_.rejects;
  live_admits_.erase(submission_id);
  return Status::OK();
}

Status SubmissionJournal::SyncOutcomes() {
  const Status synced = wal_->Sync();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!synced.ok()) ++stats_.append_errors;
  // Publish staged outcomes even when the sync failed: durability is
  // degraded (and reported), but in-process idempotency must keep
  // matching what clients were told.
  for (auto& [id, outcome] : staged_outcomes_) {
    RetainOutcomeLocked(id, outcome);
    live_admits_.erase(id);
  }
  staged_outcomes_.clear();
  return synced;
}

bool SubmissionJournal::LookupCompleted(const std::string& submission_id,
                                        SubmissionOutcome* outcome) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = completed_.find(submission_id);
  if (it == completed_.end()) return false;
  if (outcome != nullptr) *outcome = it->second;
  return true;
}

Status SubmissionJournal::WriteCheckpoint() {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PutU64(&payload, completed_order_.size());
    for (const std::string& id : completed_order_) {
      PutString(&payload, id);
      PutOutcome(&payload, completed_.at(id));
    }
  }
  const Result<WalAppendResult> appended =
      wal_->Append(WalRecordType::kCheckpoint, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!appended.ok()) {
    ++stats_.append_errors;
    return appended.status();
  }
  ++stats_.checkpoints;
  return Status::OK();
}

Status SubmissionJournal::Compact() {
  uint64_t min_live = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (live_admits_.empty()) {
      min_live = wal_->last_seq() + 1;
    } else {
      min_live = UINT64_MAX;
      for (const auto& [id, seq] : live_admits_) {
        min_live = std::min(min_live, seq);
      }
    }
  }
  if (wal_->ReleasableSegments(min_live) == 0) return Status::OK();
  // Re-persist the duplicate-id map before dropping segments: a released
  // segment may hold the only complete record of a still-retained
  // outcome, and losing it would let a crash re-bill an acked id.
  SLADE_RETURN_NOT_OK(WriteCheckpoint());
  return wal_->ReleaseSealedThrough(min_live);
}

Status SubmissionJournal::CommitRecovery() {
  if (recovered_segment_paths_.empty()) return Status::OK();
  // Checkpoint first: recovered outcomes currently exist only in the old
  // segments this call is about to delete.
  SLADE_RETURN_NOT_OK(WriteCheckpoint());
  Status first_error;
  for (const std::string& path : recovered_segment_paths_) {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT && first_error.ok()) {
      first_error = Status::IOError("unlink " + path + ": " +
                                    std::strerror(errno));
    }
  }
  recovered_segment_paths_.clear();
  return first_error;
}

JournalStats SubmissionJournal::stats() const {
  JournalStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
    out.live_submissions = live_admits_.size();
    out.retained_outcomes = completed_.size();
  }
  out.wal = wal_->stats();
  return out;
}

}  // namespace slade
