#include "durability/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "durability/crc32c.h"

namespace slade {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 masked crc
// A record larger than this is not something the journal ever writes; a
// length beyond it means we are reading garbage, not a big record.
constexpr uint32_t kMaxRecordLen = 1u << 30;

void EncodeFixed32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xFF);
  dst[1] = static_cast<char>((v >> 8) & 0xFF);
  dst[2] = static_cast<char>((v >> 16) & 0xFF);
  dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t DecodeFixed32(const char* src) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(src);
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// Parses "wal-<seq>.log"; returns false for anything else.
bool ParseSegmentFileName(const std::string& name, uint64_t* seq) {
  constexpr char kPrefix[] = "wal-";
  constexpr char kSuffix[] = ".log";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (name.size() <= kPrefixLen + kSuffixLen) return false;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefixLen; i < name.size() - kSuffixLen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

Result<std::vector<uint64_t>> ListSegments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError(ErrnoMessage("opendir " + dir));
  }
  std::vector<uint64_t> seqs;
  while (struct dirent* ent = ::readdir(d)) {
    uint64_t seq = 0;
    if (ParseSegmentFileName(ent->d_name, &seq)) seqs.push_back(seq);
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

/// Makes a directory-entry change (create/unlink of a segment) durable.
Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(ErrnoMessage("open dir " + dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError(ErrnoMessage("fsync dir " + dir));
  return Status::OK();
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write " + path));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
  std::string contents;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(ErrnoMessage("read " + path));
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

void AppendFrame(std::string* out, WalRecordType type,
                 std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
  char header[kFrameHeaderBytes];
  EncodeFixed32(header, len);
  const char type_byte = static_cast<char>(type);
  uint32_t crc = Crc32c(&type_byte, 1);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  EncodeFixed32(header + 4, Crc32cMask(crc));
  out->append(header, kFrameHeaderBytes);
  out->push_back(type_byte);
  out->append(payload.data(), payload.size());
}

/// Weighted percentile over a size -> count histogram.
double HistogramPercentile(const std::map<uint64_t, uint64_t>& counts,
                           double q) {
  uint64_t total = 0;
  for (const auto& [size, count] : counts) total += count;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (const auto& [size, count] : counts) {
    seen += count;
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(size);
    }
  }
  return static_cast<double>(counts.rbegin()->first);
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(WalOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WalOptions::dir must not be empty");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(ErrnoMessage("mkdir " + options.dir));
  }
  SLADE_ASSIGN_OR_RETURN(std::vector<uint64_t> existing,
                         ListSegments(options.dir));
  std::unique_ptr<WalWriter> writer(new WalWriter(std::move(options)));
  {
    std::unique_lock<std::mutex> lock(writer->mutex_);
    writer->active_segment_ = existing.empty() ? 1 : existing.back() + 1;
    SLADE_RETURN_NOT_OK(writer->OpenNewSegmentLocked());
  }
  return writer;
}

WalWriter::~WalWriter() {
  Sync().ok();  // best effort: flush whatever AppendBuffered left behind
  std::unique_lock<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::OpenNewSegmentLocked() {
  const std::string path =
      JoinPath(options_.dir, SegmentFileName(active_segment_));
  const int fd = ::open(path.c_str(),
                        O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
  if (options_.fsync) {
    const Status st = FsyncDir(options_.dir);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  fd_ = fd;
  segment_offset_ = 0;
  ++stats_.segments_created;
  stats_.active_segment = active_segment_;
  return Status::OK();
}

Result<WalAppendResult> WalWriter::AppendLocked(WalRecordType type,
                                                std::string_view payload) {
  if (!io_error_.ok()) return io_error_;
  if (payload.size() >= kMaxRecordLen) {
    return Status::InvalidArgument("WAL record payload too large");
  }
  const size_t before = buffer_.size();
  AppendFrame(&buffer_, type, payload);
  WalAppendResult result;
  result.seq = ++appended_seq_;
  result.segment = active_segment_;
  result.end_offset = segment_offset_ + buffer_.size();
  ++stats_.records_appended;
  stats_.bytes_appended += buffer_.size() - before;
  return result;
}

Result<WalAppendResult> WalWriter::Append(WalRecordType type,
                                          std::string_view payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  SLADE_ASSIGN_OR_RETURN(WalAppendResult result, AppendLocked(type, payload));
  // Wake a leader stuck in its commit-wait: a companion has arrived, so
  // the batch can close early.
  commit_cv_.notify_all();
  SLADE_RETURN_NOT_OK(CommitUpToLocked(result.seq, lock));
  return result;
}

Result<WalAppendResult> WalWriter::AppendBuffered(WalRecordType type,
                                                  std::string_view payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  return AppendLocked(type, payload);
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  return CommitUpToLocked(appended_seq_, lock);
}

Status WalWriter::CommitUpToLocked(uint64_t seq,
                                   std::unique_lock<std::mutex>& lock) {
  while (true) {
    if (!io_error_.ok()) return io_error_;
    if (durable_seq_ >= seq) return Status::OK();
    if (committer_active_) {
      // Another thread is writing a batch that may or may not cover us;
      // wait for it to finish and re-check.
      commit_cv_.wait(lock);
      continue;
    }
    committer_active_ = true;
    if (options_.commit_wait_micros > 0 &&
        appended_seq_ == durable_seq_ + 1) {
      // Lone record: hold the fsync briefly so concurrent appenders can
      // join this batch. A new arrival wakes us immediately.
      commit_cv_.wait_for(
          lock, std::chrono::microseconds(options_.commit_wait_micros), [&] {
            return appended_seq_ > durable_seq_ + 1 || !io_error_.ok();
          });
    }
    std::string batch;
    batch.swap(buffer_);
    const uint64_t target = appended_seq_;
    const uint64_t batch_records = target - durable_seq_;
    const int fd = fd_;
    const std::string path =
        JoinPath(options_.dir, SegmentFileName(active_segment_));
    lock.unlock();
    Status st = WriteAll(fd, batch.data(), batch.size(), path);
    if (st.ok() && options_.fsync && ::fsync(fd) != 0) {
      st = Status::IOError(ErrnoMessage("fsync " + path));
    }
    lock.lock();
    if (!st.ok()) {
      // Sticky failure: a half-written batch means the durable prefix is
      // no longer well defined, so the writer refuses all further work.
      io_error_ = st;
      committer_active_ = false;
      commit_cv_.notify_all();
      return st;
    }
    segment_offset_ += batch.size();
    durable_seq_ = target;
    stats_.durable_records = durable_seq_;
    ++stats_.commit_batches;
    if (options_.fsync) ++stats_.fsyncs;
    ++batch_size_counts_[batch_records];
    stats_.commit_batch_max = std::max(stats_.commit_batch_max, batch_records);
    if (segment_offset_ >= options_.segment_max_bytes) {
      // Seal and rotate. The batch just fsynced, so the sealed segment is
      // fully durable before the next one's directory entry appears.
      sealed_last_seq_[active_segment_] = durable_seq_;
      ::close(fd_);
      fd_ = -1;
      ++active_segment_;
      const Status rotate = OpenNewSegmentLocked();
      if (!rotate.ok()) io_error_ = rotate;
    }
    committer_active_ = false;
    commit_cv_.notify_all();
  }
}

Status WalWriter::ReleaseSealedThrough(uint64_t min_live_seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  Status first_error;
  bool deleted_any = false;
  while (!sealed_last_seq_.empty() &&
         sealed_last_seq_.begin()->second < min_live_seq) {
    const uint64_t segment = sealed_last_seq_.begin()->first;
    const std::string path = JoinPath(options_.dir, SegmentFileName(segment));
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      if (first_error.ok()) {
        first_error = Status::IOError(ErrnoMessage("unlink " + path));
      }
      break;
    }
    sealed_last_seq_.erase(sealed_last_seq_.begin());
    ++stats_.segments_deleted;
    deleted_any = true;
  }
  if (deleted_any && options_.fsync) {
    const Status st = FsyncDir(options_.dir);
    if (first_error.ok() && !st.ok()) first_error = st;
  }
  return first_error;
}

uint64_t WalWriter::ReleasableSegments(uint64_t min_live_seq) const {
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t n = 0;
  for (const auto& [segment, last_seq] : sealed_last_seq_) {
    if (last_seq >= min_live_seq) break;
    ++n;
  }
  return n;
}

uint64_t WalWriter::last_seq() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return appended_seq_;
}

WalStats WalWriter::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  WalStats out = stats_;
  out.commit_batch_p50 = HistogramPercentile(batch_size_counts_, 0.50);
  out.commit_batch_p95 = HistogramPercentile(batch_size_counts_, 0.95);
  return out;
}

std::vector<std::string> WalWriter::SegmentPaths() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<std::string> paths;
  paths.reserve(sealed_last_seq_.size() + 1);
  for (const auto& [segment, last_seq] : sealed_last_seq_) {
    paths.push_back(JoinPath(options_.dir, SegmentFileName(segment)));
  }
  paths.push_back(JoinPath(options_.dir, SegmentFileName(active_segment_)));
  return paths;
}

std::vector<std::string> ListWalSegmentPaths(const std::string& dir) {
  std::vector<std::string> paths;
  Result<std::vector<uint64_t>> segments = ListSegments(dir);
  if (!segments.ok()) return paths;
  paths.reserve(segments->size());
  for (const uint64_t seq : *segments) {
    paths.push_back(JoinPath(dir, SegmentFileName(seq)));
  }
  return paths;
}

Result<std::vector<WalRecoveredRecord>> ReplayWal(const std::string& dir,
                                                  bool repair,
                                                  WalRecoveryStats* stats) {
  WalRecoveryStats local;
  WalRecoveryStats& out = stats != nullptr ? *stats : local;
  out = WalRecoveryStats();

  std::vector<WalRecoveredRecord> records;
  struct stat dir_stat;
  if (::stat(dir.c_str(), &dir_stat) != 0) {
    if (errno == ENOENT) return records;  // nothing to replay
    return Status::IOError(ErrnoMessage("stat " + dir));
  }
  SLADE_ASSIGN_OR_RETURN(std::vector<uint64_t> segments, ListSegments(dir));

  size_t stop_segment_index = segments.size();
  for (size_t i = 0; i < segments.size(); ++i) {
    const uint64_t segment = segments[i];
    const std::string path = JoinPath(dir, SegmentFileName(segment));
    SLADE_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
    ++out.segments_scanned;
    out.bytes_scanned += data.size();

    size_t pos = 0;
    std::string reason;
    while (pos < data.size()) {
      if (data.size() - pos < kFrameHeaderBytes + 1) {
        reason = "truncated length prefix";
        break;
      }
      const uint32_t len = DecodeFixed32(data.data() + pos);
      if (len == 0) {
        reason = "zero-length record";
        break;
      }
      if (len > kMaxRecordLen) {
        reason = "implausible record length";
        break;
      }
      if (data.size() - pos - kFrameHeaderBytes < len) {
        reason = "truncated record body";
        break;
      }
      const uint32_t stored_crc =
          Crc32cUnmask(DecodeFixed32(data.data() + pos + 4));
      const char* body = data.data() + pos + kFrameHeaderBytes;
      if (Crc32c(body, len) != stored_crc) {
        reason = "crc mismatch";
        break;
      }
      WalRecoveredRecord rec;
      rec.type = static_cast<WalRecordType>(static_cast<uint8_t>(body[0]));
      rec.payload.assign(body + 1, len - 1);
      rec.segment = segment;
      rec.seq = records.size() + 1;
      records.push_back(std::move(rec));
      ++out.records_replayed;
      pos += kFrameHeaderBytes + len;
    }
    if (pos < data.size()) {
      // Torn or corrupt tail: everything at and after the bad frame —
      // including later segments — is unreachable by the commit protocol,
      // so it is dropped rather than skipped over.
      out.truncated = true;
      out.truncate_reason = reason;
      out.truncated_bytes += data.size() - pos;
      if (repair && ::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
        return Status::IOError(ErrnoMessage("truncate " + path));
      }
      stop_segment_index = i;
      break;
    }
  }

  if (stop_segment_index < segments.size()) {
    for (size_t i = stop_segment_index + 1; i < segments.size(); ++i) {
      const std::string path = JoinPath(dir, SegmentFileName(segments[i]));
      struct stat seg_stat;
      if (::stat(path.c_str(), &seg_stat) == 0) {
        out.truncated_bytes += static_cast<uint64_t>(seg_stat.st_size);
      }
      if (repair && ::unlink(path.c_str()) != 0 && errno != ENOENT) {
        return Status::IOError(ErrnoMessage("unlink " + path));
      }
    }
    if (repair) SLADE_RETURN_NOT_OK(FsyncDir(dir));
  }
  return records;
}

}  // namespace slade
