// Copyright (c) the SLADE reproduction authors.
// Append-only, segment-rotated write-ahead log with group-commit fsync
// batching: the durability substrate under the streaming front end.
//
// Why: an acknowledged submission must survive `kill -9`. The serving
// stack therefore journals every admission and every delivered outcome
// here *before* acknowledging it to the client; on restart the journal
// (durability/journal.h) replays this log to reconstruct the pending
// queue and the idempotency map. The WAL layer itself is payload-agnostic:
// it stores typed byte records and guarantees exactly two things --
// records that were durable (covered by an fsync) before a crash are
// replayed intact and in order, and a torn or corrupt tail is detected
// (never silently half-read) and cut at the last whole valid record.
//
// On-disk format. A log is a directory of segments `wal-<seq>.log`
// (seq strictly increasing, never reused). Each segment is a sequence of
// frames:
//
//   +----------+-----------------+----------+------------------+
//   | len: u32 | crc: u32 masked | type: u8 | payload: len - 1 |
//   +----------+-----------------+----------+------------------+
//    little-endian; crc = masked CRC32C over (type byte + payload)
//
// A frame never spans segments. The active segment rotates once it
// exceeds segment_max_bytes; rotation seals the old segment with an
// fsync before the new one is created (and the directory entry is
// fsynced), so a later segment existing implies every earlier segment is
// complete. Recovery exploits that: replay stops at the first invalid
// frame anywhere and treats everything after it as lost tail.
//
// Group commit. Any number of threads may Append() concurrently; each
// call blocks until its record is durable. The first thread to need a
// commit becomes the leader: it waits a bounded commit-wait for
// companions to pile into the shared buffer, then writes and fsyncs the
// whole batch with ONE fsync and wakes every waiter whose record it
// covered. Under a 64-worker HTTP front end this turns 64 fsyncs into a
// handful per batch (see bench/bench_wal.cc). AppendBuffered()/Sync()
// expose the same machinery batch-wise: the streaming engine journals a
// whole micro-batch of outcomes and pays one durability barrier before
// resolving any future.
//
// Retention. The caller tracks which record sequence numbers are still
// live (e.g. admitted-but-unresolved submissions) and calls
// ReleaseSealedThrough(min_live_seq); the log deletes sealed segments
// that hold only records below it. The active segment is never deleted.

#ifndef SLADE_DURABILITY_WAL_H_
#define SLADE_DURABILITY_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace slade {

/// \brief Record types multiplexed over one log. The WAL treats them as
/// opaque tags; durability/journal.h defines the payloads.
enum class WalRecordType : uint8_t {
  kAdmit = 1,       ///< submission admitted (id, requester, tasks)
  kComplete = 2,    ///< submission delivered (id, outcome summary)
  kReject = 3,      ///< submission closed without a billable outcome (id)
  kCheckpoint = 4,  ///< clean-shutdown snapshot of the idempotency map
};

struct WalOptions {
  /// Directory holding the segments; created (one level) if missing.
  std::string dir;
  /// Rotate the active segment once it exceeds this size. The check runs
  /// at commit granularity, so a segment can overshoot by one batch.
  uint64_t segment_max_bytes = 64ull << 20;
  /// Bounded commit-wait: a lone group-commit leader waits up to this
  /// long for concurrent appenders to join its batch before fsyncing.
  /// 0 = commit immediately (fsync per append when uncontended).
  uint64_t commit_wait_micros = 200;
  /// When false, commits write() but skip fsync: records survive process
  /// death but not host death. For benchmarks and tests only.
  bool fsync = true;
};

/// \brief Where an appended record landed: its global sequence number
/// (1-based, dense, restart-monotonic within one writer), the segment
/// that holds it, and the segment byte offset one past its frame.
struct WalAppendResult {
  uint64_t seq = 0;
  uint64_t segment = 0;
  uint64_t end_offset = 0;
};

/// \brief Writer counters, readable at any time via stats().
struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;  ///< frame bytes, headers included
  uint64_t fsyncs = 0;
  uint64_t commit_batches = 0;      ///< write+fsync rounds
  double commit_batch_p50 = 0.0;    ///< records per batch, median
  double commit_batch_p95 = 0.0;
  uint64_t commit_batch_max = 0;
  uint64_t segments_created = 0;
  uint64_t segments_deleted = 0;
  uint64_t active_segment = 0;
  uint64_t durable_records = 0;  ///< seq covered by the last fsync
};

/// \brief Append side of the log. Thread-safe; every public method may be
/// called from any thread. A writer OWNS its directory: recovery must
/// happen before Open (Open never reads old segments, it starts a fresh
/// one above them) and no second writer may share the directory.
class WalWriter {
 public:
  /// Creates `options.dir` if missing and opens a fresh active segment
  /// numbered above every existing one. Fails with IOError when the
  /// directory cannot be created or the segment cannot be opened.
  static Result<std::unique_ptr<WalWriter>> Open(WalOptions options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and blocks until it is durable (group commit).
  /// After an IO error the writer is dead: every call fails with the
  /// original error.
  Result<WalAppendResult> Append(WalRecordType type, std::string_view payload);

  /// Appends without waiting for durability; pair with Sync(). The
  /// returned end_offset/segment name where the record WILL land if no
  /// rotation intervenes (rotation only moves not-yet-committed bytes).
  Result<WalAppendResult> AppendBuffered(WalRecordType type,
                                         std::string_view payload);

  /// Durability barrier: every record appended before this call is
  /// durable when it returns.
  Status Sync();

  /// Deletes sealed segments whose every record has seq < `min_live_seq`.
  /// The active segment always survives. Returns the first IO error.
  Status ReleaseSealedThrough(uint64_t min_live_seq);

  /// Number of sealed segments ReleaseSealedThrough(min_live_seq) would
  /// delete right now (lets a caller gate pre-release work, e.g. writing
  /// a checkpoint, on whether anything is actually reclaimable).
  uint64_t ReleasableSegments(uint64_t min_live_seq) const;

  /// Sequence number the next Append will receive, minus one (i.e. the
  /// last assigned seq; 0 before the first append).
  uint64_t last_seq() const;

  WalStats stats() const;
  const WalOptions& options() const { return options_; }
  /// Paths of all live segments, oldest first (test/tooling aid).
  std::vector<std::string> SegmentPaths() const;

 private:
  explicit WalWriter(WalOptions options) : options_(std::move(options)) {}

  Status OpenNewSegmentLocked();
  /// Blocks until `seq` is durable, becoming the commit leader when none
  /// is active. Requires `lock` held on entry; may release and reacquire.
  Status CommitUpToLocked(uint64_t seq, std::unique_lock<std::mutex>& lock);
  Result<WalAppendResult> AppendLocked(WalRecordType type,
                                       std::string_view payload);

  const WalOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable commit_cv_;
  std::string buffer_;          ///< framed bytes not yet written
  uint64_t appended_seq_ = 0;   ///< last assigned record seq
  uint64_t durable_seq_ = 0;    ///< last seq covered by a commit
  bool committer_active_ = false;
  Status io_error_;             ///< sticky: first write/fsync failure

  int fd_ = -1;                 ///< active segment
  uint64_t active_segment_ = 0;
  uint64_t segment_offset_ = 0;  ///< committed bytes in the active segment
  /// Sealed segments: segment seq -> last record seq it contains.
  std::map<uint64_t, uint64_t> sealed_last_seq_;

  WalStats stats_;
  std::map<uint64_t, uint64_t> batch_size_counts_;  ///< batch size -> count
};

/// \brief One replayed record.
struct WalRecoveredRecord {
  WalRecordType type = WalRecordType::kAdmit;
  std::string payload;
  uint64_t segment = 0;
  uint64_t seq = 0;  ///< 1-based replay order across all segments
};

/// \brief What recovery saw, for operators and tests.
struct WalRecoveryStats {
  uint64_t segments_scanned = 0;
  uint64_t records_replayed = 0;
  uint64_t bytes_scanned = 0;
  /// Bytes dropped at the first invalid frame (rest of that segment plus
  /// every later segment).
  uint64_t truncated_bytes = 0;
  bool truncated = false;
  std::string truncate_reason;  ///< empty when !truncated
};

/// \brief Replays every record in `dir`, oldest segment first, stopping
/// at the first torn or corrupt frame (a crash can only tear the tail;
/// anything after a tear is unreachable by the commit protocol). With
/// `repair` set, the corrupt segment is truncated back to its last valid
/// frame and later segments are deleted, so the directory is clean for a
/// new WalWriter. A missing directory replays as empty.
Result<std::vector<WalRecoveredRecord>> ReplayWal(const std::string& dir,
                                                  bool repair,
                                                  WalRecoveryStats* stats);

/// \brief Paths of the segment files in `dir`, oldest first; empty when
/// the directory is missing.
std::vector<std::string> ListWalSegmentPaths(const std::string& dir);

}  // namespace slade

#endif  // SLADE_DURABILITY_WAL_H_
