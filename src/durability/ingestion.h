// Copyright (c) the SLADE reproduction authors.
// Pluggable ingestion: where streaming traffic comes from.
//
// The serving stack consumes submissions from three places today — the
// `slade_cli stream` command, the `serve --replay` background feed, and
// ad-hoc test drivers — and ROADMAP item 5 wants them all behind one
// connector abstraction so a Kafka-style partitioned consumer can slot
// in later without touching the engine. IngestionSource is that seam: a
// pull-based, cancelable iterator of TimedSubmission. The source owns
// pacing — Next() blocks until the next submission is *due* — so a
// consumer is just a loop:
//
//   TimedSubmission sub;
//   while (source.Next(&sub).ValueOr(false)) {
//     engine.Submit(sub.requester, std::move(sub.tasks),
//                   std::move(sub.submission_id));
//   }
//
// FileReplaySource is the deterministic file connector: it feeds a timed
// CSV tape (io/model_io.h) at recorded or accelerated speed, optionally
// looping, and stamps reproducible submission ids — the same tape with
// the same options replays the same submissions with the same ids, which
// is what makes crash-recovery smokes and perf claims reproducible.

#ifndef SLADE_DURABILITY_INGESTION_H_
#define SLADE_DURABILITY_INGESTION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/model_io.h"

namespace slade {

/// \brief A cancelable, paced stream of submissions. Implementations are
/// safe for one consumer thread plus any number of Cancel() callers.
class IngestionSource {
 public:
  virtual ~IngestionSource() = default;

  /// Blocks until the next submission is due, fills `*out` and returns
  /// true; returns false when the stream is exhausted or canceled. An
  /// error (e.g. a broken underlying transport) fails the Result.
  virtual Result<bool> Next(TimedSubmission* out) = 0;

  /// Unblocks a waiting Next() and ends the stream: every later Next()
  /// returns false. Idempotent, callable from any thread (e.g. a signal
  /// watcher that wants a draining shutdown mid-replay).
  virtual void Cancel() = 0;
};

struct FileReplayOptions {
  /// Timed-workload CSV (header `arrival_ms,requester,task,threshold`).
  std::string path;
  /// Replay speed: 1 = recorded timing, 10 = 10x accelerated, 0 = no
  /// pacing at all (every submission due immediately).
  double speedup = 1.0;
  /// How many times to play the tape end to end; 0 = loop forever (until
  /// Cancel). Later loops shift arrivals by the tape's duration, so
  /// pacing stays continuous across the seam.
  uint64_t loop_count = 1;
  /// When non-empty, submission k (0-based, counted across loops) is
  /// stamped submission_id = "<prefix>-<k>" — deterministic, so a
  /// restarted replay over the same WAL exercises idempotency instead of
  /// double-submitting. Empty = anonymous submissions.
  std::string submission_id_prefix;
};

/// \brief Deterministic tape replay of a timed CSV workload.
class FileReplaySource final : public IngestionSource {
 public:
  /// Loads the whole tape up front (replay must not stall on file IO
  /// mid-tape); fails on a missing or malformed CSV, or an empty tape
  /// with loop_count != 1 (it would spin forever yielding nothing).
  static Result<std::unique_ptr<FileReplaySource>> Open(
      FileReplayOptions options);

  Result<bool> Next(TimedSubmission* out) override;
  void Cancel() override;

  /// Submissions handed out so far (across loops).
  uint64_t delivered() const;
  /// Total submissions one pass of the tape holds.
  size_t tape_size() const { return tape_.size(); }

 private:
  FileReplaySource(FileReplayOptions options,
                   std::vector<TimedSubmission> tape);

  const FileReplayOptions options_;
  const std::vector<TimedSubmission> tape_;
  /// Arrival shift applied per completed loop: the tape's last arrival.
  const double tape_span_ms_;

  mutable std::mutex mutex_;
  std::condition_variable cancel_cv_;
  bool canceled_ = false;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_;  ///< set on first Next
  size_t cursor_ = 0;      ///< next index within the current loop
  uint64_t loop_ = 0;      ///< completed loops
  uint64_t delivered_ = 0;
};

}  // namespace slade

#endif  // SLADE_DURABILITY_INGESTION_H_
