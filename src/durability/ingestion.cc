#include "durability/ingestion.h"

#include <utility>

namespace slade {

Result<std::unique_ptr<FileReplaySource>> FileReplaySource::Open(
    FileReplayOptions options) {
  if (options.speedup < 0.0) {
    return Status::InvalidArgument(
        "FileReplaySource: speedup must be >= 0 (0 = unpaced)");
  }
  SLADE_ASSIGN_OR_RETURN(std::vector<TimedSubmission> tape,
                         LoadTimedWorkloadCsv(options.path));
  if (tape.empty() && options.loop_count != 1) {
    return Status::InvalidArgument(
        "FileReplaySource: empty tape cannot loop (" + options.path + ")");
  }
  return std::unique_ptr<FileReplaySource>(
      new FileReplaySource(std::move(options), std::move(tape)));
}

FileReplaySource::FileReplaySource(FileReplayOptions options,
                                   std::vector<TimedSubmission> tape)
    : options_(std::move(options)),
      tape_(std::move(tape)),
      tape_span_ms_(tape_.empty() ? 0.0 : tape_.back().arrival_ms) {}

Result<bool> FileReplaySource::Next(TimedSubmission* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (canceled_) return false;
  if (cursor_ >= tape_.size()) {
    ++loop_;
    cursor_ = 0;
    if (tape_.empty() ||
        (options_.loop_count != 0 && loop_ >= options_.loop_count)) {
      canceled_ = true;  // exhausted: behave like a canceled stream
      return false;
    }
  }

  const TimedSubmission& entry = tape_[cursor_];
  // Arrivals continue across the loop seam: loop L replays the tape
  // shifted by L tape-spans.
  const double due_ms =
      entry.arrival_ms + static_cast<double>(loop_) * tape_span_ms_;
  if (options_.speedup > 0.0) {
    if (!started_) {
      started_ = true;
      start_ = std::chrono::steady_clock::now();
    }
    const auto due =
        start_ + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         due_ms / options_.speedup));
    cancel_cv_.wait_until(lock, due, [&] { return canceled_; });
    if (canceled_) return false;
  }

  *out = entry;  // tasks copied: the tape is immutable and may loop
  out->arrival_ms = due_ms;
  if (!options_.submission_id_prefix.empty()) {
    out->submission_id =
        options_.submission_id_prefix + "-" + std::to_string(delivered_);
  }
  ++cursor_;
  ++delivered_;
  return true;
}

void FileReplaySource::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    canceled_ = true;
  }
  cancel_cv_.notify_all();
}

uint64_t FileReplaySource::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delivered_;
}

}  // namespace slade
