// Copyright (c) the SLADE reproduction authors.
// Reliability-threshold generation for the Section 7 experiments.

#ifndef SLADE_WORKLOAD_THRESHOLD_GEN_H_
#define SLADE_WORKLOAD_THRESHOLD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace slade {

/// \brief Families of threshold distributions used in the paper:
/// homogeneous (Section 7.1), Normal(mu, sigma) (Section 7.2 default),
/// plus the uniform and heavy-tailed variants the paper mentions running.
enum class ThresholdFamily {
  kHomogeneous,
  kNormal,
  kUniform,
  kHeavyTail,  ///< Pareto-based, shifted into the threshold range
};

const char* ThresholdFamilyName(ThresholdFamily family);

/// \brief Threshold generation spec.
///
/// All samples are clamped into [clamp_lo, clamp_hi]; the defaults keep
/// thresholds within (0,1) and away from 1 (t -> 1 drives theta -> inf).
struct ThresholdSpec {
  ThresholdFamily family = ThresholdFamily::kHomogeneous;
  /// kHomogeneous: the common threshold. kNormal: the mean mu.
  /// kUniform: center of the interval. kHeavyTail: location base.
  double mu = 0.9;
  /// kNormal: sigma. kUniform: half-width. kHeavyTail: tail scale.
  double sigma = 0.03;
  double clamp_lo = 0.5;
  double clamp_hi = 0.995;
};

/// \brief Draws `n` thresholds deterministically from `spec` with `seed`.
Result<std::vector<double>> GenerateThresholds(const ThresholdSpec& spec,
                                               size_t n, uint64_t seed);

}  // namespace slade

#endif  // SLADE_WORKLOAD_THRESHOLD_GEN_H_
