#include "workload/threshold_gen.h"

#include <algorithm>

#include "common/distributions.h"
#include "common/random.h"

namespace slade {

const char* ThresholdFamilyName(ThresholdFamily family) {
  switch (family) {
    case ThresholdFamily::kHomogeneous:
      return "homogeneous";
    case ThresholdFamily::kNormal:
      return "normal";
    case ThresholdFamily::kUniform:
      return "uniform";
    case ThresholdFamily::kHeavyTail:
      return "heavy-tail";
  }
  return "?";
}

Result<std::vector<double>> GenerateThresholds(const ThresholdSpec& spec,
                                               size_t n, uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("need n > 0 thresholds");
  if (!(spec.clamp_lo > 0.0 && spec.clamp_hi < 1.0 &&
        spec.clamp_lo <= spec.clamp_hi)) {
    return Status::InvalidArgument(
        "threshold clamps must satisfy 0 < lo <= hi < 1");
  }
  Xoshiro256 rng(seed);
  switch (spec.family) {
    case ThresholdFamily::kHomogeneous: {
      const double t = std::clamp(spec.mu, spec.clamp_lo, spec.clamp_hi);
      return std::vector<double>(n, t);
    }
    case ThresholdFamily::kNormal: {
      NormalDistribution dist(spec.mu, spec.sigma);
      return SampleClamped(dist, n, spec.clamp_lo, spec.clamp_hi, rng);
    }
    case ThresholdFamily::kUniform: {
      UniformDistribution dist(spec.mu - spec.sigma, spec.mu + spec.sigma);
      return SampleClamped(dist, n, spec.clamp_lo, spec.clamp_hi, rng);
    }
    case ThresholdFamily::kHeavyTail: {
      // A Pareto tail hanging *below* mu: most tasks demand ~mu, a heavy
      // tail demands progressively less (mirroring "a few tasks are much
      // less critical"). t = mu - sigma * (Pareto(1, 1.5) - 1).
      ParetoDistribution dist(1.0, 1.5);
      std::vector<double> out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const double excess = dist.Sample(rng) - 1.0;
        out.push_back(std::clamp(spec.mu - spec.sigma * excess,
                                 spec.clamp_lo, spec.clamp_hi));
      }
      return out;
    }
  }
  return Status::InvalidArgument("unknown threshold family");
}

}  // namespace slade
