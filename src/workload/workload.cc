#include "workload/workload.h"

namespace slade {

Result<Workload> MakeHomogeneousWorkload(DatasetKind dataset, size_t n,
                                         double t,
                                         uint32_t max_cardinality) {
  SLADE_ASSIGN_OR_RETURN(BinProfile profile,
                         BuildProfile(MakeModel(dataset), max_cardinality));
  SLADE_ASSIGN_OR_RETURN(CrowdsourcingTask task,
                         CrowdsourcingTask::Homogeneous(n, t));
  return Workload{std::move(task), std::move(profile)};
}

Result<Workload> MakeHeterogeneousWorkload(DatasetKind dataset, size_t n,
                                           const ThresholdSpec& spec,
                                           uint32_t max_cardinality,
                                           uint64_t seed) {
  SLADE_ASSIGN_OR_RETURN(BinProfile profile,
                         BuildProfile(MakeModel(dataset), max_cardinality));
  SLADE_ASSIGN_OR_RETURN(std::vector<double> thresholds,
                         GenerateThresholds(spec, n, seed));
  SLADE_ASSIGN_OR_RETURN(CrowdsourcingTask task,
                         CrowdsourcingTask::FromThresholds(
                             std::move(thresholds)));
  return Workload{std::move(task), std::move(profile)};
}

Result<BatchWorkload> MakeBatchWorkload(DatasetKind dataset, size_t num_tasks,
                                        size_t atomic_per_task,
                                        const ThresholdSpec& spec,
                                        uint32_t max_cardinality,
                                        uint64_t seed) {
  if (num_tasks == 0) {
    return Status::InvalidArgument("MakeBatchWorkload: num_tasks must be > 0");
  }
  SLADE_ASSIGN_OR_RETURN(BinProfile profile,
                         BuildProfile(MakeModel(dataset), max_cardinality));
  std::vector<CrowdsourcingTask> tasks;
  tasks.reserve(num_tasks);
  for (size_t k = 0; k < num_tasks; ++k) {
    SLADE_ASSIGN_OR_RETURN(
        std::vector<double> thresholds,
        GenerateThresholds(spec, atomic_per_task, seed + k));
    SLADE_ASSIGN_OR_RETURN(
        CrowdsourcingTask task,
        CrowdsourcingTask::FromThresholds(std::move(thresholds)));
    tasks.push_back(std::move(task));
  }
  return BatchWorkload{std::move(tasks), std::move(profile)};
}

}  // namespace slade
