#include "workload/workload.h"

namespace slade {

Result<Workload> MakeHomogeneousWorkload(DatasetKind dataset, size_t n,
                                         double t,
                                         uint32_t max_cardinality) {
  SLADE_ASSIGN_OR_RETURN(BinProfile profile,
                         BuildProfile(MakeModel(dataset), max_cardinality));
  SLADE_ASSIGN_OR_RETURN(CrowdsourcingTask task,
                         CrowdsourcingTask::Homogeneous(n, t));
  return Workload{std::move(task), std::move(profile)};
}

Result<Workload> MakeHeterogeneousWorkload(DatasetKind dataset, size_t n,
                                           const ThresholdSpec& spec,
                                           uint32_t max_cardinality,
                                           uint64_t seed) {
  SLADE_ASSIGN_OR_RETURN(BinProfile profile,
                         BuildProfile(MakeModel(dataset), max_cardinality));
  SLADE_ASSIGN_OR_RETURN(std::vector<double> thresholds,
                         GenerateThresholds(spec, n, seed));
  SLADE_ASSIGN_OR_RETURN(CrowdsourcingTask task,
                         CrowdsourcingTask::FromThresholds(
                             std::move(thresholds)));
  return Workload{std::move(task), std::move(profile)};
}

}  // namespace slade
