// Copyright (c) the SLADE reproduction authors.
// Ready-made experiment workloads: (crowdsourcing task, bin profile) pairs
// matching the Section 7 evaluation setup.

#ifndef SLADE_WORKLOAD_WORKLOAD_H_
#define SLADE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "binmodel/profile_model.h"
#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "workload/threshold_gen.h"

namespace slade {

/// \brief A complete SLADE instance ready to solve.
struct Workload {
  CrowdsourcingTask task;
  BinProfile profile;
};

/// \brief Section 7 defaults: n=10,000 atomic tasks, max cardinality
/// |B| = 20, homogeneous t = 0.9, heterogeneous t_i ~ N(0.9, 0.03).
struct ExperimentDefaults {
  static constexpr size_t kNumTasks = 10'000;
  static constexpr uint32_t kMaxCardinality = 20;
  static constexpr double kThreshold = 0.9;
  static constexpr double kMu = 0.9;
  static constexpr double kSigma = 0.03;
  static constexpr uint64_t kSeed = 20180131;  // TKDE publication month
};

/// \brief Homogeneous workload on `dataset` (Figures 6a-6l).
Result<Workload> MakeHomogeneousWorkload(DatasetKind dataset, size_t n,
                                         double t, uint32_t max_cardinality);

/// \brief Heterogeneous workload with thresholds from `spec`
/// (Figures 7-8).
Result<Workload> MakeHeterogeneousWorkload(DatasetKind dataset, size_t n,
                                           const ThresholdSpec& spec,
                                           uint32_t max_cardinality,
                                           uint64_t seed);

/// \brief A whole batch of crowdsourcing tasks sharing one platform
/// profile -- the input unit of engine/DecompositionEngine.
struct BatchWorkload {
  std::vector<CrowdsourcingTask> tasks;
  BinProfile profile;
};

/// \brief Builds `num_tasks` heterogeneous crowdsourcing tasks of
/// `atomic_per_task` atomic tasks each, thresholds drawn from `spec` with
/// per-task seeds derived from `seed` (so the batch is deterministic and
/// each task's draw is independent of the batch size).
Result<BatchWorkload> MakeBatchWorkload(DatasetKind dataset, size_t num_tasks,
                                        size_t atomic_per_task,
                                        const ThresholdSpec& spec,
                                        uint32_t max_cardinality,
                                        uint64_t seed);

}  // namespace slade

#endif  // SLADE_WORKLOAD_WORKLOAD_H_
