#include "engine/decomposition_engine.h"

#include <algorithm>
#include <cstdio>

#include "common/math_util.h"
#include "common/stopwatch.h"
#include "solver/opq_set_builder.h"
#include "solver/opq_solver.h"

namespace slade {

namespace {

std::vector<size_t> ComputeOffsets(
    const std::vector<CrowdsourcingTask>& tasks) {
  std::vector<size_t> offsets(tasks.size() + 1, 0);
  for (size_t k = 0; k < tasks.size(); ++k) {
    offsets[k + 1] = offsets[k] + tasks[k].size();
  }
  return offsets;
}

/// One unit of parallel work: a set of atomic tasks (global ids, ascending)
/// solved under one surrogate threshold. Shards are formed deterministically
/// and merged in vector order, so the merged plan never depends on thread
/// count.
struct ShardSpec {
  size_t input_task = ShardStats::kWholeBatch;
  size_t group = 0;
  double theta_upper = 0.0;
  std::vector<TaskId> ids;
};

/// kPooled sharding: one shard per non-empty Algorithm 4 threshold group of
/// the batch-wide range; atomic tasks of every input task pool together.
Result<std::vector<ShardSpec>> PooledShards(
    const std::vector<CrowdsourcingTask>& tasks,
    const std::vector<size_t>& offsets) {
  double t_min = tasks.front().min_threshold();
  double t_max = tasks.front().max_threshold();
  for (const CrowdsourcingTask& t : tasks) {
    t_min = std::min(t_min, t.min_threshold());
    t_max = std::max(t_max, t.max_threshold());
  }
  SLADE_ASSIGN_OR_RETURN(
      std::vector<double> uppers,
      ComputeThetaPartition(LogReduction(t_min), LogReduction(t_max)));

  // Route every atomic task (by global id) to the lowest interval whose
  // upper bound covers its log threshold -- Algorithm 5 lines 5-7, applied
  // batch-wide. Iterating tasks in order keeps shard id lists sorted.
  std::vector<std::vector<TaskId>> shard_ids(uppers.size());
  for (size_t k = 0; k < tasks.size(); ++k) {
    const CrowdsourcingTask& task = tasks[k];
    for (size_t i = 0; i < task.size(); ++i) {
      SLADE_ASSIGN_OR_RETURN(
          size_t g, GroupIndexOf(uppers, task.theta(static_cast<TaskId>(i))));
      shard_ids[g].push_back(static_cast<TaskId>(offsets[k] + i));
    }
  }

  std::vector<ShardSpec> shards;
  for (size_t g = 0; g < shard_ids.size(); ++g) {
    if (shard_ids[g].empty()) continue;
    ShardSpec shard;
    shard.group = g;
    shard.theta_upper = uppers[g];
    shard.ids = std::move(shard_ids[g]);
    shards.push_back(std::move(shard));
  }
  return shards;
}

/// kIsolated sharding: one shard per (input task, non-empty group of that
/// task's own Algorithm 4 partition), exactly the sub-problems OPQ-Extended
/// solves for each input task alone. Queues still come from the shared
/// cache, and interval bounds are powers of two, so input tasks with
/// overlapping ranges reuse each other's builds.
Result<std::vector<ShardSpec>> IsolatedShards(
    const std::vector<CrowdsourcingTask>& tasks,
    const std::vector<size_t>& offsets) {
  std::vector<ShardSpec> shards;
  for (size_t k = 0; k < tasks.size(); ++k) {
    const CrowdsourcingTask& task = tasks[k];
    SLADE_ASSIGN_OR_RETURN(
        std::vector<double> uppers,
        ComputeThetaPartition(LogReduction(task.min_threshold()),
                              LogReduction(task.max_threshold())));
    std::vector<std::vector<TaskId>> group_ids(uppers.size());
    for (size_t i = 0; i < task.size(); ++i) {
      SLADE_ASSIGN_OR_RETURN(
          size_t g, GroupIndexOf(uppers, task.theta(static_cast<TaskId>(i))));
      group_ids[g].push_back(static_cast<TaskId>(offsets[k] + i));
    }
    for (size_t g = 0; g < group_ids.size(); ++g) {
      if (group_ids[g].empty()) continue;
      ShardSpec shard;
      shard.input_task = k;
      shard.group = g;
      shard.theta_upper = uppers[g];
      shard.ids = std::move(group_ids[g]);
      shards.push_back(std::move(shard));
    }
  }
  return shards;
}

}  // namespace

const char* BatchSharingName(BatchSharing sharing) {
  switch (sharing) {
    case BatchSharing::kPooled:
      return "pooled";
    case BatchSharing::kIsolated:
      return "isolated";
  }
  return "unknown";
}

std::string BatchReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "batch: %zu tasks, %zu atomic tasks, %zu shards\n"
                "cost %.4f, %llu bins, %.3f s (opq cache: %llu hits, "
                "%llu misses)\n",
                num_tasks(), num_atomic_tasks(), shards.size(), total_cost,
                static_cast<unsigned long long>(total_bins), wall_seconds,
                static_cast<unsigned long long>(opq_cache_hits),
                static_cast<unsigned long long>(opq_cache_misses));
  std::string out = buf;
  for (const ShardStats& s : shards) {
    std::string owner;
    if (s.input_task != ShardStats::kWholeBatch) {
      owner = "task " + std::to_string(s.input_task) + ", ";
    }
    std::snprintf(buf, sizeof(buf),
                  "  shard %zu: %st<=%.6f, %zu tasks, cost %.4f, %llu bins, "
                  "%.4f s%s\n",
                  s.group, owner.c_str(), s.surrogate_threshold,
                  s.num_atomic_tasks, s.cost,
                  static_cast<unsigned long long>(s.bins_posted), s.seconds,
                  s.opq_cache_hit ? " (cache hit)" : "");
    out += buf;
  }
  return out;
}

Result<CrowdsourcingTask> ConcatenateTasks(
    const std::vector<CrowdsourcingTask>& tasks) {
  std::vector<double> thresholds;
  size_t total = 0;
  for (const CrowdsourcingTask& t : tasks) total += t.size();
  thresholds.reserve(total);
  for (const CrowdsourcingTask& t : tasks) {
    thresholds.insert(thresholds.end(), t.thresholds().begin(),
                      t.thresholds().end());
  }
  return CrowdsourcingTask::FromThresholds(std::move(thresholds));
}

namespace {

OpqCacheOptions CacheOptionsFrom(const ResourceOptions& resources) {
  OpqCacheOptions options;
  options.max_bytes = resources.cache_max_bytes;
  options.max_entries = resources.cache_max_entries;
  options.num_shards = resources.cache_shards;
  return options;
}

}  // namespace

DecompositionEngine::DecompositionEngine(EngineOptions options)
    : options_(options),
      cache_(CacheOptionsFrom(options.resources)),
      pool_(std::make_unique<ThreadPool>(
          options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                   : options.num_threads)),
      plan_governor_(options.resources.plan_arena_max_bytes, 0) {}

DecompositionEngine::~DecompositionEngine() = default;

Result<BatchReport> DecompositionEngine::SolveBatch(
    const std::vector<CrowdsourcingTask>& tasks, const BinProfile& profile,
    uint64_t opq_salt) {
  if (tasks.empty()) {
    return Status::InvalidArgument("SolveBatch: empty batch");
  }
  Stopwatch wall;

  std::vector<size_t> offsets = ComputeOffsets(tasks);
  SLADE_ASSIGN_OR_RETURN(
      std::vector<ShardSpec> shards,
      options_.sharing == BatchSharing::kPooled
          ? PooledShards(tasks, offsets)
          : IsolatedShards(tasks, offsets));

  // Per-shard solves on the pool. Results land in pre-sized slots; no
  // locking is needed beyond the pool's Wait().
  OpqBuildOptions build_options;
  build_options.node_budget = options_.opq_node_budget;
  std::vector<ColumnarPlan> shard_plans;
  shard_plans.reserve(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    shard_plans.emplace_back(&plan_governor_);
  }
  std::vector<ShardStats> shard_stats(shards.size());
  std::vector<Status> shard_status(shards.size());
  ParallelFor(pool_.get(), shards.size(), [&](size_t s) {
    Stopwatch shard_watch;
    const ShardSpec& shard = shards[s];
    const double surrogate = InverseLogReduction(shard.theta_upper);
    auto lookup =
        cache_.GetOrBuild(profile, surrogate, build_options, opq_salt);
    if (!lookup.ok()) {
      shard_status[s] = lookup.status();
      return;
    }
    Status st = RunOpqAssignment(*lookup->queue, shard.ids, profile,
                                 &shard_plans[s]);
    if (!st.ok()) {
      shard_status[s] = st;
      return;
    }
    ShardStats& stats = shard_stats[s];
    stats.group = shard.group;
    stats.input_task = shard.input_task;
    stats.theta_upper = shard.theta_upper;
    stats.surrogate_threshold = surrogate;
    stats.num_atomic_tasks = shard.ids.size();
    stats.cost = shard_plans[s].TotalCost(profile);
    stats.bins_posted = shard_plans[s].TotalBinInstances();
    stats.opq_cache_hit = lookup->hit;
    stats.seconds = shard_watch.ElapsedSeconds();
  });
  for (const Status& st : shard_status) {
    SLADE_RETURN_NOT_OK(st);
  }

  // Merge in shard order: deterministic regardless of execution order.
  // Shard ids are already global, so the merge is pure column
  // concatenation into a once-reserved arena; a single-shard batch just
  // moves the shard plan.
  BatchReport report;
  report.task_offsets = std::move(offsets);
  for (size_t s = 0; s < shards.size(); ++s) {
    report.total_cost += shard_stats[s].cost;
    report.total_bins += shard_stats[s].bins_posted;
    report.opq_cache_hits += shard_stats[s].opq_cache_hit ? 1 : 0;
    report.opq_cache_misses += shard_stats[s].opq_cache_hit ? 0 : 1;
  }
  if (shards.size() == 1) {
    report.plan = std::move(shard_plans[0]);
  } else {
    ColumnarPlan merged(&plan_governor_);
    size_t total_placements = 0;
    size_t total_ids = 0;
    for (const ColumnarPlan& plan : shard_plans) {
      total_placements += plan.num_placements();
      total_ids += plan.num_task_ids();
    }
    merged.Reserve(total_placements, total_ids);
    for (ColumnarPlan& plan : shard_plans) {
      merged.AppendColumns(plan);
    }
    report.plan = std::move(merged);
  }
  // The report outlives this engine call (and possibly the engine); keep
  // the governor's peak counters but drop the live charges and the
  // pointer before the plan escapes.
  report.plan.DetachGovernor();
  report.shards = std::move(shard_stats);
  report.wall_seconds = wall.ElapsedSeconds();
  return report;
}

Result<BatchReport> SolveBatchSequential(
    const std::vector<CrowdsourcingTask>& tasks, const BinProfile& profile,
    const SolverOptions& options) {
  if (tasks.empty()) {
    return Status::InvalidArgument("SolveBatchSequential: empty batch");
  }
  Stopwatch wall;
  std::unique_ptr<Solver> solver = MakeSolver(SolverKind::kOpqExtended,
                                              options);
  BatchReport report;
  report.task_offsets = ComputeOffsets(tasks);
  for (size_t k = 0; k < tasks.size(); ++k) {
    SLADE_ASSIGN_OR_RETURN(DecompositionPlan plan,
                           solver->Solve(tasks[k], profile));
    report.total_cost += plan.TotalCost(profile);
    report.total_bins += plan.TotalBinInstances();
    report.plan.AppendPlan(plan,
                           static_cast<TaskId>(report.task_offsets[k]));
  }
  report.wall_seconds = wall.ElapsedSeconds();
  return report;
}

}  // namespace slade
