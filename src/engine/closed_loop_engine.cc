#include "engine/closed_loop_engine.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <set>
#include <utility>

#include "common/math_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engine/answer_collector.h"
#include "engine/profile_registry.h"

namespace slade {

namespace {

/// One in-flight submission of a round: which workload it bills to and how
/// its plan-local atomic ids map back to global ids.
struct RoundSubmission {
  size_t workload = 0;
  std::vector<TaskId> global_of_local;
  std::future<Result<RequesterPlan>> future;
};

constexpr double kSpammerAccuracyCutoff = 0.6;

}  // namespace

const char* InferenceKindName(InferenceKind kind) {
  switch (kind) {
    case InferenceKind::kMajorityVote:
      return "majority";
    case InferenceKind::kDawidSkene:
      return "dawid-skene";
  }
  return "unknown";
}

std::string ClosedLoopReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "closed loop: %u round(s)%s, %llu answers over %llu bins, "
                "billed %.4f, platform paid %.4f\n"
                "final: accuracy %.4f, %llu under-confident, "
                "%llu atomic task(s) re-decomposed\n",
                rounds, budget_stopped ? " (budget stop)" : "",
                static_cast<unsigned long long>(total_answers),
                static_cast<unsigned long long>(total_bins), billed_cost,
                platform_cost, final_accuracy,
                static_cast<unsigned long long>(final_under_confident),
                static_cast<unsigned long long>(redecomposed_atomic_tasks));
  out += buf;
  out += "round  subs  rej  atomic  bins  dropped  answers  billed    "
         "accuracy  conf    under  spam\n";
  for (const ClosedLoopRoundStats& r : round_stats) {
    std::snprintf(
        buf, sizeof(buf),
        "%5u  %4llu  %3llu  %6llu  %4llu  %7llu  %7llu  %-8.4f  %-8.4f  "
        "%.4f  %5llu  %4llu\n",
        r.round, static_cast<unsigned long long>(r.submissions),
        static_cast<unsigned long long>(r.rejected_submissions),
        static_cast<unsigned long long>(r.atomic_tasks),
        static_cast<unsigned long long>(r.bins_posted),
        static_cast<unsigned long long>(r.dropped_bins),
        static_cast<unsigned long long>(r.answers), r.billed_cost,
        r.accuracy, r.mean_posterior_confidence,
        static_cast<unsigned long long>(r.under_confident_after),
        static_cast<unsigned long long>(r.suspected_spammers));
    out += buf;
  }
  return out;
}

ClosedLoopEngine::ClosedLoopEngine(BinProfile profile,
                                   ClosedLoopOptions options)
    : profile_(std::move(profile)), options_(std::move(options)) {}

Result<ClosedLoopReport> ClosedLoopEngine::Run(
    const std::vector<ClosedLoopWorkload>& workloads) {
  if (workloads.empty()) {
    return Status::InvalidArgument("closed loop needs at least one workload");
  }
  if (options_.max_rounds == 0) {
    return Status::InvalidArgument("max_rounds must be >= 1");
  }
  if (!(options_.min_residual_threshold > 0.0 &&
        options_.min_residual_threshold < 1.0) ||
      !(options_.max_posterior_confidence > 0.5 &&
        options_.max_posterior_confidence < 1.0)) {
    return Status::InvalidArgument(
        "residual threshold / posterior clamps must be probabilities");
  }

  // Global atomic-task space: workload w owns [base[w], base[w+1]).
  std::vector<size_t> base(workloads.size() + 1, 0);
  for (size_t w = 0; w < workloads.size(); ++w) {
    const size_t n = workloads[w].num_atomic_tasks();
    if (workloads[w].tasks.empty()) {
      return Status::InvalidArgument("workload " + std::to_string(w) +
                                     " has no tasks");
    }
    if (workloads[w].ground_truth.size() != n) {
      return Status::InvalidArgument(
          "workload " + std::to_string(w) + " ground truth covers " +
          std::to_string(workloads[w].ground_truth.size()) +
          " tasks, expected " + std::to_string(n));
    }
    base[w + 1] = base[w] + n;
  }
  const size_t n_total = base.back();
  std::vector<bool> truth(n_total);
  std::vector<double> thresholds(n_total);
  for (size_t w = 0; w < workloads.size(); ++w) {
    size_t id = base[w];
    for (size_t k = 0; k < workloads[w].ground_truth.size(); ++k) {
      truth[base[w] + k] = workloads[w].ground_truth[k];
    }
    for (const CrowdsourcingTask& task : workloads[w].tasks) {
      for (size_t k = 0; k < task.size(); ++k) {
        thresholds[id++] = task.threshold(static_cast<TaskId>(k));
      }
    }
  }

  // The run's serving stack: fresh platform, fault schedule, admission
  // engine and marketplace pool.
  Platform platform(options_.platform);
  FaultInjector injector(options_.faults);
  FaultInjector* injector_ptr = options_.faults.any() ? &injector : nullptr;
  StreamingEngine streaming(profile_, options_.streaming);
  ThreadPool pool(std::max<uint32_t>(1, options_.dispatch_threads));
  SimulatedDispatcher dispatcher(platform, profile_, pool, injector_ptr);

  ClosedLoopReport report;
  std::vector<WorkerAnswer> all_answers;
  std::vector<uint32_t> answer_count(n_total, 0);
  InferenceResult inferred;
  double round1_billed = 0.0;

  // Round 1: the original workloads, one submission each.
  std::vector<RoundSubmission> round_subs;
  round_subs.reserve(workloads.size());
  for (size_t w = 0; w < workloads.size(); ++w) {
    RoundSubmission sub;
    sub.workload = w;
    sub.global_of_local.resize(base[w + 1] - base[w]);
    for (size_t k = 0; k < sub.global_of_local.size(); ++k) {
      sub.global_of_local[k] = static_cast<TaskId>(base[w] + k);
    }
    sub.future =
        streaming.Submit(workloads[w].requester, workloads[w].tasks);
    round_subs.push_back(std::move(sub));
  }

  for (uint32_t round = 1; round <= options_.max_rounds; ++round) {
    ClosedLoopRoundStats stats;
    stats.round = round;
    streaming.Flush();

    // Collect this round's slices and dispatch them to the marketplace.
    AnswerCollector collector;
    Stopwatch dispatch_watch;
    std::vector<RequesterPlan> slices;
    if (options_.keep_round_plans) slices.reserve(round_subs.size());
    const double platform_spent_before = platform.total_spent();
    std::set<std::string> served_platforms;
    for (RoundSubmission& sub : round_subs) {
      Result<RequesterPlan> slice = sub.future.get();
      if (!slice.ok()) {
        if (slice.status().IsResourceExhausted()) {
          // Backpressure rejected the submission; its tasks stay
          // unanswered and fall into the next round's residue.
          ++stats.rejected_submissions;
          continue;
        }
        return slice.status();
      }
      ++stats.submissions;
      stats.atomic_tasks += slice->num_atomic_tasks();
      stats.billed_cost += slice->cost;
      if (!slice->platform.empty()) served_platforms.insert(slice->platform);
      SLADE_RETURN_NOT_OK(dispatcher.Dispatch(
          slice->plan, sub.global_of_local, truth, &collector));
      if (options_.keep_round_plans) {
        slices.push_back(std::move(*slice));
      }
    }
    dispatcher.Wait();
    stats.dispatch_seconds = dispatch_watch.ElapsedSeconds();

    // Online recalibration: fold the round's scored answers into the
    // served platform's candidate profile. The simulator is one
    // marketplace, so the fold only applies when exactly one platform
    // served the round -- mixed-platform rounds would attribute one
    // marketplace's reliability to several platforms. A promotion (if the
    // drift tolerance trips) takes effect at the next admission; work
    // already admitted keeps its epoch.
    if (options_.streaming.registry != nullptr &&
        served_platforms.size() == 1) {
      Result<uint64_t> folded = options_.streaming.registry->FoldOutcomes(
          *served_platforms.begin(), collector.TakeCalibrationCounts());
      if (!folded.ok() && !folded.status().IsNotFound()) {
        return folded.status();
      }
    }
    round_subs.clear();
    if (options_.keep_round_plans) {
      report.round_plans.push_back(std::move(slices));
    }

    const DispatchStats dispatched = collector.stats();
    stats.bins_posted = dispatched.bins_posted;
    stats.dropped_bins = dispatched.dropped_bins;
    stats.outage_retries = dispatched.outage_retries;
    stats.answers = dispatched.answers;
    stats.platform_cost = platform.total_spent() - platform_spent_before;
    std::vector<WorkerAnswer> fresh = collector.TakeAnswers();
    for (const WorkerAnswer& a : fresh) ++answer_count[a.task];
    all_answers.insert(all_answers.end(), fresh.begin(), fresh.end());

    // Aggregate everything collected so far into per-task posteriors.
    Stopwatch inference_watch;
    Result<InferenceResult> result =
        options_.inference == InferenceKind::kMajorityVote
            ? MajorityVote(all_answers, n_total)
            : DawidSkeneBinary(all_answers, n_total, options_.dawid_skene);
    SLADE_ASSIGN_OR_RETURN(inferred, std::move(result));
    stats.inference_seconds = inference_watch.ElapsedSeconds();
    stats.accuracy = LabelAccuracy(inferred, truth, all_answers);
    for (const auto& [worker, accuracy] : inferred.worker_accuracy) {
      (void)worker;
      if (accuracy < kSpammerAccuracyCutoff) ++stats.suspected_spammers;
    }

    // The under-confident residue: posterior confidence short of the
    // task's threshold (unanswered tasks are maximally unconfident).
    std::vector<TaskId> residue;
    double confidence_sum = 0.0;
    for (size_t i = 0; i < n_total; ++i) {
      const double c =
          std::max(inferred.posterior[i], 1.0 - inferred.posterior[i]);
      confidence_sum += answer_count[i] == 0 ? 0.5 : c;
      if (answer_count[i] == 0) {
        ++stats.unanswered_after;
        residue.push_back(static_cast<TaskId>(i));
      } else if (c + kRelEps < thresholds[i]) {
        residue.push_back(static_cast<TaskId>(i));
      }
    }
    stats.mean_posterior_confidence =
        confidence_sum / static_cast<double>(n_total);
    stats.under_confident_after = residue.size();

    report.billed_cost += stats.billed_cost;
    if (round == 1) round1_billed = report.billed_cost;
    report.round_stats.push_back(stats);
    report.rounds = round;
    report.final_under_confident = residue.size();

    if (residue.empty() || round == options_.max_rounds) break;

    // Retry budgets gate every re-decomposition.
    if (options_.retry_cost_multiple > 0.0 &&
        report.billed_cost >=
            options_.retry_cost_multiple * round1_billed - kRelEps) {
      report.budget_stopped = true;
      break;
    }
    if (options_.max_redecomposed_atomic_tasks > 0) {
      const uint64_t cap = options_.max_redecomposed_atomic_tasks;
      const uint64_t remaining =
          cap - std::min(cap, report.redecomposed_atomic_tasks);
      if (remaining == 0) {
        report.budget_stopped = true;
        break;
      }
      if (residue.size() > remaining) {
        residue.resize(static_cast<size_t>(remaining));
        report.budget_stopped = true;  // partial retry: budget is the cap
      }
    }

    // Re-decompose the residue: per owning workload, one submission of a
    // heterogeneous residual task through the same admission path.
    size_t cursor = 0;
    while (cursor < residue.size()) {
      const size_t w = static_cast<size_t>(
          std::upper_bound(base.begin(), base.end(),
                           static_cast<size_t>(residue[cursor])) -
          base.begin() - 1);
      size_t end = cursor;
      while (end < residue.size() &&
             static_cast<size_t>(residue[end]) < base[w + 1]) {
        ++end;
      }
      RoundSubmission sub;
      sub.workload = w;
      std::vector<double> residual_thresholds;
      residual_thresholds.reserve(end - cursor);
      for (size_t k = cursor; k < end; ++k) {
        const TaskId id = residue[k];
        double t_res = thresholds[id];
        if (answer_count[id] > 0) {
          const double c = std::clamp(
              std::max(inferred.posterior[id], 1.0 - inferred.posterior[id]),
              0.5, options_.max_posterior_confidence);
          // theta(t) - theta(c): exactly the missing log-reliability.
          t_res = InverseLogReduction(LogReduction(thresholds[id]) -
                                      LogReduction(c));
        }
        t_res = std::clamp(t_res, options_.min_residual_threshold, 0.995);
        residual_thresholds.push_back(t_res);
        sub.global_of_local.push_back(id);
      }
      SLADE_ASSIGN_OR_RETURN(
          CrowdsourcingTask residual_task,
          CrowdsourcingTask::FromThresholds(std::move(residual_thresholds)));
      report.redecomposed_atomic_tasks += end - cursor;
      std::vector<CrowdsourcingTask> residual_tasks;
      residual_tasks.push_back(std::move(residual_task));
      sub.future = streaming.Submit(workloads[w].requester,
                                    std::move(residual_tasks));
      round_subs.push_back(std::move(sub));
      cursor = end;
    }
  }

  report.platform_cost = platform.total_spent();
  report.total_answers = all_answers.size();
  report.total_bins = platform.bins_posted();
  if (!report.round_stats.empty()) {
    report.final_accuracy = report.round_stats.back().accuracy;
  }
  streaming.Drain();
  report.streaming = streaming.stats();
  report.faults = injector.stats();
  return report;
}

}  // namespace slade
