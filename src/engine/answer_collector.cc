#include "engine/answer_collector.h"

#include <string>
#include <utility>

namespace slade {
namespace {

/// One validated, globally-addressed unit of dispatch work.
struct DispatchJob {
  BinPlacement placement;   // tasks rewritten to global ids
  std::vector<bool> truth;  // ground truth per contained task
};

// Validates and pre-translates every placement before anything is
// enqueued, so a malformed plan never half-dispatches. Shared between the
// AoS and columnar Dispatch overloads via the placement-view accessor.
template <typename ViewFn>
Result<std::vector<DispatchJob>> BuildDispatchJobs(
    size_t num_placements, ViewFn view,
    const std::vector<TaskId>& global_of_local,
    const std::vector<bool>& ground_truth) {
  std::vector<DispatchJob> jobs;
  jobs.reserve(num_placements);
  for (size_t pi = 0; pi < num_placements; ++pi) {
    const ColumnarPlan::PlacementView p = view(pi);
    if (p.num_tasks == 0) continue;
    DispatchJob job;
    job.placement.cardinality = p.cardinality;
    job.placement.copies = p.copies;
    job.placement.tasks.reserve(p.num_tasks);
    job.truth.reserve(p.num_tasks);
    for (uint32_t k = 0; k < p.num_tasks; ++k) {
      TaskId id = p.tasks[k];
      if (id >= global_of_local.size()) {
        return Status::OutOfRange(
            "placement references local task " + std::to_string(id) +
            " but the mapping covers " +
            std::to_string(global_of_local.size()));
      }
      id = global_of_local[id];
      if (id >= ground_truth.size()) {
        return Status::OutOfRange("mapped task " + std::to_string(id) +
                                  " is outside the ground truth (n=" +
                                  std::to_string(ground_truth.size()) + ")");
      }
      job.placement.tasks.push_back(id);
      job.truth.push_back(ground_truth[id]);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace

void AnswerCollector::Accept(std::vector<WorkerAnswer> answers, bool overtime,
                             double cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.bins_posted;
  if (overtime) ++stats_.overtime_bins;
  stats_.answers += answers.size();
  stats_.platform_cost += cost;
  answers_.insert(answers_.end(), answers.begin(), answers.end());
}

void AnswerCollector::CountDroppedBin() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.dropped_bins;
}

void AnswerCollector::CountOutageRetry() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.outage_retries;
}

void AnswerCollector::CountCalibration(uint32_t cardinality, uint64_t correct,
                                       uint64_t total, double bin_cost) {
  if (total == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ProbeObservation& obs = calibration_[cardinality];
  obs.cardinality = cardinality;
  obs.correct += correct;
  obs.total += total;
  obs.bin_cost = bin_cost;
}

std::vector<ProbeObservation> AnswerCollector::TakeCalibrationCounts() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProbeObservation> out;
  out.reserve(calibration_.size());
  for (const auto& [cardinality, obs] : calibration_) out.push_back(obs);
  calibration_.clear();
  return out;
}

std::vector<WorkerAnswer> AnswerCollector::TakeAnswers() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkerAnswer> out;
  out.swap(answers_);
  return out;
}

DispatchStats AnswerCollector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

SimulatedDispatcher::SimulatedDispatcher(Platform& platform,
                                         const BinProfile& profile,
                                         ThreadPool& pool,
                                         FaultInjector* injector)
    : platform_(platform),
      profile_(profile),
      pool_(pool),
      injector_(injector) {}

Status SimulatedDispatcher::Dispatch(const DecompositionPlan& plan,
                                     std::vector<TaskId> global_of_local,
                                     const std::vector<bool>& ground_truth,
                                     AnswerCollector* collector) {
  const std::vector<BinPlacement>& placements = plan.placements();
  SLADE_ASSIGN_OR_RETURN(
      std::vector<DispatchJob> jobs,
      BuildDispatchJobs(
          placements.size(),
          [&placements](size_t i) {
            const BinPlacement& p = placements[i];
            return ColumnarPlan::PlacementView{
                p.cardinality, p.copies, p.tasks.data(),
                static_cast<uint32_t>(p.tasks.size())};
          },
          global_of_local, ground_truth));
  for (DispatchJob& job : jobs) {
    auto shared = std::make_shared<DispatchJob>(std::move(job));
    pool_.Submit([this, shared, collector] {
      PostPlacementCopy(shared->placement, shared->placement.tasks,
                        shared->truth, collector);
    });
  }
  return Status::OK();
}

Status SimulatedDispatcher::Dispatch(const ColumnarPlan& plan,
                                     std::vector<TaskId> global_of_local,
                                     const std::vector<bool>& ground_truth,
                                     AnswerCollector* collector) {
  SLADE_ASSIGN_OR_RETURN(
      std::vector<DispatchJob> jobs,
      BuildDispatchJobs(
          plan.num_placements(), [&plan](size_t i) { return plan.view(i); },
          global_of_local, ground_truth));
  for (DispatchJob& job : jobs) {
    auto shared = std::make_shared<DispatchJob>(std::move(job));
    pool_.Submit([this, shared, collector] {
      PostPlacementCopy(shared->placement, shared->placement.tasks,
                        shared->truth, collector);
    });
  }
  return Status::OK();
}

void SimulatedDispatcher::PostPlacementCopy(
    const BinPlacement& placement, const std::vector<TaskId>& global_ids,
    const std::vector<bool>& truth, AnswerCollector* collector) {
  const TaskBin& bin = profile_.bin(placement.cardinality);
  for (uint32_t copy = 0; copy < placement.copies; ++copy) {
    BinOutcome outcome;
    bool posted = false;
    {
      // One lock per posted copy: the injector verdict and the platform's
      // RNG draws form one atomic step of the simulated marketplace.
      std::lock_guard<std::mutex> lock(platform_mutex_);
      for (int attempt = 0; attempt < kMaxPostAttempts; ++attempt) {
        FaultInjector::Decision decision;
        if (injector_ != nullptr) decision = injector_->NextBin();
        if (decision.outage) {
          collector->CountOutageRetry();
          continue;
        }
        // A post the platform itself rejects (invalid bin) is a plan bug;
        // it surfaces as a dropped bin rather than a crash mid-pool.
        Result<BinOutcome> result = platform_.PostBin(
            placement.cardinality, bin.cost, truth, /*assignments=*/1,
            decision.context);
        if (result.ok()) {
          outcome = std::move(*result);
          posted = true;
        }
        break;
      }
    }
    if (!posted) {
      collector->CountDroppedBin();
      continue;
    }
    const AssignmentOutcome& assignment = outcome.assignments.front();
    std::vector<WorkerAnswer> answers;
    answers.reserve(global_ids.size());
    uint64_t calibration_correct = 0;
    for (size_t k = 0; k < global_ids.size(); ++k) {
      WorkerAnswer answer;
      answer.worker = assignment.worker_id;
      answer.task = global_ids[k];
      answer.answer = assignment.answers[k];
      if (answer.answer == truth[k]) ++calibration_correct;
      answers.push_back(answer);
    }
    collector->CountCalibration(placement.cardinality, calibration_correct,
                                global_ids.size(), bin.cost);
    collector->Accept(std::move(answers), outcome.overtime, bin.cost);
  }
}

}  // namespace slade
